(** Dense symmetric latency matrices.

    A matrix of pairwise network latencies between [n] nodes. Latencies are
    non-negative floats (milliseconds by convention); the diagonal is zero.
    This is the fundamental data structure consumed by every assignment
    algorithm: the paper's distance function [d(u, v)] extended to all node
    pairs.

    The store is a flat row-major float64 {!Bigarray.Array1}; entries are
    bit-identical IEEE-754 doubles to the historical [float array] backing
    (see {!Reference}), so switching layouts never changes a computed
    objective. Hot loops should acquire a {!row} view once — the bounds
    check is paid at acquisition — and read it with {!row_get}. *)

type t
(** A symmetric [n x n] latency matrix with zero diagonal. *)

type row
(** A borrowed view of one matrix row, sharing the matrix storage. Valid
    for reads as long as the matrix itself; writes through {!val-set} on
    the source matrix are visible through the view. *)

val create : int -> t
(** [create n] is an [n x n] matrix with every entry [0.]. *)

val init : int -> (int -> int -> float) -> t
(** [init n f] builds a matrix whose entry [(i, j)] is [f i j]. [f] is only
    consulted on ordered pairs [i < j] and the result is mirrored, so [f]
    need not be symmetric. The diagonal is [0.].

    @raise Invalid_argument if [n < 0] or [f] returns a negative or
    non-finite value. *)

val dim : t -> int
(** Number of nodes. *)

val get : t -> int -> int -> float
(** [get m i j] is the latency between nodes [i] and [j]. O(1).

    @raise Invalid_argument if [i] or [j] is out of bounds. *)

val set : t -> int -> int -> float -> unit
(** [set m i j v] sets both [(i, j)] and [(j, i)] to [v].

    @raise Invalid_argument on out-of-bounds indices, negative or
    non-finite [v], or [i = j] with [v <> 0.]. *)

val row : t -> int -> row
(** [row m i] is a view of row [i] (equivalently column [i]: the matrix is
    symmetric). One bounds check here buys unchecked reads via
    {!row_get}.

    @raise Invalid_argument if [i] is out of bounds. *)

val row_get : row -> int -> float
(** [row_get r j] is entry [j] of the row. Unchecked: callers must keep
    [0 <= j < dim]. *)

val unsafe_get : t -> int -> int -> float
(** [unsafe_get m i j] is [get m i j] with no bounds checks at all — for
    gather loops over indices already validated once (e.g. a problem's
    node arrays). Prefer {!row}/{!row_get} when a whole row is walked;
    prefer this when acquiring a view per element would dominate
    ([Bigarray.Array1.sub] allocates). *)

val copy : t -> t
(** Deep copy. *)

val sub : t -> int array -> t
(** [sub m nodes] is the principal submatrix restricted to [nodes]: entry
    [(i, j)] of the result is [get m nodes.(i) nodes.(j)].

    @raise Invalid_argument if any index is out of bounds. *)

val max_entry : t -> float
(** Largest off-diagonal entry ([0.] for matrices with [dim <= 1]). *)

val min_entry : t -> float
(** Smallest off-diagonal entry ([infinity] for matrices with [dim <= 1]). *)

val mean_entry : t -> float
(** Mean of the off-diagonal entries ([nan] for matrices with [dim <= 1]). *)

val entry_stats : t -> float * float * float
(** [entry_stats m] is [(min, mean, max)] of the off-diagonal entries,
    computed in one fused pass (the three [*_entry] accessors each make
    their own full pass). Degenerate values for [dim <= 1] match the
    individual accessors: [(infinity, nan, 0.)]. *)

val iter_pairs : t -> (int -> int -> float -> unit) -> unit
(** [iter_pairs m f] calls [f i j (get m i j)] for every unordered pair
    [i < j]. *)

val of_rows : float array array -> t
(** [of_rows rows] builds a matrix from a square array of rows. Asymmetric
    inputs are symmetrised by averaging, which mirrors how RTT data sets
    with small asymmetric measurement noise are commonly cleaned.

    @raise Invalid_argument if the array is not square or an entry is
    negative or non-finite. *)

val to_rows : t -> float array array
(** Full square dump (including diagonal). *)

val equal : ?eps:float -> t -> t -> bool
(** Entry-wise equality within [eps] (default [1e-9]). *)

val pp : Format.formatter -> t -> unit
(** Debug printer; prints the full matrix for small [n], a one-line
    min/mean/max summary (one pass, no [mean=nan] for degenerate sizes)
    otherwise. *)

(** The historical boxed [float array] layout, kept as a differential
    oracle: the test suite builds instances on both layouts and requires
    bit-identical entries and algorithm outputs. Not used on any hot
    path. *)
module Reference : sig
  type boxed

  val create : int -> boxed
  val init : int -> (int -> int -> float) -> boxed
  val dim : boxed -> int
  val get : boxed -> int -> int -> float
  val set : boxed -> int -> int -> float -> unit

  val of_matrix : t -> boxed
  (** Entry-preserving copy out of the flat store. *)

  val to_matrix : boxed -> t
  (** Entry-preserving copy into the flat store (raw values, no
      re-validation — the boxed side already enforced the invariants). *)

  val bit_equal : boxed -> t -> bool
  (** True iff every entry is bitwise ([Int64.bits_of_float]) identical. *)
end
