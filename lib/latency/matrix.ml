(* The canonical store is a flat row-major float64 Bigarray. Entries are
   identical IEEE-754 doubles to the previous [float array] backing, so
   every bit-identity guarantee in the repo (parallel = sequential,
   checkpoint/resume, incremental = scratch) survives the layout change.
   Hot paths acquire a [row] view once — paying the bounds check there —
   and then index it with [row_get]/[Array1.unsafe_get]. *)

type buffer = (float, Bigarray.float64_elt, Bigarray.c_layout) Bigarray.Array1.t
type t = { n : int; data : buffer }
type row = buffer

let check_value v =
  if not (Float.is_finite v) || v < 0. then
    invalid_arg (Printf.sprintf "Matrix: latency %g is not a finite non-negative value" v)

let create n =
  if n < 0 then invalid_arg "Matrix.create: negative dimension";
  let data = Bigarray.Array1.create Bigarray.float64 Bigarray.c_layout (n * n) in
  Bigarray.Array1.fill data 0.;
  { n; data }

let dim m = m.n

let check_index m i =
  if i < 0 || i >= m.n then
    invalid_arg (Printf.sprintf "Matrix: index %d out of bounds [0, %d)" i m.n)

let get m i j =
  check_index m i;
  check_index m j;
  Bigarray.Array1.unsafe_get m.data ((i * m.n) + j)

let set m i j v =
  check_index m i;
  check_index m j;
  check_value v;
  if i = j && v <> 0. then invalid_arg "Matrix.set: non-zero diagonal";
  Bigarray.Array1.unsafe_set m.data ((i * m.n) + j) v;
  Bigarray.Array1.unsafe_set m.data ((j * m.n) + i) v

let row m i =
  check_index m i;
  Bigarray.Array1.sub m.data (i * m.n) m.n

let row_get (r : row) j = Bigarray.Array1.unsafe_get r j

let unsafe_get m i j = Bigarray.Array1.unsafe_get m.data ((i * m.n) + j)

let init n f =
  let m = create n in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      set m i j (f i j)
    done
  done;
  m

let copy m =
  let c = create m.n in
  Bigarray.Array1.blit m.data c.data;
  c

let sub m nodes =
  Array.iter (check_index m) nodes;
  let k = Array.length nodes in
  init k (fun i j -> get m nodes.(i) nodes.(j))

let fold_pairs m f acc =
  let acc = ref acc in
  for i = 0 to m.n - 1 do
    for j = i + 1 to m.n - 1 do
      acc := f !acc i j (Bigarray.Array1.unsafe_get m.data ((i * m.n) + j))
    done
  done;
  !acc

let iter_pairs m f = fold_pairs m (fun () i j v -> f i j v) ()

(* One fused pass over the upper triangle; entries are validated finite
   non-negative at [set] time, so plain comparisons match
   [Float.min]/[Float.max] and the running sum is the same
   left-to-right order the separate folds used. *)
let entry_stats m =
  let mn = ref infinity and mx = ref 0. and sum = ref 0. in
  for i = 0 to m.n - 1 do
    let base = i * m.n in
    for j = i + 1 to m.n - 1 do
      let v = Bigarray.Array1.unsafe_get m.data (base + j) in
      if v < !mn then mn := v;
      if v > !mx then mx := v;
      sum := !sum +. v
    done
  done;
  let pairs = m.n * (m.n - 1) / 2 in
  let mean = if pairs = 0 then nan else !sum /. float_of_int pairs in
  (!mn, mean, !mx)

let max_entry m = fold_pairs m (fun acc _ _ v -> Float.max acc v) 0.

let min_entry m = fold_pairs m (fun acc _ _ v -> Float.min acc v) infinity

let mean_entry m =
  let pairs = m.n * (m.n - 1) / 2 in
  if pairs = 0 then nan
  else fold_pairs m (fun acc _ _ v -> acc +. v) 0. /. float_of_int pairs

let of_rows rows =
  let n = Array.length rows in
  Array.iter
    (fun row ->
      if Array.length row <> n then invalid_arg "Matrix.of_rows: not square")
    rows;
  init n (fun i j ->
      let a = rows.(i).(j) and b = rows.(j).(i) in
      check_value a;
      check_value b;
      (a +. b) /. 2.)

let to_rows m = Array.init m.n (fun i -> Array.init m.n (fun j -> get m i j))

let equal ?(eps = 1e-9) a b =
  a.n = b.n
  &&
  let len = a.n * a.n in
  let ok = ref true in
  let i = ref 0 in
  while !ok && !i < len do
    let x = Bigarray.Array1.unsafe_get a.data !i
    and y = Bigarray.Array1.unsafe_get b.data !i in
    if not (Float.abs (x -. y) <= eps) then ok := false;
    incr i
  done;
  !ok

let pp ppf m =
  (* Dimensions without an off-diagonal entry get a plain tag: the
     summary statistics would be vacuous ([min=inf mean=nan max=0]). *)
  if m.n <= 1 then Format.fprintf ppf "<matrix %dx%d>" m.n m.n
  else if m.n <= 12 then begin
    Format.fprintf ppf "@[<v>";
    for i = 0 to m.n - 1 do
      Format.fprintf ppf "@[<h>";
      for j = 0 to m.n - 1 do
        Format.fprintf ppf "%8.2f " (get m i j)
      done;
      Format.fprintf ppf "@]@,"
    done;
    Format.fprintf ppf "@]"
  end
  else
    let mn, mean, mx = entry_stats m in
    Format.fprintf ppf "<matrix %dx%d min=%.2f mean=%.2f max=%.2f>" m.n m.n mn
      mean mx

module Reference = struct
  let create_flat = create

  type boxed = { rn : int; rdata : float array }

  let create n =
    if n < 0 then invalid_arg "Matrix.create: negative dimension";
    { rn = n; rdata = Array.make (n * n) 0. }

  let dim r = r.rn

  let check_index r i =
    if i < 0 || i >= r.rn then
      invalid_arg (Printf.sprintf "Matrix: index %d out of bounds [0, %d)" i r.rn)

  let get r i j =
    check_index r i;
    check_index r j;
    r.rdata.((i * r.rn) + j)

  let set r i j v =
    check_index r i;
    check_index r j;
    check_value v;
    if i = j && v <> 0. then invalid_arg "Matrix.set: non-zero diagonal";
    r.rdata.((i * r.rn) + j) <- v;
    r.rdata.((j * r.rn) + i) <- v

  let init n f =
    let r = create n in
    for i = 0 to n - 1 do
      for j = i + 1 to n - 1 do
        set r i j (f i j)
      done
    done;
    r

  let of_matrix m =
    let r = create m.n in
    for i = 0 to (m.n * m.n) - 1 do
      r.rdata.(i) <- Bigarray.Array1.unsafe_get m.data i
    done;
    r

  let to_matrix r =
    let m = create_flat r.rn in
    for i = 0 to (r.rn * r.rn) - 1 do
      Bigarray.Array1.unsafe_set m.data i r.rdata.(i)
    done;
    m

  let bit_equal r m =
    r.rn = m.n
    &&
    let len = r.rn * r.rn in
    let ok = ref true in
    let i = ref 0 in
    while !ok && !i < len do
      if
        Int64.bits_of_float r.rdata.(!i)
        <> Int64.bits_of_float (Bigarray.Array1.unsafe_get m.data !i)
      then ok := false;
      incr i
    done;
    !ok
end
