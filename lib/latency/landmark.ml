(* The pruning bound and its certificate.

   For a query node q and candidate s, every landmark l gives
   |d(q,l) -. d(l,s)| <= d(q,s) when the three distances satisfy the
   triangle inequality. Latency matrices routinely violate it, so
   instead of trusting the inequality we verify, at build time, the
   exact float expression [bound] evaluates at query time against every
   possible query: all dim(m) matrix nodes. Query nodes come from the
   same matrix, so a passing verification covers every query the index
   can ever receive — there is no epsilon and no rounding argument left,
   the certified fact is precisely "bound(q, s) <= d(q, s) as doubles".

   A skipped candidate therefore satisfies d(q,s) >= bound >= best, and
   since the scan updates on strict <, skipping it cannot change the
   argmin or the tie (lowest index wins, as in the exhaustive scan). *)

type t = {
  matrix : Matrix.t;
  candidates : int array;
  landmarks : int array;
  table : float array;
      (* table.(i * m + j) = d(candidates.(i), landmarks.(j)) *)
  metric_ok : bool;
}

(* max over landmarks j of |dq.(j) -. table.(i*m + j)| — the one float
   expression shared by verification and queries. *)
let bound ~table ~m (dq : float array) i =
  let base = i * m in
  let lb = ref 0. in
  for j = 0 to m - 1 do
    let v = Array.unsafe_get dq j -. Array.unsafe_get table (base + j) in
    let v = Float.abs v in
    if v > !lb then lb := v
  done;
  !lb

let farthest_point_sample ~dist ~count (candidates : int array) =
  let k = Array.length candidates in
  let chosen = Array.make count candidates.(0) in
  let mind = Array.make k infinity in
  let taken = ref 1 in
  let update_mind last =
    for i = 0 to k - 1 do
      let d = dist candidates.(i) last in
      if d < mind.(i) then mind.(i) <- d
    done
  in
  update_mind chosen.(0);
  (try
     while !taken < count do
       let best = ref 0 and bd = ref neg_infinity in
       for i = 0 to k - 1 do
         if mind.(i) > !bd then begin
           bd := mind.(i);
           best := i
         end
       done;
       (* Every remaining candidate coincides with a chosen landmark:
          more landmarks add no pruning power. *)
       if !bd <= 0. then raise Exit;
       chosen.(!taken) <- candidates.(!best);
       incr taken;
       update_mind candidates.(!best)
     done
   with Exit -> ());
  Array.sub chosen 0 !taken

let verify matrix ~landmarks ~candidates ~table =
  let n = Matrix.dim matrix in
  let m = Array.length landmarks in
  let k = Array.length candidates in
  let dq = Array.make m 0. in
  let ok = ref true in
  let u = ref 0 in
  while !ok && !u < n do
    for j = 0 to m - 1 do
      dq.(j) <- Matrix.unsafe_get matrix !u landmarks.(j)
    done;
    let i = ref 0 in
    while !ok && !i < k do
      if bound ~table ~m dq !i > Matrix.unsafe_get matrix !u candidates.(!i)
      then ok := false;
      incr i
    done;
    incr u
  done;
  !ok

let build ?(num_landmarks = 4) ?coords matrix ~candidates =
  let n = Matrix.dim matrix in
  if Array.length candidates = 0 then
    invalid_arg "Landmark.build: no candidates";
  Array.iter
    (fun c ->
      if c < 0 || c >= n then
        invalid_arg
          (Printf.sprintf "Landmark.build: candidate node %d out of bounds [0, %d)" c n))
    candidates;
  if num_landmarks <= 0 then
    invalid_arg "Landmark.build: num_landmarks must be positive";
  let candidates = Array.copy candidates in
  let count = min num_landmarks (Array.length candidates) in
  let dist =
    match coords with
    | Some v -> fun a b -> Vivaldi.predict v a b
    | None -> fun a b -> Matrix.get matrix a b
  in
  let landmarks = farthest_point_sample ~dist ~count candidates in
  let m = Array.length landmarks in
  let k = Array.length candidates in
  let table = Array.make (k * m) 0. in
  for i = 0 to k - 1 do
    for j = 0 to m - 1 do
      table.((i * m) + j) <- Matrix.unsafe_get matrix candidates.(i) landmarks.(j)
    done
  done;
  let metric_ok = verify matrix ~landmarks ~candidates ~table in
  { matrix; candidates; landmarks; table; metric_ok }

let metric_ok t = t.metric_ok
let num_landmarks t = Array.length t.landmarks
let landmarks t = Array.copy t.landmarks
let candidates t = Array.copy t.candidates
let matrix t = t.matrix

let check_query t query =
  if query < 0 || query >= Matrix.dim t.matrix then
    invalid_arg (Printf.sprintf "Landmark: query node %d out of range" query)

let nearest t ~query =
  check_query t query;
  let k = Array.length t.candidates in
  let best = ref 0 in
  let bd = ref (Matrix.unsafe_get t.matrix query t.candidates.(0)) in
  if t.metric_ok then begin
    let m = Array.length t.landmarks in
    let dq = Array.make m 0. in
    for j = 0 to m - 1 do
      dq.(j) <- Matrix.unsafe_get t.matrix query t.landmarks.(j)
    done;
    for i = 1 to k - 1 do
      if bound ~table:t.table ~m dq i < !bd then begin
        let d = Matrix.unsafe_get t.matrix query t.candidates.(i) in
        if d < !bd then begin
          best := i;
          bd := d
        end
      end
    done
  end
  else
    for i = 1 to k - 1 do
      let d = Matrix.unsafe_get t.matrix query t.candidates.(i) in
      if d < !bd then begin
        best := i;
        bd := d
      end
    done;
  (!best, !bd)

let lower_bounds t ~query dst =
  check_query t query;
  let k = Array.length t.candidates in
  if Array.length dst <> k then
    invalid_arg
      (Printf.sprintf "Landmark.lower_bounds: array length %d, expected %d"
         (Array.length dst) k);
  if not t.metric_ok then Array.fill dst 0 k 0.
  else begin
    let m = Array.length t.landmarks in
    let dq = Array.make m 0. in
    for j = 0 to m - 1 do
      dq.(j) <- Matrix.unsafe_get t.matrix query t.landmarks.(j)
    done;
    for i = 0 to k - 1 do
      dst.(i) <- bound ~table:t.table ~m dq i
    done
  end
