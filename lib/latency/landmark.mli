(** Landmark-pruned exact queries over a fixed candidate set.

    A deployed assignment service answers "which server is closest to
    this node?" constantly — joins, failovers, standby re-arms. The
    exhaustive scan pays |S| matrix reads per query; on metric data a
    handful of landmarks gives a certified lower bound
    [lb(q, s) = max over landmarks l of |d(q, l) - d(l, s)|  <=  d(q, s)]
    that lets a query skip most candidates without reading their
    distance at all. Internet latency matrices are {e not} metrics
    (see {!Metric}), so the bound is only trusted after a build-time
    verification pass: the exact float expression used at query time is
    checked against [d(u, s)] for {e every} matrix node [u], landmark
    and candidate. If a single triple fails, the index marks itself
    non-metric and every query falls back to the plain exhaustive scan —
    results are bit-identical to the scan either way, the index only
    ever changes how many entries a query touches.

    Landmark selection is farthest-point sampling over the candidates,
    optionally in a {!Vivaldi} embedding (selection affects pruning
    power only, never correctness — the verified bounds always come
    from true matrix distances). *)

type t

val build : ?num_landmarks:int -> ?coords:Vivaldi.t -> Matrix.t -> candidates:int array -> t
(** [build m ~candidates] indexes the given candidate nodes (servers,
    typically). [num_landmarks] defaults to 4, clamped to the number of
    distinct candidates. With [coords], farthest-point sampling runs on
    Vivaldi-predicted distances instead of matrix rows — the cheap
    choice when the matrix is itself estimated. Verification costs
    O(dim(m) * landmarks * |candidates|) matrix reads, once.
    Raises [Invalid_argument] on an empty or out-of-range candidate
    array. The index snapshots nothing: it reads [m] at query time, so
    it must be discarded if [m] is mutated (e.g. {!Matrix.set} drift). *)

val metric_ok : t -> bool
(** Whether the landmark bounds verified against the whole matrix.
    [false] means queries run exhaustively (same results, no skips). *)

val num_landmarks : t -> int
val landmarks : t -> int array
(** The selected landmark nodes (a subset of the candidates). *)

val candidates : t -> int array
(** The indexed candidate nodes, in the order [build] received them. *)

val matrix : t -> Matrix.t
(** The matrix the index was built over (the same value, not a copy) —
    lets callers reject an index that does not match their instance. *)

val nearest : t -> query:int -> int * float
(** [(i, d)] such that [candidates.(i)] minimises the matrix distance
    to node [query], ties to the lowest index, [d] that distance — the
    same strict-< ascending scan as [Problem.nearest_server], so the
    result is bit-identical to the exhaustive loop it replaces.
    Raises [Invalid_argument] if [query] is out of range. *)

val lower_bounds : t -> query:int -> float array -> unit
(** Fill the [i]-th slot with a certified lower bound on
    [d(query, candidates.(i))] — [0.] everywhere when the index is not
    {!metric_ok} (trivially valid, prunes nothing). Callers with costs
    that dominate the distance (e.g. an attach cost [>= 2 d]) can skip
    candidate [i] whenever their transformed bound already loses to the
    best cost in hand. The array must have exactly one slot per
    candidate. Raises [Invalid_argument] otherwise. *)
