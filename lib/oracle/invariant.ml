module Matrix = Dia_latency.Matrix
module Problem = Dia_core.Problem
module Assignment = Dia_core.Assignment
module Objective = Dia_core.Objective
module Lower_bound = Dia_core.Lower_bound
module Clock = Dia_core.Clock

type check = (unit, string) result

let failures checks =
  List.filter_map
    (function
      | _, Ok () -> None
      | name, Error message -> Some (Printf.sprintf "%s: %s" name message))
    checks

let eps = 1e-6

let assignment_valid ?(require_capacity = true) p a =
  let n = Problem.num_clients p and k = Problem.num_servers p in
  if Assignment.num_clients a <> n then
    Error
      (Printf.sprintf "covers %d clients, instance has %d"
         (Assignment.num_clients a) n)
  else begin
    let bad = ref None in
    Array.iteri
      (fun c s -> if (s < 0 || s >= k) && !bad = None then bad := Some (c, s))
      (Assignment.to_array a);
    match !bad with
    | Some (c, s) ->
        Error (Printf.sprintf "client %d on invalid server %d" c s)
    | None ->
        if require_capacity && not (Assignment.respects_capacity p a) then
          Error "a server exceeds its capacity"
        else Ok ()
  end

let dominates_lb ~lb ~label d =
  if d >= lb -. eps then Ok ()
  else Error (Printf.sprintf "%s: D = %.9g < LB = %.9g" label d lb)

let at_least_opt ~opt ~label d =
  if d >= opt -. eps then Ok ()
  else Error (Printf.sprintf "%s: D = %.9g beats the optimum %.9g" label d opt)

let within_ratio ~ratio ~opt ~label d =
  if d <= (ratio *. opt) +. eps then Ok ()
  else
    Error
      (Printf.sprintf "%s: D = %.9g > %.3g x OPT = %.9g" label d ratio
         (ratio *. opt))

let no_worse ~label ~than a b =
  if a <= b +. eps then Ok ()
  else Error (Printf.sprintf "%s: %.9g > %s: %.9g" label a than b)

let lb_at_most_opt ~lb ~opt =
  if lb <= opt +. eps then Ok ()
  else Error (Printf.sprintf "LB = %.9g exceeds OPT = %.9g" lb opt)

let clock_tight p a =
  let clock = Clock.synthesize p a in
  let d = Objective.max_interaction_path p a in
  if not (Clock.feasible p a clock) then Error "synthesized clock infeasible"
  else if Float.abs (Clock.slack_i p a clock) > eps then
    Error
      (Printf.sprintf "constraint (i) not tight: slack %.9g"
         (Clock.slack_i p a clock))
  else if Clock.slack_ii p a clock < -.eps then
    Error
      (Printf.sprintf "constraint (ii) violated: slack %.9g"
         (Clock.slack_ii p a clock))
  else if Float.abs (Clock.interaction_time clock -. d) > eps then
    Error
      (Printf.sprintf "interaction time %.9g <> D = %.9g"
         (Clock.interaction_time clock) d)
  else Ok ()

type relabeling = {
  problem : Problem.t;
  client_perm : int array;
  server_perm : int array;
}

let shuffled rng n =
  let order = Array.init n Fun.id in
  for i = n - 1 downto 1 do
    let j = Random.State.int rng (i + 1) in
    let t = order.(i) in
    order.(i) <- order.(j);
    order.(j) <- t
  done;
  order

let relabel ~seed p =
  let rng = Random.State.make [| seed; 0x9e1abe1 |] in
  let n = Problem.num_clients p and k = Problem.num_servers p in
  let client_order = shuffled rng n and server_order = shuffled rng k in
  let old_clients = Problem.clients p and old_servers = Problem.servers p in
  let clients = Array.map (fun i -> old_clients.(i)) client_order in
  let servers = Array.map (fun i -> old_servers.(i)) server_order in
  let client_perm = Array.make n 0 and server_perm = Array.make k 0 in
  Array.iteri (fun new_i old_i -> client_perm.(old_i) <- new_i) client_order;
  Array.iteri (fun new_i old_i -> server_perm.(old_i) <- new_i) server_order;
  let problem =
    Problem.make
      ?capacity:(Problem.capacity p)
      ~latency:(Problem.latency p) ~servers ~clients ()
  in
  { problem; client_perm; server_perm }

let relabel_assignment r a =
  let n = Assignment.num_clients a in
  let b = Array.make n 0 in
  for c = 0 to n - 1 do
    b.(r.client_perm.(c)) <- r.server_perm.(Assignment.server_of a c)
  done;
  Assignment.of_array r.problem b

let scale p ~factor =
  if not (factor > 0.) then invalid_arg "Invariant.scale: factor must be > 0";
  let m = Problem.latency p in
  let scaled = Matrix.init (Matrix.dim m) (fun i j -> factor *. Matrix.get m i j) in
  Problem.make
    ?capacity:(Problem.capacity p)
    ~latency:scaled
    ~servers:(Array.copy (Problem.servers p))
    ~clients:(Array.copy (Problem.clients p))
    ()

(* Visiting a server pair with its roles swapped re-associates the
   three-term sum, so relabeled values may differ in the last ulp —
   compare to 1e-9, far below any latency scale but far above ulps. *)
let relabel_eps = 1e-9

let evaluator_relabel_invariant ~seed p a =
  let r = relabel ~seed p in
  let a' = relabel_assignment r a in
  let d = Objective.max_interaction_path p a
  and d' = Objective.max_interaction_path r.problem a' in
  if Float.abs (d -. d') > relabel_eps then
    Error (Printf.sprintf "D changed under relabeling: %.17g <> %.17g" d d')
  else begin
    let lb = Lower_bound.compute p and lb' = Lower_bound.compute r.problem in
    if Float.abs (lb -. lb') > relabel_eps then
      Error (Printf.sprintf "LB changed under relabeling: %.17g <> %.17g" lb lb')
    else Ok ()
  end

let evaluator_scale_invariant p a =
  let doubled = scale p ~factor:2. in
  let a' = Assignment.of_array doubled (Assignment.to_array a) in
  let d = Objective.max_interaction_path p a
  and d' = Objective.max_interaction_path doubled a' in
  if d' <> 2. *. d then
    Error (Printf.sprintf "D not linear in scale: %.17g <> 2 x %.17g" d' d)
  else begin
    let lb = Lower_bound.compute p and lb' = Lower_bound.compute doubled in
    if lb' <> 2. *. lb then
      Error (Printf.sprintf "LB not linear in scale: %.17g <> 2 x %.17g" lb' lb)
    else Ok ()
  end

(* -- Load-aware objective (lib/core/delay) ------------------------------- *)

(* [D_load >= D] is exact, not approximate: every pair's load-aware path
   adds two non-negative delay terms to the plain path, so the max can
   only move up. Checked without epsilon on purpose — a single-ulp
   regression here means the shared pair scan drifted. *)
let load_dominates ~delay ~label p a =
  let d = Objective.max_interaction_path p a in
  let d_load = Objective.max_interaction_path_load p ~delay a in
  if d_load >= d then Ok ()
  else
    Error
      (Printf.sprintf "%s: D_load = %.17g < D = %.17g" label d_load d)

(* Under [Constant 0.] the delay terms are exact float zeros, so the two
   objectives must agree bit for bit. *)
let load_zero_identity ~label p a =
  let d = Objective.max_interaction_path p a in
  let d0 =
    Objective.max_interaction_path_load p ~delay:(Dia_core.Delay.Constant 0.) a
  in
  if d0 = d then Ok ()
  else
    Error
      (Printf.sprintf "%s: D_load under Constant 0. = %.17g <> D = %.17g" label
         d0 d)

(* The fast evaluator (per-server effective eccentricities) against the
   O(|C|^2) definition — bit-identical, same term grouping. *)
let load_fast_naive_agree ~delay ~label p a =
  let fast = Objective.max_interaction_path_load p ~delay a in
  let naive = Objective.naive_max_interaction_path_load p ~delay a in
  if fast = naive then Ok ()
  else
    Error
      (Printf.sprintf "%s: fast D_load = %.17g <> naive = %.17g" label fast
         naive)

let delay_monotone ~max_load delay =
  let bad = ref None in
  for load = 1 to max_load do
    if !bad = None && Dia_core.Delay.eval delay load < Dia_core.Delay.eval delay (load - 1)
    then bad := Some load
  done;
  match !bad with
  | None -> Ok ()
  | Some load ->
      Error
        (Printf.sprintf "delay(%d) = %.17g < delay(%d) = %.17g" load
           (Dia_core.Delay.eval delay load)
           (load - 1)
           (Dia_core.Delay.eval delay (load - 1)))

(* -- Coreset additive bound (lib/coreset) -------------------------------- *)

let coreset_bound ~resolution ~seed p =
  (* The coreset layer refuses capacities (a point stands for an
     unbounded population), so the bound is checked on the instance's
     uncapacitated relaxation — the radius certificate does not involve
     capacities anyway. *)
  let cs =
    Dia_coreset.Coreset.build ~seed ~eps:resolution (Problem.latency p)
      ~servers:(Problem.servers p) ~clients:(Problem.clients p)
  in
  let reduced = Dia_coreset.Coreset.reduced cs in
  let a_red = Dia_core.Greedy.assign reduced in
  let d_red = Objective.max_interaction_path reduced a_red in
  let d_full =
    Objective.max_interaction_path
      (Dia_coreset.Coreset.full cs)
      (Dia_coreset.Coreset.expand cs a_red)
  in
  let gap = Float.abs (d_full -. d_red) in
  let bound = Dia_coreset.Coreset.bound cs in
  if resolution = 0. && gap <> 0. then
    Error
      (Printf.sprintf
         "eps=0 must be exact: D_reduced %.17g <> D_full %.17g" d_red d_full)
  else if gap > bound +. eps then
    Error
      (Printf.sprintf
         "|D_reduced - D_full| = |%.9g - %.9g| = %.9g exceeds bound 2r = %.9g \
          (eps %g, %d clients -> %d points)"
         d_red d_full gap bound resolution
         (Dia_coreset.Coreset.clients cs)
         (Dia_coreset.Coreset.points cs))
  else Ok ()
