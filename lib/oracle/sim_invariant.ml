module Protocol = Dia_sim.Protocol

type t = {
  eps : float;
  expect_feasible : bool;
  delta : float;
  mutable violations : string list;  (* reversed *)
  mutable recorded : int;
  issued : (int, float) Hashtbl.t;  (* op_id -> issue_time *)
  first_exec : (int, float) Hashtbl.t;  (* op_id -> first actual_sim *)
  mutable lag : float option;  (* the constant issue-to-execution lag *)
  exec_seen : (int * int, unit) Hashtbl.t;  (* (op_id, server) *)
  vis_seen : (int * int, unit) Hashtbl.t;  (* (op_id, observer) *)
  server_last_issue : (int, float) Hashtbl.t;  (* issue order per server *)
  server_last_sim : (int, float) Hashtbl.t;  (* clock monotonicity *)
  client_last_sim : (int, float) Hashtbl.t;
}

let cap = 200

let create ?(eps = 1e-6) ?(expect_feasible = true) ~delta () =
  {
    eps;
    expect_feasible;
    delta;
    violations = [];
    recorded = 0;
    issued = Hashtbl.create 64;
    first_exec = Hashtbl.create 64;
    lag = None;
    exec_seen = Hashtbl.create 64;
    vis_seen = Hashtbl.create 64;
    server_last_issue = Hashtbl.create 16;
    server_last_sim = Hashtbl.create 16;
    client_last_sim = Hashtbl.create 16;
  }

let record t fmt =
  Printf.ksprintf
    (fun message ->
      t.recorded <- t.recorded + 1;
      if t.recorded <= cap then t.violations <- message :: t.violations
      else if t.recorded = cap + 1 then
        t.violations <- "... further violations suppressed" :: t.violations)
    fmt

let monotonic t table ~actor ~time ~what =
  (match Hashtbl.find_opt table actor with
  | Some last when time < last -. t.eps ->
      record t "%s %d: simulation time ran backwards (%.6f after %.6f)" what
        actor time last
  | _ -> ());
  Hashtbl.replace table actor time

let on_executed t (e : Protocol.execution) =
  match Hashtbl.find_opt t.issued e.op_id with
  | None -> record t "op %d executed on server %d before being issued" e.op_id e.server
  | Some issue_time ->
      if Hashtbl.mem t.exec_seen (e.op_id, e.server) then
        record t "op %d executed twice on server %d" e.op_id e.server;
      Hashtbl.replace t.exec_seen (e.op_id, e.server) ();
      (* Executions never fire before their agreed time. *)
      if e.actual_sim < e.target_sim -. t.eps then
        record t "op %d executed early on server %d (%.6f before target %.6f)"
          e.op_id e.server e.actual_sim e.target_sim;
      monotonic t t.server_last_sim ~actor:e.server ~time:e.actual_sim
        ~what:"server";
      (* Consistency, fairness and issue-order are theorems {e of a
         feasible clock} (Section II): with an infeasible one a late
         arrival legitimately executes past its target, at a
         server-dependent time. *)
      if t.expect_feasible then begin
        (match Hashtbl.find_opt t.first_exec e.op_id with
        | None -> Hashtbl.replace t.first_exec e.op_id e.actual_sim
        | Some first ->
            if Float.abs (e.actual_sim -. first) > t.eps then
              record t
                "consistency: op %d executed at sim %.6f on server %d but at %.6f elsewhere"
                e.op_id e.actual_sim e.server first);
        let lag = e.actual_sim -. issue_time in
        (match t.lag with
        | None -> t.lag <- Some lag
        | Some first ->
            if Float.abs (lag -. first) > t.eps then
              record t
                "fairness: op %d lag %.6f differs from the run's constant lag %.6f"
                e.op_id lag first);
        (match Hashtbl.find_opt t.server_last_issue e.server with
        | Some last when issue_time < last -. t.eps ->
            record t
              "server %d executed op %d (issued %.6f) after one issued %.6f"
              e.server e.op_id issue_time last
        | _ -> ());
        Hashtbl.replace t.server_last_issue e.server issue_time;
        if e.late then
          record t "op %d late on server %d (%.6f > target %.6f)" e.op_id
            e.server e.actual_sim e.target_sim
      end

let on_presented t (v : Protocol.visibility) =
  if not (Hashtbl.mem t.issued v.op_id) then
    record t "op %d presented to client %d before being issued" v.op_id v.observer;
  if Hashtbl.mem t.vis_seen (v.op_id, v.observer) then
    record t "op %d presented twice to client %d" v.op_id v.observer;
  Hashtbl.replace t.vis_seen (v.op_id, v.observer) ();
  let interaction = v.visible_sim -. v.issue_sim in
  if interaction < -.t.eps then
    record t "op %d visible to client %d before issue (interaction %.6f)" v.op_id
      v.observer interaction;
  monotonic t t.client_last_sim ~actor:v.observer ~time:v.visible_sim
    ~what:"client";
  if t.expect_feasible then begin
    if v.late then
      record t "op %d late at client %d (visible %.6f, issued %.6f)" v.op_id
        v.observer v.visible_sim v.issue_sim;
    if Float.abs (interaction -. t.delta) > t.eps then
      record t
        "op %d interaction time %.6f at client %d differs from delta %.6f"
        v.op_id interaction v.observer t.delta
  end

let monitor t = function
  | Protocol.Issued op ->
      Hashtbl.replace t.issued op.Dia_sim.Workload.op_id
        op.Dia_sim.Workload.issue_time
  | Protocol.Executed e -> on_executed t e
  | Protocol.Presented v -> on_presented t v

let finalize t ~servers ~clients =
  Hashtbl.iter
    (fun op_id _ ->
      let execs =
        Hashtbl.fold
          (fun (op, _) () n -> if op = op_id then n + 1 else n)
          t.exec_seen 0
      in
      if execs <> servers then
        record t "op %d executed on %d of %d servers" op_id execs servers;
      let seen =
        Hashtbl.fold
          (fun (op, _) () n -> if op = op_id then n + 1 else n)
          t.vis_seen 0
      in
      if seen <> clients then
        record t "op %d presented to %d of %d clients" op_id seen clients)
    t.issued

let violations t = List.rev t.violations
let ok t = t.recorded = 0

let check_run ?jitter ?expect_feasible p a clock workload =
  let t = create ?expect_feasible ~delta:clock.Dia_core.Clock.delta () in
  let report = Protocol.run ?jitter ~monitor:(monitor t) p a clock workload in
  finalize t ~servers:report.Protocol.servers ~clients:report.Protocol.clients;
  violations t
