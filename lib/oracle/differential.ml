module Matrix = Dia_latency.Matrix
module Landmark = Dia_latency.Landmark
module Problem = Dia_core.Problem
module Assignment = Dia_core.Assignment
module Algorithm = Dia_core.Algorithm
module Objective = Dia_core.Objective
module Lower_bound = Dia_core.Lower_bound
module Brute_force = Dia_core.Brute_force
module Delay = Dia_core.Delay
module Dg = Dia_core.Distributed_greedy
module Local_search = Dia_core.Local_search
module Zone_based = Dia_core.Zone_based
module Clock = Dia_core.Clock
module Workload = Dia_sim.Workload
module Dgreedy_protocol = Dia_sim.Dgreedy_protocol
module Fault = Dia_sim.Fault

let algo_keys =
  [
    "nearest"; "lfb"; "greedy"; "dgreedy"; "single"; "random"; "zone"; "hill";
    "anneal";
  ]

(* The default schedule (20k steps) is tuned for one-off experiment
   quality; at thousands of conformance instances it dominates the whole
   suite. The checks here are relational, not quality-sensitive. *)
let conformance_annealing =
  { Local_search.default_annealing with steps = 1_500 }

let nearest_start p = Algorithm.run Algorithm.Nearest_server p

let run_algo ~seed key p =
  match key with
  | "nearest" -> nearest_start p
  | "lfb" -> Algorithm.run Algorithm.Longest_first_batch p
  | "greedy" -> Algorithm.run Algorithm.Greedy p
  | "dgreedy" -> Dg.assign p
  | "single" -> Algorithm.run Algorithm.Single_server p
  | "random" -> Algorithm.run ~seed Algorithm.Random_assignment p
  | "zone" -> Zone_based.assign p
  | "hill" -> fst (Local_search.hill_climb p (nearest_start p))
  | "anneal" ->
      fst (Local_search.anneal ~params:conformance_annealing ~seed p
             (nearest_start p))
  | _ -> invalid_arg ("Differential.run_algo: unknown key " ^ key)

(* Which algorithms commute with the metamorphic transforms. Scaling
   preserves every comparison an algorithm makes (doubling is exact) and
   Random_assignment never consults distances at all, so everything but
   annealing is scale-stable (its temperature is in objective units).
   Relabeling is stricter: per-client argmin algorithms commute on
   tie-free instances, but Greedy, Zone-Based, Distributed-Greedy and
   hill climbing pick among equally-improving moves in index order and
   genuinely land in different local optima under permutation (measured:
   9-29% of tie-free instances each), and Random_assignment's seed
   stream maps indices directly. *)
let scale_stable = function "anneal" -> false | _ -> true
let relabel_stable = function
  | "nearest" | "lfb" | "single" -> true
  | _ -> false

type outcome = {
  seed : int;
  instance : string;
  capacitated : bool;
  checks : int;
  failures : string list;
  values : (string * float) list;
  lb : float;
  opt : float option;
  sim_checked : bool;
  transport_checked : bool;
  greedy_monotonic : bool option;
  load_greedy_better : bool;
  index_metric : bool;
}

let strictly_decreasing trace =
  let bad = ref (Ok ()) in
  for i = 1 to Array.length trace - 1 do
    if trace.(i) >= trace.(i - 1) && !bad = Ok () then
      bad :=
        Error
          (Printf.sprintf "trace.(%d) = %.9g >= trace.(%d) = %.9g" i trace.(i)
             (i - 1)
             trace.(i - 1))
  done;
  !bad

let add_server p =
  let servers = Problem.servers p in
  let is_server = Array.to_list servers in
  let nodes = Matrix.dim (Problem.latency p) in
  let extra = ref None in
  for node = nodes - 1 downto 0 do
    if not (List.mem node is_server) then extra := Some node
  done;
  match !extra with
  | None -> None
  | Some node ->
      Some
        (Problem.make
           ?capacity:(Problem.capacity p)
           ~latency:(Problem.latency p)
           ~servers:(Array.append servers [| node |])
           ~clients:(Array.copy (Problem.clients p))
           ())

let check_instance ~seed =
  let d = Gen.descriptor_of_seed seed in
  let p = Gen.instantiate d in
  let capacitated = Problem.capacity p <> None in
  let checks = ref 0 and failures = ref [] in
  let checked name result =
    incr checks;
    match result with
    | Ok () -> ()
    | Error m -> failures := Printf.sprintf "%s: %s" name m :: !failures
  in
  let dg = Dg.run p in
  let assignments =
    List.map
      (fun key ->
        (key, if key = "dgreedy" then dg.Dg.assignment else run_algo ~seed key p))
      algo_keys
  in
  let values =
    List.map
      (fun (k, a) -> (k, Objective.max_interaction_path p a))
      assignments
  in
  let value k = List.assoc k values in
  let lb = Lower_bound.compute p in
  (* Validity: Single-Server is documented to ignore capacity. *)
  List.iter
    (fun (k, a) ->
      let require_capacity = not (capacitated && k = "single") in
      checked (k ^ " valid") (Invariant.assignment_valid ~require_capacity p a))
    assignments;
  (* Every algorithm dominates the super-optimal bound. *)
  List.iter
    (fun (k, v) -> checked (k ^ " >= LB") (Invariant.dominates_lb ~lb ~label:k v))
    values;
  checked "clock tight" (Invariant.clock_tight p (List.assoc "nearest" assignments));
  (* Coreset additive bound, always on: the resolution cycles with the
     seed so every eps — including the exact-equality eps=0 corner —
     gets the full instance mix. *)
  checked "coreset-bound"
    (Invariant.coreset_bound
       ~resolution:[| 0.; 0.05; 0.15; 0.3 |].(seed mod 4)
       ~seed p);
  (* Per-instance dominance relations. *)
  if not capacitated then
    checked "lfb <= nearest"
      (Invariant.no_worse ~label:"lfb" ~than:"nearest" (value "lfb")
         (value "nearest"));
  checked "dgreedy <= nearest"
    (Invariant.no_worse ~label:"dgreedy" ~than:"nearest" (value "dgreedy")
       (value "nearest"));
  checked "hill <= nearest"
    (Invariant.no_worse ~label:"hill" ~than:"its start" (value "hill")
       (value "nearest"));
  checked "anneal <= nearest"
    (Invariant.no_worse ~label:"anneal" ~than:"its start" (value "anneal")
       (value "nearest"));
  (* Distributed-Greedy: strictly decreasing trace, and a fixed point. *)
  checked "dgreedy trace decreasing" (strictly_decreasing dg.Dg.trace);
  let again = Dg.run ~initial:dg.Dg.assignment p in
  let again_stats = again.Dg.stats in
  checked "dgreedy fixed point"
    (if again_stats.Dg.modifications = 0 then Ok ()
     else
       Error
         (Printf.sprintf "%d further modifications from its own output"
            again_stats.Dg.modifications));
  (* Exact-optimum cross checks on brute-force-sized instances. *)
  let opt = if Gen.brute_sized d then Some (Brute_force.optimal_value p) else None in
  let greedy_monotonic =
    match opt with
    | None -> None
    | Some opt_value ->
        checked "LB <= OPT" (Invariant.lb_at_most_opt ~lb ~opt:opt_value);
        List.iter
          (fun (k, v) ->
            if not (capacitated && k = "single") then
              checked (k ^ " >= OPT")
                (Invariant.at_least_opt ~opt:opt_value ~label:k v))
          values;
        if Gen.is_metric d.kind && not capacitated then begin
          checked "nearest 3-approx"
            (Invariant.within_ratio ~ratio:3. ~opt:opt_value ~label:"nearest"
               (value "nearest"));
          checked "lfb 3-approx"
            (Invariant.within_ratio ~ratio:3. ~opt:opt_value ~label:"lfb"
               (value "lfb"))
        end;
        (match add_server p with
        | None -> None
        | Some plus ->
            let opt_plus = Brute_force.optimal_value plus in
            checked "OPT server-monotone"
              (if opt_plus <= opt_value +. Invariant.eps then Ok ()
               else
                 Error
                   (Printf.sprintf
                      "OPT rose from %.9g to %.9g with an extra server"
                      opt_value opt_plus));
            let lb_plus = Lower_bound.compute plus in
            checked "LB server-monotone"
              (if lb_plus <= lb +. Invariant.eps then Ok ()
               else
                 Error
                   (Printf.sprintf
                      "LB rose from %.9g to %.9g with an extra server" lb
                      lb_plus));
            let greedy_plus =
              Objective.max_interaction_path plus
                (Algorithm.run Algorithm.Greedy plus)
            in
            Some (greedy_plus <= value "greedy" +. Invariant.eps))
  in
  (* Load-aware objective: the delay model family cycles with the seed
     (decorrelated from the brute-force slice, which is [seed mod 4]),
     so every instance shape meets every family — including deep M/M/1
     saturation with mu at a quarter of the population. *)
  let n_clients = Problem.num_clients p in
  let delay =
    match seed / 4 mod 4 with
    | 0 -> Delay.Constant 2.
    | 1 -> Delay.Linear { base = 0.5; coeff = 0.3 }
    | 2 -> Delay.Queueing { mu = float_of_int (n_clients + 1) }
    | _ -> Delay.Queueing { mu = float_of_int (max 1 (n_clients / 4)) }
  in
  checked "delay monotone"
    (Invariant.delay_monotone ~max_load:(n_clients + 2) delay);
  let load_assignments =
    List.map
      (fun (k, algo) -> (k, Algorithm.run_load ~seed ~delay algo p))
      [
        ("nearest", Algorithm.Nearest_server);
        ("greedy", Algorithm.Greedy);
        ("dgreedy", Algorithm.Distributed_greedy);
      ]
  in
  let load_values =
    List.map
      (fun (k, a) -> (k, Objective.max_interaction_path_load p ~delay a))
      load_assignments
  in
  (* Every serving server has load >= 1, so both access hops pay at
     least delay(1): LB_load = LB + 2*delay(1) stays super-optimal. *)
  let lb_load = lb +. (2. *. Delay.eval delay 1) in
  List.iter
    (fun (k, a) ->
      checked (k ^ "-load valid") (Invariant.assignment_valid p a);
      checked (k ^ "-load dominates D")
        (Invariant.load_dominates ~delay ~label:k p a);
      checked (k ^ "-load fast = naive")
        (Invariant.load_fast_naive_agree ~delay ~label:k p a))
    load_assignments;
  List.iter
    (fun (k, v) ->
      checked (k ^ "-load >= LB_load")
        (Invariant.dominates_lb ~lb:lb_load ~label:(k ^ "-load") v))
    load_values;
  checked "zero-delay identity"
    (Invariant.load_zero_identity ~label:"greedy"
       p (List.assoc "greedy" assignments));
  (* Folk assumption, measured not enforced (see DESIGN §9): load-aware
     Greedy should beat load-blind Greedy on D_load. *)
  let load_greedy_better =
    let blind =
      Objective.max_interaction_path_load p ~delay
        (List.assoc "greedy" assignments)
    in
    List.assoc "greedy" load_values <= blind +. Invariant.eps
  in
  if Gen.brute_sized d then begin
    let opt_load = Brute_force.optimal_load_value ~delay p in
    checked "LB_load <= OPT_load"
      (Invariant.lb_at_most_opt ~lb:lb_load ~opt:opt_load);
    List.iter
      (fun (k, v) ->
        checked (k ^ "-load >= OPT_load")
          (Invariant.at_least_opt ~opt:opt_load ~label:(k ^ "-load") v))
      load_values
  end;
  (* Metamorphic checks: always on the evaluators, on a seed slice for
     the algorithms themselves. *)
  let nearest = List.assoc "nearest" assignments in
  checked "evaluator relabel-invariant"
    (Invariant.evaluator_relabel_invariant ~seed p nearest);
  checked "evaluator scale-linear" (Invariant.evaluator_scale_invariant p nearest);
  if seed mod 8 = 3 then begin
    let doubled = Invariant.scale p ~factor:2. in
    List.iter
      (fun k ->
        if scale_stable k then begin
          let v' =
            Objective.max_interaction_path doubled (run_algo ~seed k doubled)
          in
          checked (k ^ " scale-stable")
            (if v' = 2. *. value k then Ok ()
             else
               Error
                 (Printf.sprintf "%.17g <> 2 x %.17g after doubling" v'
                    (value k)))
        end)
      algo_keys;
    if Gen.tie_free p && not capacitated then begin
      let r = Invariant.relabel ~seed p in
      List.iter
        (fun k ->
          if relabel_stable k then begin
            let v' =
              Objective.max_interaction_path r.Invariant.problem
                (run_algo ~seed k r.Invariant.problem)
            in
            checked (k ^ " relabel-stable")
              (if Float.abs (v' -. value k) <= 1e-9 then Ok ()
               else
                 Error
                   (Printf.sprintf "%.17g <> %.17g after relabeling" v'
                      (value k)))
          end)
        algo_keys
    end
  end;
  (* Full protocol simulation, checked per event. *)
  let sim_checked =
    seed mod 8 = 1
    &&
    let clock = Clock.synthesize p nearest in
    clock.Clock.delta > 0.
    && begin
         let workload =
           Workload.rounds
             ~clients:(Problem.num_clients p)
             ~rounds:2
             ~period:(0.75 *. clock.Clock.delta)
         in
         let violations = Sim_invariant.check_run p nearest clock workload in
         checked "sim invariants"
           (match violations with
           | [] -> Ok ()
           | first :: _ ->
               Error
                 (Printf.sprintf "%d violation(s), first: %s"
                    (List.length violations) first));
         true
       end
  in
  (* The reliable transport must mask loss bit-identically. Only a
     theorem on tie-free uncapacitated instances: a client equidistant
     from two servers legitimately resolves the tie by message arrival
     order, and under capacity the bootstrap join order decides who gets
     a full server's last slot — both reshuffled by loss. *)
  let transport_checked =
    seed mod 8 = 5
    && Problem.num_clients p <= 16
    && Problem.num_servers p <= 6
    && (not capacitated)
    && Gen.tie_free p
    && begin
         let clean = Dgreedy_protocol.run p in
         let fault = Fault.instantiate ~seed (Fault.loss ~rate:0.15 ()) in
         let faulty = Dgreedy_protocol.run ~fault p in
         checked "transport loss-identity"
           (if
              Assignment.equal clean.Dgreedy_protocol.assignment
                faulty.Dgreedy_protocol.assignment
              && clean.Dgreedy_protocol.objective
                 = faulty.Dgreedy_protocol.objective
            then Ok ()
            else
              Error
                (Printf.sprintf "lossy run diverged: D %.9g vs clean %.9g"
                   faulty.Dgreedy_protocol.objective
                   clean.Dgreedy_protocol.objective));
         true
       end
  in
  (* Layout and index differentials — the flat-substrate contracts. The
     boxed reference layout must round-trip bit-for-bit; the landmark
     index must answer every client's nearest-server query exactly as
     the exhaustive scan, whether or not its triangle bounds verified
     (non-metric instances exercise the fallback); and on a seed slice
     the whole algorithm suite re-runs over the round-tripped matrix
     and must reproduce every assignment and objective bit-for-bit. *)
  let index_metric =
    let m0 = Problem.latency p in
    let boxed = Matrix.Reference.of_matrix m0 in
    checked "layout round-trip"
      (if Matrix.Reference.bit_equal boxed m0 then Ok ()
       else Error "boxed copy is not bit-identical to the flat store");
    let index = Landmark.build m0 ~candidates:(Problem.servers p) in
    let bad = ref None in
    for c = Problem.num_clients p - 1 downto 0 do
      let i, di = Landmark.nearest index ~query:(Problem.clients p).(c) in
      let s = Problem.nearest_server p c in
      if i <> s || di <> Problem.d_cs p c s then bad := Some (c, i, s)
    done;
    checked "index nearest exact"
      (match !bad with
      | None -> Ok ()
      | Some (c, i, s) ->
          Error
            (Printf.sprintf
               "client %d: index picked server %d, exhaustive scan %d (metric_ok=%b)"
               c i s (Landmark.metric_ok index)));
    if seed mod 4 = 0 then begin
      let rt = Matrix.Reference.to_matrix boxed in
      let p' =
        Problem.make
          ?capacity:(Problem.capacity p)
          ~latency:rt ~servers:(Problem.servers p) ~clients:(Problem.clients p)
          ()
      in
      List.iter
        (fun (key, a) ->
          let a' = run_algo ~seed key p' in
          let v' = Objective.max_interaction_path p' a' in
          checked (key ^ " layout-stable")
            (if Assignment.equal a a' && v' = value key then Ok ()
             else
               Error
                 (Printf.sprintf "D %.17g on flat vs %.17g on round-tripped"
                    (value key) v')))
        assignments;
      checked "LB layout-stable"
        (let lb' = Lower_bound.compute p' in
         if lb' = lb then Ok ()
         else Error (Printf.sprintf "LB %.17g on flat vs %.17g on round-tripped" lb lb'))
    end;
    Landmark.metric_ok index
  in
  {
    seed;
    instance = Format.asprintf "%a" Gen.pp_descriptor d;
    capacitated;
    checks = !checks;
    failures = List.rev !failures;
    values;
    lb;
    opt;
    sim_checked;
    transport_checked;
    greedy_monotonic;
    load_greedy_better;
    index_metric;
  }
