(** The conformance harness driver.

    [run ~seed ~count ()] checks [count] generated instances with
    absolute seeds [seed .. seed + count - 1] — each one a pure function
    of its seed, fanned out on a {!Dia_parallel.Pool} and folded back in
    seed order, so the report is bit-identical for any [jobs]. On top of
    the per-instance checks ({!Differential.check_instance}) the driver
    adds whole-suite checks that cannot run inside the fan-out:

    - {b pool identity}: [Lower_bound.compute ~pool] and
      [Local_search.anneal_restarts ~pool] must be bit-identical to
      their sequential runs (nested pool submissions execute inline, so
      this is only a real test at top level);
    - {b aggregate dominance}: over a large enough sample ([>= 100]
      instances with a usable [LB]), the paper's quality ordering of the
      mean normalized objective must hold — Greedy and LFB no worse on
      average than Nearest-Server, within a small statistical slack;
    - {b soak determinism}: a control-plane soak run
      ({!Dia_runtime.Soak}) killed at its first checkpoint and resumed
      through the checkpoint codec must produce a report and event log
      bit-identical to the uninterrupted run.

    Every failure is reported with the absolute instance seed; replay
    one with [bin/main.exe oracle --seed N --count 1]. *)

type report = {
  base_seed : int;
  instances : int;
  checks : int;  (** total individual checks evaluated *)
  failures : (int * string) list;
      (** [(instance_seed, message)] — suite-level failures carry
          [base_seed] *)
  brute_checked : int;  (** instances cross-checked against the optimum *)
  sim_checked : int;  (** instances run through the checked simulation *)
  transport_checked : int;  (** instances run through the lossy protocol *)
  mean_normalized : (string * float) list;
      (** algorithm key -> mean [D / LB] over the uncapacitated
          instances with [LB > 0] (capacity changes the dominance
          relations, so they are excluded from the aggregate) *)
  normalized_instances : int;  (** instances included in the means *)
  greedy_monotonic_violations : int;
      (** diagnostic: instances where one more server worsened Greedy *)
  greedy_monotonic_total : int;
  load_greedy_losses : int;
      (** diagnostic: instances where load-aware Greedy was worse than
          load-blind Greedy on [D_load] (measured over every instance) *)
  index_metric : int;
      (** instances whose landmark index verified its triangle bounds
          (the rest exercised the exhaustive fallback) *)
}

val run : ?jobs:int -> ?count:int -> seed:int -> unit -> report
(** [count] defaults to [200]; [jobs] to
    {!Dia_parallel.Pool.default_jobs} (the [DIA_JOBS] environment
    variable). *)

val ok : report -> bool

val render : report -> string
(** Human-readable multi-line summary including replay commands for
    every failure. *)
