module Matrix = Dia_latency.Matrix
module Synthetic = Dia_latency.Synthetic
module Problem = Dia_core.Problem

type kind =
  | Metric_euclidean
  | Metric_grid
  | Internet
  | Uniform_nonmetric
  | Clustered_zipf
  | Single_server
  | Server_heavy
  | Duplicate_coords
  | Weighted_stacked
  | Clustered_scale
  | Load_heavy

let kinds =
  [
    Metric_euclidean; Metric_grid; Internet; Uniform_nonmetric;
    Clustered_zipf; Single_server; Server_heavy; Duplicate_coords;
    Weighted_stacked; Clustered_scale; Load_heavy;
  ]

let kind_name = function
  | Metric_euclidean -> "metric-euclidean"
  | Metric_grid -> "metric-grid"
  | Internet -> "internet"
  | Uniform_nonmetric -> "uniform-nonmetric"
  | Clustered_zipf -> "clustered-zipf"
  | Single_server -> "single-server"
  | Server_heavy -> "server-heavy"
  | Duplicate_coords -> "duplicate-coords"
  | Weighted_stacked -> "weighted-stacked"
  | Clustered_scale -> "clustered-scale"
  | Load_heavy -> "load-heavy"

(* Euclidean embeddings (including duplicated or clustered points) are
   pseudometrics, so the triangle inequality — the 3-approximation
   precondition — holds; grid shortest paths are metric by construction.
   Internet-like matrices violate it on purpose. *)
let is_metric = function
  | Metric_euclidean | Metric_grid | Duplicate_coords | Clustered_scale -> true
  | Internet | Uniform_nonmetric | Clustered_zipf | Single_server
  | Server_heavy | Weighted_stacked | Load_heavy -> false

type descriptor = {
  kind : kind;
  seed : int;
  nodes : int;
  servers : int;
  clients : int;
  capacitated : bool;
}

let clamp lo hi v = max lo (min hi v)

(* Normalised sizes: every descriptor — including shrunk or hand-written
   ones — maps to a feasible instance shape. *)
let counts d =
  let nodes = clamp 4 64 d.nodes in
  let nodes =
    match d.kind with
    | Metric_grid ->
        (* Round to a rows x cols rectangle no bigger than requested. *)
        let rows = max 2 (int_of_float (sqrt (float_of_int nodes))) in
        let cols = max 2 (nodes / rows) in
        rows * cols
    | _ -> nodes
  in
  let servers =
    match d.kind with
    | Single_server -> 1
    | Server_heavy ->
        let clients = clamp 1 nodes d.clients in
        clamp clients nodes (max d.servers clients)
    (* Few servers under a big population: utilisation per server is
       high, so load-dependent delay dominates the network term. *)
    | Load_heavy -> clamp 1 (min 4 nodes) d.servers
    | _ -> clamp 1 nodes d.servers
  in
  let n_clients =
    match d.kind with
    | Clustered_zipf -> clamp 1 96 d.clients
    | Server_heavy -> min (clamp 1 nodes d.clients) servers
    (* Population well beyond the node count: many clients per node is
       the weighted/coreset regime. *)
    | Weighted_stacked | Clustered_scale -> clamp 8 160 (d.clients * 5)
    | Load_heavy -> clamp 8 120 (d.clients * 4)
    | _ -> nodes
  in
  let capacity =
    if not d.capacitated then None
    else begin
      let minimum = (n_clients + servers - 1) / servers in
      let rng = Random.State.make [| d.seed; 0xcafe |] in
      Some (minimum + Random.State.int rng 3)
    end
  in
  (nodes, servers, n_clients, capacity)

let brute_sized d =
  let _, servers, n_clients, _ = counts d in
  n_clients <= 10 && servers <= 4

let capacity_of d =
  let _, _, _, capacity = counts d in
  capacity

let descriptor_of_seed seed =
  let seed = abs seed in
  let rng = Random.State.make [| 0x0dac1e; seed |] in
  let kind = List.nth kinds (Random.State.int rng (List.length kinds)) in
  (* One quarter of the seed line is brute-force sized, so exact-optimum
     cross-checks cover every kind at the same density. *)
  let small = seed mod 4 = 0 in
  let nodes =
    if small then 4 + Random.State.int rng 7 else 8 + Random.State.int rng 29
  in
  let servers = if small then 2 + Random.State.int rng 3 else 2 + Random.State.int rng 7 in
  let clients =
    match kind with
    | Server_heavy -> if small then 2 + Random.State.int rng 3 else 4 + Random.State.int rng 9
    | _ -> if small then 2 + Random.State.int rng 9 else 6 + Random.State.int rng 31
  in
  let capacitated = Random.State.int rng 3 = 0 in
  { kind; seed; nodes; servers; clients; capacitated }

let duplicate_matrix ~seed n =
  let rng = Random.State.make [| seed; 0xd0b1e |] in
  let half = max 2 ((n + 1) / 2) in
  let pts =
    Array.init half (fun _ ->
        (Random.State.float rng 400., Random.State.float rng 400.))
  in
  Matrix.init n (fun i j ->
      let xi, yi = pts.(i mod half) and xj, yj = pts.(j mod half) in
      Float.hypot (xi -. xj) (yi -. yj))

(* Tight Gaussian-ish clusters of Euclidean points: most node pairs are
   either near-coincident (same cluster) or far apart — the geometry a
   coreset collapses best, and still a pseudometric. *)
let clustered_matrix ~seed n =
  let rng = Random.State.make [| seed; 0xc7a5 |] in
  let hubs = 3 + Random.State.int rng 3 in
  let centers =
    Array.init hubs (fun _ ->
        (Random.State.float rng 400., Random.State.float rng 400.))
  in
  let pts =
    Array.init n (fun _ ->
        let cx, cy = centers.(Random.State.int rng hubs) in
        ( cx +. Random.State.float rng 12. -. 6.,
          cy +. Random.State.float rng 12. -. 6. ))
  in
  Matrix.init n (fun i j ->
      let xi, yi = pts.(i) and xj, yj = pts.(j) in
      Float.hypot (xi -. xj) (yi -. yj))

let matrix_of d nodes =
  match d.kind with
  | Metric_euclidean -> Synthetic.euclidean ~seed:d.seed ~n:nodes ~side:400.
  | Metric_grid ->
      let rows = max 2 (int_of_float (sqrt (float_of_int nodes))) in
      let cols = max 2 (nodes / rows) in
      Synthetic.grid ~rows ~cols ~spacing:10.
  | Internet | Clustered_zipf | Single_server | Weighted_stacked | Load_heavy ->
      Synthetic.internet_like ~seed:d.seed nodes
  | Uniform_nonmetric ->
      Synthetic.uniform_random ~seed:d.seed ~n:nodes ~lo:1. ~hi:300.
  | Server_heavy -> Synthetic.euclidean ~seed:d.seed ~n:nodes ~side:400.
  | Duplicate_coords -> duplicate_matrix ~seed:d.seed nodes
  | Clustered_scale -> clustered_matrix ~seed:d.seed nodes

(* Zipf-weighted client placement: rank r (over a seed-shuffled node
   order) gets weight 1/(r+1), so a few nodes host most clients. *)
let zipf_clients rng ~nodes ~count =
  let order = Array.init nodes Fun.id in
  for i = nodes - 1 downto 1 do
    let j = Random.State.int rng (i + 1) in
    let t = order.(i) in
    order.(i) <- order.(j);
    order.(j) <- t
  done;
  let weights = Array.init nodes (fun r -> 1. /. float_of_int (r + 1)) in
  let total = Array.fold_left ( +. ) 0. weights in
  Array.init count (fun _ ->
      let x = Random.State.float rng total in
      let rec pick r acc =
        if r = nodes - 1 then order.(r)
        else
          let acc = acc +. weights.(r) in
          if x < acc then order.(r) else pick (r + 1) acc
      in
      pick 0 0.)

let instantiate d =
  let nodes, servers, n_clients, capacity = counts d in
  let matrix = matrix_of d nodes in
  let server_nodes = Dia_placement.Placement.random ~seed:d.seed ~k:servers ~n:nodes in
  let rng = Random.State.make [| d.seed; 0xc11e27 |] in
  match d.kind with
  | Clustered_zipf ->
      let clients = zipf_clients rng ~nodes ~count:n_clients in
      Problem.make ?capacity ~latency:matrix ~servers:server_nodes ~clients ()
  | Server_heavy ->
      let clients = Array.init n_clients (fun _ -> Random.State.int rng nodes) in
      Problem.make ?capacity ~latency:matrix ~servers:server_nodes ~clients ()
  | Weighted_stacked ->
      (* The whole population stacks onto a few hub nodes — the reduced
         (weighted) instance is far smaller than the client count. *)
      let hubs = max 2 (nodes / 6) in
      let order = Array.init nodes Fun.id in
      for i = nodes - 1 downto 1 do
        let j = Random.State.int rng (i + 1) in
        let t = order.(i) in
        order.(i) <- order.(j);
        order.(j) <- t
      done;
      let clients =
        Array.init n_clients (fun _ -> order.(Random.State.int rng hubs))
      in
      Problem.make ?capacity ~latency:matrix ~servers:server_nodes ~clients ()
  | Clustered_scale ->
      let clients = Array.init n_clients (fun _ -> Random.State.int rng nodes) in
      Problem.make ?capacity ~latency:matrix ~servers:server_nodes ~clients ()
  | Load_heavy ->
      (* Most of the population crowds the server nodes themselves (a
         Zipf-ish skew across servers), so the network term of [D_load]
         is small and the queueing term decides — the regime where
         load-blind and load-aware assignment disagree hardest. *)
      let clients =
        Array.init n_clients (fun _ ->
            if Random.State.int rng 5 = 0 then Random.State.int rng nodes
            else begin
              let r = Random.State.int rng (servers * (servers + 1) / 2) in
              let rec pick s acc =
                let acc = acc + (servers - s) in
                if r < acc || s = servers - 1 then server_nodes.(s)
                else pick (s + 1) acc
              in
              pick 0 0
            end)
      in
      Problem.make ?capacity ~latency:matrix ~servers:server_nodes ~clients ()
  | _ ->
      Problem.all_nodes_clients ?capacity matrix ~servers:server_nodes

let tie_free p =
  (* Ties that matter are between {e distinct node pairs}: the same
     matrix entry showing up twice (a server that is also a client, two
     clients at one node) relabels consistently, so equal values there
     cannot make an index-order tie-break observable. So: the distance
     function must be injective over the distinct unordered node pairs
     the algorithms consult, and additionally no client may see two
     servers at distance zero (co-location collapses pairs out of the
     pool, so check the rows directly). *)
  let clients = Problem.clients p and servers = Problem.servers p in
  let pairs = Hashtbl.create 64 in
  let add a b = if a <> b then Hashtbl.replace pairs (min a b, max a b) () in
  Array.iter (fun c -> Array.iter (fun s -> add c s) servers) clients;
  Array.iteri
    (fun i si -> Array.iteri (fun j sj -> if j > i then add si sj) servers)
    servers;
  let per_client_distinct = ref true in
  let k = Problem.num_servers p in
  for ci = 0 to Problem.num_clients p - 1 do
    let row = Array.init k (fun si -> Problem.d_cs p ci si) in
    Array.sort Float.compare row;
    for i = 0 to k - 2 do
      if row.(i) = row.(i + 1) then per_client_distinct := false
    done
  done;
  let m = Problem.latency p in
  let values = Hashtbl.fold (fun (a, b) () acc -> Matrix.get m a b :: acc) pairs [] in
  let sorted = List.sort Float.compare values in
  let rec distinct = function
    | a :: (b :: _ as rest) -> a <> b && distinct rest
    | _ -> true
  in
  !per_client_distinct && distinct sorted

let pp_descriptor ppf d =
  let nodes, servers, n_clients, capacity = counts d in
  Format.fprintf ppf "%s seed=%d nodes=%d servers=%d clients=%d capacity=%s"
    (kind_name d.kind) d.seed nodes servers n_clients
    (match capacity with None -> "none" | Some c -> string_of_int c)

let arbitrary =
  let gen =
    QCheck.Gen.(
      map
        (fun ((kind, seed), (nodes, servers), (clients, capacitated)) ->
          { kind; seed; nodes; servers; clients; capacitated })
        (triple
           (pair (oneofl kinds) (int_bound 1_000_000))
           (pair (int_range 4 28) (int_range 1 8))
           (pair (int_range 1 36) bool)))
  in
  let shrink d yield =
    if d.capacitated then yield { d with capacitated = false };
    QCheck.Shrink.int d.nodes (fun nodes -> yield { d with nodes });
    QCheck.Shrink.int d.servers (fun servers -> yield { d with servers });
    QCheck.Shrink.int d.clients (fun clients -> yield { d with clients });
    QCheck.Shrink.int d.seed (fun seed -> yield { d with seed })
  in
  let print d = Format.asprintf "%a" pp_descriptor d in
  QCheck.make ~print ~shrink gen
