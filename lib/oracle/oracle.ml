module Pool = Dia_parallel.Pool
module Problem = Dia_core.Problem
module Assignment = Dia_core.Assignment
module Objective = Dia_core.Objective
module Lower_bound = Dia_core.Lower_bound
module Local_search = Dia_core.Local_search
module Algorithm = Dia_core.Algorithm

type report = {
  base_seed : int;
  instances : int;
  checks : int;
  failures : (int * string) list;
  brute_checked : int;
  sim_checked : int;
  transport_checked : int;
  mean_normalized : (string * float) list;
  normalized_instances : int;
  greedy_monotonic_violations : int;
  greedy_monotonic_total : int;
  load_greedy_losses : int;
  index_metric : int;
}

(* Relative slack on the aggregate mean ordering: the relations are
   statistical, not per-instance theorems. *)
let aggregate_slack = 0.01
let aggregate_min_sample = 100

let pool_identity_checks pool ~seed =
  let p = Gen.instantiate (Gen.descriptor_of_seed seed) in
  let failures = ref [] in
  let lb_seq = Lower_bound.compute p and lb_pool = Lower_bound.compute ~pool p in
  if lb_seq <> lb_pool then
    failures :=
      Printf.sprintf
        "pool identity: Lower_bound.compute gave %.17g on the pool, %.17g sequentially"
        lb_pool lb_seq
      :: !failures;
  let start = Algorithm.run Algorithm.Nearest_server p in
  let params = Differential.conformance_annealing in
  let a_seq, d_seq = Local_search.anneal_restarts ~params ~restarts:3 p start in
  let a_pool, d_pool =
    Local_search.anneal_restarts ~pool ~params ~restarts:3 p start
  in
  if (not (Assignment.equal a_seq a_pool)) || d_seq <> d_pool then
    failures :=
      Printf.sprintf
        "pool identity: anneal_restarts diverged (%.17g on the pool, %.17g sequentially)"
        d_pool d_seq
      :: !failures;
  List.rev !failures

(* Self-healing control plane: a soak run killed at a checkpoint and
   resumed through the checkpoint codec must produce a report and event
   log bit-identical to the uninterrupted run. *)
let soak_determinism_checks ~seed =
  let module Soak = Dia_runtime.Soak in
  let module Checkpoint = Dia_runtime.Checkpoint in
  let module Event_log = Dia_runtime.Event_log in
  let scenario =
    { Soak.default_scenario with Soak.seed; nodes = 50; servers = 4; horizon = 80. }
  in
  let config = { Soak.default_config with Soak.checkpoint_every = 25 } in
  match Soak.run scenario config with
  | Soak.Killed _ -> [ "soak determinism: uninterrupted run reported Killed" ]
  | Soak.Completed base -> (
      match Soak.run ~kill_after:1 scenario config with
      | Soak.Completed _ ->
          [ "soak determinism: kill_after run completed without stopping" ]
      | Soak.Killed st -> (
          match Checkpoint.decode (Checkpoint.encode st) with
          | Error m -> [ "soak determinism: checkpoint round-trip failed: " ^ m ]
          | Ok st -> (
              match Soak.run ~resume_from:st scenario config with
              | Soak.Killed _ -> [ "soak determinism: resumed run reported Killed" ]
              | Soak.Completed resumed ->
                  let failures = ref [] in
                  if Soak.render resumed <> Soak.render base then
                    failures :=
                      "soak determinism: resumed report differs from the \
                       uninterrupted run"
                      :: !failures;
                  if
                    Event_log.render resumed.Soak.log
                    <> Event_log.render base.Soak.log
                  then
                    failures :=
                      "soak determinism: resumed event log differs from the \
                       uninterrupted run"
                      :: !failures;
                  List.rev !failures)))

(* Standby failover: promotion must deliver exactly what the standby map
   promised. On an uncapacitated session with freshly armed standbys,
   [promote_standby] lands every orphan on its standby — no fallback, no
   stranding — and the post-failover objective equals the
   [standby_objective] computed before the crash. The surviving session
   must still be internally consistent (live primaries, live standbys,
   loads matching membership). *)
let standby_promotion_checks ~seed =
  let module Dynamic = Dia_core.Dynamic in
  let n = 48 and k = 5 in
  let matrix = Dia_latency.Synthetic.internet_like ~seed n in
  let servers = Dia_placement.Placement.random ~seed ~k ~n in
  let session = Dynamic.create matrix ~servers in
  for i = 0 to 79 do
    ignore (Dynamic.join session ~node:(i mod n))
  done;
  ignore (Dynamic.refresh_standbys session);
  let victim =
    let v = ref 0 in
    for s = 1 to k - 1 do
      if Dynamic.load session s > Dynamic.load session !v then v := s
    done;
    !v
  in
  let promised = Dynamic.standby_objective session victim in
  let r = Dynamic.promote_standby session victim in
  let failures = ref [] in
  let fail fmt = Printf.ksprintf (fun m -> failures := m :: !failures) fmt in
  if r.Dynamic.promised <> promised then
    fail
      "standby promotion: promise drifted (standby_objective %.17g, promotion \
       recorded %.17g)"
      promised r.Dynamic.promised;
  if r.Dynamic.fallback <> 0 || r.Dynamic.stranded <> [] then
    fail
      "standby promotion: uncapacitated refreshed session used %d fallbacks \
       and stranded %d clients (expected pure promotion)"
      r.Dynamic.fallback
      (List.length r.Dynamic.stranded);
  if r.Dynamic.objective_after <> promised then
    fail
      "standby promotion: post-failover objective %.17g differs from the \
       promised %.17g"
      r.Dynamic.objective_after promised;
  let members = Dynamic.members session in
  let counts = Array.make k 0 in
  List.iter
    (fun (id, _node, server) ->
      if server = victim then
        fail "standby promotion: client %d still on the failed server" id
      else counts.(server) <- counts.(server) + 1;
      match Dynamic.standby_of session id with
      | Some sb when sb = victim ->
          fail "standby promotion: client %d left with a dead standby" id
      | Some sb when sb = server ->
          fail "standby promotion: client %d is its own standby" id
      | _ -> ())
    members;
  Array.iteri
    (fun s c ->
      if Dynamic.load session s <> c then
        fail
          "standby promotion: load(%d) = %d but %d members live there" s
          (Dynamic.load session s) c)
    counts;
  List.rev !failures

let aggregate_checks ~normalized_instances means =
  if normalized_instances < aggregate_min_sample then []
  else begin
    let mean k = List.assoc k means in
    let check label a b =
      if mean a <= mean b *. (1. +. aggregate_slack) then None
      else
        Some
          (Printf.sprintf
             "aggregate dominance: mean D/LB of %s (%.4f) exceeds %s (%.4f)"
             label (mean a) b (mean b))
    in
    List.filter_map Fun.id
      [
        check "greedy" "greedy" "nearest";
        check "lfb" "lfb" "nearest";
        check "greedy" "greedy" "lfb";
        check "dgreedy" "dgreedy" "nearest";
      ]
  end

let run ?jobs ?(count = 200) ~seed () =
  if count < 1 then invalid_arg "Oracle.run: count must be >= 1";
  Pool.with_pool ?jobs (fun pool ->
      let outcomes =
        Pool.run_seeds pool ~seeds:count (fun i ->
            Differential.check_instance ~seed:(seed + i))
      in
      let checks = ref 0
      and failures = ref []
      and brute = ref 0
      and sim = ref 0
      and transport = ref 0
      and mono_bad = ref 0
      and mono_total = ref 0
      and load_losses = ref 0
      and metric_idx = ref 0
      and norm_n = ref 0 in
      let sums = List.map (fun k -> (k, ref 0.)) Differential.algo_keys in
      Array.iter
        (fun (o : Differential.outcome) ->
          checks := !checks + o.Differential.checks;
          List.iter
            (fun m -> failures := (o.Differential.seed, m) :: !failures)
            o.Differential.failures;
          if o.Differential.opt <> None then incr brute;
          if o.Differential.sim_checked then incr sim;
          if o.Differential.transport_checked then incr transport;
          (match o.Differential.greedy_monotonic with
          | Some ok ->
              incr mono_total;
              if not ok then incr mono_bad
          | None -> ());
          if not o.Differential.load_greedy_better then incr load_losses;
          if o.Differential.index_metric then incr metric_idx;
          if o.Differential.lb > 1e-9 && not o.Differential.capacitated then begin
            incr norm_n;
            List.iter
              (fun (k, v) ->
                let sum = List.assoc k sums in
                sum := !sum +. (v /. o.Differential.lb))
              o.Differential.values
          end)
        outcomes;
      let mean_normalized =
        List.map
          (fun (k, sum) ->
            (k, if !norm_n = 0 then Float.nan else !sum /. float_of_int !norm_n))
          sums
      in
      let suite_failures =
        pool_identity_checks pool ~seed
        @ soak_determinism_checks ~seed
        @ standby_promotion_checks ~seed
        @ aggregate_checks ~normalized_instances:!norm_n mean_normalized
      in
      List.iter (fun m -> failures := (seed, m) :: !failures) suite_failures;
      {
        base_seed = seed;
        instances = count;
        checks = !checks + 8 + (if !norm_n >= aggregate_min_sample then 4 else 0);
        failures = List.rev !failures;
        brute_checked = !brute;
        sim_checked = !sim;
        transport_checked = !transport;
        mean_normalized;
        normalized_instances = !norm_n;
        greedy_monotonic_violations = !mono_bad;
        greedy_monotonic_total = !mono_total;
        load_greedy_losses = !load_losses;
        index_metric = !metric_idx;
      })

let ok r = r.failures = []

let render r =
  let b = Buffer.create 1024 in
  Buffer.add_string b
    (Printf.sprintf
       "oracle: %d instances (seeds %d..%d), %d checks, %d against brute force, %d simulated, %d lossy-protocol\n"
       r.instances r.base_seed
       (r.base_seed + r.instances - 1)
       r.checks r.brute_checked r.sim_checked r.transport_checked);
  Buffer.add_string b
    (Printf.sprintf
       "landmark index: triangle bounds verified on %d/%d instances (the rest ran the exhaustive fallback)\n"
       r.index_metric r.instances);
  Buffer.add_string b
    (Printf.sprintf "mean D/LB over %d instances:" r.normalized_instances);
  List.iter
    (fun (k, m) -> Buffer.add_string b (Printf.sprintf " %s=%.3f" k m))
    r.mean_normalized;
  Buffer.add_char b '\n';
  if r.greedy_monotonic_total > 0 then
    Buffer.add_string b
      (Printf.sprintf
         "diagnostic: adding a server worsened Greedy on %d/%d instances (not a theorem; not enforced)\n"
         r.greedy_monotonic_violations r.greedy_monotonic_total);
  Buffer.add_string b
    (Printf.sprintf
       "diagnostic: load-aware Greedy lost to load-blind Greedy on D_load on %d/%d instances (not a theorem; not enforced)\n"
       r.load_greedy_losses r.instances);
  (match r.failures with
  | [] -> Buffer.add_string b "all checks passed\n"
  | failures ->
      Buffer.add_string b
        (Printf.sprintf "%d FAILURE(S):\n" (List.length failures));
      List.iter
        (fun (seed, m) ->
          Buffer.add_string b
            (Printf.sprintf "  seed %d: %s\n    replay: oracle --seed %d --count 1\n"
               seed m seed))
        failures);
  Buffer.contents b
