(** Differential testing of the full algorithm suite on one instance.

    Runs all nine assignment algorithms — the six of
    {!Dia_core.Algorithm} plus {!Dia_core.Zone_based},
    {!Dia_core.Local_search.hill_climb} and
    {!Dia_core.Local_search.anneal} — on the same generated instance and
    checks every relation the paper (or the implementations' own
    contracts) promises between them:

    - validity and capacity feasibility of every output (Single-Server
      deliberately ignores capacity, so only its validity is checked on
      capacitated instances);
    - [D(A) >= LB] for every algorithm, and the synthesized clock is
      tight;
    - per-instance dominance: LFB and Distributed-Greedy never worse
      than Nearest-Server (LFB only uncapacitated), local search never
      worse than its starting point;
    - Distributed-Greedy is a fixed point: re-running it from its own
      output commits zero modifications, and its trace is strictly
      decreasing;
    - on brute-force-sized instances ({!Gen.brute_sized}): nothing beats
      the exact optimum, [LB <= OPT], the 3-approximation bounds of
      Nearest-Server and LFB on metric uncapacitated instances, and
      adding a server never worsens [OPT] or [LB];
    - metamorphic checks: [D] and [LB] are invariant under index
      relabeling and linear under scaling — for the evaluators always,
      and (on a seed-selected slice) for the algorithms themselves:
      every algorithm but annealing is scale-stable, while
      relabel-stability is only enforced for Nearest-Server, LFB and
      Single-Server — Greedy, Zone-Based, Distributed-Greedy and hill
      climbing resolve equally-improving moves in index order and
      genuinely land in different local optima under permutation;
    - on seed-selected slices, a full protocol simulation checked
      per-event by {!Sim_invariant}, and bit-identity of the
      Distributed-Greedy protocol under 15% message loss versus a clean
      network (tie-free instances only — a client equidistant from two
      servers legitimately resolves the tie by message arrival order);
    - the load-aware objective, under a delay-model family cycling with
      the seed (constant, linear, unsaturated and saturated M/M/1):
      validity of the load-aware Nearest/Greedy/Distributed-Greedy
      outputs, [D_load >= D] exactly, the fast effective-eccentricity
      evaluator against the O(|C|^2) definition bit-for-bit, [D_load]
      under [Constant 0.] bit-equal to [D], [Delay.eval] monotone
      through saturation, [D_load >= LB_load = LB + 2*delay(1)], and on
      brute-force-sized instances the exact sandwich
      [LB_load <= OPT_load <= D_load] for every load-aware output.

    Greedy is {e not} server-monotone (adding a server can worsen its
    [D] — refuted empirically), so that property is tallied as a
    diagnostic, never enforced. The same holds for "load-aware Greedy
    beats load-blind Greedy on [D_load]" — usually true, not always
    (both are tallied; see DESIGN §9). *)

val algo_keys : string list
(** The nine algorithm keys, in report order. *)

val conformance_annealing : Dia_core.Local_search.annealing_params
(** Reduced annealing schedule used by the harness so thousands of
    instances stay fast. *)

type outcome = {
  seed : int;  (** the absolute instance seed — replays this instance *)
  instance : string;  (** rendered descriptor *)
  capacitated : bool;
  checks : int;  (** checks evaluated on this instance *)
  failures : string list;  (** rendered violations, empty when clean *)
  values : (string * float) list;  (** algorithm key -> its [D(A)] *)
  lb : float;
  opt : float option;  (** exact optimum on brute-force-sized instances *)
  sim_checked : bool;
  transport_checked : bool;
  greedy_monotonic : bool option;
      (** diagnostic only: did adding a server not worsen Greedy here? *)
  load_greedy_better : bool;
      (** diagnostic only: was load-aware Greedy no worse than
          load-blind Greedy on [D_load] under this instance's delay
          model? *)
  index_metric : bool;
      (** did the landmark index's triangle bounds verify on this
          instance's matrix? (Its nearest-server answers are checked
          against the exhaustive scan either way — [false] means the
          exhaustive fallback was the path exercised.) *)
}

val run_algo : seed:int -> string -> Dia_core.Problem.t -> Dia_core.Assignment.t
(** Run one algorithm by key ({!algo_keys}); exposed for the qcheck
    properties and replay tooling. *)

val check_instance : seed:int -> outcome
(** Generate instance [seed] (via {!Gen.descriptor_of_seed}) and run
    every applicable check. Pure function of [seed] — safe to fan out on
    a {!Dia_parallel.Pool} and replayable with
    [oracle --seed N --count 1]. *)
