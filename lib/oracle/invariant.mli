(** Executable statements of the paper's theorems.

    Each check returns [Ok ()] or [Error message] with the numbers that
    violated it, so the harness can aggregate failures without raising.
    These are the {e relations} the unit suites never exercise: validity
    and capacity feasibility of every assignment, domination of the
    super-optimal lower bound [LB] (Section V), the 3-approximation
    bounds of Nearest-Server and Longest-First-Batch on metric instances
    (Section IV), tightness of the synchronized-clock construction
    (Section II-C), and invariance of the objective under relabeling and
    uniform scaling of the latency matrix. *)

type check = (unit, string) result

val failures : (string * check) list -> string list
(** Keep the failing checks, each rendered as ["name: message"]. *)

val eps : float
(** Comparison slack ([1e-6]) for checks whose two sides are computed by
    different float expressions. Checks whose two sides are the same
    expression on permuted data compare exactly. *)

(** {2 Value-level theorems} *)

val assignment_valid :
  ?require_capacity:bool ->
  Dia_core.Problem.t ->
  Dia_core.Assignment.t ->
  check
(** Right client count, every client on an in-range server and — unless
    [require_capacity] is [false] — no server over capacity. *)

val dominates_lb : lb:float -> label:string -> float -> check
(** [D(A) >= LB] — the bound of Section V holds for every algorithm. *)

val at_least_opt : opt:float -> label:string -> float -> check
(** [D(A) >= OPT]: no heuristic beats the exact branch-and-bound
    optimum. *)

val within_ratio : ratio:float -> opt:float -> label:string -> float -> check
(** [D(A) <= ratio * OPT] — the approximation guarantee (only valid on
    metric instances). *)

val no_worse : label:string -> than:string -> float -> float -> check
(** [no_worse ~label ~than a b] checks [a <= b + eps] — the paper's
    per-instance dominance relations (e.g. LFB never worse than
    Nearest-Server). *)

val lb_at_most_opt : lb:float -> opt:float -> check
(** The lower bound never exceeds the optimum ("super-optimal"). *)

(** {2 Clock construction (Section II-C)} *)

val clock_tight : Dia_core.Problem.t -> Dia_core.Assignment.t -> check
(** The synthesized clock is feasible, constraint (i) is exactly tight,
    and the uniform interaction time equals [delta = D(A)]. *)

(** {2 Metamorphic transforms and their invariants} *)

type relabeling = {
  problem : Dia_core.Problem.t;  (** same instance, indices permuted *)
  client_perm : int array;  (** new client index of old client [c] *)
  server_perm : int array;  (** new server index of old server [s] *)
}

val relabel : seed:int -> Dia_core.Problem.t -> relabeling
(** Apply a seed-derived random permutation to the client and server
    index spaces (the latency matrix and node ids are untouched —
    only the order algorithms see them in changes). *)

val relabel_assignment :
  relabeling -> Dia_core.Assignment.t -> Dia_core.Assignment.t
(** Transport an assignment of the original instance to the relabeled
    one. *)

val scale : Dia_core.Problem.t -> factor:float -> Dia_core.Problem.t
(** Multiply every latency by [factor] (> 0). *)

val evaluator_relabel_invariant :
  seed:int -> Dia_core.Problem.t -> Dia_core.Assignment.t -> check
(** [D] and [LB] are exactly unchanged under {!relabel} — the objective
    is a function of the distance multiset, not of index order. *)

val evaluator_scale_invariant :
  Dia_core.Problem.t -> Dia_core.Assignment.t -> check
(** [D(scale p 2) = 2 * D(p)] and [LB(scale p 2) = 2 * LB(p)], exactly
    (doubling is exact in binary floating point). *)

(** {2 Load-aware objective (lib/core/delay)} *)

val load_dominates :
  delay:Dia_core.Delay.t ->
  label:string ->
  Dia_core.Problem.t ->
  Dia_core.Assignment.t ->
  check
(** [D_load(A) >= D(A)], exactly (no epsilon): every pair's load-aware
    path adds two non-negative delay terms, so the max only moves up. *)

val load_zero_identity :
  label:string -> Dia_core.Problem.t -> Dia_core.Assignment.t -> check
(** Under [Constant 0.] the delay terms are exact float zeros —
    [D_load] must equal [D] bit for bit. *)

val load_fast_naive_agree :
  delay:Dia_core.Delay.t ->
  label:string ->
  Dia_core.Problem.t ->
  Dia_core.Assignment.t ->
  check
(** The per-server effective-eccentricity evaluator against the
    O(|C|^2) definition — bit-identical (same term grouping). *)

val delay_monotone : max_load:int -> Dia_core.Delay.t -> check
(** [Delay.eval] is non-decreasing over loads [0..max_load] — in
    particular across the M/M/1 saturation boundary. *)

(** {2 Coreset bound (lib/coreset)} *)

val coreset_bound : resolution:float -> seed:int -> Dia_core.Problem.t -> check
(** Build a coreset of the instance's uncapacitated relaxation at
    [resolution], solve Greedy on the reduced instance, expand, and
    check the certified additive sandwich
    [|D_reduced - D_full| <= 2r = bound] (within {!eps}); at
    [resolution = 0] the two objectives must be exactly equal. *)
