(** Seeded problem-instance generators for the conformance harness.

    Every instance the oracle checks is described by a small, pure
    {!descriptor}; {!instantiate} derives the actual {!Dia_core.Problem}
    deterministically from it. The descriptor — not the instance — is
    what the harness enumerates, shrinks, and prints, so a failing check
    is always reproducible from one integer seed
    ([dia oracle --seed N --count 1]).

    The kinds cover the paper's experimental regimes plus the degenerate
    corners the algorithms must survive: true metrics (random Euclidean
    embeddings, grid graphs), Internet-like matrices with triangle
    violations, aggressively non-metric i.i.d. matrices, clustered/Zipf
    client populations (many clients per node), capacitated variants,
    one-server instances, instances with at least as many servers as
    clients, and duplicate coordinates (zero inter-node distances and
    massive distance ties). *)

type kind =
  | Metric_euclidean  (** random points in a square; true metric *)
  | Metric_grid  (** grid-graph shortest paths; metric with many ties *)
  | Internet  (** clustered, heavy-tailed, triangle violations *)
  | Uniform_nonmetric  (** i.i.d. uniform entries; adversarially non-metric *)
  | Clustered_zipf  (** Internet-like matrix, Zipf-weighted client placement *)
  | Single_server  (** |S| = 1 *)
  | Server_heavy  (** |S| >= |C| *)
  | Duplicate_coords  (** duplicated embedding points: zero distances, ties *)
  | Weighted_stacked
      (** the whole population stacked on a few hub nodes of an
          Internet-like matrix — the weighted/coreset regime, clients
          well beyond the node count *)
  | Clustered_scale
      (** tight Euclidean clusters with clients beyond the node count;
          metric, and the geometry a coreset collapses best *)
  | Load_heavy
      (** a big population crowding the nodes of at most four servers
          (Internet-like matrix): per-server utilisation is high and the
          queueing term of [D_load] dominates the network term — the
          regime where load-blind and load-aware assignment disagree *)

val kinds : kind list
val kind_name : kind -> string

val is_metric : kind -> bool
(** Whether instances of this kind satisfy the triangle inequality — the
    precondition of the paper's 3-approximation theorems. *)

type descriptor = {
  kind : kind;
  seed : int;  (** drives every random choice during instantiation *)
  nodes : int;  (** latency-matrix dimension (before normalisation) *)
  servers : int;  (** requested server count *)
  clients : int;  (** requested client count (kinds with free clients) *)
  capacitated : bool;  (** derive a feasible per-server capacity *)
}

val descriptor_of_seed : int -> descriptor
(** The harness's enumeration: a deterministic descriptor per integer
    seed, cycling uniformly over the kinds with randomised sizes.
    Seeds with [seed mod 4 = 0] produce brute-force-sized instances
    ({!brute_sized}), so one quarter of any contiguous seed range is
    cross-checked against the exact optimum. *)

val brute_sized : descriptor -> bool
(** Small enough (<= 10 clients, <= 4 servers after normalisation) that
    {!Dia_core.Brute_force.optimal} is cheap and the exact-optimality
    checks run. *)

val instantiate : descriptor -> Dia_core.Problem.t
(** Build the instance. Total: out-of-range fields are normalised (e.g.
    [servers] is clamped to the node count), never rejected, so shrunk
    descriptors always instantiate. *)

val capacity_of : descriptor -> int option
(** The capacity {!instantiate} gives the instance ([None] when
    [capacitated] is false). *)

val tie_free : Dia_core.Problem.t -> bool
(** The distance function is injective over the distinct node pairs the
    algorithms consult, and no client sees two servers at the same
    distance. The same matrix entry appearing twice — a server that is
    also a client, two clients on one node — relabels consistently and
    is {e not} a tie. Index-based tie-breaking is then immaterial, which
    is the precondition for the {e algorithm-level}
    relabeling-invariance and lossy-transport-identity checks (the
    evaluator-level checks need no such guard). *)

val pp_descriptor : Format.formatter -> descriptor -> unit

val arbitrary : descriptor QCheck.arbitrary
(** QCheck generator over descriptors with deterministic shrinking:
    node/server/client counts shrink toward the minimum, the capacity
    toward absent, and the seed toward 0 — so qcheck failures surface
    minimal counterexample instances. *)
