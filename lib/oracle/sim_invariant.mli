(** Per-event conformance checking of the simulated DIA protocol.

    {!Dia_sim.Checker.analyze} inspects a finished report; this module
    instead hooks into {!Dia_sim.Protocol.run}'s [monitor] and enforces
    Section II's requirements {e at every event} as the engine produces
    it, so a violation is caught with the exact event that introduced it
    (and simulations that never terminate cleanly still get checked as
    far as they ran):

    - {b consistency}: every server executes an operation at one common
      simulation time — checked the moment a second execution of the
      same operation appears;
    - {b fairness / constant lag}: the issue-to-execution lag is one
      constant for all operations and servers, and operations execute in
      issue order on every server;
    - {b constant interaction time}: every presentation happens exactly
      [delta] after issue;
    - {b punctuality}: no event is late;
    - {b engine sanity}: events arrive in non-decreasing wall order per
      actor, nothing executes before its target, before its issue, or
      twice (checked even under [expect_feasible:false] — everything
      above it is a theorem {e of a feasible clock} and is only enforced
      under [expect_feasible]).

    The checker records violations instead of raising, so one run yields
    every breach, in event order. *)

type t

val create : ?eps:float -> ?expect_feasible:bool -> delta:float -> unit -> t
(** A fresh checker for a run with execution lag [delta]. [eps]
    (default [1e-6]) is the simulation-time comparison tolerance. Set
    [expect_feasible] (default [true]) to [false] when deliberately
    simulating an infeasible clock: then only the engine-sanity
    invariants are enforced (consistency, fairness, punctuality and the
    constant interaction time hold {e because} the clock is feasible,
    so an infeasible run legitimately breaks them). *)

val monitor : t -> Dia_sim.Protocol.event -> unit
(** The hook to pass to [Protocol.run ~monitor]. *)

val violations : t -> string list
(** Violations recorded so far, in event order. *)

val ok : t -> bool

val finalize : t -> servers:int -> clients:int -> unit
(** Completeness check after the run: every issued operation must have
    been executed by all [servers] and presented to all [clients].
    Records violations on the checker. *)

val check_run :
  ?jitter:(src:int -> dst:int -> base:float -> float) ->
  ?expect_feasible:bool ->
  Dia_core.Problem.t ->
  Dia_core.Assignment.t ->
  Dia_core.Clock.t ->
  Dia_sim.Workload.op list ->
  string list
(** Convenience: run the protocol under a fresh checker (plus
    {!finalize}) and return the violations. *)
