(** Server placement strategies.

    The paper's experiments place [k] servers at selected network nodes in
    three ways: uniformly at random, and with two minimum-K-center
    algorithms (Section V): a 2-approximation ("K-center-A") and a greedy
    heuristic ("K-center-B"). A placement is an array of distinct node
    indices into the latency matrix. *)

type strategy = Random_placement | K_center_a | K_center_b

val strategy_name : strategy -> string
(** ["random"], ["kcenter-a"], ["kcenter-b"]. *)

val strategy_of_string : string -> strategy option
(** Inverse of {!strategy_name}. *)

val all_strategies : strategy list

val random : seed:int -> k:int -> n:int -> int array
(** [random ~seed ~k ~n] draws [k] distinct nodes from [0 .. n-1]
    uniformly (partial Fisher-Yates), sorted ascending.

    @raise Invalid_argument unless [0 <= k <= n]. *)

val place :
  strategy ->
  ?seed:int ->
  ?pool:Dia_parallel.Pool.t ->
  Dia_latency.Matrix.t ->
  k:int ->
  int array
(** Place [k] servers on the nodes of a latency matrix with the given
    strategy. [seed] (default [0]) only affects [Random_placement] and
    K-center-A's choice of initial centre. [pool] parallelises the
    K-center distance scans (identical output for any pool size).

    @raise Invalid_argument unless [0 <= k <= dim]. *)

val coverage_radius : Dia_latency.Matrix.t -> int array -> float
(** [coverage_radius m centers] is the K-center objective: the maximum
    over nodes of the distance to the nearest centre ([infinity] when
    [centers] is empty and the matrix is non-empty). *)
