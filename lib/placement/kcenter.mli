(** Minimum K-center algorithms used for server placement.

    - {!two_approx} is the farthest-point traversal of Gonzalez (the
      classic 2-approximation presented in Vazirani's book, the paper's
      "K-center-A").
    - {!greedy} repeatedly adds the centre that most reduces the coverage
      radius (the heuristic of Jamin et al. used for mirror placement, the
      paper's "K-center-B").

    Both take a complete latency matrix and return [k] distinct node
    indices. Their distance scans (farthest-point selection, candidate
    radius evaluation, relaxation against a new centre) fan out over an
    optional [pool]; chunk results are combined in chunk order with the
    sequential tie-breaks, so the chosen centers are identical for any
    pool size. *)

val two_approx :
  ?seed:int -> ?pool:Dia_parallel.Pool.t -> Dia_latency.Matrix.t -> k:int -> int array
(** Farthest-point traversal: start from a seeded-random node, then
    repeatedly add the node farthest from the chosen set. Guarantees
    coverage radius within twice the optimum when distances satisfy the
    triangle inequality.

    @raise Invalid_argument unless [0 <= k <= dim]. *)

val greedy : ?pool:Dia_parallel.Pool.t -> Dia_latency.Matrix.t -> k:int -> int array
(** Greedy radius minimisation: at each step add the candidate node whose
    inclusion minimises the resulting coverage radius (ties broken by
    lowest index). O(k n²).

    @raise Invalid_argument unless [0 <= k <= dim]. *)

val optimal : ?node_limit:int -> Dia_latency.Matrix.t -> k:int -> int array
(** Exact minimum K-center by branch-and-bound over center sets, seeded
    with the greedy solution. Exponential — small instances only; used to
    verify the 2-approximation bound in tests and to calibrate placements
    in examples.

    @raise Invalid_argument unless [0 <= k <= dim].
    @raise Failure if [node_limit] (default [5_000_000]) search nodes are
    exceeded. *)

val radius :
  ?index:Dia_latency.Landmark.t -> Dia_latency.Matrix.t -> int array -> float
(** Coverage radius of a center set (same as
    {!Placement.coverage_radius}; re-exported here so this module is
    self-contained). [index] — a landmark index over this matrix with
    exactly the center nodes as candidates — prunes each node's
    nearest-center scan without changing the result; raises
    [Invalid_argument] if it does not match. *)
