module Matrix = Dia_latency.Matrix
module Landmark = Dia_latency.Landmark
module Pool = Dia_parallel.Pool

let check_k m k =
  let n = Matrix.dim m in
  if k < 0 || k > n then
    invalid_arg (Printf.sprintf "Kcenter: k = %d out of range [0, %d]" k n)

(* Index of the maximum of [dist], lowest index on ties — the same
   answer as a left-to-right scan with a strict [>], for any chunking
   (chunk argmaxes are combined left to right with a strict [>]). *)
let argmax_dist ?pool dist n =
  let scan ~lo ~hi =
    let best = ref lo in
    for v = lo + 1 to hi - 1 do
      if dist.(v) > dist.(!best) then best := v
    done;
    !best
  in
  match pool with
  | None -> scan ~lo:0 ~hi:n
  | Some pool ->
      (* One compare per item over a flat array: only worth splitting
         finer than one chunk per worker on very large n. *)
      let candidates = Pool.chunk_map ~grain:256 pool ~n scan in
      Array.fold_left
        (fun best v -> if dist.(v) > dist.(best) then v else best)
        candidates.(0) candidates

(* [v] ranges over [0, n) and [center] is an in-range node, so the reads
   are unchecked; [d(center, v)] is read from [center]'s row — the same
   double as [d(v, center)] because [Matrix.set] mirrors both triangles. *)
let relax ?pool dist m center n =
  let body v = dist.(v) <- Float.min dist.(v) (Matrix.unsafe_get m center v) in
  match pool with
  | None ->
      for v = 0 to n - 1 do
        body v
      done
  | Some pool -> Pool.parallel_for ~grain:256 pool ~n body

let two_approx ?(seed = 0) ?pool m ~k =
  check_k m k;
  let n = Matrix.dim m in
  if k = 0 then [||]
  else begin
    let rng = Random.State.make [| seed |] in
    let centers = Array.make k 0 in
    centers.(0) <- Random.State.int rng n;
    (* dist.(v) = distance from v to the closest chosen centre so far. *)
    let dist = Array.init n (fun v -> Matrix.get m v centers.(0)) in
    for step = 1 to k - 1 do
      let farthest = argmax_dist ?pool dist n in
      centers.(step) <- farthest;
      relax ?pool dist m farthest n
    done;
    Array.sort compare centers;
    centers
  end

let greedy ?pool m ~k =
  check_k m k;
  let n = Matrix.dim m in
  let chosen = Array.make n false in
  let dist = Array.make n infinity in
  let centers = ref [] in
  (* The candidate minimising the resulting radius max_v min(dist v,
     d(v, candidate)), lowest index on ties. The candidate scan is the
     O(n²) hot loop; chunk bests are combined left to right with a
     strict [<], which reproduces the sequential tie-break exactly. *)
  let scan_candidates ~lo ~hi =
    let best = ref (-1) and best_radius = ref infinity in
    for cand = lo to hi - 1 do
      if not chosen.(cand) then begin
        let radius = ref 0. in
        (* Walk cand's row (= column, the matrix is symmetric) with
           unchecked contiguous reads; same doubles as [Matrix.get]. *)
        for v = 0 to n - 1 do
          let dv = Array.unsafe_get dist v in
          let dc = Matrix.unsafe_get m cand v in
          let d = if dv <= dc then dv else dc in
          if d > !radius then radius := d
        done;
        if !radius < !best_radius then begin
          best_radius := !radius;
          best := cand
        end
      end
    done;
    (!best, !best_radius)
  in
  for _ = 1 to k do
    let best, _ =
      match pool with
      | None -> scan_candidates ~lo:0 ~hi:n
      | Some pool ->
          Array.fold_left
            (fun (best, best_radius) (cand, radius) ->
              if cand >= 0 && radius < best_radius then (cand, radius)
              else (best, best_radius))
            (-1, infinity)
            (* O(n) contiguous flops per candidate since the flat
               conversion — raise the oversplit floor to match. *)
            (Pool.chunk_map ~grain:32 pool ~n scan_candidates)
    in
    chosen.(best) <- true;
    centers := best :: !centers;
    relax ?pool dist m best n
  done;
  let centers = Array.of_list !centers in
  Array.sort compare centers;
  centers

let radius ?index m centers =
  let n = Matrix.dim m in
  if n = 0 then 0.
  else if Array.length centers = 0 then infinity
  else begin
    (match index with
    | None -> ()
    | Some idx ->
        if Landmark.matrix idx != m then
          invalid_arg "Kcenter.radius: index built over a different matrix";
        let cands = Landmark.candidates idx in
        if
          Array.length cands <> Array.length centers
          || not (Array.for_all2 ( = ) cands centers)
        then invalid_arg "Kcenter.radius: index candidates do not match the centers");
    let worst = ref 0. in
    (match index with
    | Some idx ->
        (* The pruned scan returns the same nearest-center distance as
           the fold (min over identical doubles; the zero-sign edge a
           [Float.min] fold can produce never survives the strict [>]
           against the non-negative running max). *)
        for v = 0 to n - 1 do
          let _, nearest = Landmark.nearest idx ~query:v in
          if nearest > !worst then worst := nearest
        done
    | None ->
        for v = 0 to n - 1 do
          let nearest =
            Array.fold_left (fun acc c -> Float.min acc (Matrix.get m v c)) infinity centers
          in
          if nearest > !worst then worst := nearest
        done);
    !worst
  end

exception Node_limit

(* Branch-and-bound over ordered center sets. The prune uses a sound
   lower bound: with centers chosen so far giving distances [dist] and
   only candidates >= [first] still available, node v's final distance is
   at least min(dist.(v), suffix.(first).(v)) where suffix.(first).(v) is
   v's distance to its closest remaining candidate. *)
let optimal ?(node_limit = 5_000_000) m ~k =
  check_k m k;
  let n = Matrix.dim m in
  if k = 0 || n = 0 then [||]
  else begin
    let best_centers = ref (greedy m ~k) in
    let best_radius = ref (radius m !best_centers) in
    let suffix = Array.make_matrix (n + 1) n infinity in
    for candidate = n - 1 downto 0 do
      for v = 0 to n - 1 do
        suffix.(candidate).(v) <-
          Float.min suffix.(candidate + 1).(v) (Matrix.get m v candidate)
      done
    done;
    let chosen = Array.make k 0 in
    let nodes = ref 0 in
    let rec search depth first dist =
      incr nodes;
      if !nodes > node_limit then raise Node_limit;
      if depth = k then begin
        let r = Array.fold_left Float.max 0. dist in
        if r < !best_radius then begin
          best_radius := r;
          best_centers := Array.copy chosen
        end
      end
      else begin
        let lower_bound = ref 0. in
        for v = 0 to n - 1 do
          let best_possible = Float.min dist.(v) suffix.(first).(v) in
          if best_possible > !lower_bound then lower_bound := best_possible
        done;
        if !lower_bound < !best_radius then
          for candidate = first to n - (k - depth) do
            let updated =
              Array.mapi (fun v d -> Float.min d (Matrix.get m v candidate)) dist
            in
            chosen.(depth) <- candidate;
            search (depth + 1) (candidate + 1) updated
          done
      end
    in
    (try search 0 0 (Array.make n infinity)
     with Node_limit ->
       failwith (Printf.sprintf "Kcenter.optimal: node limit %d exceeded" node_limit));
    let centers = !best_centers in
    Array.sort compare centers;
    centers
  end
