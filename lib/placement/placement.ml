module Matrix = Dia_latency.Matrix

type strategy = Random_placement | K_center_a | K_center_b

let strategy_name = function
  | Random_placement -> "random"
  | K_center_a -> "kcenter-a"
  | K_center_b -> "kcenter-b"

let strategy_of_string = function
  | "random" -> Some Random_placement
  | "kcenter-a" -> Some K_center_a
  | "kcenter-b" -> Some K_center_b
  | _ -> None

let all_strategies = [ Random_placement; K_center_a; K_center_b ]

let random ~seed ~k ~n =
  if k < 0 || k > n then
    invalid_arg (Printf.sprintf "Placement.random: k = %d out of range [0, %d]" k n);
  let rng = Random.State.make [| seed |] in
  let pool = Array.init n Fun.id in
  for i = 0 to k - 1 do
    let j = i + Random.State.int rng (n - i) in
    let tmp = pool.(i) in
    pool.(i) <- pool.(j);
    pool.(j) <- tmp
  done;
  let servers = Array.sub pool 0 k in
  Array.sort compare servers;
  servers

let place strategy ?(seed = 0) ?pool m ~k =
  match strategy with
  | Random_placement -> random ~seed ~k ~n:(Matrix.dim m)
  | K_center_a -> Kcenter.two_approx ~seed ?pool m ~k
  | K_center_b -> Kcenter.greedy ?pool m ~k

let coverage_radius m centers =
  let n = Matrix.dim m in
  let radius = ref 0. in
  for v = 0 to n - 1 do
    let nearest =
      Array.fold_left
        (fun acc c -> Float.min acc (Matrix.get m v c))
        infinity centers
    in
    if nearest > !radius then radius := nearest
  done;
  if n = 0 then 0. else !radius
