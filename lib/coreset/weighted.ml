module Matrix = Dia_latency.Matrix
module Dynamic = Dia_core.Dynamic

type bucket = { mutable count : int; id : Dynamic.client_id }

type t = {
  rep : int array;
  dyn : Dynamic.t;
  buckets : (int, bucket) Hashtbl.t;  (* representative node -> bucket *)
  mutable sessions : int;
}

let attach ?seed ?rounds ~eps matrix ~counts dyn =
  (* A coreset point stands for an unbounded population, so per-server
     client capacities are meaningless at this granularity. *)
  if Dynamic.capacity dyn <> None then
    invalid_arg "Weighted.attach: the wrapped session must be uncapacitated";
  let rep = Coreset.node_partition ?seed ?rounds ~eps matrix in
  let buckets = Hashtbl.create 64 in
  List.iter
    (fun (id, node, _) ->
      if Hashtbl.mem buckets node then
        invalid_arg
          (Printf.sprintf "Weighted.attach: two members at node %d" node);
      if rep.(node) <> node then
        invalid_arg
          (Printf.sprintf
             "Weighted.attach: member node %d is not a representative" node);
      Hashtbl.replace buckets node { count = 0; id })
    (Dynamic.members dyn);
  let t = { rep; dyn; buckets; sessions = 0 } in
  List.iter
    (fun (node, count) ->
      if count < 0 then invalid_arg "Weighted.attach: negative count";
      if count > 0 then begin
        let r = rep.(node) in
        match Hashtbl.find_opt buckets r with
        | None ->
            invalid_arg
              (Printf.sprintf
                 "Weighted.attach: sessions at node %d but no member at \
                  representative %d"
                 node r)
        | Some b ->
            b.count <- b.count + count;
            t.sessions <- t.sessions + count
      end)
    counts;
  Hashtbl.iter
    (fun node b ->
      if b.count = 0 then
        invalid_arg
          (Printf.sprintf "Weighted.attach: member at node %d has no sessions"
             node))
    buckets;
  t

let create ?seed ?rounds ~eps matrix ~servers =
  attach ?seed ?rounds ~eps matrix ~counts:[]
    (Dynamic.create matrix ~servers)

let rep_of t node = t.rep.(node)

let add t ~node =
  if node < 0 || node >= Array.length t.rep then
    invalid_arg (Printf.sprintf "Weighted.add: node %d out of range" node);
  let r = t.rep.(node) in
  (match Hashtbl.find_opt t.buckets r with
  | Some b -> b.count <- b.count + 1
  | None ->
      let id = Dynamic.join t.dyn ~node:r in
      Hashtbl.replace t.buckets r { count = 1; id });
  t.sessions <- t.sessions + 1

let remove t ~node =
  if node < 0 || node >= Array.length t.rep then
    invalid_arg (Printf.sprintf "Weighted.remove: node %d out of range" node);
  let r = t.rep.(node) in
  match Hashtbl.find_opt t.buckets r with
  | None ->
      invalid_arg
        (Printf.sprintf "Weighted.remove: no sessions at representative %d" r)
  | Some b ->
      b.count <- b.count - 1;
      t.sessions <- t.sessions - 1;
      if b.count = 0 then begin
        Hashtbl.remove t.buckets r;
        Dynamic.leave t.dyn b.id
      end

let sessions t = t.sessions
let points t = Hashtbl.length t.buckets
let dynamic t = t.dyn
let objective t = Dynamic.objective t.dyn
let lower_bound t = Dynamic.lower_bound t.dyn

let handle t ~node =
  match Hashtbl.find_opt t.buckets t.rep.(node) with
  | Some b -> b.id
  | None ->
      invalid_arg
        (Printf.sprintf "Weighted.handle: no member in node %d's cell" node)

let weight t ~node =
  match Hashtbl.find_opt t.buckets t.rep.(node) with
  | Some b -> b.count
  | None -> 0
