(** Dynamic sessions over a coreset: million-client churn in O(1).

    The dynamic counterpart of {!Coreset}: weighted clients ("sessions")
    join and leave at arbitrary nodes, but the underlying
    {!Dia_core.Dynamic} session only ever sees one member per occupied
    {!Coreset.node_partition} cell. A join lands in an already-occupied
    bucket (the steady-state case) in O(1) — a counter bump; only the
    first session of a cell activates its representative, and only the
    last departure deactivates it. Combined with Dynamic's incremental
    D(A)/lower-bound caches, steady-state per-event cost is independent
    of the session count, which is what lets the soak and the bench
    drive a million weighted clients.

    The layer is strictly uncapacitated (a coreset point stands for an
    unbounded population, so per-server client capacities are
    meaningless at this granularity); callers must wrap an uncapacitated
    Dynamic. The bucket partition is fixed at attach time from the
    supplied (undrifted) matrix — later drift changes distances, not
    membership. *)

type t

val create :
  ?seed:int ->
  ?rounds:int ->
  eps:float ->
  Dia_latency.Matrix.t ->
  servers:int array ->
  t
(** Fresh weighted session: an empty uncapacitated {!Dia_core.Dynamic}
    over the matrix, bucketed at resolution [eps] (0 = one bucket per
    node). *)

val attach :
  ?seed:int ->
  ?rounds:int ->
  eps:float ->
  Dia_latency.Matrix.t ->
  counts:(int * int) list ->
  Dia_core.Dynamic.t ->
  t
(** Rebuild the bucket layer around an existing (typically
    checkpoint-restored) session. [counts] lists [(node, sessions)] for
    the original — pre-bucketing — nodes; every member of the Dynamic
    must sit at its own cell's representative and carry at least one
    session. Deterministic: same matrix/eps/seed/counts, same layer.

    @raise Invalid_argument if the session is capacitated, a member is
    off-representative, two members share a node, counts are negative,
    sessions reference a cell with no member, or a member has no
    sessions. *)

val rep_of : t -> int -> int
(** Representative node of a node's cell. *)

val add : t -> node:int -> unit
(** One session joins at [node]: O(1) when its cell is already occupied,
    otherwise the representative joins the Dynamic.

    @raise Invalid_argument if [node] is out of range.
    @raise Failure if activation finds every server saturated (cannot
    happen on the required uncapacitated sessions). *)

val remove : t -> node:int -> unit
(** One session leaves from [node]: O(1) unless it was the cell's last,
    which makes the representative leave the Dynamic.

    @raise Invalid_argument if no session is present in [node]'s cell. *)

val sessions : t -> int
(** Total weighted clients. *)

val points : t -> int
(** Occupied cells = members of the underlying Dynamic. *)

val weight : t -> node:int -> int
(** Sessions currently in [node]'s cell. *)

val handle : t -> node:int -> Dia_core.Dynamic.client_id
(** The Dynamic client id of [node]'s cell representative.

    @raise Invalid_argument if the cell is unoccupied. *)

val dynamic : t -> Dia_core.Dynamic.t
(** The underlying session — rebalance, failover, drift and snapshots
    all operate here, on the reduced membership. *)

val objective : t -> float
(** D(A) of the reduced session ({!Dia_core.Dynamic.objective}). *)

val lower_bound : t -> float
(** Incremental lower bound of the reduced session. *)
