module Matrix = Dia_latency.Matrix
module Vivaldi = Dia_latency.Vivaldi
module Problem = Dia_core.Problem
module Assignment = Dia_core.Assignment

type t = {
  eps : float;
  matrix : Matrix.t;
  servers : int array;
  full_clients : int array;
  reps : int array;
  weights : int array;
  bucket_of : int array;
  radius : float;
}

let check_eps eps =
  if not (Float.is_finite eps) || eps < 0. then
    invalid_arg (Printf.sprintf "Coreset: eps %g must be finite and >= 0" eps)

let node_partition ?(seed = 0) ?rounds ~eps matrix =
  check_eps eps;
  let n = Matrix.dim matrix in
  let rep = Array.init n Fun.id in
  if eps > 0. && n > 1 then begin
    let emb = Vivaldi.embed_matrix ~seed ?rounds matrix in
    let coords = Array.init n (Vivaldi.coordinates emb) in
    let xmin = ref infinity and xmax = ref neg_infinity in
    let ymin = ref infinity and ymax = ref neg_infinity in
    Array.iter
      (fun (x, y, _) ->
        if x < !xmin then xmin := x;
        if x > !xmax then xmax := x;
        if y < !ymin then ymin := y;
        if y > !ymax then ymax := y)
      coords;
    let extent = Float.max (!xmax -. !xmin) (!ymax -. !ymin) in
    if extent > 0. then begin
      let side = eps *. extent in
      let cells = Hashtbl.create n in
      for node = 0 to n - 1 do
        let x, y, _ = coords.(node) in
        let key =
          ( int_of_float (Float.floor ((x -. !xmin) /. side)),
            int_of_float (Float.floor ((y -. !ymin) /. side)) )
        in
        match Hashtbl.find_opt cells key with
        | Some r -> rep.(node) <- r
        | None -> Hashtbl.add cells key node
      done
    end
  end;
  rep

let build ?seed ?rounds ~eps matrix ~servers ~clients =
  check_eps eps;
  if Array.length clients = 0 then invalid_arg "Coreset.build: no clients";
  if Array.length servers = 0 then invalid_arg "Coreset.build: no servers";
  Array.iter
    (fun node ->
      if node < 0 || node >= Matrix.dim matrix then
        invalid_arg (Printf.sprintf "Coreset.build: node %d out of range" node))
    (Array.append servers clients);
  let rep = node_partition ?seed ?rounds ~eps matrix in
  (* Bucket the clients by representative node; points are numbered by
     first appearance in client order, so the reduced instance is a pure
     function of (matrix, eps, seed, clients). *)
  let index = Hashtbl.create 64 in
  let reps = ref [] and count = ref 0 in
  let bucket_of =
    Array.map
      (fun node ->
        let r = rep.(node) in
        match Hashtbl.find_opt index r with
        | Some b -> b
        | None ->
            let b = !count in
            Hashtbl.add index r b;
            reps := r :: !reps;
            incr count;
            b)
      clients
  in
  let reps = Array.of_list (List.rev !reps) in
  let weights = Array.make !count 0 in
  Array.iter (fun b -> weights.(b) <- weights.(b) + 1) bucket_of;
  (* Certify the additive bound on the instance itself rather than
     trusting the embedding: the radius is the worst client-vs-
     representative disagreement actually visible to any server, so the
     |D_reduced - D_full| <= 2r sandwich holds on non-metric matrices
     and embedding failures alike. O(|C|·|S|). *)
  let radius = ref 0. in
  Array.iteri
    (fun c node ->
      let r = reps.(bucket_of.(c)) in
      if r <> node then
        Array.iter
          (fun s ->
            let gap = Float.abs (Matrix.get matrix node s -. Matrix.get matrix r s) in
            if gap > !radius then radius := gap)
          servers)
    clients;
  {
    eps;
    matrix;
    servers = Array.copy servers;
    full_clients = Array.copy clients;
    reps;
    weights;
    bucket_of;
    radius = !radius;
  }

let eps t = t.eps
let points t = Array.length t.reps
let clients t = Array.length t.full_clients
let reps t = Array.copy t.reps
let weights t = Array.copy t.weights
let bucket_of t c = t.bucket_of.(c)
let radius t = t.radius
let bound t = 2. *. t.radius

let reduced t =
  Problem.make ~latency:t.matrix ~servers:t.servers ~clients:t.reps ()

let full t =
  Problem.make ~latency:t.matrix ~servers:t.servers ~clients:t.full_clients ()

let expand t assignment =
  let ra = Assignment.to_array assignment in
  if Array.length ra <> points t then
    invalid_arg
      (Printf.sprintf "Coreset.expand: assignment over %d clients, expected %d"
         (Array.length ra) (points t));
  let arr = Array.map (fun b -> ra.(b)) t.bucket_of in
  Assignment.of_array (full t) arr
