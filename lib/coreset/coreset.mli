(** Weighted coresets for million-client instances.

    Every algorithm in the reproduction is dense over the client set, so
    the paper's D(A) machinery tops out around 10⁴ clients. This module
    buckets clients into {e coreset points} on the existing Vivaldi
    embedding: nodes whose coordinates share a grid cell of side
    [eps × embedding extent] collapse into one representative, a client
    population collapses into one weighted client per occupied cell, and
    the reduced instance — a perfectly ordinary {!Dia_core.Problem.t} —
    is what the nine assignment algorithms run on, unchanged. Because
    D(A) is a maximum, client multiplicity never moves it: weight only
    matters for capacities, which the coreset layer therefore refuses
    (reduced instances are always uncapacitated).

    {b The additive bound.} The build {e certifies} its own accuracy on
    the actual matrix rather than trusting the embedding: the radius [r]
    is the maximum over clients [c] and servers [s] of
    [|d(c,s) − d(rep(c),s)|]. Expanding a reduced assignment gives every
    client its representative's server, so each endpoint of every
    interaction path moves by at most [r], and

    {v |D_reduced(A) − D_full(expand A)| ≤ 2r = bound t v}

    for {e any} assignment [A] — metric or not, embedding quality
    notwithstanding. [eps = 0] degenerates to exact node deduplication
    with [r = 0] and the bound collapses to equality. The conformance
    suite enforces the bound on every oracle instance
    (`coreset-bound`). *)

type t
(** An immutable coreset of a client population. *)

val node_partition :
  ?seed:int -> ?rounds:int -> eps:float -> Dia_latency.Matrix.t -> int array
(** [node_partition ~eps m] maps every node of [m] to its cell
    representative (the lowest-numbered node in its Vivaldi grid cell);
    [eps <= 0] yields the identity. Deterministic per [seed] (default 0)
    — the dynamic {!Weighted} layer and the static {!build} share this
    partition, so a weighted session and an offline coreset of the same
    population agree on membership.

    @raise Invalid_argument if [eps] is negative or not finite. *)

val build :
  ?seed:int ->
  ?rounds:int ->
  eps:float ->
  Dia_latency.Matrix.t ->
  servers:int array ->
  clients:int array ->
  t
(** Bucket [clients] (node ids, duplicates welcome — that is the point)
    by {!node_partition} cell and certify the radius against [servers].
    Points are numbered by first appearance in client order. O(|C|·|S|)
    plus the embedding.

    @raise Invalid_argument on empty clients/servers, out-of-range
    nodes, or invalid [eps]. *)

val eps : t -> float

val points : t -> int
(** Number of coreset points (distinct occupied cells). *)

val clients : t -> int
(** Number of full clients the coreset summarises. *)

val reps : t -> int array
(** Representative node per point. *)

val weights : t -> int array
(** Clients per point; sums to {!clients}. *)

val bucket_of : t -> int -> int
(** Point index of a full client index. *)

val radius : t -> float
(** Certified worst client-vs-representative distance disagreement. *)

val bound : t -> float
(** The additive D(A) approximation bound [f(eps) = 2 ·{!radius}]. *)

val reduced : t -> Dia_core.Problem.t
(** The weighted instance: one client per point, uncapacitated. *)

val full : t -> Dia_core.Problem.t
(** The original population as an uncapacitated instance. *)

val expand : t -> Dia_core.Assignment.t -> Dia_core.Assignment.t
(** Lift an assignment of {!reduced} to {!full}: every client goes where
    its representative went. The result's D is within {!bound} of the
    reduced D.

    @raise Invalid_argument if the assignment is not over {!points}
    clients. *)
