module Problem = Dia_core.Problem
module Assignment = Dia_core.Assignment
module Clock = Dia_core.Clock

type execution = {
  op_id : int;
  server : int;
  target_sim : float;
  actual_sim : float;
  late : bool;
}

type visibility = {
  op_id : int;
  observer : int;
  issue_sim : float;
  visible_sim : float;
  late : bool;
}

type report = {
  delta : float;
  clients : int;
  servers : int;
  operations : Workload.op list;
  executions : execution list;
  visibilities : visibility list;
  messages : int;
  wall_duration : float;
}

type message =
  | Op_to_server of Workload.op
  | Op_forward of Workload.op
  | State_update of Workload.op

type event =
  | Issued of Workload.op
  | Executed of execution
  | Presented of visibility

(* Actor address space: servers are [0 .. k-1], clients are
   [k .. k + |C| - 1]. *)
let run ?jitter ?execution_time ?(monitor = fun _ -> ()) p a clock workload =
  let execution_time =
    match execution_time with
    | Some f -> f
    | None -> fun (op : Workload.op) -> op.issue_time +. clock.Clock.delta
  in
  let k = Problem.num_servers p in
  let n = Problem.num_clients p in
  List.iter
    (fun (op : Workload.op) ->
      if op.issuer < 0 || op.issuer >= n then
        invalid_arg (Printf.sprintf "Protocol.run: issuer %d out of range" op.issuer))
    workload;
  let engine = Engine.create () in
  let latency actor1 actor2 =
    let node actor =
      if actor < k then (Problem.servers p).(actor)
      else (Problem.clients p).(actor - k)
    in
    Dia_latency.Matrix.get (Problem.latency p) (node actor1) (node actor2)
  in
  let net = Network.create ?jitter engine ~actors:(k + n) ~latency in
  (* Client simulation time = wall - base; server s's = wall - base +
     offset(s). base keeps every schedule non-negative. *)
  let base =
    Array.fold_left (fun acc off -> Float.max acc off) 0. clock.Clock.server_offset
  in
  let delta = clock.Clock.delta in
  let client_sim wall = wall -. base in
  let server_sim s wall = wall -. base +. clock.Clock.server_offset.(s) in
  let executions = ref [] in
  let visibilities = ref [] in
  let eps = 1e-9 in
  (* Per-server handler: forward incoming client operations, execute any
     operation at its target simulation time, then update clients. *)
  let clients_of = Array.make k [] in
  for c = 0 to n - 1 do
    let s = Assignment.server_of a c in
    clients_of.(s) <- c :: clients_of.(s)
  done;
  let execute s (op : Workload.op) =
    let wall_now = Engine.now engine in
    let target_sim = execution_time op in
    (* Wall time at which this server's simulation clock shows target. *)
    let target_wall = target_sim +. base -. clock.Clock.server_offset.(s) in
    let do_execute () =
      let actual_sim = server_sim s (Engine.now engine) in
      let e =
        { op_id = op.op_id; server = s; target_sim; actual_sim;
          late = actual_sim > target_sim +. eps }
      in
      executions := e :: !executions;
      monitor (Executed e);
      List.iter
        (fun c -> Network.send net ~src:s ~dst:(k + c) (State_update op))
        clients_of.(s)
    in
    if target_wall <= wall_now then do_execute ()
    else Engine.schedule engine target_wall do_execute
  in
  for s = 0 to k - 1 do
    Network.on_receive net s (fun ~src:_ payload ->
        match payload with
        | Op_to_server op ->
            for s' = 0 to k - 1 do
              if s' <> s then Network.send net ~src:s ~dst:s' (Op_forward op)
            done;
            execute s op
        | Op_forward op -> execute s op
        | State_update _ -> ())
  done;
  (* Per-client handler: present a state update when the client's
     simulation time reaches t + delta. *)
  for c = 0 to n - 1 do
    Network.on_receive net (k + c) (fun ~src:_ payload ->
        match payload with
        | State_update op ->
            let target_sim = execution_time op in
            let present () =
              let visible_sim = client_sim (Engine.now engine) in
              let v =
                { op_id = op.Workload.op_id; observer = c;
                  issue_sim = op.Workload.issue_time; visible_sim;
                  late = visible_sim > target_sim +. eps }
              in
              visibilities := v :: !visibilities;
              monitor (Presented v)
            in
            let target_wall = target_sim +. base in
            if target_wall <= Engine.now engine then present ()
            else Engine.schedule engine target_wall present
        | Op_to_server _ | Op_forward _ -> ())
  done;
  (* Issue every operation at its wall time. *)
  List.iter
    (fun (op : Workload.op) ->
      let wall = op.issue_time +. base in
      let issuer_server = Assignment.server_of a op.issuer in
      Engine.schedule engine wall (fun () ->
          monitor (Issued op);
          Network.send net ~src:(k + op.issuer) ~dst:issuer_server (Op_to_server op)))
    workload;
  Engine.run engine;
  {
    delta;
    clients = n;
    servers = k;
    operations = workload;
    executions = List.rev !executions;
    visibilities = List.rev !visibilities;
    messages = Network.messages_sent net;
    wall_duration = Engine.now engine;
  }

let interaction_times report =
  let issuer_of = Hashtbl.create 64 in
  List.iter
    (fun (op : Workload.op) -> Hashtbl.replace issuer_of op.op_id op.issuer)
    report.operations;
  List.map
    (fun v ->
      let issuer = Hashtbl.find issuer_of v.op_id in
      (issuer, v.observer, v.visible_sim -. v.issue_sim))
    report.visibilities
