(** Message-level Distributed-Greedy Assignment (Section IV-D),
    hardened against an unreliable network.

    [Dia_core.Distributed_greedy] computes the algorithm's result
    centrally; this module actually {e runs the protocol} over the
    simulated {!Network}, with every quantity obtained the way the paper
    says the servers obtain it:

    + {b bootstrap} — each client probes every server (round-trip
      latency measurement), picks the nearest, and joins it, reporting
      its measured distance: the Nearest-Server initial assignment,
      computed by the clients themselves;
    + {b initialisation} — each server probes the other servers,
      computes its longest client distance [l(s)], and broadcasts both,
      exactly the exchange of Section IV-D;
    + {b modification rounds under concurrency control} — a token
      serialises modifications (the paper's requirement that concurrent
      reassignments not interleave). The token holder picks a client of
      its own on a longest interaction path and broadcasts it with its
      eccentricity-without-that-client; every other server probes the
      client and replies with the resulting [L(s')]; the holder commits
      the best move only if it strictly reduces the global objective,
      broadcasting the updated eccentricities (acknowledged before the
      next round). A server with no improving client passes the token;
      [|S|] consecutive tokenless passes terminate the protocol.

    {2 Fault tolerance}

    Every protocol payload travels over a reliable-transport layer:
    per-channel sequence numbers, per-frame acknowledgements, duplicate
    suppression, and retransmission with capped exponential backoff — so
    message loss and duplication (see {!Fault}) are masked. A frame
    whose retry budget runs out doubles as a failure detection: servers
    expel the unresponsive peer from the computation, clients fail over
    to their next-nearest live server, and a probe to a dead client is
    answered on its behalf so token rounds always complete. Distances
    are measured NTP-style (the probe carries its transmit time, the
    reply echoes it plus the receiver's hold time), so retransmission
    waits cancel out and measured distances stay exact under loss. If
    the token dies with a crashed holder, a watchdog regenerates it
    under a fresh epoch number; stale-epoch messages are discarded. With
    any loss rate below 1 and at least one live server, the run
    terminates with a valid assignment onto live servers, locally
    optimal for the surviving system in the same sense as the
    centralized algorithm. *)

type fault_stats = {
  dropped : int;  (** transmissions lost to faults or down actors *)
  duplicated : int;  (** extra copies delivered by the fault plan *)
  undeliverable : int;  (** arrivals at actors with no handler *)
  retransmissions : int;  (** frames sent again after an unacked wait *)
  give_ups : int;
      (** frames abandoned after [max_attempts] — each one is a
          failure-detector verdict *)
  regenerations : int;  (** watchdog token regenerations *)
  failovers : int;
      (** clients re-homed off a crashed server, during the run or in
          final-assignment fixup *)
}

type result = {
  assignment : Dia_core.Assignment.t;
  objective : float;  (** final [D] of the assignment, true matrix *)
  initial_objective : float;
      (** [D] of the bootstrap NSA assignment as believed by the first
          token holder ([nan] if the run died before the token started) *)
  modifications : int;
  messages : int;  (** total transmissions, acks and retries included *)
  wall_duration : float;  (** simulated protocol runtime (ms) *)
  stalled : bool;
      (** the run was force-stopped by the watchdog rather than
          terminating through token passes: the hard deadline fired, the
          regeneration budget ran out, or no live server remained. The
          returned assignment is still valid, but the protocol never
          declared local optimality — supervisors should treat a stalled
          epoch as restartable (with backoff) rather than converged. *)
  faults : fault_stats;
}

type tuning = {
  rto : float;  (** initial retransmission timeout *)
  rto_cap : float;  (** backoff ceiling *)
  backoff : float;  (** wait multiplier per retry *)
  max_attempts : int;  (** transmissions before giving up on a frame *)
  ping_period : float;  (** client keepalive interval (fault runs only) *)
  regen_timeout : float;  (** token silence before watchdog regeneration *)
  max_regenerations : int;  (** regeneration budget before forced stop *)
  deadline : float;  (** hard simulated-time stop for any faulty run *)
}

val default_tuning : Dia_core.Problem.t -> tuning
(** Conservative defaults scaled to the instance's maximum latency. *)

val settle_time : Dia_core.Problem.t -> float
(** The fault-free bootstrap horizon: when servers exchange their
    initial state and the token starts. Useful for scheduling fault
    events relative to protocol phases. (Faulty runs stretch the actual
    horizon to three times this value, to absorb first-round retries.) *)

val run :
  ?jitter:(src:int -> dst:int -> base:float -> float) ->
  ?fault:Fault.t ->
  ?tuning:tuning ->
  Dia_core.Problem.t ->
  result
(** Execute the protocol to termination. With [jitter], latency
    measurements are noisy and the servers optimise measured — not true —
    distances, as a real deployment would. [fault] injects seeded loss,
    duplication, latency spikes, partitions, and crashes (see {!Fault});
    [tuning] overrides the retry/timeout parameters (default
    {!default_tuning}). Without [fault], behaviour reduces to the
    classic reliable-network protocol (keepalives and the token watchdog
    are only armed under fault injection).

    @raise Invalid_argument if the instance has no clients (there is
    nothing to assign). Capacities are respected: clients only move to
    unsaturated servers, and the bootstrap uses capacitated
    nearest-server joining (a client rejected by a full server tries the
    next nearest). *)
