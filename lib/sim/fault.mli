(** Deterministic, seeded fault injection for the simulated {!Network}.

    A {e plan} is a composable, declarative description of how a network
    misbehaves: per-link message loss and duplication, latency spikes,
    time-windowed partitions, and server crash/recover schedules. A plan
    is pure data; {!instantiate} pairs it with an explicit PRNG seed,
    producing a fault {e state} whose decisions are a deterministic
    function of the seed and the query sequence — so every faulty
    simulation run is exactly replayable.

    The {!Network} consults {!decide} once per transmission and
    {!down} at both send and delivery time; protocols never see the
    fault state directly, only its consequences (silence, duplicates,
    delay). *)

type action =
  | Deliver  (** deliver normally after the (jittered) latency *)
  | Drop  (** the message vanishes *)
  | Duplicate of int  (** deliver [1 + n] independent copies *)
  | Delay of float  (** deliver after an extra latency spike (ms) *)

type plan
(** A composable fault description. Pure data, no randomness yet. *)

val reliable : plan
(** The empty plan: every message is delivered, nothing crashes. *)

val loss : ?src:int -> ?dst:int -> rate:float -> unit -> plan
(** Each matching transmission is dropped with probability [rate].
    [src]/[dst] restrict the rule to one endpoint (omitted = any);
    giving both restricts it to a single directed link.

    @raise Invalid_argument if [rate] is outside [0, 1]. *)

val duplication : ?src:int -> ?dst:int -> ?copies:int -> rate:float -> unit -> plan
(** Each matching transmission is duplicated ([copies] extra deliveries,
    default 1) with probability [rate].

    @raise Invalid_argument if [rate] is outside [0, 1] or [copies < 1]. *)

val spike : ?src:int -> ?dst:int -> rate:float -> extra:float -> unit -> plan
(** Each matching transmission suffers an [extra]-ms latency spike with
    probability [rate]. Spikes from several matching rules accumulate.

    @raise Invalid_argument if [rate] is outside [0, 1] or [extra] is
    negative or not finite. *)

val partition : at:float -> until:float -> side:int list -> plan
(** During the window [\[at, until)], every message crossing the cut
    between the actors in [side] and everyone else is dropped — a clean
    network partition that heals at [until].

    @raise Invalid_argument if the window is empty or malformed. *)

val crash : ?recover_at:float -> at:float -> int -> plan
(** [crash actor ~at] takes the actor down from time [at] on — it
    neither sends nor receives; in-flight messages addressed to it are
    lost. With [recover_at] it comes back up at that time (its protocol
    state is whatever the protocol kept for it).

    @raise Invalid_argument if [at] is negative or [recover_at <= at]. *)

(** {2 Storage faults}

    These rules target the {e durable-state write path} — the journal
    appends and checkpoint-generation writes performed by the runtime's
    recovery layer ({!Dia_runtime.Disk} interprets them) — never the
    message plane. Each rule names a 1-based {e write-op index} on its
    target stream: checkpoint writes and journal flushes are counted
    separately, and the rule fires when its stream's counter reaches
    [op]. Targeting by operation count (not by time or probability)
    makes every disk-faulted run trivially replay-identical, and the
    rules consume no randomness, so adding a disk atom to a plan never
    perturbs the network decision stream of {!decide}. *)

val torn_write : op:int -> at:int -> plan
(** The [op]-th checkpoint write is torn: only the first [at] bytes
    reach the file (the rename still lands — a classic partial write).

    @raise Invalid_argument if [op < 1] or [at < 0]. *)

val bit_flip : op:int -> at:int -> plan
(** The [op]-th checkpoint write lands with the low bit of the byte at
    offset [at] flipped (no-op if the file is shorter).

    @raise Invalid_argument if [op < 1] or [at < 0]. *)

val fsync_loss : op:int -> at:int -> plan
(** The [op]-th checkpoint write loses its suffix: the rename lands but
    every byte past offset [at] never reaches the platter — the
    lost-fsync failure mode of a rename without a preceding data sync.

    @raise Invalid_argument if [op < 1] or [at < 0]. *)

val rename_crash : op:int -> plan
(** The [op]-th checkpoint write crashes inside the rename window: the
    temp file is fully written but the destination never appears.

    @raise Invalid_argument if [op < 1]. *)

val journal_torn : op:int -> at:int -> plan
(** The [op]-th journal flush is torn after its first [at] bytes and the
    journal device is wedged from then on (later flushes are lost) — the
    canonical crashed-mid-append tail.

    @raise Invalid_argument if [op < 1] or [at < 0]. *)

val disk_rules : plan -> plan
(** Just the storage rules of a plan, in order. *)

val network_rules : plan -> plan
(** The plan with every storage rule removed — what the message plane
    (and any "is the network faulty at all?" test) should consult. *)

(** The storage rules of a plan as concrete data — read by the runtime's
    write-path injector the way {!crash_schedule} is read by membership
    supervisors. *)
type disk_rule =
  | Torn_write of { op : int; at : int }
  | Bit_flip of { op : int; at : int }
  | Lost_fsync of { op : int; at : int }
  | Crashed_rename of { op : int }
  | Torn_journal of { op : int; at : int }

val disk_schedule : plan -> disk_rule list
(** The plan's storage rules, in rule order. *)

val all : plan list -> plan
(** Compose plans. Rules apply in order; the first [Drop] wins, then
    duplication, then accumulated delay (a dropped message is never also
    duplicated or delayed). *)

val equal : plan -> plan -> bool
(** Structural equality of the rule lists (order-sensitive). *)

val crash_schedule : plan -> (int * float * float option) list
(** The plan's crash rules as [(actor, at, recover_at)] triples, in rule
    order — read by control-plane supervisors that must mirror the
    membership consequences of the schedule without re-deciding message
    fates. *)

(** {2 The fault mini-DSL}

    Plans round-trip through a compact textual form, one rule per
    ['+']-separated atom:

    {v
    loss:R[@S>D]          drop with probability R (S/D: id or '*')
    dup:R[xN][@S>D]       duplicate (N extra copies) with probability R
    spike:R~E[@S>D]       add E ms of latency with probability R
    part:AT~UNTIL@A,B,C   partition actors {A,B,C} from the rest
    crash:ACTOR@AT[~REC]  crash ACTOR at AT, recovering at REC
    torn:OP@B             OP-th checkpoint write truncated at byte B
    flip:OP@B             OP-th checkpoint write, bit flip at byte B
    fsync:OP@B            OP-th checkpoint write loses bytes past B
    rename:OP             OP-th checkpoint write crashes in the rename
    jtorn:OP@B            OP-th journal flush torn at byte B, then wedged
    v}

    e.g. ["loss:0.15+crash:3@2.0~5.0"]. The empty spec, ["reliable"] and
    ["none"] all denote {!reliable}. *)

val to_string : plan -> string
(** Canonical DSL rendering. Floats are printed with the shortest format
    that parses back to the identical double, so
    [of_string (to_string p)] always reconstructs exactly [p]. *)

val pp_plan : Format.formatter -> plan -> unit
(** {!to_string}, as a formatter. *)

val of_string : string -> (plan, string) result
(** Parse the DSL. All the smart-constructor validations apply ([rate]
    ranges, window ordering, ...); violations come back as [Error]
    messages, never exceptions. Parsing is strict: empty atoms (stray
    ['+']), empty partition-side entries (doubled or trailing commas)
    and any trailing garbage inside an atom are rejected, and the error
    names the offending token with its atom number and character
    position — malformed input is never silently ignored. *)

type t
(** An instantiated plan: rules plus a private PRNG state. *)

val instantiate : ?seed:int -> plan -> t
(** Bind a plan to a PRNG seed (default 0). Two states built from the
    same plan and seed answer identical query sequences identically. *)

val decide : t -> now:float -> src:int -> dst:int -> action
(** The fate of one transmission from [src] to [dst] at time [now].
    Consumes randomness; call exactly once per transmission. *)

val down : t -> now:float -> int -> bool
(** Whether the actor is crashed at time [now], per the plan's crash
    schedules. Pure; consumes no randomness. *)
