(** Message-level simulation of the continuous-DIA protocol.

    Simulates the full interaction pipeline of Section II on a given
    instance, assignment, and clock setting:

    + a client issues an operation at a simulation time [t] and sends it
      to its assigned server;
    + the server forwards it to every other server;
    + every server executes the operation when its own simulation time
      reaches [t + delta] (late arrivals execute immediately and are
      flagged — a consistency breach);
    + each server then sends the resulting state update to its clients,
      who present it when their simulation times reach [t + delta] (late
      arrivals are flagged).

    Wall-clock scheduling uses the clock offsets: client simulation time
    is [wall - base] for all clients (they are synchronised) and server
    [s]'s is [wall - base + offset(s)].

    This is the executable counterpart of the paper's analysis: with the
    synthesised clock ([delta = D(A)]) and no jitter, a run has zero
    breaches and every interaction time equals [delta] exactly; with any
    smaller [delta], breaches appear (Section II-C's minimality). *)

type execution = {
  op_id : int;
  server : int;  (** server index *)
  target_sim : float;  (** [t + delta], the agreed execution time *)
  actual_sim : float;  (** when it really executed (later iff late) *)
  late : bool;
}

type visibility = {
  op_id : int;
  observer : int;  (** client index *)
  issue_sim : float;
  visible_sim : float;  (** observer simulation time at presentation *)
  late : bool;
}

type report = {
  delta : float;
  clients : int;  (** client count of the simulated instance *)
  servers : int;  (** server count of the simulated instance *)
  operations : Workload.op list;
  executions : execution list;  (** one per (operation, server) *)
  visibilities : visibility list;  (** one per (operation, client) *)
  messages : int;
  wall_duration : float;  (** simulated wall-clock span of the run *)
}

type event =
  | Issued of Workload.op  (** the issuing client handed it to the network *)
  | Executed of execution  (** a server executed it, just recorded *)
  | Presented of visibility  (** a client presented the state update *)
(** One protocol-level happening, emitted in engine (wall-clock) order. *)

val run :
  ?jitter:(src:int -> dst:int -> base:float -> float) ->
  ?execution_time:(Workload.op -> float) ->
  ?monitor:(event -> unit) ->
  Dia_core.Problem.t ->
  Dia_core.Assignment.t ->
  Dia_core.Clock.t ->
  Workload.op list ->
  report
(** Simulate the workload to completion. [jitter] perturbs every message
    latency (default none). [execution_time] maps an operation to the
    simulation time at which every server must execute it (and clients
    present it) — the synchronisation policy. The default is the paper's
    local-lag rule [fun op -> op.issue_time +. delta]; {!Bucket} supplies
    the bucket-synchronisation alternative. It must be non-decreasing in
    the operation id or executions are late by construction.

    [monitor] is called synchronously on every {!event} as the engine
    produces it — issue, execution, and presentation — so invariants can
    be enforced {e at} each event instead of post-hoc on the report
    ([Dia_oracle.Sim_invariant] builds such monitors). It must not
    mutate the simulation.

    @raise Invalid_argument if an operation's issuer is out of range. *)

val interaction_times : report -> (int * int * float) list
(** Per (issuer, observer, time) sample: observer's simulation time at
    presentation minus issue simulation time, for every operation and
    every observing client. *)
