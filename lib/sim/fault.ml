type action = Deliver | Drop | Duplicate of int | Delay of float

type rule =
  | Loss of { src : int option; dst : int option; rate : float }
  | Dup of { src : int option; dst : int option; rate : float; copies : int }
  | Spike of { src : int option; dst : int option; rate : float; extra : float }
  | Partition of { at : float; until : float; side : int list }
  | Crash of { actor : int; at : float; recover_at : float option }
  (* Storage faults. These target the durable-state write path (numbered
     by write operation, not by time), never the message plane: [decide],
     [down] and [crash_schedule] all ignore them, so a plan that mixes
     network and disk atoms perturbs each layer independently. *)
  | Torn of { op : int; at : int }
  | Flip of { op : int; at : int }
  | Fsync_loss of { op : int; at : int }
  | Rename_crash of { op : int }
  | Journal_torn of { op : int; at : int }

type plan = rule list

let reliable = []

let check_rate label rate =
  if not (Float.is_finite rate) || rate < 0. || rate > 1. then
    invalid_arg (Printf.sprintf "Fault.%s: rate %g outside [0, 1]" label rate)

let loss ?src ?dst ~rate () =
  check_rate "loss" rate;
  [ Loss { src; dst; rate } ]

let duplication ?src ?dst ?(copies = 1) ~rate () =
  check_rate "duplication" rate;
  if copies < 1 then invalid_arg "Fault.duplication: copies must be >= 1";
  [ Dup { src; dst; rate; copies } ]

let spike ?src ?dst ~rate ~extra () =
  check_rate "spike" rate;
  if extra < 0. || not (Float.is_finite extra) then
    invalid_arg (Printf.sprintf "Fault.spike: extra delay %g invalid" extra);
  [ Spike { src; dst; rate; extra } ]

let partition ~at ~until ~side =
  if not (Float.is_finite at && Float.is_finite until) || at < 0. || until <= at
  then invalid_arg (Printf.sprintf "Fault.partition: window [%g, %g) malformed" at until);
  [ Partition { at; until; side } ]

let crash ?recover_at ~at actor =
  if not (Float.is_finite at) || at < 0. then
    invalid_arg (Printf.sprintf "Fault.crash: time %g invalid" at);
  (match recover_at with
  | Some r when (not (Float.is_finite r)) || r <= at ->
      invalid_arg (Printf.sprintf "Fault.crash: recovery %g not after crash %g" r at)
  | _ -> ());
  [ Crash { actor; at; recover_at } ]

let check_op label op =
  if op < 1 then
    invalid_arg (Printf.sprintf "Fault.%s: write-op index %d must be >= 1" label op)

let check_offset label at =
  if at < 0 then
    invalid_arg (Printf.sprintf "Fault.%s: byte offset %d must be >= 0" label at)

let torn_write ~op ~at =
  check_op "torn_write" op;
  check_offset "torn_write" at;
  [ Torn { op; at } ]

let bit_flip ~op ~at =
  check_op "bit_flip" op;
  check_offset "bit_flip" at;
  [ Flip { op; at } ]

let fsync_loss ~op ~at =
  check_op "fsync_loss" op;
  check_offset "fsync_loss" at;
  [ Fsync_loss { op; at } ]

let rename_crash ~op =
  check_op "rename_crash" op;
  [ Rename_crash { op } ]

let journal_torn ~op ~at =
  check_op "journal_torn" op;
  check_offset "journal_torn" at;
  [ Journal_torn { op; at } ]

let is_disk_rule = function
  | Torn _ | Flip _ | Fsync_loss _ | Rename_crash _ | Journal_torn _ -> true
  | Loss _ | Dup _ | Spike _ | Partition _ | Crash _ -> false

let disk_rules plan = List.filter is_disk_rule plan
let network_rules plan = List.filter (fun r -> not (is_disk_rule r)) plan

type disk_rule =
  | Torn_write of { op : int; at : int }
  | Bit_flip of { op : int; at : int }
  | Lost_fsync of { op : int; at : int }
  | Crashed_rename of { op : int }
  | Torn_journal of { op : int; at : int }

let disk_schedule plan =
  List.filter_map
    (function
      | Torn { op; at } -> Some (Torn_write { op; at })
      | Flip { op; at } -> Some (Bit_flip { op; at })
      | Fsync_loss { op; at } -> Some (Lost_fsync { op; at })
      | Rename_crash { op } -> Some (Crashed_rename { op })
      | Journal_torn { op; at } -> Some (Torn_journal { op; at })
      | Loss _ | Dup _ | Spike _ | Partition _ | Crash _ -> None)
    plan

let all plans = List.concat plans

let equal (a : plan) (b : plan) = a = b

let crash_schedule plan =
  List.filter_map
    (function
      | Crash { actor; at; recover_at } -> Some (actor, at, recover_at)
      | _ -> None)
    plan

(* -- The fault mini-DSL -------------------------------------------------

   Canonical concrete syntax, one rule per '+'-separated atom:

     loss:R[@S>D]        dup:R[xN][@S>D]      spike:R~E[@S>D]
     part:AT~UNTIL@A,B   crash:ACTOR@AT[~RECOVER]

   S/D are actor ids or '*' (any). [to_string] prints this form with
   floats rendered by the shortest format that parses back to the exact
   same double, so [of_string (to_string p)] always yields [p]. *)

let float_str f =
  let exact fmt =
    let s = Printf.sprintf fmt f in
    if float_of_string s = f then Some s else None
  in
  match exact "%g" with
  | Some s -> s
  | None -> (
      match exact "%.12g" with Some s -> s | None -> Printf.sprintf "%.17g" f)

let endpoint_str src dst =
  match (src, dst) with
  | None, None -> ""
  | _ ->
      let ep = function None -> "*" | Some a -> string_of_int a in
      Printf.sprintf "@%s>%s" (ep src) (ep dst)

let rule_to_string = function
  | Loss { src; dst; rate } ->
      Printf.sprintf "loss:%s%s" (float_str rate) (endpoint_str src dst)
  | Dup { src; dst; rate; copies } ->
      Printf.sprintf "dup:%s%s%s" (float_str rate)
        (if copies = 1 then "" else Printf.sprintf "x%d" copies)
        (endpoint_str src dst)
  | Spike { src; dst; rate; extra } ->
      Printf.sprintf "spike:%s~%s%s" (float_str rate) (float_str extra)
        (endpoint_str src dst)
  | Partition { at; until; side } ->
      Printf.sprintf "part:%s~%s@%s" (float_str at) (float_str until)
        (String.concat "," (List.map string_of_int side))
  | Crash { actor; at; recover_at } ->
      Printf.sprintf "crash:%d@%s%s" actor (float_str at)
        (match recover_at with
        | None -> ""
        | Some r -> Printf.sprintf "~%s" (float_str r))
  | Torn { op; at } -> Printf.sprintf "torn:%d@%d" op at
  | Flip { op; at } -> Printf.sprintf "flip:%d@%d" op at
  | Fsync_loss { op; at } -> Printf.sprintf "fsync:%d@%d" op at
  | Rename_crash { op } -> Printf.sprintf "rename:%d" op
  | Journal_torn { op; at } -> Printf.sprintf "jtorn:%d@%d" op at

let to_string = function
  | [] -> "reliable"
  | plan -> String.concat "+" (List.map rule_to_string plan)

let pp_plan ppf plan = Format.pp_print_string ppf (to_string plan)

exception Parse of string

let parse_error fmt = Printf.ksprintf (fun m -> raise (Parse m)) fmt

let split_once ~on s =
  match String.index_opt s on with
  | None -> None
  | Some i ->
      Some (String.sub s 0 i, String.sub s (i + 1) (String.length s - i - 1))

let parse_float what s =
  match float_of_string_opt (String.trim s) with
  | Some f -> f
  | None -> parse_error "%s: not a number (%S)" what s

let parse_int what s =
  match int_of_string_opt (String.trim s) with
  | Some i -> i
  | None -> parse_error "%s: not an integer (%S)" what s

let parse_endpoint what s =
  match String.trim s with
  | "*" -> None
  | other -> Some (parse_int what other)

(* "BODY[@S>D]" -> (BODY, src, dst) for loss/dup/spike atoms. *)
let parse_link_suffix atom body =
  match split_once ~on:'@' body with
  | None -> (body, None, None)
  | Some (params, link) -> (
      match split_once ~on:'>' link with
      | None -> parse_error "%s: endpoint filter must be S>D (got %S)" atom link
      | Some (s, d) ->
          (params, parse_endpoint atom s, parse_endpoint atom d))

let parse_rule atom =
  let name, body =
    match split_once ~on:':' atom with
    | Some (name, body) -> (String.trim name, String.trim body)
    | None -> parse_error "rule %S: expected NAME:BODY" atom
  in
  match name with
  | "loss" ->
      let params, src, dst = parse_link_suffix atom body in
      loss ?src ?dst ~rate:(parse_float atom params) ()
  | "dup" ->
      let params, src, dst = parse_link_suffix atom body in
      let rate, copies =
        match split_once ~on:'x' params with
        | None -> (parse_float atom params, 1)
        | Some (r, n) -> (parse_float atom r, parse_int atom n)
      in
      duplication ?src ?dst ~copies ~rate ()
  | "spike" ->
      let params, src, dst = parse_link_suffix atom body in
      let rate, extra =
        match split_once ~on:'~' params with
        | None -> parse_error "%s: expected RATE~EXTRA" atom
        | Some (r, e) -> (parse_float atom r, parse_float atom e)
      in
      spike ?src ?dst ~rate ~extra ()
  | "part" -> (
      match split_once ~on:'@' body with
      | None -> parse_error "%s: expected AT~UNTIL@A,B,..." atom
      | Some (window, side) -> (
          match split_once ~on:'~' window with
          | None -> parse_error "%s: window must be AT~UNTIL" atom
          | Some (at, until) ->
              (* Strict side parsing: an empty entry ("0,,1", "0,1,") is
                 a typo, not something to filter away silently. *)
              let entries = String.split_on_char ',' side in
              List.iteri
                (fun i s ->
                  if String.trim s = "" then
                    parse_error
                      "%s: empty entry %d in partition side %S (trailing or \
                       doubled comma?)"
                      atom (i + 1) side)
                entries;
              let side = List.map (parse_int atom) entries in
              if side = [] then parse_error "%s: empty partition side" atom;
              partition ~at:(parse_float atom at) ~until:(parse_float atom until)
                ~side))
  | "crash" -> (
      match split_once ~on:'@' body with
      | None -> parse_error "%s: expected ACTOR@AT[~RECOVER]" atom
      | Some (actor, times) -> (
          let actor = parse_int atom actor in
          match split_once ~on:'~' times with
          | None -> crash ~at:(parse_float atom times) actor
          | Some (at, recover) ->
              crash ~recover_at:(parse_float atom recover)
                ~at:(parse_float atom at) actor))
  | "torn" | "flip" | "fsync" | "jtorn" -> (
      match split_once ~on:'@' body with
      | None -> parse_error "%s: expected OP@BYTE" atom
      | Some (op, at) -> (
          let op = parse_int atom op and at = parse_int atom at in
          match name with
          | "torn" -> torn_write ~op ~at
          | "flip" -> bit_flip ~op ~at
          | "fsync" -> fsync_loss ~op ~at
          | _ -> journal_torn ~op ~at))
  | "rename" -> rename_crash ~op:(parse_int atom body)
  | other ->
      parse_error
        "unknown rule %S (loss|dup|spike|part|crash|torn|flip|fsync|rename|jtorn)"
        other

let of_string spec =
  let spec = String.trim spec in
  try
    if spec = "" || spec = "reliable" || spec = "none" then Ok reliable
    else begin
      (* Split on '+' while remembering where each atom starts, so every
         rejection names the offending token and its character position —
         nothing is ever silently ignored. *)
      let atoms = ref [] and start = ref 0 in
      String.iteri
        (fun i c ->
          if c = '+' then begin
            atoms := (!start, String.sub spec !start (i - !start)) :: !atoms;
            start := i + 1
          end)
        spec;
      atoms :=
        (!start, String.sub spec !start (String.length spec - !start)) :: !atoms;
      let parse idx (pos, raw) =
        let atom = String.trim raw in
        if atom = "" then
          parse_error "atom %d at char %d: empty rule (stray '+'?)" (idx + 1) pos;
        match parse_rule atom with
        | rules -> rules
        | exception Parse m ->
            parse_error "atom %d at char %d: %s" (idx + 1) pos m
        | exception Invalid_argument m ->
            parse_error "atom %d at char %d: %s" (idx + 1) pos m
      in
      Ok (List.concat (List.mapi parse (List.rev !atoms)))
    end
  with
  | Parse message -> Error message
  | Invalid_argument message -> Error message

type t = { rules : rule list; rng : Random.State.t }

let instantiate ?(seed = 0) plan = { rules = plan; rng = Random.State.make [| seed |] }

let down t ~now actor =
  List.exists
    (function
      | Crash { actor = a; at; recover_at } ->
          a = actor
          && now >= at
          && (match recover_at with None -> true | Some r -> now < r)
      | _ -> false)
    t.rules

let matches side x = match side with None -> true | Some y -> y = x

let decide t ~now ~src ~dst =
  if down t ~now src || down t ~now dst then Drop
  else begin
    (* Every probabilistic rule draws exactly once whether or not an
       earlier rule already sealed the message's fate, so the decision
       stream stays aligned across plan variations with the same rule
       list shape — and replay-identical for a fixed plan and seed. *)
    let dropped = ref false in
    let copies = ref 0 in
    let extra = ref 0. in
    List.iter
      (fun rule ->
        match rule with
        | Loss { src = s; dst = d; rate } ->
            if matches s src && matches d dst then
              if Random.State.float t.rng 1. < rate then dropped := true
        | Dup { src = s; dst = d; rate; copies = n } ->
            if matches s src && matches d dst then
              if Random.State.float t.rng 1. < rate then copies := !copies + n
        | Spike { src = s; dst = d; rate; extra = e } ->
            if matches s src && matches d dst then
              if Random.State.float t.rng 1. < rate then extra := !extra +. e
        | Partition { at; until; side } ->
            if now >= at && now < until then begin
              let in_side a = List.mem a side in
              if in_side src <> in_side dst then dropped := true
            end
        | Crash _ | Torn _ | Flip _ | Fsync_loss _ | Rename_crash _
        | Journal_torn _ ->
            ())
      t.rules;
    if !dropped then Drop
    else if !copies > 0 then Duplicate !copies
    else if !extra > 0. then Delay !extra
    else Deliver
  end
