type action = Deliver | Drop | Duplicate of int | Delay of float

type rule =
  | Loss of { src : int option; dst : int option; rate : float }
  | Dup of { src : int option; dst : int option; rate : float; copies : int }
  | Spike of { src : int option; dst : int option; rate : float; extra : float }
  | Partition of { at : float; until : float; side : int list }
  | Crash of { actor : int; at : float; recover_at : float option }

type plan = rule list

let reliable = []

let check_rate label rate =
  if not (Float.is_finite rate) || rate < 0. || rate > 1. then
    invalid_arg (Printf.sprintf "Fault.%s: rate %g outside [0, 1]" label rate)

let loss ?src ?dst ~rate () =
  check_rate "loss" rate;
  [ Loss { src; dst; rate } ]

let duplication ?src ?dst ?(copies = 1) ~rate () =
  check_rate "duplication" rate;
  if copies < 1 then invalid_arg "Fault.duplication: copies must be >= 1";
  [ Dup { src; dst; rate; copies } ]

let spike ?src ?dst ~rate ~extra () =
  check_rate "spike" rate;
  if extra < 0. || not (Float.is_finite extra) then
    invalid_arg (Printf.sprintf "Fault.spike: extra delay %g invalid" extra);
  [ Spike { src; dst; rate; extra } ]

let partition ~at ~until ~side =
  if not (Float.is_finite at && Float.is_finite until) || at < 0. || until <= at
  then invalid_arg (Printf.sprintf "Fault.partition: window [%g, %g) malformed" at until);
  [ Partition { at; until; side } ]

let crash ?recover_at ~at actor =
  if not (Float.is_finite at) || at < 0. then
    invalid_arg (Printf.sprintf "Fault.crash: time %g invalid" at);
  (match recover_at with
  | Some r when (not (Float.is_finite r)) || r <= at ->
      invalid_arg (Printf.sprintf "Fault.crash: recovery %g not after crash %g" r at)
  | _ -> ());
  [ Crash { actor; at; recover_at } ]

let all plans = List.concat plans

type t = { rules : rule list; rng : Random.State.t }

let instantiate ?(seed = 0) plan = { rules = plan; rng = Random.State.make [| seed |] }

let down t ~now actor =
  List.exists
    (function
      | Crash { actor = a; at; recover_at } ->
          a = actor
          && now >= at
          && (match recover_at with None -> true | Some r -> now < r)
      | _ -> false)
    t.rules

let matches side x = match side with None -> true | Some y -> y = x

let decide t ~now ~src ~dst =
  if down t ~now src || down t ~now dst then Drop
  else begin
    (* Every probabilistic rule draws exactly once whether or not an
       earlier rule already sealed the message's fate, so the decision
       stream stays aligned across plan variations with the same rule
       list shape — and replay-identical for a fixed plan and seed. *)
    let dropped = ref false in
    let copies = ref 0 in
    let extra = ref 0. in
    List.iter
      (fun rule ->
        match rule with
        | Loss { src = s; dst = d; rate } ->
            if matches s src && matches d dst then
              if Random.State.float t.rng 1. < rate then dropped := true
        | Dup { src = s; dst = d; rate; copies = n } ->
            if matches s src && matches d dst then
              if Random.State.float t.rng 1. < rate then copies := !copies + n
        | Spike { src = s; dst = d; rate; extra = e } ->
            if matches s src && matches d dst then
              if Random.State.float t.rng 1. < rate then extra := !extra +. e
        | Partition { at; until; side } ->
            if now >= at && now < until then begin
              let in_side a = List.mem a side in
              if in_side src <> in_side dst then dropped := true
            end
        | Crash _ -> ())
      t.rules;
    if !dropped then Drop
    else if !copies > 0 then Duplicate !copies
    else if !extra > 0. then Delay !extra
    else Deliver
  end
