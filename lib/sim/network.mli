(** Simulated message-passing network.

    Delivers messages between {e actors} over an {!Engine}: a message
    from [src] to [dst] arrives after the latency given by a pairwise
    latency function, optionally perturbed by a jitter sampler. Actors
    are dense integers chosen by the caller — typically matrix node
    indices, or a role-split address space when one network node hosts
    both a server and a client (as in the paper, where a client sits at
    every node). Counts messages for protocol-cost reporting.

    An optional {!Fault} state makes the network unreliable: each
    transmission is resolved to deliver / drop / duplicate / delay, and
    actors can be down — explicitly via {!set_down} or on the fault
    plan's crash schedule. Messages to or from a down actor are dropped,
    including messages already in flight when the destination goes down.
    All losses are counted, never silent. *)

type 'payload t

val create :
  ?jitter:(src:int -> dst:int -> base:float -> float) ->
  ?fault:Fault.t ->
  Engine.t ->
  actors:int ->
  latency:(int -> int -> float) ->
  'payload t
(** [create engine ~actors ~latency] is a network over actor ids
    [0 .. actors-1]. [latency src dst] must be non-negative and finite;
    [jitter] maps each transmission's base latency to the realised one
    (default: identity) and must also return a non-negative value.
    [fault] (default: none) injects seeded loss, duplication, latency
    spikes, partitions, and crashes — see {!Fault}. *)

val of_matrix :
  ?jitter:(src:int -> dst:int -> base:float -> float) ->
  ?fault:Fault.t ->
  Engine.t ->
  Dia_latency.Matrix.t ->
  'payload t
(** Actors are exactly the matrix's nodes. *)

val on_receive : 'payload t -> int -> (src:int -> 'payload -> unit) -> unit
(** [on_receive net actor handler] registers [actor]'s message handler
    (replacing any previous one). *)

val send : 'payload t -> src:int -> dst:int -> 'payload -> unit
(** Send a message; it is delivered to [dst]'s handler after the (possibly
    jittered) latency, unless the fault state drops, delays, or duplicates
    it. Self-sends deliver after the self-latency (usually zero), still
    asynchronously. Jitter is drawn independently for each duplicate copy.

    @raise Invalid_argument on out-of-bounds actors or invalid latency. *)

val is_down : 'payload t -> int -> bool
(** Whether the actor is currently down — explicitly, or per the fault
    plan's crash schedule at the engine's current time.

    @raise Invalid_argument on out-of-bounds actors. *)

val set_down : 'payload t -> int -> bool -> unit
(** Explicitly take an actor down (or bring it back up). Orthogonal to —
    and OR-ed with — the fault plan's crash schedule.

    @raise Invalid_argument on out-of-bounds actors. *)

val messages_sent : 'payload t -> int
(** Total [send] calls (duplicate copies not included). *)

val messages_dropped : 'payload t -> int
(** Messages lost to faults or down actors (at send or delivery time). *)

val messages_duplicated : 'payload t -> int
(** Extra copies delivered beyond the original transmissions. *)

val undeliverable : 'payload t -> int
(** Messages that arrived at an actor with no registered handler —
    previously dropped silently, now observable. *)

val latency_of_last_message : 'payload t -> float
(** Realised latency of the most recent scheduled delivery ([nan] before
    any; unchanged by dropped sends). *)
