(** Consistency and fairness checks over a protocol run.

    Turns a {!Protocol.report} into verdicts on the two requirements of
    Section II-B:

    - {b consistency}: every operation was executed by every server at
      the same simulation time (so all state copies agree whenever their
      simulation times coincide);
    - {b fairness}: operations executed in issue order with a constant
      simulation-time lag between issue and execution.

    And into the interactivity measurement of Section II-C: the
    distribution of interaction times between client pairs. *)

type verdict = {
  consistent : bool;
      (** every operation executed at one common simulation time on all
          servers *)
  fair : bool;
      (** execution order equals issue order and the issue-to-execution
          lag is the same constant for every operation *)
  late_executions : int;  (** server-side deadline misses *)
  late_visibilities : int;  (** client-side deadline misses *)
  max_interaction_time : float;
  mean_interaction_time : float;
  uniform_interaction : bool;
      (** all pairwise interaction times equal (the paper's synchronised
          construction achieves this) *)
  empty : bool;
      (** no interaction time was observed — the run presented nothing.
          The interaction-time statistics above are then [0.] by
          convention (not [nan]), so downstream aggregation never
          silently propagates [nan]; check this flag before treating
          them as measurements. *)
}

val analyze : ?eps:float -> Protocol.report -> verdict
(** Analyse a report. [eps] (default [1e-6]) is the tolerance for
    comparing simulation times. For an empty run every boolean is
    [true], [empty] is [true], and the interaction-time statistics are
    [0.]. *)

val validate_assignment :
  ?live:(int -> bool) ->
  Dia_core.Problem.t ->
  Dia_core.Assignment.t ->
  (unit, string) result
(** Structural validity of an assignment against an instance: right
    client count, every client on an in-range server, capacity
    respected. [live] (default: everyone) marks which servers survived —
    a client assigned to a dead server is an error. Used to audit the
    assignment a faulty protocol run terminates with. *)

val breach_rate : Protocol.report -> float
(** Fraction of (operation, server/client) events that missed their
    deadline — the empirical counterpart of
    {!Dia_latency.Jitter.breach_probability}. [0.] for runs with no
    events (vacuously, nothing breached — same normalisation as
    {!analyze}). *)

val replicated_states : Protocol.report -> (int * State.t) list
(** The application state each server reaches by applying its executed
    operations in canonical order (execution simulation time, ties by
    operation id) — one [(server, state)] per server that executed
    anything. *)

val state_consistent : Protocol.report -> bool
(** Whether every server's replicated {!State} digest is identical — the
    paper's consistency requirement checked on actual state, not just on
    execution timing. Vacuously true when nothing executed. *)
