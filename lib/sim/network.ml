module Matrix = Dia_latency.Matrix

type 'payload t = {
  engine : Engine.t;
  latency : int -> int -> float;
  jitter : src:int -> dst:int -> base:float -> float;
  fault : Fault.t option;
  handlers : (src:int -> 'payload -> unit) option array;
  down : bool array;
  mutable sent : int;
  mutable dropped : int;
  mutable duplicated : int;
  mutable undeliverable : int;
  mutable last_latency : float;
}

let create ?(jitter = fun ~src:_ ~dst:_ ~base -> base) ?fault engine ~actors ~latency
    =
  if actors < 0 then invalid_arg "Network.create: negative actor count";
  {
    engine;
    latency;
    jitter;
    fault;
    handlers = Array.make actors None;
    down = Array.make actors false;
    sent = 0;
    dropped = 0;
    duplicated = 0;
    undeliverable = 0;
    last_latency = nan;
  }

let of_matrix ?jitter ?fault engine matrix =
  create ?jitter ?fault engine ~actors:(Matrix.dim matrix) ~latency:(Matrix.get matrix)

let check_actor net label actor =
  if actor < 0 || actor >= Array.length net.handlers then
    invalid_arg (Printf.sprintf "Network: %s actor %d out of bounds" label actor)

let on_receive net actor handler =
  check_actor net "receiving" actor;
  net.handlers.(actor) <- Some handler

let is_down net actor =
  check_actor net "queried" actor;
  net.down.(actor)
  ||
  match net.fault with
  | None -> false
  | Some fault -> Fault.down fault ~now:(Engine.now net.engine) actor

let set_down net actor down =
  check_actor net "toggled" actor;
  net.down.(actor) <- down

(* One delivery attempt: jitter is drawn per copy, and the destination's
   up/down state is re-checked at arrival time, so an actor that crashes
   while the message is in flight never receives it. *)
let deliver net ~src ~dst ~base ~extra payload =
  let latency = net.jitter ~src ~dst ~base in
  if latency < 0. || not (Float.is_finite latency) then
    invalid_arg (Printf.sprintf "Network.send: jittered latency %g invalid" latency);
  let latency = latency +. extra in
  net.last_latency <- latency;
  Engine.schedule_after net.engine latency (fun () ->
      if is_down net dst then net.dropped <- net.dropped + 1
      else
        match net.handlers.(dst) with
        | Some handler -> handler ~src payload
        | None -> net.undeliverable <- net.undeliverable + 1)

let send net ~src ~dst payload =
  check_actor net "source" src;
  check_actor net "destination" dst;
  let base = net.latency src dst in
  if base < 0. || not (Float.is_finite base) then
    invalid_arg (Printf.sprintf "Network.send: latency %g invalid" base);
  net.sent <- net.sent + 1;
  if is_down net src || is_down net dst then net.dropped <- net.dropped + 1
  else begin
    let action =
      match net.fault with
      | None -> Fault.Deliver
      | Some fault -> Fault.decide fault ~now:(Engine.now net.engine) ~src ~dst
    in
    match action with
    | Fault.Drop -> net.dropped <- net.dropped + 1
    | Fault.Deliver -> deliver net ~src ~dst ~base ~extra:0. payload
    | Fault.Delay extra -> deliver net ~src ~dst ~base ~extra payload
    | Fault.Duplicate copies ->
        net.duplicated <- net.duplicated + copies;
        for _ = 0 to copies do
          deliver net ~src ~dst ~base ~extra:0. payload
        done
  end

let messages_sent net = net.sent
let messages_dropped net = net.dropped
let messages_duplicated net = net.duplicated
let undeliverable net = net.undeliverable

let latency_of_last_message net = net.last_latency
