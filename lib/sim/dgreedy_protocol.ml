module Problem = Dia_core.Problem
module Assignment = Dia_core.Assignment

type fault_stats = {
  dropped : int;
  duplicated : int;
  undeliverable : int;
  retransmissions : int;
  give_ups : int;
  regenerations : int;
  failovers : int;
}

type result = {
  assignment : Assignment.t;
  objective : float;
  initial_objective : float;
  modifications : int;
  messages : int;
  wall_duration : float;
  stalled : bool;
  faults : fault_stats;
}

type tuning = {
  rto : float;
  rto_cap : float;
  backoff : float;
  max_attempts : int;
  ping_period : float;
  regen_timeout : float;
  max_regenerations : int;
  deadline : float;
}

let base_settle_time p =
  let k = Problem.num_servers p in
  let max_latency = Dia_latency.Matrix.max_entry (Problem.latency p) in
  2. *. Float.max 1. max_latency *. float_of_int (k + 3)

let settle_time = base_settle_time

let default_tuning p =
  let max_latency = Float.max 1. (Dia_latency.Matrix.max_entry (Problem.latency p)) in
  let rto = 4. *. max_latency in
  {
    rto;
    rto_cap = 4. *. rto;
    backoff = 1.5;
    max_attempts = 10;
    ping_period = 3. *. rto;
    regen_timeout = 40. *. rto;
    max_regenerations = 32;
    deadline = (3. *. base_settle_time p) +. (500. *. rto);
  }

type payload =
  | Probe of float  (** transmit time, echoed back for an NTP-style RTT *)
  | Probe_reply of { t1 : float; hold : float }
      (** [t1] echoed; [hold] = time the replier sat on the probe, so
          retransmission waits cancel out of the RTT on both legs *)
  | Join of float  (** the client's measured distance to this server *)
  | Join_accept
  | Join_reject
  | Init_info of { inter : float array; longest : float }
  | Ready
  | Ecc_update of float  (** a late join grew this server's eccentricity *)
  | Candidate of { client : int; l_minus : float; epoch : int }
  | Candidate_reply of { l_value : float; distance : float; epoch : int }
  | Commit of {
      client : int;
      from_server : int;
      to_server : int;
      l_from : float;
      l_to : float;
      distance : float;
      epoch : int;
    }
  | Commit_ack of int  (** epoch *)
  | Token of { count : int; epoch : int }
  | Reassign
  | Ping

(* Reliable-transport frame: every protocol payload travels as [Data]
   with a per-channel sequence number, acknowledged per frame and
   retransmitted with backoff until acked or the retry budget runs out.
   Receivers deduplicate by (src, dst, seq), so loss and duplication
   faults are masked and retry exhaustion doubles as failure detection. *)
type frame = Data of { seq : int; body : payload } | Ack of int

(* Per-client protocol state. *)
type client_state = {
  client_index : int;
  mutable measured : (int * float) list;  (** (server, distance) measured *)
  mutable awaiting : int;  (** probe replies still expected *)
  mutable join_order : int array;  (** servers by measured distance *)
  mutable join_attempt : int;
  mutable my_server : int;
  dead : bool array;  (** this client's view of crashed servers *)
}

(* Per-server protocol state. *)
type server_state = {
  server_index : int;
  mutable members : (int * float) list;  (** (client, measured distance) *)
  mutable inter_rows : float array array;  (** inter_rows.(s).(s') as broadcast *)
  mutable longest : float array;  (** l(s) for every server, as broadcast *)
  mutable init_infos : int;
  mutable readys : int;
  mutable inter_awaiting : int;
  mutable inited : bool;
  peer_down : bool array;  (** this server's view of crashed peers *)
  mutable epoch : int;  (** newest token epoch seen *)
  (* token-holding state *)
  mutable untried : int list;
  mutable pending_replies : int;
  mutable replied : int list;
  mutable replies : (int * float * float) list;  (** (server, L, distance) *)
  mutable current_candidate : (int * float) option;  (** (client, l_minus) *)
  mutable pending_acks : int;
  mutable acked : int list;
  mutable token_count : int;
  mutable committed_this_possession : bool;
}

let eps = 1e-9

let run ?jitter ?fault ?tuning p =
  let k = Problem.num_servers p in
  let n = Problem.num_clients p in
  if n = 0 then invalid_arg "Dgreedy_protocol.run: no clients";
  let tuning = match tuning with Some t -> t | None -> default_tuning p in
  let capacity = match Problem.capacity p with None -> max_int | Some c -> c in
  let engine = Engine.create () in
  let node actor =
    if actor < k then (Problem.servers p).(actor) else (Problem.clients p).(actor - k)
  in
  let latency a b = Dia_latency.Matrix.get (Problem.latency p) (node a) (node b) in
  let net = Network.create ?jitter ?fault engine ~actors:(k + n) ~latency in
  (* Every join (probe + retries across up to k full servers) completes
     within this horizon; servers broadcast their initial state then.
     Under faults, stretch it so most first-round retransmissions have
     resolved — late joins are still absorbed via Ecc_update. *)
  let settle_time =
    base_settle_time p *. (match fault with None -> 1. | Some _ -> 3.)
  in

  let clients =
    Array.init n (fun c ->
        {
          client_index = c;
          measured = [];
          awaiting = k;
          join_order = [||];
          join_attempt = 0;
          my_server = -1;
          dead = Array.make k false;
        })
  in
  let servers =
    Array.init k (fun s ->
        {
          server_index = s;
          members = [];
          inter_rows = Array.make_matrix k k 0.;
          longest = Array.make k neg_infinity;
          init_infos = 0;
          readys = 0;
          inter_awaiting = k - 1;
          inited = false;
          peer_down = Array.make k false;
          epoch = 0;
          untried = [];
          pending_replies = 0;
          replied = [];
          replies = [];
          current_candidate = None;
          pending_acks = 0;
          acked = [];
          token_count = 0;
          committed_this_possession = false;
        })
  in
  let initial_objective = ref nan in
  let modifications = ref 0 in
  let retransmissions = ref 0 in
  let give_ups = ref 0 in
  let regenerations = ref 0 in
  let failovers = ref 0 in
  let epoch_counter = ref 0 in
  let stalled = ref false in
  let halted = ref false in
  let completion = ref 0. in
  let last_activity = ref settle_time in
  let finish () =
    if not !halted then begin
      halted := true;
      completion := Engine.now engine
    end
  in
  let touch () = last_activity := Engine.now engine in

  (* -- Reliable transport over the (possibly faulty) network ------------ *)
  let next_seq : (int * int, int) Hashtbl.t = Hashtbl.create 64 in
  let unacked : (int * int * int, unit) Hashtbl.t = Hashtbl.create 64 in
  let seen : (int * int * int, unit) Hashtbl.t = Hashtbl.create 256 in
  (* Forward reference: retry exhaustion feeds back into protocol-level
     failure handling, defined after the handlers. *)
  let on_give_up : (src:int -> dst:int -> payload -> unit) ref =
    ref (fun ~src:_ ~dst:_ _ -> ())
  in
  let wait attempt =
    Float.min tuning.rto_cap (tuning.rto *. (tuning.backoff ** float_of_int attempt))
  in
  (* [mk] builds the body per transmission, so probes can stamp their
     actual departure time into each copy. *)
  let send_reliable ~src ~dst mk =
    let seq = Option.value ~default:0 (Hashtbl.find_opt next_seq (src, dst)) in
    Hashtbl.replace next_seq (src, dst) (seq + 1);
    Hashtbl.replace unacked (src, dst, seq) ();
    let rec attempt i =
      if (not !halted) && Hashtbl.mem unacked (src, dst, seq) then
        if i >= tuning.max_attempts then begin
          Hashtbl.remove unacked (src, dst, seq);
          incr give_ups;
          !on_give_up ~src ~dst (mk ())
        end
        else begin
          if i > 0 then incr retransmissions;
          Network.send net ~src ~dst (Data { seq; body = mk () });
          Engine.schedule_after engine (wait i) (fun () -> attempt (i + 1))
        end
    in
    attempt 0
  in
  let rsend ~src ~dst body = send_reliable ~src ~dst (fun () -> body) in
  let frame_handler actor handle ~src frame =
    if not !halted then
      match frame with
      | Ack seq -> Hashtbl.remove unacked (actor, src, seq)
      | Data { seq; body } ->
          Network.send net ~src:actor ~dst:src (Ack seq);
          if not (Hashtbl.mem seen (src, actor, seq)) then begin
            Hashtbl.add seen (src, actor, seq) ();
            handle ~src body
          end
  in

  let send_probe ~from ~target =
    send_reliable ~src:from ~dst:target (fun () -> Probe (Engine.now engine))
  in
  let reply_probe ~from ~target t1 =
    let t2 = Engine.now engine in
    send_reliable ~src:from ~dst:target (fun () ->
        Probe_reply { t1; hold = Engine.now engine -. t2 })
  in
  let probe_distance t1 hold = Float.max 0. ((Engine.now engine -. t1 -. hold) /. 2.) in

  let live_peers st =
    List.filter
      (fun s -> s <> st.server_index && not st.peer_down.(s))
      (List.init k Fun.id)
  in
  let broadcast_live st payload =
    List.iter (fun s -> rsend ~src:st.server_index ~dst:s payload) (live_peers st)
  in

  (* Distance between two servers as believed by [st] (symmetrised). *)
  let inter st s1 s2 =
    if s1 = s2 then 0.
    else (st.inter_rows.(s1).(s2) +. st.inter_rows.(s2).(s1)) /. 2.
  in
  let objective_of st longest =
    let best = ref neg_infinity in
    for s1 = 0 to k - 1 do
      if longest.(s1) > neg_infinity then
        for s2 = s1 to k - 1 do
          if longest.(s2) > neg_infinity then begin
            let len = longest.(s1) +. inter st s1 s2 +. longest.(s2) in
            if len > !best then best := len
          end
        done
    done;
    !best
  in
  let my_longest st =
    List.fold_left (fun acc (_, d) -> Float.max acc d) neg_infinity st.members
  in
  let longest_without st client =
    List.fold_left
      (fun acc (c, d) -> if c = client then acc else Float.max acc d)
      neg_infinity st.members
  in

  (* Candidates of the token holder: its clients realising l(s), when s
     lies on a longest interaction path. *)
  let compute_candidates st =
    let d = objective_of st st.longest in
    if Float.is_nan !initial_objective then initial_objective := d;
    let s = st.server_index in
    let on_longest = ref false in
    for s2 = 0 to k - 1 do
      if st.longest.(s) > neg_infinity
         && st.longest.(s2) > neg_infinity
         && st.longest.(s) +. inter st s s2 +. st.longest.(s2) >= d -. eps
      then on_longest := true
    done;
    if not !on_longest then []
    else
      List.filter_map
        (fun (c, dist) -> if dist >= st.longest.(s) -. eps then Some c else None)
        (List.sort compare st.members)
  in

  (* A token epoch newer than ours supersedes whatever round we were
     running: a regenerated token is circulating and our state is stale. *)
  let observe_epoch st epoch =
    if epoch > st.epoch then begin
      st.epoch <- epoch;
      if epoch > !epoch_counter then epoch_counter := epoch;
      st.untried <- [];
      st.current_candidate <- None;
      st.pending_replies <- 0;
      st.replied <- [];
      st.replies <- [];
      st.pending_acks <- 0;
      st.acked <- []
    end
  in

  (* Forward declaration: token-possession driver. *)
  let rec work st =
    match st.untried with
    | [] ->
        let next_count =
          if st.committed_this_possession then 0 else st.token_count + 1
        in
        let live = 1 + List.length (live_peers st) in
        if next_count >= live then finish () (* every live server failed to improve *)
        else pass_token st next_count
    | c :: rest ->
        st.untried <- rest;
        let l_minus = longest_without st c in
        st.current_candidate <- Some (c, l_minus);
        let peers = live_peers st in
        st.pending_replies <- List.length peers;
        st.replied <- [];
        st.replies <- [];
        if peers = [] then decide st
        else
          List.iter
            (fun s ->
              rsend ~src:st.server_index ~dst:s
                (Candidate { client = c; l_minus; epoch = st.epoch }))
            peers

  and pass_token st count =
    (* Next live server in ring order after us. *)
    let rec next i =
      if i = st.server_index then None
      else if not st.peer_down.(i) then Some i
      else next ((i + 1) mod k)
    in
    match next ((st.server_index + 1) mod k) with
    | None -> finish () (* alone; work already ruled out improvement *)
    | Some s -> rsend ~src:st.server_index ~dst:s (Token { count; epoch = st.epoch })

  and decide st =
    match st.current_candidate with
    | None -> ()
    | Some (c, l_minus) ->
        let d = objective_of st st.longest in
        let improving =
          (* Best target by L-value; commit only on strict global
             improvement, exactly like the centralized algorithm. *)
          match
            List.sort
              (fun (_, la, _) (_, lb, _) -> Float.compare la lb)
              st.replies
          with
          | [] -> None
          | (target, l_value, distance) :: _ when l_value < d -. eps ->
              let trial = Array.copy st.longest in
              trial.(st.server_index) <- l_minus;
              trial.(target) <- Float.max trial.(target) distance;
              let d' = objective_of st trial in
              if d' < d -. eps then Some (target, distance) else None
          | _ -> None
        in
        (match improving with
        | Some (target, distance) ->
            let l_to =
              (* The target's eccentricity after adopting c, from its
                 reported measured distance. *)
              Float.max
                (if target = st.server_index then l_minus else st.longest.(target))
                distance
            in
            let commit =
              Commit
                {
                  client = c;
                  from_server = st.server_index;
                  to_server = target;
                  l_from = l_minus;
                  l_to;
                  distance;
                  epoch = st.epoch;
                }
            in
            let peers = live_peers st in
            st.pending_acks <- List.length peers;
            st.acked <- [];
            st.committed_this_possession <- true;
            incr modifications;
            (* Apply locally: drop the client, update the table. *)
            st.members <- List.filter (fun (c', _) -> c' <> c) st.members;
            st.longest.(st.server_index) <- l_minus;
            st.longest.(target) <- l_to;
            st.current_candidate <- None;
            if peers = [] then after_commit st else broadcast_live st commit
        | None ->
            st.current_candidate <- None;
            work st)

  and after_commit st =
    (* All live servers acknowledged: candidates are stale, recompute. *)
    st.untried <- compute_candidates st;
    work st

  (* Failure handling: a peer that exhausted our retry budget is treated
     as crashed — removed from the believed state and from any round we
     are waiting on, so a wedged possession completes without it. *)
  and mark_peer_dead st s =
    if s <> st.server_index && not st.peer_down.(s) then begin
      st.peer_down.(s) <- true;
      st.longest.(s) <- neg_infinity;
      (match st.current_candidate with
      | Some _ when st.pending_replies > 0 && not (List.mem s st.replied) ->
          st.replied <- s :: st.replied;
          st.pending_replies <- st.pending_replies - 1;
          if st.pending_replies = 0 then decide st
      | _ -> ());
      if st.pending_acks > 0 && not (List.mem s st.acked) then begin
        st.acked <- s :: st.acked;
        st.pending_acks <- st.pending_acks - 1;
        if st.pending_acks = 0 then after_commit st
      end
    end
  in

  let start_token st =
    st.token_count <- 0;
    st.committed_this_possession <- false;
    st.untried <- compute_candidates st;
    work st
  in

  (* Server message handler (the candidate wrapper below intercepts
     client-probe replies first). *)
  let server_handle st ~src payload =
    match payload with
    | Probe t1 -> reply_probe ~from:st.server_index ~target:src t1
    | Probe_reply { t1; hold } ->
        (* Inter-server measurement during initialisation; client-probe
           replies (src >= k) are intercepted by the wrapper handler. *)
        if src < k then begin
          st.inter_rows.(st.server_index).(src) <- probe_distance t1 hold;
          st.inter_awaiting <- st.inter_awaiting - 1
        end
    | Join distance ->
        if List.mem_assoc (src - k) st.members then
          (* A duplicate join (e.g. re-join after a spurious failure
             verdict on us): idempotent accept. *)
          rsend ~src:st.server_index ~dst:src Join_accept
        else if List.length st.members < capacity then begin
          st.members <- (src - k, distance) :: st.members;
          rsend ~src:st.server_index ~dst:src Join_accept;
          if st.inited && distance > st.longest.(st.server_index) then begin
            (* A fail-over (or loss-delayed) join landed after the state
               exchange: our eccentricity grew; tell the live peers. *)
            st.longest.(st.server_index) <- distance;
            broadcast_live st (Ecc_update distance)
          end
        end
        else rsend ~src:st.server_index ~dst:src Join_reject
    | Init_info { inter = row; longest } ->
        st.inter_rows.(src) <- Array.copy row;
        st.longest.(src) <- longest;
        st.init_infos <- st.init_infos + 1;
        if st.init_infos = k - 1 then
          if st.server_index = 0 then begin
            st.readys <- st.readys + 1;
            if st.readys = k then start_token st
          end
          else rsend ~src:st.server_index ~dst:0 Ready
    | Ready ->
        st.readys <- st.readys + 1;
        if st.readys = k && st.init_infos = k - 1 then start_token st
    | Ecc_update value ->
        touch ();
        st.longest.(src) <- Float.max st.longest.(src) value
    | Candidate _ -> () (* handled in the wrapper below *)
    | Candidate_reply { l_value; distance; epoch } ->
        touch ();
        if
          epoch = st.epoch
          && st.current_candidate <> None
          && not (List.mem src st.replied)
        then begin
          st.replied <- src :: st.replied;
          st.replies <- (src, l_value, distance) :: st.replies;
          st.pending_replies <- st.pending_replies - 1;
          if st.pending_replies = 0 then decide st
        end
    | Commit { client; from_server; to_server; l_from; l_to; distance; epoch } ->
        touch ();
        observe_epoch st epoch;
        if epoch = st.epoch then begin
          st.longest.(from_server) <- l_from;
          st.longest.(to_server) <- l_to;
          if st.server_index = to_server then begin
            st.members <- (client, distance) :: st.members;
            rsend ~src:st.server_index ~dst:(k + client) Reassign
          end;
          rsend ~src:st.server_index ~dst:src (Commit_ack st.epoch)
        end
    | Commit_ack epoch ->
        touch ();
        if epoch = st.epoch && st.pending_acks > 0 && not (List.mem src st.acked)
        then begin
          st.acked <- src :: st.acked;
          st.pending_acks <- st.pending_acks - 1;
          if st.pending_acks = 0 then after_commit st
        end
    | Token { count; epoch } ->
        touch ();
        if epoch >= st.epoch then begin
          observe_epoch st epoch;
          st.token_count <- count;
          st.committed_this_possession <- false;
          st.untried <- compute_candidates st;
          work st
        end
    | Ping | Join_accept | Join_reject | Reassign -> ()
  in

  (* Candidate handling needs a small state machine of its own per
     server: probe the client, then reply with L computed from the
     measured distance. *)
  let candidate_context : (int, int * float * int * int) Hashtbl.t =
    Hashtbl.create 16
  in
  (* server index -> (holder server, l_minus, epoch, probed client). *)
  let server_handle st ~src payload =
    match payload with
    | Candidate { client; l_minus; epoch } ->
        touch ();
        observe_epoch st epoch;
        if epoch = st.epoch then begin
          Hashtbl.replace candidate_context st.server_index
            (src, l_minus, epoch, client);
          send_probe ~from:st.server_index ~target:(k + client)
        end
    | Probe_reply { t1; hold }
      when src >= k && Hashtbl.mem candidate_context st.server_index ->
        let holder, l_minus, epoch, _ =
          Hashtbl.find candidate_context st.server_index
        in
        Hashtbl.remove candidate_context st.server_index;
        let distance = probe_distance t1 hold in
        let l_value =
          if List.length st.members >= capacity then infinity
          else begin
            let trial = Array.copy st.longest in
            trial.(holder) <- l_minus;
            let worst = ref (2. *. distance) in
            for s'' = 0 to k - 1 do
              if trial.(s'') > neg_infinity then begin
                let len = distance +. inter st st.server_index s'' +. trial.(s'') in
                if len > !worst then worst := len
              end
            done;
            !worst
          end
        in
        rsend ~src:st.server_index ~dst:holder
          (Candidate_reply { l_value; distance; epoch })
    | other -> server_handle st ~src other
  in

  (* Client message handler. *)
  let rec try_join cs =
    if cs.join_attempt < Array.length cs.join_order then begin
      let target = cs.join_order.(cs.join_attempt) in
      if cs.dead.(target) then begin
        cs.join_attempt <- cs.join_attempt + 1;
        try_join cs
      end
      else
        rsend ~src:(k + cs.client_index) ~dst:target
          (Join (List.assoc target cs.measured))
    end
  in
  let build_join_order cs =
    let measured = List.sort compare (List.map fst cs.measured) in
    let order = Array.of_list measured in
    Array.sort
      (fun a b ->
        match Float.compare (List.assoc a cs.measured) (List.assoc b cs.measured) with
        | 0 -> compare a b
        | cmp -> cmp)
      order;
    cs.join_order <- order;
    cs.join_attempt <- 0;
    try_join cs
  in
  let client_handle cs ~src payload =
    match payload with
    | Probe t1 -> reply_probe ~from:(k + cs.client_index) ~target:src t1
    | Probe_reply { t1; hold } ->
        if not (List.mem_assoc src cs.measured) then begin
          cs.measured <- (src, probe_distance t1 hold) :: cs.measured;
          if cs.awaiting > 0 then begin
            cs.awaiting <- cs.awaiting - 1;
            if cs.awaiting = 0 then build_join_order cs
          end
        end
    | Join_accept -> cs.my_server <- cs.join_order.(cs.join_attempt)
    | Join_reject ->
        cs.join_attempt <- cs.join_attempt + 1;
        try_join cs
    | Reassign -> cs.my_server <- src
    | Ping | Join _ | Init_info _ | Ready | Ecc_update _ | Candidate _
    | Candidate_reply _ | Commit _ | Commit_ack _ | Token _ ->
        ()
  in

  (* Retry exhaustion: the protocol-level failure detector. *)
  let give_up ~src ~dst body =
    if src < k then begin
      let st = servers.(src) in
      if dst < k then begin
        mark_peer_dead st dst;
        match body with
        | Token { count; epoch } when epoch = st.epoch ->
            (* The token died with its recipient: route it onward. *)
            pass_token st count
        | _ -> ()
      end
      else begin
        (* An unreachable client: if we were probing it for the token
           holder, answer for it so the round completes. *)
        match Hashtbl.find_opt candidate_context src with
        | Some (holder, _, epoch, client) when k + client = dst -> (
            match body with
            | Probe _ ->
                Hashtbl.remove candidate_context src;
                rsend ~src ~dst:holder
                  (Candidate_reply { l_value = infinity; distance = infinity; epoch })
            | _ -> ())
        | _ -> ()
      end
    end
    else begin
      let cs = clients.(src - k) in
      if dst < k then begin
        cs.dead.(dst) <- true;
        match body with
        | Probe _ ->
            (* Bootstrap probe to a dead server: proceed without it. *)
            if cs.awaiting > 0 then begin
              cs.awaiting <- cs.awaiting - 1;
              if cs.awaiting = 0 then build_join_order cs
            end
        | Join _ -> try_join cs (* skips the newly dead target *)
        | Ping when cs.my_server = dst ->
            (* Our server crashed: fail over via the ordinary join rule,
               starting again from the nearest live server. *)
            incr failovers;
            cs.my_server <- -1;
            cs.join_attempt <- 0;
            try_join cs
        | _ -> ()
      end
    end
  in
  on_give_up := give_up;

  for s = 0 to k - 1 do
    Network.on_receive net s (frame_handler s (server_handle servers.(s)))
  done;
  for c = 0 to n - 1 do
    Network.on_receive net (k + c) (frame_handler (k + c) (client_handle clients.(c)))
  done;

  (* Kick-off: clients probe all servers; servers probe each other; at
     the settle time every server publishes its initial state. *)
  Engine.schedule engine 0. (fun () ->
      for c = 0 to n - 1 do
        for s = 0 to k - 1 do
          send_probe ~from:(k + c) ~target:s
        done
      done;
      for s = 0 to k - 1 do
        for s' = 0 to k - 1 do
          if s' <> s then send_probe ~from:s ~target:s'
        done
      done);
  Engine.schedule engine settle_time (fun () ->
      if not !halted then
        Array.iter
          (fun st ->
            st.longest.(st.server_index) <- my_longest st;
            st.inited <- true;
            if k = 1 then
              (* Single server: no exchange; start (and finish) directly. *)
              start_token st
            else
              broadcast_live st
                (Init_info
                   {
                     inter = Array.copy st.inter_rows.(st.server_index);
                     longest = st.longest.(st.server_index);
                   }))
          servers);

  (* Fault-mode periphery: client keepalives (crash detection for
     fail-over) and the token watchdog (regeneration when the holder
     dies, and a hard deadline so every run terminates). *)
  (match fault with
  | None -> ()
  | Some fault_state ->
      for c = 0 to n - 1 do
        let cs = clients.(c) in
        let rec ping () =
          if not !halted then begin
            if cs.my_server >= 0 && not cs.dead.(cs.my_server) then
              rsend ~src:(k + c) ~dst:cs.my_server Ping;
            Engine.schedule_after engine tuning.ping_period ping
          end
        in
        Engine.schedule engine (settle_time +. tuning.ping_period) ping
      done;
      let rec watchdog () =
        if not !halted then begin
          let now = Engine.now engine in
          if now >= tuning.deadline then begin
            stalled := true;
            finish ()
          end
          else begin
            if now -. !last_activity >= tuning.regen_timeout then begin
              if !regenerations >= tuning.max_regenerations then begin
                stalled := true;
                finish ()
              end
              else begin
                (* The token went quiet: its holder crashed (or it was
                   never started). The lowest-indexed live server mints a
                   fresh token under a new epoch; stale rounds are
                   discarded on first contact with the higher epoch. *)
                let live = ref None in
                for s = k - 1 downto 0 do
                  if
                    not (Fault.down fault_state ~now s)
                  then live := Some s
                done;
                match !live with
                | None ->
                    stalled := true;
                    finish ()
                | Some s ->
                    incr regenerations;
                    incr epoch_counter;
                    let st = servers.(s) in
                    observe_epoch st !epoch_counter;
                    last_activity := now;
                    start_token st
              end
            end;
            Engine.schedule_after engine tuning.regen_timeout watchdog
          end
        end
      in
      Engine.schedule engine (settle_time +. tuning.regen_timeout) watchdog);
  Engine.run engine;
  if not !halted then completion := Engine.now engine;

  (* Final assignment: live servers' member lists are authoritative;
     clients' own beliefs fill the gaps; anyone still attached to a
     crashed server is re-homed to its nearest live server — the same
     rule the bootstrap join uses. *)
  let down_at_end s =
    match fault with
    | None -> false
    | Some fault_state -> Fault.down fault_state ~now:!completion s
  in
  let assignment = Array.make n (-1) in
  Array.iteri
    (fun s st ->
      if not (down_at_end s) then
        List.iter (fun (c, _) -> assignment.(c) <- s) st.members)
    servers;
  Array.iteri
    (fun c s ->
      if s < 0 then begin
        let believed = clients.(c).my_server in
        if believed >= 0 && not (down_at_end believed) then
          assignment.(c) <- believed
      end)
    assignment;
  let candidates =
    let live = List.filter (fun s -> not (down_at_end s)) (List.init k Fun.id) in
    if live = [] then List.init k Fun.id else live
  in
  let loads = Array.make k 0 in
  Array.iter (fun s -> if s >= 0 then loads.(s) <- loads.(s) + 1) assignment;
  for c = 0 to n - 1 do
    if assignment.(c) < 0 || down_at_end assignment.(c) then begin
      incr failovers;
      let best = ref (-1) and best_d = ref infinity in
      let consider s =
        let d = Problem.d_cs p c s in
        if d < !best_d then begin
          best_d := d;
          best := s
        end
      in
      List.iter (fun s -> if loads.(s) < capacity then consider s) candidates;
      if !best < 0 then List.iter consider candidates;
      assignment.(c) <- !best;
      loads.(!best) <- loads.(!best) + 1
    end
  done;
  let assignment = Assignment.of_array p assignment in
  {
    assignment;
    objective = Dia_core.Objective.max_interaction_path p assignment;
    initial_objective = !initial_objective;
    modifications = !modifications;
    messages = Network.messages_sent net;
    wall_duration = !completion;
    stalled = !stalled;
    faults =
      {
        dropped = Network.messages_dropped net;
        duplicated = Network.messages_duplicated net;
        undeliverable = Network.undeliverable net;
        retransmissions = !retransmissions;
        give_ups = !give_ups;
        regenerations = !regenerations;
        failovers = !failovers;
      };
  }
