type verdict = {
  consistent : bool;
  fair : bool;
  late_executions : int;
  late_visibilities : int;
  max_interaction_time : float;
  mean_interaction_time : float;
  uniform_interaction : bool;
  empty : bool;
}

let analyze ?(eps = 1e-6) (report : Protocol.report) =
  (* Consistency: group executions by operation; all actual simulation
     times must agree. *)
  let by_op = Hashtbl.create 64 in
  List.iter
    (fun (e : Protocol.execution) ->
      Hashtbl.replace by_op e.op_id (e :: (Option.value ~default:[] (Hashtbl.find_opt by_op e.op_id))))
    report.executions;
  let consistent =
    Hashtbl.fold
      (fun _ execs acc ->
        match execs with
        | [] -> acc
        | first :: rest ->
            acc
            && List.for_all
                 (fun (e : Protocol.execution) ->
                   Float.abs (e.actual_sim -. first.Protocol.actual_sim) <= eps)
                 rest)
      by_op true
  in
  (* Fairness: per server, execution order must equal issue order and the
     lag actual_sim - issue_time must be one constant across all
     operations and servers. *)
  let issue_of = Hashtbl.create 64 in
  List.iter
    (fun (op : Workload.op) -> Hashtbl.replace issue_of op.op_id op.issue_time)
    report.operations;
  let lags =
    List.map
      (fun (e : Protocol.execution) ->
        e.Protocol.actual_sim -. Hashtbl.find issue_of e.Protocol.op_id)
      report.executions
  in
  let fair =
    match lags with
    | [] -> true
    | first :: rest -> List.for_all (fun lag -> Float.abs (lag -. first) <= eps) rest
  in
  let late_executions =
    List.length (List.filter (fun (e : Protocol.execution) -> e.late) report.executions)
  in
  let late_visibilities =
    List.length (List.filter (fun (v : Protocol.visibility) -> v.late) report.visibilities)
  in
  let times = List.map (fun (_, _, t) -> t) (Protocol.interaction_times report) in
  let max_interaction_time, mean_interaction_time, uniform_interaction, empty =
    match times with
    | [] -> (0., 0., true, true)
    | first :: _ ->
        let count = float_of_int (List.length times) in
        ( List.fold_left Float.max neg_infinity times,
          List.fold_left ( +. ) 0. times /. count,
          List.for_all (fun t -> Float.abs (t -. first) <= eps) times,
          false )
  in
  {
    consistent;
    fair;
    late_executions;
    late_visibilities;
    max_interaction_time;
    mean_interaction_time;
    uniform_interaction;
    empty;
  }

let validate_assignment ?(live = fun _ -> true) p a =
  let n = Dia_core.Problem.num_clients p in
  let k = Dia_core.Problem.num_servers p in
  if Dia_core.Assignment.num_clients a <> n then
    Error
      (Printf.sprintf "assignment covers %d clients, instance has %d"
         (Dia_core.Assignment.num_clients a) n)
  else begin
    let arr = Dia_core.Assignment.to_array a in
    let bad_range = ref None and dead = ref None in
    Array.iteri
      (fun c s ->
        if s < 0 || s >= k then
          if !bad_range = None then bad_range := Some (c, s) else ()
        else if not (live s) then
          if !dead = None then dead := Some (c, s))
      arr;
    match (!bad_range, !dead) with
    | Some (c, s), _ ->
        Error (Printf.sprintf "client %d assigned to invalid server %d" c s)
    | None, Some (c, s) ->
        Error (Printf.sprintf "client %d assigned to failed server %d" c s)
    | None, None ->
        if not (Dia_core.Assignment.respects_capacity p a) then
          Error "a server exceeds its capacity"
        else Ok ()
  end

let breach_rate (report : Protocol.report) =
  let events = List.length report.executions + List.length report.visibilities in
  if events = 0 then 0.
  else begin
    let late =
      List.length (List.filter (fun (e : Protocol.execution) -> e.late) report.executions)
      + List.length
          (List.filter (fun (v : Protocol.visibility) -> v.late) report.visibilities)
    in
    float_of_int late /. float_of_int events
  end

let replicated_states (report : Protocol.report) =
  let op_of = Hashtbl.create 64 in
  List.iter
    (fun (op : Workload.op) -> Hashtbl.replace op_of op.op_id op)
    report.operations;
  let by_server = Hashtbl.create 16 in
  List.iter
    (fun (e : Protocol.execution) ->
      let previous = Option.value ~default:[] (Hashtbl.find_opt by_server e.server) in
      Hashtbl.replace by_server e.server (e :: previous))
    report.executions;
  Hashtbl.fold
    (fun server execs acc ->
      let canonical =
        List.sort
          (fun (a : Protocol.execution) (b : Protocol.execution) ->
            match Float.compare a.actual_sim b.actual_sim with
            | 0 -> compare a.op_id b.op_id
            | order -> order)
          execs
      in
      let ops = List.map (fun (e : Protocol.execution) -> Hashtbl.find op_of e.op_id) canonical in
      (server, State.apply_all (State.initial ~clients:report.clients) ops) :: acc)
    by_server []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let state_consistent report =
  match replicated_states report with
  | [] -> true
  | (_, first) :: rest ->
      List.for_all (fun (_, state) -> State.digest state = State.digest first) rest
