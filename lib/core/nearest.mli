(** Nearest-Server Assignment (Section IV-A).

    Assigns every client to its closest server. This is the intuitive
    baseline; the paper proves it is a (tight) 3-approximation under the
    triangle inequality and shows experimentally that it is the worst of
    the four heuristics on real latency data (which violate the triangle
    inequality, so the ratio 3 does not even apply).

    Under a capacity limit each client tries its servers in increasing
    distance order until it finds one with room (Section IV-E); clients
    are processed in index order, which models their arrival order. *)

val assign : ?index:Dia_latency.Landmark.t -> Problem.t -> Assignment.t
(** Runs the capacitated variant automatically when the instance has a
    capacity. O(|C| |S|) uncapacitated, O(|C| |S| log |S|) capacitated.

    [index] — a {!Dia_latency.Landmark} index built over this problem's
    matrix with the server nodes as candidates — prunes the per-client
    scan on the uncapacitated path. The assignment is bit-identical with
    or without it (the index skips only provably losing candidates, and
    falls back to the exhaustive scan on non-metric instances); the
    capacitated path needs full distance orders and ignores it. Raises
    [Invalid_argument] if the index does not match the instance. *)

val assign_load : delay:Delay.t -> Problem.t -> Assignment.t
(** Load-aware variant: clients arrive in index order and each joins
    the feasible server minimising its marginal hop cost
    [d(c,s) + delay(load(s) + 1)] — the delay its own join inflicts —
    instead of raw distance. Capacity-respecting; ties break to the
    lowest server index. Under [Delay.Constant c] the cost order equals
    the distance order, so only capacity tie handling can differ from
    {!assign}. O(|C| |S|). *)
