(* Sort int ids by (float key, id) — a total order, so the output is
   the unique sorted permutation regardless of algorithm.

   Comparison sorts pay an unpredictable branch per comparison (a ~50%
   mispredict in merge/heap loops), which dominates their cost on this
   workload. Instead: a stable counting pass over value buckets (the
   bucket map x -> (x - min) * scale is monotone, so the scattered array
   is sorted by bucket with equal-bucket ids kept in ascending order),
   then one insertion-sort pass with the exact (key, id) comparator.
   The insertion pass makes the result exact unconditionally — the
   bucketing is purely an accelerator that leaves it nearly sorted, so
   its branches almost never fire. Uniform-ish keys give O(n) total;
   adversarially clustered keys degrade to insertion sort's O(n^2)
   but never to a wrong order.

   Float comparisons are direct [<]/[=], not [Float.compare]: keys are
   latencies, validated finite at [Matrix.set], so there is no NaN to
   order, and -0. = 0. falls through to the id tie-break. *)

let by_key ?(base = 0) (keys : float array) (a : int array) =
  let n = Array.length a in
  if n > 1 then begin
    let kmin = ref (Array.unsafe_get keys (base + Array.unsafe_get a 0)) in
    let kmax = ref !kmin in
    for i = 1 to n - 1 do
      let kv = Array.unsafe_get keys (base + Array.unsafe_get a i) in
      if kv < !kmin then kmin := kv;
      if kv > !kmax then kmax := kv
    done;
    if !kmax > !kmin then begin
      let kmin = !kmin in
      (* Strictly less than n so the top key lands in bucket n - 1
         without clamping; truncation keeps the map monotone. *)
      let scale = (float_of_int n -. 0.5) /. (!kmax -. kmin) in
      let bucket = Array.make n 0 in
      let count = Array.make (n + 1) 0 in
      for i = 0 to n - 1 do
        let kv = Array.unsafe_get keys (base + Array.unsafe_get a i) in
        let b = int_of_float ((kv -. kmin) *. scale) in
        (* Rounding at the extremes cannot escape [0, n): kv = kmin maps
           to 0 and kv = kmax to at most n - 1 by construction; clamp
           anyway so a surprise stays a misplaced element for the
           insertion pass rather than an out-of-bounds write. *)
        let b = if b < 0 then 0 else if b >= n then n - 1 else b in
        Array.unsafe_set bucket i b;
        Array.unsafe_set count (b + 1) (Array.unsafe_get count (b + 1) + 1)
      done;
      for b = 1 to n do
        Array.unsafe_set count b (Array.unsafe_get count b + Array.unsafe_get count (b - 1))
      done;
      let buf = Array.make n 0 in
      for i = 0 to n - 1 do
        let b = Array.unsafe_get bucket i in
        let pos = Array.unsafe_get count b in
        Array.unsafe_set buf pos (Array.unsafe_get a i);
        Array.unsafe_set count b (pos + 1)
      done;
      Array.blit buf 0 a 0 n;
      (* Exact fix-up: the array is sorted by bucket, so inversions only
         exist between near-equal keys inside a bucket and the scan is
         effectively linear. *)
      for i = 1 to n - 1 do
        let x = Array.unsafe_get a i in
        let kx = Array.unsafe_get keys (base + x) in
        let j = ref (i - 1) in
        let continue = ref true in
        while !continue && !j >= 0 do
          let y = Array.unsafe_get a !j in
          let ky = Array.unsafe_get keys (base + y) in
          if ky > kx || (ky = kx && y > x) then begin
            Array.unsafe_set a (!j + 1) y;
            decr j
          end
          else continue := false
        done;
        Array.unsafe_set a (!j + 1) x
      done
    end
    (* else: all keys equal; ids are untouched, and any existing order
       by id is already the sorted order when the input is ascending.
       Callers passing arbitrary id order still need the exact order,
       so fall through to a plain insertion sort on ids. *)
    else begin
      for i = 1 to n - 1 do
        let x = Array.unsafe_get a i in
        let j = ref (i - 1) in
        while !j >= 0 && Array.unsafe_get a !j > x do
          Array.unsafe_set a (!j + 1) (Array.unsafe_get a !j);
          decr j
        done;
        Array.unsafe_set a (!j + 1) x
      done
    end
  end
