(** Online client assignment under churn.

    Section VI of the paper contrasts client assignment with server
    placement: placement is a long-term decision, while "client
    assignment deals with only software connections ... it can be
    adjusted promptly to adapt to system dynamics". This module provides
    that dynamic counterpart of the offline algorithms: clients join and
    leave one at a time, each join is placed greedily to minimise the
    resulting maximum interaction-path length (the same rule an iteration
    of Greedy Assignment applies), and {!rebalance} runs
    Distributed-Greedy-style improving moves to repair accumulated
    drift.

    All operations are incremental: joins cost O(|S|²), leaves
    O(|S| + load), rebalance O(moves · |S|²  + |C|) — no full re-solve.

    {b Standby replicas.} Alongside its primary, every client carries a
    {e standby} server — the live server (other than the primary) that
    minimises the client's attach cost in the surviving configuration,
    chosen under capacity headroom: a reservation matrix counts, per
    (primary, standby) pair, the clients already pointing there, so all
    of one server's clients reserving the same standby are guaranteed to
    fit together. Standbys are maintained incrementally on join, move
    and rebalance (reservations are advisory for normal placement — they
    never block a join), and {!promote_standby} turns them into an
    O(1)-per-client failover: orphans move straight to their armed
    standby with no objective scan and no repair epoch. *)

type t
(** A mutable dynamic assignment session. *)

type client_id = int
(** Stable handle for a joined client (never reused within a session). *)

val create :
  ?capacity:int -> ?delay:Delay.t -> Dia_latency.Matrix.t -> servers:int array -> t
(** A session over the given network with servers at the given nodes and
    no clients yet. When a [delay] model is installed, every placement
    scan (join, failover re-homing, {!rebalance}) minimises the
    load-aware objective [D_load] ({!objective_load}) instead of the
    pure network [D]; without one the session is behaviourally
    identical to earlier versions.

    @raise Invalid_argument on invalid servers, non-positive capacity,
    or an invalid delay model ({!Delay.validate}). *)

val delay : t -> Delay.t option
(** The delay model the session was created with. *)

val join : t -> node:int -> client_id
(** A client at network node [node] joins; it is assigned to the
    unsaturated server that minimises the resulting objective (ties to
    the lowest server index).

    @raise Invalid_argument if [node] is out of range.
    @raise Failure if every server is saturated. *)

val leave : t -> client_id -> unit
(** The client departs; its server's eccentricity is recomputed.

    @raise Invalid_argument for unknown or already-departed ids. *)

val server_of : t -> client_id -> int
(** Current server index of a client.

    @raise Invalid_argument for unknown or departed ids. *)

val num_clients : t -> int
(** Currently connected clients. *)

val capacity : t -> int option
(** The per-server capacity the session was created with ([None] when
    uncapacitated). *)

val load : t -> int -> int
(** Number of clients currently assigned to a server.

    @raise Invalid_argument if the server index is out of range. *)

val move : t -> client_id -> int -> unit
(** Force-move a client to the given server (no-op when already there),
    updating loads, eccentricities and the move counter. Used by
    supervisors to apply an externally computed (e.g. protocol-level)
    repair plan move by move.

    @raise Invalid_argument for unknown/departed ids, out-of-range,
    failed, or saturated target servers. *)

val objective : t -> float
(** Current maximum interaction-path length ([neg_infinity] when empty).
    Maintained incrementally: events that can only raise an eccentricity
    (joins, move-ins, failover landings) fold their server's refreshed
    pairs into the cached value in O(|S|); events that lower one mark it
    dirty and the next call re-scans the pairs in O(|S|²). Either way
    the cost is independent of the number of clients, and the value is
    bit-identical to {!objective_scratch}. *)

val objective_scratch : t -> float
(** Reference recompute of {!objective} from the member table alone —
    O(|C| + |S|²), sharing no cached state. Exposed so tests can pin
    the incremental value to the from-scratch one exactly. *)

val objective_load : t -> float
(** Current load-aware objective [D_load(A)]: the maximum interaction
    path where each hop pays its server's network distance {e plus} the
    delay of that server's current load
    ({!Objective.max_interaction_path_load} of {!snapshot}).
    [neg_infinity] when empty; equal to {!objective} when the session
    has no delay model. Maintained with the same cache discipline as
    {!objective}: arrivals raise exactly one server's effective
    eccentricity (delay is monotone in load) and fold its pairs in
    O(|S|); any departure lowers effective eccentricity even when the
    plain eccentricity is unchanged, so every removal marks the cache
    dirty and the next call re-scans in O(|S|²). Bit-identical to
    {!objective_load_scratch}. *)

val objective_load_scratch : t -> float
(** Reference recompute of {!objective_load} from the member table
    alone — O(|C| + |S|²), sharing no cached state. *)

val lower_bound : t -> float
(** Super-optimal lower bound on D(A) over the {e live} servers and the
    currently occupied client nodes ([neg_infinity] when empty) — the
    dynamic counterpart of {!Lower_bound.compute} on {!snapshot}
    restricted to live servers, evaluated at node granularity: pairs are
    enumerated over occupied nodes in ascending node order (client
    multiplicity cannot change a maximum), so the value can differ from
    the client-indexed offline scan by float-association ulps, never
    more. Maintained incrementally: occupying a fresh node extends the
    cached maximum with that node's pairs, vacating one invalidates only
    when it carried the witness pair, and server failures/recoveries or
    drift trigger a lazy full recompute on the next call. Amortized
    cost under churn is O(|S|) per event. *)

val lower_bound_scratch : t -> float
(** Reference recompute of {!lower_bound} sharing no cached state —
    O(m²·|S| + m·|S|²) for m occupied nodes. The incremental value is
    bit-identical to this, which tests enforce. *)

val lower_bound_load : t -> float
(** Super-optimal lower bound on [D_load]:
    [lower_bound t +. 2 · delay(1)]. In any assignment every serving
    server hosts at least one client and delay is monotone in load, so
    the witness pair of {!lower_bound} pays at least one unit of delay
    at each end on top of its network path. Equals {!lower_bound} when
    the session has no delay model, and exactly (bit-for-bit) under
    [Delay.Constant 0.]. O(1) on top of the cached bound. *)

val lower_bound_load_scratch : t -> float
(** {!lower_bound_scratch} plus the same [2 · delay(1)] term. *)

val rebalance : ?max_moves:int -> t -> int
(** Perform up to [max_moves] (default unlimited) strictly improving
    single-client moves, Distributed-Greedy style, and return how many
    were made. Afterwards (when not cut short by [max_moves]) no single
    move can reduce the objective. [max_moves <= 0] is a guaranteed
    no-op returning [0] — the migration budget can always be exhausted
    safely. *)

val snapshot : t -> Problem.t * Assignment.t
(** Materialise the current membership as an offline instance — for
    comparing against the offline algorithms or feeding the simulator.

    @raise Invalid_argument when no clients are connected. *)

type stats = { joins : int; leaves : int; moves : int }

val stats : t -> stats

val next_id : t -> client_id
(** The id the next {!join} will receive — part of the checkpointable
    session state ({!restore} takes it back). *)

val members : t -> (client_id * int * int) list
(** Current membership as [(id, node, server)] triples, ascending by id —
    the serializable session state consumed by checkpointing. *)

val standby_of : t -> client_id -> int option
(** The client's armed standby server, if any ([None] when no feasible
    standby existed at the last (re)selection).

    @raise Invalid_argument for unknown or departed ids. *)

val standbys : t -> (client_id * int) list
(** All armed standbys as [(id, standby)] pairs, ascending by id — the
    serializable standby state consumed by checkpointing (v2). *)

val refresh_standbys : t -> int
(** Re-arm every client's standby from scratch, in ascending client-id
    order (the canonical order — restoring a checkpoint and refreshing
    reproduces the exact same map), and return how many standbys
    changed. Incremental maintenance keeps standbys {e valid} but lets
    their quality drift as eccentricities and loads evolve; callers run
    this at natural barriers (the soak runs it at checkpoint
    boundaries). *)

val standby_objective : t -> int -> float
(** The {e promised} post-failover objective of a server: D(A) of the
    hypothetical assignment in which the server is removed and each of
    its clients sits on its armed standby (clients without one are
    ignored). Exactly what {!promote_standby} realises when every orphan
    still finds its reserved slot free.

    @raise Invalid_argument if the server index is out of range. *)

val active_servers : t -> int list
(** Server indices currently accepting clients (all of them until
    {!fail_server} is used), ascending. *)

val failed_servers : t -> int list
(** Complement of {!active_servers}, ascending. *)

val drift : t -> int -> float
(** Current latency-drift factor of a server (1.0 until {!set_drift}).

    @raise Invalid_argument if the server index is out of range. *)

val set_drift : t -> server:int -> factor:float -> unit
(** Rescale every latency to and from [server]'s node by [factor]
    (replacing any previous factor for that server; links between two
    drifted server nodes carry the product of the two factors). Models
    congestion or route change at a server site. All cached
    eccentricities are rebuilt against the drifted matrix, and
    {!snapshot} materialises the drifted distances, so offline re-solves
    and lower bounds stay comparable with {!objective}. The caller's
    matrix is never mutated (copy-on-first-drift).

    @raise Invalid_argument if [server] is out of range or [factor] is
    not a positive finite number. *)

val restore :
  ?capacity:int ->
  ?delay:Delay.t ->
  ?standbys:(client_id * int) list ->
  Dia_latency.Matrix.t ->
  servers:int array ->
  members:(client_id * int * int) list ->
  next_id:int ->
  failed:int list ->
  drift:(int * float) list ->
  stats:stats ->
  t
(** Rebuild a session from checkpointed state: the exact inverse of
    reading {!members}, {!standbys}, {!failed_servers}, {!drift},
    {!stats} and the id counter. Loads, eccentricities and standby
    reservations are recomputed, so the restored session is
    behaviourally identical to the one that was saved. When [standbys]
    is omitted (a v1 checkpoint) every client restores standby-less;
    callers wanting the canonical map run {!refresh_standbys}.

    @raise Invalid_argument on out-of-range ids/nodes/servers, duplicate
    client ids, members on failed servers, ids at or above [next_id],
    capacity violations, or standbys that are unknown, duplicated,
    failed, out of range, or equal to the client's primary. *)

val fail_server : t -> int -> int
(** [fail_server t s] takes server [s] out of service: it stops accepting
    joins and every client currently on it is migrated — each to the live
    server that minimises the resulting objective (greedy, in client-id
    order). Returns the number of clients migrated.

    @raise Invalid_argument if [s] is out of range, already failed, or
    the last live server (failing it would leave the session with no
    live servers — callers must treat that as total outage instead).
    @raise Failure if the surviving capacity cannot host the orphans. *)

type degradation = {
  failed_server : int;
  migrated : int;  (** orphans re-homed by the failover *)
  stranded : (client_id * int) list;
      (** [(id, node)] of the orphans no live server had room for —
          disconnected from the session and reported here (never
          silently dropped), ascending by client id, with the network
          node so supervisors can requeue them; empty whenever {e any}
          live server still has a free slot per orphan *)
  objective_before : float;  (** D(A) just before the failure *)
  objective_after : float;  (** D(A) after greedy migration *)
  objective_resolve : float;
      (** D of a fresh Greedy re-solve on the surviving servers with the
          same clients — the from-scratch baseline *)
  factor : float;
      (** [objective_after /. objective_resolve]: how far the surviving
          incremental assignment is from a full re-solve (1.0 when empty
          or the baseline is non-positive) *)
}

val fail_server_report : t -> int -> degradation
(** {!fail_server} plus a degradation report: the surviving objective is
    compared against a fresh {!Greedy.assign} re-solve over the
    remaining servers, quantifying the cost of repairing incrementally
    instead of reassigning everyone. Unlike {!fail_server}, insufficient
    surviving capacity is not an error: the orphans that fit are
    migrated and the rest are disconnected and listed in [stranded] —
    graceful degradation for supervised runtimes. Orphan placement is
    greedy over the servers with room left after discounting co-orphans'
    standby reservations (greedy never steals a reserved slot), falling
    back to the orphan's own standby and then to the least-loaded
    feasible server, so a client is stranded only when no feasible
    server exists at all.

    @raise Invalid_argument if [s] is out of range, already failed, or
    the last live server. *)

type promotion = {
  failed_server : int;
  promoted : int;  (** orphans that landed on their armed standby *)
  fallback : int;
      (** orphans whose standby was missing or saturated, placed on the
          least-loaded feasible server instead *)
  stranded : (client_id * int) list;
      (** [(id, node)] pairs, as in {!degradation} — only when every
          live server is saturated *)
  objective_before : float;  (** D(A) just before the failure *)
  objective_after : float;  (** D(A) after promotion *)
  promised : float;
      (** {!standby_objective} of the server at the instant of failure —
          equals [objective_after] when every orphan was promoted *)
}

val promote_standby : t -> int -> promotion
(** The O(1)-per-client failover: take the server down and move each of
    its clients to its armed standby — a constant-time reassignment per
    client (no objective scan, no repair epoch). The standby reservation
    matrix guaranteed headroom when the standbys were armed, so under
    stable load every orphan finds its slot free; orphans without a
    usable standby fall back to the least-loaded feasible server, and
    only a fully saturated system strands anyone. Afterwards the touched
    clients' standbys are re-armed against the surviving servers.

    @raise Invalid_argument if [s] is out of range, already failed, or
    the last live server. *)

val recover_server : t -> int -> unit
(** Bring a failed server back into service (existing clients stay where
    they are; {!rebalance} will start using it again).

    @raise Invalid_argument if [s] is out of range or not failed. *)
