(** Online client assignment under churn.

    Section VI of the paper contrasts client assignment with server
    placement: placement is a long-term decision, while "client
    assignment deals with only software connections ... it can be
    adjusted promptly to adapt to system dynamics". This module provides
    that dynamic counterpart of the offline algorithms: clients join and
    leave one at a time, each join is placed greedily to minimise the
    resulting maximum interaction-path length (the same rule an iteration
    of Greedy Assignment applies), and {!rebalance} runs
    Distributed-Greedy-style improving moves to repair accumulated
    drift.

    All operations are incremental: joins cost O(|S|²), leaves
    O(|S| + load), rebalance O(moves · |S|²  + |C|) — no full re-solve. *)

type t
(** A mutable dynamic assignment session. *)

type client_id = int
(** Stable handle for a joined client (never reused within a session). *)

val create : ?capacity:int -> Dia_latency.Matrix.t -> servers:int array -> t
(** A session over the given network with servers at the given nodes and
    no clients yet.

    @raise Invalid_argument on invalid servers or non-positive
    capacity. *)

val join : t -> node:int -> client_id
(** A client at network node [node] joins; it is assigned to the
    unsaturated server that minimises the resulting objective (ties to
    the lowest server index).

    @raise Invalid_argument if [node] is out of range.
    @raise Failure if every server is saturated. *)

val leave : t -> client_id -> unit
(** The client departs; its server's eccentricity is recomputed.

    @raise Invalid_argument for unknown or already-departed ids. *)

val server_of : t -> client_id -> int
(** Current server index of a client.

    @raise Invalid_argument for unknown or departed ids. *)

val num_clients : t -> int
(** Currently connected clients. *)

val objective : t -> float
(** Current maximum interaction-path length ([neg_infinity] when empty).
    O(|S|²). *)

val rebalance : ?max_moves:int -> t -> int
(** Perform up to [max_moves] (default unlimited) strictly improving
    single-client moves, Distributed-Greedy style, and return how many
    were made. Afterwards (when not cut short by [max_moves]) no single
    move can reduce the objective. *)

val snapshot : t -> Problem.t * Assignment.t
(** Materialise the current membership as an offline instance — for
    comparing against the offline algorithms or feeding the simulator.

    @raise Invalid_argument when no clients are connected. *)

type stats = { joins : int; leaves : int; moves : int }

val stats : t -> stats

val active_servers : t -> int list
(** Server indices currently accepting clients (all of them until
    {!fail_server} is used), ascending. *)

val fail_server : t -> int -> int
(** [fail_server t s] takes server [s] out of service: it stops accepting
    joins and every client currently on it is migrated — each to the live
    server that minimises the resulting objective (greedy, in client-id
    order). Returns the number of clients migrated.

    @raise Invalid_argument if [s] is out of range or already failed.
    @raise Failure if the surviving capacity cannot host the orphans. *)

type degradation = {
  failed_server : int;
  migrated : int;  (** orphans re-homed by the failover *)
  objective_before : float;  (** D(A) just before the failure *)
  objective_after : float;  (** D(A) after greedy migration *)
  objective_resolve : float;
      (** D of a fresh Greedy re-solve on the surviving servers with the
          same clients — the from-scratch baseline *)
  factor : float;
      (** [objective_after /. objective_resolve]: how far the surviving
          incremental assignment is from a full re-solve (1.0 when empty
          or the baseline is non-positive) *)
}

val fail_server_report : t -> int -> degradation
(** {!fail_server} plus a degradation report: the surviving objective is
    compared against a fresh {!Greedy.assign} re-solve over the
    remaining servers, quantifying the cost of repairing incrementally
    instead of reassigning everyone.

    @raise Invalid_argument if [s] is out of range or already failed.
    @raise Failure if the surviving capacity cannot host the orphans
    (the session is left unchanged). *)

val recover_server : t -> int -> unit
(** Bring a failed server back into service (existing clients stay where
    they are; {!rebalance} will start using it again).

    @raise Invalid_argument if [s] is out of range or not failed. *)
