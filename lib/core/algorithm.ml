type t =
  | Nearest_server
  | Longest_first_batch
  | Greedy
  | Distributed_greedy
  | Single_server
  | Random_assignment

let heuristics = [ Nearest_server; Longest_first_batch; Greedy; Distributed_greedy ]

let all = heuristics @ [ Single_server; Random_assignment ]

let name = function
  | Nearest_server -> "Nearest-Server"
  | Longest_first_batch -> "Longest-First-Batch"
  | Greedy -> "Greedy"
  | Distributed_greedy -> "Distributed-Greedy"
  | Single_server -> "Single-Server"
  | Random_assignment -> "Random"

let key = function
  | Nearest_server -> "nearest"
  | Longest_first_batch -> "lfb"
  | Greedy -> "greedy"
  | Distributed_greedy -> "dgreedy"
  | Single_server -> "single"
  | Random_assignment -> "random"

let of_key = function
  | "nearest" -> Some Nearest_server
  | "lfb" -> Some Longest_first_batch
  | "greedy" -> Some Greedy
  | "dgreedy" -> Some Distributed_greedy
  | "single" -> Some Single_server
  | "random" -> Some Random_assignment
  | _ -> None

let run ?(seed = 0) algorithm p =
  match algorithm with
  | Nearest_server -> Nearest.assign p
  | Longest_first_batch -> Longest_first_batch.assign p
  | Greedy -> Greedy.assign p
  | Distributed_greedy -> Distributed_greedy.assign p
  | Single_server -> Baselines.best_single_server p
  | Random_assignment -> Baselines.random ~seed p

let run_load ?(seed = 0) ~delay algorithm p =
  match algorithm with
  | Nearest_server -> Nearest.assign_load ~delay p
  | Greedy -> Greedy.assign_load ~delay p
  | Distributed_greedy -> Distributed_greedy.assign_load ~delay p
  (* No load-aware variant: the load-blind assignment, which callers
     still score under D_load. *)
  | Longest_first_batch -> Longest_first_batch.assign p
  | Single_server -> Baselines.best_single_server p
  | Random_assignment -> Baselines.random ~seed p
