(** Exact optimal assignment by branch-and-bound.

    The client assignment problem is NP-complete (Section III), so this
    is exponential in the worst case and intended for small instances:
    validating that the heuristics are near-optimal, and ground truth in
    tests. The search assigns clients one at a time in decreasing order of
    nearest-server distance (hard clients first), tracks per-server
    eccentricities incrementally, prunes any branch whose partial
    objective already reaches the best complete one, and seeds the
    incumbent with the better of Greedy and Longest-First-Batch so pruning
    bites immediately. Respects capacities. *)

val optimal : ?node_limit:int -> Problem.t -> Assignment.t * float
(** [optimal p] is an optimal assignment and its objective value.

    [node_limit] (default [50_000_000]) bounds the number of search nodes
    explored.

    @raise Failure if the limit is exceeded — the instance is too big for
    exact search. *)

val optimal_value : ?node_limit:int -> Problem.t -> float
(** Objective value only. *)

val optimal_load :
  ?node_limit:int -> delay:Delay.t -> Problem.t -> Assignment.t * float
(** Exact minimiser of [D_load]
    ({!Objective.max_interaction_path_load}) by the same
    branch-and-bound. The partial objective is recomputed at every node
    (each placement changes its server's load, hence its effective
    eccentricity), and remains a valid pruning bound because both
    eccentricity and delay only grow as clients are added. The incumbent
    is seeded with the better of the load-aware Greedy and
    Nearest-Server answers.

    @raise Failure if [node_limit] is exceeded. *)

val optimal_load_value : ?node_limit:int -> delay:Delay.t -> Problem.t -> float
(** [D_load] objective value only. *)
