type stats = {
  modifications : int;
  examined : int;
  broadcasts : int;
  probes : int;
}

type result = {
  assignment : Assignment.t;
  initial : Assignment.t;
  trace : float array;
  stats : stats;
}

(* Clients lying on some longest interaction path: clients that realise
   their server's eccentricity, for a server on a longest server pair. *)
let longest_path_clients p assignment ecc d =
  let k = Problem.num_servers p in
  let on_longest = Array.make k false in
  for s1 = 0 to k - 1 do
    if ecc.(s1) > neg_infinity then
      for s2 = s1 to k - 1 do
        if ecc.(s2) > neg_infinity
           && ecc.(s1) +. Problem.d_ss p s1 s2 +. ecc.(s2) >= d -. 1e-9
        then begin
          on_longest.(s1) <- true;
          on_longest.(s2) <- true
        end
      done
  done;
  let candidates = ref [] in
  Array.iteri
    (fun c s ->
      if on_longest.(s) && Problem.d_cs p c s >= ecc.(s) -. 1e-9 then
        candidates := c :: !candidates)
    assignment;
  List.rev !candidates

let run ?initial p =
  let k = Problem.num_servers p in
  let capacity = match Problem.capacity p with None -> max_int | Some c -> c in
  let start =
    match initial with
    | None -> Nearest.assign p
    | Some a ->
        let a = Assignment.of_array p (Assignment.to_array a) in
        if not (Assignment.respects_capacity p a) then
          invalid_arg "Distributed_greedy.run: initial assignment violates capacity";
        a
  in
  let assignment = Assignment.to_array start in
  let load = Array.make k 0 in
  Array.iter (fun s -> load.(s) <- load.(s) + 1) assignment;
  let ecc =
    Array.init k (fun s ->
        let l = ref neg_infinity in
        Array.iteri
          (fun c s' -> if s' = s then l := Float.max !l (Problem.d_cs p c s))
          assignment;
        !l)
  in
  (* Initial exchange: every server broadcasts its inter-server distances
     and its longest client distance, and measures its own clients. *)
  let broadcasts = ref k and probes = ref (Array.length assignment) in
  let examined = ref 0 in
  let trace = ref [ Ecc.objective p ecc ] in
  let continue = ref true in
  while !continue do
    let d = List.hd !trace in
    let candidates = longest_path_clients p assignment ecc d in
    let moved = ref false in
    let rec try_candidates = function
      | [] -> ()
      | c :: rest ->
          incr examined;
          let old_s = assignment.(c) in
          (* Server old_s announces c and its eccentricity without c; the
             other servers each probe their latency to c and reply. *)
          incr broadcasts;
          probes := !probes + (k - 1);
          broadcasts := !broadcasts + (k - 1);
          let l_minus = Ecc.excluding p assignment ~server:old_s ~client:c in
          let ecc' = Array.copy ecc in
          ecc'.(old_s) <- l_minus;
          (* L(s') = longest interaction path involving c if c moved to
             s': max over servers s'' (with their clients) of
             d(c,s') + d(s',s'') + l(s''), plus c's own round trip. *)
          let best_target = ref (-1) and best_l = ref infinity in
          for s' = 0 to k - 1 do
            if s' <> old_s && load.(s') < capacity then begin
              let longest = Ecc.attach p ecc' ~client:c ~server:s' in
              if longest < !best_l then begin
                best_l := longest;
                best_target := s'
              end
            end
          done;
          if !best_target >= 0 && !best_l < d -. 1e-12 then begin
            (* Tentative move: recompute the global objective and commit
               only on strict improvement (other longest paths may keep D
               unchanged — the multiple-longest-paths case of the paper). *)
            let s' = !best_target in
            let new_ecc = Array.copy ecc' in
            new_ecc.(s') <- Float.max new_ecc.(s') (Problem.d_cs p c s');
            let d' = Ecc.objective p new_ecc in
            if d' < d -. 1e-12 then begin
              assignment.(c) <- s';
              load.(old_s) <- load.(old_s) - 1;
              load.(s') <- load.(s') + 1;
              Array.blit new_ecc 0 ecc 0 k;
              (* The new server broadcasts its updated longest distance. *)
              incr broadcasts;
              trace := d' :: !trace;
              moved := true
            end
            else try_candidates rest
          end
          else try_candidates rest
    in
    try_candidates candidates;
    if not !moved then continue := false
  done;
  {
    assignment = Assignment.unsafe_of_array assignment;
    initial = start;
    trace = Array.of_list (List.rev !trace);
    stats =
      {
        modifications = List.length !trace - 1;
        examined = !examined;
        broadcasts = !broadcasts;
        probes = !probes;
      };
  }

let assign p = (run p).assignment

(* Load-aware protocol: the same candidate-driven improvement loop on
   the D_load objective. A move changes the loads of both endpoints, so
   a target is judged by a full trial evaluation (the donor's effective
   eccentricity drops by one unit of delay, the target's rises) rather
   than the [Ecc.attach] local estimate; every committed move still
   strictly improves the objective, so the loop terminates. *)
let run_load ?initial ~delay p =
  Delay.validate delay;
  let k = Problem.num_servers p in
  let capacity = match Problem.capacity p with None -> max_int | Some c -> c in
  let start =
    match initial with
    | None -> Nearest.assign_load ~delay p
    | Some a ->
        let a = Assignment.of_array p (Assignment.to_array a) in
        if not (Assignment.respects_capacity p a) then
          invalid_arg
            "Distributed_greedy.run_load: initial assignment violates capacity";
        a
  in
  let assignment = Assignment.to_array start in
  let load = Array.make k 0 in
  Array.iter (fun s -> load.(s) <- load.(s) + 1) assignment;
  let ecc =
    Array.init k (fun s ->
        let l = ref neg_infinity in
        Array.iteri
          (fun c s' -> if s' = s then l := Float.max !l (Problem.d_cs p c s))
          assignment;
        !l)
  in
  (* Candidates: clients realising their server's eccentricity, for a
     server on a longest *effective* pair. The per-server delay term is
     shared by all of a server's clients, so the eccentricity witnesses
     are still the clients on a longest load-aware path. *)
  let eff_candidates d =
    let eff =
      Array.mapi
        (fun s e -> if e > neg_infinity then e +. Delay.eval delay load.(s) else e)
        ecc
    in
    let on_longest = Array.make k false in
    for s1 = 0 to k - 1 do
      if eff.(s1) > neg_infinity then
        for s2 = s1 to k - 1 do
          if eff.(s2) > neg_infinity
             && eff.(s1) +. Problem.d_ss p s1 s2 +. eff.(s2) >= d -. 1e-9
          then begin
            on_longest.(s1) <- true;
            on_longest.(s2) <- true
          end
        done
    done;
    (* The witness filter stays on the raw eccentricity: the delay term
       is shared by all of a server's clients. *)
    let candidates = ref [] in
    Array.iteri
      (fun c s ->
        if on_longest.(s) && Problem.d_cs p c s >= ecc.(s) -. 1e-9 then
          candidates := c :: !candidates)
      assignment;
    List.rev !candidates
  in
  let broadcasts = ref k and probes = ref (Array.length assignment) in
  let examined = ref 0 in
  let trace = ref [ Ecc.objective_load p ~delay ecc ~load ] in
  let continue = ref true in
  while !continue do
    let d = List.hd !trace in
    let candidates = eff_candidates d in
    let moved = ref false in
    let rec try_candidates = function
      | [] -> ()
      | c :: rest ->
          incr examined;
          let old_s = assignment.(c) in
          incr broadcasts;
          probes := !probes + (k - 1);
          broadcasts := !broadcasts + (k - 1);
          let l_minus = Ecc.excluding p assignment ~server:old_s ~client:c in
          let best_target = ref (-1) and best_d = ref infinity in
          let trial_ecc = Array.copy ecc in
          let trial_load = Array.copy load in
          trial_ecc.(old_s) <- l_minus;
          trial_load.(old_s) <- trial_load.(old_s) - 1;
          for s' = 0 to k - 1 do
            if s' <> old_s && load.(s') < capacity then begin
              let saved_e = trial_ecc.(s') and saved_l = trial_load.(s') in
              trial_ecc.(s') <- Float.max trial_ecc.(s') (Problem.d_cs p c s');
              trial_load.(s') <- saved_l + 1;
              let d' = Ecc.objective_load p ~delay trial_ecc ~load:trial_load in
              if d' < !best_d then begin
                best_d := d';
                best_target := s'
              end;
              trial_ecc.(s') <- saved_e;
              trial_load.(s') <- saved_l
            end
          done;
          if !best_target >= 0 && !best_d < d -. 1e-12 then begin
            let s' = !best_target in
            assignment.(c) <- s';
            load.(old_s) <- load.(old_s) - 1;
            load.(s') <- load.(s') + 1;
            ecc.(old_s) <- l_minus;
            ecc.(s') <- Float.max ecc.(s') (Problem.d_cs p c s');
            incr broadcasts;
            trace := !best_d :: !trace;
            moved := true
          end
          else try_candidates rest
    in
    try_candidates candidates;
    if not !moved then continue := false
  done;
  {
    assignment = Assignment.unsafe_of_array assignment;
    initial = start;
    trace = Array.of_list (List.rev !trace);
    stats =
      {
        modifications = List.length !trace - 1;
        examined = !examined;
        broadcasts = !broadcasts;
        probes = !probes;
      };
  }

let assign_load ~delay p = (run_load ~delay p).assignment
