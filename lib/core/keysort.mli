(** Monomorphic key-table sort for hot paths.

    [by_key ~base keys ids] sorts [ids] in place by
    [(keys.(base + id), id)] ascending — i.e. by key (numeric [<], so
    [-0.] and [0.] tie), equal keys by id. The order is total, so the
    result is the unique sorted permutation independent of the sorting
    algorithm. Keys must be NaN-free (latencies are validated finite at
    [Matrix.set]); entries of [ids] must index [keys] within bounds
    after adding [base] — reads are unchecked. Several times faster
    than [Array.sort] with an equivalent closure. *)

val by_key : ?base:int -> float array -> int array -> unit
