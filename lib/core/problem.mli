(** Client assignment problem instances.

    An instance is a complete latency matrix over network nodes, a set of
    server nodes [S], a set of client nodes [C], and an optional uniform
    per-server capacity (Section IV-E of the paper). Clients and servers
    are identified by {e indices} ([0 .. |C|-1] and [0 .. |S|-1]) into the
    instance's node arrays; all algorithm code works in index space and
    only touches node ids when reading the latency matrix. *)

type t

val make :
  ?capacity:int ->
  latency:Dia_latency.Matrix.t ->
  servers:int array ->
  clients:int array ->
  unit ->
  t
(** Build an instance. Server and client node ids must be in range for the
    matrix; servers must be distinct and non-empty (clients may coincide
    with servers or each other — the paper places a client at every node,
    including server nodes). If [capacity] is given it must satisfy
    [capacity * |S| >= |C|], otherwise no assignment exists.

    @raise Invalid_argument if any constraint is violated. *)

val all_nodes_clients :
  ?capacity:int -> Dia_latency.Matrix.t -> servers:int array -> t
(** The paper's experimental setup: a client at every node of the matrix,
    servers at the given nodes. *)

val latency : t -> Dia_latency.Matrix.t
val servers : t -> int array
(** Server node ids (do not mutate). *)

val clients : t -> int array
(** Client node ids (do not mutate). *)

val num_servers : t -> int
val num_clients : t -> int

val capacity : t -> int option
(** Per-server capacity, [None] if uncapacitated. *)

val with_capacity : t -> int option -> t
(** Same instance under a different capacity regime.

    @raise Invalid_argument if the capacity is infeasible. *)

val d_cs : t -> int -> int -> float
(** [d_cs p c s] is the latency between client index [c] and server index
    [s]. O(1), no bounds re-checking beyond the matrix's. *)

val d_ss : t -> int -> int -> float
(** [d_ss p s1 s2] is the latency between two server indices. *)

val d_cc : t -> int -> int -> float
(** [d_cc p c1 c2] is the direct latency between two client indices (not
    used by the objective, which always routes through servers, but useful
    for diagnostics). *)

val cs_table : t -> float array
(** [cs_table p] is a fresh flat client-major snapshot of the
    client-server distance block: entry [c * |S| + s] is [d_cs p c s],
    bit-identical. O(|C||S|) to build with one bounds check per client
    row; callers index it unchecked. Being a snapshot, it does not track
    later in-place mutation of the latency matrix. *)

val sc_table : t -> float array
(** [sc_table p] is the server-major transpose of {!cs_table}: entry
    [s * |C| + c] is [d_cs p c s]. Preferred when inner loops run over
    clients at a fixed server. *)

val ss_table : t -> float array
(** [ss_table p] is a fresh flat snapshot of the server-server block:
    entry [s * |S| + s'] is [d_ss p s s']. *)

val nearest_server : t -> int -> int
(** [nearest_server p c] is the server index minimising [d_cs p c], ties
    broken by lowest index. O(|S|). *)

val servers_by_distance : t -> int -> int array
(** Server indices sorted by increasing distance from client [c], ties by
    index — the order a client tries servers in the capacitated
    Nearest-Server algorithm. O(|S| log |S|). *)
