type t =
  | Constant of float
  | Linear of { base : float; coeff : float }
  | Queueing of { mu : float }

(* Finite stand-in for an infinite queueing delay: large enough to
   dominate any network distance, small enough that sums of a few of
   them stay finite — so saturated configurations remain totally
   ordered (by how far past saturation they are) instead of collapsing
   into incomparable infinities or NaNs. *)
let saturation = 1e9

let validate = function
  | Constant c ->
      if not (Float.is_finite c) || c < 0. then
        invalid_arg "Delay: Constant must be finite and >= 0"
  | Linear { base; coeff } ->
      if not (Float.is_finite base) || base < 0. then
        invalid_arg "Delay: Linear base must be finite and >= 0";
      if not (Float.is_finite coeff) || coeff < 0. then
        invalid_arg "Delay: Linear coeff must be finite and >= 0"
  | Queueing { mu } ->
      if not (Float.is_finite mu) || mu <= 0. then
        invalid_arg "Delay: Queueing mu must be finite and > 0"

let eval t load =
  if load < 0 then invalid_arg "Delay.eval: negative load";
  match t with
  | Constant c -> c
  | Linear { base; coeff } -> base +. (coeff *. float_of_int load)
  | Queueing { mu } ->
      let l = float_of_int load in
      if l < mu then
        (* 1/(mu - l) can overflow when mu - l is subnormal; the cap
           keeps the unsaturated branch at most [saturation]. *)
        Float.min (1. /. (mu -. l)) saturation
      else
        (* At or past saturation: strictly above every unsaturated
           value, and still strictly increasing in the backlog. *)
        saturation +. (l -. mu +. 1.)

let to_string = function
  | Constant c -> Printf.sprintf "constant:%.17g" c
  | Linear { base; coeff } -> Printf.sprintf "linear:%.17g,%.17g" base coeff
  | Queueing { mu } -> Printf.sprintf "mm1:%.17g" mu

let of_string s =
  let fail () =
    Error
      (Printf.sprintf
         "invalid delay spec %S (expected constant:C, linear:BASE,COEFF or mm1:MU)"
         s)
  in
  let float_arg v = match float_of_string_opt (String.trim v) with
    | Some f when Float.is_finite f -> Some f
    | _ -> None
  in
  match String.index_opt s ':' with
  | None -> fail ()
  | Some i -> (
      let kind = String.sub s 0 i in
      let arg = String.sub s (i + 1) (String.length s - i - 1) in
      match kind with
      | "constant" -> (
          match float_arg arg with
          | Some c when c >= 0. -> Ok (Constant c)
          | _ -> fail ())
      | "linear" -> (
          match String.index_opt arg ',' with
          | None -> fail ()
          | Some j -> (
              let b = String.sub arg 0 j
              and c = String.sub arg (j + 1) (String.length arg - j - 1) in
              match (float_arg b, float_arg c) with
              | Some base, Some coeff when base >= 0. && coeff >= 0. ->
                  Ok (Linear { base; coeff })
              | _ -> fail ()))
      | "mm1" -> (
          match float_arg arg with
          | Some mu when mu > 0. -> Ok (Queueing { mu })
          | _ -> fail ())
      | _ -> fail ())

let pp fmt t = Format.pp_print_string fmt (to_string t)
