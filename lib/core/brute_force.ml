exception Node_limit

let optimal ?(node_limit = 50_000_000) p =
  let n = Problem.num_clients p in
  let k = Problem.num_servers p in
  let capacity = match Problem.capacity p with None -> max_int | Some c -> c in
  (* Seed the incumbent with the best heuristic answer. *)
  let seed =
    let candidates = [ Greedy.assign p; Longest_first_batch.assign p ] in
    let score a = Objective.max_interaction_path p a in
    List.fold_left
      (fun (best_a, best_d) a ->
        let d = score a in
        if d < best_d then (a, d) else (best_a, best_d))
      (List.hd candidates, score (List.hd candidates))
      (List.tl candidates)
  in
  let best_assignment = ref (Assignment.to_array (fst seed)) in
  let best_d = ref (snd seed) in
  if n = 0 then (Assignment.unsafe_of_array [||], neg_infinity)
  else begin
    (* Hard clients (far from every server) first: their assignments
       constrain the objective most, tightening pruning early. *)
    let order = Array.init n Fun.id in
    let difficulty = Array.init n (fun c -> Problem.d_cs p c (Problem.nearest_server p c)) in
    Array.sort (fun a b -> Float.compare difficulty.(b) difficulty.(a)) order;
    let assignment = Array.make n (-1) in
    let ecc = Array.make k neg_infinity in
    let load = Array.make k 0 in
    let nodes = ref 0 in
    let partial_d () = Ecc.objective p ecc in
    let rec search i current_d =
      incr nodes;
      if !nodes > node_limit then raise Node_limit;
      if i = n then begin
        if current_d < !best_d then begin
          best_d := current_d;
          Array.iteri (fun c s -> !best_assignment.(c) <- s) assignment
        end
      end
      else begin
        let c = order.(i) in
        for s = 0 to k - 1 do
          if load.(s) < capacity then begin
            let d_cs = Problem.d_cs p c s in
            let old_ecc = ecc.(s) in
            if d_cs > old_ecc then ecc.(s) <- d_cs;
            let d' = if d_cs > old_ecc then partial_d () else current_d in
            if d' < !best_d then begin
              assignment.(c) <- s;
              load.(s) <- load.(s) + 1;
              search (i + 1) d';
              load.(s) <- load.(s) - 1;
              assignment.(c) <- -1
            end;
            ecc.(s) <- old_ecc
          end
        done
      end
    in
    (try search 0 neg_infinity
     with Node_limit ->
       failwith
         (Printf.sprintf
            "Brute_force.optimal: node limit %d exceeded (|C|=%d, |S|=%d)"
            node_limit n k));
    (Assignment.unsafe_of_array !best_assignment, !best_d)
  end

let optimal_value ?node_limit p = snd (optimal ?node_limit p)

let optimal_load ?(node_limit = 50_000_000) ~delay p =
  Delay.validate delay;
  let n = Problem.num_clients p in
  let k = Problem.num_servers p in
  let capacity = match Problem.capacity p with None -> max_int | Some c -> c in
  let seed =
    let candidates = [ Greedy.assign_load ~delay p; Nearest.assign_load ~delay p ] in
    let score a = Objective.max_interaction_path_load p ~delay a in
    List.fold_left
      (fun (best_a, best_d) a ->
        let d = score a in
        if d < best_d then (a, d) else (best_a, best_d))
      (List.hd candidates, score (List.hd candidates))
      (List.tl candidates)
  in
  let best_assignment = ref (Assignment.to_array (fst seed)) in
  let best_d = ref (snd seed) in
  if n = 0 then (Assignment.unsafe_of_array [||], neg_infinity)
  else begin
    let order = Array.init n Fun.id in
    let difficulty = Array.init n (fun c -> Problem.d_cs p c (Problem.nearest_server p c)) in
    Array.sort (fun a b -> Float.compare difficulty.(b) difficulty.(a)) order;
    let assignment = Array.make n (-1) in
    let ecc = Array.make k neg_infinity in
    let load = Array.make k 0 in
    let nodes = ref 0 in
    (* Every placement bumps its server's load — and therefore its
       effective eccentricity — so the partial objective is recomputed
       per node instead of only on eccentricity raises. Adding a client
       only ever raises eccentricity and load, and delay is monotone in
       load, so the partial D_load still lower-bounds every completion
       and pruning below stays sound. *)
    let partial_d () = Ecc.objective_load p ~delay ecc ~load in
    let rec search i current_d =
      incr nodes;
      if !nodes > node_limit then raise Node_limit;
      if i = n then begin
        if current_d < !best_d then begin
          best_d := current_d;
          Array.iteri (fun c s -> !best_assignment.(c) <- s) assignment
        end
      end
      else begin
        let c = order.(i) in
        for s = 0 to k - 1 do
          if load.(s) < capacity then begin
            let d_cs = Problem.d_cs p c s in
            let old_ecc = ecc.(s) in
            if d_cs > old_ecc then ecc.(s) <- d_cs;
            load.(s) <- load.(s) + 1;
            let d' = partial_d () in
            if d' < !best_d then begin
              assignment.(c) <- s;
              search (i + 1) d';
              assignment.(c) <- -1
            end;
            load.(s) <- load.(s) - 1;
            ecc.(s) <- old_ecc
          end
        done
      end
    in
    (try search 0 neg_infinity
     with Node_limit ->
       failwith
         (Printf.sprintf
            "Brute_force.optimal_load: node limit %d exceeded (|C|=%d, |S|=%d)"
            node_limit n k));
    (Assignment.unsafe_of_array !best_assignment, !best_d)
  end

let optimal_load_value ?node_limit ~delay p = snd (optimal_load ?node_limit ~delay p)
