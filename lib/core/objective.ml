let eccentricities p a =
  let ecc = Array.make (Problem.num_servers p) neg_infinity in
  for c = 0 to Problem.num_clients p - 1 do
    let s = Assignment.server_of a c in
    let d = Problem.d_cs p c s in
    if d > ecc.(s) then ecc.(s) <- d
  done;
  ecc

(* Eccentricities together with a witness client achieving each. *)
let eccentricities_with_witness p a =
  let k = Problem.num_servers p in
  let ecc = Array.make k neg_infinity in
  let witness = Array.make k (-1) in
  for c = 0 to Problem.num_clients p - 1 do
    let s = Assignment.server_of a c in
    let d = Problem.d_cs p c s in
    if d > ecc.(s) then begin
      ecc.(s) <- d;
      witness.(s) <- c
    end
  done;
  (ecc, witness)

let max_interaction_path p a =
  let ecc = eccentricities p a in
  let k = Problem.num_servers p in
  let best = ref neg_infinity in
  for s1 = 0 to k - 1 do
    if ecc.(s1) > neg_infinity then
      for s2 = s1 to k - 1 do
        if ecc.(s2) > neg_infinity then begin
          let len = ecc.(s1) +. Problem.d_ss p s1 s2 +. ecc.(s2) in
          if len > !best then best := len
        end
      done
  done;
  !best

(* -- Load-aware objective: each hop pays d(c,s) + delay(load s) -------- *)

(* Effective eccentricity: l(s) + delay(load s) for used servers,
   [neg_infinity] (still "unused") otherwise. The load term is constant
   over a server's clients, so D_load decomposes through [eff] exactly
   as D does through [l]. *)
let effective_eccentricities p ~delay a =
  let ecc = eccentricities p a in
  let load = Assignment.loads p a in
  for s = 0 to Array.length ecc - 1 do
    if ecc.(s) > neg_infinity then
      ecc.(s) <- ecc.(s) +. Delay.eval delay load.(s)
  done;
  ecc

let max_interaction_path_load p ~delay a =
  let eff = effective_eccentricities p ~delay a in
  let k = Problem.num_servers p in
  let best = ref neg_infinity in
  for s1 = 0 to k - 1 do
    if eff.(s1) > neg_infinity then
      for s2 = s1 to k - 1 do
        if eff.(s2) > neg_infinity then begin
          let len = eff.(s1) +. Problem.d_ss p s1 s2 +. eff.(s2) in
          if len > !best then best := len
        end
      done
  done;
  !best

let naive_max_interaction_path_load p ~delay a =
  let n = Problem.num_clients p in
  let load = Assignment.loads p a in
  let best = ref neg_infinity in
  for ci = 0 to n - 1 do
    for cj = ci to n - 1 do
      let s1 = Assignment.server_of a ci and s2 = Assignment.server_of a cj in
      (* Same left-to-right grouping AND the same pair orientation as
         the fast evaluator's [eff(s1) +. d_ss +. eff(s2)] scan (smaller
         server index on the left): float addition is monotone, so with
         matching orientation every pair is bounded by its server pair's
         eccentricity term and the witness pair achieves exact equality
         — the two evaluators agree bit for bit. *)
      let sa, ca, sb, cb =
        if s1 <= s2 then (s1, ci, s2, cj) else (s2, cj, s1, ci)
      in
      let len =
        (Problem.d_cs p ca sa +. Delay.eval delay load.(sa))
        +. Problem.d_ss p sa sb
        +. (Problem.d_cs p cb sb +. Delay.eval delay load.(sb))
      in
      if len > !best then best := len
    done
  done;
  !best

let path_length p a ci cj =
  let s1 = Assignment.server_of a ci and s2 = Assignment.server_of a cj in
  Problem.d_cs p ci s1 +. Problem.d_ss p s1 s2 +. Problem.d_cs p cj s2

let naive_max_interaction_path p a =
  let n = Problem.num_clients p in
  let best = ref neg_infinity in
  for ci = 0 to n - 1 do
    for cj = ci to n - 1 do
      let len = path_length p a ci cj in
      if len > !best then best := len
    done
  done;
  !best

let longest_pair p a =
  if Problem.num_clients p = 0 then invalid_arg "Objective.longest_pair: no clients";
  let ecc, witness = eccentricities_with_witness p a in
  let k = Problem.num_servers p in
  let best = ref neg_infinity and pair = ref (0, 0) in
  for s1 = 0 to k - 1 do
    if ecc.(s1) > neg_infinity then
      for s2 = s1 to k - 1 do
        if ecc.(s2) > neg_infinity then begin
          let len = ecc.(s1) +. Problem.d_ss p s1 s2 +. ecc.(s2) in
          if len > !best then begin
            best := len;
            pair := (witness.(s1), witness.(s2))
          end
        end
      done
  done;
  let ci, cj = !pair in
  (ci, cj, !best)

let average_interaction_path p a =
  let n = Problem.num_clients p in
  if n = 0 then nan
  else begin
    let k = Problem.num_servers p in
    let counts = Array.make k 0 in
    let sum_cs = ref 0. in
    for c = 0 to n - 1 do
      let s = Assignment.server_of a c in
      counts.(s) <- counts.(s) + 1;
      sum_cs := !sum_cs +. Problem.d_cs p c s
    done;
    let nf = float_of_int n in
    let cross = ref 0. in
    for s1 = 0 to k - 1 do
      if counts.(s1) > 0 then
        for s2 = 0 to k - 1 do
          if counts.(s2) > 0 then
            cross :=
              !cross
              +. (float_of_int counts.(s1) *. float_of_int counts.(s2)
                 *. Problem.d_ss p s1 s2)
        done
    done;
    (2. *. !sum_cs /. nf) +. (!cross /. (nf *. nf))
  end
