(** Load-dependent server delay models.

    The paper's [D(A)] charges a pure network distance per hop; under
    production load a server also charges for its queue. A delay model
    maps a server's integer load (assigned clients) to the extra delay
    that server adds to {e each} hop through it, extending the
    objective to [D_load] (see {!Objective.max_interaction_path_load}).

    Every model is {b non-negative} and {b monotone non-decreasing} in
    the load — both are load-bearing: non-negativity keeps
    [D_load >= D] pointwise (and keeps the [2·lb] landmark prune of
    {!Dynamic} sound), monotonicity makes a join a monotone raise of
    its server's effective eccentricity, so the O(k) incremental bump
    machinery carries over unchanged. *)

type t =
  | Constant of float  (** fixed per-hop delay, independent of load *)
  | Linear of { base : float; coeff : float }
      (** [base + coeff * load] — a processor-sharing style model *)
  | Queueing of { mu : float }
      (** M/M/1-style response time [1 / (mu - load)], clamped to stay
          finite and totally ordered near and past saturation: values
          are capped at {!saturation} while [load < mu], and a
          saturated server pays [saturation + (load - mu + 1)] — still
          strictly increasing in the backlog, never infinite or NaN. *)

val saturation : float
(** The finite stand-in for an unbounded queueing delay ([1e9]) —
    large enough to dominate any network distance. *)

val validate : t -> unit
(** @raise Invalid_argument unless all parameters are finite,
    [Constant]/[Linear] parameters are [>= 0] and [mu > 0]. *)

val eval : t -> int -> float
(** [eval t load] is the per-hop delay a server with [load] assigned
    clients charges. Always finite, [>= 0], and monotone non-decreasing
    in [load].

    @raise Invalid_argument on negative load. *)

val to_string : t -> string
(** Canonical spec syntax: [constant:C], [linear:BASE,COEFF] or
    [mm1:MU], with parameters printed so {!of_string} round-trips
    exactly. *)

val of_string : string -> (t, string) result
(** Parse the spec syntax ([constant:C] | [linear:BASE,COEFF] |
    [mm1:MU]); rejects non-finite or out-of-range parameters. *)

val pp : Format.formatter -> t -> unit
