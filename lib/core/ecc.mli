(** Per-server eccentricity arithmetic.

    Every algorithm in this library manipulates the objective through
    per-server eccentricities
    [l(s) = max {d(c, s) | A(c) = s}] (with [neg_infinity] for unused
    servers), exploiting that
    [D(A) = max over s1, s2 of l(s1) + d(s1, s2) + l(s2)].
    This module is the single home for that arithmetic; {!Objective},
    the search algorithms ({!Distributed_greedy}, {!Local_search},
    {!Brute_force}) and the protocol simulators all build on it. *)

val of_assignment : Problem.t -> int array -> float array
(** Eccentricity per server index for a raw assignment array. O(|C|). *)

val objective : Problem.t -> float array -> float
(** [D] from an eccentricity array: the maximum over used server pairs
    (including a server with itself) of [l(s1) + d(s1, s2) + l(s2)].
    [0.] when no server is used — the identity of the objective, so an
    empty configuration composes with downstream arithmetic instead of
    leaking [neg_infinity] (contrast {!Dynamic.objective}, whose
    [neg_infinity]-on-empty is part of its protocol and pinned).
    O(|used|²) after an O(|S|) gather. *)

val objective_load :
  Problem.t -> delay:Delay.t -> float array -> load:int array -> float
(** [D_load] from an eccentricity array plus a per-server load array:
    the maximum over used server pairs of
    [(l(s1) + delay(load s1)) + d(s1, s2) + (l(s2) + delay(load s2))],
    grouped exactly like {!Objective.max_interaction_path_load} so the
    two agree bit for bit. [0.] when no server is used, mirroring
    {!objective}. O(|used|²) after an O(|S|) gather. *)

val excluding : Problem.t -> int array -> server:int -> client:int -> float
(** Eccentricity of [server] if [client] were removed from it. O(|C|). *)

val attach : Problem.t -> float array -> client:int -> server:int -> float
(** Longest interaction path involving [client] if it were attached to
    [server], given the other assignments' eccentricities: the maximum of
    its round trip [2 d(c, s)] and [d(c, s) + d(s, s'') + l(s'')] over
    used servers [s'']. O(|S|). *)
