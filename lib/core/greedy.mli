(** Greedy Assignment (Section IV-C, pseudocode of Fig. 6).

    Starts from the empty assignment. Each iteration evaluates every
    (unassigned client [c], server [s]) pair: assigning [c] to [s] would
    also batch onto [s] every unassigned client at most as far from [s],
    giving [Δn] new assignments and increasing the maximum
    interaction-path length by [Δl]. The pair minimising the amortised
    cost [Δl / Δn] wins and its batch is committed. Repeats until all
    clients are assigned.

    As in the paper, each server keeps its clients in a list sorted by
    distance ([Ls]) with per-client indices counting unassigned
    predecessors, so [Δn] is an O(1) lookup and the index tables are
    rebuilt in O(|S| |C|) per iteration; total complexity
    O(|S||C| log |C| + m |S||C|) for [m] iterations.

    Capacitated variant (Section IV-E): only unsaturated servers are
    considered, and a candidate pair [(c, s)] is only admissible when its
    whole batch fits in [s]'s remaining capacity (equivalently, [Δn] is
    capped by remaining capacity — candidate batches never overflow, and
    the nearest unassigned client to an unsaturated server is always
    admissible, so the algorithm always progresses). *)

val assign : Problem.t -> Assignment.t
(** Runs the capacitated variant automatically when the instance has a
    capacity. *)

val assign_load : delay:Delay.t -> Problem.t -> Assignment.t
(** Load-aware variant: the same batch selection run on the [D_load]
    objective. A candidate batch additionally pays the marginal delay it
    inflicts — the target's effective eccentricity becomes
    [max(l(s), d) + delay(load s + Δn)] — while other used servers keep
    [l(s') + delay(load s')]; delay monotonicity makes the running
    maximum exact. Same amortised [Δl / Δn] cost, cross-product
    comparison and tie order as {!assign_reference}. O(|S||C|²) per
    iteration. *)

val assign_reference : Problem.t -> Assignment.t
(** Textbook implementation without the sorted-list/index bookkeeping:
    every iteration recomputes Δn by scanning all unassigned clients per
    candidate pair. Asymptotically O(|S||C|²) per iteration instead of
    O(|S||C|); produces the same assignment on tie-free data (exact
    distance ties may batch in a different order) — kept as a correctness
    oracle and as the [greedy_impl] ablation baseline. *)
