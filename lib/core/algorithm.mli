(** Registry of the client assignment algorithms.

    A single dispatch point used by the CLI, the experiment harness, and
    the benches, so every consumer names and orders the algorithms
    identically to the paper's figures. *)

type t =
  | Nearest_server
  | Longest_first_batch
  | Greedy
  | Distributed_greedy
  | Single_server  (** baseline: all clients on the best single server *)
  | Random_assignment  (** baseline: uniform random *)

val heuristics : t list
(** The paper's four algorithms, in figure order. *)

val all : t list
(** Heuristics plus baselines. *)

val name : t -> string
(** Display name matching the paper's figures (e.g.
    ["Nearest-Server"]). *)

val key : t -> string
(** Machine-friendly identifier (e.g. ["nearest"]). *)

val of_key : string -> t option

val run : ?seed:int -> t -> Problem.t -> Assignment.t
(** Execute the algorithm. [seed] (default [0]) only affects
    [Random_assignment]. Capacitated variants are selected automatically
    by the instance's capacity. *)

val run_load : ?seed:int -> delay:Delay.t -> t -> Problem.t -> Assignment.t
(** Execute the algorithm's load-aware variant under the given delay
    model: {!Nearest.assign_load}, {!Greedy.assign_load} and
    {!Distributed_greedy.assign_load} for the algorithms that have one;
    the remaining algorithms return their load-blind assignment (callers
    score it under [D_load] all the same). *)
