module Landmark = Dia_latency.Landmark

(* An index is only usable when it answers exactly the queries the
   exhaustive scan would: same matrix (physically — a drifted copy has
   different entries) and the same candidate nodes in server order, so
   index i in an answer IS server i. *)
let check_index p index =
  if Landmark.matrix index != Problem.latency p then
    invalid_arg "Nearest.assign: index built over a different matrix";
  let cands = Landmark.candidates index in
  let servers = Problem.servers p in
  if
    Array.length cands <> Array.length servers
    || not (Array.for_all2 ( = ) cands servers)
  then invalid_arg "Nearest.assign: index candidates do not match the servers"

let assign_uncapacitated ?index p =
  match index with
  | None ->
      Assignment.unsafe_of_array
        (Array.init (Problem.num_clients p) (fun c -> Problem.nearest_server p c))
  | Some index ->
      check_index p index;
      let clients = Problem.clients p in
      (* Landmark.nearest runs the same strict-< ascending scan as
         [Problem.nearest_server] (pruned candidates provably cannot
         win), so the assignment is identical — index or not. *)
      Assignment.unsafe_of_array
        (Array.init (Problem.num_clients p) (fun c ->
             fst (Landmark.nearest index ~query:clients.(c))))

let assign_capacitated p cap =
  let load = Array.make (Problem.num_servers p) 0 in
  let pick c =
    let order = Problem.servers_by_distance p c in
    let rec try_servers i =
      if i >= Array.length order then
        (* make/with_capacity guarantee cap * |S| >= |C|, so a free server
           always exists. *)
        assert false
      else begin
        let s = order.(i) in
        if load.(s) < cap then begin
          load.(s) <- load.(s) + 1;
          s
        end
        else try_servers (i + 1)
      end
    in
    try_servers 0
  in
  Assignment.unsafe_of_array (Array.init (Problem.num_clients p) pick)

let assign ?index p =
  match Problem.capacity p with
  | None -> assign_uncapacitated ?index p
  | Some cap -> assign_capacitated p cap

(* Load-aware nearest: clients arrive in index order and each picks the
   server minimising its own marginal hop cost d(c,s) + delay(load+1) —
   the delay the join itself inflicts — rather than raw distance.
   Strict < on an ascending scan keeps ties at the lowest index. *)
let assign_load ~delay p =
  Delay.validate delay;
  let k = Problem.num_servers p in
  let cap = match Problem.capacity p with None -> max_int | Some c -> c in
  let load = Array.make k 0 in
  let pick c =
    let best = ref (-1) and best_cost = ref infinity in
    for s = 0 to k - 1 do
      if load.(s) < cap then begin
        let cost = Problem.d_cs p c s +. Delay.eval delay (load.(s) + 1) in
        if cost < !best_cost then begin
          best_cost := cost;
          best := s
        end
      end
    done;
    (* make/with_capacity guarantee cap * |S| >= |C|, so a feasible
       server always exists. *)
    assert (!best >= 0);
    load.(!best) <- load.(!best) + 1;
    !best
  in
  Assignment.unsafe_of_array (Array.init (Problem.num_clients p) pick)
