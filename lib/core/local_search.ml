(* Both searches work on a mutable view: the assignment array, per-server
   loads, and per-server eccentricities, with the objective evaluated
   from eccentricities in O(|S|^2). *)

type view = {
  p : Problem.t;
  assignment : int array;
  load : int array;
  ecc : float array;
  capacity : int;
}

let view_of p a =
  let k = Problem.num_servers p in
  let assignment = Assignment.to_array a in
  let load = Array.make k 0 in
  let ecc = Array.make k neg_infinity in
  Array.iteri
    (fun c s ->
      load.(s) <- load.(s) + 1;
      ecc.(s) <- Float.max ecc.(s) (Problem.d_cs p c s))
    assignment;
  {
    p;
    assignment;
    load;
    ecc;
    capacity = (match Problem.capacity p with None -> max_int | Some c -> c);
  }

(* Objective after moving client c to server s (without committing). *)
let objective_after v c s =
  let old_s = v.assignment.(c) in
  if s = old_s then Ecc.objective v.p v.ecc
  else begin
    let trial = Array.copy v.ecc in
    trial.(old_s) <- Ecc.excluding v.p v.assignment ~server:old_s ~client:c;
    trial.(s) <- Float.max trial.(s) (Problem.d_cs v.p c s);
    Ecc.objective v.p trial
  end

let commit v c s =
  let old_s = v.assignment.(c) in
  v.assignment.(c) <- s;
  v.load.(old_s) <- v.load.(old_s) - 1;
  v.load.(s) <- v.load.(s) + 1;
  v.ecc.(old_s) <- Ecc.excluding v.p v.assignment ~server:old_s ~client:c;
  v.ecc.(s) <- Float.max v.ecc.(s) (Problem.d_cs v.p c s)

let hill_climb ?(max_rounds = max_int) p a =
  let v = view_of p a in
  let n = Problem.num_clients p and k = Problem.num_servers p in
  let rounds = ref 0 in
  let improved = ref true in
  while !improved && !rounds < max_rounds do
    improved := false;
    let d = Ecc.objective p v.ecc in
    let best_c = ref (-1) and best_s = ref (-1) and best_d = ref d in
    for c = 0 to n - 1 do
      let old_s = v.assignment.(c) in
      let trial_old = Ecc.excluding v.p v.assignment ~server:old_s ~client:c in
      let trial = Array.copy v.ecc in
      trial.(old_s) <- trial_old;
      let d_rest = Ecc.objective p trial in
      for s = 0 to k - 1 do
        if s <> old_s && v.load.(s) < v.capacity then begin
          let resulting = Float.max d_rest (Ecc.attach p trial ~client:c ~server:s) in
          if resulting < !best_d -. 1e-12 then begin
            best_d := resulting;
            best_c := c;
            best_s := s
          end
        end
      done
    done;
    if !best_c >= 0 then begin
      commit v !best_c !best_s;
      incr rounds;
      improved := true
    end
  done;
  let final = Assignment.unsafe_of_array (Array.copy v.assignment) in
  (final, Ecc.objective p v.ecc)

type annealing_params = {
  initial_temperature : float;
  cooling : float;
  steps : int;
}

let default_annealing = { initial_temperature = 50.; cooling = 0.999; steps = 20_000 }

let anneal ?(params = default_annealing) ?(seed = 0) p a =
  if params.initial_temperature <= 0. then
    invalid_arg "Local_search.anneal: temperature must be positive";
  if params.cooling <= 0. || params.cooling >= 1. then
    invalid_arg "Local_search.anneal: cooling must be in (0, 1)";
  if params.steps < 0 then invalid_arg "Local_search.anneal: negative steps";
  let v = view_of p a in
  let n = Problem.num_clients p and k = Problem.num_servers p in
  let rng = Random.State.make [| seed |] in
  let current = ref (Ecc.objective p v.ecc) in
  let best = ref !current in
  let best_assignment = ref (Array.copy v.assignment) in
  let temperature = ref params.initial_temperature in
  if n > 0 && k > 1 then
    for _ = 1 to params.steps do
      let c = Random.State.int rng n in
      let s = Random.State.int rng k in
      if s <> v.assignment.(c) && v.load.(s) < v.capacity then begin
        let proposed = objective_after v c s in
        let delta = proposed -. !current in
        let accept =
          delta <= 0.
          || Random.State.float rng 1. < exp (-.delta /. !temperature)
        in
        if accept then begin
          commit v c s;
          current := proposed;
          if proposed < !best then begin
            best := proposed;
            best_assignment := Array.copy v.assignment
          end
        end
      end;
      temperature := !temperature *. params.cooling
    done;
  (* Polish the best-ever state with hill climbing. *)
  hill_climb p (Assignment.unsafe_of_array !best_assignment)

let anneal_restarts ?pool ?(params = default_annealing) ?(restarts = 4) p a =
  if restarts < 1 then invalid_arg "Local_search.anneal_restarts: restarts must be >= 1";
  let run seed = anneal ~params ~seed p a in
  let results =
    match pool with
    | None -> Array.init restarts run
    | Some pool -> Dia_parallel.Pool.run_seeds pool ~seeds:restarts run
  in
  (* Lowest objective wins; ties go to the lowest seed, so the choice is
     independent of scheduling. *)
  let best = ref results.(0) in
  for seed = 1 to restarts - 1 do
    if snd results.(seed) < snd !best then best := results.(seed)
  done;
  !best
