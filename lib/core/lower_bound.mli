(** The super-optimal lower bound on the maximum interaction-path length.

    Section V of the paper normalises every algorithm against
    [LB = max over client pairs (c, c') of
         min over server pairs (s, s') of d(c,s) + d(s,s') + d(s',c')].
    Each client pair may pick its own best server pair, so the bound is
    generally unachievable by any single assignment ("super-optimum"), but
    [LB <= D(A)] for every assignment [A]. *)

val compute : ?pool:Dia_parallel.Pool.t -> Problem.t -> float
(** The lower bound. [neg_infinity] for instances with no clients.
    Runs in O(|C| |S|² + |C|² |S|) with an O(1)-per-pair pruning test
    that skips most inner scans on Internet-like data.

    With [pool], both the reach-cost table and the client-pair scan fan
    out over the pool's domains, one contiguous block of client rows per
    chunk; the result is bit-identical to the sequential scan for any
    pool size (pruning never changes the max, and per-chunk bests are
    combined with exact [Float.max] in chunk order). *)

val naive : Problem.t -> float
(** Direct four-way loop, O(|C|² |S|²) — correctness oracle for tests and
    the ablation bench. *)

val normalized : ?pool:Dia_parallel.Pool.t -> Problem.t -> Assignment.t -> float
(** [normalized p a] is [D(A) / LB], the paper's "normalized
    interactivity" (1.0 is ideal). [nan] when the bound is zero or the
    instance has no clients. *)
