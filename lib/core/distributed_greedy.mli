(** Distributed-Greedy Assignment (Section IV-D).

    Starts from Nearest-Server Assignment and repeatedly reassigns a
    client involved in a longest interaction path to the server that
    minimises the resulting maximum path length involving that client,
    committing a move only when it strictly reduces the global objective
    [D]. Terminates when no client on any longest path can improve [D]
    (moves are examined one at a time, modelling the paper's concurrency
    control that serialises modifications).

    Although conceptually a protocol run by the servers themselves, the
    computation here is sequential; {!stats} reports the communication the
    protocol would have used (broadcasts, per-server probe measurements),
    and {!trace} records [D] after every committed modification — the data
    behind the paper's Fig. 9. The simulated message-level version of the
    protocol lives in [Dia_sim.Dgreedy_protocol].

    Capacitated variant (Section IV-E): clients may only move to
    unsaturated servers and the initial assignment is the capacitated
    Nearest-Server Assignment. *)

type stats = {
  modifications : int;  (** committed reassignments *)
  examined : int;  (** candidate clients examined (incl. rejected) *)
  broadcasts : int;
      (** server-to-all-servers messages: initial distance/eccentricity
          exchange, per-candidate announcements, post-move updates *)
  probes : int;
      (** client-to-server latency measurements performed on demand *)
}

type result = {
  assignment : Assignment.t;
  initial : Assignment.t;  (** the Nearest-Server starting point *)
  trace : float array;
      (** [trace.(0)] is the initial [D]; [trace.(i)] the objective after
          the [i]-th committed modification — strictly decreasing *)
  stats : stats;
}

val run : ?initial:Assignment.t -> Problem.t -> result
(** Run to convergence. [initial] overrides the Nearest-Server starting
    point (it must respect the instance's capacity).

    @raise Invalid_argument if [initial] is invalid or violates
    capacity. *)

val assign : Problem.t -> Assignment.t
(** [run] and keep only the final assignment. *)

val run_load : ?initial:Assignment.t -> delay:Delay.t -> Problem.t -> result
(** Load-aware protocol: the same candidate-driven improvement loop run
    on the [D_load] objective (each hop pays its server's
    load-dependent delay — see {!Objective.max_interaction_path_load}).
    A move changes the loads of both endpoint servers, so targets are
    judged by a full trial evaluation instead of the local
    {!Ecc.attach} estimate; every committed move still strictly
    improves [D_load], so the protocol terminates. Starts from
    {!Nearest.assign_load} unless [initial] is given; the trace records
    [D_load] after every committed modification.

    @raise Invalid_argument if [initial] is invalid or violates
    capacity. *)

val assign_load : delay:Delay.t -> Problem.t -> Assignment.t
(** [run_load] and keep only the final assignment. *)
