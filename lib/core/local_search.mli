(** Local-search solvers: steepest-descent hill climbing and simulated
    annealing.

    The paper bounds its heuristics against an unachievable lower bound
    because exact optimisation is intractable (Theorem 1). On mid-sized
    instances, local search gives a complementary {e achievable}
    reference point: hill climbing certifies local optimality of a
    solution, and annealing escapes the local optima that trap the
    constructive heuristics. Both respect capacities and are
    deterministic for a fixed seed. Neither is part of the paper's
    algorithm suite — they are the "how far from achievable optimum are
    we really" instrument used in EXPERIMENTS.md. *)

val hill_climb :
  ?max_rounds:int -> Problem.t -> Assignment.t -> Assignment.t * float
(** Steepest descent from a starting assignment: repeatedly apply the
    single client move that most reduces the maximum interaction-path
    length, until no move improves (or [max_rounds] moves were made,
    default unlimited). Returns the final assignment and objective.
    O(|C| |S|²) per round. *)

type annealing_params = {
  initial_temperature : float;  (** in objective units (ms) *)
  cooling : float;  (** geometric factor per step, in (0, 1) *)
  steps : int;  (** total proposed moves *)
}

val default_annealing : annealing_params

val anneal :
  ?params:annealing_params ->
  ?seed:int ->
  Problem.t ->
  Assignment.t ->
  Assignment.t * float
(** Simulated annealing from a starting assignment with single-client
    move proposals (uniform client, uniform unsaturated server),
    Metropolis acceptance on the objective, geometric cooling, and a
    final hill-climb polish. Tracks the best-ever assignment and returns
    it. Deterministic per [seed] (default 0).

    @raise Invalid_argument on invalid parameters. *)

val anneal_restarts :
  ?pool:Dia_parallel.Pool.t ->
  ?params:annealing_params ->
  ?restarts:int ->
  Problem.t ->
  Assignment.t ->
  Assignment.t * float
(** [anneal_restarts p a] runs {!anneal} from [a] under seeds
    [0 .. restarts - 1] (default 4) and returns the best result (lowest
    objective, ties to the lowest seed). With [pool], restarts run on
    the pool's domains; each restart derives its own [Random.State] from
    its seed, so the result is identical for any pool size.

    @raise Invalid_argument if [restarts < 1]. *)
