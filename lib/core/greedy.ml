(* Direct implementation of the paper's Fig. 6, with one strengthening:
   line 11's max over assigned clients b of d(s, sA(b)) + d(sA(b), b) is
   computed from per-server eccentricities (O(|S|) instead of O(|C|)).

   Tie-breaking on the cost Δl/Δn: costs are compared as cross-products
   (Δl1 * Δn2 vs Δl2 * Δn1) to avoid float division, with ties broken by
   larger Δn (bigger batch for the same amortised cost), then by server
   and client index for determinism. *)

type candidate = { cost_num : float; cost_den : int; len : float; c : int; s : int }

let better a b =
  let cross = Float.compare (a.cost_num *. float_of_int b.cost_den)
      (b.cost_num *. float_of_int a.cost_den) in
  if cross <> 0 then cross < 0
  else if a.cost_den <> b.cost_den then a.cost_den > b.cost_den
  else (a.s, a.c) < (b.s, b.c)

let assign p =
  let n = Problem.num_clients p in
  let k = Problem.num_servers p in
  let capacity = match Problem.capacity p with None -> max_int | Some c -> c in
  let result = Array.make n (-1) in
  if n > 0 then begin
    (* Flat server-major snapshot: dsc.(s * n + c) = d_cs p c s. Every
       inner loop below runs over clients at a fixed server, so this
       layout keeps the hot reads contiguous and unchecked; the values
       are the exact doubles [Problem.d_cs] returns, so the assignment
       is bit-identical to the boxed implementation. *)
    let dsc = Problem.sc_table p in
    let dss = Problem.ss_table p in
    (* unass.(s): the unassigned clients in Ls order (distance to s
       ascending, ties by client index), compacted after every commit.
       The paper's index[s, c] — the Δn of candidate (s, c) — is then
       just c's position + 1, and both the candidate scan and the batch
       commit walk only live entries instead of rescanning all n. The
       selection itself is unchanged: [better] is a strict total order
       (ties fully broken by (s, c)), so the best candidate does not
       depend on enumeration order and the result stays bit-identical to
       the original full rescan. *)
    let unass =
      Array.init k (fun s ->
          let order = Array.init n Fun.id in
          Keysort.by_key ~base:(s * n) dsc order;
          order)
    in
    let ulen = Array.make k n in
    let ecc = Array.make k neg_infinity in
    let load = Array.make k 0 in
    let max_len = ref 0. in
    let remaining = ref n in
    (* Best candidate so far, kept in scalars: the inner loop allocates
       nothing. best_c < 0 means none yet. *)
    let best_num = ref 0. and best_den = ref 0 and best_len = ref 0. in
    let best_c = ref (-1) and best_s = ref (-1) in
    while !remaining > 0 do
      best_c := -1;
      for s = 0 to k - 1 do
        if load.(s) < capacity then begin
          (* m = max over assigned clients b of d(s, sA(b)) + d(sA(b), b);
             neg_infinity while nothing is assigned, in which case only
             the 2 d(c, s) term matters. *)
          let m = ref neg_infinity in
          let sbase = s * k in
          for s' = 0 to k - 1 do
            if ecc.(s') > neg_infinity then begin
              let reach = Array.unsafe_get dss (sbase + s') +. ecc.(s') in
              if reach > !m then m := reach
            end
          done;
          let m = !m in
          let cur_max = !max_len in
          let room = capacity - load.(s) in
          let base = s * n in
          let live = unass.(s) in
          (* Δn = i + 1 grows along the walk, so the capacity filter
             (Δn <= room) becomes a stopping bound. *)
          let stop = if room < ulen.(s) then room else ulen.(s) in
          for i = 0 to stop - 1 do
            let c = Array.unsafe_get live i in
            let d = Array.unsafe_get dsc (base + c) in
            (* max (2d) (d + m) (cur_max): d is finite non-negative and
               m is finite or neg_infinity, so plain comparisons agree
               with Float.max — no NaN, no signed-zero split. *)
            let a = 2. *. d and b = d +. m in
            let hi = if a >= b then a else b in
            let len = if hi >= cur_max then hi else cur_max in
            let num = len -. cur_max in
            let den = i + 1 in
            let take =
              !best_c < 0
              ||
              let cross =
                Float.compare
                  (num *. float_of_int !best_den)
                  (!best_num *. float_of_int den)
              in
              if cross <> 0 then cross < 0
              else if den <> !best_den then den > !best_den
              else s < !best_s || (s = !best_s && c < !best_c)
            in
            if take then begin
              best_num := num;
              best_den := den;
              best_len := len;
              best_c := c;
              best_s := s
            end
          done
        end
      done;
      (* Unreachable: an unsaturated server always admits its nearest
         unassigned client (Δn = 1) and total capacity covers |C|. *)
      assert (!best_c >= 0);
      (* Commit exactly Δn clients: the first Δn entries of the winning
         server's live list — the unassigned clients closest to s*, the
         last of which is c* (or ties with it). *)
      let s_star = !best_s in
      let live = unass.(s_star) in
      let sbase = s_star * n in
      for i = 0 to !best_den - 1 do
        let c = Array.unsafe_get live i in
        result.(c) <- s_star;
        let d = Array.unsafe_get dsc (sbase + c) in
        if d > ecc.(s_star) then ecc.(s_star) <- d
      done;
      load.(s_star) <- load.(s_star) + !best_den;
      remaining := !remaining - !best_den;
      max_len := !best_len;
      (* Compact every live list past the commit. *)
      for s = 0 to k - 1 do
        let live = unass.(s) in
        let w = ref 0 in
        for i = 0 to ulen.(s) - 1 do
          let c = Array.unsafe_get live i in
          if Array.unsafe_get result c < 0 then begin
            Array.unsafe_set live !w c;
            incr w
          end
        done;
        ulen.(s) <- !w
      done
    done
  end;
  Assignment.unsafe_of_array result

(* Load-aware greedy: the same batch selection on the D_load objective.
   A candidate batch (s, Δn closest unassigned clients, farthest c)
   raises s's effective eccentricity to
   [max(ecc s, d) + delay(load s + Δn)] — the batch pays the marginal
   delay it inflicts on everything routed through s — while every other
   used server keeps [ecc s' + delay(load s')]. Because delay is
   monotone in load, stale s-pairs in the running maximum are dominated
   by the new terms, so
   [len = max(cur_max, 2·new_eff, new_eff + m')] is exactly the
   resulting D_load. Candidate comparison (cross-product Δl/Δn, ties by
   larger Δn then (s, c)) is unchanged from [assign_reference]. *)
let assign_load ~delay p =
  Delay.validate delay;
  let n = Problem.num_clients p in
  let k = Problem.num_servers p in
  let capacity = match Problem.capacity p with None -> max_int | Some c -> c in
  let result = Array.make n (-1) in
  let ecc = Array.make k neg_infinity in
  let load = Array.make k 0 in
  let max_len = ref 0. in
  let remaining = ref n in
  (* Unassigned clients closest to [s] first, ties by client index —
     the reference's Ls order. A candidate batch is a {e prefix} of this
     order (like [assign]'s live lists), so Δn = 1 is always feasible on
     an unsaturated server even under massive distance ties. *)
  let sorted_unassigned s =
    let live = ref [] in
    for c = n - 1 downto 0 do
      if result.(c) < 0 then live := c :: !live
    done;
    let live = Array.of_list !live in
    Array.sort
      (fun a b ->
        match Float.compare (Problem.d_cs p a s) (Problem.d_cs p b s) with
        | 0 -> compare a b
        | cmp -> cmp)
      live;
    live
  in
  while !remaining > 0 do
    let best = ref None in
    for s = 0 to k - 1 do
      if load.(s) < capacity then begin
        (* m' over used servers other than s: their load is unchanged by
           this batch, so their effective eccentricity stands. *)
        let m = ref neg_infinity in
        for s' = 0 to k - 1 do
          if s' <> s && ecc.(s') > neg_infinity then
            m :=
              Float.max !m
                (Problem.d_ss p s s' +. (ecc.(s') +. Delay.eval delay load.(s')))
        done;
        let live = sorted_unassigned s in
        let room = capacity - load.(s) in
        let stop = min room (Array.length live) in
        for i = 0 to stop - 1 do
          let c = live.(i) in
          let delta_n = i + 1 in
          let d = Problem.d_cs p c s in
          let new_eff =
            Float.max ecc.(s) d +. Delay.eval delay (load.(s) + delta_n)
          in
          let len =
            Float.max (2. *. new_eff) (Float.max (new_eff +. !m) !max_len)
          in
          let cand =
            { cost_num = len -. !max_len; cost_den = delta_n; len; c; s }
          in
          match !best with
          | Some b when not (better cand b) -> ()
          | _ -> best := Some cand
        done
      end
    done;
    let chosen = match !best with Some cand -> cand | None -> assert false in
    let live = sorted_unassigned chosen.s in
    for i = 0 to chosen.cost_den - 1 do
      let c = live.(i) in
      result.(c) <- chosen.s;
      load.(chosen.s) <- load.(chosen.s) + 1;
      decr remaining;
      ecc.(chosen.s) <- Float.max ecc.(chosen.s) (Problem.d_cs p c chosen.s)
    done;
    max_len := chosen.len
  done;
  Assignment.unsafe_of_array result

let assign_reference p =
  let n = Problem.num_clients p in
  let k = Problem.num_servers p in
  let capacity = match Problem.capacity p with None -> max_int | Some c -> c in
  let result = Array.make n (-1) in
  let ecc = Array.make k neg_infinity in
  let load = Array.make k 0 in
  let max_len = ref 0. in
  let remaining = ref n in
  (* Δn by direct scan: unassigned clients no farther from s than c. *)
  let batch_size s c =
    let d = Problem.d_cs p c s in
    let count = ref 0 in
    for c' = 0 to n - 1 do
      if result.(c') < 0 && Problem.d_cs p c' s <= d then incr count
    done;
    !count
  in
  while !remaining > 0 do
    let best = ref None in
    for s = 0 to k - 1 do
      if load.(s) < capacity then begin
        let m = ref neg_infinity in
        for s' = 0 to k - 1 do
          if ecc.(s') > neg_infinity then
            m := Float.max !m (Problem.d_ss p s s' +. ecc.(s'))
        done;
        let room = capacity - load.(s) in
        for c = 0 to n - 1 do
          if result.(c) < 0 then begin
            let delta_n = batch_size s c in
            if delta_n <= room then begin
              let d = Problem.d_cs p c s in
              let len = Float.max (2. *. d) (Float.max (d +. !m) !max_len) in
              let cand =
                { cost_num = len -. !max_len; cost_den = delta_n; len; c; s }
              in
              match !best with
              | Some b when not (better cand b) -> ()
              | _ -> best := Some cand
            end
          end
        done
      end
    done;
    let chosen = match !best with Some cand -> cand | None -> assert false in
    let radius = Problem.d_cs p chosen.c chosen.s in
    (* Commit the batch: the Δn closest unassigned clients (walk by
       distance, ties by client index, mirroring the sorted-list walk). *)
    let members =
      List.init n Fun.id
      |> List.filter (fun c -> result.(c) < 0 && Problem.d_cs p c chosen.s <= radius)
      |> List.sort (fun a b ->
             match
               Float.compare (Problem.d_cs p a chosen.s) (Problem.d_cs p b chosen.s)
             with
             | 0 -> compare a b
             | cmp -> cmp)
      |> List.filteri (fun i _ -> i < chosen.cost_den)
    in
    List.iter
      (fun c ->
        result.(c) <- chosen.s;
        load.(chosen.s) <- load.(chosen.s) + 1;
        decr remaining;
        ecc.(chosen.s) <- Float.max ecc.(chosen.s) (Problem.d_cs p c chosen.s))
      members;
    max_len := chosen.len
  done;
  Assignment.unsafe_of_array result
