(** The interactivity objective: maximum interaction-path length.

    The interaction path between clients [ci] and [cj] under assignment
    [A] is [d(ci, sA(ci)) + d(sA(ci), sA(cj)) + d(sA(cj), cj)] (Section
    II-A). Its maximum over all client pairs, [D(A)], equals the minimum
    achievable interaction time of the DIA under consistency and fairness
    (Section II-C), and is what every algorithm minimises.

    The fast evaluator exploits that the path length decomposes through
    per-server eccentricities: with
    [l(s) = max {d(c, s) | A(c) = s}],
    [D(A) = max over used servers s1, s2 of l(s1) + d(s1, s2) + l(s2)]
    (the [s1 = s2] case covers client pairs sharing a server and a
    client's round trip to itself), costing O(|C| + |S|²) instead of the
    naive O(|C|²). *)

val eccentricities : Problem.t -> Assignment.t -> float array
(** Per-server eccentricity [l(s)]; [neg_infinity] for servers with no
    assigned clients. O(|C| + |S|). *)

val max_interaction_path : Problem.t -> Assignment.t -> float
(** [D(A)], the maximum interaction-path length over all client pairs —
    including a client paired with itself (round trip). [neg_infinity]
    for instances with no clients. O(|C| + |S|²). *)

val naive_max_interaction_path : Problem.t -> Assignment.t -> float
(** Direct O(|C|²) evaluation of the same quantity, kept as a correctness
    oracle and as the ablation baseline for the [objective] bench. *)

val effective_eccentricities :
  Problem.t -> delay:Delay.t -> Assignment.t -> float array
(** Per-server {e effective} eccentricity [l(s) + delay(load s)];
    [neg_infinity] for servers with no assigned clients. The load term
    is constant over a server's clients, so [D_load] decomposes through
    this array exactly as [D] does through {!eccentricities}. *)

val max_interaction_path_load :
  Problem.t -> delay:Delay.t -> Assignment.t -> float
(** [D_load(A)]: the maximum over client pairs of the interaction path
    where each hop additionally pays the server's load-dependent delay —
    [d(ci,s1) + delay(load s1) + d(s1,s2) + delay(load s2) + d(cj,s2)].
    Because every delay is [>= 0], [D_load(A) >= D(A)] pointwise, with
    bit-exact equality under [Delay.Constant 0.]. [neg_infinity] for
    instances with no clients. O(|C| + |S|²). *)

val naive_max_interaction_path_load :
  Problem.t -> delay:Delay.t -> Assignment.t -> float
(** Direct O(|C|²) evaluation of [D_load(A)] — the correctness oracle
    for the decomposed evaluator (bit-identical: both group each pair
    as [(d1 + delay1) + d_ss + (d2 + delay2)]). *)

val path_length : Problem.t -> Assignment.t -> int -> int -> float
(** Interaction-path length between two client indices (equal indices give
    the round-trip [2 d(c, sA(c))]). *)

val longest_pair : Problem.t -> Assignment.t -> int * int * float
(** Some client pair achieving [D(A)] (as [ci, cj, length]); [ci] may
    equal [cj].

    @raise Invalid_argument if the instance has no clients. *)

val average_interaction_path : Problem.t -> Assignment.t -> float
(** Mean interaction-path length over ordered client pairs including
    self-pairs — a secondary statistic used in reports. O(|C| + |S|²)
    via per-server totals. *)
