module Matrix = Dia_latency.Matrix

type t = {
  latency : Matrix.t;
  servers : int array;
  clients : int array;
  capacity : int option;
}

let check_capacity ~num_servers ~num_clients = function
  | None -> ()
  | Some cap ->
      if cap <= 0 then invalid_arg "Problem: capacity must be positive";
      if cap * num_servers < num_clients then
        invalid_arg
          (Printf.sprintf
             "Problem: capacity %d x %d servers cannot host %d clients" cap
             num_servers num_clients)

let make ?capacity ~latency ~servers ~clients () =
  let n = Matrix.dim latency in
  let check_node label id =
    if id < 0 || id >= n then
      invalid_arg (Printf.sprintf "Problem: %s node %d out of bounds [0, %d)" label id n)
  in
  Array.iter (check_node "server") servers;
  Array.iter (check_node "client") clients;
  if Array.length servers = 0 then invalid_arg "Problem: no servers";
  let seen = Hashtbl.create (Array.length servers) in
  Array.iter
    (fun s ->
      if Hashtbl.mem seen s then
        invalid_arg (Printf.sprintf "Problem: duplicate server node %d" s);
      Hashtbl.add seen s ())
    servers;
  check_capacity ~num_servers:(Array.length servers)
    ~num_clients:(Array.length clients) capacity;
  { latency; servers = Array.copy servers; clients = Array.copy clients; capacity }

let all_nodes_clients ?capacity latency ~servers =
  let clients = Array.init (Matrix.dim latency) Fun.id in
  make ?capacity ~latency ~servers ~clients ()

let latency p = p.latency
let servers p = p.servers
let clients p = p.clients
let num_servers p = Array.length p.servers
let num_clients p = Array.length p.clients
let capacity p = p.capacity

let with_capacity p capacity =
  check_capacity ~num_servers:(num_servers p) ~num_clients:(num_clients p) capacity;
  { p with capacity }

let d_cs p c s = Matrix.get p.latency p.clients.(c) p.servers.(s)
let d_ss p s1 s2 = Matrix.get p.latency p.servers.(s1) p.servers.(s2)
let d_cc p c1 c2 = Matrix.get p.latency p.clients.(c1) p.clients.(c2)

(* Flat snapshots of the client-server / server-server distance blocks.
   Hot algorithms build one up front (O(nk) with a single bounds check
   per row) and then index it unchecked; a snapshot owned by the caller
   is also immune to in-place matrix drift and safe to share read-only
   across domains. Entries are the same doubles [d_cs]/[d_ss] return, so
   swapping an algorithm onto a table is bit-preserving. *)
let cs_table p =
  let n = Array.length p.clients and k = Array.length p.servers in
  let m = p.latency in
  let t = Array.make (max 1 (n * k)) 0. in
  for c = 0 to n - 1 do
    let node = Array.unsafe_get p.clients c in
    let base = c * k in
    for s = 0 to k - 1 do
      Array.unsafe_set t (base + s)
        (Matrix.unsafe_get m node (Array.unsafe_get p.servers s))
    done
  done;
  t

let sc_table p =
  let n = Array.length p.clients and k = Array.length p.servers in
  let m = p.latency in
  let t = Array.make (max 1 (n * k)) 0. in
  for s = 0 to k - 1 do
    let node = Array.unsafe_get p.servers s in
    let base = s * n in
    for c = 0 to n - 1 do
      Array.unsafe_set t (base + c)
        (Matrix.unsafe_get m node (Array.unsafe_get p.clients c))
    done
  done;
  t

let ss_table p =
  let k = Array.length p.servers in
  let m = p.latency in
  let t = Array.make (max 1 (k * k)) 0. in
  for s = 0 to k - 1 do
    let node = Array.unsafe_get p.servers s in
    let base = s * k in
    for s' = 0 to k - 1 do
      Array.unsafe_set t (base + s')
        (Matrix.unsafe_get m node (Array.unsafe_get p.servers s'))
    done
  done;
  t

let nearest_server p c =
  let best = ref 0 in
  for s = 1 to num_servers p - 1 do
    if d_cs p c s < d_cs p c !best then best := s
  done;
  !best

let servers_by_distance p c =
  let order = Array.init (num_servers p) Fun.id in
  Array.sort
    (fun s1 s2 ->
      match Float.compare (d_cs p c s1) (d_cs p c s2) with
      | 0 -> compare s1 s2
      | cmp -> cmp)
    order;
  order
