module Matrix = Dia_latency.Matrix

(* All four scans read the latency Bigarray directly ([Matrix.unsafe_get]
   on node ids validated at [Problem.make]); array accesses that depend
   on caller-supplied assignment entries stay checked. Values are the
   exact doubles [Problem.d_cs]/[d_ss] return. *)

let of_assignment p assignment =
  let m = Problem.latency p in
  let clients = Problem.clients p in
  let servers = Problem.servers p in
  let ecc = Array.make (Problem.num_servers p) neg_infinity in
  Array.iteri
    (fun c s ->
      let d = Matrix.unsafe_get m clients.(c) servers.(s) in
      if d > ecc.(s) then ecc.(s) <- d)
    assignment;
  ecc

let objective p ecc =
  let m = Problem.latency p in
  let servers = Problem.servers p in
  let k = Problem.num_servers p in
  (* Gather the used servers once; the pair scan then touches only
     used x used instead of testing every pair — the same pairs the
     dense loop evaluated, in the same order. *)
  let used = Array.make k 0 in
  let u = ref 0 in
  for s = 0 to k - 1 do
    if ecc.(s) > neg_infinity then begin
      Array.unsafe_set used !u s;
      incr u
    end
  done;
  if !u = 0 then 0.
    (* No server is used: D over an empty configuration is an empty max.
       Normalised to [0.] — the identity of the objective (mirroring
       [Checker.analyze]'s [empty] flag) — rather than leaking
       [neg_infinity] into downstream arithmetic. *)
  else begin
    let best = ref neg_infinity in
    for i = 0 to !u - 1 do
      let s1 = Array.unsafe_get used i in
      let e1 = Array.unsafe_get ecc s1 in
      let n1 = Array.unsafe_get servers s1 in
      for j = i to !u - 1 do
        let s2 = Array.unsafe_get used j in
        let len = e1 +. Matrix.unsafe_get m n1 (Array.unsafe_get servers s2)
                  +. Array.unsafe_get ecc s2 in
        if len > !best then best := len
      done
    done;
    !best
  end

let objective_load p ~delay ecc ~load =
  let m = Problem.latency p in
  let servers = Problem.servers p in
  let k = Problem.num_servers p in
  let used = Array.make k 0 in
  let u = ref 0 in
  for s = 0 to k - 1 do
    if ecc.(s) > neg_infinity then begin
      Array.unsafe_set used !u s;
      incr u
    end
  done;
  if !u = 0 then 0.
  else begin
    (* Effective eccentricities of the used servers, precomputed so the
       pair scan groups [eff1 +. d +. eff2] exactly like
       [Objective.max_interaction_path_load]. *)
    let eff = Array.make !u 0. in
    for i = 0 to !u - 1 do
      let s = Array.unsafe_get used i in
      eff.(i) <- ecc.(s) +. Delay.eval delay load.(s)
    done;
    let best = ref neg_infinity in
    for i = 0 to !u - 1 do
      let e1 = Array.unsafe_get eff i in
      let n1 = Array.unsafe_get servers (Array.unsafe_get used i) in
      for j = i to !u - 1 do
        let s2 = Array.unsafe_get used j in
        let len = e1 +. Matrix.unsafe_get m n1 (Array.unsafe_get servers s2)
                  +. Array.unsafe_get eff j in
        if len > !best then best := len
      done
    done;
    !best
  end

let excluding p assignment ~server ~client =
  let m = Problem.latency p in
  let clients = Problem.clients p in
  let snode = (Problem.servers p).(server) in
  let worst = ref neg_infinity in
  Array.iteri
    (fun c s ->
      if s = server && c <> client then begin
        let d = Matrix.unsafe_get m clients.(c) snode in
        if d > !worst then worst := d
      end)
    assignment;
  !worst

let attach p ecc ~client ~server =
  let m = Problem.latency p in
  let servers = Problem.servers p in
  let snode = servers.(server) in
  let d = Matrix.unsafe_get m (Problem.clients p).(client) snode in
  let worst = ref (2. *. d) in
  for s'' = 0 to Problem.num_servers p - 1 do
    let e = ecc.(s'') in
    if e > neg_infinity then begin
      let len = d +. Matrix.unsafe_get m snode (Array.unsafe_get servers s'') +. e in
      if len > !worst then worst := len
    end
  done;
  !worst
