(* For a fixed client c, define f_c(s') = min over s of d(c,s) + d(s,s'):
   the cheapest way to reach "exit server" s' from c via any entry server.
   Then LB = max over pairs (c, c') of min over s' of f_c(s') + d(s',c').

   Pruning: with ns(c') the nearest server to c' and nd(c') its distance,
   g(c, c') <= f_c(ns(c')) + nd(c'), so whenever that upper bound does not
   beat the best pair found so far the O(|S|) inner minimisation is
   skipped.

   Memory layout: everything runs over flat snapshots ([Problem.cs_table],
   a transposed server-server block and a flat n*k reach table) so the
   inner loops are contiguous unchecked float64 reads — the bounds
   checks are paid once when the snapshot is built. The reach fill is
   cache-blocked: four exit servers share one pass over the client's
   distance row, keeping four independent running minima in registers
   (the min-reduction chains no longer serialise, and each cs entry is
   loaded once per block instead of once per exit server). Each min
   still ranges over exactly the same candidate sums in a fixed order,
   so the table — and therefore the result — is bit-identical to the
   boxed implementation.

   Parallel path: rows of f and rows of the pair scan are independent, so
   both fan out over a Pool. Pruning against a shared best is sound even
   when the shared value is read racily — a skipped pair satisfies
   g <= upper <= best-so-far <= final best, so it can never change the
   max — and the per-row bests are combined with Float.max (exact), which
   makes the result bit-identical to the sequential scan. *)

module Pool = Dia_parallel.Pool

(* f is flat n*k, row base c*k; cs is Problem.cs_table; sst is the
   transposed server block, sst.(s' * k + s) = d(s, s').

   Exit servers are processed four at a time: one pass over the client's
   cs row per block, four independent minima in registers. The diagonal
   candidate s = s' contributes d(c,s') + 0 = d(c,s') on its own, so no
   separate seeding is needed; the blocked order visits the same
   candidate set per exit server, and min is order-insensitive, so every
   entry is bit-identical to the naive double loop. *)
let fill_reach_row ~k ~cs ~sst (f : float array) c =
  let fbase = c * k in
  let cbase = c * k in
  let s' = ref 0 in
  while !s' + 4 <= k do
    let t0 = !s' * k and t1 = (!s' + 1) * k in
    let t2 = (!s' + 2) * k and t3 = (!s' + 3) * k in
    let m0 = ref infinity and m1 = ref infinity in
    let m2 = ref infinity and m3 = ref infinity in
    for s = 0 to k - 1 do
      let d = Array.unsafe_get cs (cbase + s) in
      let v0 = d +. Array.unsafe_get sst (t0 + s) in
      if v0 < !m0 then m0 := v0;
      let v1 = d +. Array.unsafe_get sst (t1 + s) in
      if v1 < !m1 then m1 := v1;
      let v2 = d +. Array.unsafe_get sst (t2 + s) in
      if v2 < !m2 then m2 := v2;
      let v3 = d +. Array.unsafe_get sst (t3 + s) in
      if v3 < !m3 then m3 := v3
    done;
    Array.unsafe_set f (fbase + !s') !m0;
    Array.unsafe_set f (fbase + !s' + 1) !m1;
    Array.unsafe_set f (fbase + !s' + 2) !m2;
    Array.unsafe_set f (fbase + !s' + 3) !m3;
    s' := !s' + 4
  done;
  while !s' < k do
    let t = !s' * k in
    let m = ref infinity in
    for s = 0 to k - 1 do
      let v = Array.unsafe_get cs (cbase + s) +. Array.unsafe_get sst (t + s) in
      if v < !m then m := v
    done;
    Array.unsafe_set f (fbase + !s') !m;
    incr s'
  done

let reach_costs ?pool ~n ~k ~cs ~sst () =
  let f = Array.make (max 1 (n * k)) infinity in
  (match pool with
  | None ->
      for c = 0 to n - 1 do
        fill_reach_row ~k ~cs ~sst f c
      done
  | Some pool ->
      (* A reach row is O(k²) contiguous flops since the flat
         conversion — cheap enough that the 4x oversplit only pays for
         itself once chunks carry a few dozen rows. The triangular pair
         scan below keeps the default: its rows are uneven, so the
         balancing is worth the dispatch. *)
      Pool.parallel_for ~grain:32 pool ~n (fill_reach_row ~k ~cs ~sst f));
  f

(* Best pair value over rows [lo, hi): c in the range, c' >= c. [seed] is
   a sound lower bound on the final answer used to prime the pruning.

   Partners c' are visited grouped by their nearest server b, members
   ascending. Each group carries a suffix max of nd over its remaining
   members, so one comparison — f_c(b) + suffmax >= f_c(b) + nd(c') >=
   g(c,c'), both steps monotone under float rounding — retires the whole
   group when it cannot beat the current best. Groups visit pairs in a
   different order than the plain triangular loop, but every evaluated
   pair value is the same exact double and max is order-insensitive, so
   the result is unchanged. *)
let scan_rows ~k ~cs ~f ~nearest_dist ~groups ~suffmax ~seed lo hi =
  let best = ref seed in
  let ptr = Array.make k 0 in
  for c = lo to hi - 1 do
    let fbase = c * k in
    for b = 0 to k - 1 do
      let g = Array.unsafe_get groups b in
      let len_g = Array.length g in
      (* Skip members below the triangle row; pointers only move
         forward, so the advances amortise over the whole chunk. *)
      let i0 = ref (Array.unsafe_get ptr b) in
      while !i0 < len_g && Array.unsafe_get g !i0 < c do incr i0 done;
      Array.unsafe_set ptr b !i0;
      if !i0 < len_g then begin
        let fb = Array.unsafe_get f (fbase + b) in
        let sm = Array.unsafe_get suffmax b in
        if fb +. Array.unsafe_get sm !i0 > !best then
          for i = !i0 to len_g - 1 do
            let c' = Array.unsafe_get g i in
            let upper = fb +. Array.unsafe_get nearest_dist c' in
            if upper > !best then begin
              let gv = ref upper in
              let cbase = c' * k in
              for s' = 0 to k - 1 do
                let len =
                  Array.unsafe_get f (fbase + s')
                  +. Array.unsafe_get cs (cbase + s')
                in
                if len < !gv then gv := len
              done;
              if !gv > !best then best := !gv
            end
          done
      end
    done
  done;
  !best

let compute ?pool p =
  let n = Problem.num_clients p in
  if n = 0 then neg_infinity
  else begin
    let k = Problem.num_servers p in
    let cs = Problem.cs_table p in
    let ss = Problem.ss_table p in
    (* Transposed server block for the fill: sst.(s' * k + s) = d(s,s'),
       the exact double from the snapshot, so the fill's inner loop is
       contiguous in s. *)
    let sst = Array.make (max 1 (k * k)) 0. in
    for s = 0 to k - 1 do
      for s'' = 0 to k - 1 do
        Array.unsafe_set sst ((s'' * k) + s) (Array.unsafe_get ss ((s * k) + s''))
      done
    done;
    (* Nearest server per client, ties to the lowest index — the same
       strict-< ascending scan as [Problem.nearest_server]. *)
    let nearest = Array.make n 0 in
    let nearest_dist = Array.make n 0. in
    for c = 0 to n - 1 do
      let base = c * k in
      let best = ref 0 in
      let bd = ref (Array.unsafe_get cs base) in
      for s = 1 to k - 1 do
        let d = Array.unsafe_get cs (base + s) in
        if d < !bd then begin
          best := s;
          bd := d
        end
      done;
      nearest.(c) <- !best;
      nearest_dist.(c) <- !bd
    done;
    let f = reach_costs ?pool ~n ~k ~cs ~sst () in
    (* Partner groups for the scan: clients sharing a nearest server, in
       ascending order, with suffix maxima of nd over the tail of each
       group. *)
    let counts = Array.make k 0 in
    for c = 0 to n - 1 do
      counts.(nearest.(c)) <- counts.(nearest.(c)) + 1
    done;
    let groups = Array.map (fun len -> Array.make len 0) counts in
    let fill_pos = Array.make k 0 in
    for c = 0 to n - 1 do
      let b = nearest.(c) in
      groups.(b).(fill_pos.(b)) <- c;
      fill_pos.(b) <- fill_pos.(b) + 1
    done;
    let suffmax =
      Array.map
        (fun g ->
          let len = Array.length g in
          let sm = Array.make (len + 1) neg_infinity in
          for i = len - 1 downto 0 do
            let nd = nearest_dist.(g.(i)) in
            sm.(i) <- (if nd > sm.(i + 1) then nd else sm.(i + 1))
          done;
          sm)
        groups
    in
    match pool with
    | None ->
        scan_rows ~k ~cs ~f ~nearest_dist ~groups ~suffmax
          ~seed:neg_infinity 0 n
    | Some pool ->
        let shared = Atomic.make neg_infinity in
        let publish v =
          let rec go () =
            let cur = Atomic.get shared in
            if v > cur && not (Atomic.compare_and_set shared cur v) then go ()
          in
          go ()
        in
        let chunk_bests =
          Pool.chunk_map pool ~n (fun ~lo ~hi ->
              let b =
                scan_rows ~k ~cs ~f ~nearest_dist ~groups ~suffmax
                  ~seed:(Atomic.get shared) lo hi
              in
              publish b;
              b)
        in
        Array.fold_left Float.max neg_infinity chunk_bests
  end

let naive p =
  let n = Problem.num_clients p and k = Problem.num_servers p in
  let best = ref neg_infinity in
  for c = 0 to n - 1 do
    for c' = c to n - 1 do
      let g = ref infinity in
      for s = 0 to k - 1 do
        for s' = 0 to k - 1 do
          let len = Problem.d_cs p c s +. Problem.d_ss p s s' +. Problem.d_cs p c' s' in
          if len < !g then g := len
        done
      done;
      if !g > !best then best := !g
    done
  done;
  !best

let normalized ?pool p a =
  let lb = compute ?pool p in
  if not (Float.is_finite lb) || lb <= 0. then nan
  else Objective.max_interaction_path p a /. lb
