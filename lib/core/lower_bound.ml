(* For a fixed client c, define f_c(s') = min over s of d(c,s) + d(s,s'):
   the cheapest way to reach "exit server" s' from c via any entry server.
   Then LB = max over pairs (c, c') of min over s' of f_c(s') + d(s',c').

   Pruning: with ns(c') the nearest server to c' and nd(c') its distance,
   g(c, c') <= f_c(ns(c')) + nd(c'), so whenever that upper bound does not
   beat the best pair found so far the O(|S|) inner minimisation is
   skipped.

   Parallel path: rows of f and rows of the pair scan are independent, so
   both fan out over a Pool. Pruning against a shared best is sound even
   when the shared value is read racily — a skipped pair satisfies
   g <= upper <= best-so-far <= final best, so it can never change the
   max — and the per-row bests are combined with Float.max (exact), which
   makes the result bit-identical to the sequential scan. *)

module Pool = Dia_parallel.Pool

let fill_reach_row p ~servers:k f c =
  let row = f.(c) in
  for s = 0 to k - 1 do
    let dcs = Problem.d_cs p c s in
    for s' = 0 to k - 1 do
      let cost = dcs +. Problem.d_ss p s s' in
      if cost < row.(s') then row.(s') <- cost
    done
  done

let reach_costs ?pool p =
  let k = Problem.num_servers p in
  let n = Problem.num_clients p in
  let f = Array.make_matrix n k infinity in
  (match pool with
  | None ->
      for c = 0 to n - 1 do
        fill_reach_row p ~servers:k f c
      done
  | Some pool -> Pool.parallel_for pool ~n (fill_reach_row p ~servers:k f));
  f

(* Best pair value over rows [lo, hi): c in the range, c' >= c. [seed] is
   a sound lower bound on the final answer used to prime the pruning. *)
let scan_rows p ~f ~nearest ~nearest_dist ~seed lo hi =
  let k = Problem.num_servers p in
  let n = Problem.num_clients p in
  let best = ref seed in
  for c = lo to hi - 1 do
    let row = f.(c) in
    for c' = c to n - 1 do
      let upper = row.(nearest.(c')) +. nearest_dist.(c') in
      if upper > !best then begin
        let g = ref upper in
        for s' = 0 to k - 1 do
          let len = row.(s') +. Problem.d_cs p c' s' in
          if len < !g then g := len
        done;
        if !g > !best then best := !g
      end
    done
  done;
  !best

let compute ?pool p =
  let n = Problem.num_clients p in
  if n = 0 then neg_infinity
  else begin
    let f = reach_costs ?pool p in
    let nearest = Array.init n (fun c -> Problem.nearest_server p c) in
    let nearest_dist = Array.init n (fun c -> Problem.d_cs p c nearest.(c)) in
    match pool with
    | None -> scan_rows p ~f ~nearest ~nearest_dist ~seed:neg_infinity 0 n
    | Some pool ->
        let shared = Atomic.make neg_infinity in
        let publish v =
          let rec go () =
            let cur = Atomic.get shared in
            if v > cur && not (Atomic.compare_and_set shared cur v) then go ()
          in
          go ()
        in
        let chunk_bests =
          Pool.chunk_map pool ~n (fun ~lo ~hi ->
              let b =
                scan_rows p ~f ~nearest ~nearest_dist
                  ~seed:(Atomic.get shared) lo hi
              in
              publish b;
              b)
        in
        Array.fold_left Float.max neg_infinity chunk_bests
  end

let naive p =
  let n = Problem.num_clients p and k = Problem.num_servers p in
  let best = ref neg_infinity in
  for c = 0 to n - 1 do
    for c' = c to n - 1 do
      let g = ref infinity in
      for s = 0 to k - 1 do
        for s' = 0 to k - 1 do
          let len = Problem.d_cs p c s +. Problem.d_ss p s s' +. Problem.d_cs p c' s' in
          if len < !g then g := len
        done
      done;
      if !g > !best then best := !g
    done
  done;
  !best

let normalized ?pool p a =
  let lb = compute ?pool p in
  if not (Float.is_finite lb) || lb <= 0. then nan
  else Objective.max_interaction_path p a /. lb
