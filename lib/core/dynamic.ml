module Matrix = Dia_latency.Matrix
module Landmark = Dia_latency.Landmark

type client_id = int

type member = { node : int; mutable server : int; mutable standby : int }
(* [standby = -1] means no standby is currently armed. *)

type stats = { joins : int; leaves : int; moves : int }

(* Per-server distance multiset: exact latency value -> number of members
   at that distance. The eccentricity is the greatest key, so removals
   are O(log load) instead of the O(n) member scan a recompute needs,
   and the maintained value is bit-identical to the from-scratch maximum
   (max over a multiset does not depend on arrival order). *)
module Fmap = Map.Make (Float)

type t = {
  base : Matrix.t;  (** pristine latencies, never mutated *)
  mutable matrix : Matrix.t;  (** == [base] until drift copies it *)
  servers : int array;
  capacity : int;
  delay : Delay.t option;
      (** load-latency model; [None] = pure network objective, and every
          code path is byte-identical to a session without the field *)
  members : (client_id, member) Hashtbl.t;
  load : int array;
  ecc : float array;
  dists : int Fmap.t array;  (** per-server distance multiset backing [ecc] *)
  sb_load : int array array;
      (** [sb_load.(p).(s)] = members of primary [p] whose standby is [s] *)
  failed : bool array;
  node_drift : float array;  (** per-node multiplicative factor, 1.0 = none *)
  node_count : int array;  (** members per network node (occupancy) *)
  mutable d_cache : float;  (** D(A); valid iff [not d_dirty] *)
  mutable d_dirty : bool;
  mutable dl_cache : float;
      (** D_load(A); valid iff [not dl_dirty]; meaningless when
          [delay = None] *)
  mutable dl_dirty : bool;
  reach_rows : (int, float array) Hashtbl.t;
      (** per-node [f_u(s') = min_s (d(u,s) +. d(s,s'))] over live
          servers; reset whenever the matrix or the live set changes *)
  mutable lb_cache : float;  (** super-optimal LB; valid iff [lb_valid] *)
  mutable lb_valid : bool;
  mutable lb_wa : int;  (** witness node pair realising [lb_cache]... *)
  mutable lb_wb : int;  (** ...(-1,-1) when empty *)
  mutable landmark : Landmark.t option;
      (** lazy pruning index over [matrix] with the servers as
          candidates; dropped whenever the matrix changes (drift) *)
  landmark_lb : float array;  (** per-server bound scratch for one query *)
  mutable next_id : int;
  mutable joins : int;
  mutable leaves : int;
  mutable moves : int;
}

let create ?capacity ?delay matrix ~servers =
  if Array.length servers = 0 then invalid_arg "Dynamic.create: no servers";
  Option.iter Delay.validate delay;
  Array.iter
    (fun s ->
      if s < 0 || s >= Matrix.dim matrix then
        invalid_arg (Printf.sprintf "Dynamic.create: server node %d out of range" s))
    servers;
  (match capacity with
  | Some c when c <= 0 -> invalid_arg "Dynamic.create: capacity must be positive"
  | _ -> ());
  let k = Array.length servers in
  {
    base = matrix;
    matrix;
    servers = Array.copy servers;
    capacity = Option.value ~default:max_int capacity;
    delay;
    members = Hashtbl.create 64;
    load = Array.make k 0;
    ecc = Array.make k neg_infinity;
    dists = Array.make k Fmap.empty;
    sb_load = Array.make_matrix k k 0;
    failed = Array.make k false;
    node_drift = Array.make (Matrix.dim matrix) 1.0;
    node_count = Array.make (Matrix.dim matrix) 0;
    d_cache = neg_infinity;
    d_dirty = false;
    dl_cache = neg_infinity;
    dl_dirty = false;
    reach_rows = Hashtbl.create 64;
    lb_cache = neg_infinity;
    lb_valid = true;
    lb_wa = -1;
    lb_wb = -1;
    landmark = None;
    landmark_lb = Array.make k 0.;
    next_id = 0;
    joins = 0;
    leaves = 0;
    moves = 0;
  }

let k t = Array.length t.servers

let d_ns t node s = Matrix.get t.matrix node t.servers.(s)
let d_ss t s1 s2 = Matrix.get t.matrix t.servers.(s1) t.servers.(s2)

let objective_of t ecc =
  let best = ref neg_infinity in
  for s1 = 0 to k t - 1 do
    if ecc.(s1) > neg_infinity then
      for s2 = s1 to k t - 1 do
        if ecc.(s2) > neg_infinity then begin
          let len = ecc.(s1) +. d_ss t s1 s2 +. ecc.(s2) in
          if len > !best then best := len
        end
      done
  done;
  !best

(* --- incremental D(A) ---------------------------------------------------

   [d_cache] holds [objective_of t t.ecc] whenever [d_dirty] is false.
   When a single eccentricity {e increases} (join, move-in, failover
   landing) only the pairs through that server can raise the maximum,
   and because float addition is monotone the grown pairs dominate their
   old values — so folding the k refreshed pairs into the cached D gives
   the exact scratch result in O(k). Decreases (leave, move-out, server
   failure, drift) mark the cache dirty and the next {!objective} call
   re-scans all pairs in O(k²) — still independent of the member
   count. *)

let bump_objective t s =
  if not t.d_dirty then begin
    let best = ref t.d_cache in
    for s' = 0 to k t - 1 do
      if t.ecc.(s') > neg_infinity then begin
        let a = if s' < s then s' else s and b = if s' < s then s else s' in
        let len = t.ecc.(a) +. d_ss t a b +. t.ecc.(b) in
        if len > !best then best := len
      end
    done;
    t.d_cache <- !best
  end

let objective t =
  if t.d_dirty then begin
    t.d_cache <- objective_of t t.ecc;
    t.d_dirty <- false
  end;
  t.d_cache

let objective_scratch t =
  let ecc = Array.make (k t) neg_infinity in
  Hashtbl.iter
    (fun _ m -> ecc.(m.server) <- Float.max ecc.(m.server) (d_ns t m.node m.server))
    t.members;
  objective_of t ecc

(* --- incremental D_load(A) ----------------------------------------------

   Same decomposition as D(A), through the {e effective} eccentricity
   eff(s) = ecc(s) +. delay(load(s)). A join raises eff of exactly one
   server (eccentricity can only grow and delay is monotone in load), so
   the O(k) pair refresh stays exact; any load decrease lowers eff even
   when the eccentricity is untouched, so every removal path marks
   [dl_dirty] and the next query re-scans in O(k²). The expression
   grouping [(ecc1 +. δ1) +. d_ss +. (ecc2 +. δ2)] matches
   {!Ecc.objective_load} and the naive evaluator bit-for-bit. *)

let objective_load_arrays t delay ecc load =
  let best = ref neg_infinity in
  for s1 = 0 to k t - 1 do
    if ecc.(s1) > neg_infinity then begin
      let e1 = ecc.(s1) +. Delay.eval delay load.(s1) in
      for s2 = s1 to k t - 1 do
        if ecc.(s2) > neg_infinity then begin
          let len = e1 +. d_ss t s1 s2 +. (ecc.(s2) +. Delay.eval delay load.(s2)) in
          if len > !best then best := len
        end
      done
    end
  done;
  !best

(* Effective eccentricity of [s] just rose (member arrived: load bump
   plus a possible eccentricity raise); fold the k refreshed pairs
   through [s] into the cached D_load. Called from {!ecc_add} — every
   arrival path goes through it with the load already incremented. *)
let bump_objective_load t s =
  match t.delay with
  | None -> ()
  | Some delay ->
      if not t.dl_dirty then begin
        let best = ref t.dl_cache in
        for s' = 0 to k t - 1 do
          if t.ecc.(s') > neg_infinity then begin
            let a = if s' < s then s' else s and b = if s' < s then s else s' in
            let ea = t.ecc.(a) +. Delay.eval delay t.load.(a) in
            let len = ea +. d_ss t a b +. (t.ecc.(b) +. Delay.eval delay t.load.(b)) in
            if len > !best then best := len
          end
        done;
        t.dl_cache <- !best
      end

let objective_load t =
  match t.delay with
  | None -> objective t
  | Some delay ->
      if t.dl_dirty then begin
        t.dl_cache <- objective_load_arrays t delay t.ecc t.load;
        t.dl_dirty <- false
      end;
      t.dl_cache

let objective_load_scratch t =
  match t.delay with
  | None -> objective_scratch t
  | Some delay ->
      let ecc = Array.make (k t) neg_infinity in
      let load = Array.make (k t) 0 in
      Hashtbl.iter
        (fun _ m ->
          load.(m.server) <- load.(m.server) + 1;
          ecc.(m.server) <- Float.max ecc.(m.server) (d_ns t m.node m.server))
        t.members;
      objective_load_arrays t delay ecc load

let delay t = t.delay

let mset_add t s d =
  t.dists.(s) <-
    Fmap.update d (function None -> Some 1 | Some c -> Some (c + 1)) t.dists.(s)

let mset_remove t s d =
  t.dists.(s) <-
    Fmap.update d
      (function
        | None | Some 1 -> None
        | Some c -> Some (c - 1))
      t.dists.(s)

let mset_max m =
  match Fmap.max_binding_opt m with Some (d, _) -> d | None -> neg_infinity

(* Record that a member at distance [d] now sits on [s]. Every caller
   has already incremented [load.(s)], so the D_load refresh below sees
   the final arrays. *)
let ecc_add t s d =
  mset_add t s d;
  if d > t.ecc.(s) then begin
    t.ecc.(s) <- d;
    bump_objective t s
  end;
  bump_objective_load t s

(* Record that a member at distance [d] left [s]. The load drop lowers
   eff(s) even when the eccentricity maximum is untouched, so D_load is
   always dirtied. *)
let ecc_remove t s d =
  mset_remove t s d;
  let m = mset_max t.dists.(s) in
  if m < t.ecc.(s) then begin
    t.ecc.(s) <- m;
    t.d_dirty <- true
  end;
  t.dl_dirty <- true

(* Eccentricity of [s] with one member at distance [d] discounted —
   the O(log load) replacement for scanning every member. *)
let ecc_without t s d =
  mset_max
    (Fmap.update d
       (function
         | None | Some 1 -> None
         | Some c -> Some (c - 1))
       t.dists.(s))

(* --- incremental lower bound --------------------------------------------

   The super-optimal lower bound depends only on the {e set} of occupied
   client nodes, the live servers, and the matrix — not on the
   assignment — so it is cached at node granularity: for occupied nodes
   u <= v, LB = max over pairs of min_{s'} (f_u(s') +. d(v,s')) with
   f_u(s') = min_s (d(u,s) +. d(s,s')), all server scans over the live
   set in ascending index order (the canonical orientation
   {!lower_bound_scratch} re-derives). Occupying a fresh node only adds
   pairs, so the cache extends by maxing in the new node's pairs;
   vacating a node removes pairs, which can only lower the maximum, so
   the cache stays exact unless the witness pair itself died. Server
   failures/recoveries and drift invalidate wholesale (the reach rows
   change), and the next {!lower_bound} query rebuilds lazily. *)

let lb_invalidate t =
  t.lb_valid <- false;
  Hashtbl.reset t.reach_rows

let reach_row t u =
  match Hashtbl.find_opt t.reach_rows u with
  | Some row -> row
  | None ->
      let kk = k t in
      let row = Array.make kk infinity in
      for s' = 0 to kk - 1 do
        if not t.failed.(s') then begin
          let best = ref infinity in
          for s = 0 to kk - 1 do
            if not t.failed.(s) then begin
              let v = d_ns t u s +. d_ss t s s' in
              if v < !best then best := v
            end
          done;
          row.(s') <- !best
        end
      done;
      Hashtbl.replace t.reach_rows u row;
      row

(* Longest-pair cost for occupied nodes [u <= v], via [u]'s reach row. *)
let pair_cost t u v =
  let row = reach_row t u in
  let best = ref infinity in
  for s' = 0 to k t - 1 do
    if not t.failed.(s') then begin
      let len = row.(s') +. d_ns t v s' in
      if len < !best then best := len
    end
  done;
  !best

(* Node [u] just became occupied: max in its pairs against every
   occupied node (itself included). Old pairs are untouched, so
   [max lb_cache (new pairs)] is exactly the scratch maximum. *)
let lb_extend t u =
  if t.lb_valid then begin
    let best = ref t.lb_cache in
    let wa = ref t.lb_wa and wb = ref t.lb_wb in
    Array.iteri
      (fun v count ->
        if count > 0 then begin
          let a = if v < u then v else u and b = if v < u then u else v in
          let len = pair_cost t a b in
          if len > !best then begin
            best := len;
            wa := a;
            wb := b
          end
        end)
      t.node_count;
    t.lb_cache <- !best;
    t.lb_wa <- !wa;
    t.lb_wb <- !wb
  end

let node_add t node =
  let c = t.node_count.(node) in
  t.node_count.(node) <- c + 1;
  if c = 0 then lb_extend t node

let node_remove t node =
  let c = t.node_count.(node) - 1 in
  t.node_count.(node) <- c;
  if c = 0 && t.lb_valid && (node = t.lb_wa || node = t.lb_wb) then
    t.lb_valid <- false

let lower_bound t =
  if not t.lb_valid then begin
    let best = ref neg_infinity and wa = ref (-1) and wb = ref (-1) in
    let n = Array.length t.node_count in
    for u = 0 to n - 1 do
      if t.node_count.(u) > 0 then
        for v = u to n - 1 do
          if t.node_count.(v) > 0 then begin
            let len = pair_cost t u v in
            if len > !best then begin
              best := len;
              wa := u;
              wb := v
            end
          end
        done
    done;
    t.lb_cache <- !best;
    t.lb_wa <- !wa;
    t.lb_wb <- !wb;
    t.lb_valid <- true
  end;
  t.lb_cache

let lower_bound_scratch t =
  (* Reference recompute sharing no cached state with {!lower_bound}:
     occupancy from the member table, reach rows rebuilt fresh. *)
  let n = Array.length t.node_count in
  let occupied = Array.make n false in
  Hashtbl.iter (fun _ m -> occupied.(m.node) <- true) t.members;
  let kk = k t in
  let row = Array.make kk infinity in
  let best = ref neg_infinity in
  for u = 0 to n - 1 do
    if occupied.(u) then begin
      for s' = 0 to kk - 1 do
        row.(s') <- infinity;
        if not t.failed.(s') then begin
          let b = ref infinity in
          for s = 0 to kk - 1 do
            if not t.failed.(s) then begin
              let v = d_ns t u s +. d_ss t s s' in
              if v < !b then b := v
            end
          done;
          row.(s') <- !b
        end
      done;
      for v = u to n - 1 do
        if occupied.(v) then begin
          let pair = ref infinity in
          for s' = 0 to kk - 1 do
            if not t.failed.(s') then begin
              let len = row.(s') +. d_ns t v s' in
              if len < !pair then pair := len
            end
          done;
          if !pair > !best then best := !pair
        end
      done
    end
  done;
  !best

(* LB_load = LB +. 2 delay(1): in any assignment every serving server
   hosts at least one client, delay is monotone from load 1 up, and the
   witness pair of LB pays its two server delays on top of the network
   path. Exact equality with LB under [Constant 0.]; trivially
   incremental on top of the cached LB. *)
let lower_bound_load t =
  match t.delay with
  | None -> lower_bound t
  | Some delay -> lower_bound t +. (2. *. Delay.eval delay 1)

let lower_bound_load_scratch t =
  match t.delay with
  | None -> lower_bound_scratch t
  | Some delay -> lower_bound_scratch t +. (2. *. Delay.eval delay 1)

(* Longest interaction path involving a node attached to server [s],
   given the other servers' eccentricities. *)
let attach_cost t ecc node s =
  let d = d_ns t node s in
  let worst = ref (2. *. d) in
  for s'' = 0 to k t - 1 do
    if ecc.(s'') > neg_infinity then begin
      let len = d +. d_ss t s s'' +. ecc.(s'') in
      if len > !worst then worst := len
    end
  done;
  !worst

(* Load-aware attach cost over trial arrays: the longest D_load path
   involving [node] if it joined [s] — [s]'s effective eccentricity
   after the join (eccentricity raised to at least d(node,s), load
   bumped by one) against every other used server's current effective
   eccentricity. Still >= 2 d(node,s) because delay >= 0, so the
   landmark [2 lb] prune in the placement scans stays sound. *)
let attach_cost_load_arrays t dl ecc load node s =
  let d = d_ns t node s in
  let new_eff = Float.max ecc.(s) d +. Delay.eval dl (load.(s) + 1) in
  let worst = ref (2. *. new_eff) in
  for s'' = 0 to k t - 1 do
    if s'' <> s && ecc.(s'') > neg_infinity then begin
      let len = new_eff +. d_ss t s s'' +. (ecc.(s'') +. Delay.eval dl load.(s'')) in
      if len > !worst then worst := len
    end
  done;
  !worst

(* Landmark pruning for the placement scans below (join, standby
   re-arm, failover re-homing). Every cost those scans minimise is at
   least [2 d(node, s)] — [attach_cost]'s round-trip floor survives the
   [Float.max]es stacked on top — so a certified bound lb <= d(node, s)
   retires server s whenever [2 lb] already fails to beat the best cost
   in hand: the skipped cost is >= 2 d >= 2 lb >= best, and the scans
   update on strict <. Doubling is exact in binary floating point, so
   results are bit-identical with or without the index; on non-metric
   matrices the bounds are all 0 and nothing is skipped. The index is
   built lazily from the {e current} matrix and dropped on drift. *)
let query_bounds t node =
  let idx =
    match t.landmark with
    | Some idx -> idx
    | None ->
        let idx = Landmark.build t.matrix ~candidates:t.servers in
        t.landmark <- Some idx;
        idx
  in
  Landmark.lower_bounds idx ~query:node t.landmark_lb;
  t.landmark_lb

(* --- standby replicas ---------------------------------------------------

   Every member may carry a standby: the live server, other than its
   primary, that minimises its attach cost in the surviving configuration
   (primary eccentricity removed), subject to headroom —
   [load s' + sb_load.(p).(s') < capacity], where the reservation matrix
   counts the primary's members already pointing at [s']. The matrix
   makes the promise compositional: every client of [p] reserving [s']
   fits into [s'] together. Reservations are advisory for joins, moves
   and rebalance (normal placement ignores them); the failover paths
   honour them. Standbys never point at a failed server. *)

let clear_standby t member =
  if member.standby >= 0 then begin
    let p = member.server and s = member.standby in
    t.sb_load.(p).(s) <- t.sb_load.(p).(s) - 1;
    member.standby <- -1
  end

let select_standby t member =
  let p = member.server in
  let trial = Array.copy t.ecc in
  trial.(p) <- neg_infinity;
  let lb = query_bounds t member.node in
  let best = ref (-1) and best_c = ref infinity in
  for s = 0 to k t - 1 do
    if
      s <> p
      && (not t.failed.(s))
      && t.load.(s) + t.sb_load.(p).(s) < t.capacity
      && 2. *. Array.unsafe_get lb s < !best_c
    then begin
      let c = attach_cost t trial member.node s in
      if c < !best_c then begin
        best_c := c;
        best := s
      end
    end
  done;
  if !best >= 0 then begin
    member.standby <- !best;
    t.sb_load.(p).(!best) <- t.sb_load.(p).(!best) + 1
  end

let join t ~node =
  if node < 0 || node >= Matrix.dim t.matrix then
    invalid_arg (Printf.sprintf "Dynamic.join: node %d out of range" node);
  (* With a delay model installed, the scan minimises the resulting
     D_load instead of D — the marginal delay the join inflicts on its
     server is part of every candidate's cost. Both attach costs keep
     the [2 d(node,s)] floor, so the landmark prune applies to both. *)
  let current =
    match t.delay with None -> objective t | Some _ -> objective_load t
  in
  let lb = query_bounds t node in
  let best = ref (-1) and best_d = ref infinity in
  for s = 0 to k t - 1 do
    if
      (not t.failed.(s))
      && t.load.(s) < t.capacity
      && 2. *. Array.unsafe_get lb s < !best_d
    then begin
      let cost =
        match t.delay with
        | None -> attach_cost t t.ecc node s
        | Some dl -> attach_cost_load_arrays t dl t.ecc t.load node s
      in
      let resulting = Float.max current cost in
      if resulting < !best_d then begin
        best_d := resulting;
        best := s
      end
    end
  done;
  if !best < 0 then failwith "Dynamic.join: all servers saturated";
  let s = !best in
  let id = t.next_id in
  t.next_id <- id + 1;
  let m = { node; server = s; standby = -1 } in
  Hashtbl.replace t.members id m;
  t.load.(s) <- t.load.(s) + 1;
  ecc_add t s (d_ns t node s);
  node_add t node;
  select_standby t m;
  t.joins <- t.joins + 1;
  id

let find t id =
  match Hashtbl.find_opt t.members id with
  | Some member -> member
  | None -> invalid_arg (Printf.sprintf "Dynamic: unknown client id %d" id)

let leave t id =
  let member = find t id in
  clear_standby t member;
  Hashtbl.remove t.members id;
  t.load.(member.server) <- t.load.(member.server) - 1;
  ecc_remove t member.server (d_ns t member.node member.server);
  node_remove t member.node;
  t.leaves <- t.leaves + 1

let server_of t id = (find t id).server

let num_clients t = Hashtbl.length t.members
let capacity t = if t.capacity = max_int then None else Some t.capacity

let load t s =
  if s < 0 || s >= k t then
    invalid_arg (Printf.sprintf "Dynamic.load: server %d out of range" s);
  t.load.(s)

let move t id target =
  let member = find t id in
  if target < 0 || target >= k t then
    invalid_arg (Printf.sprintf "Dynamic.move: server %d out of range" target);
  if t.failed.(target) then
    invalid_arg (Printf.sprintf "Dynamic.move: server %d is failed" target);
  if member.server <> target then begin
    if t.load.(target) >= t.capacity then
      invalid_arg (Printf.sprintf "Dynamic.move: server %d is saturated" target);
    clear_standby t member;
    let old_s = member.server in
    t.load.(old_s) <- t.load.(old_s) - 1;
    t.load.(target) <- t.load.(target) + 1;
    ecc_remove t old_s (d_ns t member.node old_s);
    member.server <- target;
    ecc_add t target (d_ns t member.node target);
    select_standby t member;
    t.moves <- t.moves + 1
  end

let rebalance ?(max_moves = max_int) t =
  if max_moves <= 0 then 0
  else begin
  let moves = ref 0 in
  let continue = ref true in
  while !continue && !moves < max_moves do
    (* With a delay model the whole loop runs on D_load: longest pairs
       are effective-eccentricity pairs and moves are judged by the
       resulting D_load (a move shifts load off the donor, so the trial
       arrays carry the decremented load). The member filter below
       stays on the raw eccentricity — the delay term is shared by all
       of a server's clients, so the witnesses are unchanged. *)
    let d = match t.delay with None -> objective t | Some _ -> objective_load t in
    (* Clients realising their server's eccentricity on a longest pair. *)
    let on_longest = Array.make (k t) false in
    (match t.delay with
    | None ->
        for s1 = 0 to k t - 1 do
          if t.ecc.(s1) > neg_infinity then
            for s2 = s1 to k t - 1 do
              if t.ecc.(s2) > neg_infinity
                 && t.ecc.(s1) +. d_ss t s1 s2 +. t.ecc.(s2) >= d -. 1e-9
              then begin
                on_longest.(s1) <- true;
                on_longest.(s2) <- true
              end
            done
        done
    | Some dl ->
        let eff =
          Array.mapi
            (fun s e ->
              if e > neg_infinity then e +. Delay.eval dl t.load.(s) else e)
            t.ecc
        in
        for s1 = 0 to k t - 1 do
          if eff.(s1) > neg_infinity then
            for s2 = s1 to k t - 1 do
              if eff.(s2) > neg_infinity
                 && eff.(s1) +. d_ss t s1 s2 +. eff.(s2) >= d -. 1e-9
              then begin
                on_longest.(s1) <- true;
                on_longest.(s2) <- true
              end
            done
        done);
    let candidates =
      Hashtbl.fold
        (fun id member acc ->
          if on_longest.(member.server)
             && d_ns t member.node member.server >= t.ecc.(member.server) -. 1e-9
          then (id, member) :: acc
          else acc)
        t.members []
      |> List.sort (fun (a, _) (b, _) -> compare a b)
    in
    let try_move (_id, member) =
      let old_s = member.server in
      let d_old = d_ns t member.node old_s in
      let trial = Array.copy t.ecc in
      trial.(old_s) <- ecc_without t old_s d_old;
      let trial_load =
        match t.delay with
        | None -> t.load
        | Some _ ->
            let l = Array.copy t.load in
            l.(old_s) <- l.(old_s) - 1;
            l
      in
      let d_rest =
        match t.delay with
        | None -> objective_of t trial
        | Some dl -> objective_load_arrays t dl trial trial_load
      in
      let best = ref (-1) and best_d = ref infinity in
      for s = 0 to k t - 1 do
        if s <> old_s && (not t.failed.(s)) && t.load.(s) < t.capacity then begin
          let cost =
            match t.delay with
            | None -> attach_cost t trial member.node s
            | Some dl -> attach_cost_load_arrays t dl trial trial_load member.node s
          in
          let resulting = Float.max d_rest cost in
          if resulting < !best_d then begin
            best_d := resulting;
            best := s
          end
        end
      done;
      if !best >= 0 && !best_d < d -. 1e-12 then begin
        let s = !best in
        clear_standby t member;
        t.load.(old_s) <- t.load.(old_s) - 1;
        t.load.(s) <- t.load.(s) + 1;
        ecc_remove t old_s d_old;
        member.server <- s;
        ecc_add t s (d_ns t member.node s);
        select_standby t member;
        t.moves <- t.moves + 1;
        incr moves;
        true
      end
      else false
    in
    if not (List.exists try_move candidates) then continue := false
  done;
  !moves
  end

let snapshot t =
  if num_clients t = 0 then invalid_arg "Dynamic.snapshot: no clients";
  let entries =
    Hashtbl.fold (fun id member acc -> (id, member) :: acc) t.members []
    |> List.sort (fun (a, _) (b, _) -> compare a b)
  in
  let clients = Array.of_list (List.map (fun (_, m) -> m.node) entries) in
  let capacity = if t.capacity = max_int then None else Some t.capacity in
  let p = Problem.make ?capacity ~latency:t.matrix ~servers:t.servers ~clients () in
  let a =
    Assignment.of_array p (Array.of_list (List.map (fun (_, m) -> m.server) entries))
  in
  (p, a)

let stats t = { joins = t.joins; leaves = t.leaves; moves = t.moves }

let next_id t = t.next_id

let active_servers t =
  List.filter (fun s -> not t.failed.(s)) (List.init (k t) Fun.id)

let failed_servers t =
  List.filter (fun s -> t.failed.(s)) (List.init (k t) Fun.id)

let members t =
  Hashtbl.fold (fun id m acc -> (id, m.node, m.server) :: acc) t.members []
  |> List.sort compare

let standby_of t id =
  let m = find t id in
  if m.standby >= 0 then Some m.standby else None

let standbys t =
  Hashtbl.fold
    (fun id m acc -> if m.standby >= 0 then (id, m.standby) :: acc else acc)
    t.members []
  |> List.sort compare

let refresh_standbys t =
  let entries =
    Hashtbl.fold (fun id m acc -> (id, m) :: acc) t.members []
    |> List.sort (fun (a, _) (b, _) -> compare a b)
  in
  let old = List.map (fun (_, m) -> m.standby) entries in
  List.iter (fun (_, m) -> clear_standby t m) entries;
  List.iter (fun (_, m) -> select_standby t m) entries;
  List.fold_left2
    (fun changed (_, m) was -> if m.standby <> was then changed + 1 else changed)
    0 entries old

let standby_objective t s =
  if s < 0 || s >= k t then
    invalid_arg (Printf.sprintf "Dynamic.standby_objective: server %d out of range" s);
  let trial = Array.copy t.ecc in
  trial.(s) <- neg_infinity;
  Hashtbl.iter
    (fun _ m ->
      if m.server = s && m.standby >= 0 then
        trial.(m.standby) <-
          Float.max trial.(m.standby) (d_ns t m.node m.standby))
    t.members;
  objective_of t trial

(* Rebuild every cached eccentricity (and its backing multiset) from
   scratch in one member pass — needed after a drift change rescales
   distances wholesale. *)
let rebuild_ecc t =
  Array.fill t.ecc 0 (k t) neg_infinity;
  for s = 0 to k t - 1 do
    t.dists.(s) <- Fmap.empty
  done;
  Hashtbl.iter
    (fun _ m ->
      let d = d_ns t m.node m.server in
      mset_add t m.server d;
      t.ecc.(m.server) <- Float.max t.ecc.(m.server) d)
    t.members;
  t.d_dirty <- true;
  t.dl_dirty <- true;
  lb_invalidate t

let drift t s =
  if s < 0 || s >= k t then
    invalid_arg (Printf.sprintf "Dynamic.drift: server %d out of range" s);
  t.node_drift.(t.servers.(s))

let set_drift t ~server ~factor =
  if server < 0 || server >= k t then
    invalid_arg (Printf.sprintf "Dynamic.set_drift: server %d out of range" server);
  if not (Float.is_finite factor) || factor <= 0. then
    invalid_arg (Printf.sprintf "Dynamic.set_drift: factor %g invalid" factor);
  let sv = t.servers.(server) in
  if t.node_drift.(sv) <> factor then begin
    if t.matrix == t.base then t.matrix <- Matrix.copy t.base;
    t.node_drift.(sv) <- factor;
    let n = Matrix.dim t.base in
    for u = 0 to n - 1 do
      if u <> sv then
        (* The factor product is grouped apart from the base entry:
           [*.] is commutative, so [base *. (f_a *. f_b)] is bit-equal
           no matter which end drifted last — a restore that replays
           final factors in server order reproduces the incrementally
           drifted matrix exactly. Left-associated it would not
           ([base *. f_a *. f_b] vs [base *. f_b *. f_a] differ by
           ulps), which used to break kill/resume bit-identity. *)
        Matrix.set t.matrix u sv
          (Matrix.get t.base u sv *. (factor *. t.node_drift.(u)))
    done;
    (* The index read the pre-drift entries; next query rebuilds it. *)
    t.landmark <- None;
    rebuild_ecc t
  end

let restore ?capacity ?delay ?(standbys = []) matrix ~servers ~members:member_list
    ~next_id ~failed ~drift:drift_list ~stats:(s : stats) =
  let t = create ?capacity ?delay matrix ~servers in
  List.iter
    (fun srv ->
      if srv < 0 || srv >= k t then
        invalid_arg (Printf.sprintf "Dynamic.restore: failed server %d out of range" srv);
      t.failed.(srv) <- true)
    failed;
  List.iter (fun (server, factor) -> set_drift t ~server ~factor) drift_list;
  List.iter
    (fun (id, node, server) ->
      if node < 0 || node >= Matrix.dim matrix then
        invalid_arg (Printf.sprintf "Dynamic.restore: node %d out of range" node);
      if server < 0 || server >= k t then
        invalid_arg (Printf.sprintf "Dynamic.restore: server %d out of range" server);
      if t.failed.(server) then
        invalid_arg (Printf.sprintf "Dynamic.restore: member on failed server %d" server);
      if Hashtbl.mem t.members id then
        invalid_arg (Printf.sprintf "Dynamic.restore: duplicate client id %d" id);
      if t.load.(server) >= t.capacity then
        invalid_arg (Printf.sprintf "Dynamic.restore: server %d over capacity" server);
      Hashtbl.replace t.members id { node; server; standby = -1 };
      t.load.(server) <- t.load.(server) + 1;
      ecc_add t server (d_ns t node server);
      node_add t node;
      if id >= next_id then
        invalid_arg (Printf.sprintf "Dynamic.restore: client id %d >= next_id" id))
    member_list;
  List.iter
    (fun (id, sb) ->
      match Hashtbl.find_opt t.members id with
      | None ->
          invalid_arg
            (Printf.sprintf "Dynamic.restore: standby for unknown client %d" id)
      | Some m ->
          if sb < 0 || sb >= k t then
            invalid_arg (Printf.sprintf "Dynamic.restore: standby %d out of range" sb);
          if t.failed.(sb) then
            invalid_arg (Printf.sprintf "Dynamic.restore: standby on failed server %d" sb);
          if sb = m.server then
            invalid_arg
              (Printf.sprintf "Dynamic.restore: client %d standby equals primary" id);
          if m.standby >= 0 then
            invalid_arg
              (Printf.sprintf "Dynamic.restore: duplicate standby for client %d" id);
          m.standby <- sb;
          t.sb_load.(m.server).(sb) <- t.sb_load.(m.server).(sb) + 1)
    standbys;
  t.next_id <- next_id;
  t.joins <- s.joins;
  t.leaves <- s.leaves;
  t.moves <- s.moves;
  t

let check_failable t s ~label =
  if s < 0 || s >= k t then
    invalid_arg (Printf.sprintf "Dynamic.%s: server %d out of range" label s);
  if t.failed.(s) then
    invalid_arg (Printf.sprintf "Dynamic.%s: server %d already failed" label s);
  if List.for_all (fun s' -> s' = s || t.failed.(s')) (List.init (k t) Fun.id) then
    invalid_arg
      (Printf.sprintf "Dynamic.%s: server %d is the last live server" label s)

(* Common prologue of both failover paths: mark [s] failed, collect its
   orphans (ascending id, each with the standby it held at crash time),
   release every reservation touching [s] — the orphans' own (row [s])
   and those of members elsewhere whose standby {e was} [s] (column
   [s]) — and zero the dead server's caches. Returns the orphans and the
   ids whose standby was invalidated. *)
let fail_prologue t s =
  t.failed.(s) <- true;
  let orphans =
    Hashtbl.fold
      (fun id member acc -> if member.server = s then (id, member) :: acc else acc)
      t.members []
    |> List.sort (fun (a, _) (b, _) -> compare a b)
  in
  let orphans = List.map (fun (id, m) -> (id, m, m.standby)) orphans in
  List.iter (fun (_, m, _) -> clear_standby t m) orphans;
  let invalidated = ref [] in
  Hashtbl.iter
    (fun id m ->
      if m.standby = s then begin
        clear_standby t m;
        invalidated := id :: !invalidated
      end)
    t.members;
  t.load.(s) <- 0;
  t.ecc.(s) <- neg_infinity;
  t.dists.(s) <- Fmap.empty;
  t.d_dirty <- true;
  t.dl_dirty <- true;
  lb_invalidate t;
  (orphans, !invalidated)

(* Least-loaded live server with a free slot, ties to the lowest index;
   -1 when every live server is saturated. *)
let least_loaded_feasible t =
  let fb = ref (-1) in
  for s' = k t - 1 downto 0 do
    if (not t.failed.(s')) && t.load.(s') < t.capacity
       && (!fb < 0 || t.load.(s') <= t.load.(!fb))
    then fb := s'
  done;
  !fb

(* Fresh standbys for the members a failure touched: surviving orphans
   (their primary changed) and members whose standby pointed at the dead
   server — in ascending id order so resumes replay identically. *)
let rearm_standbys t ~orphans ~invalidated =
  List.filter_map
    (fun (id, _, _) -> if Hashtbl.mem t.members id then Some id else None)
    orphans
  @ invalidated
  |> List.sort_uniq compare
  |> List.iter (fun id -> select_standby t (Hashtbl.find t.members id))

(* Take [s] down and re-home its clients in ascending id order. Each
   orphan is placed greedily (the join rule) over the servers that still
   have room once the co-orphans' outstanding standby reservations are
   discounted — greedy never steals a slot reserved for a later orphan.
   When greedy finds nothing the orphan falls back to its own standby,
   then to the least-loaded server with any free slot; only when every
   live server is saturated is it disconnected and returned in the
   stranded list as an [(id, node)] pair. *)
let fail_server_partial t s =
  let orphans, invalidated = fail_prologue t s in
  let reserved = Array.make (k t) 0 in
  List.iter
    (fun (_, _, sb) -> if sb >= 0 then reserved.(sb) <- reserved.(sb) + 1)
    orphans;
  let migrated = ref 0 and stranded = ref [] in
  List.iter
    (fun (id, member, sb) ->
      (* Same objective switch as the join scan: with a delay model the
         orphan is re-homed by resulting D_load. *)
      let current =
        match t.delay with None -> objective t | Some _ -> objective_load t
      in
      let lb = query_bounds t member.node in
      let best = ref (-1) and best_d = ref infinity in
      for s' = 0 to k t - 1 do
        let spare = reserved.(s') - (if sb = s' then 1 else 0) in
        if
          (not t.failed.(s'))
          && t.load.(s') + spare < t.capacity
          && 2. *. Array.unsafe_get lb s' < !best_d
        then begin
          let cost =
            match t.delay with
            | None -> attach_cost t t.ecc member.node s'
            | Some dl -> attach_cost_load_arrays t dl t.ecc t.load member.node s'
          in
          let resulting = Float.max current cost in
          if resulting < !best_d then begin
            best_d := resulting;
            best := s'
          end
        end
      done;
      let target =
        if !best >= 0 then !best
        else if sb >= 0 && (not t.failed.(sb)) && t.load.(sb) < t.capacity then sb
        else least_loaded_feasible t
      in
      if sb >= 0 then reserved.(sb) <- reserved.(sb) - 1;
      if target < 0 then begin
        Hashtbl.remove t.members id;
        node_remove t member.node;
        stranded := (id, member.node) :: !stranded
      end
      else begin
        member.server <- target;
        t.load.(target) <- t.load.(target) + 1;
        ecc_add t target (d_ns t member.node target);
        t.moves <- t.moves + 1;
        incr migrated
      end)
    orphans;
  rearm_standbys t ~orphans ~invalidated;
  (!migrated, List.rev !stranded)

let fail_server t s =
  check_failable t s ~label:"fail_server";
  let orphans =
    Hashtbl.fold (fun _ m acc -> if m.server = s then acc + 1 else acc) t.members 0
  in
  let surviving_capacity =
    List.fold_left
      (fun acc s' ->
        if s' = s || t.capacity = max_int then acc
        else acc + (t.capacity - t.load.(s')))
      (if t.capacity = max_int then max_int else 0)
      (active_servers t)
  in
  if surviving_capacity < orphans then
    failwith "Dynamic.fail_server: surviving servers cannot host the orphans";
  let migrated, stranded = fail_server_partial t s in
  assert (stranded = []);
  migrated

type degradation = {
  failed_server : int;
  migrated : int;
  stranded : (client_id * int) list;
  objective_before : float;
  objective_after : float;
  objective_resolve : float;
  factor : float;
}

let fail_server_report t s =
  check_failable t s ~label:"fail_server_report";
  let objective_before = objective t in
  let migrated, stranded = fail_server_partial t s in
  let objective_after = objective t in
  (* Fresh greedy re-solve over the surviving servers, same clients —
     the quality a from-scratch assignment would reach, against which
     the incremental migration is judged. *)
  let survivors = Array.of_list (List.map (fun s' -> t.servers.(s')) (active_servers t)) in
  let entries =
    Hashtbl.fold (fun id member acc -> (id, member) :: acc) t.members []
    |> List.sort (fun (a, _) (b, _) -> compare a b)
  in
  let clients = Array.of_list (List.map (fun (_, m) -> m.node) entries) in
  let objective_resolve =
    if Array.length clients = 0 then neg_infinity
    else begin
      let capacity = if t.capacity = max_int then None else Some t.capacity in
      let p = Problem.make ?capacity ~latency:t.matrix ~servers:survivors ~clients () in
      Objective.max_interaction_path p (Greedy.assign p)
    end
  in
  let factor =
    if Array.length clients = 0 || objective_resolve <= 0. then 1.
    else objective_after /. objective_resolve
  in
  { failed_server = s; migrated; stranded; objective_before; objective_after;
    objective_resolve; factor }

type promotion = {
  failed_server : int;
  promoted : int;
  fallback : int;
  stranded : (client_id * int) list;
  objective_before : float;
  objective_after : float;
  promised : float;
}

(* The O(1)-per-client repair path: each orphan moves straight to its
   armed standby — a constant-time reassignment (load bump, multiset
   eccentricity update), no objective scan. The reservation matrix
   guaranteed headroom at arm time, so under stable load every orphan's
   slot is waiting; when load grew since (or the orphan had no standby),
   the least-loaded feasible server catches it, and only a fully
   saturated system strands anyone. *)
let promote_standby t s =
  check_failable t s ~label:"promote_standby";
  let objective_before = objective t in
  let promised = standby_objective t s in
  let orphans, invalidated = fail_prologue t s in
  let promoted = ref 0 and fallback = ref 0 and stranded = ref [] in
  List.iter
    (fun (id, member, sb) ->
      let target, via_standby =
        if sb >= 0 && (not t.failed.(sb)) && t.load.(sb) < t.capacity then
          (sb, true)
        else (least_loaded_feasible t, false)
      in
      if target < 0 then begin
        Hashtbl.remove t.members id;
        node_remove t member.node;
        stranded := (id, member.node) :: !stranded
      end
      else begin
        member.server <- target;
        t.load.(target) <- t.load.(target) + 1;
        ecc_add t target (d_ns t member.node target);
        t.moves <- t.moves + 1;
        if via_standby then incr promoted else incr fallback
      end)
    orphans;
  rearm_standbys t ~orphans ~invalidated;
  {
    failed_server = s;
    promoted = !promoted;
    fallback = !fallback;
    stranded = List.rev !stranded;
    objective_before;
    objective_after = objective t;
    promised;
  }

let recover_server t s =
  if s < 0 || s >= k t then
    invalid_arg (Printf.sprintf "Dynamic.recover_server: server %d out of range" s);
  if not t.failed.(s) then
    invalid_arg (Printf.sprintf "Dynamic.recover_server: server %d is not failed" s);
  t.failed.(s) <- false;
  lb_invalidate t
