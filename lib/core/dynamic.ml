module Matrix = Dia_latency.Matrix

type client_id = int

type member = { node : int; mutable server : int }

type stats = { joins : int; leaves : int; moves : int }

type t = {
  matrix : Matrix.t;
  servers : int array;
  capacity : int;
  members : (client_id, member) Hashtbl.t;
  load : int array;
  ecc : float array;
  failed : bool array;
  mutable next_id : int;
  mutable joins : int;
  mutable leaves : int;
  mutable moves : int;
}

let create ?capacity matrix ~servers =
  if Array.length servers = 0 then invalid_arg "Dynamic.create: no servers";
  Array.iter
    (fun s ->
      if s < 0 || s >= Matrix.dim matrix then
        invalid_arg (Printf.sprintf "Dynamic.create: server node %d out of range" s))
    servers;
  (match capacity with
  | Some c when c <= 0 -> invalid_arg "Dynamic.create: capacity must be positive"
  | _ -> ());
  let k = Array.length servers in
  {
    matrix;
    servers = Array.copy servers;
    capacity = Option.value ~default:max_int capacity;
    members = Hashtbl.create 64;
    load = Array.make k 0;
    ecc = Array.make k neg_infinity;
    failed = Array.make k false;
    next_id = 0;
    joins = 0;
    leaves = 0;
    moves = 0;
  }

let k t = Array.length t.servers

let d_ns t node s = Matrix.get t.matrix node t.servers.(s)
let d_ss t s1 s2 = Matrix.get t.matrix t.servers.(s1) t.servers.(s2)

let objective_of t ecc =
  let best = ref neg_infinity in
  for s1 = 0 to k t - 1 do
    if ecc.(s1) > neg_infinity then
      for s2 = s1 to k t - 1 do
        if ecc.(s2) > neg_infinity then begin
          let len = ecc.(s1) +. d_ss t s1 s2 +. ecc.(s2) in
          if len > !best then best := len
        end
      done
  done;
  !best

let objective t = objective_of t t.ecc

(* Longest interaction path involving a node attached to server [s],
   given the other servers' eccentricities. *)
let attach_cost t ecc node s =
  let d = d_ns t node s in
  let worst = ref (2. *. d) in
  for s'' = 0 to k t - 1 do
    if ecc.(s'') > neg_infinity then begin
      let len = d +. d_ss t s s'' +. ecc.(s'') in
      if len > !worst then worst := len
    end
  done;
  !worst

let join t ~node =
  if node < 0 || node >= Matrix.dim t.matrix then
    invalid_arg (Printf.sprintf "Dynamic.join: node %d out of range" node);
  let current = objective t in
  let best = ref (-1) and best_d = ref infinity in
  for s = 0 to k t - 1 do
    if (not t.failed.(s)) && t.load.(s) < t.capacity then begin
      let resulting = Float.max current (attach_cost t t.ecc node s) in
      if resulting < !best_d then begin
        best_d := resulting;
        best := s
      end
    end
  done;
  if !best < 0 then failwith "Dynamic.join: all servers saturated";
  let s = !best in
  let id = t.next_id in
  t.next_id <- id + 1;
  Hashtbl.replace t.members id { node; server = s };
  t.load.(s) <- t.load.(s) + 1;
  t.ecc.(s) <- Float.max t.ecc.(s) (d_ns t node s);
  t.joins <- t.joins + 1;
  id

let find t id =
  match Hashtbl.find_opt t.members id with
  | Some member -> member
  | None -> invalid_arg (Printf.sprintf "Dynamic: unknown client id %d" id)

let recompute_ecc t s =
  let worst = ref neg_infinity in
  Hashtbl.iter
    (fun _ member ->
      if member.server = s then worst := Float.max !worst (d_ns t member.node s))
    t.members;
  t.ecc.(s) <- !worst

let leave t id =
  let member = find t id in
  Hashtbl.remove t.members id;
  t.load.(member.server) <- t.load.(member.server) - 1;
  recompute_ecc t member.server;
  t.leaves <- t.leaves + 1

let server_of t id = (find t id).server

let num_clients t = Hashtbl.length t.members

(* Eccentricity of server [s] excluding one specific member. *)
let ecc_excluding t s excluded_id =
  let worst = ref neg_infinity in
  Hashtbl.iter
    (fun id member ->
      if member.server = s && id <> excluded_id then
        worst := Float.max !worst (d_ns t member.node s))
    t.members;
  !worst

let rebalance ?(max_moves = max_int) t =
  let moves = ref 0 in
  let continue = ref true in
  while !continue && !moves < max_moves do
    let d = objective t in
    (* Clients realising their server's eccentricity on a longest pair. *)
    let on_longest = Array.make (k t) false in
    for s1 = 0 to k t - 1 do
      if t.ecc.(s1) > neg_infinity then
        for s2 = s1 to k t - 1 do
          if t.ecc.(s2) > neg_infinity
             && t.ecc.(s1) +. d_ss t s1 s2 +. t.ecc.(s2) >= d -. 1e-9
          then begin
            on_longest.(s1) <- true;
            on_longest.(s2) <- true
          end
        done
    done;
    let candidates =
      Hashtbl.fold
        (fun id member acc ->
          if on_longest.(member.server)
             && d_ns t member.node member.server >= t.ecc.(member.server) -. 1e-9
          then (id, member) :: acc
          else acc)
        t.members []
      |> List.sort (fun (a, _) (b, _) -> compare a b)
    in
    let try_move (id, member) =
      let old_s = member.server in
      let trial = Array.copy t.ecc in
      trial.(old_s) <- ecc_excluding t old_s id;
      let d_rest = objective_of t trial in
      let best = ref (-1) and best_d = ref infinity in
      for s = 0 to k t - 1 do
        if s <> old_s && (not t.failed.(s)) && t.load.(s) < t.capacity then begin
          let resulting = Float.max d_rest (attach_cost t trial member.node s) in
          if resulting < !best_d then begin
            best_d := resulting;
            best := s
          end
        end
      done;
      if !best >= 0 && !best_d < d -. 1e-12 then begin
        let s = !best in
        t.load.(old_s) <- t.load.(old_s) - 1;
        t.load.(s) <- t.load.(s) + 1;
        member.server <- s;
        t.ecc.(old_s) <- trial.(old_s);
        t.ecc.(s) <- Float.max trial.(s) (d_ns t member.node s);
        t.moves <- t.moves + 1;
        incr moves;
        true
      end
      else false
    in
    if not (List.exists try_move candidates) then continue := false
  done;
  !moves

let snapshot t =
  if num_clients t = 0 then invalid_arg "Dynamic.snapshot: no clients";
  let entries =
    Hashtbl.fold (fun id member acc -> (id, member) :: acc) t.members []
    |> List.sort (fun (a, _) (b, _) -> compare a b)
  in
  let clients = Array.of_list (List.map (fun (_, m) -> m.node) entries) in
  let capacity = if t.capacity = max_int then None else Some t.capacity in
  let p = Problem.make ?capacity ~latency:t.matrix ~servers:t.servers ~clients () in
  let a =
    Assignment.of_array p (Array.of_list (List.map (fun (_, m) -> m.server) entries))
  in
  (p, a)

let stats t = { joins = t.joins; leaves = t.leaves; moves = t.moves }

let active_servers t =
  List.filter (fun s -> not t.failed.(s)) (List.init (k t) Fun.id)

let fail_server t s =
  if s < 0 || s >= k t then
    invalid_arg (Printf.sprintf "Dynamic.fail_server: server %d out of range" s);
  if t.failed.(s) then
    invalid_arg (Printf.sprintf "Dynamic.fail_server: server %d already failed" s);
  t.failed.(s) <- true;
  let orphans =
    Hashtbl.fold
      (fun id member acc -> if member.server = s then (id, member) :: acc else acc)
      t.members []
    |> List.sort (fun (a, _) (b, _) -> compare a b)
  in
  let surviving_capacity =
    List.fold_left
      (fun acc s' ->
        if t.capacity = max_int then max_int
        else acc + (t.capacity - t.load.(s')))
      0 (active_servers t)
  in
  if surviving_capacity < List.length orphans then begin
    t.failed.(s) <- false;
    failwith "Dynamic.fail_server: surviving servers cannot host the orphans"
  end;
  t.load.(s) <- 0;
  t.ecc.(s) <- neg_infinity;
  (* Greedy re-homing, one orphan at a time (same rule as join). *)
  List.iter
    (fun (_, member) ->
      let current = objective t in
      let best = ref (-1) and best_d = ref infinity in
      for s' = 0 to k t - 1 do
        if (not t.failed.(s')) && t.load.(s') < t.capacity then begin
          let resulting = Float.max current (attach_cost t t.ecc member.node s') in
          if resulting < !best_d then begin
            best_d := resulting;
            best := s'
          end
        end
      done;
      assert (!best >= 0);
      member.server <- !best;
      t.load.(!best) <- t.load.(!best) + 1;
      t.ecc.(!best) <- Float.max t.ecc.(!best) (d_ns t member.node !best);
      t.moves <- t.moves + 1)
    orphans;
  List.length orphans

type degradation = {
  failed_server : int;
  migrated : int;
  objective_before : float;
  objective_after : float;
  objective_resolve : float;
  factor : float;
}

let fail_server_report t s =
  let objective_before = objective t in
  let migrated = fail_server t s in
  let objective_after = objective t in
  (* Fresh greedy re-solve over the surviving servers, same clients —
     the quality a from-scratch assignment would reach, against which
     the incremental migration is judged. *)
  let survivors = Array.of_list (List.map (fun s' -> t.servers.(s')) (active_servers t)) in
  let entries =
    Hashtbl.fold (fun id member acc -> (id, member) :: acc) t.members []
    |> List.sort (fun (a, _) (b, _) -> compare a b)
  in
  let clients = Array.of_list (List.map (fun (_, m) -> m.node) entries) in
  let objective_resolve =
    if Array.length clients = 0 then neg_infinity
    else begin
      let capacity = if t.capacity = max_int then None else Some t.capacity in
      let p = Problem.make ?capacity ~latency:t.matrix ~servers:survivors ~clients () in
      Objective.max_interaction_path p (Greedy.assign p)
    end
  in
  let factor =
    if Array.length clients = 0 || objective_resolve <= 0. then 1.
    else objective_after /. objective_resolve
  in
  { failed_server = s; migrated; objective_before; objective_after;
    objective_resolve; factor }

let recover_server t s =
  if s < 0 || s >= k t then
    invalid_arg (Printf.sprintf "Dynamic.recover_server: server %d out of range" s);
  if not t.failed.(s) then
    invalid_arg (Printf.sprintf "Dynamic.recover_server: server %d is not failed" s);
  t.failed.(s) <- false
