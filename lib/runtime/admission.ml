type decision = Admit | Queue | Shed

type t = {
  max_queue : int;
  mutable queue : (int * int) list;
  mutable admitted : int;
  mutable queued : int;
  mutable shed : int;
  mutable drained : int;
  mutable abandoned : int;
}

let create ~max_queue =
  if max_queue < 0 then invalid_arg "Admission.create: max_queue < 0";
  {
    max_queue;
    queue = [];
    admitted = 0;
    queued = 0;
    shed = 0;
    drained = 0;
    abandoned = 0;
  }

let consider t ~level ~has_capacity ~session ~node =
  match (level : Slo.level) with
  | Critical ->
      t.shed <- t.shed + 1;
      Shed
  | Degraded | Healthy ->
      if level = Healthy && has_capacity then begin
        t.admitted <- t.admitted + 1;
        Admit
      end
      else if List.length t.queue < t.max_queue then begin
        t.queue <- t.queue @ [ (session, node) ];
        t.queued <- t.queued + 1;
        Queue
      end
      else begin
        t.shed <- t.shed + 1;
        Shed
      end

let pop t =
  match t.queue with
  | [] -> None
  | entry :: rest ->
      t.queue <- rest;
      t.drained <- t.drained + 1;
      Some entry

let abandon t ~session =
  let before = List.length t.queue in
  t.queue <- List.filter (fun (s, _) -> s <> session) t.queue;
  let hit = List.length t.queue < before in
  if hit then t.abandoned <- t.abandoned + 1;
  hit

let pending t = List.length t.queue
