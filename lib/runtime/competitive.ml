type trace_result = {
  index : int;
  seed : int;
  samples : int;
  mean : float;
  max : float;
  final : float;
}

type summary = {
  traces : int;
  bound : float;
  samples : int;
  mean : float;
  max : float;
  ok : bool;
  per_trace : trace_result list;
}

let default_bound = 4.0

let fs = Codec.float_str

let run ?(traces = 20) ?(bound = default_bound) scenario config =
  if traces < 1 then invalid_arg "Competitive.run: traces must be >= 1";
  if not (Float.is_finite bound) || bound < 1. then
    invalid_arg "Competitive.run: bound must be finite and >= 1";
  let per_trace =
    List.init traces (fun i ->
        let sc = { scenario with Soak.seed = scenario.Soak.seed + i } in
        let cf = { config with Soak.offline_baseline = true } in
        match Soak.run sc cf with
        | Soak.Killed _ -> assert false (* no kill_after was requested *)
        | Soak.Completed r ->
            let final =
              match List.rev r.Soak.baseline_points with
              | (_, online, resolve) :: _
                when resolve > 0. && Float.is_finite online ->
                  online /. resolve
              | _ -> nan
            in
            {
              index = i;
              seed = sc.Soak.seed;
              samples = List.length r.Soak.baseline_points;
              mean = r.Soak.competitive_mean;
              max = r.Soak.competitive_max;
              final;
            })
  in
  let measured =
    List.filter (fun (t : trace_result) -> Float.is_finite t.max) per_trace
  in
  let samples =
    List.fold_left (fun acc (t : trace_result) -> acc + t.samples) 0 per_trace
  in
  let mean =
    match measured with
    | [] -> nan
    | _ ->
        List.fold_left (fun acc (t : trace_result) -> acc +. t.mean) 0. measured
        /. float_of_int (List.length measured)
  in
  let max =
    match measured with
    | [] -> nan
    | (t : trace_result) :: rest ->
        List.fold_left
          (fun acc (t : trace_result) -> Float.max acc t.max)
          t.max rest
  in
  (* A harness that measured nothing proves nothing: [ok] demands at
     least one sampled ratio besides the bound holding everywhere. *)
  let ok = Float.is_finite max && max <= bound in
  { traces; bound; samples; mean; max; ok; per_trace }

let to_csv s =
  let b = Buffer.create 1024 in
  Buffer.add_string b "trace,seed,samples,mean,max,final\n";
  List.iter
    (fun t ->
      Buffer.add_string b
        (Printf.sprintf "%d,%d,%d,%s,%s,%s\n" t.index t.seed t.samples
           (fs t.mean) (fs t.max) (fs t.final)))
    s.per_trace;
  Buffer.contents b

let render s =
  let b = Buffer.create 1024 in
  let line fmt = Printf.ksprintf (fun l -> Buffer.add_string b (l ^ "\n")) fmt in
  line "competitive-ratio harness: %d traces, bound %s" s.traces (fs s.bound);
  List.iter
    (fun t ->
      line "  trace %2d seed %d: samples=%d mean=%s max=%s final=%s" t.index
        t.seed t.samples (fs t.mean) (fs t.max) (fs t.final))
    s.per_trace;
  line "  aggregate: samples=%d mean=%s max=%s" s.samples (fs s.mean) (fs s.max);
  line "  empirical competitive ratio %s %s bound %s: %s" (fs s.max)
    (if s.ok then "<=" else "exceeds")
    (fs s.bound)
    (if s.ok then "OK" else "VIOLATED");
  Buffer.contents b
