type kind =
  | Join of { session : int; node : int }
  | Leave of { session : int }
  | Crash of { server : int }
  | Recover of { server : int }
  | Drift of { server : int; factor : float }

type event = { time : float; kind : kind }

type t = event array

let churn ~seed ~nodes ~rate ~mean_lifetime ~horizon =
  if nodes <= 0 then invalid_arg "Trace.churn: nodes must be positive";
  if rate <= 0. || not (Float.is_finite rate) then
    invalid_arg "Trace.churn: rate must be positive";
  if mean_lifetime <= 0. || not (Float.is_finite mean_lifetime) then
    invalid_arg "Trace.churn: mean_lifetime must be positive";
  if horizon < 0. || not (Float.is_finite horizon) then
    invalid_arg "Trace.churn: horizon must be non-negative";
  let rng = Random.State.make [| seed; 0x6368 |] in
  let events = ref [] in
  let session = ref 0 in
  let t = ref 0. in
  let continue = ref true in
  while !continue do
    let gap = -.log (1. -. Random.State.float rng 1.) /. rate in
    t := !t +. gap;
    if !t > horizon then continue := false
    else begin
      let node = Random.State.int rng nodes in
      let lifetime =
        -.log (1. -. Random.State.float rng 1.) *. mean_lifetime
      in
      let s = !session in
      incr session;
      events := { time = !t; kind = Join { session = s; node } } :: !events;
      let leave_at = !t +. lifetime in
      if leave_at <= horizon then
        events := { time = leave_at; kind = Leave { session = s } } :: !events
    end
  done;
  List.rev !events

let drift_walk ~seed ~servers ~period ~amplitude ~horizon =
  if servers <= 0 then invalid_arg "Trace.drift_walk: servers must be positive";
  if period <= 0. || not (Float.is_finite period) then
    invalid_arg "Trace.drift_walk: period must be positive";
  if amplitude < 0. || amplitude > 1. || not (Float.is_finite amplitude) then
    invalid_arg "Trace.drift_walk: amplitude outside [0, 1]";
  if horizon < 0. || not (Float.is_finite horizon) then
    invalid_arg "Trace.drift_walk: horizon must be non-negative";
  let rng = Random.State.make [| seed; 0x6472 |] in
  let events = ref [] in
  let t = ref period in
  while !t <= horizon do
    let server = Random.State.int rng servers in
    let factor =
      Float.max 0.05 (1. -. amplitude +. (2. *. amplitude *. Random.State.float rng 1.))
    in
    events := { time = !t; kind = Drift { server; factor } } :: !events;
    t := !t +. period
  done;
  List.rev !events

let crashes_of_plan plan ~servers =
  List.concat_map
    (fun (actor, at, recover_at) ->
      if actor < 0 || actor >= servers then []
      else
        ({ time = at; kind = Crash { server = actor } }
        ::
        (match recover_at with
        | None -> []
        | Some r -> [ { time = r; kind = Recover { server = actor } } ])))
    (Dia_sim.Fault.crash_schedule plan)

let merge ~horizon streams =
  let tagged =
    List.concat
      (List.mapi
         (fun stream events ->
           List.mapi (fun i e -> (e.time, stream, i, e)) events)
         streams)
  in
  let kept = List.filter (fun (t, _, _, _) -> t <= horizon) tagged in
  let sorted =
    List.sort
      (fun (t1, s1, i1, _) (t2, s2, i2, _) ->
        compare (t1, s1, i1) (t2, s2, i2))
      kept
  in
  Array.of_list (List.map (fun (_, _, _, e) -> e) sorted)
