type kind =
  | Join of { session : int; client : int; server : int }
  | Queued of { session : int }
  | Drained of { session : int; client : int; server : int }
  | Shed of { session : int }
  | Leave of { session : int; client : int }
  | Crash of { server : int; migrated : int; stranded : int }
  | Crash_skipped of { server : int }
  | Promote of { server : int; promoted : int; fallback : int; stranded : int }
  | Standby_refresh of { changed : int }
  | Standby_breach of { ratio : float; bound : float }
  | Recover of { server : int }
  | Drift of { server : int; factor : float }
  | Transition of {
      from_ : Slo.level;
      to_ : Slo.level;
      ratio : float;
      objective : string;  (** which objective drove it: "d" or "d_load" *)
    }
  | Repair of { moves : int; budget : int; before : float; after : float }
  | Protocol_repair of {
      attempt : int;
      stalled : bool;
      moves : int;
      applied : bool;
    }
  | Checkpoint of { id : int }
  | Recovery of { generation : int; skipped : int; replayed : int }

type entry = { time : float; kind : kind }

let level_str = Slo.level_name

let level_of_str = function
  | "healthy" -> Slo.Healthy
  | "degraded" -> Slo.Degraded
  | "critical" -> Slo.Critical
  | other -> failwith (Printf.sprintf "Event_log: unknown level %S" other)

let kind_to_string = function
  | Join { session; client; server } ->
      Printf.sprintf "join session=%d client=%d server=%d" session client server
  | Queued { session } -> Printf.sprintf "queued session=%d" session
  | Drained { session; client; server } ->
      Printf.sprintf "drained session=%d client=%d server=%d" session client
        server
  | Shed { session } -> Printf.sprintf "shed session=%d" session
  | Leave { session; client } ->
      Printf.sprintf "leave session=%d client=%d" session client
  | Crash { server; migrated; stranded } ->
      Printf.sprintf "crash server=%d migrated=%d stranded=%d" server migrated
        stranded
  | Crash_skipped { server } -> Printf.sprintf "crash-skipped server=%d" server
  | Promote { server; promoted; fallback; stranded } ->
      Printf.sprintf "promote server=%d promoted=%d fallback=%d stranded=%d"
        server promoted fallback stranded
  | Standby_refresh { changed } ->
      Printf.sprintf "standby-refresh changed=%d" changed
  | Standby_breach { ratio; bound } ->
      Printf.sprintf "standby-breach ratio=%s bound=%s" (Codec.float_str ratio)
        (Codec.float_str bound)
  | Recover { server } -> Printf.sprintf "recover server=%d" server
  | Drift { server; factor } ->
      Printf.sprintf "drift server=%d factor=%s" server (Codec.float_str factor)
  | Transition { from_; to_; ratio; objective } ->
      Printf.sprintf "slo from=%s to=%s ratio=%s objective=%s" (level_str from_)
        (level_str to_) (Codec.float_str ratio) objective
  | Repair { moves; budget; before; after } ->
      Printf.sprintf "repair moves=%d budget=%d before=%s after=%s" moves budget
        (Codec.float_str before) (Codec.float_str after)
  | Protocol_repair { attempt; stalled; moves; applied } ->
      Printf.sprintf "protocol-repair attempt=%d stalled=%b moves=%d applied=%b"
        attempt stalled moves applied
  | Checkpoint { id } -> Printf.sprintf "checkpoint id=%d" id
  | Recovery { generation; skipped; replayed } ->
      Printf.sprintf "recovery generation=%d skipped=%d replayed=%d" generation
        skipped replayed

let to_line e = Printf.sprintf "t=%s %s" (Codec.float_str e.time) (kind_to_string e.kind)

(* Parsing: "t=<float> <tag> k=v k=v ...". *)

let field fields key =
  match List.assoc_opt key fields with
  | Some v -> v
  | None -> failwith (Printf.sprintf "Event_log: missing field %S" key)

let int_field fields key =
  match int_of_string_opt (field fields key) with
  | Some i -> i
  | None -> failwith (Printf.sprintf "Event_log: field %S is not an integer" key)

let float_field fields key = Codec.float_of_str (field fields key)

let bool_field fields key =
  match field fields key with
  | "true" -> true
  | "false" -> false
  | other -> failwith (Printf.sprintf "Event_log: field %S = %S not a bool" key other)

let kind_of ~tag fields =
  match tag with
  | "join" ->
      Join
        {
          session = int_field fields "session";
          client = int_field fields "client";
          server = int_field fields "server";
        }
  | "queued" -> Queued { session = int_field fields "session" }
  | "drained" ->
      Drained
        {
          session = int_field fields "session";
          client = int_field fields "client";
          server = int_field fields "server";
        }
  | "shed" -> Shed { session = int_field fields "session" }
  | "leave" ->
      Leave
        { session = int_field fields "session"; client = int_field fields "client" }
  | "crash" ->
      Crash
        {
          server = int_field fields "server";
          migrated = int_field fields "migrated";
          stranded = int_field fields "stranded";
        }
  | "crash-skipped" -> Crash_skipped { server = int_field fields "server" }
  | "promote" ->
      Promote
        {
          server = int_field fields "server";
          promoted = int_field fields "promoted";
          fallback = int_field fields "fallback";
          stranded = int_field fields "stranded";
        }
  | "standby-refresh" -> Standby_refresh { changed = int_field fields "changed" }
  | "standby-breach" ->
      Standby_breach
        { ratio = float_field fields "ratio"; bound = float_field fields "bound" }
  | "recover" -> Recover { server = int_field fields "server" }
  | "drift" ->
      Drift
        { server = int_field fields "server"; factor = float_field fields "factor" }
  | "slo" ->
      Transition
        {
          from_ = level_of_str (field fields "from");
          to_ = level_of_str (field fields "to");
          ratio = float_field fields "ratio";
          (* Absent in logs written before load-aware objectives
             existed; those transitions were all driven by plain D. *)
          objective = Option.value ~default:"d" (List.assoc_opt "objective" fields);
        }
  | "repair" ->
      Repair
        {
          moves = int_field fields "moves";
          budget = int_field fields "budget";
          before = float_field fields "before";
          after = float_field fields "after";
        }
  | "protocol-repair" ->
      Protocol_repair
        {
          attempt = int_field fields "attempt";
          stalled = bool_field fields "stalled";
          moves = int_field fields "moves";
          applied = bool_field fields "applied";
        }
  | "checkpoint" -> Checkpoint { id = int_field fields "id" }
  | "recovery" ->
      Recovery
        {
          generation = int_field fields "generation";
          skipped = int_field fields "skipped";
          replayed = int_field fields "replayed";
        }
  | other -> failwith (Printf.sprintf "Event_log: unknown record %S" other)

let of_line line =
  try
    match String.split_on_char ' ' (String.trim line) with
    | time :: tag :: rest ->
        let time =
          match String.split_on_char '=' time with
          | [ "t"; v ] -> Codec.float_of_str v
          | _ -> failwith "Event_log: line must start with t=<time>"
        in
        let fields =
          List.map
            (fun kv ->
              match String.index_opt kv '=' with
              | Some i ->
                  ( String.sub kv 0 i,
                    String.sub kv (i + 1) (String.length kv - i - 1) )
              | None -> failwith (Printf.sprintf "Event_log: bad field %S" kv))
            rest
        in
        Ok { time; kind = kind_of ~tag fields }
    | _ -> Error (Printf.sprintf "Event_log: malformed line %S" line)
  with Failure m -> Error m

let render entries =
  String.concat "" (List.map (fun e -> to_line e ^ "\n") entries)

let save path entries =
  let oc = open_out path in
  output_string oc (render entries);
  close_out oc

let load path =
  let ic = open_in path in
  let rec read acc =
    match input_line ic with
    | exception End_of_file -> List.rev acc
    | line -> read (line :: acc)
  in
  let lines = read [] in
  close_in ic;
  let rec parse acc = function
    | [] -> Ok (List.rev acc)
    | line :: rest ->
        if String.trim line = "" then parse acc rest
        else (
          match of_line line with
          | Ok entry -> parse (entry :: acc) rest
          | Error m -> Error m)
  in
  parse [] lines
