module Fault = Dia_sim.Fault

type t = {
  rules : Fault.disk_rule list;
  mutable ckpt_ops : int;  (* checkpoint writes performed so far *)
  mutable journal_ops : int;  (* journal flushes performed so far *)
  mutable journal_dead : bool;  (* a jtorn fired; later flushes are lost *)
  mutable faults_fired : int;
}

let create plan =
  {
    rules = Fault.disk_schedule plan;
    ckpt_ops = 0;
    journal_ops = 0;
    journal_dead = false;
    faults_fired = 0;
  }

let none () = create Fault.reliable
let active t = t.rules <> []
let faults_fired t = t.faults_fired

(* With no [jtorn:] rules the journal-flush op counter can never matter,
   so the writer may stream its buffer to the file directly instead of
   materialising a chunk string per flush. *)
let journal_passthrough t =
  not
    (List.exists
       (function Fault.Torn_journal _ -> true | _ -> false)
       t.rules)

let truncated data at = String.sub data 0 (min at (String.length data))

let flipped data at =
  if at >= String.length data then data
  else begin
    let b = Bytes.of_string data in
    Bytes.set b at (Char.chr (Char.code (Bytes.get b at) lxor 1));
    Bytes.to_string b
  end

(* One checkpoint write through the injector: apply every disk rule
   whose op index is this write, then perform the same tmp-file + rename
   dance as [Checkpoint.save]. Rules apply in plan order; a flip mutates
   the payload, a torn write truncates what reaches the tmp file, a
   rename crash leaves only the tmp file, and a lost fsync truncates the
   renamed file after the fact (data pages past [at] never made it). *)
let write_file t ~path data =
  t.ckpt_ops <- t.ckpt_ops + 1;
  let op = t.ckpt_ops in
  let data = ref data and renames = ref true and post = ref None in
  List.iter
    (fun rule ->
      let fired () = t.faults_fired <- t.faults_fired + 1 in
      match rule with
      | Fault.Bit_flip { op = o; at } when o = op ->
          fired ();
          data := flipped !data at
      | Fault.Torn_write { op = o; at } when o = op ->
          fired ();
          data := truncated !data at
      | Fault.Crashed_rename { op = o } when o = op ->
          fired ();
          renames := false
      | Fault.Lost_fsync { op = o; at } when o = op ->
          fired ();
          post := Some at
      | _ -> ())
    t.rules;
  let tmp = path ^ ".tmp" in
  let oc = open_out_bin tmp in
  output_string oc !data;
  close_out oc;
  if !renames then begin
    Sys.rename tmp path;
    match !post with
    | None -> ()
    | Some at ->
        let kept = truncated !data at in
        let oc = open_out_bin path in
        output_string oc kept;
        close_out oc
  end

(* One journal flush through the injector: [None] means the chunk is
   lost entirely (device wedged after an earlier tear), [Some chunk']
   is what actually reaches the file. *)
let journal_chunk t chunk =
  if t.journal_dead then None
  else begin
    t.journal_ops <- t.journal_ops + 1;
    let op = t.journal_ops in
    let chunk = ref chunk in
    List.iter
      (fun rule ->
        match rule with
        | Fault.Torn_journal { op = o; at } when o = op ->
            t.faults_fired <- t.faults_fired + 1;
            t.journal_dead <- true;
            chunk := truncated !chunk at
        | _ -> ())
      t.rules;
    Some !chunk
  end
