(** The append-only write-ahead event journal.

    A journal records, per trace-event cursor, the {!Event_log} lines
    that event appended — so recovery can restore the newest verifying
    checkpoint generation and {e audit} its deterministic replay of the
    journal tail byte-for-byte ({!Recovery.audit}). The soak trace is a
    pure function of the scenario seed, so replay is re-execution; the
    journal is what proves the re-execution reproduced exactly what the
    killed run had already committed, making a kill at {e any} event
    index (not just checkpoint boundaries) verifiably bit-identical.

    {b Format} (text-framed, binary-safe payloads):
    {v
    dia-soak-journal v1
    digest=<scenario/config digest>
    base=<first cursor this journal covers>
    rec cursor=<i> len=<n> crc=<crc32 of payload, 8 hex>
    <exactly n payload bytes>\n
    ...
    v}

    {b Durability model.} Appends are buffered and flushed to the OS in
    batches ([flush_every] records, plus every explicit {!flush} and
    {!close}); no fsync is issued. A crash can therefore lose or tear
    the {e last flushed chunk and everything after it} — never a prefix
    — and the reader treats the first invalid byte as the end of the
    committed journal ({!journal.torn}). Records a crash swallowed are
    regenerated identically by deterministic replay, so a lost tail
    costs audit coverage, never correctness. *)

(** {2 Writing} *)

type writer

val create :
  ?disk:Disk.t ->
  ?flush_every:int ->
  path:string ->
  digest:string ->
  base:int ->
  unit ->
  writer
(** Create (truncate) the journal at [path] and write its header —
    which is the first flush, so a [jtorn:1@B] plan tears it. [base] is
    the cursor of the first event this journal covers (0 for a fresh
    run, the checkpoint cursor on resume). [flush_every] batches that
    many records per flush (default 32).

    @raise Invalid_argument if [flush_every < 1]. *)

val append : writer -> cursor:int -> string -> unit
(** Append one record: the rendered log lines event [cursor] produced.
    Buffered; flushed every [flush_every] records.

    @raise Invalid_argument on a closed writer. *)

val flush : writer -> unit
(** Flush buffered records through the injector to the OS. *)

val appended : writer -> int
(** Records appended so far (including still-buffered ones). *)

val close : writer -> unit
(** Flush and close. Idempotent. *)

(** {2 Reading} *)

type record = { cursor : int; payload : string }

type journal = {
  digest : string;
  base : int;
  records : record list;  (** the valid prefix, in append order *)
  torn : string option;
      (** why reading stopped early ([None] = clean end of file); the
          records before the tear are still good *)
}

val read : string -> (journal, string) result
(** Read and parse a journal file. A torn or corrupt {e record} ends
    parsing with the valid prefix (see [torn]); a missing file or an
    unreadable {e header} is an [Error]. Never raises. *)
