(** The storage fault injector: the write path of the durability layer,
    with the disk rules of a {!Dia_sim.Fault.plan} wired in.

    Every durable write the recovery layer performs goes through one of
    two streams, each with its own 1-based write-op counter:

    - {b checkpoint writes} ({!write_file}): full-file tmp + rename
      replacements, targeted by [torn:]/[flip:]/[fsync:]/[rename:]
      rules;
    - {b journal flushes} ({!journal_chunk}): appended chunks, targeted
      by [jtorn:] rules (a tear also wedges the device — every later
      flush is lost, the crashed-mid-append tail).

    Faults fire when a stream's counter reaches a rule's [op] index, so
    a faulted run is replay-identical by construction and consumes no
    randomness — composing disk atoms into a plan never perturbs the
    network decision stream. An injector built from a plan with no disk
    rules degenerates to a plain atomic write path. *)

type t

val create : Dia_sim.Fault.plan -> t
(** An injector interpreting the plan's {!Dia_sim.Fault.disk_schedule}.
    Counters start at zero; the first write on each stream is op 1. *)

val none : unit -> t
(** A fault-free injector (fresh counters, plain atomic writes). *)

val active : t -> bool
(** Whether the plan carried any disk rules at all. *)

val faults_fired : t -> int
(** How many disk rules have fired so far — lets harnesses assert the
    planned corruption actually happened. *)

val write_file : t -> path:string -> string -> unit
(** Write [data] to [path] via tmp + rename, with this op's faults
    applied: flips and tears corrupt what reaches the tmp file, a
    rename crash leaves only [path ^ ".tmp"], a lost fsync truncates
    the renamed file. Fault-free ops are exactly an atomic replace. *)

val journal_passthrough : t -> bool
(** True when the plan carries no [jtorn:] rules at all — the journal
    writer may then bypass {!journal_chunk} (whose op counter could
    never fire anything) and stream its buffer straight to the file. *)

val journal_chunk : t -> string -> string option
(** Pass one journal flush through the injector: [Some chunk'] is what
    reaches the file (possibly truncated by a tear); [None] means the
    device is wedged and the chunk is lost entirely. *)
