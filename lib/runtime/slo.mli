(** The SLO state machine: objective-vs-lower-bound health tracking
    with hysteresis.

    The control plane's service-level objective is the normalized
    interactivity [D(A) / LB] — how far the live assignment sits above
    the instance's super-optimal lower bound (the paper's Section V
    quality measure, applied continuously). Each observation of that
    ratio feeds this three-level state machine:

    - {b Healthy}: ratio below [degraded_at];
    - {b Degraded}: ratio at or above [degraded_at] — bounded repair is
      warranted;
    - {b Critical}: ratio at or above [critical_at] — repair plus
      admission brownout.

    Transitions are damped twice: a level only escalates after
    [hysteresis] {e consecutive} observations in the worse band (one
    noisy tick never triggers a repair storm), and de-escalation
    requires the ratio to fall below [recover_margin] times the
    threshold it crossed (so a ratio oscillating exactly at the
    threshold cannot flap the level). Escalation may jump straight to
    Critical; recovery steps down one level at a time. *)

type level = Healthy | Degraded | Critical

val level_name : level -> string

type config = {
  degraded_at : float;  (** enter Degraded at this [D/LB] ratio *)
  critical_at : float;  (** enter Critical at this ratio *)
  hysteresis : int;  (** consecutive observations before any transition *)
  recover_margin : float;
      (** de-escalate only below [threshold *. recover_margin], in
          [(0, 1]] *)
}

val default_config : config
(** [degraded_at = 1.15], [critical_at = 1.5], [hysteresis = 3],
    [recover_margin = 0.95]. *)

val validate_config : config -> unit
(** @raise Invalid_argument unless
    [1 <= degraded_at <= critical_at], [hysteresis >= 1] and
    [recover_margin] is in [(0, 1]]. *)

type t
(** Mutable monitor state. *)

val create : config -> t

val level : t -> level

val observe : t -> float -> (level * level) option
(** Feed one ratio observation; [Some (from, to_)] when this observation
    completed a transition. Non-finite ratios (empty session, zero
    lower bound) are ignored and do not advance any hysteresis
    counter. *)

val encode : t -> string
(** Serialize the mutable state (not the config) for checkpointing. *)

val decode : config -> string -> t
(** Rebuild from {!encode} output.

    @raise Failure on malformed input. *)
