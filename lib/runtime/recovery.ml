let journal_path dir = Filename.concat dir "journal"
let recovery_log_path dir = Filename.concat dir "recovery.log"

type restore = {
  generation : (int * Checkpoint.state) option;
  skipped : (int * string) list;
  journal : Journal.journal option;
  journal_note : string option;
  replayed : int;
}

(* The rollback side-channel: Recovery entries are operator telemetry,
   never part of the canonical soak log (whose bytes must stay identical
   to the uninterrupted run's), so they append to their own file. *)
let append_recovery_entry ~dir entry =
  let oc =
    open_out_gen [ Open_append; Open_creat; Open_binary ] 0o644
      (recovery_log_path dir)
  in
  output_string oc (Event_log.to_line entry ^ "\n");
  close_out oc

let restore ~dir ~digest =
  let generation, skipped = Generation.newest_verifying ~dir ~digest in
  let journal, journal_note =
    match Journal.read (journal_path dir) with
    | Error m -> (None, Some m)
    | Ok j when j.Journal.digest <> digest ->
        (None, Some "journal digest mismatch (different scenario/config)")
    | Ok j -> (Some j, j.Journal.torn)
  in
  let cursor =
    match generation with Some (_, st) -> st.Checkpoint.cursor | None -> 0
  in
  let replayed =
    match journal with
    | None -> 0
    | Some j ->
        List.length
          (List.filter (fun r -> r.Journal.cursor >= cursor) j.Journal.records)
  in
  (if skipped <> [] then
     let time =
       match generation with Some (_, st) -> st.Checkpoint.now | None -> 0.
     in
     let generation_n = match generation with Some (g, _) -> g | None -> 0 in
     append_recovery_entry ~dir
       {
         Event_log.time;
         kind =
           Event_log.Recovery
             { generation = generation_n; skipped = List.length skipped; replayed };
       });
  { generation; skipped; journal; journal_note; replayed }

(* --- the byte-level audit --------------------------------------------- *)

let is_prefix ~prefix s =
  String.length prefix <= String.length s
  && String.sub s 0 (String.length prefix) = prefix

let is_suffix ~suffix s =
  let ls = String.length suffix and n = String.length s in
  ls <= n && String.sub s (n - ls) ls = suffix

let contains ~sub s =
  let ls = String.length sub and n = String.length s in
  ls = 0
  ||
  let found = ref false in
  let i = ref 0 in
  while (not !found) && !i <= n - ls do
    if String.sub s !i ls = sub then found := true else incr i
  done;
  !found

let payloads records = String.concat "" (List.map (fun r -> r.Journal.payload) records)

let audit ~journal ~restored ~final_log =
  let final = Event_log.render final_log in
  let cursor, pre =
    match restored with
    | Some st -> (st.Checkpoint.cursor, Event_log.render st.Checkpoint.log)
    | None -> (0, "")
  in
  let head, tail =
    List.partition (fun r -> r.Journal.cursor < cursor) journal.Journal.records
  in
  let audited = List.length journal.Journal.records in
  if not (is_prefix ~prefix:pre final) then
    Error "restored checkpoint log is not a byte-prefix of the final log"
  else if journal.Journal.base > cursor then
    (* Rolled back past the point this journal began (its base is the
       killed process's resume cursor): the records can't be aligned to
       a byte offset, but every committed one must still appear verbatim
       in the replayed log. *)
    if contains ~sub:(payloads journal.Journal.records) final then Ok audited
    else Error "journal records missing from the replayed log"
  else
    let after =
      String.sub final (String.length pre)
        (String.length final - String.length pre)
    in
    if not (is_prefix ~prefix:(payloads tail) after) then
      Error
        "journal tail does not byte-match the log replayed past the restored \
         checkpoint"
    else if not (is_suffix ~suffix:(payloads head) pre) then
      Error
        "journal head does not byte-match the restored checkpoint's own log"
    else Ok audited

(* --- the end-to-end verification harness ------------------------------ *)

type verdict = { ok : bool; lines : string list }

let verify ?(keep = 3) ~state_dir ~kill_at_event scenario config =
  let lines = ref [] and failed = ref false in
  let check name ok detail =
    if not ok then failed := true;
    lines :=
      Printf.sprintf "%s %-24s %s" (if ok then "ok  " else "FAIL") name detail
      :: !lines
  in
  let note name detail =
    lines := Printf.sprintf "     %-24s %s" name detail :: !lines
  in
  let verdict () = { ok = not !failed; lines = List.rev !lines } in
  let dg = Soak.digest scenario config in
  match Soak.run scenario config with
  | Soak.Killed _ ->
      check "reference-run" false "uninterrupted run reported Killed";
      verdict ()
  | Soak.Completed base -> (
      let disk = Disk.create scenario.fault in
      let faulted =
        Soak.run ~state_dir ~keep ~disk ~kill_at_event scenario config
      in
      note "disk-faults"
        (Printf.sprintf "%d of the plan's disk rules fired"
           (Disk.faults_fired disk));
      match faulted with
      | Soak.Completed r ->
          (* The kill point lay past the end of the trace: nothing to
             recover, but the run must still match the reference. *)
          check "kill-fires" true
            (Printf.sprintf "kill_at_event %d past the last event; run completed"
               kill_at_event);
          check "report-bit-identical" (Soak.render r = Soak.render base) "";
          check "log-bit-identical"
            (Event_log.render r.Soak.log = Event_log.render base.Soak.log)
            "";
          verdict ()
      | Soak.Killed killed_st -> (
          check "kill-fires" true
            (Printf.sprintf "killed after event %d (cursor %d)" kill_at_event
               killed_st.Checkpoint.cursor);
          let r = restore ~dir:state_dir ~digest:dg in
          (match r.generation with
          | Some (g, st) ->
              check "generation-restored" true
                (Printf.sprintf "ckpt.%d (cursor %d)%s" g st.Checkpoint.cursor
                   (match r.skipped with
                   | [] -> ""
                   | sk ->
                       Printf.sprintf "; rolled back over %d corrupt newer: %s"
                         (List.length sk)
                         (String.concat "; "
                            (List.map
                               (fun (g, m) -> Printf.sprintf "ckpt.%d: %s" g m)
                               sk))))
          | None ->
              check "generation-restored" true
                (Printf.sprintf
                   "no verifying generation (%d corrupt); restarting from \
                    scratch"
                   (List.length r.skipped)));
          (match r.journal_note with
          | Some m -> note "journal" m
          | None -> ());
          let resumed =
            match r.generation with
            | Some (_, st) -> Soak.run ~resume_from:st scenario config
            | None -> Soak.run scenario config
          in
          match resumed with
          | Soak.Killed _ ->
              check "resume-completes" false "resumed run reported Killed";
              verdict ()
          | Soak.Completed resumed ->
              check "report-bit-identical"
                (Soak.render resumed = Soak.render base)
                "render output matches the uninterrupted run byte-for-byte";
              check "log-bit-identical"
                (Event_log.render resumed.Soak.log
                = Event_log.render base.Soak.log)
                "event log matches the uninterrupted run byte-for-byte";
              (match r.journal with
              | None ->
                  note "journal-audit"
                    "no committed journal to audit (header lost)"
              | Some j -> (
                  match
                    audit ~journal:j
                      ~restored:(Option.map snd r.generation)
                      ~final_log:resumed.Soak.log
                  with
                  | Ok n ->
                      check "journal-audit" true
                        (Printf.sprintf
                           "%d committed records byte-match the replay" n)
                  | Error m -> check "journal-audit" false m));
              verdict ()))
