(** Empirical competitive-ratio harness for the online assignment.

    Competitive analysis of online assignment (cf. Harada & Itoh's
    online facility assignment bounds) compares an online algorithm —
    here the soak's sticky policy: greedy joins, O(1) standby promotion
    on crashes, budget-bounded repair — against the offline optimum on
    the same input. An exact offline optimum is intractable at soak
    sizes, so the harness uses the paper's Greedy re-solve as the
    offline yardstick: {!run} replays [traces] churn/crash/drift traces
    (scenario seeds [seed], [seed+1], …), each with
    [offline_baseline = true], so at every lower-bound refresh the soak
    samples the pair (online D(A), offline Greedy re-solve D). The
    per-sample quotient is the instantaneous competitive ratio; the
    harness reports per-trace mean/max/final ratios and the aggregate —
    the empirical competitive ratio is the worst quotient observed
    anywhere.

    The documented constant: with standby promotion on, the online
    policy stays within {!default_bound} (4.0×) of the offline Greedy
    re-solve on the shipped scenarios; CI enforces this over 20 seeded
    traces. The constant absorbs the transient spike right after a
    crash (sampled before the breach-triggered rebalance lands) and the
    stickiness cost of not rushing clients back onto a recovered server
    — the worst ratio observed on the shipped traces is ~3.5, most
    samples sit near 1. Everything is deterministic — same
    scenario/config, same numbers, bit-exactly. *)

type trace_result = {
  index : int;  (** 0-based trace number *)
  seed : int;  (** the scenario seed this trace ran with *)
  samples : int;  (** baseline points observed *)
  mean : float;  (** mean online/offline ratio (nan when unmeasured) *)
  max : float;  (** worst ratio in this trace *)
  final : float;  (** ratio at the last sample *)
}

type summary = {
  traces : int;
  bound : float;
  samples : int;  (** total samples across traces *)
  mean : float;  (** mean of the measured traces' mean ratios *)
  max : float;  (** the empirical competitive ratio *)
  ok : bool;  (** [max] is finite and within [bound] *)
  per_trace : trace_result list;  (** ascending by [index] *)
}

val default_bound : float
(** 4.0 — the documented constant the soak's online policy is held to. *)

val run : ?traces:int -> ?bound:float -> Soak.scenario -> Soak.config -> summary
(** Replay [traces] (default 20) seeded variations of the scenario with
    offline-baseline sampling forced on, and judge the worst observed
    online/offline ratio against [bound] (default {!default_bound}).

    @raise Invalid_argument if [traces < 1], [bound < 1] or the
    scenario/config are invalid. *)

val to_csv : summary -> string
(** One header line plus one row per trace
    ([trace,seed,samples,mean,max,final]); floats via
    {!Codec.float_str}, so the artifact is deterministic. *)

val render : summary -> string
(** Human-readable per-trace table, aggregate, and the bound verdict. *)
