let version = 3

type state = {
  version : int;
  digest : string;
  cursor : int;
  now : float;
  capacity : int option;
  members : (int * int * int) list;
  standbys : (int * int) list;
  next_id : int;
  failed : int list;
  drift : (int * float) list;
  session_stats : Dia_core.Dynamic.stats;
  sessions : (int * int) list;
  slo : string;
  queue : (int * int) list;
  admitted : int;
  queued : int;
  shed : int;
  drained : int;
  abandoned : int;
  leaves : int;
  crashes : int;
  crashes_skipped : int;
  recoveries : int;
  drifts : int;
  stranded : int;
  repairs : int;
  repair_moves : int;
  max_epoch_moves : int;
  protocol_epochs : int;
  protocol_stalls : int;
  rng_cursor : int;
  lb : float;
  events_since_lb : int;
  checkpoints : int;
  trace_points : (float * float * float) list;
  baseline_points : (float * float * float) list;
  log : Event_log.entry list;
}

let fs = Codec.float_str

(* v3 splits the file into checksummed sections: the scalar block and
   one section per list kind. Every section gets a [crc=NAME:HEX] line
   (even when empty — a wholesale-deleted section must not verify). *)
let list_sections =
  [ "member"; "standby"; "session"; "drift"; "queue"; "trace"; "baseline"; "log" ]

let section_names = "scalars" :: list_sections

let encode s =
  let line b fmt = Printf.ksprintf (fun l -> Buffer.add_string b (l ^ "\n")) fmt in
  let scalars = Buffer.create 1024 in
  let sline fmt = line scalars fmt in
  sline "digest=%s" s.digest;
  sline "cursor=%d" s.cursor;
  sline "now=%s" (fs s.now);
  sline "capacity=%s"
    (match s.capacity with None -> "none" | Some c -> string_of_int c);
  sline "next_id=%d" s.next_id;
  sline "failed=%s" (String.concat "," (List.map string_of_int s.failed));
  sline "stats=%d,%d,%d" s.session_stats.Dia_core.Dynamic.joins
    s.session_stats.Dia_core.Dynamic.leaves s.session_stats.Dia_core.Dynamic.moves;
  sline "slo=%s" s.slo;
  sline "admitted=%d" s.admitted;
  sline "queued=%d" s.queued;
  sline "shed=%d" s.shed;
  sline "drained=%d" s.drained;
  sline "abandoned=%d" s.abandoned;
  sline "leaves=%d" s.leaves;
  sline "crashes=%d" s.crashes;
  sline "crashes_skipped=%d" s.crashes_skipped;
  sline "recoveries=%d" s.recoveries;
  sline "drifts=%d" s.drifts;
  sline "stranded=%d" s.stranded;
  sline "repairs=%d" s.repairs;
  sline "repair_moves=%d" s.repair_moves;
  sline "max_epoch_moves=%d" s.max_epoch_moves;
  sline "protocol_epochs=%d" s.protocol_epochs;
  sline "protocol_stalls=%d" s.protocol_stalls;
  sline "rng_cursor=%d" s.rng_cursor;
  sline "lb=%s" (fs s.lb);
  sline "events_since_lb=%d" s.events_since_lb;
  sline "checkpoints=%d" s.checkpoints;
  let section name =
    let b = Buffer.create 256 in
    (match name with
    | "member" ->
        List.iter
          (fun (id, node, server) -> line b "member=%d,%d,%d" id node server)
          s.members
    | "standby" ->
        List.iter (fun (id, standby) -> line b "standby=%d,%d" id standby) s.standbys
    | "session" ->
        List.iter
          (fun (session, client) -> line b "session=%d,%d" session client)
          s.sessions
    | "drift" ->
        List.iter
          (fun (server, factor) -> line b "drift=%d,%s" server (fs factor))
          s.drift
    | "queue" ->
        List.iter (fun (session, node) -> line b "queue=%d,%d" session node) s.queue
    | "trace" ->
        List.iter
          (fun (t, objective, ratio) ->
            line b "trace=%s,%s,%s" (fs t) (fs objective) (fs ratio))
          s.trace_points
    | "baseline" ->
        List.iter
          (fun (t, online, resolve) ->
            line b "baseline=%s,%s,%s" (fs t) (fs online) (fs resolve))
          s.baseline_points
    | "log" ->
        List.iter
          (fun e -> line b "log=%s" (Codec.escape (Event_log.to_line e)))
          s.log
    | _ -> assert false);
    b
  in
  let bodies = ("scalars", scalars) :: List.map (fun n -> (n, section n)) list_sections in
  let b = Buffer.create 4096 in
  line b "dia-soak-checkpoint v%d" version;
  List.iter (fun (_, body) -> Buffer.add_buffer b body) bodies;
  List.iter
    (fun (name, body) -> line b "crc=%s:%s" name (Crc.hex (Buffer.contents body)))
    bodies;
  Buffer.add_string b "end\n";
  Buffer.contents b

exception Bad of string

let fail fmt = Printf.ksprintf (fun m -> raise (Bad m)) fmt

let int_of what s =
  match int_of_string_opt s with
  | Some i -> i
  | None -> fail "checkpoint: %s is not an integer (%S)" what s

let split2 what s =
  match String.index_opt s ',' with
  | Some i -> (String.sub s 0 i, String.sub s (i + 1) (String.length s - i - 1))
  | None -> fail "checkpoint: %s expects two fields (%S)" what s

let split3 what s =
  let a, rest = split2 what s in
  let b, c = split2 what rest in
  (a, b, c)

(* Which checksummed section a content line belongs to — the same
   classification [encode] used to write it, so order-preserving
   re-concatenation reproduces the exact checksummed bytes. *)
let section_of_key key = if List.mem key list_sections then key else "scalars"

(* Verify every v3 section checksum before trusting a single byte of
   content: rebuild each section from the file's lines in order and
   compare with its [crc=] declaration. Corruption is named by section;
   a bad or missing crc line is named by line position. *)
let verify_sections numbered_lines =
  let bodies = Hashtbl.create 16 in
  List.iter (fun name -> Hashtbl.replace bodies name (Buffer.create 256)) section_names;
  let declared = Hashtbl.create 16 in
  List.iter
    (fun (ln, l) ->
      match String.index_opt l '=' with
      | None -> fail "checkpoint: line %d: malformed line %S" ln l
      | Some i -> (
          let key = String.sub l 0 i in
          let value = String.sub l (i + 1) (String.length l - i - 1) in
          if key = "crc" then
            match String.index_opt value ':' with
            | None -> fail "checkpoint: line %d: malformed crc line %S" ln l
            | Some j ->
                let name = String.sub value 0 j in
                let hex = String.sub value (j + 1) (String.length value - j - 1) in
                if not (List.mem name section_names) then
                  fail "checkpoint: line %d: crc for unknown section %S" ln name;
                if Hashtbl.mem declared name then
                  fail "checkpoint: line %d: duplicate crc for section %s" ln name;
                Hashtbl.replace declared name hex
          else
            let body = Hashtbl.find bodies (section_of_key key) in
            Buffer.add_string body (l ^ "\n")))
    numbered_lines;
  List.iter
    (fun name ->
      let body = Buffer.contents (Hashtbl.find bodies name) in
      match Hashtbl.find_opt declared name with
      | None -> fail "checkpoint: missing crc for section %s" name
      | Some hex ->
          let actual = Crc.hex body in
          if actual <> hex then
            fail "checkpoint: section %s corrupt (crc %s, file declares %s)"
              name actual hex)
    section_names

let decode text =
  try
    let numbered =
      String.split_on_char '\n' text
      |> List.mapi (fun i l -> (i + 1, l))
      |> List.filter (fun (_, l) -> String.trim l <> "")
    in
    match numbered with
    | [] -> Error "checkpoint: empty"
    | (_, header) :: rest ->
        (* v1 files (no standby/baseline lines) stay readable: the
           missing lists decode to [] and the soak rebuilds the standby
           map canonically on restore. v2 files predate the per-section
           checksums and are trusted as-is. *)
        let file_version =
          match header with
          | "dia-soak-checkpoint v1" -> 1
          | "dia-soak-checkpoint v2" -> 2
          | "dia-soak-checkpoint v3" -> 3
          | _ -> fail "checkpoint: line 1: unsupported header %S" header
        in
        (* A checksummed file must end with exactly the end marker:
           anything after it, or a truncation anywhere before it (which
           necessarily removes the final newline), is corruption. *)
        if file_version >= 3 then begin
          let n = String.length text in
          if not (n >= 4 && String.sub text (n - 4) 4 = "end\n") then
            fail "checkpoint: truncated (file must end with the end marker)"
        end;
        (match List.rev rest with
        | (_, "end") :: _ -> ()
        | _ -> fail "checkpoint: truncated (missing end marker)");
        let rest = List.filter (fun (_, l) -> l <> "end") rest in
        if file_version >= 3 then verify_sections rest;
        let scalars = Hashtbl.create 32 in
        let members = ref [] and standbys = ref [] in
        let sessions = ref [] and drift = ref [] in
        let queue = ref [] and trace_points = ref [] in
        let baseline_points = ref [] and log = ref [] in
        List.iter
          (fun (ln, l) ->
            let located = function
              | Bad m -> Bad (Printf.sprintf "%s [line %d]" m ln)
              | e -> e
            in
            try
              match String.index_opt l '=' with
              | None -> fail "checkpoint: line %d: malformed line %S" ln l
              | Some i -> (
                  let key = String.sub l 0 i in
                  let value = String.sub l (i + 1) (String.length l - i - 1) in
                  match key with
                  | "member" ->
                      let a, b, c = split3 "member" value in
                      members :=
                        (int_of "member" a, int_of "member" b, int_of "member" c)
                        :: !members
                  | "standby" ->
                      let a, b = split2 "standby" value in
                      standbys := (int_of "standby" a, int_of "standby" b) :: !standbys
                  | "session" ->
                      let a, b = split2 "session" value in
                      sessions := (int_of "session" a, int_of "session" b) :: !sessions
                  | "drift" ->
                      let a, b = split2 "drift" value in
                      drift := (int_of "drift" a, Codec.float_of_str b) :: !drift
                  | "queue" ->
                      let a, b = split2 "queue" value in
                      queue := (int_of "queue" a, int_of "queue" b) :: !queue
                  | "trace" ->
                      let a, b, c = split3 "trace" value in
                      trace_points :=
                        (Codec.float_of_str a, Codec.float_of_str b,
                         Codec.float_of_str c)
                        :: !trace_points
                  | "baseline" ->
                      let a, b, c = split3 "baseline" value in
                      baseline_points :=
                        (Codec.float_of_str a, Codec.float_of_str b,
                         Codec.float_of_str c)
                        :: !baseline_points
                  | "log" -> (
                      match Event_log.of_line (Codec.unescape value) with
                      | Ok entry -> log := entry :: !log
                      | Error m -> fail "checkpoint: bad log line: %s" m)
                  | "crc" when file_version >= 3 -> ()  (* verified above *)
                  | _ -> Hashtbl.replace scalars key (ln, value))
            with
            | Bad _ as e -> raise (located e)
            | Failure m -> raise (located (Bad m)))
          rest;
        let scalar key =
          match Hashtbl.find_opt scalars key with
          | Some lv -> lv
          | None -> fail "checkpoint: missing field %S" key
        in
        let int key =
          let ln, v = scalar key in
          match int_of_string_opt v with
          | Some i -> i
          | None ->
              fail "checkpoint: %s is not an integer (%S) [line %d]" key v ln
        in
        let str key = snd (scalar key) in
        let flt key =
          let ln, v = scalar key in
          match float_of_string_opt (String.trim v) with
          | Some f -> f
          | None -> fail "checkpoint: %s is not a float (%S) [line %d]" key v ln
        in
        let stats =
          let ln, v = scalar "stats" in
          match
            let a, b, c = split3 "stats" v in
            {
              Dia_core.Dynamic.joins = int_of "stats" a;
              leaves = int_of "stats" b;
              moves = int_of "stats" c;
            }
          with
          | stats -> stats
          | exception Bad m -> fail "%s [line %d]" m ln
        in
        Ok
          {
            version = file_version;
            digest = str "digest";
            cursor = int "cursor";
            now = flt "now";
            capacity =
              (match str "capacity" with
              | "none" -> None
              | _ -> Some (int "capacity"));
            members = List.rev !members;
            standbys = List.rev !standbys;
            next_id = int "next_id";
            failed =
              (let ln, v = scalar "failed" in
               match v with
               | "" -> []
               | f -> (
                   match List.map (int_of "failed") (String.split_on_char ',' f) with
                   | l -> l
                   | exception Bad m -> fail "%s [line %d]" m ln));
            drift = List.rev !drift;
            session_stats = stats;
            sessions = List.rev !sessions;
            slo = str "slo";
            queue = List.rev !queue;
            admitted = int "admitted";
            queued = int "queued";
            shed = int "shed";
            drained = int "drained";
            abandoned = int "abandoned";
            leaves = int "leaves";
            crashes = int "crashes";
            crashes_skipped = int "crashes_skipped";
            recoveries = int "recoveries";
            drifts = int "drifts";
            stranded = int "stranded";
            repairs = int "repairs";
            repair_moves = int "repair_moves";
            max_epoch_moves = int "max_epoch_moves";
            protocol_epochs = int "protocol_epochs";
            protocol_stalls = int "protocol_stalls";
            rng_cursor = int "rng_cursor";
            lb = flt "lb";
            events_since_lb = int "events_since_lb";
            checkpoints = int "checkpoints";
            trace_points = List.rev !trace_points;
            baseline_points = List.rev !baseline_points;
            log = List.rev !log;
          }
  with
  | Bad m -> Error m
  | Failure m -> Error m
  | Invalid_argument m -> Error ("checkpoint: " ^ m)

(* The format version a file on disk claims, if it can be read at all.
   Used by [save] to refuse clobbering a file written by a newer binary. *)
let file_version path =
  if not (Sys.file_exists path) then None
  else
    match open_in_bin path with
    | exception Sys_error _ -> None
    | ic -> (
        let header = try input_line ic with End_of_file | Sys_error _ -> "" in
        close_in ic;
        match String.split_on_char ' ' header with
        | [ "dia-soak-checkpoint"; v ]
          when String.length v > 1 && v.[0] = 'v' ->
            int_of_string_opt (String.sub v 1 (String.length v - 1))
        | _ -> None)

let save path state =
  (match file_version path with
  | Some v when v > version ->
      invalid_arg
        (Printf.sprintf
           "Checkpoint.save: %s is a v%d checkpoint; refusing to overwrite it \
            with the older v%d format (downgrade would silently discard state \
            a newer binary persisted)"
           path v version)
  | _ -> ());
  let tmp = path ^ ".tmp" in
  let oc = open_out_bin tmp in
  output_string oc (encode state);
  close_out oc;
  Sys.rename tmp path

let load path =
  match
    let ic = open_in_bin path in
    let n = in_channel_length ic in
    let text = really_input_string ic n in
    close_in ic;
    text
  with
  | exception Sys_error m -> Error m
  | text -> decode text
