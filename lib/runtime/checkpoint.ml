let version = 2

type state = {
  version : int;
  digest : string;
  cursor : int;
  now : float;
  capacity : int option;
  members : (int * int * int) list;
  standbys : (int * int) list;
  next_id : int;
  failed : int list;
  drift : (int * float) list;
  session_stats : Dia_core.Dynamic.stats;
  sessions : (int * int) list;
  slo : string;
  queue : (int * int) list;
  admitted : int;
  queued : int;
  shed : int;
  drained : int;
  abandoned : int;
  leaves : int;
  crashes : int;
  crashes_skipped : int;
  recoveries : int;
  drifts : int;
  stranded : int;
  repairs : int;
  repair_moves : int;
  max_epoch_moves : int;
  protocol_epochs : int;
  protocol_stalls : int;
  rng_cursor : int;
  lb : float;
  events_since_lb : int;
  checkpoints : int;
  trace_points : (float * float * float) list;
  baseline_points : (float * float * float) list;
  log : Event_log.entry list;
}

let fs = Codec.float_str

let encode s =
  let b = Buffer.create 4096 in
  let line fmt = Printf.ksprintf (fun l -> Buffer.add_string b (l ^ "\n")) fmt in
  line "dia-soak-checkpoint v%d" version;
  line "digest=%s" s.digest;
  line "cursor=%d" s.cursor;
  line "now=%s" (fs s.now);
  line "capacity=%s"
    (match s.capacity with None -> "none" | Some c -> string_of_int c);
  line "next_id=%d" s.next_id;
  line "failed=%s" (String.concat "," (List.map string_of_int s.failed));
  line "stats=%d,%d,%d" s.session_stats.Dia_core.Dynamic.joins
    s.session_stats.Dia_core.Dynamic.leaves s.session_stats.Dia_core.Dynamic.moves;
  line "slo=%s" s.slo;
  line "admitted=%d" s.admitted;
  line "queued=%d" s.queued;
  line "shed=%d" s.shed;
  line "drained=%d" s.drained;
  line "abandoned=%d" s.abandoned;
  line "leaves=%d" s.leaves;
  line "crashes=%d" s.crashes;
  line "crashes_skipped=%d" s.crashes_skipped;
  line "recoveries=%d" s.recoveries;
  line "drifts=%d" s.drifts;
  line "stranded=%d" s.stranded;
  line "repairs=%d" s.repairs;
  line "repair_moves=%d" s.repair_moves;
  line "max_epoch_moves=%d" s.max_epoch_moves;
  line "protocol_epochs=%d" s.protocol_epochs;
  line "protocol_stalls=%d" s.protocol_stalls;
  line "rng_cursor=%d" s.rng_cursor;
  line "lb=%s" (fs s.lb);
  line "events_since_lb=%d" s.events_since_lb;
  line "checkpoints=%d" s.checkpoints;
  List.iter (fun (id, node, server) -> line "member=%d,%d,%d" id node server) s.members;
  List.iter (fun (id, standby) -> line "standby=%d,%d" id standby) s.standbys;
  List.iter (fun (session, client) -> line "session=%d,%d" session client) s.sessions;
  List.iter (fun (server, factor) -> line "drift=%d,%s" server (fs factor)) s.drift;
  List.iter (fun (session, node) -> line "queue=%d,%d" session node) s.queue;
  List.iter
    (fun (t, objective, ratio) ->
      line "trace=%s,%s,%s" (fs t) (fs objective) (fs ratio))
    s.trace_points;
  List.iter
    (fun (t, online, resolve) ->
      line "baseline=%s,%s,%s" (fs t) (fs online) (fs resolve))
    s.baseline_points;
  List.iter (fun e -> line "log=%s" (Codec.escape (Event_log.to_line e))) s.log;
  Buffer.add_string b "end\n";
  Buffer.contents b

exception Bad of string

let fail fmt = Printf.ksprintf (fun m -> raise (Bad m)) fmt

let int_of what s =
  match int_of_string_opt s with
  | Some i -> i
  | None -> fail "checkpoint: %s is not an integer (%S)" what s

let split2 what s =
  match String.index_opt s ',' with
  | Some i -> (String.sub s 0 i, String.sub s (i + 1) (String.length s - i - 1))
  | None -> fail "checkpoint: %s expects two fields (%S)" what s

let split3 what s =
  let a, rest = split2 what s in
  let b, c = split2 what rest in
  (a, b, c)

let decode text =
  try
    let lines =
      String.split_on_char '\n' text
      |> List.filter (fun l -> String.trim l <> "")
    in
    match lines with
    | [] -> Error "checkpoint: empty"
    | header :: rest ->
        (* v1 files (no standby/baseline lines) stay readable: the
           missing lists decode to [] and the soak rebuilds the standby
           map canonically on restore. *)
        let file_version =
          match header with
          | "dia-soak-checkpoint v1" -> 1
          | "dia-soak-checkpoint v2" -> 2
          | _ -> fail "checkpoint: unsupported header %S" header
        in
        (match List.rev rest with
        | "end" :: _ -> ()
        | _ -> fail "checkpoint: truncated (missing end marker)");
        let rest = List.filter (fun l -> l <> "end") rest in
        let scalars = Hashtbl.create 32 in
        let members = ref [] and standbys = ref [] in
        let sessions = ref [] and drift = ref [] in
        let queue = ref [] and trace_points = ref [] in
        let baseline_points = ref [] and log = ref [] in
        List.iter
          (fun l ->
            match String.index_opt l '=' with
            | None -> fail "checkpoint: malformed line %S" l
            | Some i -> (
                let key = String.sub l 0 i in
                let value = String.sub l (i + 1) (String.length l - i - 1) in
                match key with
                | "member" ->
                    let a, b, c = split3 "member" value in
                    members :=
                      (int_of "member" a, int_of "member" b, int_of "member" c)
                      :: !members
                | "standby" ->
                    let a, b = split2 "standby" value in
                    standbys := (int_of "standby" a, int_of "standby" b) :: !standbys
                | "session" ->
                    let a, b = split2 "session" value in
                    sessions := (int_of "session" a, int_of "session" b) :: !sessions
                | "drift" ->
                    let a, b = split2 "drift" value in
                    drift := (int_of "drift" a, Codec.float_of_str b) :: !drift
                | "queue" ->
                    let a, b = split2 "queue" value in
                    queue := (int_of "queue" a, int_of "queue" b) :: !queue
                | "trace" ->
                    let a, b, c = split3 "trace" value in
                    trace_points :=
                      (Codec.float_of_str a, Codec.float_of_str b, Codec.float_of_str c)
                      :: !trace_points
                | "baseline" ->
                    let a, b, c = split3 "baseline" value in
                    baseline_points :=
                      (Codec.float_of_str a, Codec.float_of_str b, Codec.float_of_str c)
                      :: !baseline_points
                | "log" -> (
                    match Event_log.of_line (Codec.unescape value) with
                    | Ok entry -> log := entry :: !log
                    | Error m -> fail "checkpoint: bad log line: %s" m)
                | _ -> Hashtbl.replace scalars key value))
          rest;
        let scalar key =
          match Hashtbl.find_opt scalars key with
          | Some v -> v
          | None -> fail "checkpoint: missing field %S" key
        in
        let int key = int_of key (scalar key) in
        let stats =
          let a, b, c = split3 "stats" (scalar "stats") in
          {
            Dia_core.Dynamic.joins = int_of "stats" a;
            leaves = int_of "stats" b;
            moves = int_of "stats" c;
          }
        in
        Ok
          {
            version = file_version;
            digest = scalar "digest";
            cursor = int "cursor";
            now = Codec.float_of_str (scalar "now");
            capacity =
              (match scalar "capacity" with
              | "none" -> None
              | c -> Some (int_of "capacity" c));
            members = List.rev !members;
            standbys = List.rev !standbys;
            next_id = int "next_id";
            failed =
              (match scalar "failed" with
              | "" -> []
              | f -> List.map (int_of "failed") (String.split_on_char ',' f));
            drift = List.rev !drift;
            session_stats = stats;
            sessions = List.rev !sessions;
            slo = scalar "slo";
            queue = List.rev !queue;
            admitted = int "admitted";
            queued = int "queued";
            shed = int "shed";
            drained = int "drained";
            abandoned = int "abandoned";
            leaves = int "leaves";
            crashes = int "crashes";
            crashes_skipped = int "crashes_skipped";
            recoveries = int "recoveries";
            drifts = int "drifts";
            stranded = int "stranded";
            repairs = int "repairs";
            repair_moves = int "repair_moves";
            max_epoch_moves = int "max_epoch_moves";
            protocol_epochs = int "protocol_epochs";
            protocol_stalls = int "protocol_stalls";
            rng_cursor = int "rng_cursor";
            lb = Codec.float_of_str (scalar "lb");
            events_since_lb = int "events_since_lb";
            checkpoints = int "checkpoints";
            trace_points = List.rev !trace_points;
            baseline_points = List.rev !baseline_points;
            log = List.rev !log;
          }
  with
  | Bad m -> Error m
  | Failure m -> Error m

let save path state =
  let tmp = path ^ ".tmp" in
  let oc = open_out tmp in
  output_string oc (encode state);
  close_out oc;
  Sys.rename tmp path

let load path =
  match
    let ic = open_in_bin path in
    let n = in_channel_length ic in
    let text = really_input_string ic n in
    close_in ic;
    text
  with
  | exception Sys_error m -> Error m
  | text -> decode text
