(** The control plane's structured event log.

    One record per state transition the supervisor performs —
    join/queue/drain/shed, leave, crash (with migration and stranding
    counts), recovery, drift, SLO transitions, budgeted repairs,
    protocol-level repair epochs, checkpoints. The log is:

    - {b replayable}: every record round-trips through its one-line
      textual form exactly ({!of_line} ∘ {!to_line} is the identity),
      so a post-mortem can be driven from the file alone;
    - {b part of the determinism contract}: the log accumulated by a
      killed-and-resumed run must be bit-identical to the uninterrupted
      run's, which is enforced by the soak tests. *)

type kind =
  | Join of { session : int; client : int; server : int }
  | Queued of { session : int }
  | Drained of { session : int; client : int; server : int }
  | Shed of { session : int }
  | Leave of { session : int; client : int }
  | Crash of { server : int; migrated : int; stranded : int }
  | Crash_skipped of { server : int }
      (** the schedule asked to crash the last live server; the
          supervisor refuses total outage and records the refusal *)
  | Promote of { server : int; promoted : int; fallback : int; stranded : int }
      (** a crash repaired by standby promotion instead of greedy
          migration: [promoted] orphans landed on their armed standby,
          [fallback] on the least-loaded feasible server, [stranded]
          found no room anywhere *)
  | Standby_refresh of { changed : int }
      (** canonical standby re-arm at a checkpoint boundary *)
  | Standby_breach of { ratio : float; bound : float }
      (** post-promotion D/LB exceeded the configured standby bound; a
          budgeted repair follows immediately *)
  | Recover of { server : int }
  | Drift of { server : int; factor : float }
  | Transition of {
      from_ : Slo.level;
      to_ : Slo.level;
      ratio : float;
      objective : string;
          (** which objective drove the transition: ["d"] (pure network
              [D/LB]) or ["d_load"] (load-aware [D_load/LB_load], when
              the scenario carries a delay model). Logs written before
              this field existed parse as ["d"]. *)
    }
  | Repair of { moves : int; budget : int; before : float; after : float }
  | Protocol_repair of {
      attempt : int;
      stalled : bool;
      moves : int;  (** assignment changes the protocol result implies *)
      applied : bool;  (** false when the plan exceeded the move budget *)
    }
  | Checkpoint of { id : int }
  | Recovery of { generation : int; skipped : int; replayed : int }
      (** a restore landed on checkpoint generation [generation] after
          skipping [skipped] newer corrupt generations, with [replayed]
          committed journal records covering the tail. Written to the
          recovery side-channel log (never the canonical soak log, whose
          bytes must stay identical to the uninterrupted run's) — a
          non-primary restore is an operator-visible event, not part of
          the replayed history. *)

type entry = { time : float; kind : kind }

val to_line : entry -> string
val of_line : string -> (entry, string) result

val render : entry list -> string
(** All entries, one line each, newline-terminated. *)

val save : string -> entry list -> unit
(** Write {!render} output to a file. *)

val load : string -> (entry list, string) result
(** Parse a saved log; blank lines ignored. *)
