(** Admission control: shed or queue joins when capacity or SLO headroom
    is exhausted.

    Unbounded per-event reassignment is the wrong model for online
    assignment (the online facility-assignment literature budgets
    migrations); the same discipline applies at the front door — when
    the system is degraded, new joins must not make the repair problem
    worse. The policy, from most to least constrained:

    - {b Critical} SLO level: joins are {e shed} (brownout — the
      client is turned away and counted);
    - {b Degraded} level, or no live server with spare capacity: joins
      are {e queued} (FIFO, bounded; overflow sheds);
    - {b Healthy} with capacity: joins are admitted, and queued joins
      drain FIFO as capacity allows.

    Every decision is counted, so the soak report can state exactly how
    much traffic the guardrails turned away. The queue and counters are
    plain data, checkpointed verbatim. *)

type decision = Admit | Queue | Shed

type t = {
  max_queue : int;
  mutable queue : (int * int) list;
      (** [(session, node)], oldest first — kept short (bounded) *)
  mutable admitted : int;
  mutable queued : int;
  mutable shed : int;
  mutable drained : int;  (** queued joins later admitted *)
  mutable abandoned : int;  (** queued joins whose leave arrived first *)
}

val create : max_queue:int -> t
(** @raise Invalid_argument if [max_queue < 0]. *)

val consider :
  t -> level:Slo.level -> has_capacity:bool -> session:int -> node:int -> decision
(** Decide one join and update queue/counters accordingly. The caller
    performs the actual {!Dia_core.Dynamic.join} on [Admit]. *)

val pop : t -> (int * int) option
(** Dequeue the oldest waiting join (the caller admits it and it counts
    as drained). [None] when the queue is empty. *)

val abandon : t -> session:int -> bool
(** Remove a queued join whose client left before being admitted;
    [true] if it was in the queue. *)

val pending : t -> int
(** Current queue length. *)
