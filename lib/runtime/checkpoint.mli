(** Versioned, deterministic on-disk snapshots of the full controller
    state.

    A checkpoint captures {e everything} the soak loop needs to continue
    as if it had never stopped: the trace cursor (the event stream is a
    pure function of the scenario, so a single integer is the whole
    stream position), the assignment session (membership, failures,
    drift factors, counters, id cursor), the session↔client mapping, the
    SLO state machine, the admission queue and counters, the repair
    bookkeeping (including the sub-seed cursor for protocol-level repair
    epochs — the "RNG cursor"), and the accumulated objective trace and
    event log. A run killed with [SIGKILL] at any checkpoint boundary
    and resumed from the file produces a final report bit-identical to
    the uninterrupted run.

    The format is a line-oriented, versioned text file. Floats are
    printed with {!Codec.float_str}, which round-trips exactly. Writes
    are atomic (temp file + rename), so a kill {e during} a checkpoint
    write leaves the previous checkpoint intact. A [scenario] digest
    guards against resuming under a different configuration.

    {b Versioning.} Format v2 adds the standby map ([standby=] lines)
    and the offline-baseline samples ([baseline=] lines) to v1. Format
    v3 adds per-section integrity: a [crc=SECTION:HEX] line (CRC-32 of
    the section's lines, in file order) for the scalar block and each
    list kind — written even for empty sections, so wholesale deletion
    is detected — plus a strict truncation guard (the file must end with
    exactly the [end] marker). All three versions decode: a v1 file
    yields empty lists and [version = 1], and the soak rebuilds the
    standby map canonically on restore
    ({!Dia_core.Dynamic.refresh_standbys} in ascending client-id order —
    the same order the soak re-arms standbys at every checkpoint
    boundary), so resuming a v1 checkpoint stays bit-identical to the
    uninterrupted run. v2 files predate the checksums and are trusted
    as-is. {!encode} always writes the current version.

    {b Hardening.} {!decode} never raises and never yields a partial
    state: any corrupted, truncated or garbage input — including every
    single-bit flip and every proper truncation of a v3 file, which the
    qcheck mutation fuzzer pins — comes back as [Error] naming the
    failing section and, where one exists, the line position. *)

val version : int

type state = {
  version : int;  (** format version of the decoded file; {!encode} writes the current one *)
  digest : string;  (** hex digest of the scenario/config, from the soak *)
  cursor : int;  (** next trace event index *)
  now : float;  (** trace time of the last processed event *)
  (* session *)
  capacity : int option;
  members : (int * int * int) list;  (** (client id, node, server) *)
  standbys : (int * int) list;  (** (client id, standby server); [] in v1 files *)
  next_id : int;
  failed : int list;
  drift : (int * float) list;  (** (server, factor), only factors <> 1 *)
  session_stats : Dia_core.Dynamic.stats;
  sessions : (int * int) list;  (** trace session -> live client id *)
  (* controller *)
  slo : string;  (** {!Slo.encode} *)
  queue : (int * int) list;
  admitted : int;
  queued : int;
  shed : int;
  drained : int;
  abandoned : int;
  leaves : int;
  crashes : int;
  crashes_skipped : int;
  recoveries : int;
  drifts : int;
  stranded : int;
  repairs : int;
  repair_moves : int;
  max_epoch_moves : int;
  protocol_epochs : int;
  protocol_stalls : int;
  rng_cursor : int;
  lb : float;  (** last computed lower bound *)
  events_since_lb : int;
  checkpoints : int;
  trace_points : (float * float * float) list;
      (** (time, objective, ratio), oldest first *)
  baseline_points : (float * float * float) list;
      (** (time, online objective, offline re-solve objective) samples
          for the competitive-ratio harness, oldest first; [] unless the
          soak ran with [offline_baseline] (and in v1 files) *)
  log : Event_log.entry list;  (** oldest first *)
}

val encode : state -> string
val decode : string -> (state, string) result
(** [decode (encode s) = Ok s] bit-exactly for current-version states.
    v1/v2 files also decode (with their [version] and, for v1, empty
    standby/baseline lists); unknown versions are rejected. v3 input is
    verified section-by-section against its [crc=] lines before any
    field is trusted. Never raises. *)

val save : string -> state -> unit
(** Atomic write: the state is written to [path ^ ".tmp"] and renamed
    over [path].

    @raise Invalid_argument if [path] already holds a checkpoint whose
    header claims a {e newer} format version than this writer produces —
    an old binary must never silently clobber state persisted by a newer
    one. *)

val load : string -> (state, string) result
(** Read and {!decode} a checkpoint file; I/O errors come back as
    [Error]. *)
