(** Versioned, deterministic on-disk snapshots of the full controller
    state.

    A checkpoint captures {e everything} the soak loop needs to continue
    as if it had never stopped: the trace cursor (the event stream is a
    pure function of the scenario, so a single integer is the whole
    stream position), the assignment session (membership, failures,
    drift factors, counters, id cursor), the session↔client mapping, the
    SLO state machine, the admission queue and counters, the repair
    bookkeeping (including the sub-seed cursor for protocol-level repair
    epochs — the "RNG cursor"), and the accumulated objective trace and
    event log. A run killed with [SIGKILL] at any checkpoint boundary
    and resumed from the file produces a final report bit-identical to
    the uninterrupted run.

    The format is a line-oriented, versioned text file. Floats are
    printed with {!Codec.float_str}, which round-trips exactly. Writes
    are atomic (temp file + rename), so a kill {e during} a checkpoint
    write leaves the previous checkpoint intact. A [scenario] digest
    guards against resuming under a different configuration. *)

val version : int

type state = {
  digest : string;  (** hex digest of the scenario/config, from the soak *)
  cursor : int;  (** next trace event index *)
  now : float;  (** trace time of the last processed event *)
  (* session *)
  capacity : int option;
  members : (int * int * int) list;  (** (client id, node, server) *)
  next_id : int;
  failed : int list;
  drift : (int * float) list;  (** (server, factor), only factors <> 1 *)
  session_stats : Dia_core.Dynamic.stats;
  sessions : (int * int) list;  (** trace session -> live client id *)
  (* controller *)
  slo : string;  (** {!Slo.encode} *)
  queue : (int * int) list;
  admitted : int;
  queued : int;
  shed : int;
  drained : int;
  abandoned : int;
  leaves : int;
  crashes : int;
  crashes_skipped : int;
  recoveries : int;
  drifts : int;
  stranded : int;
  repairs : int;
  repair_moves : int;
  max_epoch_moves : int;
  protocol_epochs : int;
  protocol_stalls : int;
  rng_cursor : int;
  lb : float;  (** last computed lower bound *)
  events_since_lb : int;
  checkpoints : int;
  trace_points : (float * float * float) list;
      (** (time, objective, ratio), oldest first *)
  log : Event_log.entry list;  (** oldest first *)
}

val encode : state -> string
val decode : string -> (state, string) result
(** [decode (encode s) = Ok s], bit-exactly. Rejects unknown versions. *)

val save : string -> state -> unit
(** Atomic write: the state is written to [path ^ ".tmp"] and renamed
    over [path]. *)

val load : string -> (state, string) result
(** Read and {!decode} a checkpoint file; I/O errors come back as
    [Error]. *)
