let float_str f =
  if Float.is_nan f then "nan"
  else begin
    let exact fmt =
      let s = Printf.sprintf fmt f in
      if float_of_string s = f then Some s else None
    in
    match exact "%g" with
    | Some s -> s
    | None -> (
        match exact "%.12g" with Some s -> s | None -> Printf.sprintf "%.17g" f)
  end

let float_of_str s =
  match float_of_string_opt (String.trim s) with
  | Some f -> f
  | None -> failwith (Printf.sprintf "Codec.float_of_str: %S is not a float" s)

let escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (function
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let unescape s =
  let b = Buffer.create (String.length s) in
  let i = ref 0 in
  let n = String.length s in
  while !i < n do
    (if s.[!i] = '\\' && !i + 1 < n then begin
       (match s.[!i + 1] with
       | 'n' -> Buffer.add_char b '\n'
       | c -> Buffer.add_char b c);
       i := !i + 2
     end
     else begin
       Buffer.add_char b s.[!i];
       incr i
     end)
  done;
  Buffer.contents b
