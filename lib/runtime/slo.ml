type level = Healthy | Degraded | Critical

let level_name = function
  | Healthy -> "healthy"
  | Degraded -> "degraded"
  | Critical -> "critical"

type config = {
  degraded_at : float;
  critical_at : float;
  hysteresis : int;
  recover_margin : float;
}

let default_config =
  { degraded_at = 1.15; critical_at = 1.5; hysteresis = 3; recover_margin = 0.95 }

let validate_config c =
  if not (Float.is_finite c.degraded_at) || c.degraded_at < 1. then
    invalid_arg "Slo: degraded_at must be >= 1";
  if not (Float.is_finite c.critical_at) || c.critical_at < c.degraded_at then
    invalid_arg "Slo: critical_at must be >= degraded_at";
  if c.hysteresis < 1 then invalid_arg "Slo: hysteresis must be >= 1";
  if
    not (Float.is_finite c.recover_margin)
    || c.recover_margin <= 0. || c.recover_margin > 1.
  then invalid_arg "Slo: recover_margin must be in (0, 1]"

type t = {
  config : config;
  mutable current : level;
  mutable pending : level option;  (** candidate target of a transition *)
  mutable streak : int;  (** consecutive observations towards [pending] *)
}

let create config =
  validate_config config;
  { config; current = Healthy; pending = None; streak = 0 }

let level t = t.current

(* The level this observation argues for, relative to the current one
   (recovery is damped by the margin and steps down one level only). *)
let desired t ratio =
  let c = t.config in
  match t.current with
  | Healthy ->
      if ratio >= c.critical_at then Critical
      else if ratio >= c.degraded_at then Degraded
      else Healthy
  | Degraded ->
      if ratio >= c.critical_at then Critical
      else if ratio < c.degraded_at *. c.recover_margin then Healthy
      else Degraded
  | Critical ->
      if ratio < c.critical_at *. c.recover_margin then Degraded else Critical

let observe t ratio =
  if not (Float.is_finite ratio) then None
  else begin
    let target = desired t ratio in
    if target = t.current then begin
      t.pending <- None;
      t.streak <- 0;
      None
    end
    else begin
      (match t.pending with
      | Some p when p = target -> t.streak <- t.streak + 1
      | _ ->
          t.pending <- Some target;
          t.streak <- 1);
      if t.streak >= t.config.hysteresis then begin
        let from = t.current in
        t.current <- target;
        t.pending <- None;
        t.streak <- 0;
        Some (from, target)
      end
      else None
    end
  end

let level_char = function Healthy -> 'H' | Degraded -> 'D' | Critical -> 'C'

let level_of_char = function
  | 'H' -> Healthy
  | 'D' -> Degraded
  | 'C' -> Critical
  | c -> failwith (Printf.sprintf "Slo.decode: unknown level %C" c)

let encode t =
  Printf.sprintf "%c;%c;%d" (level_char t.current)
    (match t.pending with None -> '-' | Some p -> level_char p)
    t.streak

let decode config s =
  match String.split_on_char ';' s with
  | [ current; pending; streak ] when String.length current = 1 && String.length pending = 1 ->
      let t = create config in
      t.current <- level_of_char current.[0];
      t.pending <-
        (if pending.[0] = '-' then None else Some (level_of_char pending.[0]));
      (t.streak <-
         (match int_of_string_opt streak with
         | Some n when n >= 0 -> n
         | _ -> failwith "Slo.decode: bad streak"));
      t
  | _ -> failwith (Printf.sprintf "Slo.decode: malformed state %S" s)
