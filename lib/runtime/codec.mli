(** Exact textual encoding helpers shared by the checkpoint format and
    the event log.

    Everything the control plane persists must survive a
    serialize/parse cycle {e bit-identically} — resume correctness is
    proved by comparing whole reports for equality, so a float that
    comes back off by one ulp is a determinism bug. These helpers
    guarantee exact round trips while staying human-readable. *)

val float_str : float -> string
(** Shortest of [%g]/[%.12g]/[%.17g] that parses back to the identical
    double; [inf], [-inf] and [nan] spelled so {!float_of_str} accepts
    them. *)

val float_of_str : string -> float
(** Inverse of {!float_str}.

    @raise Failure on malformed input. *)

val escape : string -> string
(** Newlines and backslashes escaped so any string fits on one
    key=value line. *)

val unescape : string -> string
(** Inverse of {!escape}. *)
