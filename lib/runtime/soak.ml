module Dynamic = Dia_core.Dynamic
module Problem = Dia_core.Problem
module Greedy = Dia_core.Greedy
module Objective = Dia_core.Objective
module Lower_bound = Dia_core.Lower_bound
module Assignment = Dia_core.Assignment
module Fault = Dia_sim.Fault
module Dgreedy_protocol = Dia_sim.Dgreedy_protocol
module Weighted = Dia_coreset.Weighted

type scenario = {
  seed : int;
  nodes : int;
  servers : int;
  capacity : int option;
  horizon : float;
  join_rate : float;
  mean_lifetime : float;
  drift_period : float;
  drift_amplitude : float;
  fault : Fault.plan;
  clients : int;
  coreset_eps : float option;
  delay : Dia_core.Delay.t option;
}

let default_scenario =
  {
    seed = 42;
    nodes = 120;
    servers = 8;
    capacity = None;
    horizon = 300.;
    join_rate = 1.;
    mean_lifetime = 80.;
    drift_period = 20.;
    drift_amplitude = 0.3;
    fault =
      (match Fault.of_string "loss:0.1+crash:2@60~180" with
      | Ok p -> p
      | Error m -> failwith m);
    clients = 0;
    coreset_eps = None;
    delay = None;
  }

type config = {
  slo : Slo.config;
  budget : int;
  max_queue : int;
  lb_every : int;
  checkpoint_every : int;
  protocol_repair : bool;
  max_protocol_attempts : int;
  standby : bool;
  standby_bound : float;
  offline_baseline : bool;
}

let default_config =
  {
    slo = Slo.default_config;
    budget = 8;
    max_queue = 64;
    lb_every = 10;
    checkpoint_every = 100;
    protocol_repair = true;
    max_protocol_attempts = 3;
    standby = true;
    standby_bound = 3.0;
    offline_baseline = false;
  }

let validate scenario config =
  if scenario.nodes < 2 then invalid_arg "Soak: nodes must be >= 2";
  if scenario.servers < 1 || scenario.servers > scenario.nodes then
    invalid_arg "Soak: servers must be in [1, nodes]";
  (match scenario.capacity with
  | Some c when c < 1 -> invalid_arg "Soak: capacity must be positive"
  | _ -> ());
  if scenario.horizon < 0. || not (Float.is_finite scenario.horizon) then
    invalid_arg "Soak: horizon must be finite and non-negative";
  if scenario.join_rate <= 0. then invalid_arg "Soak: join_rate must be positive";
  if scenario.mean_lifetime <= 0. then
    invalid_arg "Soak: mean_lifetime must be positive";
  if scenario.drift_amplitude < 0. || scenario.drift_amplitude > 1. then
    invalid_arg "Soak: drift_amplitude must be in [0, 1]";
  if scenario.clients < 0 then invalid_arg "Soak: clients must be non-negative";
  (match (scenario.capacity, scenario.clients) with
  | Some c, n when n > c * scenario.servers ->
      invalid_arg "Soak: pre-populated clients exceed total capacity"
  | _ -> ());
  (match scenario.coreset_eps with
  | Some eps when (not (Float.is_finite eps)) || eps < 0. ->
      invalid_arg "Soak: coreset_eps must be finite and >= 0"
  | Some _ when scenario.capacity <> None ->
      invalid_arg
        "Soak: coreset_eps requires an uncapacitated scenario (a coreset \
         point stands for an unbounded population)"
  | _ -> ());
  (match scenario.delay with
  | Some d ->
      Dia_core.Delay.validate d;
      if scenario.coreset_eps <> None then
        invalid_arg
          "Soak: delay requires classic mode (coreset buckets hide the true \
           per-server load from the delay model)"
  | None -> ());
  Slo.validate_config config.slo;
  if config.budget < 0 then invalid_arg "Soak: budget must be non-negative";
  if config.max_queue < 0 then invalid_arg "Soak: max_queue must be non-negative";
  if config.lb_every < 1 then invalid_arg "Soak: lb_every must be >= 1";
  if config.checkpoint_every < 0 then
    invalid_arg "Soak: checkpoint_every must be non-negative";
  if config.max_protocol_attempts < 1 then
    invalid_arg "Soak: max_protocol_attempts must be >= 1";
  if not (Float.is_finite config.standby_bound) || config.standby_bound < 1. then
    invalid_arg "Soak: standby_bound must be finite and >= 1"

let fs = Codec.float_str

let digest scenario config =
  let s = scenario and c = config in
  let canonical =
    Printf.sprintf
      "soak seed=%d nodes=%d servers=%d capacity=%s horizon=%s join_rate=%s \
       mean_lifetime=%s drift_period=%s drift_amplitude=%s fault=%s \
       slo=%s,%s,%d,%s budget=%d max_queue=%d lb_every=%d checkpoint_every=%d \
       protocol_repair=%b max_protocol_attempts=%d standby=%b standby_bound=%s \
       offline_baseline=%b"
      s.seed s.nodes s.servers
      (match s.capacity with None -> "none" | Some c -> string_of_int c)
      (fs s.horizon) (fs s.join_rate) (fs s.mean_lifetime) (fs s.drift_period)
      (fs s.drift_amplitude)
      (Fault.to_string s.fault)
      (fs c.slo.Slo.degraded_at) (fs c.slo.Slo.critical_at) c.slo.Slo.hysteresis
      (fs c.slo.Slo.recover_margin) c.budget c.max_queue c.lb_every
      c.checkpoint_every c.protocol_repair c.max_protocol_attempts c.standby
      (fs c.standby_bound) c.offline_baseline
  in
  (* The weighted-mode fields extend the canonical string only when in
     use, so classic scenarios keep their historical digests (and their
     checkpoints stay resumable). *)
  let canonical =
    if s.clients = 0 && s.coreset_eps = None then canonical
    else
      canonical
      ^ Printf.sprintf " clients=%d coreset_eps=%s" s.clients
          (match s.coreset_eps with None -> "none" | Some e -> fs e)
  in
  (* Same deal for the delay model: delay-less scenarios keep their
     historical digests. *)
  let canonical =
    match s.delay with
    | None -> canonical
    | Some d ->
        canonical ^ Printf.sprintf " delay=%s" (Dia_core.Delay.to_string d)
  in
  Digest.to_hex (Digest.string canonical)

(* Distinct random server nodes — a deterministic function of the seed,
   independent of the trace streams. *)
let place ~seed ~servers ~nodes =
  let rng = Random.State.make [| seed; 0x736f616b |] in
  let chosen = Array.make nodes false in
  let out = Array.make servers 0 in
  let count = ref 0 in
  while !count < servers do
    let n = Random.State.int rng nodes in
    if not chosen.(n) then begin
      chosen.(n) <- true;
      out.(!count) <- n;
      incr count
    end
  done;
  out

let build_trace scenario =
  let churn =
    Trace.churn ~seed:scenario.seed ~nodes:scenario.nodes
      ~rate:scenario.join_rate ~mean_lifetime:scenario.mean_lifetime
      ~horizon:scenario.horizon
  in
  let drift =
    if scenario.drift_period > 0. && scenario.drift_amplitude > 0. then
      Trace.drift_walk ~seed:scenario.seed ~servers:scenario.servers
        ~period:scenario.drift_period ~amplitude:scenario.drift_amplitude
        ~horizon:scenario.horizon
    else []
  in
  let crashes = Trace.crashes_of_plan scenario.fault ~servers:scenario.servers in
  Trace.merge ~horizon:scenario.horizon [ churn; drift; crashes ]

type report = {
  digest : string;
  events : int;
  horizon : float;
  clients : int;
  weighted : bool;
  delay_model : string option;
  coreset_points : int;
  prepop_seconds : float;
  loop_seconds : float;
  live_servers : int;
  total_servers : int;
  final_objective : float;
  final_lb : float;
  final_ratio : float;
  resolve_objective : float;
  steady_ratio : float;
  budget : int;
  max_epoch_moves : int;
  slo_level : Slo.level;
  admitted : int;
  queued : int;
  shed : int;
  drained : int;
  abandoned : int;
  leaves : int;
  crashes : int;
  crashes_skipped : int;
  recoveries : int;
  drifts : int;
  stranded : int;
  promotions : int;
  promoted_clients : int;
  fallback_clients : int;
  standby_refreshes : int;
  standby_changed : int;
  standby_breaches : int;
  repairs : int;
  repair_moves : int;
  protocol_epochs : int;
  protocol_stalls : int;
  checkpoints : int;
  session_stats : Dynamic.stats;
  trace_points : (float * float * float) list;
  baseline_points : (float * float * float) list;
  competitive_mean : float;
  competitive_max : float;
  log : Event_log.entry list;
}

type outcome = Completed of report | Killed of Checkpoint.state

exception Kill of Checkpoint.state

let level_rank = function Slo.Healthy -> 0 | Slo.Degraded -> 1 | Slo.Critical -> 2

let run ?checkpoint_path ?state_dir ?(keep = 3) ?disk ?resume_from ?kill_after
    ?kill_at_event scenario config =
  validate scenario config;
  if keep < 1 then invalid_arg "Soak: keep must be >= 1";
  (match kill_at_event with
  | Some n when n < 0 -> invalid_arg "Soak: kill_at_event must be >= 0"
  | _ -> ());
  let disk =
    match disk with Some d -> d | None -> Disk.create scenario.fault
  in
  let dg = digest scenario config in
  let matrix =
    Dia_latency.Synthetic.internet_like ~seed:scenario.seed scenario.nodes
  in
  let server_nodes =
    place ~seed:scenario.seed ~servers:scenario.servers ~nodes:scenario.nodes
  in
  let trace = build_trace scenario in
  (* --- controller state: fresh, or rebuilt from a checkpoint --- *)
  let session, sessions, admission, slo, start_cursor =
    match resume_from with
    | None ->
        ( Dynamic.create ?capacity:scenario.capacity ?delay:scenario.delay matrix
            ~servers:server_nodes,
          Hashtbl.create 256,
          Admission.create ~max_queue:config.max_queue,
          Slo.create config.slo,
          0 )
    | Some st ->
        if st.Checkpoint.digest <> dg then
          invalid_arg
            "Soak.run: checkpoint digest mismatch (different scenario/config)";
        let session =
          Dynamic.restore ?capacity:st.Checkpoint.capacity
            ?delay:scenario.delay
            ?standbys:
              (if st.Checkpoint.version >= 2 then Some st.Checkpoint.standbys
               else None)
            matrix ~servers:server_nodes ~members:st.Checkpoint.members
            ~next_id:st.Checkpoint.next_id ~failed:st.Checkpoint.failed
            ~drift:st.Checkpoint.drift ~stats:st.Checkpoint.session_stats
        in
        (* A v1 checkpoint predates the standby map; rebuild it
           canonically. Checkpoints are only written right after a
           canonical refresh, so this reproduces the exact map a v2 file
           would have carried — the upgrade is bit-identical. *)
        if st.Checkpoint.version < 2 && config.standby then
          ignore (Dynamic.refresh_standbys session);
        let sessions = Hashtbl.create 256 in
        List.iter
          (fun (sid, id) -> Hashtbl.replace sessions sid id)
          st.Checkpoint.sessions;
        let admission = Admission.create ~max_queue:config.max_queue in
        admission.Admission.queue <- st.Checkpoint.queue;
        admission.Admission.admitted <- st.Checkpoint.admitted;
        admission.Admission.queued <- st.Checkpoint.queued;
        admission.Admission.shed <- st.Checkpoint.shed;
        admission.Admission.drained <- st.Checkpoint.drained;
        admission.Admission.abandoned <- st.Checkpoint.abandoned;
        (session, sessions, admission, Slo.decode config.slo st.Checkpoint.slo,
         st.Checkpoint.cursor)
  in
  (* Weighted mode: the [sessions] table maps session id -> original
     node (not Dynamic client id), and a coreset bucket layer in front
     of the Dynamic turns most joins/leaves into O(1) counter bumps.
     The layer is rebuilt canonically from the session list on resume —
     the checkpoint format does not change. *)
  let weighted =
    match scenario.coreset_eps with
    | None -> None
    | Some eps ->
        let counts = Hashtbl.create 64 in
        Hashtbl.iter
          (fun _sid node ->
            Hashtbl.replace counts node
              (1 + Option.value ~default:0 (Hashtbl.find_opt counts node)))
          sessions;
        let counts = Hashtbl.fold (fun node c acc -> (node, c) :: acc) counts [] in
        Some (Weighted.attach ~seed:scenario.seed ~eps matrix ~counts session)
  in
  (* Connect/disconnect one session, in either mode; both return the
     Dynamic client id the event log names (in weighted mode, the id of
     the bucket's representative member). *)
  let connect sid node =
    match weighted with
    | Some w ->
        Weighted.add w ~node;
        Hashtbl.replace sessions sid node;
        Weighted.handle w ~node
    | None ->
        let id = Dynamic.join session ~node in
        Hashtbl.replace sessions sid id;
        id
  in
  let disconnect sid value =
    Hashtbl.remove sessions sid;
    match weighted with
    | Some w ->
        let id = Weighted.handle w ~node:value in
        Weighted.remove w ~node:value;
        id
    | None ->
        Dynamic.leave session value;
        value
  in
  let connected () =
    match weighted with
    | Some w -> Weighted.sessions w
    | None -> Dynamic.num_clients session
  in
  (* Pre-populate the base load (fresh runs only — a resumed run carries
     it in the checkpointed session list). Synthetic sessions use
     negative ids, which no trace event references, so they never leave;
     they bypass admission control and the event log (a million log
     lines would drown the signal). *)
  let prepop_seconds = ref 0. in
  (match resume_from with
  | Some _ -> ()
  | None ->
      if scenario.clients > 0 then begin
        let t0 = Sys.time () in
        let rng = Random.State.make [| scenario.seed; 0xc11e |] in
        for i = 1 to scenario.clients do
          let node = Random.State.int rng scenario.nodes in
          ignore (connect (-i) node)
        done;
        prepop_seconds := Sys.time () -. t0
      end);
  let leaves = ref 0 and crashes = ref 0 and crashes_skipped = ref 0 in
  let recoveries = ref 0 and drifts = ref 0 and stranded = ref 0 in
  let repairs = ref 0 and repair_moves = ref 0 and max_epoch_moves = ref 0 in
  let protocol_epochs = ref 0 and protocol_stalls = ref 0 in
  let rng_cursor = ref 0 and lb = ref nan and events_since_lb = ref 0 in
  let checkpoints = ref 0 in
  let trace_points = ref [] (* newest first *) and log = ref [] in
  let baseline_points = ref [] (* newest first *) in
  (match resume_from with
  | None -> ()
  | Some st ->
      leaves := st.Checkpoint.leaves;
      crashes := st.Checkpoint.crashes;
      crashes_skipped := st.Checkpoint.crashes_skipped;
      recoveries := st.Checkpoint.recoveries;
      drifts := st.Checkpoint.drifts;
      stranded := st.Checkpoint.stranded;
      repairs := st.Checkpoint.repairs;
      repair_moves := st.Checkpoint.repair_moves;
      max_epoch_moves := st.Checkpoint.max_epoch_moves;
      protocol_epochs := st.Checkpoint.protocol_epochs;
      protocol_stalls := st.Checkpoint.protocol_stalls;
      rng_cursor := st.Checkpoint.rng_cursor;
      lb := st.Checkpoint.lb;
      events_since_lb := st.Checkpoint.events_since_lb;
      checkpoints := st.Checkpoint.checkpoints;
      trace_points := List.rev st.Checkpoint.trace_points;
      baseline_points := List.rev st.Checkpoint.baseline_points;
      log := List.rev st.Checkpoint.log);
  let log_event time kind = log := { Event_log.time; kind } :: !log in
  let has_capacity () =
    match scenario.capacity with
    | None -> Dynamic.active_servers session <> []
    | Some c ->
        List.exists
          (fun s -> Dynamic.load session s < c)
          (Dynamic.active_servers session)
  in
  (* The offline instance over the *surviving* servers, with the drifted
     matrix: what lower bounds and re-solves must be measured against.
     Also returns survivor index -> full server index. *)
  let survivor_problem () =
    if Dynamic.num_clients session = 0 then None
    else
      let p_full, _ = Dynamic.snapshot session in
      let live = Array.of_list (Dynamic.active_servers session) in
      if Array.length live = Problem.num_servers p_full then Some (p_full, live)
      else
        let full_servers = Problem.servers p_full in
        let servers = Array.map (fun s -> full_servers.(s)) live in
        let p =
          Problem.make ?capacity:scenario.capacity
            ~latency:(Problem.latency p_full) ~servers
            ~clients:(Problem.clients p_full) ()
        in
        Some (p, live)
  in
  (* With a delay model the control plane watches the load-aware pair —
     D_load(A) against LB_load — the same objective the session's
     placement scans minimise; without one, everything below reduces to
     the historical D/LB and is byte-identical to earlier versions. *)
  let objective_name =
    match scenario.delay with None -> "d" | Some _ -> "d_load"
  in
  let objective_now () =
    match scenario.delay with
    | None -> Dynamic.objective session
    | Some _ -> Dynamic.objective_load session
  in
  let resolve_now p =
    match scenario.delay with
    | None -> Objective.max_interaction_path p (Greedy.assign p)
    | Some delay ->
        Objective.max_interaction_path_load p ~delay (Greedy.assign_load ~delay p)
  in
  let recompute_lb now =
    events_since_lb := 0;
    (* The session maintains the bound incrementally (node-level, live
       servers only) — equal to [Lower_bound.compute] on the survivor
       problem up to float association, at amortized O(|S|) instead of
       O(n²·|S|) per refresh. *)
    if Dynamic.num_clients session = 0 then lb := nan
    else
      lb :=
        (match scenario.delay with
        | None -> Dynamic.lower_bound session
        | Some _ -> Dynamic.lower_bound_load session);
    let obj = objective_now () in
    let ratio = if !lb > 0. && Float.is_finite obj then obj /. !lb else nan in
    trace_points := (now, obj, ratio) :: !trace_points;
    (* Competitive-ratio sampling: at every refresh point, pit the online
       (sticky) objective against a fresh offline Greedy re-solve over
       the same survivors — the baseline the empirical competitive ratio
       is measured from. *)
    if config.offline_baseline then
      match survivor_problem () with
      | None -> ()
      | Some (p, _) ->
          let resolve = resolve_now p in
          baseline_points := (now, obj, resolve) :: !baseline_points
  in
  let current_ratio () =
    let obj = objective_now () in
    if !lb > 0. && Float.is_finite obj then obj /. !lb else nan
  in
  (* Protocol-level repair epoch: run Distributed-Greedy over the
     survivors under the ambient fault plan, restarting stalled runs
     with a doubled deadline (capped exponential backoff), then apply
     the plan move-by-move iff it strictly improves the objective and
     fits the remaining epoch budget. *)
  let protocol_epoch now epoch_moves =
    match survivor_problem () with
    | None -> ()
    | Some (p, live) ->
        let base_tuning = Dgreedy_protocol.default_tuning p in
        (* Disk rules are not network weather: a plan that only injects
           storage faults must leave protocol-repair epochs running over
           a reliable network, byte-identical to the disk-fault-free run. *)
        let ambient =
          not (Fault.equal (Fault.network_rules scenario.fault) Fault.reliable)
        in
        let rec attempt n tuning =
          let seed = scenario.seed + 0x5eed + (7919 * !rng_cursor) in
          incr rng_cursor;
          let fault =
            if ambient then Some (Fault.instantiate ~seed scenario.fault)
            else None
          in
          let res = Dgreedy_protocol.run ?fault ~tuning p in
          incr protocol_epochs;
          if res.Dgreedy_protocol.stalled then begin
            incr protocol_stalls;
            if n < config.max_protocol_attempts then
              attempt (n + 1)
                {
                  tuning with
                  Dgreedy_protocol.deadline =
                    tuning.Dgreedy_protocol.deadline *. 2.;
                }
            else (n, res)
          end
          else (n, res)
        in
        let attempts, res = attempt 1 base_tuning in
        let members = Dynamic.members session in
        let target = Assignment.to_array res.Dgreedy_protocol.assignment in
        let plan_moves =
          List.mapi (fun i (id, _node, server) -> (i, id, server)) members
          |> List.filter_map (fun (i, id, server) ->
                 let dst = live.(target.(i)) in
                 if dst <> server then Some (id, server, dst) else None)
        in
        let n_moves = List.length plan_moves in
        let improves =
          Float.is_finite res.Dgreedy_protocol.objective
          && res.Dgreedy_protocol.objective < Dynamic.objective session
        in
        let fits = n_moves > 0 && !epoch_moves + n_moves <= config.budget in
        (* A capacitated plan may need a specific move order to stay
           feasible at every intermediate step; find one, or refuse. *)
        let order =
          if not (improves && fits) then None
          else
            match scenario.capacity with
            | None -> Some plan_moves
            | Some cap ->
                let loads =
                  Array.init scenario.servers (fun s -> Dynamic.load session s)
                in
                let order = ref [] and pending = ref plan_moves in
                let progress = ref true in
                while !pending <> [] && !progress do
                  progress := false;
                  pending :=
                    List.filter
                      (fun (id, src, dst) ->
                        if loads.(dst) < cap then begin
                          loads.(dst) <- loads.(dst) + 1;
                          loads.(src) <- loads.(src) - 1;
                          order := (id, src, dst) :: !order;
                          progress := true;
                          false
                        end
                        else true)
                      !pending
                done;
                if !pending = [] then Some (List.rev !order) else None
        in
        let applied =
          match order with
          | None -> false
          | Some moves ->
              List.iter (fun (id, _src, dst) -> Dynamic.move session id dst) moves;
              epoch_moves := !epoch_moves + n_moves;
              repair_moves := !repair_moves + n_moves;
              true
        in
        log_event now
          (Event_log.Protocol_repair
             {
               attempt = attempts;
               stalled = res.Dgreedy_protocol.stalled;
               moves = n_moves;
               applied;
             })
  in
  let repair now to_ =
    let epoch_moves = ref 0 in
    let before = objective_now () in
    let moves = Dynamic.rebalance ~max_moves:config.budget session in
    epoch_moves := moves;
    incr repairs;
    repair_moves := !repair_moves + moves;
    log_event now
      (Event_log.Repair
         { moves; budget = config.budget; before; after = objective_now () });
    if to_ = Slo.Critical && config.protocol_repair then
      protocol_epoch now epoch_moves;
    if !epoch_moves > !max_epoch_moves then max_epoch_moves := !epoch_moves
  in
  let drain now =
    if Slo.level slo = Slo.Healthy then begin
      let continue = ref true in
      while !continue do
        if not (has_capacity ()) then continue := false
        else
          match Admission.pop admission with
          | None -> continue := false
          | Some (sid, node) ->
              let id = connect sid node in
              log_event now
                (Event_log.Drained
                   { session = sid; client = id; server = Dynamic.server_of session id })
      done
    end
  in
  (* Stranded orphans are never dropped on the floor: their trace
     sessions re-enter admission control (capacity is gone, so they
     queue under Healthy/Degraded and shed under Critical or a full
     queue), exactly like a fresh arrival that found no room. *)
  let requeue_stranded now stranded =
    if stranded <> [] then begin
      let by_id = Hashtbl.create 8 in
      Hashtbl.iter (fun sid id -> Hashtbl.replace by_id id sid) sessions;
      List.iter
        (fun (id, node) ->
          match Hashtbl.find_opt by_id id with
          | None -> ()
          | Some sid -> (
              Hashtbl.remove sessions sid;
              match
                Admission.consider admission ~level:(Slo.level slo)
                  ~has_capacity:false ~session:sid ~node
              with
              | Admission.Admit -> ()  (* unreachable: has_capacity is false *)
              | Admission.Queue -> log_event now (Event_log.Queued { session = sid })
              | Admission.Shed -> log_event now (Event_log.Shed { session = sid })))
        stranded
    end
  in
  let breach_pending = ref false in
  let dispatch now kind =
    match kind with
    | Trace.Join { session = sid; node } -> (
        match
          Admission.consider admission ~level:(Slo.level slo)
            ~has_capacity:(has_capacity ()) ~session:sid ~node
        with
        | Admission.Admit ->
            let id = connect sid node in
            log_event now
              (Event_log.Join
                 { session = sid; client = id; server = Dynamic.server_of session id });
            false
        | Admission.Queue ->
            log_event now (Event_log.Queued { session = sid });
            false
        | Admission.Shed ->
            log_event now (Event_log.Shed { session = sid });
            false)
    | Trace.Leave { session = sid } -> (
        match Hashtbl.find_opt sessions sid with
        | Some value ->
            let id = disconnect sid value in
            incr leaves;
            log_event now (Event_log.Leave { session = sid; client = id });
            false
        | None ->
            (* queued (abandon), shed, or stranded — nothing connected *)
            ignore (Admission.abandon admission ~session:sid);
            false)
    | Trace.Crash { server } ->
        let failed = Dynamic.failed_servers session in
        let live = Dynamic.active_servers session in
        if List.mem server failed || List.length live <= 1 then begin
          incr crashes_skipped;
          log_event now (Event_log.Crash_skipped { server });
          false
        end
        else if config.standby then begin
          (* O(1)-per-client repair path: promote armed standbys first;
             budgeted rebalance and protocol epochs only run afterwards
             if the SLO (or the standby bound) says the result is not
             good enough. *)
          let r = Dynamic.promote_standby session server in
          incr crashes;
          stranded := !stranded + List.length r.Dynamic.stranded;
          log_event now
            (Event_log.Promote
               {
                 server;
                 promoted = r.Dynamic.promoted;
                 fallback = r.Dynamic.fallback;
                 stranded = List.length r.Dynamic.stranded;
               });
          requeue_stranded now r.Dynamic.stranded;
          breach_pending := true;
          true
        end
        else begin
          let r = Dynamic.fail_server_report session server in
          incr crashes;
          let n_stranded = List.length r.Dynamic.stranded in
          stranded := !stranded + n_stranded;
          log_event now
            (Event_log.Crash
               { server; migrated = r.Dynamic.migrated; stranded = n_stranded });
          requeue_stranded now r.Dynamic.stranded;
          true
        end
    | Trace.Recover { server } ->
        if List.mem server (Dynamic.failed_servers session) then begin
          Dynamic.recover_server session server;
          incr recoveries;
          log_event now (Event_log.Recover { server });
          true
        end
        else false (* its crash was refused or never happened *)
    | Trace.Drift { server; factor } ->
        Dynamic.set_drift session ~server ~factor;
        incr drifts;
        log_event now (Event_log.Drift { server; factor });
        true
  in
  let capture ~cursor ~now =
    let sessions_list =
      Hashtbl.fold (fun sid id acc -> (sid, id) :: acc) sessions []
      |> List.sort compare
    in
    let drift_list =
      List.filter_map
        (fun s ->
          let f = Dynamic.drift session s in
          if f <> 1.0 then Some (s, f) else None)
        (List.init scenario.servers Fun.id)
    in
    {
      Checkpoint.version = Checkpoint.version;
      digest = dg;
      cursor;
      now;
      capacity = scenario.capacity;
      members = Dynamic.members session;
      standbys = Dynamic.standbys session;
      next_id = Dynamic.next_id session;
      failed = Dynamic.failed_servers session;
      drift = drift_list;
      session_stats = Dynamic.stats session;
      sessions = sessions_list;
      slo = Slo.encode slo;
      queue = admission.Admission.queue;
      admitted = admission.Admission.admitted;
      queued = admission.Admission.queued;
      shed = admission.Admission.shed;
      drained = admission.Admission.drained;
      abandoned = admission.Admission.abandoned;
      leaves = !leaves;
      crashes = !crashes;
      crashes_skipped = !crashes_skipped;
      recoveries = !recoveries;
      drifts = !drifts;
      stranded = !stranded;
      repairs = !repairs;
      repair_moves = !repair_moves;
      max_epoch_moves = !max_epoch_moves;
      protocol_epochs = !protocol_epochs;
      protocol_stalls = !protocol_stalls;
      rng_cursor = !rng_cursor;
      lb = !lb;
      events_since_lb = !events_since_lb;
      checkpoints = !checkpoints;
      trace_points = List.rev !trace_points;
      baseline_points = List.rev !baseline_points;
      log = List.rev !log;
    }
  in
  (* Durable-recovery state: a write-ahead journal of the log lines each
     event appends, plus numbered checkpoint generations, both under
     [state_dir] and both written through the storage fault injector. *)
  let journal =
    match state_dir with
    | None -> None
    | Some dir ->
        Generation.ensure_dir dir;
        Some
          (Journal.create ~disk ~path:(Filename.concat dir "journal") ~digest:dg
             ~base:start_cursor ())
  in
  let last_now = ref 0. in
  let step i =
    let ev = trace.(i) in
    let now = ev.Trace.time in
    last_now := now;
    let log_mark = !log in
    let structural = dispatch now ev.Trace.kind in
    incr events_since_lb;
    if structural || !events_since_lb >= config.lb_every then recompute_lb now;
    (* Standby-bound guard: when a promotion just landed, check the
       post-promotion D/LB against the configured bound and repair
       immediately (budgeted) on a breach — before the SLO machinery
       gets a say. *)
    if !breach_pending then begin
      breach_pending := false;
      let ratio = current_ratio () in
      if Float.is_finite ratio && ratio > config.standby_bound then begin
        log_event now
          (Event_log.Standby_breach { ratio; bound = config.standby_bound });
        repair now Slo.Degraded
      end
    end;
    (match Slo.observe slo (current_ratio ()) with
    | None -> ()
    | Some (from_, to_) ->
        log_event now
          (Event_log.Transition
             { from_; to_; ratio = current_ratio (); objective = objective_name });
        if level_rank to_ > level_rank from_ then repair now to_);
    drain now;
    let boundary =
      config.checkpoint_every > 0 && (i + 1) mod config.checkpoint_every = 0
    in
    if boundary then begin
      (* Canonical standby re-arm at the boundary, *before* capture: the
         persisted map is then exactly what a restore-and-refresh would
         rebuild, which is what keeps v1-checkpoint upgrades
         bit-identical. *)
      if config.standby then begin
        let changed = Dynamic.refresh_standbys session in
        log_event now (Event_log.Standby_refresh { changed })
      end;
      incr checkpoints;
      log_event now (Event_log.Checkpoint { id = !checkpoints })
    end;
    (* Journal this event's log lines before any checkpoint that covers
       them is written — the write-ahead discipline recovery audits. *)
    (match journal with
    | None -> ()
    | Some w ->
        let rec fresh acc l =
          if l == log_mark then acc
          else match l with [] -> acc | e :: tl -> fresh (e :: acc) tl
        in
        (match fresh [] !log with
        | [] -> ()
        | entries -> Journal.append w ~cursor:i (Event_log.render entries)));
    if boundary then begin
      (* Materialising the state is O(sessions) — with a million
         weighted sessions it would dwarf the events themselves — so
         only capture when someone consumes it. The boundary itself
         (refresh + log entry + counter) is identical either way, which
         is what the determinism contract hashes. *)
      if checkpoint_path <> None || state_dir <> None || kill_after <> None
      then begin
        let st = capture ~cursor:(i + 1) ~now in
        (match journal with Some w -> Journal.flush w | None -> ());
        (match checkpoint_path with
        | Some path -> Checkpoint.save path st
        | None -> ());
        (match state_dir with
        | Some dir -> ignore (Generation.save ~disk ~dir ~keep st)
        | None -> ());
        match kill_after with
        | Some n when !checkpoints >= n -> raise (Kill st)
        | _ -> ()
      end
    end;
    match kill_at_event with
    | Some n when n = i -> raise (Kill (capture ~cursor:(i + 1) ~now))
    | _ -> ()
  in
  let loop_start = Sys.time () in
  match
    for i = start_cursor to Array.length trace - 1 do
      step i
    done
  with
  | exception Kill st ->
      (* The deterministic kill is graceful about the journal: buffered
         records are flushed so the audit has full coverage up to the
         kill point. Losing the buffer to a real SIGKILL is modeled
         explicitly by [jtorn:] plans instead. *)
      (match journal with Some w -> Journal.close w | None -> ());
      Killed st
  | () ->
      (match journal with Some w -> Journal.close w | None -> ());
      let loop_seconds = Sys.time () -. loop_start in
      recompute_lb !last_now;
      let final_objective = objective_now () in
      let final_ratio =
        if !lb > 0. && Float.is_finite final_objective then
          final_objective /. !lb
        else nan
      in
      let resolve_objective =
        match survivor_problem () with
        | None -> nan
        | Some (p, _) -> resolve_now p
      in
      let steady_ratio =
        if resolve_objective > 0. && Float.is_finite final_objective then
          final_objective /. resolve_objective
        else 1.0
      in
      (* Failover/standby counters are derived from the event log rather
         than checkpointed: the log is already part of the determinism
         contract, so resumed runs reconstruct identical numbers without
         widening the checkpoint format with more scalars. *)
      let promotions = ref 0 and promoted_clients = ref 0 in
      let fallback_clients = ref 0 and standby_refreshes = ref 0 in
      let standby_changed = ref 0 and standby_breaches = ref 0 in
      List.iter
        (fun e ->
          match e.Event_log.kind with
          | Event_log.Promote { promoted; fallback; _ } ->
              incr promotions;
              promoted_clients := !promoted_clients + promoted;
              fallback_clients := !fallback_clients + fallback
          | Event_log.Standby_refresh { changed } ->
              incr standby_refreshes;
              standby_changed := !standby_changed + changed
          | Event_log.Standby_breach _ -> incr standby_breaches
          | _ -> ())
        !log;
      let ratios =
        List.filter_map
          (fun (_, online, resolve) ->
            if resolve > 0. && Float.is_finite online then
              Some (online /. resolve)
            else None)
          !baseline_points
      in
      let competitive_max =
        match ratios with
        | [] -> nan
        | r :: rest -> List.fold_left Float.max r rest
      in
      let competitive_mean =
        match ratios with
        | [] -> nan
        | _ ->
            List.fold_left ( +. ) 0. ratios /. float_of_int (List.length ratios)
      in
      Completed
        {
          digest = dg;
          events = Array.length trace;
          horizon = scenario.horizon;
          clients = connected ();
          weighted = weighted <> None;
          delay_model = Option.map Dia_core.Delay.to_string scenario.delay;
          coreset_points = Dynamic.num_clients session;
          prepop_seconds = !prepop_seconds;
          loop_seconds;
          live_servers = List.length (Dynamic.active_servers session);
          total_servers = scenario.servers;
          final_objective;
          final_lb = !lb;
          final_ratio;
          resolve_objective;
          steady_ratio;
          budget = config.budget;
          max_epoch_moves = !max_epoch_moves;
          slo_level = Slo.level slo;
          admitted = admission.Admission.admitted;
          queued = admission.Admission.queued;
          shed = admission.Admission.shed;
          drained = admission.Admission.drained;
          abandoned = admission.Admission.abandoned;
          leaves = !leaves;
          crashes = !crashes;
          crashes_skipped = !crashes_skipped;
          recoveries = !recoveries;
          drifts = !drifts;
          stranded = !stranded;
          promotions = !promotions;
          promoted_clients = !promoted_clients;
          fallback_clients = !fallback_clients;
          standby_refreshes = !standby_refreshes;
          standby_changed = !standby_changed;
          standby_breaches = !standby_breaches;
          repairs = !repairs;
          repair_moves = !repair_moves;
          protocol_epochs = !protocol_epochs;
          protocol_stalls = !protocol_stalls;
          checkpoints = !checkpoints;
          session_stats = Dynamic.stats session;
          trace_points = List.rev !trace_points;
          baseline_points = List.rev !baseline_points;
          competitive_mean;
          competitive_max;
          log = List.rev !log;
        }

let render r =
  let b = Buffer.create 1024 in
  let line fmt = Printf.ksprintf (fun l -> Buffer.add_string b (l ^ "\n")) fmt in
  line "soak report (digest %s)" r.digest;
  line "  events              %d over horizon %s" r.events (fs r.horizon);
  line "  clients             %d connected, servers %d/%d live" r.clients
    r.live_servers r.total_servers;
  if r.weighted then
    line "  coreset             %d points carry the %d weighted sessions"
      r.coreset_points r.clients;
  (match r.delay_model with
  | None -> ()
  | Some d ->
      line "  delay model         %s (objective and bound are D_load / LB_load)" d);
  line "  objective D(A)      %s" (fs r.final_objective);
  line "  lower bound LB      %s" (fs r.final_lb);
  line "  ratio D/LB          %s (slo %s)" (fs r.final_ratio)
    (Slo.level_name r.slo_level);
  line "  greedy re-solve     %s" (fs r.resolve_objective);
  line "  steady-state ratio  %s (D(A) / re-solve)" (fs r.steady_ratio);
  line "  admission           admitted=%d queued=%d drained=%d abandoned=%d shed=%d"
    r.admitted r.queued r.drained r.abandoned r.shed;
  line "  churn               leaves=%d" r.leaves;
  line "  chaos               crashes=%d refused=%d recoveries=%d drifts=%d stranded=%d"
    r.crashes r.crashes_skipped r.recoveries r.drifts r.stranded;
  line "  failover            promotions=%d promoted=%d fallback=%d breaches=%d"
    r.promotions r.promoted_clients r.fallback_clients r.standby_breaches;
  line "  standby             refreshes=%d changed=%d" r.standby_refreshes
    r.standby_changed;
  line "  competitive         samples=%d mean=%s max=%s"
    (List.length r.baseline_points)
    (fs r.competitive_mean) (fs r.competitive_max);
  line "  repair              epochs=%d moves=%d max-epoch-moves=%d budget=%d"
    r.repairs r.repair_moves r.max_epoch_moves r.budget;
  line "  protocol repair     epochs=%d stalls=%d" r.protocol_epochs
    r.protocol_stalls;
  line "  checkpoints         %d" r.checkpoints;
  line "  session             joins=%d leaves=%d moves=%d"
    r.session_stats.Dynamic.joins r.session_stats.Dynamic.leaves
    r.session_stats.Dynamic.moves;
  Buffer.contents b

let csv r =
  let b = Buffer.create 256 in
  Buffer.add_string b "t,objective,ratio\n";
  List.iter
    (fun (t, obj, ratio) ->
      Buffer.add_string b (Printf.sprintf "%s,%s,%s\n" (fs t) (fs obj) (fs ratio)))
    r.trace_points;
  Buffer.contents b
