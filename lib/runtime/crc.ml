(* CRC-32 (IEEE 802.3, polynomial 0xEDB88320), table-driven. Pure
   stdlib: the durability layer needs a checksum cheaper than
   [Digest.string] per record and with a stable 8-hex-char rendering.

   Slice-by-4: four derived tables let the hot loop fold 32 input bits
   per iteration — this runs on the journal's per-record path, where the
   classic byte-at-a-time loop was the single largest cost. *)

let tables =
  lazy
    (let t = Array.make_matrix 4 256 0 in
     for n = 0 to 255 do
       let c = ref n in
       for _ = 0 to 7 do
         c := if !c land 1 = 1 then 0xEDB88320 lxor (!c lsr 1) else !c lsr 1
       done;
       t.(0).(n) <- !c
     done;
     for k = 1 to 3 do
       for n = 0 to 255 do
         let prev = t.(k - 1).(n) in
         t.(k).(n) <- t.(0).(prev land 0xFF) lxor (prev lsr 8)
       done
     done;
     t)

let digest s =
  let t = Lazy.force tables in
  let t0 = t.(0) and t1 = t.(1) and t2 = t.(2) and t3 = t.(3) in
  let n = String.length s in
  let crc = ref 0xFFFFFFFF in
  let i = ref 0 in
  while !i + 4 <= n do
    let w = Int32.to_int (String.get_int32_le s !i) land 0xFFFFFFFF in
    let x = !crc lxor w in
    crc :=
      Array.unsafe_get t3 (x land 0xFF)
      lxor Array.unsafe_get t2 ((x lsr 8) land 0xFF)
      lxor Array.unsafe_get t1 ((x lsr 16) land 0xFF)
      lxor Array.unsafe_get t0 ((x lsr 24) land 0xFF);
    i := !i + 4
  done;
  while !i < n do
    crc :=
      Array.unsafe_get t0
        ((!crc lxor Char.code (String.unsafe_get s !i)) land 0xFF)
      lxor (!crc lsr 8);
    incr i
  done;
  !crc lxor 0xFFFFFFFF land 0xFFFFFFFF

(* Manual rendering: this sits on the journal's per-record hot path,
   where [Printf.sprintf "%08x"] would cost more than the CRC itself. *)
let hex_digits = "0123456789abcdef"

let hex_into b pos v =
  for i = 0 to 7 do
    Bytes.unsafe_set b (pos + i)
      (String.unsafe_get hex_digits ((v lsr ((7 - i) * 4)) land 0xF))
  done;
  pos + 8

let hex s =
  let b = Bytes.create 8 in
  ignore (hex_into b 0 (digest s));
  Bytes.unsafe_to_string b
