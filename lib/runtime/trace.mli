(** Deterministic merged event streams for the control plane.

    A trace is the complete, pre-materialised sequence of external
    events a soak run will face: client churn (joins with bounded
    session lifetimes, so every join carries its own future leave),
    per-server latency drift, and server crash/recovery schedules lifted
    from a {!Dia_sim.Fault} plan. The whole stream is a pure function of
    its generator seeds — all randomness is consumed at construction
    time — so a run's position in the trace is a single integer cursor,
    which is what makes checkpoint/restore trivial and exact. *)

type kind =
  | Join of { session : int; node : int }
      (** a client arrives at [node]; [session] names this arrival so
          the matching [Leave] can reference it whether or not admission
          let it in *)
  | Leave of { session : int }
  | Crash of { server : int }  (** server index, not node id *)
  | Recover of { server : int }
  | Drift of { server : int; factor : float }
      (** latency to/from the server's site rescales to [factor] times
          nominal (replacing any previous factor) *)

type event = { time : float; kind : kind }

type t = event array
(** Sorted by time; ties resolved by generator order (stable merge). *)

val churn :
  seed:int ->
  nodes:int ->
  rate:float ->
  mean_lifetime:float ->
  horizon:float ->
  event list
(** Aggregate Poisson arrivals at [rate] per unit time over
    [\[0, horizon\]]; each join picks a uniform node and an
    exponentially distributed session lifetime with the given mean
    (leaves beyond the horizon are dropped — the client outlives the
    run). Sessions are numbered densely from 0 in arrival order.

    @raise Invalid_argument if [nodes <= 0], [rate <= 0],
    [mean_lifetime <= 0] or [horizon < 0]. *)

val drift_walk :
  seed:int ->
  servers:int ->
  period:float ->
  amplitude:float ->
  horizon:float ->
  event list
(** Every [period], one uniformly chosen server's drift factor is
    redrawn uniformly from [\[1 - amplitude, 1 + amplitude\]] (clamped
    to at least 0.05) — a slow random walk of regional congestion.

    @raise Invalid_argument if [servers <= 0], [period <= 0],
    [amplitude] is outside [\[0, 1\]] or [horizon < 0]. *)

val crashes_of_plan : Dia_sim.Fault.plan -> servers:int -> event list
(** Lift every crash rule whose actor is a server index ([< servers])
    into [Crash]/[Recover] events — the bridge from the fault-injection
    DSL to control-plane chaos. Other rules (loss, duplication, spikes,
    partitions) do not touch the membership layer and are ignored here;
    they still apply to protocol-level repair runs. *)

val merge : horizon:float -> event list list -> t
(** Stable-merge the streams into one trace: sort by time, ties broken
    by stream order then within-stream order, events after [horizon]
    dropped. *)
