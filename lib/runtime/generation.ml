let prefix = "ckpt."

let path ~dir n = Filename.concat dir (Printf.sprintf "%s%d" prefix n)

let list ~dir =
  match Sys.readdir dir with
  | exception Sys_error _ -> []
  | files ->
      Array.to_list files
      |> List.filter_map (fun f ->
             let pn = String.length prefix in
             if String.length f > pn && String.sub f 0 pn = prefix then
               match int_of_string_opt (String.sub f pn (String.length f - pn)) with
               | Some n when n >= 1 -> Some n
               | _ -> None
             else None)
      |> List.sort compare

let latest ~dir = match List.rev (list ~dir) with [] -> None | n :: _ -> Some n

let ensure_dir dir =
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755

let save ?disk ~dir ~keep state =
  if keep < 1 then invalid_arg "Generation.save: keep must be >= 1";
  ensure_dir dir;
  let disk = match disk with Some d -> d | None -> Disk.none () in
  let gens = list ~dir in
  let n = match List.rev gens with [] -> 1 | g :: _ -> g + 1 in
  Disk.write_file disk ~path:(path ~dir n) (Checkpoint.encode state);
  (* Prune beyond the retention window. A generation the injector
     refused to rename still consumed number [n] conceptually but left
     no file; pruning goes by the numbers that exist. *)
  List.iter
    (fun g ->
      if g <= n - keep then try Sys.remove (path ~dir g) with Sys_error _ -> ())
    gens;
  n

let newest_verifying ~dir ~digest =
  let rec scan skipped = function
    | [] -> (None, List.rev skipped)
    | g :: older -> (
        match Checkpoint.load (path ~dir g) with
        | Ok st when st.Checkpoint.digest = digest ->
            (Some (g, st), List.rev skipped)
        | Ok st ->
            scan
              ((g, Printf.sprintf "digest mismatch (%s)" st.Checkpoint.digest)
              :: skipped)
              older
        | Error m -> scan ((g, m) :: skipped) older)
  in
  scan [] (List.rev (list ~dir))
