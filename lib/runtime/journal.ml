let magic = "dia-soak-journal v1"

(* --- writer ----------------------------------------------------------- *)

type writer = {
  oc : out_channel;
  disk : Disk.t;
  buf : Buffer.t;
  scratch : Bytes.t;  (* per-record header framing, allocation-free *)
  flush_every : int;
  mutable pending : int;  (* records buffered since the last flush *)
  mutable appended : int;
  mutable closed : bool;
}

let flush w =
  if (not w.closed) && Buffer.length w.buf > 0 then begin
    (if Disk.journal_passthrough w.disk then begin
       Buffer.output_buffer w.oc w.buf;
       Stdlib.flush w.oc
     end
     else
       match Disk.journal_chunk w.disk (Buffer.contents w.buf) with
       | None -> ()  (* device wedged: the chunk never reaches the file *)
       | Some chunk ->
           output_string w.oc chunk;
           Stdlib.flush w.oc);
    Buffer.clear w.buf;
    w.pending <- 0
  end

let create ?disk ?(flush_every = 32) ~path ~digest ~base () =
  if flush_every < 1 then invalid_arg "Journal.create: flush_every must be >= 1";
  let disk = match disk with Some d -> d | None -> Disk.none () in
  let w =
    {
      oc = open_out_bin path;
      disk;
      buf = Buffer.create 4096;
      (* "rec cursor=" + 19 digits + " len=" + 19 digits + " crc=" + 8
         hex + '\n' tops out well under 80 bytes *)
      scratch = Bytes.create 80;
      flush_every;
      pending = 0;
      appended = 0;
      closed = false;
    }
  in
  Buffer.add_string w.buf
    (Printf.sprintf "%s\ndigest=%s\nbase=%d\n" magic digest base);
  (* The header is its own flush (journal op 1), so a [jtorn:1@B] plan
     can tear it — recovery must survive even that. *)
  flush w;
  w

(* Non-negative decimal into [b] at [pos]; returns the end position. *)
let put_int b pos v =
  let digits =
    let n = ref 1 and x = ref v in
    while !x >= 10 do
      incr n;
      x := !x / 10
    done;
    !n
  in
  let x = ref v in
  for i = digits - 1 downto 0 do
    Bytes.unsafe_set b (pos + i) (Char.unsafe_chr (48 + (!x mod 10)));
    x := !x / 10
  done;
  pos + digits

let put_str b pos s =
  Bytes.blit_string s 0 b pos (String.length s);
  pos + String.length s

(* The per-event hot path: the header is framed by hand into the scratch
   bytes — zero allocations per record; a [Printf.sprintf] here costs
   more than the CRC of a typical record. *)
let append w ~cursor payload =
  if w.closed then invalid_arg "Journal.append: writer is closed";
  if cursor < 0 then invalid_arg "Journal.append: negative cursor";
  let s = w.scratch in
  let pos = put_str s 0 "rec cursor=" in
  let pos = put_int s pos cursor in
  let pos = put_str s pos " len=" in
  let pos = put_int s pos (String.length payload) in
  let pos = put_str s pos " crc=" in
  let pos = Crc.hex_into s pos (Crc.digest payload) in
  Bytes.unsafe_set s pos '\n';
  let b = w.buf in
  Buffer.add_subbytes b s 0 (pos + 1);
  Buffer.add_string b payload;
  Buffer.add_char b '\n';
  w.appended <- w.appended + 1;
  w.pending <- w.pending + 1;
  if w.pending >= w.flush_every then flush w

let appended w = w.appended

let close w =
  if not w.closed then begin
    flush w;
    w.closed <- true;
    close_out w.oc
  end

(* --- reader ----------------------------------------------------------- *)

type record = { cursor : int; payload : string }

type journal = {
  digest : string;
  base : int;
  records : record list;
  torn : string option;
}

(* One line starting at [pos]; [None] when no newline follows (a torn
   header is indistinguishable from a torn record and treated the same). *)
let line_at text pos =
  if pos >= String.length text then None
  else
    match String.index_from_opt text pos '\n' with
    | None -> None
    | Some nl -> Some (String.sub text pos (nl - pos), nl + 1)

let parse_kv ~key s =
  let prefix = key ^ "=" in
  let n = String.length prefix in
  if String.length s > n && String.sub s 0 n = prefix then
    Some (String.sub s n (String.length s - n))
  else None

(* Parse records from [pos] until the first torn/corrupt one: the valid
   prefix is the journal's committed content; everything after the first
   bad byte is an uncommitted tail (batched appends mean a crash can
   lose or tear the last chunk — never anything before it). *)
let rec parse_records text pos acc =
  if pos >= String.length text then (List.rev acc, None)
  else
    let torn fmt =
      Printf.ksprintf (fun m -> (List.rev acc, Some m)) fmt
    in
    match line_at text pos with
    | None -> torn "torn record header at byte %d" pos
    | Some (header, body_pos) -> (
        match String.split_on_char ' ' header with
        | [ "rec"; c; l; crc ] -> (
            match
              ( Option.bind (parse_kv ~key:"cursor" c) int_of_string_opt,
                Option.bind (parse_kv ~key:"len" l) int_of_string_opt,
                parse_kv ~key:"crc" crc )
            with
            | Some cursor, Some len, Some crc when len >= 0 ->
                if body_pos + len + 1 > String.length text then
                  torn "torn payload at byte %d (%d of %d+1 bytes)" body_pos
                    (String.length text - body_pos)
                    len
                else
                  let payload = String.sub text body_pos len in
                  if text.[body_pos + len] <> '\n' then
                    torn "missing payload terminator at byte %d" (body_pos + len)
                  else if Crc.hex payload <> crc then
                    torn "crc mismatch at byte %d (record cursor=%d)" pos cursor
                  else
                    parse_records text
                      (body_pos + len + 1)
                      ({ cursor; payload } :: acc)
            | _ -> torn "malformed record header at byte %d: %S" pos header)
        | _ -> torn "malformed record header at byte %d: %S" pos header)

let parse text =
  match line_at text 0 with
  | Some (m, pos) when m = magic -> (
      match line_at text pos with
      | None -> Error "journal: torn header (no digest line)"
      | Some (dline, pos) -> (
          match parse_kv ~key:"digest" dline with
          | None -> Error (Printf.sprintf "journal: expected digest=, got %S" dline)
          | Some digest -> (
              match line_at text pos with
              | None -> Error "journal: torn header (no base line)"
              | Some (bline, pos) -> (
                  match Option.bind (parse_kv ~key:"base" bline) int_of_string_opt with
                  | None ->
                      Error (Printf.sprintf "journal: expected base=, got %S" bline)
                  | Some base ->
                      let records, torn = parse_records text pos [] in
                      Ok { digest; base; records; torn }))))
  | Some (other, _) ->
      Error (Printf.sprintf "journal: unsupported header %S" other)
  | None -> Error "journal: empty or headerless file"

let read path =
  match
    let ic = open_in_bin path in
    let n = in_channel_length ic in
    let text = really_input_string ic n in
    close_in ic;
    text
  with
  | exception Sys_error m -> Error m
  | text -> parse text
