(** The self-healing control plane: an SLO-guarded supervisor driving a
    {!Dia_core.Dynamic} session through a chaos trace.

    A soak run replays a deterministic merged event stream ({!Trace}) —
    Poisson churn, latency drift, crash/recover schedules lifted from a
    {!Dia_sim.Fault} plan — against a live assignment session, while the
    control loop enforces the service-level objective:

    - every event updates the {!Slo} monitor with the current
      [D(A) / LB] ratio (the lower bound is recomputed every [lb_every]
      events and eagerly after structural changes: crash, recovery,
      drift);
    - a crash is repaired by {b standby promotion} first (when [standby]
      is on, the default): {!Dia_core.Dynamic.promote_standby} moves each
      orphan to its pre-armed standby in O(1) per client — no objective
      scan, no repair epoch. Only if the post-promotion [D/LB] exceeds
      [standby_bound] does a budgeted rebalance run immediately
      ([Standby_breach] in the log), and the usual SLO escalations still
      apply afterwards. With [standby] off, crashes fall back to the
      greedy {!Dia_core.Dynamic.fail_server_report} migration. Either
      way, stranded orphans re-enter admission control (queued or shed,
      never silently dropped), and standbys are re-armed canonically at
      every checkpoint boundary ([Standby_refresh]);
    - an escalation to {b Degraded} triggers a bounded repair:
      [Dynamic.rebalance ~max_moves:budget];
    - an escalation to {b Critical} additionally runs a
      protocol-level repair epoch: {!Dia_sim.Dgreedy_protocol.run} over
      the surviving servers under the scenario's ambient fault plan.
      A stalled epoch (watchdog forced-stop) is restarted with a doubled
      deadline, up to [max_protocol_attempts] — capped exponential
      backoff. The resulting plan is applied move-by-move only if it
      strictly improves the objective and fits the remaining epoch
      budget; otherwise it is logged with [applied = false];
    - joins pass {!Admission} control: shed under Critical, queued under
      Degraded or when capacity is exhausted, drained FIFO when Healthy;
    - a crash of the last live server is refused and logged
      ([Crash_skipped]) — the control plane never self-inflicts total
      outage;
    - every [checkpoint_every] events the full controller state is
      logged and (when a path is given) atomically written to disk.

    {b Determinism contract.} The trace is pre-materialised from the
    scenario seed, protocol-repair epochs draw sub-seeds from a counted
    cursor, and every iteration order is sorted — so a run killed at any
    checkpoint boundary and resumed produces a report and event log
    bit-identical to the uninterrupted run ([render] output and
    {!Event_log.render} output match byte for byte). *)

type scenario = {
  seed : int;
  nodes : int;  (** network size (an Internet-like synthetic matrix) *)
  servers : int;  (** number of servers, placed on distinct random nodes *)
  capacity : int option;  (** per-server capacity, [None] = uncapacitated *)
  horizon : float;  (** trace length in trace-time units *)
  join_rate : float;  (** Poisson arrival rate *)
  mean_lifetime : float;  (** mean exponential session lifetime *)
  drift_period : float;  (** drift step period; [<= 0] disables drift *)
  drift_amplitude : float;  (** drift factor spread, in [\[0, 1\]] *)
  fault : Dia_sim.Fault.plan;
      (** crash rules feed the membership layer; the whole plan is the
          ambient network weather for protocol-repair epochs *)
  clients : int;
      (** sessions pre-populated before the trace starts (uniform random
          nodes from the scenario seed); they bypass admission and the
          event log, and the trace never disconnects them — the steady
          base load for million-client runs *)
  coreset_eps : float option;
      (** weighted mode: bucket sessions through a
          {!Dia_coreset.Weighted} layer at this resolution, so the
          Dynamic only sees one member per occupied coreset cell and
          steady-state per-event cost is independent of the session
          count. Requires [capacity = None]. [Some 0.] still dedups
          co-located sessions exactly. *)
  delay : Dia_core.Delay.t option;
      (** load-latency model: the session places and repairs against the
          load-aware [D_load] objective, the SLO watches
          [D_load / LB_load], and every [Transition] log entry records
          ["d_load"] as its driving objective. Requires classic mode
          ([coreset_eps = None] — coreset buckets hide the true
          per-server load). [None] keeps the run byte-identical to
          earlier versions. *)
}

val default_scenario : scenario
(** 120 nodes, 8 servers, uncapacitated, horizon 300 at one join per
    unit time (mean lifetime 80), drift every 20 units at ±30%, fault
    plan [loss:0.1+crash:2@60~180]; no pre-population, classic
    (unweighted) mode, no delay model. *)

type config = {
  slo : Slo.config;
  budget : int;  (** max migrations per repair epoch *)
  max_queue : int;  (** admission queue bound *)
  lb_every : int;  (** events between periodic lower-bound refreshes *)
  checkpoint_every : int;  (** events between checkpoints; [0] disables *)
  protocol_repair : bool;  (** run protocol epochs on Critical *)
  max_protocol_attempts : int;  (** watchdog restarts per epoch *)
  standby : bool;  (** repair crashes by standby promotion first *)
  standby_bound : float;
      (** max tolerated post-promotion [D/LB]; a breach triggers an
          immediate budgeted rebalance *)
  offline_baseline : bool;
      (** sample an offline Greedy re-solve at every lower-bound refresh
          — the baseline stream for the competitive-ratio harness *)
}

val default_config : config
(** [Slo.default_config], budget 8, queue 64, LB every 10 events,
    checkpoint every 100, protocol repair on with 3 attempts, standby
    promotion on with bound 3.0, offline baseline off. *)

val digest : scenario -> config -> string
(** Hex digest of the canonical rendering of both records — stamped into
    checkpoints so a resume under a different configuration is refused. *)

(** Everything the run observed, plus the guardrail numbers the
    acceptance criteria read: [steady_ratio] (final [D(A)] over a fresh
    Greedy re-solve on the surviving servers) and [max_epoch_moves]
    (never exceeds [budget]). *)
type report = {
  digest : string;
  events : int;
  horizon : float;
  clients : int;  (** sessions connected at the end (weighted included) *)
  weighted : bool;  (** ran through a coreset bucket layer *)
  delay_model : string option;
      (** the scenario's delay model as a spec string; when present,
          [final_objective], [final_lb], [resolve_objective] and every
          ratio are load-aware ([D_load] / [LB_load]) *)
  coreset_points : int;
      (** members of the underlying Dynamic — equals [clients] in
          classic mode, occupied coreset cells in weighted mode *)
  prepop_seconds : float;  (** wall clock spent pre-populating (0 on resume) *)
  loop_seconds : float;  (** wall clock spent in this process's event loop *)
  live_servers : int;
  total_servers : int;
  final_objective : float;
  final_lb : float;
  final_ratio : float;  (** [final_objective /. final_lb] *)
  resolve_objective : float;
      (** fresh {!Dia_core.Greedy} re-solve on surviving servers *)
  steady_ratio : float;  (** [final_objective /. resolve_objective] *)
  budget : int;
  max_epoch_moves : int;
  slo_level : Slo.level;
  admitted : int;
  queued : int;
  shed : int;
  drained : int;
  abandoned : int;
  leaves : int;
  crashes : int;
  crashes_skipped : int;
  recoveries : int;
  drifts : int;
  stranded : int;
  promotions : int;  (** crashes repaired by standby promotion *)
  promoted_clients : int;  (** orphans that landed on their armed standby *)
  fallback_clients : int;  (** orphans placed by the least-loaded fallback *)
  standby_refreshes : int;  (** canonical re-arms at checkpoint boundaries *)
  standby_changed : int;  (** standbys changed across those refreshes *)
  standby_breaches : int;  (** post-promotion [D/LB] over [standby_bound] *)
  repairs : int;
  repair_moves : int;
  protocol_epochs : int;
  protocol_stalls : int;
  checkpoints : int;
  session_stats : Dia_core.Dynamic.stats;
  trace_points : (float * float * float) list;
      (** (time, objective, ratio) at every lower-bound refresh *)
  baseline_points : (float * float * float) list;
      (** (time, online objective, offline re-solve) at every refresh;
          empty unless [offline_baseline] was on *)
  competitive_mean : float;
      (** mean online/offline ratio over [baseline_points] (nan if none) *)
  competitive_max : float;
      (** worst online/offline ratio — the empirical competitive ratio *)
  log : Event_log.entry list;
}

type outcome =
  | Completed of report
  | Killed of Checkpoint.state
      (** the run stopped right after writing checkpoint [kill_after] —
          the deterministic stand-in for [kill -9]; resume from the
          returned state (or the file) to finish the run *)

val run :
  ?checkpoint_path:string ->
  ?state_dir:string ->
  ?keep:int ->
  ?disk:Disk.t ->
  ?resume_from:Checkpoint.state ->
  ?kill_after:int ->
  ?kill_at_event:int ->
  scenario ->
  config ->
  outcome
(** Execute (or continue) a soak run. [checkpoint_path] persists every
    checkpoint atomically; [resume_from] continues from a decoded
    checkpoint (its digest must match); [kill_after n] stops the run
    immediately after the [n]-th checkpoint of {e this} process — used
    by tests and CI to exercise the kill/resume path deterministically.

    {b Durable recovery.} [state_dir] turns on the durability layer: a
    write-ahead {!Journal} of each event's log lines (appended {e
    before} any checkpoint covering them is written, flushed in batches
    and before every generation save) plus numbered {!Generation}
    checkpoints at every boundary, keeping the last [keep] (default 3).
    Both streams are written through [disk] — by default an injector
    interpreting the scenario fault plan's disk rules, so storage-fault
    atoms in [scenario.fault] corrupt exactly the writes they name.
    [kill_at_event i] stops the run right after processing trace event
    [i] — {e any} event index, not just a checkpoint boundary — with the
    captured state; combined with {!Recovery.restore} this is the
    boundary-free kill/resume path. The scenario digest is unchanged by
    any of these options.

    @raise Invalid_argument on invalid scenario/config values, a digest
    mismatch on resume, [keep < 1], or a negative [kill_at_event]. *)

val render : report -> string
(** Deterministic human-readable report. Two runs are considered
    bit-identical when their [render] outputs and
    {!Event_log.render}ed logs are equal byte-for-byte — floats are
    printed with {!Codec.float_str}, so this is an exact comparison.
    (Timing fields are deliberately not rendered.) *)

val csv : report -> string
(** The objective trace as CSV — header [t,objective,ratio], one row per
    lower-bound refresh, floats via {!Codec.float_str}. Deterministic
    for the same reasons as {!render}. *)
