(** Checkpoint generations: a bounded history of [ckpt.N] files.

    A single checkpoint file is a single point of failure — the torn
    write that corrupts it takes the whole recovery story with it.
    Generations keep the last [keep] checkpoints under distinct,
    monotonically numbered names ([ckpt.1], [ckpt.2], …), each written
    atomically (through the {!Disk} injector, so storage-fault plans
    apply); recovery scans from the newest down and restores the first
    one that verifies — its v3 section CRCs, its [end] marker, and its
    scenario digest ({!newest_verifying}) — falling back over corrupt
    generations instead of failing. An older generation only means a
    longer journal suffix to replay; it never costs correctness. *)

val path : dir:string -> int -> string
(** The on-disk path of generation [n]. *)

val list : dir:string -> int list
(** Generation numbers present in [dir], ascending. A missing directory
    is just empty. *)

val latest : dir:string -> int option
(** The newest generation number present, if any. *)

val ensure_dir : string -> unit
(** Create the state directory if it does not exist yet (single level). *)

val save : ?disk:Disk.t -> dir:string -> keep:int -> Checkpoint.state -> int
(** Write the state as the next generation (creating [dir] if needed)
    and prune generations older than the [keep] most recent. Returns the
    new generation number. With [disk], the write goes through the fault
    injector — the produced file may be corrupt or absent by design.

    @raise Invalid_argument if [keep < 1]. *)

val newest_verifying :
  dir:string -> digest:string -> (int * Checkpoint.state) option * (int * string) list
(** Scan generations newest-first for one that fully verifies and
    matches the scenario [digest]. Returns that generation (or [None]
    when none verifies) and the skipped newer generations with the
    reason each was rejected, newest first. *)
