(** CRC-32 (IEEE 802.3, polynomial [0xEDB88320]).

    The integrity primitive of the durability layer: every journal
    record and every checkpoint section carries one. A CRC detects the
    storage faults this repo injects (bit flips, torn writes, lost
    suffixes) with probability [1 - 2^-32] per record — it is {e not} a
    cryptographic commitment, and does not need to be: the threat model
    is media corruption, not an adversary. *)

val digest : string -> int
(** The CRC-32 of the string, in [\[0, 2^32)]. *)

val hex : string -> string
(** {!digest} rendered as exactly 8 lowercase hex characters — the form
    journal records and checkpoint [crc=] lines embed. *)

val hex_into : Bytes.t -> int -> int -> int
(** [hex_into b pos v] writes the 8 lowercase hex characters of digest
    [v] at [b.[pos..pos+7]] and returns [pos + 8] — the allocation-free
    form the journal's per-record framing uses. The caller guarantees
    the range is in bounds. *)
