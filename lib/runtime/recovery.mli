(** Crash recovery: land on the newest verifying checkpoint generation,
    replay the journal tail, prove bit-identity.

    The soak trace is a pure function of the scenario seed, so {e
    replay is re-execution}: restoring generation [g] and re-running
    from its cursor reproduces the killed run's future exactly. What
    recovery adds is {e verification} — picking the newest generation
    whose checksums and digest hold (rolling back over corrupt ones),
    and auditing that the re-execution byte-matches every event-log
    record the killed run had already committed to its write-ahead
    journal. A rollback to a non-primary generation is recorded as a
    [recovery]-kind {!Event_log} entry in the side-channel file
    [recovery.log] (never the canonical log, which must stay
    bit-identical to the uninterrupted run's). *)

val journal_path : string -> string
(** [state_dir/journal]. *)

val recovery_log_path : string -> string
(** [state_dir/recovery.log] — the rollback side-channel. *)

type restore = {
  generation : (int * Checkpoint.state) option;
      (** the newest verifying generation, or [None] for a fresh restart *)
  skipped : (int * string) list;
      (** newer generations rejected (corrupt or wrong digest), newest
          first, with reasons *)
  journal : Journal.journal option;
      (** the committed journal, when its header survived and its digest
          matches *)
  journal_note : string option;
      (** why the journal is absent or where its tail tore, if so *)
  replayed : int;
      (** committed journal records at or past the restore cursor — the
          tail that re-execution will be audited against *)
}

val restore : dir:string -> digest:string -> restore
(** Scan [dir] and decide where to resume from. Pure inspection apart
    from the side-channel: when the restore had to skip corrupt newer
    generations, a [recovery] entry is appended to {!recovery_log_path}. *)

val audit :
  journal:Journal.journal ->
  restored:Checkpoint.state option ->
  final_log:Event_log.entry list ->
  (int, string) result
(** Byte-level audit of a completed recovery: the restored checkpoint's
    log must be a prefix of the final log, the journal records past the
    restore cursor must byte-match the replayed continuation, and the
    records the checkpoint already covered must byte-match its own log.
    [Ok n] audited [n] committed records; [Error] pinpoints the first
    divergence. *)

type verdict = { ok : bool; lines : string list }

(** The end-to-end harness behind [dia soak --verify-recovery]. *)

val verify :
  ?keep:int ->
  state_dir:string ->
  kill_at_event:int ->
  Soak.scenario ->
  Soak.config ->
  verdict
(** Run the scenario uninterrupted; run it again into [state_dir] with
    the plan's disk faults live and a kill after event [kill_at_event];
    {!restore}; resume; then check that the recovered report and event
    log are bit-identical to the uninterrupted run and that the journal
    {!audit} passes. [lines] is the human-readable transcript. *)
