(** Fig. 7 — normalized interactivity vs number of servers.

    Three panels: (a) random placement, averaged over repeated runs;
    (b) K-center-A placement; (c) K-center-B placement. Each curve is one
    of the four assignment algorithms; y-values are normalized against
    the super-optimal lower bound (1.0 = ideal). Uncapacitated. *)

type point = {
  servers : int;
  algorithm : Dia_core.Algorithm.t;
  normalized : float;  (** mean over runs for random placement *)
  stddev : float;  (** 0 for the deterministic placements *)
}

type panel = {
  strategy : Dia_placement.Placement.strategy;
  points : point list;
}

type result = {
  dataset : Config.dataset;
  profile : Config.profile;
  panels : panel list;  (** one per placement strategy, paper order *)
}

val run :
  ?dataset:Config.dataset ->
  ?profile:Config.profile ->
  ?jobs:int ->
  unit ->
  result
(** Defaults: Meridian-like data, [Config.default] profile, [jobs] from
    [DIA_JOBS] (then 1). The k-sweep of each panel fans out over the
    worker pool; results are bit-identical for any [jobs]. *)

val run_panel :
  profile:Config.profile ->
  ?pool:Dia_parallel.Pool.t ->
  Dia_latency.Matrix.t ->
  Dia_placement.Placement.strategy ->
  panel
(** One placement strategy on a prepared matrix, parallel over the
    k-sweep when [pool] is given. *)

val render : result -> string
(** Tables plus an ASCII plot per panel. *)

val csv : result -> string
(** CSV export: [placement,servers,algorithm,normalized,stddev]. *)
