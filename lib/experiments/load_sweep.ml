module Problem = Dia_core.Problem
module Greedy = Dia_core.Greedy
module Objective = Dia_core.Objective
module Lower_bound = Dia_core.Lower_bound
module Delay = Dia_core.Delay
module Placement = Dia_placement.Placement

type point = {
  utilization : float;
  clients : int;
  d_blind : float;
  d_load_blind : float;
  d_load_aware : float;
  lb : float;
  lb_load : float;
}

type result = {
  dataset : Config.dataset;
  profile : Config.profile;
  servers : int;
  capacity : int;
  delay : Delay.t;
  points : point list;
}

let default_steps = [ 0.; 0.1; 0.2; 0.3; 0.4; 0.5; 0.6; 0.7; 0.8; 0.9; 0.95 ]

let run ?(dataset = Config.Meridian_like) ?(profile = Config.default)
    ?(capacity = 25) ?delay ?(steps = default_steps) () =
  let matrix = Config.load_dataset dataset profile in
  let nodes = Dia_latency.Matrix.dim matrix in
  let k = profile.Config.fixed_servers in
  let servers = Placement.place Placement.Random_placement ~seed:0 matrix ~k in
  (* Default model: a server drains its full capacity per unit time, so
     per-server utilization load/capacity is exactly the M/M/1 rho and
     the sweep shows the whole hockey stick without leaving the
     unsaturated regime at low utilization. *)
  let delay =
    match delay with
    | Some dl -> dl
    | None -> Delay.Queueing { mu = float_of_int capacity }
  in
  Delay.validate delay;
  let points =
    List.map
      (fun utilization ->
        let n =
          max 1
            (int_of_float
               (Float.round (utilization *. float_of_int (k * capacity))))
        in
        (* Deterministic client population cycling over the nodes: the
           sweep varies only the utilization, never the geometry. *)
        let clients = Array.init n (fun i -> i mod nodes) in
        let p = Problem.make ~capacity ~latency:matrix ~servers ~clients () in
        let lb = Lower_bound.compute p in
        let lb_load = lb +. (2. *. Delay.eval delay 1) in
        let blind = Greedy.assign p in
        let aware = Greedy.assign_load ~delay p in
        {
          utilization;
          clients = n;
          d_blind = Objective.max_interaction_path p blind;
          d_load_blind = Objective.max_interaction_path_load p ~delay blind;
          d_load_aware = Objective.max_interaction_path_load p ~delay aware;
          lb;
          lb_load;
        })
      steps
  in
  { dataset; profile; servers = k; capacity; delay; points }

let render result =
  let table =
    Dia_stats.Table.make
      ~columns:
        [ "utilization"; "clients"; "D (greedy)"; "D_load (blind)";
          "D_load (aware)"; "D_load/LB_load" ]
  in
  List.iter
    (fun pt ->
      Dia_stats.Table.add_row table
        [
          Printf.sprintf "%.2f" pt.utilization;
          string_of_int pt.clients;
          Printf.sprintf "%.2f" pt.d_blind;
          Printf.sprintf "%.2f" pt.d_load_blind;
          Printf.sprintf "%.2f" pt.d_load_aware;
          Printf.sprintf "%.3f" (pt.d_load_aware /. pt.lb_load);
        ])
    result.points;
  let series =
    [
      ( "D (greedy)",
        List.map (fun pt -> (pt.utilization, pt.d_blind)) result.points );
      ( "D_load (aware)",
        List.map (fun pt -> (pt.utilization, pt.d_load_aware)) result.points );
    ]
  in
  Printf.sprintf
    "Load sweep (D vs D_load as utilization ramps, %d servers x capacity %d, \
     delay %s, %s dataset, %s profile)\n%s\n%s"
    result.servers result.capacity
    (Delay.to_string result.delay)
    (Config.dataset_name result.dataset)
    result.profile.Config.label
    (Dia_stats.Table.render table)
    (Dia_stats.Ascii_plot.render ~x_label:"utilization (clients / total capacity)"
       ~y_label:"objective (ms)" series)

let csv result =
  let rows =
    List.map
      (fun pt ->
        [
          Printf.sprintf "%.2f" pt.utilization;
          string_of_int pt.clients;
          Printf.sprintf "%.6f" pt.d_blind;
          Printf.sprintf "%.6f" pt.d_load_blind;
          Printf.sprintf "%.6f" pt.d_load_aware;
          Printf.sprintf "%.6f" pt.lb;
          Printf.sprintf "%.6f" pt.lb_load;
        ])
      result.points
  in
  Dia_stats.Csv.render
    ~header:
      [ "utilization"; "clients"; "d"; "d_load_blind"; "d_load_aware"; "lb";
        "lb_load" ]
    rows
