(** Shared per-instance evaluation used by every figure runner.

    One "evaluation" places servers, runs each requested algorithm, and
    normalises its objective against the super-optimal lower bound —
    exactly the quantity on the y-axis of every figure in Section V.

    Every entry point takes an optional {!Dia_parallel.Pool.t}; results
    are bit-identical to the sequential path for any pool size (see
    [lib/parallel]). *)

type evaluation = {
  servers : int array;  (** node ids of the placed servers *)
  lower_bound : float;
  results : (Dia_core.Algorithm.t * float) list;  (** raw objective D(A) *)
}

val algorithms : Dia_core.Algorithm.t list
(** The paper's four heuristics, figure order. *)

val evaluate :
  ?capacity:int ->
  ?pool:Dia_parallel.Pool.t ->
  ?algorithms:Dia_core.Algorithm.t list ->
  Dia_latency.Matrix.t ->
  servers:int array ->
  evaluation
(** Clients at every node; run the algorithms and the lower bound. *)

val normalized : evaluation -> (Dia_core.Algorithm.t * float) list
(** [D(A) / LB] per algorithm. *)

val place_and_evaluate :
  ?capacity:int ->
  ?seed:int ->
  ?pool:Dia_parallel.Pool.t ->
  Dia_latency.Matrix.t ->
  strategy:Dia_placement.Placement.strategy ->
  k:int ->
  evaluation
(** Place [k] servers with the strategy (seeded for random placement and
    K-center-A), then {!evaluate}. *)

val average_normalized :
  ?capacity:int ->
  ?pool:Dia_parallel.Pool.t ->
  Dia_latency.Matrix.t ->
  runs:int ->
  k:int ->
  (Dia_core.Algorithm.t * Dia_stats.Summary.t) list
(** Random placement repeated over seeds [0 .. runs-1]: the per-algorithm
    distribution of normalized interactivity (Fig. 7a / Fig. 10a style
    averaging). With [pool], seeds are evaluated on worker domains and
    aggregated in seed order — same bits as the sequential loop. *)

val with_timing : label:string -> jobs:int -> (unit -> 'a) -> 'a
(** Run a thunk, logging its wall time and worker count on the
    [dia.experiments] log source — only when the [DIA_VERBOSE]
    environment variable is set (which also installs a stderr reporter
    if none is configured). *)
