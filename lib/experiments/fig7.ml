module Algorithm = Dia_core.Algorithm
module Placement = Dia_placement.Placement
module Pool = Dia_parallel.Pool

type point = {
  servers : int;
  algorithm : Algorithm.t;
  normalized : float;
  stddev : float;
}

type panel = { strategy : Placement.strategy; points : point list }

type result = {
  dataset : Config.dataset;
  profile : Config.profile;
  panels : panel list;
}

let run_panel ~profile ?pool matrix strategy =
  let jobs = match pool with None -> 1 | Some pool -> Pool.jobs pool in
  let points_for k =
    match strategy with
    | Placement.Random_placement ->
        List.map
          (fun (algorithm, summary) ->
            {
              servers = k;
              algorithm;
              normalized = summary.Dia_stats.Summary.mean;
              stddev = summary.Dia_stats.Summary.stddev;
            })
          (Runner.average_normalized ?pool matrix ~runs:profile.Config.runs ~k)
    | Placement.K_center_a | Placement.K_center_b ->
        let evaluation = Runner.place_and_evaluate ?pool matrix ~strategy ~k in
        List.map
          (fun (algorithm, normalized) ->
            { servers = k; algorithm; normalized; stddev = 0. })
          (Runner.normalized evaluation)
  in
  (* Fan the k-sweep out; concatenating per-k results in k order matches
     the sequential List.concat_map exactly. *)
  let per_k =
    Runner.with_timing
      ~label:(Printf.sprintf "fig7 panel (%s)" (Placement.strategy_name strategy))
      ~jobs
      (fun () ->
        let ks = Array.of_list profile.Config.server_counts in
        match pool with
        | None -> Array.map points_for ks
        | Some pool -> Pool.map_array pool points_for ks)
  in
  { strategy; points = List.concat (Array.to_list per_k) }

let run ?(dataset = Config.Meridian_like) ?(profile = Config.default) ?jobs () =
  let jobs = match jobs with Some j -> j | None -> Pool.default_jobs () in
  Pool.with_pool ~jobs (fun pool ->
      let matrix = Config.load_dataset dataset profile in
      let panels =
        Runner.with_timing ~label:"fig7" ~jobs (fun () ->
            List.map (run_panel ~profile ~pool matrix) Placement.all_strategies)
      in
      { dataset; profile; panels })

let panel_table panel =
  let columns =
    "servers" :: List.map Algorithm.name Runner.algorithms
  in
  let table = Dia_stats.Table.make ~columns in
  let server_counts =
    List.sort_uniq compare (List.map (fun point -> point.servers) panel.points)
  in
  List.iter
    (fun k ->
      let value algorithm =
        List.find
          (fun point -> point.servers = k && point.algorithm = algorithm)
          panel.points
      in
      Dia_stats.Table.add_row table
        (string_of_int k
        :: List.map
             (fun algorithm -> Printf.sprintf "%.3f" (value algorithm).normalized)
             Runner.algorithms))
    server_counts;
  Dia_stats.Table.render table

let panel_plot panel =
  let series =
    List.map
      (fun algorithm ->
        ( Algorithm.name algorithm,
          List.filter_map
            (fun point ->
              if point.algorithm = algorithm then
                Some (float_of_int point.servers, point.normalized)
              else None)
            panel.points ))
      Runner.algorithms
  in
  Dia_stats.Ascii_plot.render ~x_label:"servers" ~y_label:"normalized interactivity"
    series

let render result =
  String.concat "\n"
    (List.map
       (fun panel ->
         Printf.sprintf "Fig. 7 (%s placement, %s dataset, %s profile)\n%s\n%s"
           (Placement.strategy_name panel.strategy)
           (Config.dataset_name result.dataset)
           result.profile.Config.label (panel_table panel) (panel_plot panel))
       result.panels)

let csv result =
  let rows =
    List.concat_map
      (fun panel ->
        List.map
          (fun point ->
            [
              Placement.strategy_name panel.strategy;
              string_of_int point.servers;
              Algorithm.key point.algorithm;
              Printf.sprintf "%.6f" point.normalized;
              Printf.sprintf "%.6f" point.stddev;
            ])
          panel.points)
      result.panels
  in
  Dia_stats.Csv.render
    ~header:[ "placement"; "servers"; "algorithm"; "normalized"; "stddev" ]
    rows
