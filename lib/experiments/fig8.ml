module Algorithm = Dia_core.Algorithm
module Placement = Dia_placement.Placement
module Cdf = Dia_stats.Cdf
module Pool = Dia_parallel.Pool

type result = {
  dataset : Config.dataset;
  profile : Config.profile;
  servers : int;
  cdfs : (Algorithm.t * Cdf.t) list;
}

let run ?(dataset = Config.Meridian_like) ?(profile = Config.default) ?jobs () =
  let jobs = match jobs with Some j -> j | None -> Pool.default_jobs () in
  let matrix = Config.load_dataset dataset profile in
  let k = profile.Config.fixed_servers in
  (* The paper's 1000 independent runs: one seed per run, fanned out to
     the pool and aggregated in seed order (same bits as the sequential
     loop for any [jobs]). *)
  let evaluations =
    Pool.with_pool ~jobs (fun pool ->
        Runner.with_timing ~label:"fig8 seed sweep" ~jobs (fun () ->
            Pool.run_seeds pool ~seeds:profile.Config.runs (fun seed ->
                Runner.place_and_evaluate ~seed ~pool matrix
                  ~strategy:Placement.Random_placement ~k)))
  in
  let samples = Hashtbl.create 8 in
  Array.iter
    (fun evaluation ->
      List.iter
        (fun (algorithm, value) ->
          let previous = Option.value ~default:[] (Hashtbl.find_opt samples algorithm) in
          Hashtbl.replace samples algorithm (value :: previous))
        (Runner.normalized evaluation))
    evaluations;
  let cdfs =
    List.map
      (fun algorithm ->
        let values = Option.value ~default:[] (Hashtbl.find_opt samples algorithm) in
        (algorithm, Cdf.of_samples (Array.of_list values)))
      Runner.algorithms
  in
  { dataset; profile; servers = k; cdfs }

let runs_below result threshold =
  List.map
    (fun (algorithm, cdf) -> (algorithm, Cdf.count_below cdf threshold))
    result.cdfs

let tail_heaviness result =
  List.map
    (fun (algorithm, cdf) ->
      let total = Cdf.count cdf in
      ( algorithm,
        total - Cdf.count_below cdf 2.,
        total - Cdf.count_below cdf 3. ))
    result.cdfs

let render result =
  let table =
    Dia_stats.Table.make
      ~columns:[ "algorithm"; "median"; "p90"; "max"; "runs > 2x"; "runs > 3x" ]
  in
  List.iter
    (fun (algorithm, cdf) ->
      let total = Cdf.count cdf in
      Dia_stats.Table.add_row table
        [
          Algorithm.name algorithm;
          Printf.sprintf "%.3f" (Cdf.quantile cdf 0.5);
          Printf.sprintf "%.3f" (Cdf.quantile cdf 0.9);
          Printf.sprintf "%.3f" (Cdf.max_sample cdf);
          string_of_int (total - Cdf.count_below cdf 2.);
          string_of_int (total - Cdf.count_below cdf 3.);
        ])
    result.cdfs;
  let series =
    List.map
      (fun (algorithm, cdf) ->
        ( Algorithm.name algorithm,
          List.map
            (fun (x, fraction) -> (x, fraction *. float_of_int (Cdf.count cdf)))
            (Cdf.curve cdf ~points:48) ))
      result.cdfs
  in
  Printf.sprintf
    "Fig. 8 (CDF over %d random placements, %d servers, %s dataset, %s profile)\n%s\n%s"
    result.profile.Config.runs result.servers
    (Config.dataset_name result.dataset)
    result.profile.Config.label
    (Dia_stats.Table.render table)
    (Dia_stats.Ascii_plot.render ~x_label:"normalized interactivity"
       ~y_label:"runs below" series)

let csv result =
  let rows =
    List.concat_map
      (fun (algorithm, cdf) ->
        List.init (Cdf.count cdf) (fun i ->
            [
              Algorithm.key algorithm;
              string_of_int i;
              Printf.sprintf "%.6f"
                (Cdf.quantile cdf (float_of_int i /. float_of_int (max 1 (Cdf.count cdf - 1))));
            ]))
      result.cdfs
  in
  Dia_stats.Csv.render ~header:[ "algorithm"; "rank"; "normalized" ] rows
