(** Fig. 8 — cumulative distribution of normalized interactivity over
    repeated random placements at a fixed server count.

    The paper's panel counts, for each algorithm, how many of the 1000
    simulation runs fall below each normalized-interactivity value,
    highlighting Nearest-Server's long tail (>2x the bound in over 100
    runs, >3x in over 50). *)

type result = {
  dataset : Config.dataset;
  profile : Config.profile;
  servers : int;
  cdfs : (Dia_core.Algorithm.t * Dia_stats.Cdf.t) list;
}

val run :
  ?dataset:Config.dataset ->
  ?profile:Config.profile ->
  ?jobs:int ->
  unit ->
  result
(** [jobs] defaults to [DIA_JOBS] (then 1); the independent per-seed
    runs fan out over a worker pool and are aggregated in seed order, so
    the CDFs are bit-identical for any [jobs]. *)

val runs_below : result -> float -> (Dia_core.Algorithm.t * int) list
(** Number of runs at or below a normalized-interactivity threshold —
    the paper's y-axis read off at one x. *)

val tail_heaviness : result -> (Dia_core.Algorithm.t * int * int) list
(** Per algorithm: runs exceeding 2x and 3x the lower bound — the
    headline numbers quoted in Section V-A. *)

val render : result -> string

val csv : result -> string
(** CSV export of the raw samples: [algorithm,run,normalized] (the CDF is
    recoverable by sorting per algorithm). *)
