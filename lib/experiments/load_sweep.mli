(** Load sweep — how much of the interaction path is queueing delay.

    Not a figure from the paper: the paper's capacitated experiment
    (Fig. 10) hard-caps servers but keeps latency load-independent. This
    sweep ramps the client population from near-empty to 95% of total
    capacity on a fixed deployment and scores every point under both the
    classic objective [D] and the load-aware [D_load] (see
    [lib/core/delay] and DESIGN section 14). With the default M/M/1
    model ([mu = capacity]) the gap between the two curves is exactly
    the queueing cost of ignoring load, and it explodes as utilization
    approaches 1 — the motivation for the load-aware variants. *)

type point = {
  utilization : float;  (** clients / (servers * capacity), the target *)
  clients : int;  (** actual population, [max 1 (round target)] *)
  d_blind : float;  (** [D] of load-blind Greedy *)
  d_load_blind : float;  (** [D_load] of that same assignment *)
  d_load_aware : float;  (** [D_load] of load-aware Greedy *)
  lb : float;
  lb_load : float;  (** [lb + 2 * delay(1)] *)
}

type result = {
  dataset : Config.dataset;
  profile : Config.profile;
  servers : int;
  capacity : int;
  delay : Dia_core.Delay.t;
  points : point list;
}

val default_steps : float list
(** [0, 0.1 .. 0.9, 0.95]. *)

val run :
  ?dataset:Config.dataset ->
  ?profile:Config.profile ->
  ?capacity:int ->
  ?delay:Dia_core.Delay.t ->
  ?steps:float list ->
  unit ->
  result
(** Deterministic: random placement with seed 0, clients cycling over
    the matrix nodes. [capacity] defaults to 25 (paper units); [delay]
    to [Queueing { mu = float capacity }]. *)

val render : result -> string

val csv : result -> string
(** CSV export:
    [utilization,clients,d,d_load_blind,d_load_aware,lb,lb_load]. *)
