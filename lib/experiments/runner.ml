module Algorithm = Dia_core.Algorithm
module Problem = Dia_core.Problem
module Objective = Dia_core.Objective
module Lower_bound = Dia_core.Lower_bound
module Placement = Dia_placement.Placement
module Pool = Dia_parallel.Pool

(* -- Observability ------------------------------------------------------- *)

let src = Logs.Src.create "dia.experiments" ~doc:"DIA experiment runners"

module Log = (val Logs.src_log src)

let verbose = lazy (Sys.getenv_opt "DIA_VERBOSE" <> None)

(* Install a stderr reporter the first time a timed section runs with
   DIA_VERBOSE set; without it the logs dependency stays silent. *)
let ensure_reporter =
  lazy
    (if Lazy.force verbose then begin
       Logs.Src.set_level src (Some Logs.Info);
       Logs.set_reporter (Logs.format_reporter ~dst:Format.err_formatter ())
     end)

let with_timing ~label ~jobs f =
  Lazy.force ensure_reporter;
  if Lazy.force verbose then begin
    let t0 = Unix.gettimeofday () in
    let result = f () in
    Log.info (fun m ->
        m "%s: %.3f s wall (jobs=%d)" label (Unix.gettimeofday () -. t0) jobs);
    result
  end
  else f ()

(* -- Per-instance evaluation --------------------------------------------- *)

type evaluation = {
  servers : int array;
  lower_bound : float;
  results : (Algorithm.t * float) list;
}

let algorithms = Algorithm.heuristics

let evaluate ?capacity ?pool ?(algorithms = algorithms) matrix ~servers =
  let p = Problem.all_nodes_clients ?capacity matrix ~servers in
  let results =
    List.map
      (fun algorithm ->
        let a = Algorithm.run algorithm p in
        (algorithm, Objective.max_interaction_path p a))
      algorithms
  in
  { servers; lower_bound = Lower_bound.compute ?pool p; results }

let normalized evaluation =
  List.map
    (fun (algorithm, d) -> (algorithm, d /. evaluation.lower_bound))
    evaluation.results

let place_and_evaluate ?capacity ?(seed = 0) ?pool matrix ~strategy ~k =
  let servers = Placement.place strategy ~seed ?pool matrix ~k in
  evaluate ?capacity ?pool matrix ~servers

let average_normalized ?capacity ?pool matrix ~runs ~k =
  (* Each seed is an independent (placement, evaluation) cell; fan the
     seed range out and aggregate in seed order, exactly as the
     sequential loop does — nested pool use inside a worker runs inline,
     so the per-seed computations are the sequential ones verbatim. *)
  let evaluate_seed seed =
    place_and_evaluate ?capacity ~seed ?pool matrix
      ~strategy:Placement.Random_placement ~k
  in
  let evaluations =
    match pool with
    | None -> Array.init runs evaluate_seed
    | Some pool -> Pool.run_seeds pool ~seeds:runs evaluate_seed
  in
  let per_algorithm = Hashtbl.create 8 in
  Array.iter
    (fun evaluation ->
      List.iter
        (fun (algorithm, value) ->
          let previous =
            Option.value ~default:[] (Hashtbl.find_opt per_algorithm algorithm)
          in
          Hashtbl.replace per_algorithm algorithm (value :: previous))
        (normalized evaluation))
    evaluations;
  List.map
    (fun algorithm ->
      let values = Option.value ~default:[] (Hashtbl.find_opt per_algorithm algorithm) in
      (algorithm, Dia_stats.Summary.of_list values))
    algorithms
