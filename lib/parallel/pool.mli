(** Deterministic multicore execution for the assignment pipeline.

    A fixed-size pool of worker {!Domain}s (stdlib only — no domainslib)
    over which embarrassingly parallel loops are fanned out in chunks.

    {b Determinism contract.} Every primitive returns results that are
    bit-identical to a sequential execution of the same loop, for any
    pool size:

    - chunk boundaries are a pure function of the input size and the
      pool size — never of scheduling;
    - each chunk writes only its own disjoint slots, and results are
      combined on the caller's domain in chunk (= index) order;
    - {!map_reduce} folds the mapped values strictly in index order, so
      even non-associative reductions (floating-point sums) match the
      sequential fold exactly;
    - stochastic tasks run under {!run_seeds} must derive their own
      [Random.State] from the seed they are handed, never share one.

    A pool with [jobs = 1] spawns no domains and runs every primitive as
    straight sequential code. Nested submissions (a task running on the
    pool calling back into the same — or any — pool) are detected and
    run inline sequentially, so pipelines can thread one pool through
    every layer without deadlock. *)

type t

val default_jobs : unit -> int
(** The [DIA_JOBS] environment variable if set to a positive integer,
    else [1]. *)

val create : ?jobs:int -> unit -> t
(** [create ~jobs ()] spawns [jobs - 1] worker domains (the submitting
    domain participates in every batch, so [jobs] domains cooperate).
    [jobs] defaults to {!default_jobs}.

    @raise Invalid_argument if [jobs < 1]. *)

val jobs : t -> int
(** The pool size it was created with. *)

val shutdown : t -> unit
(** Stop and join all worker domains. Idempotent. Any later submission
    raises [Invalid_argument]. *)

val with_pool : ?jobs:int -> (t -> 'a) -> 'a
(** [with_pool ~jobs f] runs [f] with a fresh pool and shuts it down
    afterwards, also on exceptions. *)

val parallel_for : ?grain:int -> t -> n:int -> (int -> unit) -> unit
(** [parallel_for t ~n f] runs [f i] for [i = 0 .. n-1]. [f] must only
    write state owned by index [i] (e.g. row [i] of a matrix).

    {b Chunk granularity.} All chunked primitives oversplit into
    [4 * jobs] chunks so uneven loops balance — but only when every
    chunk keeps at least [grain] items (default 4); smaller batches are
    issued as at most one chunk per worker, because per-chunk dispatch
    and setup overhead would otherwise dominate (a small seed sweep at
    [jobs = 4] once ran 6.7x slower than sequentially). Raise [grain]
    when each chunk pays a large fixed cost (scratch buffers), lower it
    to 1 when items are individually expensive and imbalanced. *)

val init : ?grain:int -> t -> int -> (int -> 'a) -> 'a array
(** Order-preserving parallel [Array.init]. [grain] as in
    {!parallel_for}. *)

val map_array : t -> ('a -> 'b) -> 'a array -> 'b array
(** Order-preserving parallel [Array.map]. *)

val map_reduce :
  t -> map:('a -> 'b) -> reduce:('acc -> 'b -> 'acc) -> init:'acc ->
  'a array -> 'acc
(** Map in parallel, then fold the mapped values in index order on the
    caller's domain: bit-identical to
    [Array.fold_left reduce init (Array.map map arr)] for any [jobs]. *)

val run_seeds : t -> seeds:int -> (int -> 'a) -> 'a array
(** [run_seeds t ~seeds f] fans [f 0 .. f (seeds - 1)] out to the
    workers and collects the results in seed order. Each task must seed
    its own [Random.State] from its argument. *)

val chunk_map : ?grain:int -> t -> n:int -> (lo:int -> hi:int -> 'a) -> 'a array
(** [chunk_map t ~n f] splits [0 .. n-1] into contiguous chunks and
    returns [f ~lo ~hi] per chunk, in chunk order. The number of chunks
    depends on the pool size (sequentially it is a single chunk), so the
    caller's combine step must be chunking-invariant — exact operations
    such as [max] or first-strict-improvement argmin qualify, float
    addition does not (use {!map_reduce} for those). [grain] as in
    {!parallel_for}. *)

val exercised : t -> int
(** Number of batches that actually ran on worker domains — exposed so
    tests can assert the parallel path was taken. *)
