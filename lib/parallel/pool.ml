(* A fixed-size Domain worker pool (stdlib only).

   One batch is in flight at a time: a chunk counter that workers (and
   the submitting caller, which always participates) pull from with
   [Atomic.fetch_and_add], a completion counter, and a chunk executor
   that captures exceptions per chunk. Workers block on a condition
   variable between batches; a generation number tells a worker whether
   the pending batch is one it has already drained, so exhausted workers
   park instead of spinning.

   Determinism is structural: chunks write disjoint slots, combination
   happens on the caller in chunk order, and no primitive lets the
   scheduling order reach the result. See pool.mli for the contract. *)

type batch = {
  chunks : int;
  next : int Atomic.t;
  completed : int Atomic.t;
  run_chunk : int -> unit;  (* wrapped: never raises *)
}

type t = {
  pool_jobs : int;
  mutex : Mutex.t;
  work_available : Condition.t;
  work_done : Condition.t;
  mutable pending : batch option;
  mutable generation : int;
  mutable stopped : bool;
  mutable workers : unit Domain.t array;
  mutable parallel_batches : int;
}

let default_jobs () =
  match Sys.getenv_opt "DIA_JOBS" with
  | None -> 1
  | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some j when j >= 1 -> j
      | _ -> 1)

let jobs t = t.pool_jobs
let exercised t = t.parallel_batches

(* True while the current domain is executing a chunk of some batch:
   nested submissions must run inline (a nested batch would wait on a
   pool whose workers are busy running its parent). *)
let in_chunk = Domain.DLS.new_key (fun () -> false)

let execute_chunks t b =
  let outer = Domain.DLS.get in_chunk in
  Domain.DLS.set in_chunk true;
  let rec loop () =
    let idx = Atomic.fetch_and_add b.next 1 in
    if idx < b.chunks then begin
      b.run_chunk idx;
      if Atomic.fetch_and_add b.completed 1 + 1 = b.chunks then begin
        Mutex.lock t.mutex;
        (match t.pending with
        | Some b' when b' == b -> t.pending <- None
        | _ -> ());
        Condition.broadcast t.work_done;
        Mutex.unlock t.mutex
      end;
      loop ()
    end
  in
  loop ();
  Domain.DLS.set in_chunk outer

let worker t =
  let last_generation = ref 0 in
  let running = ref true in
  while !running do
    Mutex.lock t.mutex;
    while
      (not t.stopped)
      && (match t.pending with
         | None -> true
         | Some _ -> t.generation = !last_generation)
    do
      Condition.wait t.work_available t.mutex
    done;
    if t.stopped then begin
      running := false;
      Mutex.unlock t.mutex
    end
    else begin
      let b = match t.pending with Some b -> b | None -> assert false in
      last_generation := t.generation;
      Mutex.unlock t.mutex;
      execute_chunks t b
    end
  done

let create ?jobs () =
  let jobs = match jobs with None -> default_jobs () | Some j -> j in
  if jobs < 1 then invalid_arg "Pool.create: jobs must be >= 1";
  let t =
    {
      pool_jobs = jobs;
      mutex = Mutex.create ();
      work_available = Condition.create ();
      work_done = Condition.create ();
      pending = None;
      generation = 0;
      stopped = false;
      workers = [||];
      parallel_batches = 0;
    }
  in
  if jobs > 1 then
    t.workers <- Array.init (jobs - 1) (fun _ -> Domain.spawn (fun () -> worker t));
  t

let shutdown t =
  Mutex.lock t.mutex;
  if t.stopped then Mutex.unlock t.mutex
  else begin
    t.stopped <- true;
    Condition.broadcast t.work_available;
    Mutex.unlock t.mutex;
    Array.iter Domain.join t.workers;
    t.workers <- [||]
  end

let with_pool ?jobs f =
  let t = create ?jobs () in
  Fun.protect ~finally:(fun () -> shutdown t) (fun () -> f t)

let check_alive t =
  if t.stopped then invalid_arg "Pool: used after shutdown"

(* More chunks than workers lets triangular / uneven loops balance — but
   every chunk pays fixed dispatch overhead, and per-chunk setup cost in
   the caller's [f] (scratch allocation, problem views) multiplies with
   the chunk count. On small batches the 4x oversplit therefore costs
   far more than the imbalance it cures (the fig8 seed sweep at jobs=4
   ran 6.7x slower than jobs=1). Oversplit only when every resulting
   chunk still holds at least [grain] items; otherwise issue at most one
   chunk per worker. *)
let chunk_count ?(grain = 4) t n =
  if n <= 1 then n
  else
    let fine = 4 * t.pool_jobs in
    if n >= grain * fine then min n fine else min n t.pool_jobs

let chunk_bounds ~n ~chunks c = (c * n / chunks, (c + 1) * n / chunks)

let run_batch t ~chunks run_chunk =
  let exns = Array.make chunks None in
  let wrapped c =
    try run_chunk c
    with e -> exns.(c) <- Some (e, Printexc.get_raw_backtrace ())
  in
  let b =
    { chunks; next = Atomic.make 0; completed = Atomic.make 0; run_chunk = wrapped }
  in
  Mutex.lock t.mutex;
  if t.stopped then begin
    Mutex.unlock t.mutex;
    invalid_arg "Pool: used after shutdown"
  end;
  (match t.pending with
  | Some _ ->
      Mutex.unlock t.mutex;
      invalid_arg "Pool: concurrent batch submission"
  | None -> ());
  t.pending <- Some b;
  t.generation <- t.generation + 1;
  t.parallel_batches <- t.parallel_batches + 1;
  Condition.broadcast t.work_available;
  Mutex.unlock t.mutex;
  execute_chunks t b;
  Mutex.lock t.mutex;
  while match t.pending with Some b' -> b' == b | None -> false do
    Condition.wait t.work_done t.mutex
  done;
  Mutex.unlock t.mutex;
  (* Re-raise the exception of the lowest-index failed chunk — the one a
     sequential run would have hit first. *)
  Array.iter
    (function
      | Some (e, bt) -> Printexc.raise_with_backtrace e bt
      | None -> ())
    exns

let sequential t = t.pool_jobs <= 1 || Domain.DLS.get in_chunk

let parallel_for ?grain t ~n f =
  check_alive t;
  if n > 0 then
    if sequential t || n = 1 then
      for i = 0 to n - 1 do
        f i
      done
    else begin
      let chunks = chunk_count ?grain t n in
      run_batch t ~chunks (fun c ->
          let lo, hi = chunk_bounds ~n ~chunks c in
          for i = lo to hi - 1 do
            f i
          done)
    end

let init ?grain t n f =
  check_alive t;
  if n <= 0 then [||]
  else if sequential t || n = 1 then Array.init n f
  else begin
    let chunks = chunk_count ?grain t n in
    let parts = Array.make chunks [||] in
    run_batch t ~chunks (fun c ->
        let lo, hi = chunk_bounds ~n ~chunks c in
        parts.(c) <- Array.init (hi - lo) (fun i -> f (lo + i)));
    Array.concat (Array.to_list parts)
  end

let map_array t f arr = init t (Array.length arr) (fun i -> f arr.(i))

let map_reduce t ~map ~reduce ~init:acc arr =
  Array.fold_left reduce acc (map_array t map arr)

let run_seeds t ~seeds f = init t seeds f

let chunk_map ?grain t ~n f =
  check_alive t;
  if n <= 0 then [||]
  else if sequential t || n = 1 then [| f ~lo:0 ~hi:n |]
  else begin
    let chunks = chunk_count ?grain t n in
    let parts = Array.make chunks None in
    run_batch t ~chunks (fun c ->
        let lo, hi = chunk_bounds ~n ~chunks c in
        parts.(c) <- Some (f ~lo ~hi));
    Array.map
      (function Some v -> v | None -> assert false)
      parts
  end
