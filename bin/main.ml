(* dia — command-line interface to the client assignment library.

   Subcommands:
     dia experiment {fig7,fig8,fig9,fig10}   reproduce a paper figure
     dia assign                              run one assignment end to end
     dia dataset                             generate synthetic latency data
     dia simulate                            protocol-level simulation
     dia soak                                SLO-guarded chaos soak run
     dia vivaldi                             coordinate embedding / completion
     dia topology                            transit-stub topology generation
     dia npc                                 NP-completeness reduction demo *)

open Cmdliner

module Algorithm = Dia_core.Algorithm
module Problem = Dia_core.Problem
module Assignment = Dia_core.Assignment
module Objective = Dia_core.Objective
module Lower_bound = Dia_core.Lower_bound
module Clock = Dia_core.Clock
module Placement = Dia_placement.Placement
module Config = Dia_experiments.Config
module Pool = Dia_parallel.Pool

(* Shared argument converters. *)

let dataset_conv =
  let parse s =
    match Config.dataset_of_string s with
    | Some d -> Ok d
    | None -> Error (`Msg (Printf.sprintf "unknown dataset %S (meridian|mit)" s))
  in
  Arg.conv (parse, fun ppf d -> Format.pp_print_string ppf (Config.dataset_name d))

let profile_conv =
  let parse s =
    match Config.profile_of_string s with
    | Some p -> Ok p
    | None -> Error (`Msg (Printf.sprintf "unknown profile %S (quick|default|full)" s))
  in
  Arg.conv (parse, fun ppf p -> Format.pp_print_string ppf p.Config.label)

let algorithm_conv =
  let parse s =
    match Algorithm.of_key s with
    | Some a -> Ok a
    | None ->
        Error (`Msg (Printf.sprintf "unknown algorithm %S (nearest|lfb|greedy|dgreedy|single|random)" s))
  in
  Arg.conv (parse, fun ppf a -> Format.pp_print_string ppf (Algorithm.key a))

let strategy_conv =
  let parse s =
    match Placement.strategy_of_string s with
    | Some p -> Ok p
    | None ->
        Error (`Msg (Printf.sprintf "unknown placement %S (random|kcenter-a|kcenter-b)" s))
  in
  Arg.conv (parse, fun ppf s -> Format.pp_print_string ppf (Placement.strategy_name s))

let dataset_arg =
  Arg.(value & opt dataset_conv Config.Meridian_like
       & info [ "dataset" ] ~docv:"NAME" ~doc:"Data set: meridian or mit.")

let profile_arg =
  Arg.(value & opt profile_conv Config.default
       & info [ "profile" ] ~docv:"PROFILE"
           ~doc:"Experiment scale: quick, default, or full (paper scale).")

let matrix_file_arg =
  Arg.(value & opt (some string) None
       & info [ "matrix" ] ~docv:"FILE"
           ~doc:"Load the latency matrix from $(docv) instead of generating it.")

let seed_arg =
  Arg.(value & opt int 0 & info [ "seed" ] ~docv:"SEED" ~doc:"Random seed.")

let fault_conv =
  let parse s =
    match Dia_sim.Fault.of_string s with
    | Ok p -> Ok p
    | Error m -> Error (`Msg m)
  in
  Arg.conv (parse, Dia_sim.Fault.pp_plan)

let fault_arg =
  Arg.(value & opt fault_conv Dia_sim.Fault.reliable
       & info [ "fault" ] ~docv:"SPEC"
           ~doc:"Fault plan for protocol-level runs, e.g. \
                 $(b,loss:0.15+crash:3@2.0~5.0) (see the fault mini-DSL; \
                 $(b,reliable) disables).")

let delay_conv =
  let parse s =
    match Dia_core.Delay.of_string s with
    | Ok d -> Ok d
    | Error m -> Error (`Msg m)
  in
  Arg.conv (parse, Dia_core.Delay.pp)

(* A protocol-level Distributed-Greedy run under a fault plan, reported
   against the instance's lower bound. *)
let protocol_under_faults ~seed ~lb fault p =
  let res =
    Dia_sim.Dgreedy_protocol.run
      ~fault:(Dia_sim.Fault.instantiate ~seed fault)
      p
  in
  let f = res.Dia_sim.Dgreedy_protocol.faults in
  Printf.printf
    "protocol under faults (%s):\n\
    \  D = %.2f ms (normalized %.3f), %d modifications, %d messages, stalled: %b\n\
    \  dropped=%d duplicated=%d retransmissions=%d give-ups=%d regenerations=%d failovers=%d\n"
    (Dia_sim.Fault.to_string fault)
    res.Dia_sim.Dgreedy_protocol.objective
    (res.Dia_sim.Dgreedy_protocol.objective /. lb)
    res.Dia_sim.Dgreedy_protocol.modifications
    res.Dia_sim.Dgreedy_protocol.messages res.Dia_sim.Dgreedy_protocol.stalled
    f.Dia_sim.Dgreedy_protocol.dropped f.Dia_sim.Dgreedy_protocol.duplicated
    f.Dia_sim.Dgreedy_protocol.retransmissions
    f.Dia_sim.Dgreedy_protocol.give_ups
    f.Dia_sim.Dgreedy_protocol.regenerations
    f.Dia_sim.Dgreedy_protocol.failovers

let jobs_arg =
  Arg.(value & opt (some int) None
       & info [ "jobs"; "j" ] ~docv:"N"
           ~doc:"Worker domains for the parallel subsystem (default: the \
                 $(b,DIA_JOBS) environment variable, then 1). Results are \
                 identical for any value.")

let resolve_jobs = function Some j -> j | None -> Pool.default_jobs ()

let load_matrix ~matrix_file ~dataset ~profile ~seed =
  match matrix_file with
  | Some path -> Dia_latency.Loader.load path
  | None -> Config.load_dataset ~seed dataset profile

(* dia experiment *)

let experiment_cmd =
  let figure_arg =
    Arg.(required & pos 0 (some string) None
         & info [] ~docv:"FIGURE"
             ~doc:"One of fig7, fig8, fig9, fig10, all, or load-sweep (D vs \
                   D_load as utilization ramps; not a paper figure).")
  in
  let csv_arg =
    Arg.(value & opt (some string) None
         & info [ "csv" ] ~docv:"FILE"
             ~doc:"Also write the figure's data series as CSV to $(docv).")
  in
  let run figure dataset profile csv_path jobs fault =
    let jobs = resolve_jobs jobs in
    let faulty = not (Dia_sim.Fault.equal fault Dia_sim.Fault.reliable) in
    let fig9_fault_appendix () =
      (* Fig. 9 studies Distributed-Greedy convergence; the fault
         extension replays it protocol-level on a capped instance so the
         run stays interactive at any profile. *)
      let matrix = Dia_latency.Synthetic.internet_like ~seed:0 150 in
      let servers = Placement.place Placement.Random_placement ~seed:0 matrix ~k:12 in
      let p = Problem.all_nodes_clients matrix ~servers in
      let lb = Lower_bound.compute p in
      print_endline "fig9 fault extension (capped 150-node instance, 12 servers):";
      protocol_under_faults ~seed:0 ~lb fault p
    in
    let dispatch = function
      | "fig7" ->
          let r = Dia_experiments.Fig7.run ~dataset ~profile ~jobs () in
          Ok (Dia_experiments.Fig7.render r, Dia_experiments.Fig7.csv r)
      | "fig8" ->
          let r = Dia_experiments.Fig8.run ~dataset ~profile ~jobs () in
          Ok (Dia_experiments.Fig8.render r, Dia_experiments.Fig8.csv r)
      | "fig9" ->
          let r = Dia_experiments.Fig9.run ~dataset ~profile () in
          Ok (Dia_experiments.Fig9.render r, Dia_experiments.Fig9.csv r)
      | "fig10" ->
          let r = Dia_experiments.Fig10.run ~dataset ~profile () in
          Ok (Dia_experiments.Fig10.render r, Dia_experiments.Fig10.csv r)
      | "load-sweep" ->
          let r = Dia_experiments.Load_sweep.run ~dataset ~profile () in
          Ok (Dia_experiments.Load_sweep.render r, Dia_experiments.Load_sweep.csv r)
      | other -> Error (Printf.sprintf "unknown figure %S" other)
    in
    let figures =
      if figure = "all" then [ "fig7"; "fig8"; "fig9"; "fig10" ] else [ figure ]
    in
    if faulty && figure <> "fig9" then
      `Error
        ( false,
          "--fault applies to fig9 only (the Distributed-Greedy figure has a \
           protocol-level fault extension)" )
    else
      let rec render = function
        | [] ->
            if faulty then fig9_fault_appendix ();
            `Ok ()
        | f :: rest -> (
            match dispatch f with
            | Ok (text, csv) ->
                print_endline text;
                (match csv_path with
                | Some path when rest = [] && figure <> "all" ->
                    let oc = open_out path in
                    output_string oc csv;
                    close_out oc;
                    Printf.printf "(series written to %s)\n" path
                | _ -> ());
                render rest
            | Error message -> `Error (false, message))
      in
      render figures
  in
  Cmd.v
    (Cmd.info "experiment" ~doc:"Reproduce one of the paper's figures.")
    Term.(ret (const run $ figure_arg $ dataset_arg $ profile_arg $ csv_arg
               $ jobs_arg $ fault_arg))

(* dia assign *)

let assign_cmd =
  let servers_arg =
    Arg.(value & opt int 40 & info [ "k"; "servers" ] ~docv:"K" ~doc:"Number of servers.")
  in
  let placement_arg =
    Arg.(value & opt strategy_conv Placement.Random_placement
         & info [ "placement" ] ~docv:"STRATEGY" ~doc:"Server placement strategy.")
  in
  let algorithm_arg =
    Arg.(value & opt (some algorithm_conv) None
         & info [ "algorithm" ] ~docv:"ALGO"
             ~doc:"Run only this algorithm (default: all four heuristics).")
  in
  let capacity_arg =
    Arg.(value & opt (some int) None
         & info [ "capacity" ] ~docv:"N" ~doc:"Per-server client capacity.")
  in
  let explain_arg =
    Arg.(value & flag
         & info [ "explain" ]
             ~doc:"Also print the worst interaction paths and per-server contributions for each algorithm.")
  in
  let index_arg =
    Arg.(value & flag
         & info [ "index" ]
             ~doc:"Build a landmark index over the servers and answer \
                   Nearest-Server queries through it. Prints whether the \
                   index's triangle bounds verified against the matrix; on \
                   non-metric data (all real latency sets) every query falls \
                   back to the exhaustive scan. The assignment is \
                   bit-identical either way — the flag only changes how many \
                   candidates each query touches.")
  in
  let coreset_eps_arg =
    Arg.(value & opt (some float) None
         & info [ "coreset-eps" ] ~docv:"E"
             ~doc:"Solve on a weighted coreset at resolution $(docv) instead \
                   of the full client set: clients sharing a Vivaldi grid \
                   cell collapse into one representative, the algorithm runs \
                   on the reduced instance, and the expanded assignment is \
                   reported next to the certified additive bound \
                   |D_reduced - D_full| <= 2r. Requires an uncapacitated \
                   instance; $(docv)=0 dedups co-located clients exactly.")
  in
  let delay_arg =
    Arg.(value & opt (some delay_conv) None
         & info [ "delay" ] ~docv:"SPEC"
             ~doc:"Load-latency model: $(b,constant:C), $(b,linear:BASE,COEFF) \
                   or $(b,mm1:MU) (M/M/1-style 1/(mu - load), saturating \
                   smoothly past mu). Runs the load-aware variants of \
                   Nearest, Greedy and Distributed-Greedy and adds \
                   $(b,D_load) columns: each hop pays its server's \
                   load-dependent delay on top of the network path.")
  in
  let run dataset profile matrix_file seed k placement algorithm capacity explain jobs fault use_index coreset_eps delay =
    let matrix = load_matrix ~matrix_file ~dataset ~profile ~seed in
    let faulty = not (Dia_sim.Fault.equal fault Dia_sim.Fault.reliable) in
    if faulty && Dia_latency.Matrix.dim matrix > 600 then
      `Error
        ( false,
          "--fault runs the message-level protocol, which is impractical at \
           this instance size; use --profile quick (or a smaller --matrix)" )
    else if coreset_eps <> None && capacity <> None then
      `Error
        ( false,
          "--coreset-eps requires an uncapacitated instance (a coreset point \
           stands for a whole client population)" )
    else if delay <> None && coreset_eps <> None then
      `Error
        ( false,
          "--delay cannot be combined with --coreset-eps (a coreset point \
           hides the true per-server load from the delay model)" )
    else
    Pool.with_pool ~jobs:(resolve_jobs jobs) @@ fun pool ->
    let servers = Placement.place placement ~seed ~pool matrix ~k in
    let p = Problem.all_nodes_clients ?capacity matrix ~servers in
    let index =
      if not use_index then None
      else begin
        let idx = Dia_latency.Landmark.build matrix ~candidates:servers in
        Printf.printf "landmark index: %d landmarks, triangle bounds %s\n"
          (Dia_latency.Landmark.num_landmarks idx)
          (if Dia_latency.Landmark.metric_ok idx then
             "verified — queries prune"
           else "violated — exhaustive fallback");
        Some idx
      end
    in
    let lb = Lower_bound.compute ~pool p in
    let algorithms =
      match algorithm with Some a -> [ a ] | None -> Algorithm.heuristics
    in
    match coreset_eps with
    | Some eps ->
        let module Coreset = Dia_coreset.Coreset in
        let cs =
          Coreset.build ~seed ~eps matrix ~servers ~clients:(Problem.clients p)
        in
        let reduced = Coreset.reduced cs in
        Printf.printf
          "instance: %d clients, %d servers (%s placement)\n\
           coreset:  %d points at eps %g (radius %.2f ms, additive bound \
           %.2f ms)\n\
           lower bound: %.2f ms\n"
          (Problem.num_clients p) (Problem.num_servers p)
          (Placement.strategy_name placement)
          (Coreset.points cs) eps (Coreset.radius cs) (Coreset.bound cs) lb;
        let table =
          Dia_stats.Table.make
            ~columns:
              [ "algorithm"; "D reduced"; "D full"; "|delta|"; "normalized" ]
        in
        List.iter
          (fun algorithm ->
            let a_red = Algorithm.run ~seed algorithm reduced in
            let d_red = Objective.max_interaction_path reduced a_red in
            let d_full =
              Objective.max_interaction_path p (Coreset.expand cs a_red)
            in
            Dia_stats.Table.add_row table
              [
                Algorithm.name algorithm;
                Printf.sprintf "%.2f" d_red;
                Printf.sprintf "%.2f" d_full;
                Printf.sprintf "%.2f" (Float.abs (d_full -. d_red));
                Printf.sprintf "%.3f" (d_full /. lb);
              ])
          algorithms;
        Dia_stats.Table.print table;
        `Ok ()
    | None ->
    let table =
      Dia_stats.Table.make
        ~columns:
          (match delay with
          | None ->
              [ "algorithm"; "D (ms)"; "normalized"; "max load"; "used servers" ]
          | Some _ ->
              [
                "algorithm"; "D (ms)"; "normalized"; "D_load (ms)";
                "D_load/LB_load"; "max load"; "used servers";
              ])
    in
    let explanations = Buffer.create 256 in
    List.iter
      (fun algorithm ->
        let a =
          match (algorithm, index, delay) with
          | _, _, Some dl -> Algorithm.run_load ~seed ~delay:dl algorithm p
          | Algorithm.Nearest_server, Some index, None ->
              Dia_core.Nearest.assign ~index p
          | _, _, None -> Algorithm.run ~seed algorithm p
        in
        let d = Objective.max_interaction_path p a in
        let loads = Assignment.loads p a in
        let load_columns =
          match delay with
          | None -> []
          | Some dl ->
              let d_load = Objective.max_interaction_path_load p ~delay:dl a in
              let lb_load = lb +. (2. *. Dia_core.Delay.eval dl 1) in
              [
                Printf.sprintf "%.2f" d_load;
                Printf.sprintf "%.3f" (d_load /. lb_load);
              ]
        in
        Dia_stats.Table.add_row table
          ([
             Algorithm.name algorithm;
             Printf.sprintf "%.2f" d;
             Printf.sprintf "%.3f" (d /. lb);
           ]
          @ load_columns
          @ [
              string_of_int (Array.fold_left max 0 loads);
              string_of_int (Array.length (Assignment.used_servers p a));
            ]);
        if explain then begin
          Buffer.add_string explanations
            (Printf.sprintf "\n%s — worst interaction paths:\n" (Algorithm.name algorithm));
          List.iter
            (fun (path : Dia_core.Interaction.path) ->
              Buffer.add_string explanations
                (Printf.sprintf
                   "  client %d -[%.1f]-> server %d -[%.1f]-> server %d -[%.1f]-> client %d  (= %.1f ms)\n"
                   path.Dia_core.Interaction.from_client
                   path.Dia_core.Interaction.client_leg
                   path.Dia_core.Interaction.from_server
                   path.Dia_core.Interaction.server_leg
                   path.Dia_core.Interaction.to_server
                   path.Dia_core.Interaction.exit_leg
                   path.Dia_core.Interaction.to_client
                   path.Dia_core.Interaction.length))
            (Dia_core.Interaction.worst_pairs ~count:3 p a);
          let client_legs, server_leg = Dia_core.Interaction.breakdown p a in
          Buffer.add_string explanations
            (Printf.sprintf
               "  worst path split: %.1f ms access legs + %.1f ms inter-server leg\n"
               client_legs server_leg)
        end)
      algorithms;
    Printf.printf
      "instance: %d clients, %d servers (%s placement), capacity %s\nlower bound: %.2f ms\n"
      (Problem.num_clients p) (Problem.num_servers p)
      (Placement.strategy_name placement)
      (match capacity with None -> "unlimited" | Some c -> string_of_int c)
      lb;
    (match delay with
    | None -> ()
    | Some dl ->
        Printf.printf "delay model: %s (LB_load = %.2f ms)\n"
          (Dia_core.Delay.to_string dl)
          (lb +. (2. *. Dia_core.Delay.eval dl 1)));
    Dia_stats.Table.print table;
    print_string (Buffer.contents explanations);
    if faulty then protocol_under_faults ~seed ~lb fault p;
    `Ok ()
  in
  Cmd.v
    (Cmd.info "assign" ~doc:"Assign clients to servers on a data set and report interactivity.")
    Term.(ret (const run $ dataset_arg $ profile_arg $ matrix_file_arg $ seed_arg
               $ servers_arg $ placement_arg $ algorithm_arg $ capacity_arg
               $ explain_arg $ jobs_arg $ fault_arg $ index_arg $ coreset_eps_arg
               $ delay_arg))

(* dia dataset *)

let dataset_cmd =
  let out_arg =
    Arg.(required & opt (some string) None
         & info [ "out" ] ~docv:"FILE" ~doc:"Output file (dense matrix format).")
  in
  let nodes_arg =
    Arg.(value & opt (some int) None
         & info [ "nodes" ] ~docv:"N" ~doc:"Generate an N-node matrix instead of full size.")
  in
  let run dataset seed nodes out =
    let matrix =
      match nodes with
      | Some n -> Dia_latency.Synthetic.internet_like ~seed n
      | None -> (
          match dataset with
          | Config.Meridian_like -> Dia_latency.Synthetic.meridian_like ~seed ()
          | Config.Mit_like -> Dia_latency.Synthetic.mit_like ~seed ())
    in
    Dia_latency.Loader.save_matrix out matrix;
    let stats = Dia_latency.Metric.triangle_violations matrix in
    Printf.printf
      "wrote %d-node matrix to %s (median-ish mean %.1f ms, max %.1f ms, triangle violations %.1f%%)\n"
      (Dia_latency.Matrix.dim matrix) out
      (Dia_latency.Matrix.mean_entry matrix)
      (Dia_latency.Matrix.max_entry matrix)
      (100. *. stats.Dia_latency.Metric.violation_fraction)
  in
  Cmd.v
    (Cmd.info "dataset" ~doc:"Generate a synthetic Internet-like latency matrix.")
    Term.(const run $ dataset_arg $ seed_arg $ nodes_arg $ out_arg)

(* dia simulate *)

let simulate_cmd =
  let nodes_arg =
    Arg.(value & opt int 60 & info [ "nodes" ] ~docv:"N" ~doc:"Network size.")
  in
  let servers_arg =
    Arg.(value & opt int 6 & info [ "k"; "servers" ] ~docv:"K" ~doc:"Number of servers.")
  in
  let algorithm_arg =
    Arg.(value & opt algorithm_conv Algorithm.Greedy
         & info [ "algorithm" ] ~docv:"ALGO" ~doc:"Assignment algorithm.")
  in
  let rounds_arg =
    Arg.(value & opt int 5 & info [ "rounds" ] ~docv:"R" ~doc:"Workload rounds.")
  in
  let delta_scale_arg =
    Arg.(value & opt float 1.0
         & info [ "delta-scale" ] ~docv:"X"
             ~doc:"Scale the execution lag relative to the minimum D(A); below 1.0 breaches appear.")
  in
  let run nodes k algorithm rounds delta_scale seed =
    let matrix = Dia_latency.Synthetic.internet_like ~seed nodes in
    let servers = Placement.place Placement.K_center_b matrix ~k in
    let p = Problem.all_nodes_clients matrix ~servers in
    let a = Algorithm.run ~seed algorithm p in
    let clock = Clock.synthesize p a in
    let clock = { clock with Clock.delta = clock.Clock.delta *. delta_scale } in
    let workload =
      Dia_sim.Workload.rounds ~clients:(Problem.num_clients p) ~rounds ~period:200.
    in
    let report = Dia_sim.Protocol.run p a clock workload in
    let verdict = Dia_sim.Checker.analyze report in
    Printf.printf
      "simulated %d ops x %d servers x %d clients (delta = %.2f ms, %d messages)\n"
      (List.length report.Dia_sim.Protocol.operations)
      (Problem.num_servers p) (Problem.num_clients p)
      clock.Clock.delta report.Dia_sim.Protocol.messages;
    Printf.printf "consistent: %b  fair: %b\n" verdict.Dia_sim.Checker.consistent
      verdict.Dia_sim.Checker.fair;
    Printf.printf "late executions: %d  late client updates: %d  breach rate: %.2f%%\n"
      verdict.Dia_sim.Checker.late_executions
      verdict.Dia_sim.Checker.late_visibilities
      (100. *. Dia_sim.Checker.breach_rate report);
    Printf.printf "interaction time: mean %.2f ms, max %.2f ms, uniform: %b\n"
      verdict.Dia_sim.Checker.mean_interaction_time
      verdict.Dia_sim.Checker.max_interaction_time
      verdict.Dia_sim.Checker.uniform_interaction
  in
  Cmd.v
    (Cmd.info "simulate" ~doc:"Run the message-level DIA protocol simulation.")
    Term.(const run $ nodes_arg $ servers_arg $ algorithm_arg $ rounds_arg
          $ delta_scale_arg $ seed_arg)

(* dia soak *)

let soak_cmd =
  let module Soak = Dia_runtime.Soak in
  let module Checkpoint = Dia_runtime.Checkpoint in
  let d = Soak.default_scenario and dc = Soak.default_config in
  let nodes_arg =
    Arg.(value & opt int d.Soak.nodes
         & info [ "nodes" ] ~docv:"N" ~doc:"Network size.")
  in
  let servers_arg =
    Arg.(value & opt int d.Soak.servers
         & info [ "k"; "servers" ] ~docv:"K" ~doc:"Number of servers.")
  in
  let capacity_arg =
    Arg.(value & opt (some int) d.Soak.capacity
         & info [ "capacity" ] ~docv:"N" ~doc:"Per-server client capacity.")
  in
  let horizon_arg =
    Arg.(value & opt float d.Soak.horizon
         & info [ "horizon" ] ~docv:"T" ~doc:"Trace length in time units.")
  in
  let rate_arg =
    Arg.(value & opt float d.Soak.join_rate
         & info [ "rate" ] ~docv:"R" ~doc:"Poisson join rate per time unit.")
  in
  let lifetime_arg =
    Arg.(value & opt float d.Soak.mean_lifetime
         & info [ "lifetime" ] ~docv:"T" ~doc:"Mean exponential session lifetime.")
  in
  let drift_period_arg =
    Arg.(value & opt float d.Soak.drift_period
         & info [ "drift-period" ] ~docv:"T"
             ~doc:"Latency-drift step period (0 disables drift).")
  in
  let drift_amplitude_arg =
    Arg.(value & opt float d.Soak.drift_amplitude
         & info [ "drift-amplitude" ] ~docv:"A"
             ~doc:"Drift factor spread in [0,1].")
  in
  let soak_fault_arg =
    Arg.(value & opt fault_conv d.Soak.fault
         & info [ "fault" ] ~docv:"SPEC"
             ~doc:"Fault plan: crash rules drive server crash/recovery in the \
                   trace; the whole plan is the ambient network weather for \
                   protocol-repair epochs. Default \
                   $(b,loss:0.1+crash:2@60~180); $(b,reliable) disables.")
  in
  let budget_arg =
    Arg.(value & opt int dc.Soak.budget
         & info [ "budget" ] ~docv:"M"
             ~doc:"Migration budget per repair epoch.")
  in
  let max_queue_arg =
    Arg.(value & opt int dc.Soak.max_queue
         & info [ "max-queue" ] ~docv:"N" ~doc:"Admission queue bound.")
  in
  let lb_every_arg =
    Arg.(value & opt int dc.Soak.lb_every
         & info [ "lb-every" ] ~docv:"N"
             ~doc:"Events between periodic lower-bound refreshes.")
  in
  let checkpoint_arg =
    Arg.(value & opt (some string) None
         & info [ "checkpoint" ] ~docv:"FILE"
             ~doc:"Write checkpoints to $(docv) (atomic replace).")
  in
  let checkpoint_every_arg =
    Arg.(value & opt int dc.Soak.checkpoint_every
         & info [ "checkpoint-every" ] ~docv:"N"
             ~doc:"Events between checkpoints (0 disables).")
  in
  let resume_arg =
    Arg.(value & flag
         & info [ "resume" ]
             ~doc:"Continue from the checkpoint file instead of starting \
                   fresh; the final report is bit-identical to an \
                   uninterrupted run.")
  in
  let kill_after_arg =
    Arg.(value & opt (some int) None
         & info [ "kill-after" ] ~docv:"N"
             ~doc:"Stop (exit 137) right after the $(docv)-th checkpoint of \
                   this process — a deterministic kill -9 for tests and CI.")
  in
  let state_dir_arg =
    Arg.(value & opt (some string) None
         & info [ "state-dir" ] ~docv:"DIR"
             ~doc:"Durable-recovery state directory: write-ahead journal of \
                   event-log lines plus numbered checkpoint generations \
                   ($(b,ckpt.N)), all written through the storage fault \
                   injector (disk atoms in $(b,--fault) apply). With \
                   $(b,--resume), restore lands on the newest generation \
                   that verifies, rolling back over corrupt ones.")
  in
  let keep_arg =
    Arg.(value & opt int 3
         & info [ "keep" ] ~docv:"G"
             ~doc:"Checkpoint generations retained in $(b,--state-dir).")
  in
  let kill_event_arg =
    Arg.(value & opt (some int) None
         & info [ "kill-event" ] ~docv:"N"
             ~doc:"Stop (exit 137) right after processing trace event $(docv) \
                   — any event index, not just a checkpoint boundary. \
                   Resume from $(b,--state-dir) replays to a bit-identical \
                   report.")
  in
  let verify_recovery_arg =
    Arg.(value & flag
         & info [ "verify-recovery" ]
             ~doc:"Audit the whole durability story: run uninterrupted, \
                   re-run into $(b,--state-dir) with the plan's disk faults \
                   live and a kill at $(b,--kill-event), restore, resume, \
                   and assert the recovered report, event log and journal \
                   are byte-identical to the uninterrupted run. Exits \
                   non-zero on any divergence.")
  in
  let log_arg =
    Arg.(value & opt (some string) None
         & info [ "log" ] ~docv:"FILE"
             ~doc:"Write the structured event log to $(docv).")
  in
  let no_standby_arg =
    Arg.(value & flag
         & info [ "no-standby" ]
             ~doc:"Disable standby replicas: repair crashes with the greedy \
                   full-migration path instead of O(1) promotion.")
  in
  let standby_bound_arg =
    Arg.(value & opt float dc.Soak.standby_bound
         & info [ "standby-bound" ] ~docv:"B"
             ~doc:"Max tolerated post-promotion D/LB; a breach triggers an \
                   immediate budgeted rebalance.")
  in
  let baseline_arg =
    Arg.(value & flag
         & info [ "baseline" ]
             ~doc:"Sample an offline Greedy re-solve at every lower-bound \
                   refresh (the competitive-ratio baseline stream).")
  in
  let clients_arg =
    Arg.(value & opt int d.Soak.clients
         & info [ "clients" ] ~docv:"N"
             ~doc:"Pre-populate $(docv) sessions before the trace starts \
                   (uniform random nodes from the seed). They bypass \
                   admission and the event log — the steady base load for \
                   million-client runs.")
  in
  let coreset_eps_arg =
    Arg.(value & opt (some float) d.Soak.coreset_eps
         & info [ "coreset-eps" ] ~docv:"E"
             ~doc:"Weighted mode: bucket sessions into coreset cells of \
                   resolution $(docv) on the Vivaldi embedding, so the \
                   session layer sees one member per occupied cell and \
                   steady-state per-event cost is independent of the client \
                   count. Requires an uncapacitated scenario; $(docv)=0 \
                   still dedups co-located sessions exactly.")
  in
  let soak_csv_arg =
    Arg.(value & opt (some string) None
         & info [ "csv" ] ~docv:"FILE"
             ~doc:"Write the objective trace (t,objective,ratio per \
                   lower-bound refresh) to $(docv) as CSV.")
  in
  let soak_delay_arg =
    Arg.(value & opt (some delay_conv) d.Soak.delay
         & info [ "delay" ] ~docv:"SPEC"
             ~doc:"Load-latency model ($(b,constant:C), \
                   $(b,linear:BASE,COEFF) or $(b,mm1:MU)): the session \
                   places and repairs against the load-aware $(b,D_load) \
                   objective and the SLO watches $(b,D_load/LB_load). \
                   Incompatible with $(b,--coreset-eps).")
  in
  let run seed nodes servers capacity horizon rate lifetime drift_period
      drift_amplitude fault budget max_queue lb_every checkpoint
      checkpoint_every resume kill_after state_dir keep kill_event
      verify_recovery log_path no_standby standby_bound baseline clients
      coreset_eps delay csv_path =
    let scenario =
      {
        Soak.seed;
        nodes;
        servers;
        capacity;
        horizon;
        join_rate = rate;
        mean_lifetime = lifetime;
        drift_period;
        drift_amplitude;
        fault;
        clients;
        coreset_eps;
        delay;
      }
    in
    let config =
      {
        dc with
        Soak.budget;
        max_queue;
        lb_every;
        checkpoint_every;
        standby = not no_standby;
        standby_bound;
        offline_baseline = baseline;
      }
    in
    let proceed resume_from =
      match
        Soak.run ?checkpoint_path:checkpoint ?state_dir ~keep ?resume_from
          ?kill_after ?kill_at_event:kill_event scenario config
      with
      | exception Invalid_argument m -> `Error (false, m)
      | Soak.Completed r ->
          print_string (Soak.render r);
          (* Timing is wall clock — parenthesised so determinism checks
             (which strip '(' lines) ignore it. Printed only for the
             at-scale modes where it is the point. *)
          if r.Soak.weighted || clients > 0 then
            Printf.printf
              "(prepopulated %d sessions in %.3fs; %d trace events in %.3fs = \
               %.2f us/event)\n"
              clients r.Soak.prepop_seconds r.Soak.events r.Soak.loop_seconds
              (1e6 *. r.Soak.loop_seconds /. float_of_int (max 1 r.Soak.events));
          (match csv_path with
          | Some path ->
              let oc = open_out path in
              output_string oc (Soak.csv r);
              close_out oc;
              Printf.printf "(csv written to %s)\n" path
          | None -> ());
          (match log_path with
          | Some path ->
              Dia_runtime.Event_log.save path r.Soak.log;
              Printf.printf "(event log written to %s)\n" path
          | None -> ());
          `Ok ()
      | Soak.Killed st ->
          Printf.printf "killed after checkpoint %d (event %d of the trace)%s\n"
            st.Checkpoint.checkpoints st.Checkpoint.cursor
            (match (state_dir, checkpoint) with
            | Some dir, _ ->
                Printf.sprintf "; resume with: dia soak --resume --state-dir %s"
                  dir
            | None, Some path ->
                Printf.sprintf "; resume with: dia soak --resume --checkpoint %s"
                  path
            | None, None -> "");
          exit 137
    in
    if verify_recovery then
      match (state_dir, kill_event) with
      | Some dir, Some kill_at_event ->
          let v =
            Dia_runtime.Recovery.verify ~keep ~state_dir:dir ~kill_at_event
              scenario config
          in
          List.iter print_endline v.Dia_runtime.Recovery.lines;
          if v.Dia_runtime.Recovery.ok then begin
            print_endline "recovery verified: bit-identical to the uninterrupted run";
            `Ok ()
          end
          else `Error (false, "recovery verification failed")
      | _ ->
          `Error
            (false, "--verify-recovery requires --state-dir DIR and --kill-event N")
    else if resume then
      match (state_dir, checkpoint) with
      | Some dir, _ -> (
          let r =
            Dia_runtime.Recovery.restore ~dir
              ~digest:(Soak.digest scenario config)
          in
          List.iter
            (fun (g, m) -> Printf.printf "(skipping corrupt ckpt.%d: %s)\n" g m)
            r.Dia_runtime.Recovery.skipped;
          match r.Dia_runtime.Recovery.generation with
          | Some (g, st) ->
              Printf.printf
                "(restored generation ckpt.%d at event %d; %d journal records \
                 cover the tail)\n"
                g st.Checkpoint.cursor r.Dia_runtime.Recovery.replayed;
              proceed (Some st)
          | None ->
              print_endline
                "(no verifying checkpoint generation; restarting from scratch)";
              proceed None)
      | None, Some path -> (
          match Checkpoint.load path with
          | Ok st -> proceed (Some st)
          | Error m -> `Error (false, "cannot resume: " ^ m))
      | None, None ->
          `Error (false, "--resume requires --checkpoint FILE or --state-dir DIR")
    else proceed None
  in
  Cmd.v
    (Cmd.info "soak"
       ~doc:"Run the self-healing control plane through a chaos trace: \
             Poisson churn, latency drift and crash/recovery schedules, \
             with SLO-guarded bounded repair, admission control, and \
             checkpoint/restore. Deterministic: any kill at a checkpoint \
             boundary resumes to a bit-identical report and event log.")
    Term.(ret (const run $ seed_arg $ nodes_arg $ servers_arg $ capacity_arg
               $ horizon_arg $ rate_arg $ lifetime_arg $ drift_period_arg
               $ drift_amplitude_arg $ soak_fault_arg $ budget_arg
               $ max_queue_arg $ lb_every_arg $ checkpoint_arg
               $ checkpoint_every_arg $ resume_arg $ kill_after_arg
               $ state_dir_arg $ keep_arg $ kill_event_arg
               $ verify_recovery_arg $ log_arg $ no_standby_arg
               $ standby_bound_arg $ baseline_arg $ clients_arg
               $ coreset_eps_arg $ soak_delay_arg $ soak_csv_arg))

(* dia competitive *)

let competitive_cmd =
  let module Soak = Dia_runtime.Soak in
  let module Competitive = Dia_runtime.Competitive in
  let d = Soak.default_scenario and dc = Soak.default_config in
  let nodes_arg =
    Arg.(value & opt int d.Soak.nodes
         & info [ "nodes" ] ~docv:"N" ~doc:"Network size.")
  in
  let servers_arg =
    Arg.(value & opt int d.Soak.servers
         & info [ "k"; "servers" ] ~docv:"K" ~doc:"Number of servers.")
  in
  let capacity_arg =
    Arg.(value & opt (some int) d.Soak.capacity
         & info [ "capacity" ] ~docv:"N" ~doc:"Per-server client capacity.")
  in
  let horizon_arg =
    Arg.(value & opt float d.Soak.horizon
         & info [ "horizon" ] ~docv:"T" ~doc:"Trace length in time units.")
  in
  let fault_arg =
    Arg.(value & opt fault_conv d.Soak.fault
         & info [ "fault" ] ~docv:"SPEC"
             ~doc:"Fault plan each trace replays (see $(b,dia soak)).")
  in
  let traces_arg =
    Arg.(value & opt int 20
         & info [ "traces" ] ~docv:"N"
             ~doc:"Seeded trace replays (scenario seeds SEED..SEED+N-1).")
  in
  let bound_arg =
    Arg.(value & opt float Competitive.default_bound
         & info [ "bound" ] ~docv:"B"
             ~doc:"Competitive-ratio bound the worst observed online/offline \
                   quotient must stay within.")
  in
  let csv_arg =
    Arg.(value & opt (some string) None
         & info [ "csv" ] ~docv:"FILE"
             ~doc:"Write the per-trace ratio table to $(docv) as CSV.")
  in
  let no_standby_arg =
    Arg.(value & flag
         & info [ "no-standby" ]
             ~doc:"Measure the online policy without standby promotion.")
  in
  let run seed nodes servers capacity horizon fault traces bound csv
      no_standby =
    let scenario = { d with Soak.seed; nodes; servers; capacity; horizon; fault } in
    let config = { dc with Soak.standby = not no_standby } in
    match Competitive.run ~traces ~bound scenario config with
    | exception Invalid_argument m -> `Error (false, m)
    | summary ->
        print_string (Competitive.render summary);
        (match csv with
        | Some path ->
            let oc = open_out path in
            output_string oc (Competitive.to_csv summary);
            close_out oc;
            Printf.printf "(per-trace CSV written to %s)\n" path
        | None -> ());
        if summary.Competitive.ok then `Ok () else exit 1
  in
  Cmd.v
    (Cmd.info "competitive"
       ~doc:"Empirical competitive-ratio harness: replay seeded churn/crash \
             traces comparing the online sticky policy (greedy joins, O(1) \
             standby promotion, budget-bounded repair) against an offline \
             Greedy re-solve at every lower-bound refresh, and judge the \
             worst observed ratio against the documented bound. Exits 1 on \
             violation.")
    Term.(ret (const run $ seed_arg $ nodes_arg $ servers_arg $ capacity_arg
               $ horizon_arg $ fault_arg $ traces_arg $ bound_arg $ csv_arg
               $ no_standby_arg))

(* dia vivaldi *)

let vivaldi_cmd =
  let in_arg =
    Arg.(required & opt (some string) None
         & info [ "in" ] ~docv:"FILE" ~doc:"Input latency data (dense or triple format).")
  in
  let out_arg =
    Arg.(value & opt (some string) None
         & info [ "out" ] ~docv:"FILE"
             ~doc:"Write the completed matrix here (missing entries filled with coordinate predictions instead of discarding nodes).")
  in
  let rounds_arg =
    Arg.(value & opt int 60 & info [ "rounds" ] ~docv:"N" ~doc:"Embedding iterations.")
  in
  let run input output rounds seed =
    let raw =
      try Dia_latency.Loader.parse_matrix input
      with Failure _ -> Dia_latency.Loader.parse_triples input
    in
    let embedding = Dia_latency.Vivaldi.embed_raw ~seed ~rounds raw in
    let survivors, discarded_matrix = Dia_latency.Loader.complete_subset raw in
    Printf.printf "embedded %d nodes with Vivaldi (%d rounds)\n"
      (Dia_latency.Vivaldi.nodes embedding) rounds;
    Printf.printf
      "discarding-based cleanup would keep %d/%d nodes; completion keeps all\n"
      (Array.length survivors) raw.Dia_latency.Loader.nodes;
    let err =
      Dia_latency.Vivaldi.median_relative_error embedding discarded_matrix
    in
    Printf.printf "median relative prediction error on measured pairs: %.1f%%\n"
      (100. *. err);
    match output with
    | None -> ()
    | Some path ->
        let completed = Dia_latency.Vivaldi.complete ~seed ~rounds raw in
        Dia_latency.Loader.save_matrix path completed;
        Printf.printf "wrote completed %d-node matrix to %s\n"
          (Dia_latency.Matrix.dim completed) path
  in
  Cmd.v
    (Cmd.info "vivaldi"
       ~doc:"Embed a latency data set in Vivaldi coordinates; optionally complete missing entries.")
    Term.(const run $ in_arg $ out_arg $ rounds_arg $ seed_arg)

(* dia topology *)

let topology_cmd =
  let out_arg =
    Arg.(required & opt (some string) None
         & info [ "out" ] ~docv:"FILE" ~doc:"Output matrix file.")
  in
  let run out seed =
    let matrix = Dia_latency.Topology.latency_matrix ~seed () in
    Dia_latency.Loader.save_matrix out matrix;
    Printf.printf
      "wrote %d-node transit-stub matrix to %s (routed shortest paths; mean %.1f ms, max %.1f ms)\n"
      (Dia_latency.Matrix.dim matrix) out
      (Dia_latency.Matrix.mean_entry matrix)
      (Dia_latency.Matrix.max_entry matrix)
  in
  Cmd.v
    (Cmd.info "topology"
       ~doc:"Generate a transit-stub topology and its routed latency matrix.")
    Term.(const run $ out_arg $ seed_arg)

(* dia npc *)

let npc_cmd =
  let run () =
    let sc =
      Dia_setcover.Setcover.make ~universe:4 ~subsets:[| [ 0 ]; [ 1 ]; [ 2; 3 ] |]
    in
    print_endline "Set cover instance (the paper's Fig. 3):";
    print_endline "  P = {p1, p2, p3, p4}, Q1 = {p1}, Q2 = {p2}, Q3 = {p3, p4}";
    let optimal = Dia_setcover.Setcover.optimal sc in
    Printf.printf "  minimum cover size: %d\n" (List.length optimal);
    List.iter
      (fun k ->
        let r = Dia_setcover.Reduction.build sc ~k in
        let p = Dia_setcover.Reduction.problem r in
        let d = Dia_core.Brute_force.optimal_value p in
        Printf.printf
          "  K = %d: reduction instance has %d clients, %d servers; optimal D = %.0f (%s 3) => cover of size <= %d %s\n"
          k (Problem.num_clients p) (Problem.num_servers p) d
          (if d <= 3. then "<=" else ">")
          k
          (if d <= 3. then "EXISTS" else "does NOT exist"))
      [ 1; 2; 3 ];
    print_endline "  (equivalence verified in both directions; see test/test_reduction.ml)"
  in
  Cmd.v
    (Cmd.info "npc" ~doc:"Demonstrate the NP-completeness reduction on the paper's example.")
    Term.(const run $ const ())

(* dia oracle *)

let oracle_cmd =
  let count_arg =
    Arg.(value & opt int 2000
         & info [ "count" ] ~docv:"N"
             ~doc:"Number of generated instances to check.")
  in
  let run seed count jobs =
    let report = Dia_oracle.Oracle.run ~jobs:(resolve_jobs jobs) ~count ~seed () in
    print_string (Dia_oracle.Oracle.render report);
    if not (Dia_oracle.Oracle.ok report) then exit 1
  in
  Cmd.v
    (Cmd.info "oracle"
       ~doc:"Run the conformance harness: differential and metamorphic checks \
             of every assignment algorithm and the simulation stack on \
             seed-generated instances. Instance $(i,N) is a pure function of \
             its absolute seed, so any reported failure replays exactly with \
             $(b,--seed N --count 1), at any $(b,--jobs).")
    Term.(const run $ seed_arg $ count_arg $ jobs_arg)

let main_cmd =
  let doc = "Client assignment for continuous distributed interactive applications" in
  let info = Cmd.info "dia" ~version:"1.0.0" ~doc in
  Cmd.group info
    [ experiment_cmd; assign_cmd; dataset_cmd; simulate_cmd; soak_cmd;
      competitive_cmd; vivaldi_cmd; topology_cmd; npc_cmd; oracle_cmd ]

let () = exit (Cmd.eval main_cmd)
