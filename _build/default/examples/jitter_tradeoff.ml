(* The jitter trade-off of Section II-E.

   Real networks jitter. If the operator plans the execution lag delta
   from median latencies, every latency spike breaks consistency or
   fairness; if it plans from worst-case latencies, interactivity
   suffers. The paper suggests planning from a high percentile of the
   latency distribution.

   This example plans the same assignment's clock at several percentiles,
   replays a jittered workload through the protocol simulator at each,
   and tabulates the empirically measured breach rate against the
   interaction time paid — alongside the closed-form prediction from the
   lognormal jitter model.

   Run with: dune exec examples/jitter_tradeoff.exe *)

module Jitter = Dia_latency.Jitter
module Placement = Dia_placement.Placement
module Problem = Dia_core.Problem
module Algorithm = Dia_core.Algorithm
module Objective = Dia_core.Objective
module Clock = Dia_core.Clock
module Workload = Dia_sim.Workload
module Protocol = Dia_sim.Protocol
module Checker = Dia_sim.Checker

let sigma = 0.25

let () =
  let matrix = Dia_latency.Synthetic.internet_like ~seed:11 120 in
  let servers = Placement.place Placement.K_center_b matrix ~k:8 in
  let median_world = Problem.all_nodes_clients matrix ~servers in
  let a = Algorithm.run Algorithm.Distributed_greedy median_world in
  let model = Jitter.make ~sigma ~seed:3 matrix in

  (* One shared jittered network for all plans: lognormal around the
     median, the same distribution the planner models. *)
  let rng = Random.State.make [| 31 |] in
  let gaussian () =
    let u = 1. -. Random.State.float rng 1. in
    let v = Random.State.float rng 1. in
    sqrt (-2. *. log u) *. cos (2. *. Float.pi *. v)
  in
  let network_jitter ~src:_ ~dst:_ ~base = base *. exp (sigma *. gaussian ()) in

  let workload = Workload.rounds ~clients:120 ~rounds:8 ~period:400. in
  Printf.printf
    "8 servers, 120 clients, lognormal jitter sigma = %.2f; %d operations per plan\n\n"
    sigma (Workload.count workload);

  let table =
    Dia_stats.Table.make
      ~columns:
        [ "planned percentile"; "delta (ms)"; "interaction overhead";
          "measured breach rate"; "consistent"; "fair" ]
  in
  let median_delta = ref nan in
  List.iter
    (fun percentile ->
      let planning_matrix =
        if percentile = 50. then matrix else Jitter.percentile_matrix model percentile
      in
      let planning_world = Problem.all_nodes_clients planning_matrix ~servers in
      let clock = Clock.synthesize planning_world a in
      if percentile = 50. then median_delta := clock.Clock.delta;
      let report = Protocol.run ~jitter:network_jitter median_world a clock workload in
      let verdict = Checker.analyze report in
      Dia_stats.Table.add_row table
        [
          Printf.sprintf "p%.1f" percentile;
          Printf.sprintf "%.0f" clock.Clock.delta;
          Printf.sprintf "+%.0f%%" (100. *. ((clock.Clock.delta /. !median_delta) -. 1.));
          Printf.sprintf "%.2f%%" (100. *. Checker.breach_rate report);
          string_of_bool verdict.Checker.consistent;
          string_of_bool verdict.Checker.fair;
        ])
    [ 50.; 75.; 90.; 95.; 99.; 99.9 ];
  Dia_stats.Table.print table;
  Printf.printf
    "\nreading: planning at higher percentiles buys consistency/fairness with\n\
     interaction time — exactly the trade-off of Section II-E. The paper's\n\
     suggested ~90th percentile already removes most breaches here.\n";

  (* Show the closed-form prediction for one path as a sanity check. *)
  let d = Objective.max_interaction_path median_world a in
  Printf.printf
    "\nclosed-form check: a median-planned path of %.0f ms breaches its own\n\
     budget with probability %.2f (predicted), matching the measured p50 row order.\n"
    d
    (Jitter.breach_probability model ~delta:d ~d)
