(* Executable proof of the Section II-C analysis.

   The paper proves three things about a given assignment A:
     (1) no execution lag delta below D(A) is feasible,
     (2) delta = D(A) IS feasible with explicit clock offsets, and
     (3) under those offsets every client pair's interaction time is
         exactly delta.

   This example demonstrates all three on a concrete instance by running
   the message-level simulator rather than by algebra: it sweeps delta
   around D(A) and shows breaches vanishing exactly at D(A), then
   inspects the per-pair interaction times.

   Run with: dune exec examples/protocol_sim.exe *)

module Placement = Dia_placement.Placement
module Problem = Dia_core.Problem
module Algorithm = Dia_core.Algorithm
module Objective = Dia_core.Objective
module Clock = Dia_core.Clock
module Workload = Dia_sim.Workload
module Protocol = Dia_sim.Protocol
module Checker = Dia_sim.Checker

let () =
  let matrix = Dia_latency.Synthetic.internet_like ~seed:5 80 in
  let servers = Placement.place Placement.K_center_b matrix ~k:6 in
  let p = Problem.all_nodes_clients matrix ~servers in
  let a = Algorithm.run Algorithm.Greedy p in
  let d = Objective.max_interaction_path p a in
  let clock = Clock.synthesize p a in
  Printf.printf "instance: 80 clients, 6 servers; D(A) = %.2f ms\n\n" d;

  let workload = Workload.rounds ~clients:80 ~rounds:3 ~period:300. in
  Printf.printf "sweeping the execution lag delta around D(A):\n";
  let table =
    Dia_stats.Table.make
      ~columns:
        [ "delta / D(A)"; "late events"; "consistent"; "fair";
          "max interaction time (ms)" ]
  in
  List.iter
    (fun scale ->
      let scaled = { clock with Clock.delta = d *. scale } in
      let report = Protocol.run p a scaled workload in
      let verdict = Checker.analyze report in
      Dia_stats.Table.add_row table
        [
          Printf.sprintf "%.2f" scale;
          string_of_int
            (verdict.Checker.late_executions + verdict.Checker.late_visibilities);
          string_of_bool verdict.Checker.consistent;
          string_of_bool verdict.Checker.fair;
          Printf.sprintf "%.2f" verdict.Checker.max_interaction_time;
        ])
    [ 0.50; 0.80; 0.95; 0.99; 1.00; 1.10 ];
  Dia_stats.Table.print table;
  print_endline
    "\n(1) every delta below D(A) produces late events and breaks consistency\n\
     or fairness; (2) delta = D(A) runs clean — the offsets make the minimum\n\
     achievable; (3) at delta = D(A) the interaction time is uniform:";

  let report = Protocol.run p a clock workload in
  let times = List.map (fun (_, _, t) -> t) (Protocol.interaction_times report) in
  let summary = Dia_stats.Summary.of_list times in
  Format.printf "    per-pair interaction times: %a@." Dia_stats.Summary.pp summary;
  Printf.printf
    "    every one of the %d (operation, observer) samples equals D(A) = %.2f ms\n"
    summary.Dia_stats.Summary.count d
