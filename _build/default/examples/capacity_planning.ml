(* Capacity planning for a DIA operator (Section IV-E).

   Servers have finite capacity. The operator wants to know: given k
   server sites, how much per-site capacity is needed before capacity
   stops hurting interactivity? And which algorithm degrades gracefully
   when capacity is tight?

   This example sweeps the per-server capacity from "barely feasible" to
   "effectively unlimited" and reports the interactivity of each
   capacitated algorithm, reproducing the qualitative content of the
   paper's Fig. 10 on a small world.

   Run with: dune exec examples/capacity_planning.exe *)

module Placement = Dia_placement.Placement
module Problem = Dia_core.Problem
module Algorithm = Dia_core.Algorithm
module Assignment = Dia_core.Assignment
module Objective = Dia_core.Objective
module Lower_bound = Dia_core.Lower_bound

let () =
  let n = 240 and k = 12 in
  let matrix = Dia_latency.Synthetic.internet_like ~seed:7 n in
  let servers = Placement.place Placement.K_center_a matrix ~k in
  let uncapacitated = Problem.all_nodes_clients matrix ~servers in
  let lb = Lower_bound.compute uncapacitated in
  Printf.printf
    "%d clients, %d server sites; minimum feasible capacity %d clients/site\n\n" n k
    ((n + k - 1) / k);

  let capacities = [ 20; 24; 30; 40; 60; 120; 240 ] in
  let table =
    Dia_stats.Table.make
      ~columns:
        ("capacity"
        :: List.map Algorithm.name Algorithm.heuristics
        @ [ "greedy max load" ])
  in
  List.iter
    (fun capacity ->
      let p = Problem.with_capacity uncapacitated (Some capacity) in
      let cells =
        List.map
          (fun algorithm ->
            let a = Algorithm.run algorithm p in
            assert (Assignment.respects_capacity p a);
            Printf.sprintf "%.3f" (Objective.max_interaction_path p a /. lb))
          Algorithm.heuristics
      in
      let greedy_load =
        let a = Algorithm.run Algorithm.Greedy p in
        Array.fold_left max 0 (Assignment.loads p a)
      in
      Dia_stats.Table.add_row table
        ((string_of_int capacity :: cells) @ [ string_of_int greedy_load ]))
    capacities;
  Dia_stats.Table.print table;

  (* Find the cheapest capacity at which Distributed-Greedy is within 5%
     of its uncapacitated quality — the operator's provisioning answer. *)
  let uncap_quality =
    Objective.max_interaction_path uncapacitated
      (Algorithm.run Algorithm.Distributed_greedy uncapacitated)
  in
  let sufficient =
    List.find_opt
      (fun capacity ->
        let p = Problem.with_capacity uncapacitated (Some capacity) in
        let d =
          Objective.max_interaction_path p
            (Algorithm.run Algorithm.Distributed_greedy p)
        in
        d <= 1.05 *. uncap_quality)
      capacities
  in
  match sufficient with
  | Some capacity ->
      Printf.printf
        "\nprovisioning answer: %d clients/site (%.0f%% of an even spread) already\n\
         gets Distributed-Greedy within 5%% of unlimited-capacity interactivity\n"
        capacity
        (100. *. float_of_int capacity /. (float_of_int n /. float_of_int k))
  | None -> print_endline "\nno tested capacity reaches the 5% target"
