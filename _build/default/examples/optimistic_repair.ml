(* Pessimistic delay vs optimistic repair (Section II-E).

   The paper's main line: pick delta = D(A) and nothing ever goes wrong.
   Its Section II-E sketches the alternative the games industry often
   prefers: run with a smaller delta — better interactivity — execute
   optimistically, and repair the state when stragglers arrive (TimeWarp
   rollbacks, or Trailing State Synchronization), accepting visible
   artifacts ("an opponent that has been beaten in a fight stands up
   again and continues to fight").

   This example sweeps delta from 0.3 x D(A) to D(A) and, at each point,
   replays every server's real arrival sequence through both repair
   mechanisms, tabulating interactivity gained against artifacts paid.
   All replicas must converge to the canonical state in every row — that
   is the repair mechanisms' contract, and it is checked.

   Run with: dune exec examples/optimistic_repair.exe *)

module Placement = Dia_placement.Placement
module Problem = Dia_core.Problem
module Algorithm = Dia_core.Algorithm
module Clock = Dia_core.Clock
module Workload = Dia_sim.Workload
module Protocol = Dia_sim.Protocol
module Repair = Dia_sim.Repair

let () =
  let matrix = Dia_latency.Synthetic.internet_like ~seed:13 100 in
  (* Lognormal network jitter. Without it, two operations of the same
     player travel the same path FIFO and can never overtake each other —
     cross-player misorderings commute on this state machine, so repairs
     would look free. Jitter is what makes stragglers semantically
     dangerous. *)
  let jitter_rng = Random.State.make [| 4 |] in
  let gaussian () =
    let u = 1. -. Random.State.float jitter_rng 1. in
    let v = Random.State.float jitter_rng 1. in
    sqrt (-2. *. log u) *. cos (2. *. Float.pi *. v)
  in
  let jitter ~src:_ ~dst:_ ~base = base *. exp (0.3 *. gaussian ()) in
  let servers = Placement.place Placement.K_center_b matrix ~k:6 in
  let p = Problem.all_nodes_clients matrix ~servers in
  let a = Algorithm.run Algorithm.Distributed_greedy p in
  let clock = Clock.synthesize p a in
  let d = clock.Clock.delta in
  (* Eight hyperactive players trading actions every few milliseconds:
     stragglers then interleave with the SAME player's later actions,
     which is when ordering errors become semantically visible. *)
  let workload =
    Workload.of_list (List.init 400 (fun i -> (i mod 8, float_of_int i *. 3.7)))
  in
  Printf.printf
    "100 clients (8 active), 6 servers, D(A) = %.0f ms, %d operations\n\n" d
    (Workload.count workload);
  let table =
    Dia_stats.Table.make
      ~columns:
        [ "delta / D(A)"; "interaction time"; "late arrivals";
          "timewarp rollbacks"; "max rollback depth"; "tss divergences (lag=D)";
          "all replicas converge" ]
  in
  List.iter
    (fun scale ->
      let scaled = { clock with Clock.delta = d *. scale } in
      let report = Protocol.run ~jitter p a scaled workload in
      let late =
        List.length
          (List.filter (fun (e : Protocol.execution) -> e.late)
             report.Protocol.executions)
      in
      let warp = Repair.timewarp report in
      let tss = Repair.tss ~lag:d report in
      let max_depth =
        List.fold_left
          (fun acc (o : Repair.timewarp_outcome) -> max acc o.Repair.max_depth)
          0 warp
      in
      let tss_div =
        List.fold_left
          (fun acc (o : Repair.tss_outcome) -> acc + o.Repair.divergences)
          0 tss
      in
      Dia_stats.Table.add_row table
        [
          Printf.sprintf "%.2f" scale;
          Printf.sprintf "%.0f ms" scaled.Clock.delta;
          string_of_int late;
          string_of_int (Repair.total_rollbacks warp);
          string_of_int max_depth;
          string_of_int tss_div;
          string_of_bool
            (Repair.all_converged_timewarp warp && Repair.all_converged_tss tss);
        ])
    [ 0.30; 0.50; 0.70; 0.85; 0.95; 1.00 ];
  Dia_stats.Table.print table;
  print_endline
    "\nreading: shrinking delta buys interaction time but the artifact count\n\
     (rollbacks / divergences) climbs as more operations miss their deadline —\n\
     and every row still converges, which is precisely the repair mechanisms'\n\
     job — until it is not: below 0.85 x D the lag-D trailing copy starts\n\
     dropping extreme stragglers and convergence is lost, the signal to size\n\
     the lag up. Even delta = D(A) pays a little here because the network\n\
     jitters around the latencies the clock was planned for (Section II-E's\n\
     point: plan on a high percentile, or repair)."
