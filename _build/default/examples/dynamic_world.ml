(* A day of churn in a live DIA (the dynamic counterpart of the paper).

   Section VI observes that, unlike server placement, client assignment
   "can be adjusted promptly to adapt to system dynamics". This example
   replays a reproducible join/leave trace under two operating policies —
   greedy joins only, and greedy joins with periodic Distributed-Greedy
   repair — and compares both against a from-scratch offline solve of the
   final population.

   Run with: dune exec examples/dynamic_world.exe *)

module Placement = Dia_placement.Placement
module Dynamic = Dia_core.Dynamic
module Problem = Dia_core.Problem
module Objective = Dia_core.Objective
module Lower_bound = Dia_core.Lower_bound

type event = Join of int | Leave_of_join of int
(** [Join node] / [Leave_of_join i]: the client created by the i-th event
    (which is a join) departs. *)

let churn_trace ~seed ~nodes ~events =
  let rng = Random.State.make [| seed |] in
  let online = ref [] in
  let trace = ref [] in
  for step = 0 to events - 1 do
    let population = List.length !online in
    let join_bias = if population < nodes / 2 then 0.7 else 0.3 in
    if population = 0 || Random.State.float rng 1. < join_bias then begin
      online := step :: !online;
      trace := Join (Random.State.int rng nodes) :: !trace
    end
    else begin
      let victim = List.nth !online (Random.State.int rng population) in
      online := List.filter (fun j -> j <> victim) !online;
      trace := Leave_of_join victim :: !trace
    end
  done;
  List.rev !trace

let () =
  let nodes = 120 and k = 8 and events = 600 in
  let matrix = Dia_latency.Synthetic.internet_like ~seed:77 nodes in
  let servers = Placement.place Placement.K_center_b matrix ~k in
  let trace = churn_trace ~seed:9 ~nodes ~events in
  Printf.printf "churn trace: %d events over %d nodes, %d servers\n\n" events nodes k;

  let replay ~repair_every =
    let session = Dynamic.create matrix ~servers in
    let id_of_join = Hashtbl.create 64 in
    let worst = ref 0. and total = ref 0. and samples = ref 0 in
    List.iteri
      (fun step event ->
        (match event with
        | Join node -> Hashtbl.replace id_of_join step (Dynamic.join session ~node)
        | Leave_of_join joined_at ->
            Dynamic.leave session (Hashtbl.find id_of_join joined_at));
        (match repair_every with
        | Some period when step mod period = period - 1 ->
            ignore (Dynamic.rebalance ~max_moves:10 session)
        | Some _ | None -> ());
        if Dynamic.num_clients session > 1 then begin
          let d = Dynamic.objective session in
          worst := Float.max !worst d;
          total := !total +. d;
          incr samples
        end)
      trace;
    (session, !worst, !total /. float_of_int !samples)
  in

  let report name (session, worst, mean) =
    let stats = Dynamic.stats session in
    Printf.printf
      "%-24s worst D = %6.0f ms   mean D = %6.0f ms   (joins %d, leaves %d, repair moves %d)\n"
      name worst mean stats.Dynamic.joins stats.Dynamic.leaves stats.Dynamic.moves;
    (session, mean)
  in
  let _, mean_join_only = report "greedy joins only" (replay ~repair_every:None) in
  let session, mean_repaired =
    report "greedy + periodic repair" (replay ~repair_every:(Some 50))
  in
  Printf.printf
    "\nperiodic repair keeps the mean objective %.0f%% below join-only drift\n"
    (100. *. (1. -. (mean_repaired /. mean_join_only)));

  (* Endgame: how close is the online session to an offline re-solve of
     exactly the final population? *)
  if Dynamic.num_clients session > 1 then begin
    ignore (Dynamic.rebalance session);
    let p, _ = Dynamic.snapshot session in
    let offline =
      Objective.max_interaction_path p
        (Dia_core.Algorithm.run Dia_core.Algorithm.Distributed_greedy p)
    in
    let lb = Lower_bound.compute p in
    Printf.printf
      "final population %d: online D = %.0f ms vs offline re-solve %.0f ms (lower bound %.0f ms)\n"
      (Problem.num_clients p) (Dynamic.objective session) offline lb
  end
