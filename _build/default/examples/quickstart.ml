(* Quickstart: the whole public API in ~40 effective lines.

   Generate an Internet-like latency matrix, place servers, run the four
   assignment algorithms, compare against the lower bound, and set up the
   clock offsets that achieve the minimum interaction time.

   Run with: dune exec examples/quickstart.exe *)

module Matrix = Dia_latency.Matrix
module Placement = Dia_placement.Placement
module Problem = Dia_core.Problem
module Algorithm = Dia_core.Algorithm
module Objective = Dia_core.Objective
module Lower_bound = Dia_core.Lower_bound
module Clock = Dia_core.Clock

let () =
  (* 1. A 200-node Internet-like latency matrix (milliseconds). *)
  let matrix = Dia_latency.Synthetic.internet_like ~seed:42 200 in
  Printf.printf "network: %d nodes, latencies %.1f-%.1f ms (mean %.1f)\n"
    (Matrix.dim matrix) (Matrix.min_entry matrix) (Matrix.max_entry matrix)
    (Matrix.mean_entry matrix);

  (* 2. Place 12 servers with the greedy K-center heuristic. *)
  let servers = Placement.place Placement.K_center_b matrix ~k:12 in
  Printf.printf "servers placed at nodes: %s\n"
    (String.concat ", " (Array.to_list (Array.map string_of_int servers)));

  (* 3. A client at every node (the paper's setup). *)
  let p = Problem.all_nodes_clients matrix ~servers in

  (* 4. Run all four heuristics and compare with the lower bound. *)
  let lb = Lower_bound.compute p in
  Printf.printf "\nsuper-optimal lower bound on interaction time: %.1f ms\n\n" lb;
  List.iter
    (fun algorithm ->
      let a = Algorithm.run algorithm p in
      let d = Objective.max_interaction_path p a in
      Printf.printf "%-20s D = %6.1f ms   normalized = %.3f\n"
        (Algorithm.name algorithm) d (d /. lb))
    Algorithm.heuristics;

  (* 5. Synthesise the simulation-time offsets that achieve D exactly. *)
  let a = Algorithm.run Algorithm.Distributed_greedy p in
  let clock = Clock.synthesize p a in
  Printf.printf
    "\nwith Distributed-Greedy, every client pair interacts in exactly %.1f ms\n"
    (Clock.interaction_time clock);
  Printf.printf "clock offsets are feasible: %b\n" (Clock.feasible p a clock)
