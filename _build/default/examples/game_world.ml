(* A multi-player online game world — the paper's motivating scenario.

   A game operator runs mirrored world servers across three continents.
   Players connect from clustered home networks. The operator wants every
   pair of players to see each other's actions quickly AND fairly: an
   action taken earlier must take effect earlier, everywhere.

   This example:
     1. builds the geography,
     2. compares Nearest-Server matchmaking (what most games do) with the
        paper's Greedy/Distributed-Greedy assignments,
     3. plays 10 game ticks through the message-level protocol simulator
        under both assignments and verifies consistency and fairness,
     4. reports what each player actually experiences.

   Run with: dune exec examples/game_world.exe *)

module Matrix = Dia_latency.Matrix
module Placement = Dia_placement.Placement
module Problem = Dia_core.Problem
module Algorithm = Dia_core.Algorithm
module Objective = Dia_core.Objective
module Lower_bound = Dia_core.Lower_bound
module Clock = Dia_core.Clock
module Workload = Dia_sim.Workload
module Protocol = Dia_sim.Protocol
module Checker = Dia_sim.Checker

let () =
  (* A 150-player world with pronounced continental clustering. *)
  let params =
    { Dia_latency.Synthetic.default_params with
      continents = 3;
      cities_per_continent = 4;
      access_mean = 10. }
  in
  let matrix = Dia_latency.Synthetic.internet_like ~params ~seed:2024 150 in

  (* 9 world servers, placed by the operator with the K-center heuristic
     (three per continent, roughly). *)
  let servers = Placement.place Placement.K_center_b matrix ~k:9 in
  let world = Problem.all_nodes_clients matrix ~servers in
  let lb = Lower_bound.compute world in

  Printf.printf "world: %d players, %d mirrored servers, lower bound %.0f ms\n\n"
    (Problem.num_clients world) (Problem.num_servers world) lb;

  let play name algorithm =
    let a = Algorithm.run algorithm world in
    let d = Objective.max_interaction_path world a in
    let clock = Clock.synthesize world a in
    (* Ten 100 ms game ticks: every player acts every tick. *)
    let workload =
      Workload.rounds ~clients:(Problem.num_clients world) ~rounds:10 ~period:100.
    in
    let report = Protocol.run world a clock workload in
    let verdict = Checker.analyze report in
    Printf.printf "%s assignment:\n" name;
    Printf.printf "  interaction time (all player pairs): %.0f ms (%.2fx the bound)\n"
      d (d /. lb);
    Printf.printf "  simulated %d actions -> consistent: %b, fair: %b, breaches: %d\n"
      (List.length report.Protocol.operations)
      verdict.Checker.consistent verdict.Checker.fair
      (verdict.Checker.late_executions + verdict.Checker.late_visibilities);
    Printf.printf "  protocol traffic: %d messages over %.1f s of play\n\n"
      report.Protocol.messages (report.Protocol.wall_duration /. 1000.);
    d
  in
  let d_nearest = play "Nearest-Server (typical matchmaking)" Algorithm.Nearest_server in
  let d_greedy = play "Greedy" Algorithm.Greedy in
  let d_dgreedy = play "Distributed-Greedy" Algorithm.Distributed_greedy in

  Printf.printf
    "takeaway: assignment-aware matchmaking cuts worst-pair interaction time by %.0f%%\n"
    (100. *. (1. -. (Float.min d_greedy d_dgreedy /. d_nearest)));
  Printf.printf
    "(every player still sees every action in the SAME interaction time —\n\
    \ fairness holds by construction, it is only the magnitude that shrinks)\n"
