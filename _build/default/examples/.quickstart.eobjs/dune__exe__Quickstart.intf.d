examples/quickstart.mli:
