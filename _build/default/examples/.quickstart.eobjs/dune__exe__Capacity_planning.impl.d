examples/capacity_planning.ml: Array Dia_core Dia_latency Dia_placement Dia_stats List Printf
