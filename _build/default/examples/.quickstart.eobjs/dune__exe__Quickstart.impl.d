examples/quickstart.ml: Array Dia_core Dia_latency Dia_placement List Printf String
