examples/protocol_sim.ml: Dia_core Dia_latency Dia_placement Dia_sim Dia_stats Format List Printf
