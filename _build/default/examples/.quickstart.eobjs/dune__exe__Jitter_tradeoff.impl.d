examples/jitter_tradeoff.ml: Dia_core Dia_latency Dia_placement Dia_sim Dia_stats Float List Printf Random
