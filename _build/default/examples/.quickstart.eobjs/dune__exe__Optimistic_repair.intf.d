examples/optimistic_repair.mli:
