examples/protocol_sim.mli:
