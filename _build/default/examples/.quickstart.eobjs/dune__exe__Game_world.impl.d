examples/game_world.ml: Dia_core Dia_latency Dia_placement Dia_sim Float List Printf
