examples/jitter_tradeoff.mli:
