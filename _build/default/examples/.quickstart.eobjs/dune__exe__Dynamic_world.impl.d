examples/dynamic_world.ml: Dia_core Dia_latency Dia_placement Float Hashtbl List Printf Random
