(* Tests for Dia_experiments: config, runner, and the four figure
   harnesses on a tiny profile. *)

module Config = Dia_experiments.Config
module Runner = Dia_experiments.Runner
module Fig7 = Dia_experiments.Fig7
module Fig8 = Dia_experiments.Fig8
module Fig9 = Dia_experiments.Fig9
module Fig10 = Dia_experiments.Fig10
module Algorithm = Dia_core.Algorithm
module Placement = Dia_placement.Placement

let tiny =
  {
    Config.label = "tiny";
    nodes = Some 80;
    runs = 4;
    server_counts = [ 5; 10 ];
    fixed_servers = 8;
    paper_capacities = [ 25; 250 ];
  }

let test_profile_names () =
  List.iter
    (fun name ->
      match Config.profile_of_string name with
      | Some p -> Alcotest.(check string) "label" name p.Config.label
      | None -> Alcotest.fail ("missing profile " ^ name))
    [ "quick"; "default"; "full" ];
  Alcotest.(check bool) "unknown" true (Config.profile_of_string "huge" = None)

let test_dataset_names () =
  Alcotest.(check bool) "meridian" true
    (Config.dataset_of_string "meridian" = Some Config.Meridian_like);
  Alcotest.(check bool) "mit" true (Config.dataset_of_string "mit" = Some Config.Mit_like);
  Alcotest.(check bool) "unknown" true (Config.dataset_of_string "x" = None)

let test_load_dataset_subsamples () =
  let m = Config.load_dataset Config.Mit_like tiny in
  Alcotest.(check int) "subsampled" 80 (Dia_latency.Matrix.dim m);
  let m' = Config.load_dataset Config.Mit_like tiny in
  Alcotest.(check bool) "deterministic" true (Dia_latency.Matrix.equal m m')

let test_full_profile_keeps_all_nodes () =
  (* The full profile must not subsample (paper scale). *)
  Alcotest.(check bool) "no subsampling" true (Config.full.Config.nodes = None);
  Alcotest.(check int) "1000 runs" 1000 Config.full.Config.runs;
  Alcotest.(check (list int)) "paper capacities" [ 25; 50; 100; 150; 200; 250 ]
    Config.full.Config.paper_capacities

let test_scaled_capacity () =
  (* At paper size the capacity passes through; at half size it halves. *)
  Alcotest.(check int) "paper size" 100 (Config.scaled_capacity ~clients:1796 100);
  Alcotest.(check int) "half size" 50 (Config.scaled_capacity ~clients:898 100);
  Alcotest.(check int) "floor of 1" 1 (Config.scaled_capacity ~clients:10 25)

let matrix = Config.load_dataset Config.Meridian_like tiny

let test_runner_evaluate () =
  let servers = Placement.random ~seed:0 ~k:8 ~n:80 in
  let evaluation = Runner.evaluate matrix ~servers in
  Alcotest.(check int) "four algorithms" 4 (List.length evaluation.Runner.results);
  Alcotest.(check bool) "lower bound positive" true (evaluation.Runner.lower_bound > 0.);
  List.iter
    (fun (_, norm) ->
      Alcotest.(check bool) "normalized >= 1" true (norm >= 1. -. 1e-9))
    (Runner.normalized evaluation)

let test_runner_average () =
  let summaries = Runner.average_normalized matrix ~runs:3 ~k:8 in
  List.iter
    (fun (_, summary) ->
      Alcotest.(check int) "3 samples" 3 summary.Dia_stats.Summary.count;
      Alcotest.(check bool) "mean >= 1" true (summary.Dia_stats.Summary.mean >= 1.))
    summaries

let test_fig7_structure () =
  let result = Fig7.run ~profile:tiny () in
  Alcotest.(check int) "three panels" 3 (List.length result.Fig7.panels);
  List.iter
    (fun panel ->
      Alcotest.(check int) "points = counts x algorithms" (2 * 4)
        (List.length panel.Fig7.points);
      List.iter
        (fun point ->
          Alcotest.(check bool) "normalized >= 1" true (point.Fig7.normalized >= 1.))
        panel.Fig7.points)
    result.Fig7.panels;
  Alcotest.(check bool) "render non-empty" true
    (String.length (Fig7.render result) > 100)

let test_fig7_greedy_beats_nearest_on_average () =
  let result = Fig7.run ~profile:tiny () in
  List.iter
    (fun panel ->
      let mean algorithm =
        let values =
          List.filter_map
            (fun point ->
              if point.Fig7.algorithm = algorithm then Some point.Fig7.normalized
              else None)
            panel.Fig7.points
        in
        List.fold_left ( +. ) 0. values /. float_of_int (List.length values)
      in
      Alcotest.(check bool)
        (Placement.strategy_name panel.Fig7.strategy ^ ": greedy beats nearest")
        true
        (mean Algorithm.Greedy < mean Algorithm.Nearest_server))
    result.Fig7.panels

let test_fig8_structure () =
  let result = Fig8.run ~profile:tiny () in
  Alcotest.(check int) "four cdfs" 4 (List.length result.Fig8.cdfs);
  List.iter
    (fun (_, cdf) ->
      Alcotest.(check int) "one sample per run" tiny.Config.runs
        (Dia_stats.Cdf.count cdf))
    result.Fig8.cdfs;
  let below = Fig8.runs_below result 1000. in
  List.iter
    (fun (_, count) -> Alcotest.(check int) "all runs below huge x" tiny.Config.runs count)
    below;
  List.iter
    (fun (_, over2, over3) ->
      Alcotest.(check bool) "tail counts ordered" true (over3 <= over2))
    (Fig8.tail_heaviness result)

let test_fig9_structure () =
  let result = Fig9.run ~profile:tiny () in
  Alcotest.(check int) "three traces" 3 (List.length result.Fig9.traces);
  List.iter
    (fun trace ->
      let t = trace.Fig9.normalized in
      Alcotest.(check int) "trace length = modifications + 1"
        (trace.Fig9.modifications + 1)
        (Array.length t);
      for i = 1 to Array.length t - 1 do
        Alcotest.(check bool) "decreasing" true (t.(i) < t.(i - 1) +. 1e-12)
      done;
      Alcotest.(check (float 1e-9)) "full improvement at the end" 1.
        (Fig9.improvement_fraction trace ~after:(Array.length t)))
    result.Fig9.traces

let test_fig10_filters_infeasible_capacities () =
  (* With 80 clients and 8 servers, paper capacity 25 scales to 1 (8
     slots < 80 clients) and must be dropped; 250 scales to 11 and
     stays. *)
  let result = Fig10.run ~profile:tiny () in
  List.iter
    (fun panel ->
      let caps =
        List.sort_uniq compare
          (List.map (fun point -> point.Fig10.paper_capacity) panel.Fig10.points)
      in
      Alcotest.(check (list int)) "only feasible capacities" [ 250 ] caps;
      List.iter
        (fun point ->
          Alcotest.(check int) "effective capacity" 11 point.Fig10.effective_capacity;
          Alcotest.(check bool) "normalized >= 1" true (point.Fig10.normalized >= 1.))
        panel.Fig10.points)
    result.Fig10.panels

let test_fig9_sweep () =
  let points = Fig9.sweep ~profile:tiny () in
  Alcotest.(check int) "one point per server count" 2 (List.length points);
  List.iter
    (fun point ->
      Alcotest.(check bool) "moved fraction in [0,1]" true
        (point.Fig9.moved_fraction >= 0. && point.Fig9.moved_fraction <= 1.);
      Alcotest.(check bool) "improvement in [0,1]" true
        (point.Fig9.improvement_at_80 >= 0. && point.Fig9.improvement_at_80 <= 1. +. 1e-9))
    points;
  Alcotest.(check bool) "render works" true
    (String.length (Fig9.render_sweep points) > 50)

let test_csv_exports () =
  let fig7 = Fig7.csv (Fig7.run ~profile:tiny ()) in
  let lines = String.split_on_char '\n' (String.trim fig7) in
  Alcotest.(check int) "header + 3 panels x 2 counts x 4 algorithms" 25
    (List.length lines);
  Alcotest.(check string) "header" "placement,servers,algorithm,normalized,stddev"
    (List.hd lines);
  let fig9 = Fig9.csv (Fig9.run ~profile:tiny ()) in
  Alcotest.(check bool) "fig9 csv non-trivial" true (String.length fig9 > 40)

let test_renders_do_not_crash () =
  let fig8 = Fig8.render (Fig8.run ~profile:tiny ()) in
  let fig9 = Fig9.render (Fig9.run ~profile:tiny ()) in
  let fig10 = Fig10.render (Fig10.run ~profile:tiny ()) in
  Alcotest.(check bool) "non-empty" true
    (String.length fig8 > 50 && String.length fig9 > 50 && String.length fig10 > 50)

let suite =
  [
    Alcotest.test_case "profile names roundtrip" `Quick test_profile_names;
    Alcotest.test_case "dataset names roundtrip" `Quick test_dataset_names;
    Alcotest.test_case "load_dataset subsamples deterministically" `Quick
      test_load_dataset_subsamples;
    Alcotest.test_case "full profile is paper scale" `Quick test_full_profile_keeps_all_nodes;
    Alcotest.test_case "capacity scaling" `Quick test_scaled_capacity;
    Alcotest.test_case "runner evaluate" `Quick test_runner_evaluate;
    Alcotest.test_case "runner averages over runs" `Quick test_runner_average;
    Alcotest.test_case "fig7 structure" `Quick test_fig7_structure;
    Alcotest.test_case "fig7 greedy beats nearest" `Quick
      test_fig7_greedy_beats_nearest_on_average;
    Alcotest.test_case "fig8 structure" `Quick test_fig8_structure;
    Alcotest.test_case "fig9 structure" `Quick test_fig9_structure;
    Alcotest.test_case "fig10 filters infeasible capacities" `Quick
      test_fig10_filters_infeasible_capacities;
    Alcotest.test_case "renders do not crash" `Quick test_renders_do_not_crash;
    Alcotest.test_case "csv exports" `Quick test_csv_exports;
    Alcotest.test_case "fig9 convergence sweep" `Quick test_fig9_sweep;
  ]
