(* Tests for Dia_setcover.Setcover. *)

module Setcover = Dia_setcover.Setcover

let fig3_instance () =
  (* The paper's Fig. 3: P = {p1..p4}, Q1 = {p1}, Q2 = {p2}, Q3 = {p3, p4}. *)
  Setcover.make ~universe:4 ~subsets:[| [ 0 ]; [ 1 ]; [ 2; 3 ] |]

let test_make_validates () =
  let raises f = try ignore (f ()); false with Invalid_argument _ -> true in
  Alcotest.(check bool) "element out of range" true
    (raises (fun () -> Setcover.make ~universe:2 ~subsets:[| [ 0; 5 ] |]));
  Alcotest.(check bool) "empty subset" true
    (raises (fun () -> Setcover.make ~universe:1 ~subsets:[| [] |]));
  Alcotest.(check bool) "non-covering collection" true
    (raises (fun () -> Setcover.make ~universe:3 ~subsets:[| [ 0; 1 ] |]))

let test_accessors () =
  let t = fig3_instance () in
  Alcotest.(check int) "universe" 4 (Setcover.universe t);
  Alcotest.(check int) "subsets" 3 (Setcover.num_subsets t);
  Alcotest.(check (list int)) "subset contents" [ 2; 3 ] (Setcover.subset t 2)

let test_is_cover () =
  let t = fig3_instance () in
  Alcotest.(check bool) "full collection covers" true (Setcover.is_cover t [ 0; 1; 2 ]);
  Alcotest.(check bool) "partial does not" false (Setcover.is_cover t [ 0; 2 ])

let test_greedy_on_fig3 () =
  let t = fig3_instance () in
  let cover = Setcover.greedy t in
  Alcotest.(check bool) "is a cover" true (Setcover.is_cover t cover);
  Alcotest.(check int) "size 3 (forced)" 3 (List.length cover);
  Alcotest.(check int) "largest subset first" 2 (List.hd cover)

let test_optimal_beats_greedy_on_adversarial_instance () =
  (* Classic adversarial family: greedy picks the big staircase subset,
     optimal covers with the two halves. *)
  let t =
    Setcover.make ~universe:6
      ~subsets:[| [ 0; 1; 2 ]; [ 3; 4; 5 ]; [ 0; 3 ]; [ 1; 4 ]; [ 2; 5; 0; 3 ] |]
  in
  let optimal = Setcover.optimal t in
  Alcotest.(check bool) "optimal is a cover" true (Setcover.is_cover t optimal);
  Alcotest.(check int) "optimal size 2" 2 (List.length optimal)

let test_optimal_never_worse_than_greedy () =
  (* Pseudo-random instances. *)
  let rng = Random.State.make [| 17 |] in
  for _ = 1 to 20 do
    let universe = 2 + Random.State.int rng 7 in
    let num_subsets = 2 + Random.State.int rng 5 in
    let subsets =
      Array.init num_subsets (fun _ ->
          List.filter (fun _ -> Random.State.bool rng) (List.init universe Fun.id))
    in
    (* Force coverage and non-emptiness by adding the full set. *)
    let subsets = Array.append subsets [| List.init universe Fun.id |] in
    let subsets = Array.map (function [] -> [ 0 ] | s -> s) subsets in
    let t = Setcover.make ~universe ~subsets in
    let greedy = Setcover.greedy t in
    let optimal = Setcover.optimal t in
    Alcotest.(check bool) "both cover" true
      (Setcover.is_cover t greedy && Setcover.is_cover t optimal);
    Alcotest.(check bool) "optimal <= greedy" true
      (List.length optimal <= List.length greedy)
  done

let test_covers_of_size () =
  let t = fig3_instance () in
  Alcotest.(check bool) "size 3 exists" true (Setcover.covers_of_size t 3);
  Alcotest.(check bool) "size 2 impossible" false (Setcover.covers_of_size t 2)

let test_node_limit () =
  let t =
    Setcover.make ~universe:12
      ~subsets:(Array.init 12 (fun i -> [ i; (i + 1) mod 12 ]))
  in
  Alcotest.(check bool) "limit enforced" true
    (try
       ignore (Setcover.optimal ~node_limit:3 t);
       false
     with Failure _ -> true)

let test_single_subset_instance () =
  let t = Setcover.make ~universe:3 ~subsets:[| [ 0; 1; 2 ] |] in
  Alcotest.(check (list int)) "greedy" [ 0 ] (Setcover.greedy t);
  Alcotest.(check (list int)) "optimal" [ 0 ] (Setcover.optimal t)

let suite =
  [
    Alcotest.test_case "constructor validation" `Quick test_make_validates;
    Alcotest.test_case "accessors" `Quick test_accessors;
    Alcotest.test_case "is_cover" `Quick test_is_cover;
    Alcotest.test_case "greedy on the Fig. 3 instance" `Quick test_greedy_on_fig3;
    Alcotest.test_case "optimal beats greedy when possible" `Quick
      test_optimal_beats_greedy_on_adversarial_instance;
    Alcotest.test_case "optimal never worse than greedy" `Quick
      test_optimal_never_worse_than_greedy;
    Alcotest.test_case "covers_of_size decision" `Quick test_covers_of_size;
    Alcotest.test_case "node limit enforced" `Quick test_node_limit;
    Alcotest.test_case "single-subset instance" `Quick test_single_subset_instance;
  ]
