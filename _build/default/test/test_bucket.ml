(* Tests for Dia_sim.Bucket: bucket synchronisation through the
   protocol. *)

module Bucket = Dia_sim.Bucket
module Workload = Dia_sim.Workload
module Protocol = Dia_sim.Protocol
module Checker = Dia_sim.Checker
module Problem = Dia_core.Problem
module Algorithm = Dia_core.Algorithm
module Objective = Dia_core.Objective
module Clock = Dia_core.Clock

let op t = { Workload.op_id = 0; issuer = 0; issue_time = t }

let test_execution_time_arithmetic () =
  let exec = Bucket.execution_time ~length:50. ~delay:2 in
  (* Issue at 10 (bucket 0) -> end of bucket 2 = 150. *)
  Alcotest.(check (float 1e-9)) "mid-bucket" 150. (exec (op 10.));
  (* Issue at 49.99 (still bucket 0) -> also 150. *)
  Alcotest.(check (float 1e-9)) "end of bucket" 150. (exec (op 49.99));
  (* Issue at 50 (bucket 1) -> 200. *)
  Alcotest.(check (float 1e-9)) "next bucket" 200. (exec (op 50.))

let test_lag_bounds () =
  let lo, hi = Bucket.lag_bounds ~length:50. ~delay:2 in
  Alcotest.(check (float 1e-9)) "min lag" 100. lo;
  Alcotest.(check (float 1e-9)) "max lag" 150. hi

let test_validation () =
  Alcotest.(check bool) "bad length" true
    (try ignore (Bucket.execution_time ~length:0. ~delay:1 (op 0.)); false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "bad delay" true
    (try ignore (Bucket.lag_bounds ~length:1. ~delay:(-1)); false
     with Invalid_argument _ -> true)

let instance seed =
  let matrix = Dia_latency.Synthetic.internet_like ~seed 12 in
  let servers = Dia_placement.Placement.random ~seed ~k:3 ~n:12 in
  let p = Problem.all_nodes_clients matrix ~servers in
  let a = Algorithm.run Algorithm.Greedy p in
  (p, a)

let run_bucketed ?(length = 60.) p a =
  let delay = Bucket.min_delay p a ~length in
  let clock = Clock.synthesize p a in
  (* Ops at varied offsets within buckets so lags genuinely differ. *)
  let workload =
    Workload.of_list (List.init 30 (fun i -> (i mod 12, float_of_int i *. 17.3)))
  in
  ( delay,
    Protocol.run ~execution_time:(Bucket.execution_time ~length ~delay) p a clock
      workload )

let test_bucketed_run_consistent_but_unfair () =
  let p, a = instance 3 in
  let _, report = run_bucketed p a in
  let verdict = Checker.analyze report in
  Alcotest.(check bool) "consistent" true verdict.Checker.consistent;
  Alcotest.(check bool) "state consistent" true (Checker.state_consistent report);
  Alcotest.(check int) "no late executions" 0 verdict.Checker.late_executions;
  Alcotest.(check int) "no late updates" 0 verdict.Checker.late_visibilities;
  (* Bucket sync is NOT constant-lag fair... *)
  Alcotest.(check bool) "not constant-lag fair" false verdict.Checker.fair;
  Alcotest.(check bool) "interaction times vary" false
    verdict.Checker.uniform_interaction

let test_bucketed_lags_within_bounds () =
  let p, a = instance 4 in
  let length = 60. in
  let delay, report = run_bucketed ~length p a in
  let lo, hi = Bucket.lag_bounds ~length ~delay in
  List.iter
    (fun (_, _, t) ->
      Alcotest.(check bool)
        (Printf.sprintf "lag %.1f in [%.0f, %.0f)" t lo hi)
        true
        (t >= lo -. 1e-9 && t < hi +. 1e-9))
    (Protocol.interaction_times report)

let test_min_delay_is_minimal () =
  (* One bucket less than min_delay must cause late events. *)
  let p, a = instance 5 in
  let length = 60. in
  let delay = Bucket.min_delay p a ~length in
  if delay > 0 then begin
    let clock = Clock.synthesize p a in
    let workload =
      (* Every client issues right before a bucket boundary: the burst is
         guaranteed to include the binding client of constraint (i), for
         which the synthesized offsets leave zero slack. *)
      Workload.burst ~clients:(Problem.num_clients p) ~at:(length -. 0.001)
    in
    let report =
      Protocol.run
        ~execution_time:(Bucket.execution_time ~length ~delay:(delay - 1))
        p a clock workload
    in
    let verdict = Checker.analyze report in
    Alcotest.(check bool) "late events appear" true
      (verdict.Checker.late_executions + verdict.Checker.late_visibilities > 0)
  end

let test_local_lag_is_fine_bucket_limit () =
  (* Tiny buckets with delay * length = D approximate the local-lag rule:
     lags collapse towards D. *)
  let p, a = instance 6 in
  let d = Objective.max_interaction_path p a in
  let length = 1. in
  let delay = Bucket.min_delay p a ~length in
  let clock = Clock.synthesize p a in
  let workload = Workload.of_list [ (0, 10.3); (5, 100.9) ] in
  let report =
    Protocol.run ~execution_time:(Bucket.execution_time ~length ~delay) p a clock
      workload
  in
  List.iter
    (fun (_, _, t) ->
      Alcotest.(check bool)
        (Printf.sprintf "lag %.2f within one bucket of D = %.2f" t d)
        true
        (t >= d -. 1e-9 && t <= d +. (2. *. length) +. 1e-9))
    (Protocol.interaction_times report)

let suite =
  [
    Alcotest.test_case "execution time arithmetic" `Quick test_execution_time_arithmetic;
    Alcotest.test_case "lag bounds" `Quick test_lag_bounds;
    Alcotest.test_case "parameter validation" `Quick test_validation;
    Alcotest.test_case "bucketed run: consistent, not constant-lag fair" `Quick
      test_bucketed_run_consistent_but_unfair;
    Alcotest.test_case "lags stay within the bucket bounds" `Quick
      test_bucketed_lags_within_bounds;
    Alcotest.test_case "min_delay is minimal" `Quick test_min_delay_is_minimal;
    Alcotest.test_case "local-lag as the fine-bucket limit" `Quick
      test_local_lag_is_fine_bucket_limit;
  ]
