(* Tests for Dia_core.Local_search. *)

module Synthetic = Dia_latency.Synthetic
module Problem = Dia_core.Problem
module Assignment = Dia_core.Assignment
module Objective = Dia_core.Objective
module Algorithm = Dia_core.Algorithm
module Local_search = Dia_core.Local_search
module Brute_force = Dia_core.Brute_force

let instance ?capacity seed ~n ~k =
  let matrix = Synthetic.internet_like ~seed n in
  let servers = Dia_placement.Placement.random ~seed ~k ~n in
  Problem.all_nodes_clients ?capacity matrix ~servers

let test_hill_climb_never_worse () =
  for seed = 0 to 9 do
    let p = instance seed ~n:25 ~k:4 in
    let start = Dia_core.Nearest.assign p in
    let d0 = Objective.max_interaction_path p start in
    let final, d = Local_search.hill_climb p start in
    Alcotest.(check bool) "improved or equal" true (d <= d0 +. 1e-9);
    Alcotest.(check (float 1e-9)) "returned objective correct"
      (Objective.max_interaction_path p final)
      d
  done

let test_hill_climb_local_optimality () =
  let p = instance 4 ~n:20 ~k:4 in
  let final, d = Local_search.hill_climb p (Dia_core.Nearest.assign p) in
  let arr = Assignment.to_array final in
  let improvable = ref false in
  for c = 0 to Problem.num_clients p - 1 do
    let original = arr.(c) in
    for s = 0 to Problem.num_servers p - 1 do
      if s <> original then begin
        arr.(c) <- s;
        if Objective.max_interaction_path p (Assignment.unsafe_of_array arr)
           < d -. 1e-9
        then improvable := true;
        arr.(c) <- original
      end
    done
  done;
  Alcotest.(check bool) "no improving single move" false !improvable

let test_hill_climb_round_budget () =
  let p = instance 5 ~n:30 ~k:5 in
  let start = Assignment.constant p 0 in
  let _, unlimited = Local_search.hill_climb p start in
  let _, budget0 = Local_search.hill_climb ~max_rounds:0 p start in
  Alcotest.(check (float 1e-9)) "0 rounds = unchanged"
    (Objective.max_interaction_path p start)
    budget0;
  Alcotest.(check bool) "unlimited at least as good" true (unlimited <= budget0 +. 1e-9)

let test_anneal_reaches_optimum_on_small_instances () =
  for seed = 0 to 4 do
    let p = instance seed ~n:9 ~k:3 in
    let optimum = Brute_force.optimal_value p in
    let _, annealed =
      Local_search.anneal ~seed p (Assignment.random p ~seed)
    in
    Alcotest.(check bool)
      (Printf.sprintf "seed %d: annealed %.2f vs optimum %.2f" seed annealed optimum)
      true
      (annealed <= optimum *. 1.02 +. 1e-9)
  done

let test_anneal_deterministic_per_seed () =
  let p = instance 6 ~n:20 ~k:4 in
  let start = Dia_core.Nearest.assign p in
  let a1, d1 = Local_search.anneal ~seed:9 p start in
  let a2, d2 = Local_search.anneal ~seed:9 p start in
  Alcotest.(check bool) "same assignment" true (Assignment.equal a1 a2);
  Alcotest.(check (float 0.)) "same objective" d1 d2

let test_anneal_capacity_respected () =
  let p = instance ~capacity:6 7 ~n:24 ~k:5 in
  let start = Dia_core.Nearest.assign p in
  let final, _ = Local_search.anneal ~seed:1 p start in
  Alcotest.(check bool) "capacitated" true (Assignment.respects_capacity p final)

let test_anneal_no_worse_than_greedy_typically () =
  (* Annealing from the greedy solution must not lose ground (it keeps
     the best-ever assignment). *)
  for seed = 10 to 14 do
    let p = instance seed ~n:30 ~k:5 in
    let greedy = Dia_core.Greedy.assign p in
    let d_greedy = Objective.max_interaction_path p greedy in
    let _, annealed = Local_search.anneal ~seed p greedy in
    Alcotest.(check bool)
      (Printf.sprintf "seed %d" seed)
      true (annealed <= d_greedy +. 1e-9)
  done

let test_anneal_validates_params () =
  let p = instance 1 ~n:5 ~k:2 in
  let start = Dia_core.Nearest.assign p in
  let bad params =
    try
      ignore (Local_search.anneal ~params p start);
      false
    with Invalid_argument _ -> true
  in
  Alcotest.(check bool) "temperature" true
    (bad { Local_search.default_annealing with Local_search.initial_temperature = 0. });
  Alcotest.(check bool) "cooling" true
    (bad { Local_search.default_annealing with Local_search.cooling = 1.5 })

let suite =
  [
    Alcotest.test_case "hill climb never worsens" `Quick test_hill_climb_never_worse;
    Alcotest.test_case "hill climb reaches local optimum" `Quick
      test_hill_climb_local_optimality;
    Alcotest.test_case "hill climb round budget" `Quick test_hill_climb_round_budget;
    Alcotest.test_case "annealing reaches optimum on small instances" `Slow
      test_anneal_reaches_optimum_on_small_instances;
    Alcotest.test_case "annealing deterministic per seed" `Quick
      test_anneal_deterministic_per_seed;
    Alcotest.test_case "annealing respects capacity" `Quick test_anneal_capacity_respected;
    Alcotest.test_case "annealing keeps the best-ever state" `Quick
      test_anneal_no_worse_than_greedy_typically;
    Alcotest.test_case "annealing validates parameters" `Quick test_anneal_validates_params;
  ]
