(* Tests for Dia_latency.Vivaldi. *)

module Matrix = Dia_latency.Matrix
module Synthetic = Dia_latency.Synthetic
module Vivaldi = Dia_latency.Vivaldi
module Loader = Dia_latency.Loader

let test_euclidean_embeds_accurately () =
  (* Pure 2-D data must embed with low error: that is the model. *)
  let m = Synthetic.euclidean ~seed:3 ~n:40 ~side:200. in
  let t = Vivaldi.embed_matrix ~rounds:60 m in
  let err = Vivaldi.median_relative_error t m in
  Alcotest.(check bool)
    (Printf.sprintf "median error %.3f below 0.12" err)
    true (err < 0.12)

let test_internet_like_embeds_reasonably () =
  let m = Synthetic.internet_like ~seed:8 60 in
  let t = Vivaldi.embed_matrix ~rounds:60 m in
  let err = Vivaldi.median_relative_error t m in
  Alcotest.(check bool)
    (Printf.sprintf "median error %.3f below 0.45" err)
    true (err < 0.45)

let test_deterministic () =
  let m = Synthetic.euclidean ~seed:1 ~n:20 ~side:100. in
  let a = Vivaldi.embed_matrix ~seed:5 m in
  let b = Vivaldi.embed_matrix ~seed:5 m in
  Alcotest.(check (float 1e-12)) "same prediction" (Vivaldi.predict a 0 1)
    (Vivaldi.predict b 0 1)

let test_predict_properties () =
  let m = Synthetic.euclidean ~seed:2 ~n:15 ~side:100. in
  let t = Vivaldi.embed_matrix m in
  Alcotest.(check (float 0.)) "diagonal zero" 0. (Vivaldi.predict t 3 3);
  Alcotest.(check (float 1e-12)) "symmetric" (Vivaldi.predict t 2 9)
    (Vivaldi.predict t 9 2);
  Alcotest.(check bool) "positive" true (Vivaldi.predict t 0 1 > 0.);
  Alcotest.(check int) "nodes" 15 (Vivaldi.nodes t);
  let _, _, h = Vivaldi.coordinates t 0 in
  Alcotest.(check bool) "height non-negative" true (h >= 0.)

let drop_entries ~seed ~fraction m =
  (* Make a raw data set by deleting a random fraction of the pairs. *)
  let n = Matrix.dim m in
  let rng = Random.State.make [| seed |] in
  let entries = Array.init n (fun i -> Array.init n (fun j ->
      if i = j then Some 0. else Some (Matrix.get m i j)))
  in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      if Random.State.float rng 1. < fraction then begin
        entries.(i).(j) <- None;
        entries.(j).(i) <- None
      end
    done
  done;
  { Loader.nodes = n; entries }

let test_complete_keeps_all_nodes () =
  let m = Synthetic.euclidean ~seed:4 ~n:30 ~side:100. in
  let raw = drop_entries ~seed:1 ~fraction:0.2 m in
  let completed = Vivaldi.complete ~rounds:60 raw in
  Alcotest.(check int) "all nodes kept" 30 (Matrix.dim completed);
  Alcotest.(check bool) "strictly positive" true (Matrix.min_entry completed > 0.)

let test_complete_preserves_measured_entries () =
  let m = Synthetic.euclidean ~seed:5 ~n:25 ~side:100. in
  let raw = drop_entries ~seed:2 ~fraction:0.3 m in
  let completed = Vivaldi.complete raw in
  for i = 0 to 24 do
    for j = i + 1 to 24 do
      match raw.Loader.entries.(i).(j) with
      | Some v when v > 0.05 ->
          Alcotest.(check (float 1e-9)) "measured entry kept" v
            (Matrix.get completed i j)
      | _ -> ()
    done
  done

let test_complete_fills_with_sensible_values () =
  let m = Synthetic.euclidean ~seed:6 ~n:30 ~side:100. in
  let raw = drop_entries ~seed:3 ~fraction:0.25 m in
  let completed = Vivaldi.complete ~rounds:80 raw in
  (* Filled entries should be close to the (known) ground truth. *)
  let errors = ref [] in
  for i = 0 to 29 do
    for j = i + 1 to 29 do
      if raw.Loader.entries.(i).(j) = None then begin
        let truth = Matrix.get m i j in
        if truth > 1. then
          errors := (Float.abs (Matrix.get completed i j -. truth) /. truth) :: !errors
      end
    done
  done;
  let sorted = Array.of_list !errors in
  Array.sort Float.compare sorted;
  let median = sorted.(Array.length sorted / 2) in
  Alcotest.(check bool)
    (Printf.sprintf "median fill error %.3f below 0.25" median)
    true (median < 0.25)

let test_completion_beats_discarding_on_node_count () =
  let m = Synthetic.euclidean ~seed:7 ~n:30 ~side:100. in
  let raw = drop_entries ~seed:4 ~fraction:0.3 m in
  let survivors, _ = Loader.complete_subset raw in
  let completed = Vivaldi.complete raw in
  Alcotest.(check bool)
    (Printf.sprintf "discarding keeps %d of 30, completion keeps 30"
       (Array.length survivors))
    true
    (Matrix.dim completed = 30 && Array.length survivors < 30)

let suite =
  [
    Alcotest.test_case "euclidean data embeds accurately" `Quick
      test_euclidean_embeds_accurately;
    Alcotest.test_case "internet-like data embeds reasonably" `Quick
      test_internet_like_embeds_reasonably;
    Alcotest.test_case "embedding deterministic per seed" `Quick test_deterministic;
    Alcotest.test_case "prediction properties" `Quick test_predict_properties;
    Alcotest.test_case "completion keeps all nodes" `Quick test_complete_keeps_all_nodes;
    Alcotest.test_case "completion preserves measured entries" `Quick
      test_complete_preserves_measured_entries;
    Alcotest.test_case "completion fills sensible values" `Quick
      test_complete_fills_with_sensible_values;
    Alcotest.test_case "completion keeps nodes discarding drops" `Quick
      test_completion_beats_discarding_on_node_count;
  ]
