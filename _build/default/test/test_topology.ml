(* Tests for Dia_latency.Topology. *)

module Topology = Dia_latency.Topology
module Graph = Dia_latency.Graph
module Matrix = Dia_latency.Matrix
module Metric = Dia_latency.Metric

let small_params =
  {
    Topology.default_params with
    Topology.transit_domains = 3;
    transit_nodes_per_domain = 2;
    stubs_per_transit_node = 2;
    stub_nodes_per_domain = 4;
  }

let test_node_count () =
  (* 3x2 = 6 transit nodes; 6 x 2 stubs x 4 nodes = 48 stub nodes. *)
  Alcotest.(check int) "node count" 54 (Topology.node_count small_params);
  let g = Topology.generate ~params:small_params ~seed:1 () in
  Alcotest.(check int) "graph size" 54 (Graph.n g)

let test_connected () =
  for seed = 0 to 9 do
    let g = Topology.generate ~params:small_params ~seed () in
    Alcotest.(check bool) (Printf.sprintf "seed %d connected" seed) true
      (Graph.is_connected g)
  done

let test_deterministic () =
  let a = Topology.generate ~params:small_params ~seed:3 () in
  let b = Topology.generate ~params:small_params ~seed:3 () in
  Alcotest.(check int) "same edges" (Graph.edge_count a) (Graph.edge_count b);
  Alcotest.(check bool) "same matrix" true
    (Matrix.equal
       (Topology.latency_matrix ~params:small_params ~seed:3 ())
       (Topology.latency_matrix ~params:small_params ~seed:3 ()))

let test_matrix_is_metric () =
  (* Shortest-path routing cannot violate the triangle inequality. *)
  let m = Topology.latency_matrix ~params:small_params ~seed:5 () in
  Alcotest.(check bool) "metric" true (Metric.is_metric m);
  Alcotest.(check bool) "positive" true (Matrix.min_entry m > 0.)

let test_stub_to_stub_crosses_core () =
  (* Nodes in stubs of different transit domains must be far apart
     compared to nodes within one stub. *)
  let m = Topology.latency_matrix ~params:small_params ~seed:7 () in
  (* Stub nodes start at index 6; stub 0 spans 6..9 and sponsors transit
     node 0 (domain 0); the LAST stub spans 50..53 and sponsors transit
     node 5 (domain 2). *)
  let within = Matrix.get m 6 9 in
  let across = Matrix.get m 6 53 in
  Alcotest.(check bool)
    (Printf.sprintf "across %.1f > within %.1f" across within)
    true (across > within)

let test_default_size_and_assignability () =
  let g = Topology.generate ~seed:1 () in
  Alcotest.(check int) "default node count" 400 (Graph.n g);
  (* The matrix works end-to-end with the assignment stack. *)
  let m = Topology.latency_matrix ~params:small_params ~seed:2 () in
  let servers = Dia_placement.Placement.place Dia_placement.Placement.K_center_b m ~k:4 in
  let p = Dia_core.Problem.all_nodes_clients m ~servers in
  let a = Dia_core.Algorithm.(run Greedy) p in
  let d = Dia_core.Objective.max_interaction_path p a in
  let lb = Dia_core.Lower_bound.compute p in
  Alcotest.(check bool) "sane objective" true (Float.is_finite d && d >= lb -. 1e-9)

let test_validation () =
  let bad params =
    try
      ignore (Topology.generate ~params ~seed:0 ());
      false
    with Invalid_argument _ -> true
  in
  Alcotest.(check bool) "zero domains" true
    (bad { small_params with Topology.transit_domains = 0 });
  Alcotest.(check bool) "negative latency" true
    (bad { small_params with Topology.stub_link_latency = -1. });
  Alcotest.(check bool) "bad fraction" true
    (bad { small_params with Topology.extra_edge_fraction = 2. })

let suite =
  [
    Alcotest.test_case "node count" `Quick test_node_count;
    Alcotest.test_case "always connected" `Quick test_connected;
    Alcotest.test_case "deterministic per seed" `Quick test_deterministic;
    Alcotest.test_case "routed matrix is metric" `Quick test_matrix_is_metric;
    Alcotest.test_case "stub-to-stub crosses the core" `Quick test_stub_to_stub_crosses_core;
    Alcotest.test_case "default size; end-to-end assignability" `Quick
      test_default_size_and_assignability;
    Alcotest.test_case "parameter validation" `Quick test_validation;
  ]
