(* Tests for Dia_latency.Metric. *)

module Matrix = Dia_latency.Matrix
module Metric = Dia_latency.Metric
module Synthetic = Dia_latency.Synthetic

let test_metric_matrix_has_no_violations () =
  let m = Synthetic.euclidean ~seed:1 ~n:20 ~side:100. in
  Alcotest.(check bool) "euclidean is metric" true (Metric.is_metric m);
  let stats = Metric.triangle_violations m in
  Alcotest.(check int) "no violations" 0 stats.violations;
  Alcotest.(check bool) "triples were checked" true (stats.triples_checked > 0)

let test_detects_violation () =
  let m = Matrix.create 3 in
  Matrix.set m 0 1 1.;
  Matrix.set m 1 2 1.;
  Matrix.set m 0 2 10.;
  Alcotest.(check bool) "not metric" false (Metric.is_metric m);
  let stats = Metric.triangle_violations m in
  Alcotest.(check bool) "violations found" true (stats.violations > 0);
  Alcotest.(check bool) "stretch is 5" true (Float.abs (stats.max_stretch -. 5.) < 1e-9)

let test_sampled_mode_on_large_matrix () =
  let m = Synthetic.internet_like ~seed:3 100 in
  let stats = Metric.triangle_violations ~samples:5000 ~seed:1 m in
  Alcotest.(check int) "sample count respected" 5000 stats.triples_checked;
  Alcotest.(check bool) "fraction in [0,1]" true
    (stats.violation_fraction >= 0. && stats.violation_fraction <= 1.)

let test_sampling_deterministic () =
  let m = Synthetic.internet_like ~seed:3 100 in
  let a = Metric.triangle_violations ~samples:2000 ~seed:9 m in
  let b = Metric.triangle_violations ~samples:2000 ~seed:9 m in
  Alcotest.(check int) "same violations" a.violations b.violations

let test_tiny_matrix_no_triples () =
  let m = Matrix.create 2 in
  let stats = Metric.triangle_violations m in
  Alcotest.(check int) "no triples" 0 stats.triples_checked;
  Alcotest.(check bool) "mean stretch nan" true (Float.is_nan stats.mean_stretch_violating)

let test_spread () =
  let m = Matrix.create 3 in
  Matrix.set m 0 1 2.;
  Matrix.set m 0 2 8.;
  Matrix.set m 1 2 4.;
  Alcotest.(check (float 1e-9)) "spread" 4. (Metric.spread m)

let suite =
  [
    Alcotest.test_case "euclidean matrices are metric" `Quick test_metric_matrix_has_no_violations;
    Alcotest.test_case "violations detected and measured" `Quick test_detects_violation;
    Alcotest.test_case "sampled mode on large matrices" `Quick test_sampled_mode_on_large_matrix;
    Alcotest.test_case "sampling is deterministic per seed" `Quick test_sampling_deterministic;
    Alcotest.test_case "matrices too small for triples" `Quick test_tiny_matrix_no_triples;
    Alcotest.test_case "spread ratio" `Quick test_spread;
  ]
