(* Tests for Dia_sim.State and the state-machine consistency check in
   Dia_sim.Checker. *)

module State = Dia_sim.State
module Workload = Dia_sim.Workload
module Checker = Dia_sim.Checker
module Protocol = Dia_sim.Protocol
module Problem = Dia_core.Problem
module Algorithm = Dia_core.Algorithm
module Clock = Dia_core.Clock

let ops pairs = Workload.of_list pairs

let test_apply_moves_issuer_only () =
  let s0 = State.initial ~clients:3 in
  let s1 = State.apply_all s0 (ops [ (1, 0.) ]) in
  Alcotest.(check (pair (float 1e-9) (float 1e-9))) "others unmoved" (0., 0.)
    (State.position s1 0);
  let x, y = State.position s1 1 in
  Alcotest.(check bool) "issuer moved by a unit step" true
    (Float.abs (sqrt ((x *. x) +. (y *. y)) -. 1.) < 1e-9)

let test_determinism () =
  let workload = ops [ (0, 0.); (1, 1.); (0, 2.); (2, 3.) ] in
  let a = State.apply_all (State.initial ~clients:3) workload in
  let b = State.apply_all (State.initial ~clients:3) workload in
  Alcotest.(check bool) "equal" true (State.equal a b);
  Alcotest.(check string) "same digest" (State.digest a) (State.digest b)

let test_order_sensitivity () =
  (* Same-issuer operations must not commute (rotate-then-translate), so
     out-of-order execution is detectable. *)
  let o1 = { Workload.op_id = 0; issuer = 0; issue_time = 0. } in
  let o2 = { Workload.op_id = 1; issuer = 0; issue_time = 1. } in
  let forward = State.apply (State.apply (State.initial ~clients:1) o1) o2 in
  let backward = State.apply (State.apply (State.initial ~clients:1) o2) o1 in
  Alcotest.(check bool) "order matters" false (State.equal forward backward);
  (* Different-issuer operations commute: they touch different avatars. *)
  let a = { Workload.op_id = 0; issuer = 0; issue_time = 0. } in
  let b = { Workload.op_id = 1; issuer = 1; issue_time = 1. } in
  let ab = State.apply (State.apply (State.initial ~clients:2) a) b in
  let ba = State.apply (State.apply (State.initial ~clients:2) b) a in
  Alcotest.(check bool) "different issuers commute" true (State.equal ab ba)

let test_apply_validates_issuer () =
  let s = State.initial ~clients:2 in
  Alcotest.(check bool) "raises" true
    (try
       ignore (State.apply s { Workload.op_id = 0; issuer = 9; issue_time = 0. });
       false
     with Invalid_argument _ -> true)

let test_digest_distinguishes_positions () =
  let a = State.apply_all (State.initial ~clients:2) (ops [ (0, 0.) ]) in
  let b = State.apply_all (State.initial ~clients:2) (ops [ (1, 0.) ]) in
  Alcotest.(check bool) "different digests" false (State.digest a = State.digest b)

(* End-to-end: the protocol's replicated states agree across servers. *)
let run_protocol ~delta_scale seed =
  let matrix = Dia_latency.Synthetic.internet_like ~seed 15 in
  let servers = Dia_placement.Placement.random ~seed ~k:4 ~n:15 in
  let p = Problem.all_nodes_clients matrix ~servers in
  let a = Algorithm.run Algorithm.Greedy p in
  let clock = Clock.synthesize p a in
  let clock = { clock with Clock.delta = clock.Clock.delta *. delta_scale } in
  let workload = Dia_sim.Workload.rounds ~clients:15 ~rounds:3 ~period:80. in
  Protocol.run p a clock workload

let test_replicated_states_consistent_at_delta () =
  let report = run_protocol ~delta_scale:1.0 3 in
  Alcotest.(check bool) "state consistent" true (Checker.state_consistent report);
  let states = Checker.replicated_states report in
  Alcotest.(check int) "one state per server" report.Protocol.servers
    (List.length states)

let test_replicated_states_match_canonical_workload () =
  let report = run_protocol ~delta_scale:1.0 4 in
  (* Each server's state must equal the state from applying the whole
     workload in issue order (ids are issue-ordered and delta constant,
     so canonical execution order = id order). *)
  let expected =
    State.apply_all
      (State.initial ~clients:report.Protocol.clients)
      report.Protocol.operations
  in
  List.iter
    (fun (_, state) ->
      Alcotest.(check string) "matches canonical" (State.digest expected)
        (State.digest state))
    (Checker.replicated_states report)

let test_empty_run_vacuously_consistent () =
  let matrix = Dia_latency.Synthetic.internet_like ~seed:5 8 in
  let p = Problem.all_nodes_clients matrix ~servers:[| 0; 1 |] in
  let a = Algorithm.run Algorithm.Greedy p in
  let report = Protocol.run p a (Clock.synthesize p a) [] in
  Alcotest.(check bool) "consistent" true (Checker.state_consistent report)

let suite =
  [
    Alcotest.test_case "apply moves only the issuer" `Quick test_apply_moves_issuer_only;
    Alcotest.test_case "state machine is deterministic" `Quick test_determinism;
    Alcotest.test_case "same-issuer order sensitivity" `Quick test_order_sensitivity;
    Alcotest.test_case "issuer validated" `Quick test_apply_validates_issuer;
    Alcotest.test_case "digest distinguishes positions" `Quick
      test_digest_distinguishes_positions;
    Alcotest.test_case "replicated states consistent at delta = D" `Quick
      test_replicated_states_consistent_at_delta;
    Alcotest.test_case "replicated states match the canonical workload" `Quick
      test_replicated_states_match_canonical_workload;
    Alcotest.test_case "empty runs vacuously consistent" `Quick
      test_empty_run_vacuously_consistent;
  ]
