(* Tests for Dia_latency.Graph and Dia_latency.Shortest_path. *)

module Graph = Dia_latency.Graph
module Shortest_path = Dia_latency.Shortest_path
module Matrix = Dia_latency.Matrix

let checkf = Alcotest.(check (float 1e-9))

(* The network of the paper's Fig. 5: two clients, two servers.
   c1 -5- s1, c1 -7- c2 (unused by routing once better paths exist),
   s1 -4- s2, s1 -4- c2, c2 -3- s2. Node ids: c1=0, c2=1, s1=2, s2=3. *)
let fig5_graph () =
  Graph.of_edges 4
    [ (0, 2, 5.); (0, 1, 7.); (2, 3, 4.); (2, 1, 4.); (1, 3, 3.) ]

let test_of_edges_and_neighbors () =
  let g = fig5_graph () in
  Alcotest.(check int) "node count" 4 (Graph.n g);
  Alcotest.(check int) "edge count" 5 (Graph.edge_count g);
  let neighbor_ids = List.sort compare (List.map fst (Graph.neighbors g 2)) in
  Alcotest.(check (list int)) "neighbors of s1" [ 0; 1; 3 ] neighbor_ids

let test_duplicate_edge_keeps_min () =
  let g = Graph.create 2 in
  Graph.add_edge g 0 1 5.;
  Graph.add_edge g 0 1 3.;
  Graph.add_edge g 1 0 8.;
  Alcotest.(check int) "still one edge" 1 (Graph.edge_count g);
  match Graph.neighbors g 0 with
  | [ (1, w) ] -> checkf "min weight kept" 3. w
  | _ -> Alcotest.fail "expected exactly one neighbor"

let test_rejects_bad_edges () =
  let g = Graph.create 3 in
  Alcotest.check_raises "self loop" (Invalid_argument "Graph.add_edge: self-loop")
    (fun () -> Graph.add_edge g 1 1 1.);
  Alcotest.check_raises "zero weight"
    (Invalid_argument "Graph.add_edge: weight 0 must be positive") (fun () ->
      Graph.add_edge g 0 1 0.)

let test_connectivity () =
  let g = Graph.create 3 in
  Alcotest.(check bool) "edgeless disconnected" false (Graph.is_connected g);
  Graph.add_edge g 0 1 1.;
  Alcotest.(check bool) "still disconnected" false (Graph.is_connected g);
  Graph.add_edge g 1 2 1.;
  Alcotest.(check bool) "connected" true (Graph.is_connected g)

let test_dijkstra_fig5 () =
  let g = fig5_graph () in
  let dist = Shortest_path.dijkstra g 0 in
  checkf "c1 to itself" 0. dist.(0);
  checkf "c1 to s1" 5. dist.(2);
  checkf "c1 to c2 via direct edge" 7. dist.(1);
  checkf "c1 to s2" 9. dist.(3)

let test_dijkstra_unreachable () =
  let g = Graph.create 3 in
  Graph.add_edge g 0 1 2.;
  let dist = Shortest_path.dijkstra g 0 in
  Alcotest.(check bool) "unreachable infinite" true (dist.(2) = infinity)

let test_all_pairs_symmetric_metric () =
  let g = fig5_graph () in
  let m = Shortest_path.all_pairs g in
  checkf "c2 to s2" 3. (Matrix.get m 1 3);
  checkf "c1 to s2" 9. (Matrix.get m 0 3);
  Alcotest.(check bool) "shortest paths form a metric" true
    (Dia_latency.Metric.is_metric m)

let test_all_pairs_disconnected_raises () =
  let g = Graph.create 2 in
  Alcotest.(check bool) "raises" true
    (try
       ignore (Shortest_path.all_pairs g);
       false
     with Invalid_argument _ -> true)

let test_floyd_warshall_closure () =
  (* A 3-node matrix violating the triangle inequality: 0-2 direct is 10
     but 0-1-2 costs 3. *)
  let m = Matrix.create 3 in
  Matrix.set m 0 1 1.;
  Matrix.set m 1 2 2.;
  Matrix.set m 0 2 10.;
  let closure = Shortest_path.floyd_warshall m in
  checkf "shortcut found" 3. (Matrix.get closure 0 2);
  checkf "direct entries kept" 1. (Matrix.get closure 0 1);
  Alcotest.(check bool) "closure is metric" true (Dia_latency.Metric.is_metric closure)

let test_floyd_warshall_agrees_with_dijkstra () =
  let g = fig5_graph () in
  let via_dijkstra = Shortest_path.all_pairs g in
  (* Feed the raw adjacency (missing edges as big values) through FW. *)
  let m = Matrix.init 4 (fun i j ->
      match List.assoc_opt j (Graph.neighbors g i) with
      | Some w -> w
      | None -> 1000.)
  in
  let closure = Shortest_path.floyd_warshall m in
  Alcotest.(check bool) "same distances" true (Matrix.equal via_dijkstra closure)

let test_path_reconstruction () =
  let g = fig5_graph () in
  match Shortest_path.path g 0 3 with
  | Some route ->
      Alcotest.(check (list int)) "route c1-s1-c2... shortest" [ 0; 2; 3 ] route
  | None -> Alcotest.fail "expected a path"

let test_path_none_when_disconnected () =
  let g = Graph.create 2 in
  Alcotest.(check bool) "no path" true (Shortest_path.path g 0 1 = None)

let test_path_self () =
  let g = fig5_graph () in
  Alcotest.(check bool) "self path" true (Shortest_path.path g 2 2 = Some [ 2 ])

let suite =
  [
    Alcotest.test_case "of_edges and neighbors" `Quick test_of_edges_and_neighbors;
    Alcotest.test_case "duplicate edges keep minimum weight" `Quick test_duplicate_edge_keeps_min;
    Alcotest.test_case "bad edges rejected" `Quick test_rejects_bad_edges;
    Alcotest.test_case "connectivity check" `Quick test_connectivity;
    Alcotest.test_case "dijkstra on the Fig. 5 network" `Quick test_dijkstra_fig5;
    Alcotest.test_case "dijkstra marks unreachable nodes" `Quick test_dijkstra_unreachable;
    Alcotest.test_case "all_pairs yields a symmetric metric" `Quick test_all_pairs_symmetric_metric;
    Alcotest.test_case "all_pairs rejects disconnected graphs" `Quick test_all_pairs_disconnected_raises;
    Alcotest.test_case "floyd_warshall closes triangle violations" `Quick test_floyd_warshall_closure;
    Alcotest.test_case "floyd_warshall agrees with dijkstra" `Quick test_floyd_warshall_agrees_with_dijkstra;
    Alcotest.test_case "shortest path reconstruction" `Quick test_path_reconstruction;
    Alcotest.test_case "path is None across components" `Quick test_path_none_when_disconnected;
    Alcotest.test_case "path to self" `Quick test_path_self;
  ]
