(* Cross-module property tests: random-input invariants that tie the
   substrates together, plus paper-specific structural invariants. *)

module Matrix = Dia_latency.Matrix
module Graph = Dia_latency.Graph
module Shortest_path = Dia_latency.Shortest_path
module Synthetic = Dia_latency.Synthetic
module Loader = Dia_latency.Loader
module Problem = Dia_core.Problem
module Assignment = Dia_core.Assignment
module Clock = Dia_core.Clock

let prop_synthetic_matrices_well_formed =
  QCheck.Test.make ~name:"synthetic matrices are symmetric and positive" ~count:40
    QCheck.(pair (int_bound 1_000_000) (int_range 2 40))
    (fun (seed, n) ->
      let m = Synthetic.internet_like ~seed n in
      let ok = ref (Matrix.min_entry m > 0.) in
      Matrix.iter_pairs m (fun i j v ->
          if Float.abs (v -. Matrix.get m j i) > 1e-12 then ok := false;
          if not (Float.is_finite v) then ok := false);
      for i = 0 to n - 1 do
        if Matrix.get m i i <> 0. then ok := false
      done;
      !ok)

let prop_submatrix_inherits_structure =
  QCheck.Test.make ~name:"principal submatrices stay well-formed" ~count:40
    QCheck.(triple (int_bound 1_000_000) (int_range 3 30) (int_range 1 10))
    (fun (seed, n, size) ->
      let size = min size n in
      let m = Synthetic.internet_like ~seed n in
      let rng = Random.State.make [| seed |] in
      let nodes =
        Array.init size (fun _ -> Random.State.int rng n)
        |> Array.to_list |> List.sort_uniq compare |> Array.of_list
      in
      let s = Matrix.sub m nodes in
      let ok = ref true in
      Matrix.iter_pairs s (fun i j v ->
          if Float.abs (v -. Matrix.get m nodes.(i) nodes.(j)) > 1e-12 then
            ok := false);
      !ok)

let prop_floyd_warshall_idempotent =
  QCheck.Test.make ~name:"metric closure is idempotent and dominated" ~count:30
    QCheck.(pair (int_bound 1_000_000) (int_range 2 18))
    (fun (seed, n) ->
      let m = Synthetic.uniform_random ~seed ~n ~lo:1. ~hi:100. in
      let once = Shortest_path.floyd_warshall m in
      let twice = Shortest_path.floyd_warshall once in
      let dominated = ref true in
      Matrix.iter_pairs m (fun i j v ->
          if Matrix.get once i j > v +. 1e-9 then dominated := false);
      Matrix.equal ~eps:1e-9 once twice && !dominated
      && Dia_latency.Metric.is_metric once)

let prop_dijkstra_agrees_with_closure =
  QCheck.Test.make ~name:"dijkstra agrees with floyd-warshall" ~count:30
    QCheck.(pair (int_bound 1_000_000) (int_range 2 14))
    (fun (seed, n) ->
      (* A random connected graph: a path backbone plus random chords. *)
      let rng = Random.State.make [| seed |] in
      let g = Graph.create n in
      for v = 1 to n - 1 do
        Graph.add_edge g (v - 1) v (1. +. Random.State.float rng 50.)
      done;
      for _ = 1 to n do
        let a = Random.State.int rng n and b = Random.State.int rng n in
        if a <> b then Graph.add_edge g a b (1. +. Random.State.float rng 50.)
      done;
      let via_dijkstra = Shortest_path.all_pairs g in
      (* Same graph as a dense matrix with big entries for non-edges. *)
      let dense =
        Matrix.init n (fun i j ->
            match List.assoc_opt j (Graph.neighbors g i) with
            | Some w -> w
            | None -> 1e6)
      in
      Matrix.equal ~eps:1e-6 via_dijkstra (Shortest_path.floyd_warshall dense))

let prop_loader_cleanup_is_complete =
  QCheck.Test.make ~name:"loader cleanup yields complete positive matrices" ~count:30
    QCheck.(triple (int_bound 1_000_000) (int_range 2 20) (int_range 0 80))
    (fun (seed, n, missing_pct) ->
      let rng = Random.State.make [| seed |] in
      let entries =
        Array.init n (fun i ->
            Array.init n (fun j ->
                if i = j then Some 0.
                else if Random.State.int rng 100 < missing_pct then None
                else Some (1. +. Random.State.float rng 100.)))
      in
      let raw = { Loader.nodes = n; entries } in
      let survivors, m = Loader.complete_subset raw in
      Array.length survivors = Matrix.dim m
      && (Matrix.dim m <= 1 || Matrix.min_entry m > 0.))

let prop_workload_ids_dense_and_sorted =
  QCheck.Test.make ~name:"workload ids dense, times sorted" ~count:50
    QCheck.(pair (int_bound 1_000_000) (int_range 0 40))
    (fun (seed, count) ->
      let rng = Random.State.make [| seed |] in
      let ops =
        Dia_sim.Workload.of_list
          (List.init count (fun _ ->
               (Random.State.int rng 10, Random.State.float rng 100.)))
      in
      let ids = List.map (fun (o : Dia_sim.Workload.op) -> o.op_id) ops in
      let times = List.map (fun (o : Dia_sim.Workload.op) -> o.issue_time) ops in
      ids = List.init count Fun.id
      && times = List.sort Float.compare times)

let prop_clock_constraint_i_always_tight =
  QCheck.Test.make ~name:"synthesized clocks are exactly tight" ~count:40
    QCheck.(triple (int_bound 1_000_000) (int_range 1 6) (int_range 1 20))
    (fun (seed, k, extra) ->
      let n = k + extra in
      let m = Synthetic.internet_like ~seed n in
      let servers = Dia_placement.Placement.random ~seed ~k ~n in
      let p = Problem.all_nodes_clients m ~servers in
      let a = Dia_core.Nearest.assign p in
      let clock = Clock.synthesize p a in
      Float.abs (Clock.slack_i p a clock) < 1e-9 && Clock.slack_ii p a clock >= -1e-9)

let prop_lfb_structural_invariant =
  (* Section IV-B: "if a client is not assigned to its nearest server, it
     must not be the farthest client to its assigned server" — this is
     what makes LFB no worse than NSA. *)
  QCheck.Test.make ~name:"LFB: non-nearest clients are never the farthest" ~count:60
    QCheck.(triple (int_bound 1_000_000) (int_range 2 8) (int_range 2 40))
    (fun (seed, k, extra) ->
      let n = k + extra in
      let m = Synthetic.internet_like ~seed n in
      let servers = Dia_placement.Placement.random ~seed ~k ~n in
      let p = Problem.all_nodes_clients m ~servers in
      let a = Dia_core.Longest_first_batch.assign p in
      let ecc = Dia_core.Objective.eccentricities p a in
      let ok = ref true in
      for c = 0 to Problem.num_clients p - 1 do
        let s = Assignment.server_of a c in
        let on_nearest = s = Problem.nearest_server p c in
        let d = Problem.d_cs p c s in
        (* Distance ties can make a non-nearest client share the
           eccentricity; only a strict "farthest and strictly farther
           than every nearest-assigned client" would break the
           argument. *)
        if (not on_nearest) && d > ecc.(s) -. 1e-12 then begin
          (* c realises the eccentricity: some nearest-assigned client on
             s must realise it too, otherwise the invariant is broken. *)
          let witness = ref false in
          for c' = 0 to Problem.num_clients p - 1 do
            if Assignment.server_of a c' = s
               && Problem.nearest_server p c' = s
               && Problem.d_cs p c' s >= d -. 1e-12
            then witness := true
          done;
          if not !witness then ok := false
        end
      done;
      !ok)

let suite =
  [
    QCheck_alcotest.to_alcotest prop_synthetic_matrices_well_formed;
    QCheck_alcotest.to_alcotest prop_submatrix_inherits_structure;
    QCheck_alcotest.to_alcotest prop_floyd_warshall_idempotent;
    QCheck_alcotest.to_alcotest prop_dijkstra_agrees_with_closure;
    QCheck_alcotest.to_alcotest prop_loader_cleanup_is_complete;
    QCheck_alcotest.to_alcotest prop_workload_ids_dense_and_sorted;
    QCheck_alcotest.to_alcotest prop_clock_constraint_i_always_tight;
    QCheck_alcotest.to_alcotest prop_lfb_structural_invariant;
  ]
