(* Tests for Dia_sim.Engine. *)

module Engine = Dia_sim.Engine

let test_runs_in_time_order () =
  let engine = Engine.create () in
  let log = ref [] in
  Engine.schedule engine 3. (fun () -> log := 3 :: !log);
  Engine.schedule engine 1. (fun () -> log := 1 :: !log);
  Engine.schedule engine 2. (fun () -> log := 2 :: !log);
  Engine.run engine;
  Alcotest.(check (list int)) "ordered" [ 1; 2; 3 ] (List.rev !log)

let test_fifo_for_simultaneous_events () =
  let engine = Engine.create () in
  let log = ref [] in
  for i = 0 to 9 do
    Engine.schedule engine 5. (fun () -> log := i :: !log)
  done;
  Engine.run engine;
  Alcotest.(check (list int)) "fifo" [ 0; 1; 2; 3; 4; 5; 6; 7; 8; 9 ] (List.rev !log)

let test_clock_advances () =
  let engine = Engine.create () in
  let seen = ref [] in
  Engine.schedule engine 2.5 (fun () -> seen := Engine.now engine :: !seen);
  Engine.schedule engine 7. (fun () -> seen := Engine.now engine :: !seen);
  Engine.run engine;
  Alcotest.(check (list (float 1e-9))) "times" [ 2.5; 7. ] (List.rev !seen);
  Alcotest.(check (float 1e-9)) "final clock" 7. (Engine.now engine)

let test_events_scheduling_events () =
  let engine = Engine.create () in
  let count = ref 0 in
  let rec chain remaining =
    incr count;
    if remaining > 0 then Engine.schedule_after engine 1. (fun () -> chain (remaining - 1))
  in
  Engine.schedule engine 0. (fun () -> chain 4);
  Engine.run engine;
  Alcotest.(check int) "chained events" 5 !count;
  Alcotest.(check (float 1e-9)) "clock at end of chain" 4. (Engine.now engine)

let test_rejects_past_and_negative () =
  let engine = Engine.create () in
  Engine.schedule engine 5. (fun () ->
      Alcotest.(check bool) "past rejected" true
        (try
           Engine.schedule engine 1. ignore;
           false
         with Invalid_argument _ -> true));
  Engine.run engine;
  Alcotest.(check bool) "negative delay rejected" true
    (try
       Engine.schedule_after engine (-1.) ignore;
       false
     with Invalid_argument _ -> true)

let test_until_leaves_future_events_queued () =
  let engine = Engine.create () in
  let fired = ref [] in
  Engine.schedule engine 1. (fun () -> fired := 1 :: !fired);
  Engine.schedule engine 10. (fun () -> fired := 10 :: !fired);
  Engine.run ~until:5. engine;
  Alcotest.(check (list int)) "only early event" [ 1 ] (List.rev !fired);
  Alcotest.(check int) "late event pending" 1 (Engine.pending engine);
  Engine.run engine;
  Alcotest.(check (list int)) "late event eventually fires" [ 1; 10 ] (List.rev !fired)

let test_many_events_stress () =
  let engine = Engine.create () in
  let rng = Random.State.make [| 4 |] in
  let fired = ref [] in
  for i = 0 to 999 do
    let at = Random.State.float rng 100. in
    Engine.schedule engine at (fun () -> fired := (at, i) :: !fired)
  done;
  Engine.run engine;
  let times = List.rev_map fst !fired in
  let sorted = List.sort Float.compare times in
  Alcotest.(check int) "all fired" 1000 (List.length times);
  Alcotest.(check bool) "in order" true (times = sorted)

let suite =
  [
    Alcotest.test_case "events run in time order" `Quick test_runs_in_time_order;
    Alcotest.test_case "simultaneous events are FIFO" `Quick test_fifo_for_simultaneous_events;
    Alcotest.test_case "clock advances with events" `Quick test_clock_advances;
    Alcotest.test_case "events can schedule events" `Quick test_events_scheduling_events;
    Alcotest.test_case "past times and negative delays rejected" `Quick
      test_rejects_past_and_negative;
    Alcotest.test_case "run ~until leaves future events queued" `Quick
      test_until_leaves_future_events_queued;
    Alcotest.test_case "1000-event stress stays ordered" `Quick test_many_events_stress;
  ]
