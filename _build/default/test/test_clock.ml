(* Tests for Dia_core.Clock: the constructive proof of Section II-C. *)

module Synthetic = Dia_latency.Synthetic
module Problem = Dia_core.Problem
module Assignment = Dia_core.Assignment
module Objective = Dia_core.Objective
module Clock = Dia_core.Clock
module Algorithm = Dia_core.Algorithm

let random_instance seed ~n ~k =
  let m = Synthetic.internet_like ~seed n in
  let servers = Dia_placement.Placement.random ~seed ~k ~n in
  Problem.all_nodes_clients m ~servers

let test_synthesized_delta_is_objective () =
  let p = random_instance 1 ~n:20 ~k:4 in
  let a = Algorithm.run Algorithm.Greedy p in
  let clock = Clock.synthesize p a in
  Alcotest.(check (float 1e-9)) "delta = D(A)"
    (Objective.max_interaction_path p a)
    clock.Clock.delta

let prop_synthesized_offsets_feasible =
  QCheck.Test.make ~name:"synthesized offsets satisfy both constraints" ~count:80
    QCheck.(triple (int_bound 1_000_000) (int_range 1 6) (int_range 1 25))
    (fun (seed, k, extra) ->
      let p = random_instance seed ~n:(k + extra) ~k in
      List.for_all
        (fun algorithm ->
          let a = Algorithm.run ~seed algorithm p in
          Clock.feasible p a (Clock.synthesize p a))
        Algorithm.all)

let prop_smaller_delta_infeasible =
  (* Section II-C: no offsets can achieve delta < D(A). With the
     synthesised offsets, shrinking delta must break constraint (i)
     or (ii). (Constraint (ii) does not mention delta, so the binding
     failure appears in (i) once delta shrinks.) *)
  QCheck.Test.make ~name:"delta below D(A) breaks constraint (i)" ~count:60
    QCheck.(pair (int_bound 1_000_000) (int_range 1 5))
    (fun (seed, k) ->
      let p = random_instance seed ~n:(k + 10) ~k in
      let a = Algorithm.run Algorithm.Nearest_server p in
      let clock = Clock.synthesize p a in
      let shrunk = { clock with Clock.delta = clock.Clock.delta *. 0.99 } in
      not (Clock.constraint_i_ok p a shrunk))

let test_constraint_i_is_tight () =
  (* Some (client, server) pair must meet constraint (i) with equality —
     otherwise delta would not be minimal. *)
  let p = random_instance 7 ~n:25 ~k:5 in
  let a = Algorithm.run Algorithm.Greedy p in
  let clock = Clock.synthesize p a in
  Alcotest.(check (float 1e-9)) "zero slack in (i)" 0. (Clock.slack_i p a clock)

let test_interaction_time_equals_delta () =
  let p = random_instance 3 ~n:15 ~k:3 in
  let a = Algorithm.run Algorithm.Longest_first_batch p in
  let clock = Clock.synthesize p a in
  Alcotest.(check (float 1e-9)) "uniform interaction time" clock.Clock.delta
    (Clock.interaction_time clock)

let test_rejects_empty_instance () =
  let m = Synthetic.euclidean ~seed:1 ~n:3 ~side:10. in
  let p = Problem.make ~latency:m ~servers:[| 0 |] ~clients:[||] () in
  let a = Assignment.of_array p [||] in
  Alcotest.(check bool) "raises" true
    (try
       ignore (Clock.synthesize p a);
       false
     with Invalid_argument _ -> true)

let test_server_offsets_nonpositive_reach () =
  (* Every server's offset is D minus its longest reach; reaches are at
     most D (they are part of some interaction path bounded by D), so
     offsets are non-negative... only for servers on shortest reaches.
     What must hold universally: offset <= D - (longest reach including
     that server's own clients), and constraint (ii) slack >= 0. *)
  let p = random_instance 11 ~n:18 ~k:4 in
  let a = Algorithm.run Algorithm.Greedy p in
  let clock = Clock.synthesize p a in
  Alcotest.(check bool) "constraint (ii) holds" true (Clock.constraint_ii_ok p a clock)

let suite =
  [
    Alcotest.test_case "synthesized delta equals D(A)" `Quick
      test_synthesized_delta_is_objective;
    QCheck_alcotest.to_alcotest prop_synthesized_offsets_feasible;
    QCheck_alcotest.to_alcotest prop_smaller_delta_infeasible;
    Alcotest.test_case "constraint (i) is tight at the optimum" `Quick
      test_constraint_i_is_tight;
    Alcotest.test_case "interaction time equals delta" `Quick
      test_interaction_time_equals_delta;
    Alcotest.test_case "empty instances rejected" `Quick test_rejects_empty_instance;
    Alcotest.test_case "constraint (ii) holds for synthesized offsets" `Quick
      test_server_offsets_nonpositive_reach;
  ]
