(* Tests for Dia_core.Interaction. *)

module Synthetic = Dia_latency.Synthetic
module Problem = Dia_core.Problem
module Assignment = Dia_core.Assignment
module Objective = Dia_core.Objective
module Interaction = Dia_core.Interaction

let instance seed ~n ~k =
  let m = Synthetic.internet_like ~seed n in
  let servers = Dia_placement.Placement.random ~seed ~k ~n in
  Problem.all_nodes_clients m ~servers

let assignment p = Dia_core.Greedy.assign p

let test_path_decomposition_sums () =
  let p = instance 1 ~n:30 ~k:4 in
  let a = assignment p in
  for ci = 0 to 5 do
    for cj = 0 to 5 do
      let path = Interaction.path p a ci cj in
      Alcotest.(check (float 1e-9)) "legs sum to length"
        (path.Interaction.client_leg +. path.Interaction.server_leg
        +. path.Interaction.exit_leg)
        path.Interaction.length;
      Alcotest.(check (float 1e-9)) "matches objective's path"
        (Objective.path_length p a ci cj)
        path.Interaction.length
    done
  done

let test_worst_pair_is_objective () =
  let p = instance 2 ~n:40 ~k:5 in
  let a = assignment p in
  match Interaction.worst_pairs ~count:3 p a with
  | worst :: rest ->
      Alcotest.(check (float 1e-9)) "head is D(A)"
        (Objective.max_interaction_path p a)
        worst.Interaction.length;
      List.iter
        (fun next ->
          Alcotest.(check bool) "descending" true
            (next.Interaction.length <= worst.Interaction.length +. 1e-9))
        rest
  | [] -> Alcotest.fail "no pairs"

let test_client_worst_bounded_by_objective () =
  let p = instance 3 ~n:30 ~k:4 in
  let a = assignment p in
  let d = Objective.max_interaction_path p a in
  let achieved = ref false in
  for c = 0 to Problem.num_clients p - 1 do
    let worst = Interaction.client_worst p a c in
    Alcotest.(check bool) "path involves c" true
      (worst.Interaction.from_client = c || worst.Interaction.to_client = c);
    Alcotest.(check bool) "bounded by D" true (worst.Interaction.length <= d +. 1e-9);
    if worst.Interaction.length >= d -. 1e-9 then achieved := true
  done;
  Alcotest.(check bool) "some client realises D" true !achieved

let test_client_worst_at_least_round_trip () =
  let p = instance 4 ~n:20 ~k:3 in
  let a = assignment p in
  for c = 0 to Problem.num_clients p - 1 do
    let worst = Interaction.client_worst p a c in
    let s = Assignment.server_of a c in
    Alcotest.(check bool) "at least the round trip" true
      (worst.Interaction.length >= (2. *. Problem.d_cs p c s) -. 1e-9)
  done

let test_server_contribution () =
  let p = instance 5 ~n:40 ~k:5 in
  let a = assignment p in
  let contributions = Interaction.server_contribution p a in
  (match contributions with
  | (_, top) :: _ ->
      Alcotest.(check (float 1e-9)) "top contribution is D"
        (Objective.max_interaction_path p a)
        top
  | [] -> Alcotest.fail "no servers");
  let used = Array.to_list (Assignment.used_servers p a) in
  Alcotest.(check int) "one entry per used server" (List.length used)
    (List.length contributions)

let test_breakdown_sums_to_objective () =
  let p = instance 6 ~n:30 ~k:4 in
  let a = assignment p in
  let client_legs, server_leg = Interaction.breakdown p a in
  Alcotest.(check (float 1e-9)) "sums to D"
    (Objective.max_interaction_path p a)
    (client_legs +. server_leg)

let test_nearest_server_has_larger_server_share () =
  (* The paper's critique, measured through the breakdown: NSA's worst
     path is dominated by the inter-server leg more than Greedy's. *)
  let shares algorithm =
    let total_share = ref 0. in
    for seed = 0 to 4 do
      let p = instance seed ~n:60 ~k:8 in
      let a = Dia_core.Algorithm.run algorithm p in
      let client_legs, server_leg = Interaction.breakdown p a in
      total_share := !total_share +. (server_leg /. (client_legs +. server_leg))
    done;
    !total_share /. 5.
  in
  let nsa = shares Dia_core.Algorithm.Nearest_server in
  let greedy = shares Dia_core.Algorithm.Greedy in
  Alcotest.(check bool)
    (Printf.sprintf "NSA server share %.2f > greedy %.2f" nsa greedy)
    true (nsa > greedy)

let suite =
  [
    Alcotest.test_case "path decomposition sums" `Quick test_path_decomposition_sums;
    Alcotest.test_case "worst pair equals the objective" `Quick test_worst_pair_is_objective;
    Alcotest.test_case "client worst bounded by objective" `Quick
      test_client_worst_bounded_by_objective;
    Alcotest.test_case "client worst at least the round trip" `Quick
      test_client_worst_at_least_round_trip;
    Alcotest.test_case "server contributions" `Quick test_server_contribution;
    Alcotest.test_case "breakdown sums to the objective" `Quick
      test_breakdown_sums_to_objective;
    Alcotest.test_case "NSA pays in the inter-server leg" `Quick
      test_nearest_server_has_larger_server_share;
  ]
