(* Tests for Dia_core.Zone_based — the related-work baseline. *)

module Synthetic = Dia_latency.Synthetic
module Problem = Dia_core.Problem
module Assignment = Dia_core.Assignment
module Objective = Dia_core.Objective
module Zone_based = Dia_core.Zone_based
module Greedy = Dia_core.Greedy

let instance ?capacity seed ~n ~k =
  let m = Synthetic.internet_like ~seed n in
  let servers = Dia_placement.Placement.random ~seed ~k ~n in
  Problem.all_nodes_clients ?capacity m ~servers

let test_assigns_everyone () =
  let p = instance 1 ~n:50 ~k:6 in
  let a = Zone_based.assign p in
  Alcotest.(check bool) "all assigned" true
    (Array.for_all (fun s -> s >= 0) (Assignment.to_array a))

let test_deterministic () =
  let p = instance 2 ~n:40 ~k:5 in
  Alcotest.(check bool) "same output" true
    (Assignment.equal (Zone_based.assign p) (Zone_based.assign p))

let test_respects_capacity () =
  let p = instance ~capacity:6 3 ~n:30 ~k:6 in
  let a = Zone_based.assign p in
  Alcotest.(check bool) "capacitated" true (Assignment.respects_capacity p a)

let test_zone_count_validated () =
  let p = instance 4 ~n:10 ~k:3 in
  Alcotest.(check bool) "raises" true
    (try ignore (Zone_based.assign ~zones:0 p); false
     with Invalid_argument _ -> true)

let test_fewer_zones_than_clients () =
  let p = instance 5 ~n:25 ~k:4 in
  let a = Zone_based.assign ~zones:2 p in
  (* At most two servers end up used (one per zone, absent capacity
     pressure). *)
  Alcotest.(check bool) "at most 2 used servers" true
    (Array.length (Assignment.used_servers p a) <= 2)

let test_generally_beaten_by_greedy () =
  (* Section VI's claim, measured: optimising client-server latency alone
     loses to the paper's objective-aware Greedy on most instances. *)
  let greedy_wins = ref 0 in
  let total = 12 in
  for seed = 0 to total - 1 do
    let p = instance seed ~n:80 ~k:8 in
    let zone = Objective.max_interaction_path p (Zone_based.assign p) in
    let greedy = Objective.max_interaction_path p (Greedy.assign p) in
    if greedy <= zone +. 1e-9 then incr greedy_wins
  done;
  Alcotest.(check bool)
    (Printf.sprintf "greedy wins %d/%d" !greedy_wins total)
    true
    (!greedy_wins >= total - 2)

let test_single_client_single_zone () =
  let p = instance 6 ~n:12 ~k:4 in
  let p =
    Problem.make
      ~latency:(Problem.latency p)
      ~servers:(Problem.servers p)
      ~clients:[| 0 |] ()
  in
  let a = Zone_based.assign p in
  Alcotest.(check int) "one client assigned somewhere" 1 (Assignment.num_clients a)

let suite =
  [
    Alcotest.test_case "assigns everyone" `Quick test_assigns_everyone;
    Alcotest.test_case "deterministic" `Quick test_deterministic;
    Alcotest.test_case "respects capacity" `Quick test_respects_capacity;
    Alcotest.test_case "zone count validated" `Quick test_zone_count_validated;
    Alcotest.test_case "fewer zones than clients" `Quick test_fewer_zones_than_clients;
    Alcotest.test_case "generally beaten by greedy" `Quick test_generally_beaten_by_greedy;
    Alcotest.test_case "single client" `Quick test_single_client_single_zone;
  ]
