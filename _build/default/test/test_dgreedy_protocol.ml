(* Tests for Dia_sim.Dgreedy_protocol: the message-level protocol must
   reach the same kind of fixpoint as the centralized algorithm. *)

module Problem = Dia_core.Problem
module Assignment = Dia_core.Assignment
module Objective = Dia_core.Objective
module Nearest = Dia_core.Nearest
module Dgreedy_protocol = Dia_sim.Dgreedy_protocol

let instance ?capacity seed ~n ~k =
  let matrix = Dia_latency.Synthetic.internet_like ~seed n in
  let servers = Dia_placement.Placement.random ~seed ~k ~n in
  Problem.all_nodes_clients ?capacity matrix ~servers

let test_no_worse_than_nearest () =
  for seed = 0 to 4 do
    let p = instance seed ~n:30 ~k:4 in
    let result = Dgreedy_protocol.run p in
    let nearest_d = Objective.max_interaction_path p (Nearest.assign p) in
    Alcotest.(check bool)
      (Printf.sprintf "seed %d: %.1f <= %.1f" seed result.objective nearest_d)
      true
      (result.objective <= nearest_d +. 1e-6)
  done

let test_bootstrap_is_nearest_server () =
  (* With no jitter, the clients' probe-and-join phase must produce
     exactly Nearest-Server Assignment, so the protocol's initial
     objective matches it. *)
  let p = instance 7 ~n:25 ~k:5 in
  let result = Dgreedy_protocol.run p in
  Alcotest.(check (float 1e-6)) "initial = NSA"
    (Objective.max_interaction_path p (Nearest.assign p))
    result.initial_objective

let test_local_optimality () =
  (* At termination no single client move may reduce D — the same
     fixpoint property as the centralized algorithm. *)
  let p = instance 3 ~n:24 ~k:4 in
  let result = Dgreedy_protocol.run p in
  let a = Assignment.to_array result.assignment in
  let d = result.objective in
  let improvable = ref false in
  for c = 0 to Problem.num_clients p - 1 do
    let original = a.(c) in
    for s = 0 to Problem.num_servers p - 1 do
      if s <> original then begin
        a.(c) <- s;
        let d' = Objective.max_interaction_path p (Assignment.unsafe_of_array a) in
        if d' < d -. 1e-6 then improvable := true;
        a.(c) <- original
      end
    done
  done;
  Alcotest.(check bool) "no improving move" false !improvable

let test_matches_centralized_quality () =
  (* Visit order differs, so assignments may differ, but the final
     objective should land close to the centralized one. *)
  for seed = 10 to 14 do
    let p = instance seed ~n:40 ~k:5 in
    let protocol_d = (Dgreedy_protocol.run p).objective in
    let central_d =
      Objective.max_interaction_path p (Dia_core.Distributed_greedy.assign p)
    in
    Alcotest.(check bool)
      (Printf.sprintf "seed %d: protocol %.1f vs centralized %.1f" seed protocol_d
         central_d)
      true
      (protocol_d <= central_d *. 1.25 +. 1e-6)
  done

let test_every_client_assigned () =
  let p = instance 2 ~n:35 ~k:6 in
  let result = Dgreedy_protocol.run p in
  Alcotest.(check int) "assignment complete" 35
    (Assignment.num_clients result.assignment)

let test_capacity_respected () =
  let p = instance ~capacity:5 6 ~n:20 ~k:5 in
  let result = Dgreedy_protocol.run p in
  Alcotest.(check bool) "capacitated" true
    (Assignment.respects_capacity p result.assignment)

let test_single_server () =
  let p = instance 8 ~n:12 ~k:1 in
  let result = Dgreedy_protocol.run p in
  Alcotest.(check int) "no modifications possible" 0 result.modifications;
  Alcotest.(check (float 1e-6)) "objective equals NSA"
    (Objective.max_interaction_path p (Nearest.assign p))
    result.objective

let test_message_accounting () =
  let p = instance 9 ~n:20 ~k:4 in
  let result = Dgreedy_protocol.run p in
  (* At minimum: bootstrap probes (2 messages per client-server pair),
     joins and accepts, inter-server probes, init broadcasts. *)
  let floor = (2 * 20 * 4) + (2 * 20) + (4 * 3) + (4 * 3) in
  Alcotest.(check bool)
    (Printf.sprintf "%d messages >= floor %d" result.messages floor)
    true
    (result.messages >= floor);
  Alcotest.(check bool) "protocol took wall time" true (result.wall_duration > 0.)

let test_jittered_measurements_still_terminate () =
  let p = instance 11 ~n:20 ~k:4 in
  let rng = Random.State.make [| 1 |] in
  let jitter ~src:_ ~dst:_ ~base = base *. (0.9 +. Random.State.float rng 0.2) in
  let result = Dgreedy_protocol.run ~jitter p in
  Alcotest.(check int) "all assigned" 20 (Assignment.num_clients result.assignment);
  (* With noisy measurements the objective is still evaluated on true
     latencies and must remain finite and no worse than ~NSA by much. *)
  Alcotest.(check bool) "objective finite" true (Float.is_finite result.objective)

let test_rejects_empty () =
  let matrix = Dia_latency.Synthetic.internet_like ~seed:1 4 in
  let p =
    Problem.make ~latency:matrix ~servers:[| 0; 1 |] ~clients:[||] ()
  in
  Alcotest.(check bool) "raises" true
    (try
       ignore (Dgreedy_protocol.run p);
       false
     with Invalid_argument _ -> true)

let suite =
  [
    Alcotest.test_case "never worse than Nearest-Server" `Quick test_no_worse_than_nearest;
    Alcotest.test_case "bootstrap reproduces Nearest-Server" `Quick
      test_bootstrap_is_nearest_server;
    Alcotest.test_case "local optimality at termination" `Quick test_local_optimality;
    Alcotest.test_case "matches centralized quality" `Quick test_matches_centralized_quality;
    Alcotest.test_case "every client assigned" `Quick test_every_client_assigned;
    Alcotest.test_case "capacity respected" `Quick test_capacity_respected;
    Alcotest.test_case "single-server degenerate case" `Quick test_single_server;
    Alcotest.test_case "message accounting" `Quick test_message_accounting;
    Alcotest.test_case "terminates under measurement jitter" `Quick
      test_jittered_measurements_still_terminate;
    Alcotest.test_case "empty instance rejected" `Quick test_rejects_empty;
  ]
