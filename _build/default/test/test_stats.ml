(* Tests for Dia_stats. *)

module Summary = Dia_stats.Summary
module Percentile = Dia_stats.Percentile
module Cdf = Dia_stats.Cdf
module Table = Dia_stats.Table
module Ascii_plot = Dia_stats.Ascii_plot

let checkf = Alcotest.(check (float 1e-9))

let test_summary_known_values () =
  let s = Summary.of_array [| 2.; 4.; 4.; 4.; 5.; 5.; 7.; 9. |] in
  Alcotest.(check int) "count" 8 s.Summary.count;
  checkf "mean" 5. s.Summary.mean;
  checkf "stddev" 2. s.Summary.stddev;
  checkf "min" 2. s.Summary.min;
  checkf "max" 9. s.Summary.max;
  checkf "median" 4.5 s.Summary.median

let test_summary_odd_median () =
  let s = Summary.of_list [ 3.; 1.; 2. ] in
  checkf "median" 2. s.Summary.median

let test_summary_empty_and_nan () =
  let s = Summary.of_array [||] in
  Alcotest.(check int) "count" 0 s.Summary.count;
  Alcotest.(check bool) "mean nan" true (Float.is_nan s.Summary.mean);
  Alcotest.(check bool) "nan rejected" true
    (try
       ignore (Summary.of_array [| nan |]);
       false
     with Invalid_argument _ -> true)

let test_percentile_interpolation () =
  let data = [| 10.; 20.; 30.; 40. |] in
  checkf "p0" 10. (Percentile.compute data 0.);
  checkf "p100" 40. (Percentile.compute data 100.);
  checkf "p50" 25. (Percentile.compute data 50.);
  checkf "p25" 17.5 (Percentile.compute data 25.)

let test_percentile_many_shares_sort () =
  let data = [| 3.; 1.; 2. |] in
  let pairs = Percentile.many data [ 0.; 50.; 100. ] in
  Alcotest.(check (list (pair (float 1e-9) (float 1e-9))))
    "pairs"
    [ (0., 1.); (50., 2.); (100., 3.) ]
    pairs

let test_percentile_validation () =
  Alcotest.(check bool) "empty" true
    (try ignore (Percentile.compute [||] 50.); false with Invalid_argument _ -> true);
  Alcotest.(check bool) "out of range" true
    (try ignore (Percentile.compute [| 1. |] 101.); false with Invalid_argument _ -> true)

let test_cdf_eval_and_count () =
  let cdf = Cdf.of_samples [| 1.; 2.; 2.; 3. |] in
  Alcotest.(check int) "count" 4 (Cdf.count cdf);
  Alcotest.(check int) "below 2" 3 (Cdf.count_below cdf 2.);
  Alcotest.(check int) "below 0" 0 (Cdf.count_below cdf 0.);
  Alcotest.(check int) "below 10" 4 (Cdf.count_below cdf 10.);
  checkf "eval mid" 0.75 (Cdf.eval cdf 2.);
  checkf "eval max" 1. (Cdf.eval cdf 3.)

let test_cdf_quantile () =
  let cdf = Cdf.of_samples [| 10.; 20.; 30. |] in
  checkf "q0" 10. (Cdf.quantile cdf 0.);
  checkf "q0.5" 20. (Cdf.quantile cdf 0.5);
  checkf "q1" 30. (Cdf.quantile cdf 1.)

let test_cdf_curve_monotone () =
  let cdf = Cdf.of_samples (Array.init 50 (fun i -> float_of_int (i * i))) in
  let curve = Cdf.curve cdf ~points:10 in
  Alcotest.(check int) "points" 10 (List.length curve);
  let ys = List.map snd curve in
  let rec monotone = function
    | a :: (b :: _ as rest) -> a <= b && monotone rest
    | _ -> true
  in
  Alcotest.(check bool) "monotone" true (monotone ys);
  checkf "ends at 1" 1. (List.nth ys 9)

let test_table_rendering () =
  let t = Table.make ~columns:[ "algo"; "D" ] in
  Table.add_row t [ "greedy"; "1.05" ];
  Table.add_floats t ~label:"nearest" [ 1.82 ];
  let rendered = Table.render t in
  Alcotest.(check bool) "has header" true
    (String.length rendered > 0
    && String.split_on_char '\n' rendered |> List.exists (fun l ->
           String.length l >= 2 && l.[0] = '|'));
  Alcotest.(check bool) "contains values" true
    (let contains needle haystack =
       let nl = String.length needle and hl = String.length haystack in
       let rec scan i = i + nl <= hl && (String.sub haystack i nl = needle || scan (i + 1)) in
       scan 0
     in
     contains "greedy" rendered && contains "1.820" rendered)

let test_table_arity_checked () =
  let t = Table.make ~columns:[ "a"; "b" ] in
  Alcotest.(check bool) "raises" true
    (try Table.add_row t [ "only one" ]; false with Invalid_argument _ -> true)

let test_ascii_plot_renders () =
  let series =
    [
      ("rising", List.init 20 (fun i -> (float_of_int i, float_of_int i)));
      ("falling", List.init 20 (fun i -> (float_of_int i, float_of_int (20 - i))));
    ]
  in
  let plot = Ascii_plot.render ~width:40 ~height:10 series in
  let lines = String.split_on_char '\n' plot in
  Alcotest.(check bool) "several lines" true (List.length lines > 10);
  Alcotest.(check bool) "legend present" true
    (List.exists (fun l ->
         let contains needle haystack =
           let nl = String.length needle and hl = String.length haystack in
           let rec scan i = i + nl <= hl && (String.sub haystack i nl = needle || scan (i + 1)) in
           scan 0
         in
         contains "rising" l && contains "falling" l)
       lines)

let test_ascii_plot_validation () =
  Alcotest.(check bool) "no points" true
    (try ignore (Ascii_plot.render [ ("empty", []) ]); false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "too small" true
    (try ignore (Ascii_plot.render ~width:2 [ ("x", [ (0., 0.) ]) ]); false
     with Invalid_argument _ -> true)

let test_ascii_plot_constant_series () =
  (* A flat series must not divide by zero. *)
  let plot = Ascii_plot.render [ ("flat", [ (0., 5.); (1., 5.); (2., 5.) ]) ] in
  Alcotest.(check bool) "rendered" true (String.length plot > 0)

module Csv = Dia_stats.Csv

let test_csv_escaping () =
  Alcotest.(check string) "plain" "abc" (Csv.escape "abc");
  Alcotest.(check string) "comma" "\"a,b\"" (Csv.escape "a,b");
  Alcotest.(check string) "quote" "\"a\"\"b\"" (Csv.escape "a\"b")

let test_csv_render () =
  let doc = Csv.render ~header:[ "x"; "y" ] [ [ "1"; "2" ]; [ "3"; "4,5" ] ] in
  Alcotest.(check string) "document" "x,y\n1,2\n3,\"4,5\"\n" doc

let test_csv_arity_checked () =
  Alcotest.(check bool) "raises" true
    (try ignore (Csv.render ~header:[ "a" ] [ [ "1"; "2" ] ]); false
     with Invalid_argument _ -> true)

let test_csv_write_roundtrip () =
  let path = Filename.temp_file "dia_csv" ".csv" in
  Csv.write ~path ~header:[ "a" ] [ [ "1" ]; [ "2" ] ];
  let ic = open_in path in
  let len = in_channel_length ic in
  let contents = really_input_string ic len in
  close_in ic;
  Alcotest.(check string) "file contents" "a\n1\n2\n" contents

let suite =
  [
    Alcotest.test_case "summary known values" `Quick test_summary_known_values;
    Alcotest.test_case "summary odd median" `Quick test_summary_odd_median;
    Alcotest.test_case "summary empty and NaN" `Quick test_summary_empty_and_nan;
    Alcotest.test_case "percentile interpolation" `Quick test_percentile_interpolation;
    Alcotest.test_case "percentile many" `Quick test_percentile_many_shares_sort;
    Alcotest.test_case "percentile validation" `Quick test_percentile_validation;
    Alcotest.test_case "cdf eval and counts" `Quick test_cdf_eval_and_count;
    Alcotest.test_case "cdf quantile" `Quick test_cdf_quantile;
    Alcotest.test_case "cdf curve monotone" `Quick test_cdf_curve_monotone;
    Alcotest.test_case "table rendering" `Quick test_table_rendering;
    Alcotest.test_case "table arity checked" `Quick test_table_arity_checked;
    Alcotest.test_case "ascii plot renders with legend" `Quick test_ascii_plot_renders;
    Alcotest.test_case "ascii plot validation" `Quick test_ascii_plot_validation;
    Alcotest.test_case "ascii plot constant series" `Quick test_ascii_plot_constant_series;
    Alcotest.test_case "csv escaping" `Quick test_csv_escaping;
    Alcotest.test_case "csv render" `Quick test_csv_render;
    Alcotest.test_case "csv arity checked" `Quick test_csv_arity_checked;
    Alcotest.test_case "csv write roundtrip" `Quick test_csv_write_roundtrip;
  ]
