(* Tests for Dia_core.Lower_bound. *)

module Synthetic = Dia_latency.Synthetic
module Problem = Dia_core.Problem
module Assignment = Dia_core.Assignment
module Objective = Dia_core.Objective
module Lower_bound = Dia_core.Lower_bound
module Algorithm = Dia_core.Algorithm

let random_instance seed ~n ~k =
  let m = Synthetic.internet_like ~seed n in
  let servers = Dia_placement.Placement.random ~seed ~k ~n in
  Problem.all_nodes_clients m ~servers

let test_hand_computed_bound () =
  (* Two clients, two servers; every client pair picks its best server
     pair independently. *)
  let m = Dia_latency.Matrix.create 4 in
  let set = Dia_latency.Matrix.set m in
  (* servers: nodes 0,1; clients: nodes 2,3 *)
  set 0 1 2.;
  set 2 0 1.;
  set 2 1 10.;
  set 3 0 10.;
  set 3 1 1.;
  set 2 3 100.;
  let p = Problem.make ~latency:m ~servers:[| 0; 1 |] ~clients:[| 2; 3 |] () in
  (* Pair (c1, c2): best is s0 then s1: 1 + 2 + 1 = 4.
     Pair (c1, c1): min over s,s' of d+d(s,s')+d = 1+0+1 = 2. Same for c2.
     LB = 4. *)
  Alcotest.(check (float 1e-9)) "LB" 4. (Lower_bound.compute p);
  Alcotest.(check (float 1e-9)) "naive agrees" 4. (Lower_bound.naive p)

let prop_pruned_equals_naive =
  QCheck.Test.make ~name:"pruned lower bound equals naive" ~count:100
    QCheck.(triple (int_bound 1_000_000) (int_range 1 6) (int_range 1 20))
    (fun (seed, k, extra) ->
      let p = random_instance seed ~n:(k + extra) ~k in
      Float.abs (Lower_bound.compute p -. Lower_bound.naive p) <= 1e-9)

let prop_bound_below_every_algorithm =
  QCheck.Test.make ~name:"LB <= D(A) for every algorithm" ~count:60
    QCheck.(triple (int_bound 1_000_000) (int_range 1 5) (int_range 1 15))
    (fun (seed, k, extra) ->
      let p = random_instance seed ~n:(k + extra) ~k in
      let lb = Lower_bound.compute p in
      List.for_all
        (fun algorithm ->
          let a = Algorithm.run ~seed algorithm p in
          Objective.max_interaction_path p a >= lb -. 1e-9)
        Algorithm.all)

let prop_bound_below_optimum =
  QCheck.Test.make ~name:"LB <= optimal D" ~count:30
    QCheck.(pair (int_bound 1_000_000) (int_range 2 4))
    (fun (seed, k) ->
      let p = random_instance seed ~n:(k + 6) ~k in
      Lower_bound.compute p <= Dia_core.Brute_force.optimal_value p +. 1e-9)

let test_single_server_bound_is_tight () =
  (* With one server every interaction path is forced, so LB = D. *)
  let p = random_instance 3 ~n:12 ~k:1 in
  let a = Algorithm.run Algorithm.Nearest_server p in
  Alcotest.(check (float 1e-6)) "LB equals D"
    (Objective.max_interaction_path p a)
    (Lower_bound.compute p)

let test_normalized () =
  let p = random_instance 4 ~n:15 ~k:3 in
  let a = Algorithm.run Algorithm.Greedy p in
  let norm = Lower_bound.normalized p a in
  Alcotest.(check bool) "normalized >= 1" true (norm >= 1. -. 1e-9);
  Alcotest.(check (float 1e-9)) "normalized is the ratio"
    (Objective.max_interaction_path p a /. Lower_bound.compute p)
    norm

let test_no_clients () =
  let m = Synthetic.euclidean ~seed:1 ~n:4 ~side:10. in
  let p = Problem.make ~latency:m ~servers:[| 0 |] ~clients:[||] () in
  Alcotest.(check bool) "neg_infinity" true (Lower_bound.compute p = neg_infinity)

let suite =
  [
    Alcotest.test_case "hand-computed bound" `Quick test_hand_computed_bound;
    QCheck_alcotest.to_alcotest prop_pruned_equals_naive;
    QCheck_alcotest.to_alcotest prop_bound_below_every_algorithm;
    QCheck_alcotest.to_alcotest prop_bound_below_optimum;
    Alcotest.test_case "bound tight with a single server" `Quick
      test_single_server_bound_is_tight;
    Alcotest.test_case "normalized interactivity" `Quick test_normalized;
    Alcotest.test_case "no clients" `Quick test_no_clients;
  ]
