(* Tests for Dia_sim.Timewarp, Dia_sim.Tss, and Dia_sim.Repair. *)

module State = Dia_sim.State
module Workload = Dia_sim.Workload
module Timewarp = Dia_sim.Timewarp
module Tss = Dia_sim.Tss
module Repair = Dia_sim.Repair
module Protocol = Dia_sim.Protocol
module Problem = Dia_core.Problem
module Algorithm = Dia_core.Algorithm
module Clock = Dia_core.Clock

let op id issuer = { Workload.op_id = id; issuer; issue_time = float_of_int id }

let canonical clients ops_list =
  State.apply_all (State.initial ~clients) ops_list

(* -- Timewarp ----------------------------------------------------------- *)

let test_timewarp_in_order_no_rollbacks () =
  let warp = Timewarp.create ~clients:2 () in
  for i = 0 to 9 do
    let depth = Timewarp.execute warp ~timestamp:(float_of_int i) (op i (i mod 2)) in
    Alcotest.(check int) "no rollback" 0 depth
  done;
  Alcotest.(check int) "zero rollbacks" 0 (Timewarp.rollbacks warp);
  Alcotest.(check string) "canonical state"
    (State.digest (canonical 2 (List.init 10 (fun i -> op i (i mod 2)))))
    (State.digest (Timewarp.state warp))

let test_timewarp_straggler_repaired () =
  let warp = Timewarp.create ~clients:1 () in
  (* Deliver 0, 2, then the straggler 1. *)
  ignore (Timewarp.execute warp ~timestamp:0. (op 0 0));
  ignore (Timewarp.execute warp ~timestamp:2. (op 2 0));
  let depth = Timewarp.execute warp ~timestamp:1. (op 1 0) in
  Alcotest.(check int) "rolled back one entry" 1 depth;
  Alcotest.(check int) "one rollback" 1 (Timewarp.rollbacks warp);
  Alcotest.(check string) "state repaired to canonical order"
    (State.digest (canonical 1 [ op 0 0; op 1 0; op 2 0 ]))
    (State.digest (Timewarp.state warp))

let test_timewarp_without_repair_would_diverge () =
  (* Sanity: out-of-order application really is different (otherwise the
     repair tests prove nothing). *)
  let in_order = canonical 1 [ op 0 0; op 1 0; op 2 0 ] in
  let out_of_order = canonical 1 [ op 0 0; op 2 0; op 1 0 ] in
  Alcotest.(check bool) "orders differ" false (State.equal in_order out_of_order)

let test_timewarp_deep_rollback_across_snapshots () =
  let warp = Timewarp.create ~snapshot_every:8 ~clients:1 () in
  (* 100 in-order ops, then a straggler older than all of them. *)
  for i = 1 to 100 do
    ignore (Timewarp.execute warp ~timestamp:(float_of_int i) (op i 0))
  done;
  let depth = Timewarp.execute warp ~timestamp:0. (op 0 0) in
  Alcotest.(check int) "full depth" 100 depth;
  Alcotest.(check int) "max depth recorded" 100 (Timewarp.max_rollback_depth warp);
  Alcotest.(check string) "canonical after deep repair"
    (State.digest (canonical 1 (List.init 101 (fun i -> op i 0))))
    (State.digest (Timewarp.state warp))

let test_timewarp_random_arrival_orders () =
  (* Property: any arrival permutation converges to the canonical state. *)
  let rng = Random.State.make [| 12 |] in
  for _ = 1 to 20 do
    let n = 2 + Random.State.int rng 30 in
    let ops_list = List.init n (fun i -> op i (i mod 3)) in
    let shuffled =
      List.map (fun o -> (Random.State.float rng 1., o)) ops_list
      |> List.sort compare |> List.map snd
    in
    let warp = Timewarp.create ~snapshot_every:4 ~clients:3 () in
    List.iter
      (fun (o : Workload.op) ->
        ignore (Timewarp.execute warp ~timestamp:o.issue_time o))
      shuffled;
    Alcotest.(check string) "converged"
      (State.digest (canonical 3 ops_list))
      (State.digest (Timewarp.state warp))
  done

(* -- TSS ---------------------------------------------------------------- *)

let test_tss_in_order_no_divergence () =
  let sync = Tss.create ~clients:2 ~lag:5. in
  for i = 0 to 9 do
    Tss.advance sync ~now:(float_of_int i);
    Tss.deliver sync ~timestamp:(float_of_int i) (op i (i mod 2))
  done;
  let final = Tss.finish sync in
  Alcotest.(check int) "no divergences" 0 (Tss.divergences sync);
  Alcotest.(check int) "no drops" 0 (Tss.dropped sync);
  Alcotest.(check string) "canonical"
    (State.digest (canonical 2 (List.init 10 (fun i -> op i (i mod 2)))))
    (State.digest final)

let test_tss_detects_and_repairs_misordering () =
  let sync = Tss.create ~clients:1 ~lag:10. in
  (* Arrivals: op0, op2, op1 (all within the lag). Leading state goes
     wrong; when the trailing point passes them, it must be caught. *)
  Tss.advance sync ~now:0.;
  Tss.deliver sync ~timestamp:0. (op 0 0);
  Tss.deliver sync ~timestamp:2. (op 2 0);
  Tss.deliver sync ~timestamp:1. (op 1 0);
  let final = Tss.finish sync in
  Alcotest.(check bool) "divergence detected" true (Tss.divergences sync > 0);
  Alcotest.(check string) "trailing state canonical"
    (State.digest (canonical 1 [ op 0 0; op 1 0; op 2 0 ]))
    (State.digest final);
  Alcotest.(check string) "leading state repaired too"
    (State.digest final)
    (State.digest (Tss.leading sync))

let test_tss_drops_beyond_lag () =
  let sync = Tss.create ~clients:1 ~lag:1. in
  Tss.advance sync ~now:0.;
  Tss.deliver sync ~timestamp:0. (op 0 0);
  Tss.advance sync ~now:10.;
  (* An operation stamped 2 arrives when the trailing point is 9. *)
  Tss.deliver sync ~timestamp:2. (op 1 0);
  Alcotest.(check int) "dropped" 1 (Tss.dropped sync)

let test_tss_time_monotonicity_enforced () =
  let sync = Tss.create ~clients:1 ~lag:1. in
  Tss.advance sync ~now:5.;
  Alcotest.(check bool) "raises" true
    (try
       Tss.advance sync ~now:4.;
       false
     with Invalid_argument _ -> true)

let test_tss_validates_lag () =
  Alcotest.(check bool) "raises" true
    (try
       ignore (Tss.create ~clients:1 ~lag:0.);
       false
     with Invalid_argument _ -> true)

(* -- Repair over protocol reports ---------------------------------------- *)

let tight_report seed ~delta_scale =
  let matrix = Dia_latency.Synthetic.internet_like ~seed 14 in
  let servers = Dia_placement.Placement.random ~seed ~k:4 ~n:14 in
  let p = Problem.all_nodes_clients matrix ~servers in
  let a = Algorithm.run Algorithm.Greedy p in
  let clock = Clock.synthesize p a in
  let clock = { clock with Clock.delta = clock.Clock.delta *. delta_scale } in
  (* Distinct issue times: simultaneous operations arrive in engine order
     rather than id order and would trigger (correct but noisy)
     tie-break rollbacks even in a clean run. *)
  let workload =
    Workload.of_list (List.init 56 (fun i -> (i mod 14, float_of_int i *. 7.3)))
  in
  (p, Protocol.run p a clock workload)

let test_repair_clean_run_costs_nothing () =
  let _, report = tight_report 1 ~delta_scale:1.0 in
  let outcomes = Repair.timewarp report in
  Alcotest.(check int) "no rollbacks" 0 (Repair.total_rollbacks outcomes);
  Alcotest.(check bool) "all converged" true (Repair.all_converged_timewarp outcomes)

let test_repair_tight_delta_needs_rollbacks_but_converges () =
  let _, report = tight_report 2 ~delta_scale:0.4 in
  let outcomes = Repair.timewarp report in
  Alcotest.(check bool) "rollbacks happened" true (Repair.total_rollbacks outcomes > 0);
  Alcotest.(check bool) "still all converge" true
    (Repair.all_converged_timewarp outcomes)

let test_repair_tss_with_generous_lag_converges () =
  let _, report = tight_report 3 ~delta_scale:0.4 in
  let outcomes = Repair.tss ~lag:10_000. report in
  Alcotest.(check bool) "all converge" true (Repair.all_converged_tss outcomes)

let test_repair_tss_with_tiny_lag_drops () =
  let _, report = tight_report 4 ~delta_scale:0.2 in
  let outcomes = Repair.tss ~lag:0.001 report in
  Alcotest.(check bool) "some server drops operations" true
    (List.exists (fun (o : Repair.tss_outcome) -> o.Repair.dropped > 0) outcomes)

let test_canonical_state_matches_checker () =
  let _, report = tight_report 5 ~delta_scale:1.0 in
  let states = Dia_sim.Checker.replicated_states report in
  let canonical = Repair.canonical_state report in
  List.iter
    (fun (_, state) ->
      Alcotest.(check string) "checker states = canonical" (State.digest canonical)
        (State.digest state))
    states

let suite =
  [
    Alcotest.test_case "timewarp: in-order costs nothing" `Quick
      test_timewarp_in_order_no_rollbacks;
    Alcotest.test_case "timewarp: straggler repaired" `Quick test_timewarp_straggler_repaired;
    Alcotest.test_case "out-of-order execution really diverges" `Quick
      test_timewarp_without_repair_would_diverge;
    Alcotest.test_case "timewarp: deep rollback across snapshots" `Quick
      test_timewarp_deep_rollback_across_snapshots;
    Alcotest.test_case "timewarp: random arrival orders converge" `Quick
      test_timewarp_random_arrival_orders;
    Alcotest.test_case "tss: in-order costs nothing" `Quick test_tss_in_order_no_divergence;
    Alcotest.test_case "tss: misordering detected and repaired" `Quick
      test_tss_detects_and_repairs_misordering;
    Alcotest.test_case "tss: drops beyond the lag" `Quick test_tss_drops_beyond_lag;
    Alcotest.test_case "tss: time must be monotone" `Quick test_tss_time_monotonicity_enforced;
    Alcotest.test_case "tss: lag validated" `Quick test_tss_validates_lag;
    Alcotest.test_case "repair: clean run costs nothing" `Quick
      test_repair_clean_run_costs_nothing;
    Alcotest.test_case "repair: tight delta rolls back but converges" `Quick
      test_repair_tight_delta_needs_rollbacks_but_converges;
    Alcotest.test_case "repair: tss with generous lag converges" `Quick
      test_repair_tss_with_generous_lag_converges;
    Alcotest.test_case "repair: tss with tiny lag drops" `Quick
      test_repair_tss_with_tiny_lag_drops;
    Alcotest.test_case "canonical state matches checker" `Quick
      test_canonical_state_matches_checker;
  ]
