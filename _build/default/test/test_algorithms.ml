(* Tests for the four heuristic assignment algorithms, including the
   paper's worked examples (Fig. 4 and Fig. 5) and the approximation
   guarantees of Section IV. *)

module Matrix = Dia_latency.Matrix
module Synthetic = Dia_latency.Synthetic
module Metric = Dia_latency.Metric
module Problem = Dia_core.Problem
module Assignment = Dia_core.Assignment
module Objective = Dia_core.Objective
module Algorithm = Dia_core.Algorithm
module Nearest = Dia_core.Nearest
module Longest_first_batch = Dia_core.Longest_first_batch
module Greedy = Dia_core.Greedy
module Distributed_greedy = Dia_core.Distributed_greedy
module Brute_force = Dia_core.Brute_force

let objective = Objective.max_interaction_path

(* The paper's Fig. 4: servers s, s1, s2; clients c1, c2.
   d(c1, s) = d(c2, s) = a; d(c1, s1) = d(c2, s2) = a - eps; the remaining
   distances follow from shortest-path routing on the line
   s1 - c1 - s - c2 - s2. Nearest-Server yields 6a - 4eps; the optimum
   (both on s) yields 2a: ratio -> 3 as eps -> 0. *)
let fig4_instance ~a ~eps =
  let m = Matrix.create 5 in
  (* nodes: s=0, s1=1, s2=2, c1=3, c2=4 *)
  let set = Matrix.set m in
  set 3 0 a;
  set 4 0 a;
  set 3 1 (a -. eps);
  set 4 2 (a -. eps);
  set 3 4 (2. *. a);
  set 1 0 ((2. *. a) -. eps);
  set 2 0 ((2. *. a) -. eps);
  set 1 2 ((4. *. a) -. (2. *. eps));
  set 1 4 ((3. *. a) -. eps);
  set 2 3 ((3. *. a) -. eps);
  Problem.make ~latency:m ~servers:[| 0; 1; 2 |] ~clients:[| 3; 4 |] ()

let test_fig4_nearest_ratio_approaches_3 () =
  let a = 10. and eps = 0.01 in
  let p = fig4_instance ~a ~eps in
  let nsa = Nearest.assign p in
  Alcotest.(check (float 1e-9)) "NSA objective" ((6. *. a) -. (4. *. eps))
    (objective p nsa);
  let _, opt = Brute_force.optimal p in
  Alcotest.(check (float 1e-9)) "optimum" (2. *. a) opt;
  let ratio = objective p nsa /. opt in
  Alcotest.(check bool)
    (Printf.sprintf "ratio %.4f close to 3" ratio)
    true
    (ratio > 2.99 && ratio <= 3.)

(* The paper's Fig. 5: nearest-server gives D = 12, Longest-First-Batch
   groups both clients on s1 for D = 9.
   Nodes: c1=0, c2=1, s1=2, s2=3; d(c1,s1)=5, d(c2,s1)=4, d(c2,s2)=3,
   d(s1,s2)=4, d(c1,c2)=7, d(c1,s2)=7 (via c2). *)
let fig5_instance () =
  let m = Matrix.create 4 in
  let set = Matrix.set m in
  set 0 2 5.;
  set 1 2 4.;
  set 1 3 3.;
  set 2 3 4.;
  set 0 1 7.;
  set 0 3 7.;
  Problem.make ~latency:m ~servers:[| 2; 3 |] ~clients:[| 0; 1 |] ()

let test_fig5_lfb_beats_nearest () =
  let p = fig5_instance () in
  let nsa = Nearest.assign p in
  let lfb = Longest_first_batch.assign p in
  Alcotest.(check (float 1e-9)) "NSA objective is 12" 12. (objective p nsa);
  (* The paper's prose quotes 9 (= 5 + 4) for LFB, ignoring c1's own round
     trip of 2 x 5 = 10. Constraints (i) + (ii) of Section II-C force
     delta >= 2 d(c, sA(c)) — and the paper's own Greedy pseudocode
     includes the 2d(c, s) term — so the achievable minimum here is 10. *)
  Alcotest.(check (float 1e-9)) "LFB objective is 10" 10. (objective p lfb);
  (* LFB batches c2 onto c1's nearest server. *)
  Alcotest.(check int) "c1 on s1" 0 (Assignment.server_of lfb 0);
  Alcotest.(check int) "c2 on s1" 0 (Assignment.server_of lfb 1)

let random_instance ?capacity seed ~n ~k =
  let m = Synthetic.internet_like ~seed n in
  let servers = Dia_placement.Placement.random ~seed ~k ~n in
  Problem.all_nodes_clients ?capacity m ~servers

let all_assigned p a =
  Array.for_all
    (fun s -> s >= 0 && s < Problem.num_servers p)
    (Assignment.to_array a)

let prop_every_algorithm_produces_valid_assignment =
  QCheck.Test.make ~name:"every algorithm assigns every client" ~count:50
    QCheck.(triple (int_bound 1_000_000) (int_range 1 8) (int_range 0 40))
    (fun (seed, k, extra) ->
      let p = random_instance seed ~n:(k + extra) ~k in
      List.for_all
        (fun algorithm -> all_assigned p (Algorithm.run ~seed algorithm p))
        Algorithm.all)

let prop_nearest_assigns_nearest =
  QCheck.Test.make ~name:"uncapacitated NSA picks the nearest server" ~count:50
    QCheck.(pair (int_bound 1_000_000) (int_range 2 8))
    (fun (seed, k) ->
      let p = random_instance seed ~n:(k + 20) ~k in
      let a = Nearest.assign p in
      let ok = ref true in
      for c = 0 to Problem.num_clients p - 1 do
        if Problem.d_cs p c (Assignment.server_of a c)
           > Problem.d_cs p c (Problem.nearest_server p c) +. 1e-12
        then ok := false
      done;
      !ok)

let prop_lfb_no_worse_than_nearest =
  (* Section IV-B: the maximum interaction path length of LFB cannot
     exceed Nearest-Server Assignment's. *)
  QCheck.Test.make ~name:"LFB <= NSA on the objective" ~count:100
    QCheck.(triple (int_bound 1_000_000) (int_range 1 8) (int_range 0 40))
    (fun (seed, k, extra) ->
      let p = random_instance seed ~n:(k + extra) ~k in
      objective p (Longest_first_batch.assign p)
      <= objective p (Nearest.assign p) +. 1e-9)

let prop_dgreedy_no_worse_than_nearest =
  (* Distributed-Greedy starts from NSA and only commits improving moves. *)
  QCheck.Test.make ~name:"Distributed-Greedy <= NSA on the objective" ~count:60
    QCheck.(triple (int_bound 1_000_000) (int_range 1 6) (int_range 0 30))
    (fun (seed, k, extra) ->
      let p = random_instance seed ~n:(k + extra) ~k in
      objective p (Distributed_greedy.assign p)
      <= objective p (Nearest.assign p) +. 1e-9)

let prop_nearest_3_approx_on_metric_data =
  (* Theorem 2 requires the triangle inequality, so use Euclidean data. *)
  QCheck.Test.make ~name:"NSA is a 3-approximation on metric data" ~count:40
    QCheck.(pair (int_bound 1_000_000) (int_range 2 4))
    (fun (seed, k) ->
      let m = Synthetic.euclidean ~seed ~n:(k + 7) ~side:100. in
      let servers = Dia_placement.Placement.random ~seed ~k ~n:(k + 7) in
      let p = Problem.all_nodes_clients m ~servers in
      let opt = Brute_force.optimal_value p in
      objective p (Nearest.assign p) <= (3. *. opt) +. 1e-9)

let prop_heuristics_above_optimum =
  QCheck.Test.make ~name:"heuristics never beat the optimum" ~count:40
    QCheck.(pair (int_bound 1_000_000) (int_range 2 4))
    (fun (seed, k) ->
      let p = random_instance seed ~n:(k + 7) ~k in
      let opt = Brute_force.optimal_value p in
      List.for_all
        (fun algorithm ->
          objective p (Algorithm.run ~seed algorithm p) >= opt -. 1e-9)
        Algorithm.heuristics)

let prop_capacitated_respects_capacity =
  QCheck.Test.make ~name:"capacitated variants respect capacity" ~count:60
    QCheck.(triple (int_bound 1_000_000) (int_range 2 6) (int_range 1 5))
    (fun (seed, k, cap_slack) ->
      let n = k * 4 in
      let capacity = 4 + cap_slack in
      let p = random_instance ~capacity seed ~n ~k in
      List.for_all
        (fun algorithm ->
          let a = Algorithm.run ~seed algorithm p in
          Assignment.respects_capacity p a)
        [ Algorithm.Nearest_server; Algorithm.Longest_first_batch;
          Algorithm.Greedy; Algorithm.Distributed_greedy ])

let test_capacity_one_forces_perfect_spread () =
  (* With capacity 1 and |C| = |S| every server gets exactly one client. *)
  let n = 6 in
  let m = Synthetic.euclidean ~seed:5 ~n ~side:100. in
  let p =
    Problem.all_nodes_clients ~capacity:1 m ~servers:(Array.init n Fun.id)
  in
  List.iter
    (fun algorithm ->
      let a = Algorithm.run algorithm p in
      let loads = Assignment.loads p a in
      Alcotest.(check bool)
        (Algorithm.name algorithm ^ " spreads clients")
        true
        (Array.for_all (( = ) 1) loads))
    [ Algorithm.Nearest_server; Algorithm.Longest_first_batch;
      Algorithm.Greedy; Algorithm.Distributed_greedy ]

let test_greedy_single_cluster_uses_one_server () =
  (* All clients in one tight cluster near server 0, other servers far:
     greedy should put everyone on one server (inter-server latency would
     dominate otherwise). *)
  let m = Matrix.create 8 in
  let set = Matrix.set m in
  for i = 0 to 7 do
    for j = i + 1 to 7 do
      if i < 2 then set i j 500. else set i j 1.
    done
  done;
  (* servers 0 (far) and 1 (far from everything); clients 2..7 mutually
     close. Re-do: make server 1 close to the cluster. *)
  for j = 2 to 7 do
    set 1 j 2.
  done;
  let p =
    Problem.make ~latency:m ~servers:[| 0; 1 |] ~clients:[| 2; 3; 4; 5; 6; 7 |] ()
  in
  let a = Greedy.assign p in
  Alcotest.(check (array int)) "single used server" [| 1 |]
    (Assignment.used_servers p a)

let test_deterministic_algorithms () =
  let p = random_instance 77 ~n:40 ~k:5 in
  List.iter
    (fun algorithm ->
      let a = Algorithm.run algorithm p in
      let b = Algorithm.run algorithm p in
      Alcotest.(check bool)
        (Algorithm.name algorithm ^ " deterministic")
        true (Assignment.equal a b))
    Algorithm.heuristics

let test_single_client () =
  let p = random_instance 9 ~n:5 ~k:4 in
  let p =
    Problem.make
      ~latency:(Problem.latency p)
      ~servers:(Problem.servers p)
      ~clients:[| 0 |] ()
  in
  List.iter
    (fun algorithm ->
      let a = Algorithm.run algorithm p in
      Alcotest.(check bool)
        (Algorithm.name algorithm ^ " handles one client")
        true
        (objective p a = 2. *. Problem.d_cs p 0 (Assignment.server_of a 0)))
    Algorithm.heuristics

let test_greedy_near_optimal_on_random_instances () =
  (* The paper's headline: greedy is generally close to optimal. Checked
     loosely on small random instances. *)
  let worst = ref 1. in
  for seed = 0 to 19 do
    let p = random_instance seed ~n:10 ~k:3 in
    let opt = Brute_force.optimal_value p in
    let ratio = objective p (Greedy.assign p) /. opt in
    if ratio > !worst then worst := ratio
  done;
  Alcotest.(check bool)
    (Printf.sprintf "worst greedy/optimal ratio %.3f below 1.6" !worst)
    true (!worst < 1.6)

let prop_greedy_matches_reference =
  QCheck.Test.make ~name:"optimized greedy equals reference greedy" ~count:60
    QCheck.(quad (int_bound 1_000_000) (int_range 1 7) (int_range 0 30) bool)
    (fun (seed, k, extra, capacitated) ->
      let capacity = if capacitated then Some (max 1 ((k + extra + k - 1) / k)) else None in
      let p = random_instance ?capacity seed ~n:(k + extra) ~k in
      Assignment.equal (Greedy.assign p) (Greedy.assign_reference p))

let test_key_roundtrip () =
  List.iter
    (fun algorithm ->
      match Algorithm.of_key (Algorithm.key algorithm) with
      | Some a ->
          Alcotest.(check string) "roundtrip" (Algorithm.name algorithm) (Algorithm.name a)
      | None -> Alcotest.fail "key did not roundtrip")
    Algorithm.all;
  Alcotest.(check bool) "unknown key" true (Algorithm.of_key "nope" = None)

let suite =
  [
    Alcotest.test_case "Fig. 4: NSA ratio approaches 3" `Quick
      test_fig4_nearest_ratio_approaches_3;
    Alcotest.test_case "Fig. 5: LFB beats NSA" `Quick test_fig5_lfb_beats_nearest;
    QCheck_alcotest.to_alcotest prop_every_algorithm_produces_valid_assignment;
    QCheck_alcotest.to_alcotest prop_nearest_assigns_nearest;
    QCheck_alcotest.to_alcotest prop_lfb_no_worse_than_nearest;
    QCheck_alcotest.to_alcotest prop_dgreedy_no_worse_than_nearest;
    QCheck_alcotest.to_alcotest prop_nearest_3_approx_on_metric_data;
    QCheck_alcotest.to_alcotest prop_heuristics_above_optimum;
    QCheck_alcotest.to_alcotest prop_capacitated_respects_capacity;
    Alcotest.test_case "capacity 1 forces a perfect spread" `Quick
      test_capacity_one_forces_perfect_spread;
    Alcotest.test_case "greedy collapses a tight cluster onto one server" `Quick
      test_greedy_single_cluster_uses_one_server;
    Alcotest.test_case "heuristics are deterministic" `Quick test_deterministic_algorithms;
    Alcotest.test_case "single-client instances" `Quick test_single_client;
    Alcotest.test_case "greedy near optimal on random instances" `Slow
      test_greedy_near_optimal_on_random_instances;
    QCheck_alcotest.to_alcotest prop_greedy_matches_reference;
    Alcotest.test_case "algorithm keys roundtrip" `Quick test_key_roundtrip;
  ]
