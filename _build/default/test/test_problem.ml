(* Tests for Dia_core.Problem and Dia_core.Assignment. *)

module Matrix = Dia_latency.Matrix
module Synthetic = Dia_latency.Synthetic
module Problem = Dia_core.Problem
module Assignment = Dia_core.Assignment

let small_instance () =
  let m = Synthetic.euclidean ~seed:1 ~n:10 ~side:100. in
  Problem.make ~latency:m ~servers:[| 0; 3; 7 |] ~clients:[| 1; 2; 4; 5; 6; 8; 9 |] ()

let raises_invalid f =
  try
    ignore (f ());
    false
  with Invalid_argument _ -> true

let test_make_valid () =
  let p = small_instance () in
  Alcotest.(check int) "servers" 3 (Problem.num_servers p);
  Alcotest.(check int) "clients" 7 (Problem.num_clients p);
  Alcotest.(check bool) "uncapacitated" true (Problem.capacity p = None)

let test_make_rejects_duplicates () =
  let m = Matrix.create 5 in
  Alcotest.(check bool) "duplicate servers" true
    (raises_invalid (fun () ->
         Problem.make ~latency:m ~servers:[| 1; 1 |] ~clients:[| 0 |] ()))

let test_make_rejects_out_of_range () =
  let m = Matrix.create 5 in
  Alcotest.(check bool) "server oob" true
    (raises_invalid (fun () ->
         Problem.make ~latency:m ~servers:[| 5 |] ~clients:[| 0 |] ()));
  Alcotest.(check bool) "client oob" true
    (raises_invalid (fun () ->
         Problem.make ~latency:m ~servers:[| 0 |] ~clients:[| -1 |] ()))

let test_make_rejects_no_servers () =
  let m = Matrix.create 5 in
  Alcotest.(check bool) "no servers" true
    (raises_invalid (fun () ->
         Problem.make ~latency:m ~servers:[||] ~clients:[| 0 |] ()))

let test_make_rejects_infeasible_capacity () =
  let m = Matrix.create 5 in
  Alcotest.(check bool) "capacity too small" true
    (raises_invalid (fun () ->
         Problem.make ~capacity:1 ~latency:m ~servers:[| 0; 1 |]
           ~clients:[| 2; 3; 4 |] ()))

let test_clients_may_repeat_and_sit_on_servers () =
  let m = Matrix.create 5 in
  let p = Problem.make ~latency:m ~servers:[| 0; 1 |] ~clients:[| 0; 0; 1 |] () in
  Alcotest.(check int) "clients" 3 (Problem.num_clients p)

let test_all_nodes_clients () =
  let m = Synthetic.euclidean ~seed:1 ~n:8 ~side:10. in
  let p = Problem.all_nodes_clients m ~servers:[| 2; 5 |] in
  Alcotest.(check int) "every node is a client" 8 (Problem.num_clients p)

let test_distance_accessors () =
  let p = small_instance () in
  let m = Problem.latency p in
  Alcotest.(check (float 1e-9)) "d_cs"
    (Matrix.get m (Problem.clients p).(2) (Problem.servers p).(1))
    (Problem.d_cs p 2 1);
  Alcotest.(check (float 1e-9)) "d_ss"
    (Matrix.get m (Problem.servers p).(0) (Problem.servers p).(2))
    (Problem.d_ss p 0 2);
  Alcotest.(check (float 1e-9)) "d_cc"
    (Matrix.get m (Problem.clients p).(0) (Problem.clients p).(3))
    (Problem.d_cc p 0 3)

let test_nearest_server_is_minimal () =
  let p = small_instance () in
  for c = 0 to Problem.num_clients p - 1 do
    let nearest = Problem.nearest_server p c in
    for s = 0 to Problem.num_servers p - 1 do
      Alcotest.(check bool) "no closer server" true
        (Problem.d_cs p c nearest <= Problem.d_cs p c s)
    done
  done

let test_servers_by_distance_sorted () =
  let p = small_instance () in
  for c = 0 to Problem.num_clients p - 1 do
    let order = Problem.servers_by_distance p c in
    Alcotest.(check int) "all servers" (Problem.num_servers p) (Array.length order);
    for i = 1 to Array.length order - 1 do
      Alcotest.(check bool) "ascending" true
        (Problem.d_cs p c order.(i - 1) <= Problem.d_cs p c order.(i))
    done;
    Alcotest.(check int) "first is nearest" (Problem.nearest_server p c) order.(0)
  done

let test_with_capacity () =
  let p = small_instance () in
  let p' = Problem.with_capacity p (Some 3) in
  Alcotest.(check bool) "capacity set" true (Problem.capacity p' = Some 3);
  Alcotest.(check bool) "original untouched" true (Problem.capacity p = None);
  Alcotest.(check bool) "infeasible rejected" true
    (raises_invalid (fun () -> Problem.with_capacity p (Some 2)))

let test_assignment_validation () =
  let p = small_instance () in
  Alcotest.(check bool) "wrong length" true
    (raises_invalid (fun () -> Assignment.of_array p [| 0; 1 |]));
  Alcotest.(check bool) "bad server" true
    (raises_invalid (fun () -> Assignment.of_array p (Array.make 7 3)))

let test_assignment_loads_and_used () =
  let p = small_instance () in
  let a = Assignment.of_array p [| 0; 0; 1; 1; 1; 0; 0 |] in
  Alcotest.(check (array int)) "loads" [| 4; 3; 0 |] (Assignment.loads p a);
  Alcotest.(check (array int)) "used servers" [| 0; 1 |] (Assignment.used_servers p a)

let test_assignment_capacity_check () =
  let p = Problem.with_capacity (small_instance ()) (Some 4) in
  let ok = Assignment.of_array p [| 0; 0; 1; 1; 1; 0; 0 |] in
  let over = Assignment.of_array p [| 0; 0; 0; 0; 0; 1; 1 |] in
  Alcotest.(check bool) "within capacity" true (Assignment.respects_capacity p ok);
  Alcotest.(check bool) "over capacity" false (Assignment.respects_capacity p over)

let test_assignment_constant_and_random () =
  let p = small_instance () in
  let const = Assignment.constant p 2 in
  Alcotest.(check bool) "all on server 2" true
    (Array.for_all (( = ) 2) (Assignment.to_array const));
  let r = Assignment.random p ~seed:3 in
  Alcotest.(check int) "random covers all clients" 7 (Assignment.num_clients r)

let test_of_array_copies () =
  let p = small_instance () in
  let arr = [| 0; 0; 1; 1; 1; 0; 0 |] in
  let a = Assignment.of_array p arr in
  arr.(0) <- 2;
  Alcotest.(check int) "copy taken" 0 (Assignment.server_of a 0)

let suite =
  [
    Alcotest.test_case "make valid instance" `Quick test_make_valid;
    Alcotest.test_case "reject duplicate servers" `Quick test_make_rejects_duplicates;
    Alcotest.test_case "reject out-of-range nodes" `Quick test_make_rejects_out_of_range;
    Alcotest.test_case "reject empty server set" `Quick test_make_rejects_no_servers;
    Alcotest.test_case "reject infeasible capacity" `Quick test_make_rejects_infeasible_capacity;
    Alcotest.test_case "clients may repeat and share server nodes" `Quick
      test_clients_may_repeat_and_sit_on_servers;
    Alcotest.test_case "all_nodes_clients covers every node" `Quick test_all_nodes_clients;
    Alcotest.test_case "distance accessors agree with the matrix" `Quick test_distance_accessors;
    Alcotest.test_case "nearest_server is minimal" `Quick test_nearest_server_is_minimal;
    Alcotest.test_case "servers_by_distance sorted ascending" `Quick
      test_servers_by_distance_sorted;
    Alcotest.test_case "with_capacity" `Quick test_with_capacity;
    Alcotest.test_case "assignment validation" `Quick test_assignment_validation;
    Alcotest.test_case "assignment loads and used servers" `Quick test_assignment_loads_and_used;
    Alcotest.test_case "assignment capacity check" `Quick test_assignment_capacity_check;
    Alcotest.test_case "constant and random assignments" `Quick
      test_assignment_constant_and_random;
    Alcotest.test_case "of_array copies its input" `Quick test_of_array_copies;
  ]
