(* Tests for Dia_sim.Network. *)

module Engine = Dia_sim.Engine
module Network = Dia_sim.Network
module Matrix = Dia_latency.Matrix

let three_node_net engine =
  let m = Matrix.create 3 in
  Matrix.set m 0 1 10.;
  Matrix.set m 0 2 20.;
  Matrix.set m 1 2 5.;
  Network.of_matrix engine m

let test_delivery_after_latency () =
  let engine = Engine.create () in
  let net = three_node_net engine in
  let received = ref None in
  Network.on_receive net 1 (fun ~src payload ->
      received := Some (src, payload, Engine.now engine));
  Network.send net ~src:0 ~dst:1 "hello";
  Engine.run engine;
  match !received with
  | Some (src, payload, at) ->
      Alcotest.(check int) "source" 0 src;
      Alcotest.(check string) "payload" "hello" payload;
      Alcotest.(check (float 1e-9)) "arrival time" 10. at
  | None -> Alcotest.fail "message not delivered"

let test_messages_counted_even_unhandled () =
  let engine = Engine.create () in
  let net = three_node_net engine in
  Network.send net ~src:0 ~dst:2 "dropped";
  Engine.run engine;
  Alcotest.(check int) "counted" 1 (Network.messages_sent net)

let test_self_send_asynchronous () =
  let engine = Engine.create () in
  let net = three_node_net engine in
  let order = ref [] in
  Network.on_receive net 0 (fun ~src:_ _ -> order := "received" :: !order);
  Network.send net ~src:0 ~dst:0 "self";
  order := "sent" :: !order;
  Engine.run engine;
  Alcotest.(check (list string)) "send returns before delivery" [ "sent"; "received" ]
    (List.rev !order)

let test_jitter_applied () =
  let engine = Engine.create () in
  let m = Matrix.create 2 in
  Matrix.set m 0 1 10. ;
  let net =
    Network.create
      ~jitter:(fun ~src:_ ~dst:_ ~base -> base *. 2.)
      engine ~actors:2 ~latency:(Matrix.get m)
  in
  let at = ref nan in
  Network.on_receive net 1 (fun ~src:_ () -> at := Engine.now engine);
  Network.send net ~src:0 ~dst:1 ();
  Engine.run engine;
  Alcotest.(check (float 1e-9)) "doubled latency" 20. !at;
  Alcotest.(check (float 1e-9)) "last latency recorded" 20.
    (Network.latency_of_last_message net)

let test_negative_jitter_rejected () =
  let engine = Engine.create () in
  let net =
    Network.create
      ~jitter:(fun ~src:_ ~dst:_ ~base:_ -> -1.)
      engine ~actors:2
      ~latency:(fun _ _ -> 1.)
  in
  Alcotest.(check bool) "raises" true
    (try
       Network.send net ~src:0 ~dst:1 ();
       false
     with Invalid_argument _ -> true)

let test_out_of_bounds_actor () =
  let engine = Engine.create () in
  let net = three_node_net engine in
  Alcotest.(check bool) "send oob" true
    (try
       Network.send net ~src:0 ~dst:7 "x";
       false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "register oob" true
    (try
       Network.on_receive net (-1) (fun ~src:_ _ -> ());
       false
     with Invalid_argument _ -> true)

let test_concurrent_messages_ordered_by_arrival () =
  let engine = Engine.create () in
  let net = three_node_net engine in
  let log = ref [] in
  Network.on_receive net 2 (fun ~src _ -> log := src :: !log);
  (* 0 -> 2 takes 20; 1 -> 2 takes 5: the later-sent message overtakes. *)
  Network.send net ~src:0 ~dst:2 "slow";
  Network.send net ~src:1 ~dst:2 "fast";
  Engine.run engine;
  Alcotest.(check (list int)) "fast first" [ 1; 0 ] (List.rev !log)

let suite =
  [
    Alcotest.test_case "delivery after pairwise latency" `Quick test_delivery_after_latency;
    Alcotest.test_case "unhandled messages counted and dropped" `Quick
      test_messages_counted_even_unhandled;
    Alcotest.test_case "self-sends are asynchronous" `Quick test_self_send_asynchronous;
    Alcotest.test_case "jitter applied to every send" `Quick test_jitter_applied;
    Alcotest.test_case "negative jittered latency rejected" `Quick test_negative_jitter_rejected;
    Alcotest.test_case "out-of-bounds actors rejected" `Quick test_out_of_bounds_actor;
    Alcotest.test_case "messages ordered by arrival not send" `Quick
      test_concurrent_messages_ordered_by_arrival;
  ]
