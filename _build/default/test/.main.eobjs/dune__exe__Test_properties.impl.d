test/test_properties.ml: Array Dia_core Dia_latency Dia_placement Dia_sim Float Fun List QCheck QCheck_alcotest Random
