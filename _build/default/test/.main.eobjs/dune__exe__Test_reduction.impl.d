test/test_reduction.ml: Alcotest Dia_core Dia_setcover List Printf
