test/test_problem.ml: Alcotest Array Dia_core Dia_latency
