test/test_clock.ml: Alcotest Dia_core Dia_latency Dia_placement List QCheck QCheck_alcotest
