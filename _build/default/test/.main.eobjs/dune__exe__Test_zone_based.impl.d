test/test_zone_based.ml: Alcotest Array Dia_core Dia_latency Dia_placement Printf
