test/test_placement.ml: Alcotest Array Dia_latency Dia_placement Float Fun List Printf
