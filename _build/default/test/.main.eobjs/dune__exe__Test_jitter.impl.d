test/test_jitter.ml: Alcotest Array Dia_latency Float Printf
