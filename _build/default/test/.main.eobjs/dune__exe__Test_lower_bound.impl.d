test/test_lower_bound.ml: Alcotest Dia_core Dia_latency Dia_placement Float List QCheck QCheck_alcotest
