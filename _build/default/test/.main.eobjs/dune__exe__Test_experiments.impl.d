test/test_experiments.ml: Alcotest Array Dia_core Dia_experiments Dia_latency Dia_placement Dia_stats List String
