test/test_synthetic.ml: Alcotest Dia_latency Printf
