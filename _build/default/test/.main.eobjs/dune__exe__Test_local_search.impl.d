test/test_local_search.ml: Alcotest Array Dia_core Dia_latency Dia_placement Printf
