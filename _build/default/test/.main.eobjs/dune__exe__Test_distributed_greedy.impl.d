test/test_distributed_greedy.ml: Alcotest Array Dia_core Dia_latency Dia_placement
