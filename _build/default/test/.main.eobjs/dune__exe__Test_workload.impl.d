test/test_workload.ml: Alcotest Dia_sim List Printf
