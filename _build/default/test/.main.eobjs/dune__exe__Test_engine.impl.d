test/test_engine.ml: Alcotest Dia_sim Float List Random
