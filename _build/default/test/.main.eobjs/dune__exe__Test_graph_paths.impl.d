test/test_graph_paths.ml: Alcotest Array Dia_latency List
