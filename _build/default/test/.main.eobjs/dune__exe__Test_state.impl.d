test/test_state.ml: Alcotest Dia_core Dia_latency Dia_placement Dia_sim Float List
