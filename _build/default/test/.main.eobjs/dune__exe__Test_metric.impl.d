test/test_metric.ml: Alcotest Dia_latency Float
