test/test_network.ml: Alcotest Dia_latency Dia_sim List
