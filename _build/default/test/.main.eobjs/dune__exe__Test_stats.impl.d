test/test_stats.ml: Alcotest Array Dia_stats Filename Float List String
