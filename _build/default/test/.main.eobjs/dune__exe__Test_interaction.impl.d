test/test_interaction.ml: Alcotest Array Dia_core Dia_latency Dia_placement List Printf
