test/test_brute_force.ml: Alcotest Array Dia_core Dia_latency Dia_placement Float Printf
