test/test_loader.ml: Alcotest Array Dia_latency Filename
