test/test_matrix.ml: Alcotest Dia_latency Float
