test/test_dynamic.ml: Alcotest Array Dia_core Dia_latency Dia_placement Float List Printf QCheck QCheck_alcotest Random
