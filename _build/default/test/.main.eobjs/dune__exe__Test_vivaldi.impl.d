test/test_vivaldi.ml: Alcotest Array Dia_latency Float Printf Random
