test/main.mli:
