test/test_dgreedy_protocol.ml: Alcotest Array Dia_core Dia_latency Dia_placement Dia_sim Float Printf Random
