test/test_algorithms.ml: Alcotest Array Dia_core Dia_latency Dia_placement Fun List Printf QCheck QCheck_alcotest
