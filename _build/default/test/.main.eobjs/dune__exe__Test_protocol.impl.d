test/test_protocol.ml: Alcotest Dia_core Dia_latency Dia_placement Dia_sim Float List Printf QCheck QCheck_alcotest Random
