test/test_setcover.ml: Alcotest Array Dia_setcover Fun List Random
