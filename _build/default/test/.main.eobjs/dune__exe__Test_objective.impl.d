test/test_objective.ml: Alcotest Array Dia_core Dia_latency Float Fun QCheck QCheck_alcotest
