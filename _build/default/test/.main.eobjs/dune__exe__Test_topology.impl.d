test/test_topology.ml: Alcotest Dia_core Dia_latency Dia_placement Float Printf
