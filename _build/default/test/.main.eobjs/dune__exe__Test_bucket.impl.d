test/test_bucket.ml: Alcotest Dia_core Dia_latency Dia_placement Dia_sim List Printf
