test/test_repair.ml: Alcotest Dia_core Dia_latency Dia_placement Dia_sim List Random
