(* Tests for Dia_setcover.Reduction: Theorem 1's construction, exercised
   in both directions on concrete instances. *)

module Setcover = Dia_setcover.Setcover
module Reduction = Dia_setcover.Reduction
module Problem = Dia_core.Problem
module Objective = Dia_core.Objective
module Brute_force = Dia_core.Brute_force

let fig3_instance () =
  Setcover.make ~universe:4 ~subsets:[| [ 0 ]; [ 1 ]; [ 2; 3 ] |]

let test_fig3_structure () =
  (* Fig. 3: n = 4 clients, m = 3 subsets, K = 3 -> 9 servers. *)
  let r = Reduction.build (fig3_instance ()) ~k:3 in
  let p = Reduction.problem r in
  Alcotest.(check int) "clients" 4 (Problem.num_clients p);
  Alcotest.(check int) "servers" 9 (Problem.num_servers p);
  Alcotest.(check (float 1e-9)) "bound" 3. (Reduction.bound r)

let test_fig3_distances () =
  let r = Reduction.build (fig3_instance ()) ~k:3 in
  let p = Reduction.problem r in
  (* Client p1 (index 0) is linked to the first server of every group
     (subset Q1 = {p1}); group l's subset-j server has index l*3 + j. *)
  Alcotest.(check (float 1e-9)) "linked client-server" 1. (Problem.d_cs p 0 0);
  Alcotest.(check (float 1e-9)) "linked in group 2" 1. (Problem.d_cs p 0 3);
  (* p1 is not in Q2: route via a server of another group. *)
  Alcotest.(check (float 1e-9)) "unlinked client-server" 2. (Problem.d_cs p 0 1);
  (* Servers in different groups: direct link. *)
  Alcotest.(check (float 1e-9)) "cross-group servers" 1. (Problem.d_ss p 0 4);
  (* Servers in the same group: via another group. *)
  Alcotest.(check (float 1e-9)) "same-group servers" 2. (Problem.d_ss p 0 1)

let test_fig3_cover_to_assignment () =
  let r = Reduction.build (fig3_instance ()) ~k:3 in
  let a = Reduction.assignment_of_cover r [ 0; 1; 2 ] in
  let d = Objective.max_interaction_path (Reduction.problem r) a in
  Alcotest.(check bool) "D <= 3" true (d <= 3. +. 1e-9)

let test_fig3_assignment_to_cover () =
  let r = Reduction.build (fig3_instance ()) ~k:3 in
  let a = Reduction.assignment_of_cover r [ 0; 1; 2 ] in
  let cover = Reduction.cover_of_assignment r a in
  Alcotest.(check bool) "is a cover" true (Setcover.is_cover (fig3_instance ()) cover);
  Alcotest.(check bool) "size <= K" true (List.length cover <= 3)

let test_assignment_of_cover_validation () =
  let r = Reduction.build (fig3_instance ()) ~k:3 in
  Alcotest.(check bool) "non-cover rejected" true
    (try
       ignore (Reduction.assignment_of_cover r [ 0; 1 ]);
       false
     with Invalid_argument _ -> true)

let test_equivalence_on_fig3 () =
  let sc = fig3_instance () in
  (* Q has a cover of size 3 but not of size 2; the equivalence must hold
     on both sides of the threshold. *)
  Alcotest.(check bool) "holds at k=3" true (Reduction.holds sc ~k:3);
  Alcotest.(check bool) "holds at k=2" true (Reduction.holds sc ~k:2)

let test_equivalence_various_instances () =
  let instances =
    [
      (* Overlapping subsets, optimum 2. *)
      Setcover.make ~universe:4 ~subsets:[| [ 0; 1 ]; [ 1; 2 ]; [ 2; 3 ]; [ 0; 3 ] |];
      (* One subset covers everything. *)
      Setcover.make ~universe:3 ~subsets:[| [ 0; 1; 2 ]; [ 0 ]; [ 1 ] |];
      (* Disjoint singletons: optimum = universe size. *)
      Setcover.make ~universe:3 ~subsets:[| [ 0 ]; [ 1 ]; [ 2 ] |];
    ]
  in
  List.iteri
    (fun idx sc ->
      for k = 1 to 3 do
        Alcotest.(check bool)
          (Printf.sprintf "instance %d, k=%d" idx k)
          true
          (Reduction.holds sc ~k)
      done)
    instances

let test_server_role () =
  let r = Reduction.build (fig3_instance ()) ~k:2 in
  Alcotest.(check (pair int int)) "role of server 0" (0, 0) (Reduction.server_role r 0);
  Alcotest.(check (pair int int)) "role of server 5" (1, 2) (Reduction.server_role r 5)

let test_optimal_assignment_for_coverable_instance_is_3_or_less () =
  let sc = Setcover.make ~universe:4 ~subsets:[| [ 0; 1 ]; [ 2; 3 ] |] in
  let r = Reduction.build sc ~k:2 in
  let opt = Brute_force.optimal_value (Reduction.problem r) in
  Alcotest.(check bool) "coverable: D* <= 3" true (opt <= 3. +. 1e-9)

let test_uncoverable_bound_exceeded () =
  (* Three disjoint singletons but only K = 2 groups: no size-2 cover, so
     every assignment must exceed 3. *)
  let sc = Setcover.make ~universe:3 ~subsets:[| [ 0 ]; [ 1 ]; [ 2 ] |] in
  let r = Reduction.build sc ~k:2 in
  let opt = Brute_force.optimal_value (Reduction.problem r) in
  Alcotest.(check bool) "D* > 3" true (opt > 3. +. 1e-9)

let suite =
  [
    Alcotest.test_case "Fig. 3 instance structure" `Quick test_fig3_structure;
    Alcotest.test_case "Fig. 3 routing distances" `Quick test_fig3_distances;
    Alcotest.test_case "cover -> assignment with D <= 3" `Quick test_fig3_cover_to_assignment;
    Alcotest.test_case "assignment -> cover" `Quick test_fig3_assignment_to_cover;
    Alcotest.test_case "assignment_of_cover validation" `Quick
      test_assignment_of_cover_validation;
    Alcotest.test_case "equivalence on Fig. 3" `Quick test_equivalence_on_fig3;
    Alcotest.test_case "equivalence on assorted instances" `Slow
      test_equivalence_various_instances;
    Alcotest.test_case "server role decoding" `Quick test_server_role;
    Alcotest.test_case "coverable instances stay within the bound" `Quick
      test_optimal_assignment_for_coverable_instance_is_3_or_less;
    Alcotest.test_case "uncoverable instances exceed the bound" `Quick
      test_uncoverable_bound_exceeded;
  ]
