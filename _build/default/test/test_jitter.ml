(* Tests for Dia_latency.Jitter. *)

module Jitter = Dia_latency.Jitter
module Matrix = Dia_latency.Matrix
module Synthetic = Dia_latency.Synthetic

let base () = Synthetic.euclidean ~seed:2 ~n:15 ~side:100.

let test_normal_quantile_known_values () =
  let check p expected =
    Alcotest.(check (float 1e-6))
      (Printf.sprintf "quantile %.3f" p)
      expected (Jitter.normal_quantile p)
  in
  check 0.5 0.;
  check 0.975 1.959964;
  check 0.025 (-1.959964);
  check 0.99 2.326348;
  check 0.001 (-3.090232)

let test_normal_quantile_rejects_bounds () =
  Alcotest.(check bool) "raises" true
    (try
       ignore (Jitter.normal_quantile 0.);
       false
     with Invalid_argument _ -> true)

let test_median_percentile_is_base () =
  let b = base () in
  let model = Jitter.make ~sigma:0.3 b in
  let p50 = Jitter.percentile_matrix model 50. in
  Alcotest.(check bool) "p50 = base" true (Matrix.equal ~eps:1e-6 b p50)

let test_percentiles_monotone () =
  let model = Jitter.make ~sigma:0.3 (base ()) in
  let p90 = Jitter.percentile_matrix model 90. in
  let p99 = Jitter.percentile_matrix model 99. in
  let ok = ref true in
  Matrix.iter_pairs p90 (fun i j v -> if Matrix.get p99 i j < v then ok := false);
  Alcotest.(check bool) "p99 >= p90 everywhere" true !ok

let test_zero_sigma_sample_is_base () =
  let b = base () in
  let model = Jitter.make ~sigma:0. b in
  Alcotest.(check bool) "no jitter" true (Matrix.equal ~eps:1e-9 b (Jitter.sample model))

let test_samples_vary () =
  let model = Jitter.make ~sigma:0.3 (base ()) in
  let s1 = Jitter.sample model in
  let s2 = Jitter.sample model in
  Alcotest.(check bool) "successive samples differ" false (Matrix.equal s1 s2)

let test_sample_distribution_median () =
  (* The empirical median of many samples of one entry should approach the
     base value. *)
  let b = base () in
  let model = Jitter.make ~sigma:0.4 ~seed:3 b in
  let values =
    Array.init 801 (fun _ -> Matrix.get (Jitter.sample model) 0 1)
  in
  Array.sort Float.compare values;
  let median = values.(400) in
  let expected = Matrix.get b 0 1 in
  Alcotest.(check bool)
    (Printf.sprintf "median %.2f near base %.2f" median expected)
    true
    (Float.abs (median -. expected) /. expected < 0.15)

let test_breach_probability_extremes () =
  let model = Jitter.make ~sigma:0.2 (base ()) in
  let p_tight = Jitter.breach_probability model ~delta:1. ~d:100. in
  let p_loose = Jitter.breach_probability model ~delta:10_000. ~d:100. in
  Alcotest.(check bool) "tight budget breaches" true (p_tight > 0.99);
  Alcotest.(check bool) "loose budget safe" true (p_loose < 0.01);
  Alcotest.(check (float 1e-9)) "at the median it is a coin flip" 0.5
    (Jitter.breach_probability model ~delta:100. ~d:100.)

let test_breach_probability_zero_sigma () =
  let model = Jitter.make ~sigma:0. (base ()) in
  Alcotest.(check (float 0.)) "deterministic breach" 1.
    (Jitter.breach_probability model ~delta:5. ~d:10.);
  Alcotest.(check (float 0.)) "deterministic safe" 0.
    (Jitter.breach_probability model ~delta:20. ~d:10.)

let suite =
  [
    Alcotest.test_case "normal quantile matches known values" `Quick
      test_normal_quantile_known_values;
    Alcotest.test_case "normal quantile validates input" `Quick
      test_normal_quantile_rejects_bounds;
    Alcotest.test_case "50th percentile is the base matrix" `Quick
      test_median_percentile_is_base;
    Alcotest.test_case "percentile matrices are monotone" `Quick test_percentiles_monotone;
    Alcotest.test_case "zero sigma samples equal the base" `Quick test_zero_sigma_sample_is_base;
    Alcotest.test_case "samples vary between draws" `Quick test_samples_vary;
    Alcotest.test_case "empirical median approaches the base" `Slow
      test_sample_distribution_median;
    Alcotest.test_case "breach probability extremes" `Quick test_breach_probability_extremes;
    Alcotest.test_case "breach probability with zero sigma" `Quick
      test_breach_probability_zero_sigma;
  ]
