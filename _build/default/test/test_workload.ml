(* Tests for Dia_sim.Workload. *)

module Workload = Dia_sim.Workload

let test_of_list_sorted_ids () =
  let ops = Workload.of_list [ (2, 5.); (0, 1.); (1, 3.) ] in
  let ids = List.map (fun (op : Workload.op) -> op.op_id) ops in
  let times = List.map (fun (op : Workload.op) -> op.issue_time) ops in
  Alcotest.(check (list int)) "dense ids" [ 0; 1; 2 ] ids;
  Alcotest.(check (list (float 1e-9))) "sorted times" [ 1.; 3.; 5. ] times

let test_of_list_rejects_negative_time () =
  Alcotest.(check bool) "raises" true
    (try
       ignore (Workload.of_list [ (0, -1.) ]);
       false
     with Invalid_argument _ -> true)

let test_rounds_shape () =
  let ops = Workload.rounds ~clients:3 ~rounds:4 ~period:10. in
  Alcotest.(check int) "count" 12 (Workload.count ops);
  Alcotest.(check (list int)) "all clients issue" [ 0; 1; 2 ] (Workload.issuers ops);
  let last = List.nth ops 11 in
  Alcotest.(check (float 1e-9)) "last round time" 30. last.Workload.issue_time

let test_poisson_deterministic_and_bounded () =
  let ops = Workload.poisson ~seed:3 ~clients:5 ~rate:0.5 ~horizon:20. in
  let ops' = Workload.poisson ~seed:3 ~clients:5 ~rate:0.5 ~horizon:20. in
  Alcotest.(check int) "deterministic" (Workload.count ops) (Workload.count ops');
  List.iter
    (fun (op : Workload.op) ->
      Alcotest.(check bool) "within horizon" true
        (op.issue_time >= 0. && op.issue_time <= 20.))
    ops

let test_poisson_rate_scales_volume () =
  let low = Workload.poisson ~seed:1 ~clients:10 ~rate:0.1 ~horizon:100. in
  let high = Workload.poisson ~seed:1 ~clients:10 ~rate:1.0 ~horizon:100. in
  Alcotest.(check bool)
    (Printf.sprintf "low %d << high %d" (Workload.count low) (Workload.count high))
    true
    (Workload.count high > 3 * Workload.count low)

let test_burst_simultaneous () =
  let ops = Workload.burst ~clients:4 ~at:7. in
  Alcotest.(check int) "count" 4 (Workload.count ops);
  List.iter
    (fun (op : Workload.op) ->
      Alcotest.(check (float 1e-9)) "same instant" 7. op.issue_time)
    ops;
  let ids = List.sort_uniq compare (List.map (fun (op : Workload.op) -> op.op_id) ops) in
  Alcotest.(check int) "ids still unique" 4 (List.length ids)

let test_validation () =
  Alcotest.(check bool) "bad rate" true
    (try
       ignore (Workload.poisson ~seed:0 ~clients:1 ~rate:0. ~horizon:1.);
       false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "bad period" true
    (try
       ignore (Workload.rounds ~clients:1 ~rounds:1 ~period:0.);
       false
     with Invalid_argument _ -> true)

let suite =
  [
    Alcotest.test_case "of_list sorts and numbers" `Quick test_of_list_sorted_ids;
    Alcotest.test_case "of_list validates times" `Quick test_of_list_rejects_negative_time;
    Alcotest.test_case "rounds shape" `Quick test_rounds_shape;
    Alcotest.test_case "poisson deterministic and bounded" `Quick
      test_poisson_deterministic_and_bounded;
    Alcotest.test_case "poisson rate scales volume" `Quick test_poisson_rate_scales_volume;
    Alcotest.test_case "burst is simultaneous with unique ids" `Quick test_burst_simultaneous;
    Alcotest.test_case "generator validation" `Quick test_validation;
  ]
