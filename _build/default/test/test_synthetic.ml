(* Tests for Dia_latency.Synthetic: the generators must actually have the
   Internet-like properties DESIGN.md promises (clustered heavy-tailed
   latencies, triangle violations), and be deterministic per seed. *)

module Matrix = Dia_latency.Matrix
module Metric = Dia_latency.Metric
module Synthetic = Dia_latency.Synthetic

let test_deterministic () =
  let a = Synthetic.internet_like ~seed:5 60 in
  let b = Synthetic.internet_like ~seed:5 60 in
  Alcotest.(check bool) "same seed same matrix" true (Matrix.equal a b)

let test_seed_sensitivity () =
  let a = Synthetic.internet_like ~seed:5 60 in
  let b = Synthetic.internet_like ~seed:6 60 in
  Alcotest.(check bool) "different seed different matrix" false (Matrix.equal a b)

let test_positive_entries () =
  let m = Synthetic.internet_like ~seed:2 80 in
  Alcotest.(check bool) "all entries positive" true (Matrix.min_entry m > 0.)

let test_internet_like_violates_triangle_inequality () =
  let m = Synthetic.internet_like ~seed:11 120 in
  let stats = Metric.triangle_violations ~samples:20_000 m in
  Alcotest.(check bool)
    (Printf.sprintf "violation fraction %.3f in King-like range"
       stats.violation_fraction)
    true
    (stats.violation_fraction > 0.02 && stats.violation_fraction < 0.40)

let test_internet_like_heavy_tail () =
  let m = Synthetic.internet_like ~seed:11 200 in
  (* Heavy tail: the max should be several times the mean. *)
  Alcotest.(check bool) "max >> mean" true
    (Matrix.max_entry m > 3. *. Matrix.mean_entry m)

let test_meridian_and_mit_shapes () =
  (* Full-size generation is exercised by the experiments; here we only
     check the documented dimensions via small probes of the API. *)
  let m = Synthetic.mit_like () in
  Alcotest.(check int) "mit size" 1024 (Matrix.dim m);
  Alcotest.(check bool) "mit positive" true (Matrix.min_entry m > 0.)

let test_grid_is_manhattan () =
  let m = Synthetic.grid ~rows:3 ~cols:4 ~spacing:2. in
  Alcotest.(check int) "dim" 12 (Matrix.dim m);
  (* node 0 = (0,0), node 11 = (2,3): distance (2+3)*2 = 10. *)
  Alcotest.(check (float 1e-9)) "corner to corner" 10. (Matrix.get m 0 11);
  Alcotest.(check bool) "grid is metric" true (Metric.is_metric m)

let test_uniform_random_bounds () =
  let m = Synthetic.uniform_random ~seed:1 ~n:30 ~lo:5. ~hi:10. in
  Alcotest.(check bool) "within bounds" true
    (Matrix.min_entry m >= 5. && Matrix.max_entry m <= 10.)

let test_uniform_random_rejects_nonpositive_lo () =
  Alcotest.(check bool) "raises" true
    (try
       ignore (Synthetic.uniform_random ~seed:1 ~n:3 ~lo:0. ~hi:1.);
       false
     with Invalid_argument _ -> true)

let test_grid_rejects_empty () =
  Alcotest.(check bool) "raises" true
    (try
       ignore (Synthetic.grid ~rows:0 ~cols:3 ~spacing:1.);
       false
     with Invalid_argument _ -> true)

let suite =
  [
    Alcotest.test_case "generation is deterministic per seed" `Quick test_deterministic;
    Alcotest.test_case "seeds matter" `Quick test_seed_sensitivity;
    Alcotest.test_case "entries are strictly positive" `Quick test_positive_entries;
    Alcotest.test_case "internet-like data violates triangle inequality" `Quick
      test_internet_like_violates_triangle_inequality;
    Alcotest.test_case "internet-like data is heavy tailed" `Quick test_internet_like_heavy_tail;
    Alcotest.test_case "mit-like stand-in has documented shape" `Slow test_meridian_and_mit_shapes;
    Alcotest.test_case "grid distances are Manhattan" `Quick test_grid_is_manhattan;
    Alcotest.test_case "uniform random respects bounds" `Quick test_uniform_random_bounds;
    Alcotest.test_case "uniform random validates lo" `Quick test_uniform_random_rejects_nonpositive_lo;
    Alcotest.test_case "grid validates dimensions" `Quick test_grid_rejects_empty;
  ]
