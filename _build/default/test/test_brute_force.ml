(* Tests for Dia_core.Brute_force. *)

module Synthetic = Dia_latency.Synthetic
module Problem = Dia_core.Problem
module Assignment = Dia_core.Assignment
module Objective = Dia_core.Objective
module Brute_force = Dia_core.Brute_force

let random_instance ?capacity seed ~n ~k =
  let m = Synthetic.internet_like ~seed n in
  let servers = Dia_placement.Placement.random ~seed ~k ~n in
  Problem.all_nodes_clients ?capacity m ~servers

(* Exhaustive enumeration without pruning, as an oracle. *)
let exhaustive_optimum p =
  let n = Problem.num_clients p and k = Problem.num_servers p in
  let capacity = match Problem.capacity p with None -> max_int | Some c -> c in
  let a = Array.make n 0 in
  let best = ref infinity in
  let rec enumerate i =
    if i = n then begin
      let load = Array.make k 0 in
      Array.iter (fun s -> load.(s) <- load.(s) + 1) a;
      if Array.for_all (fun l -> l <= capacity) load then
        best :=
          Float.min !best
            (Objective.max_interaction_path p (Assignment.unsafe_of_array a))
    end
    else
      for s = 0 to k - 1 do
        a.(i) <- s;
        enumerate (i + 1)
      done
  in
  enumerate 0;
  !best

let test_matches_exhaustive_enumeration () =
  for seed = 0 to 9 do
    let p = random_instance seed ~n:7 ~k:3 in
    Alcotest.(check (float 1e-9))
      (Printf.sprintf "seed %d" seed)
      (exhaustive_optimum p)
      (Brute_force.optimal_value p)
  done

let test_matches_exhaustive_with_capacity () =
  for seed = 0 to 4 do
    let p = random_instance ~capacity:3 seed ~n:6 ~k:3 in
    Alcotest.(check (float 1e-9))
      (Printf.sprintf "seed %d" seed)
      (exhaustive_optimum p)
      (Brute_force.optimal_value p)
  done

let test_returned_assignment_achieves_value () =
  let p = random_instance 42 ~n:8 ~k:3 in
  let a, value = Brute_force.optimal p in
  Alcotest.(check (float 1e-9)) "assignment realises the value" value
    (Objective.max_interaction_path p a)

let test_capacity_respected () =
  let p = random_instance ~capacity:2 13 ~n:6 ~k:3 in
  let a, _ = Brute_force.optimal p in
  Alcotest.(check bool) "capacity ok" true (Assignment.respects_capacity p a)

let test_node_limit_enforced () =
  let p = random_instance 1 ~n:14 ~k:6 in
  Alcotest.(check bool) "fails fast" true
    (try
       ignore (Brute_force.optimal ~node_limit:10 p);
       false
     with Failure _ -> true)

let test_no_worse_than_heuristics () =
  for seed = 20 to 29 do
    let p = random_instance seed ~n:9 ~k:3 in
    let opt = Brute_force.optimal_value p in
    let greedy = Objective.max_interaction_path p (Dia_core.Greedy.assign p) in
    Alcotest.(check bool)
      (Printf.sprintf "optimal <= greedy (seed %d)" seed)
      true (opt <= greedy +. 1e-9)
  done

let suite =
  [
    Alcotest.test_case "matches exhaustive enumeration" `Quick
      test_matches_exhaustive_enumeration;
    Alcotest.test_case "matches exhaustive enumeration under capacity" `Quick
      test_matches_exhaustive_with_capacity;
    Alcotest.test_case "returned assignment achieves the value" `Quick
      test_returned_assignment_achieves_value;
    Alcotest.test_case "capacity respected" `Quick test_capacity_respected;
    Alcotest.test_case "node limit enforced" `Quick test_node_limit_enforced;
    Alcotest.test_case "never worse than heuristics" `Quick test_no_worse_than_heuristics;
  ]
