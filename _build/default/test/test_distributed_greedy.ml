(* Tests for Dia_core.Distributed_greedy beyond what test_algorithms
   covers: trace shape, stats, custom initial assignments. *)

module Synthetic = Dia_latency.Synthetic
module Problem = Dia_core.Problem
module Assignment = Dia_core.Assignment
module Objective = Dia_core.Objective
module Distributed_greedy = Dia_core.Distributed_greedy
module Nearest = Dia_core.Nearest

let random_instance ?capacity seed ~n ~k =
  let m = Synthetic.internet_like ~seed n in
  let servers = Dia_placement.Placement.random ~seed ~k ~n in
  Problem.all_nodes_clients ?capacity m ~servers

let test_trace_starts_at_initial_objective () =
  let p = random_instance 5 ~n:60 ~k:6 in
  let result = Distributed_greedy.run p in
  Alcotest.(check (float 1e-9)) "trace head"
    (Objective.max_interaction_path p result.initial)
    result.trace.(0)

let test_trace_strictly_decreasing () =
  let p = random_instance 6 ~n:80 ~k:8 in
  let result = Distributed_greedy.run p in
  for i = 1 to Array.length result.trace - 1 do
    Alcotest.(check bool) "strictly decreasing" true
      (result.trace.(i) < result.trace.(i - 1))
  done

let test_trace_ends_at_final_objective () =
  let p = random_instance 7 ~n:70 ~k:5 in
  let result = Distributed_greedy.run p in
  Alcotest.(check (float 1e-9)) "trace tail"
    (Objective.max_interaction_path p result.assignment)
    result.trace.(Array.length result.trace - 1)

let test_stats_consistent () =
  let p = random_instance 8 ~n:60 ~k:6 in
  let result = Distributed_greedy.run p in
  Alcotest.(check int) "modifications = trace steps"
    (Array.length result.trace - 1)
    result.stats.modifications;
  Alcotest.(check bool) "examined >= modifications" true
    (result.stats.examined >= result.stats.modifications);
  Alcotest.(check bool) "some communication happened" true
    (result.stats.broadcasts > 0 && result.stats.probes > 0)

let test_converged_state_has_no_improving_single_move () =
  (* At termination, moving any client on a longest path to any other
     server must not reduce D. *)
  let p = random_instance 9 ~n:40 ~k:4 in
  let result = Distributed_greedy.run p in
  let a = Assignment.to_array result.assignment in
  let d = Objective.max_interaction_path p result.assignment in
  let improvable = ref false in
  for c = 0 to Problem.num_clients p - 1 do
    let original = a.(c) in
    for s = 0 to Problem.num_servers p - 1 do
      if s <> original then begin
        a.(c) <- s;
        let d' = Objective.max_interaction_path p (Assignment.unsafe_of_array a) in
        if d' < d -. 1e-9 then improvable := true;
        a.(c) <- original
      end
    done
  done;
  Alcotest.(check bool) "no single move improves D" false !improvable

let test_custom_initial_assignment () =
  let p = random_instance 10 ~n:50 ~k:5 in
  let initial = Assignment.constant p 0 in
  let result = Distributed_greedy.run ~initial p in
  Alcotest.(check bool) "initial recorded" true
    (Assignment.equal initial result.initial);
  Alcotest.(check bool) "no regression" true
    (Objective.max_interaction_path p result.assignment
    <= Objective.max_interaction_path p initial +. 1e-9)

let test_rejects_infeasible_initial () =
  let p = random_instance 11 ~n:20 ~k:4 in
  let p = Problem.with_capacity p (Some 8) in
  let overloaded = Assignment.constant p 0 in
  Alcotest.(check bool) "raises" true
    (try
       ignore (Distributed_greedy.run ~initial:overloaded p);
       false
     with Invalid_argument _ -> true)

let test_capacitated_moves_stay_feasible () =
  let p = random_instance ~capacity:12 12 ~n:48 ~k:6 in
  let result = Distributed_greedy.run p in
  Alcotest.(check bool) "feasible" true
    (Assignment.respects_capacity p result.assignment)

let test_improves_over_nearest_when_possible () =
  (* On clustered internet-like data with random servers, NSA is usually
     improvable; check D-greedy actually commits modifications on at
     least one of a few seeds. *)
  let improved = ref false in
  for seed = 0 to 4 do
    let p = random_instance seed ~n:100 ~k:10 in
    let result = Distributed_greedy.run p in
    if result.stats.modifications > 0 then improved := true
  done;
  Alcotest.(check bool) "at least one run improves" true !improved

let suite =
  [
    Alcotest.test_case "trace starts at initial objective" `Quick
      test_trace_starts_at_initial_objective;
    Alcotest.test_case "trace strictly decreasing" `Quick test_trace_strictly_decreasing;
    Alcotest.test_case "trace ends at final objective" `Quick test_trace_ends_at_final_objective;
    Alcotest.test_case "stats consistent" `Quick test_stats_consistent;
    Alcotest.test_case "no improving single move at convergence" `Quick
      test_converged_state_has_no_improving_single_move;
    Alcotest.test_case "custom initial assignment" `Quick test_custom_initial_assignment;
    Alcotest.test_case "infeasible initial rejected" `Quick test_rejects_infeasible_initial;
    Alcotest.test_case "capacitated moves stay feasible" `Quick
      test_capacitated_moves_stay_feasible;
    Alcotest.test_case "improves over NSA on clustered data" `Quick
      test_improves_over_nearest_when_possible;
  ]
