(* Tests for Dia_placement. *)

module Matrix = Dia_latency.Matrix
module Synthetic = Dia_latency.Synthetic
module Placement = Dia_placement.Placement
module Kcenter = Dia_placement.Kcenter

let distinct a =
  let sorted = Array.copy a in
  Array.sort compare sorted;
  let ok = ref true in
  for i = 1 to Array.length sorted - 1 do
    if sorted.(i) = sorted.(i - 1) then ok := false
  done;
  !ok

let test_random_distinct_and_in_range () =
  let servers = Placement.random ~seed:1 ~k:10 ~n:50 in
  Alcotest.(check int) "count" 10 (Array.length servers);
  Alcotest.(check bool) "distinct" true (distinct servers);
  Alcotest.(check bool) "in range" true
    (Array.for_all (fun s -> s >= 0 && s < 50) servers)

let test_random_deterministic () =
  Alcotest.(check (array int)) "same seed same placement"
    (Placement.random ~seed:9 ~k:5 ~n:30)
    (Placement.random ~seed:9 ~k:5 ~n:30)

let test_random_k_equals_n () =
  let servers = Placement.random ~seed:1 ~k:7 ~n:7 in
  Alcotest.(check (array int)) "all nodes" [| 0; 1; 2; 3; 4; 5; 6 |] servers

let test_random_rejects_bad_k () =
  Alcotest.(check bool) "raises" true
    (try
       ignore (Placement.random ~seed:1 ~k:5 ~n:3);
       false
     with Invalid_argument _ -> true)

let test_two_approx_guarantee () =
  (* Against the library's exact optimum. *)
  let m = Synthetic.euclidean ~seed:3 ~n:12 ~side:100. in
  let k = 3 in
  let centers = Kcenter.two_approx ~seed:0 m ~k in
  Alcotest.(check int) "k centers" k (Array.length centers);
  Alcotest.(check bool) "distinct" true (distinct centers);
  let radius = Placement.coverage_radius m centers in
  let best = Kcenter.radius m (Kcenter.optimal m ~k) in
  Alcotest.(check bool)
    (Printf.sprintf "radius %.2f within 2x optimum %.2f" radius best)
    true
    (radius <= (2. *. best) +. 1e-9)

let test_exact_kcenter_matches_enumeration () =
  let m = Synthetic.internet_like ~seed:6 11 in
  let k = 3 in
  (* Exhaustive optimum over all C(11,3) = 165 center sets. *)
  let best = ref infinity in
  for a = 0 to 10 do
    for b = a + 1 to 10 do
      for c = b + 1 to 10 do
        best := Float.min !best (Placement.coverage_radius m [| a; b; c |])
      done
    done
  done;
  Alcotest.(check (float 1e-9)) "optimal matches enumeration" !best
    (Kcenter.radius m (Kcenter.optimal m ~k))

let test_exact_kcenter_no_worse_than_heuristics () =
  for seed = 0 to 4 do
    let m = Synthetic.internet_like ~seed 12 in
    let opt = Kcenter.radius m (Kcenter.optimal m ~k:3) in
    Alcotest.(check bool) "beats greedy" true
      (opt <= Kcenter.radius m (Kcenter.greedy m ~k:3) +. 1e-9);
    Alcotest.(check bool) "beats 2-approx" true
      (opt <= Kcenter.radius m (Kcenter.two_approx m ~k:3) +. 1e-9)
  done

let test_exact_kcenter_node_limit () =
  let m = Synthetic.internet_like ~seed:1 40 in
  Alcotest.(check bool) "limit enforced" true
    (try ignore (Kcenter.optimal ~node_limit:5 m ~k:8); false
     with Failure _ -> true)

let test_greedy_no_worse_than_double_optimum_here () =
  let m = Synthetic.euclidean ~seed:4 ~n:12 ~side:100. in
  let k = 3 in
  let centers = Kcenter.greedy m ~k in
  Alcotest.(check int) "k centers" k (Array.length centers);
  Alcotest.(check bool) "distinct" true (distinct centers);
  Alcotest.(check bool) "radius finite" true
    (Float.is_finite (Placement.coverage_radius m centers))

let test_greedy_deterministic () =
  let m = Synthetic.internet_like ~seed:8 60 in
  Alcotest.(check (array int)) "same output" (Kcenter.greedy m ~k:6) (Kcenter.greedy m ~k:6)

let test_kcenter_improves_over_random () =
  let m = Synthetic.internet_like ~seed:12 150 in
  let k = 8 in
  let random_radius =
    (* Average a few random placements for a stable comparison. *)
    let total = ref 0. in
    for seed = 0 to 9 do
      total := !total +. Placement.coverage_radius m (Placement.random ~seed ~k ~n:150)
    done;
    !total /. 10.
  in
  let greedy_radius = Placement.coverage_radius m (Kcenter.greedy m ~k) in
  let approx_radius = Placement.coverage_radius m (Kcenter.two_approx m ~k) in
  Alcotest.(check bool)
    (Printf.sprintf "greedy %.1f < random %.1f" greedy_radius random_radius)
    true (greedy_radius < random_radius);
  Alcotest.(check bool)
    (Printf.sprintf "2-approx %.1f < random %.1f" approx_radius random_radius)
    true (approx_radius < random_radius)

let test_k_equals_zero () =
  Alcotest.(check int) "empty placement" 0 (Array.length (Kcenter.two_approx (Matrix.create 5) ~k:0))

let test_place_dispatch () =
  let m = Synthetic.internet_like ~seed:1 40 in
  List.iter
    (fun strategy ->
      let servers = Placement.place strategy m ~k:5 in
      Alcotest.(check int)
        (Placement.strategy_name strategy)
        5 (Array.length servers);
      Alcotest.(check bool) "distinct" true (distinct servers))
    Placement.all_strategies

let test_strategy_names_roundtrip () =
  List.iter
    (fun strategy ->
      match Placement.strategy_of_string (Placement.strategy_name strategy) with
      | Some s ->
          Alcotest.(check string) "roundtrip" (Placement.strategy_name strategy)
            (Placement.strategy_name s)
      | None -> Alcotest.fail "name did not roundtrip")
    Placement.all_strategies;
  Alcotest.(check bool) "unknown name" true (Placement.strategy_of_string "bogus" = None)

let test_coverage_radius_of_full_placement () =
  let m = Synthetic.internet_like ~seed:2 20 in
  let all = Array.init 20 Fun.id in
  Alcotest.(check (float 1e-9)) "radius zero when all nodes are centers" 0.
    (Placement.coverage_radius m all)

let suite =
  [
    Alcotest.test_case "random placement distinct and in range" `Quick
      test_random_distinct_and_in_range;
    Alcotest.test_case "random placement deterministic" `Quick test_random_deterministic;
    Alcotest.test_case "random placement with k = n" `Quick test_random_k_equals_n;
    Alcotest.test_case "random placement validates k" `Quick test_random_rejects_bad_k;
    Alcotest.test_case "2-approx guarantee holds on metric data" `Quick test_two_approx_guarantee;
    Alcotest.test_case "exact k-center matches enumeration" `Quick
      test_exact_kcenter_matches_enumeration;
    Alcotest.test_case "exact k-center beats the heuristics" `Quick
      test_exact_kcenter_no_worse_than_heuristics;
    Alcotest.test_case "exact k-center node limit" `Quick test_exact_kcenter_node_limit;
    Alcotest.test_case "greedy k-center basic shape" `Quick
      test_greedy_no_worse_than_double_optimum_here;
    Alcotest.test_case "greedy k-center deterministic" `Quick test_greedy_deterministic;
    Alcotest.test_case "k-center beats random placement" `Quick test_kcenter_improves_over_random;
    Alcotest.test_case "k = 0 placements" `Quick test_k_equals_zero;
    Alcotest.test_case "place dispatches every strategy" `Quick test_place_dispatch;
    Alcotest.test_case "strategy names roundtrip" `Quick test_strategy_names_roundtrip;
    Alcotest.test_case "coverage radius with all nodes as centers" `Quick
      test_coverage_radius_of_full_placement;
  ]
