(* Tests for Dia_latency.Loader: parsing both on-disk formats and the
   paper's node-discarding cleanup step. *)

module Loader = Dia_latency.Loader
module Matrix = Dia_latency.Matrix

let write_temp contents =
  let path = Filename.temp_file "dia_loader" ".txt" in
  let oc = open_out path in
  output_string oc contents;
  close_out oc;
  path

let test_parse_dense_matrix () =
  let path = write_temp "0 1 2\n1 0 3\n2 3 0\n" in
  let raw = Loader.parse_matrix path in
  Alcotest.(check int) "nodes" 3 raw.nodes;
  Alcotest.(check bool) "entry" true (raw.entries.(0).(2) = Some 2.)

let test_parse_dense_with_missing () =
  let path = write_temp "0 -1 2\n-1 0 3\n2 3 0\n" in
  let raw = Loader.parse_matrix path in
  Alcotest.(check bool) "missing marked" true (raw.entries.(0).(1) = None)

let test_parse_rejects_non_square () =
  let path = write_temp "0 1\n1 0 2\n" in
  Alcotest.(check bool) "raises" true
    (try
       ignore (Loader.parse_matrix path);
       false
     with Failure _ -> true)

let test_parse_triples () =
  let path = write_temp "# comment\n0 1 10\n0 2 20\n1 2 30\n2 3 5\n0 3 7\n1 3 9\n" in
  let raw = Loader.parse_triples path in
  Alcotest.(check int) "nodes" 4 raw.nodes;
  Alcotest.(check bool) "value" true (raw.entries.(1).(2) = Some 30.);
  Alcotest.(check bool) "symmetric" true (raw.entries.(2).(1) = Some 30.)

let test_triples_duplicate_keeps_min () =
  let path = write_temp "0 1 10\n1 0 4\n0 1 6\n" in
  let raw = Loader.parse_triples path in
  Alcotest.(check bool) "min kept" true (raw.entries.(0).(1) = Some 4.)

let test_complete_subset_discards_missing () =
  (* Node 1 is involved in the only missing measurements; it must go and
     the others survive. *)
  let path = write_temp "0 5 2\n5 0 -1\n2 -1 0\n" in
  let raw = Loader.parse_matrix path in
  let ids, m = Loader.complete_subset raw in
  Alcotest.(check (array int)) "survivors" [| 0; 2 |] ids;
  Alcotest.(check (float 1e-9)) "latency kept" 2. (Matrix.get m 0 1)

let test_complete_subset_averages_asymmetry () =
  let path = write_temp "0 4 1\n8 0 1\n1 1 0\n" in
  let _, m = Loader.complete_subset (Loader.parse_matrix path) in
  Alcotest.(check (float 1e-9)) "averaged" 6. (Matrix.get m 0 1)

let test_load_sniffs_triples () =
  let path =
    write_temp "0 1 10\n0 2 20\n1 2 30\n0 3 5\n1 3 6\n2 3 7\n"
  in
  let m = Loader.load path in
  Alcotest.(check int) "four nodes survive" 4 (Matrix.dim m)

let test_save_load_roundtrip () =
  let m = Dia_latency.Synthetic.euclidean ~seed:4 ~n:10 ~side:50. in
  let path = Filename.temp_file "dia_roundtrip" ".txt" in
  Loader.save_matrix path m;
  let m' = Loader.load path in
  Alcotest.(check bool) "roundtrip" true (Matrix.equal ~eps:1e-4 m m')

let test_clamps_zero_entries () =
  let path = write_temp "0 0 1\n0 0 1\n1 1 0\n" in
  let _, m = Loader.complete_subset (Loader.parse_matrix path) in
  Alcotest.(check bool) "clamped positive" true (Matrix.get m 0 1 > 0.)

let suite =
  [
    Alcotest.test_case "parse dense matrix" `Quick test_parse_dense_matrix;
    Alcotest.test_case "parse dense with missing entries" `Quick test_parse_dense_with_missing;
    Alcotest.test_case "reject non-square dense input" `Quick test_parse_rejects_non_square;
    Alcotest.test_case "parse triple files" `Quick test_parse_triples;
    Alcotest.test_case "duplicate triples keep the minimum" `Quick test_triples_duplicate_keeps_min;
    Alcotest.test_case "cleanup discards nodes with missing data" `Quick
      test_complete_subset_discards_missing;
    Alcotest.test_case "cleanup averages asymmetric pairs" `Quick
      test_complete_subset_averages_asymmetry;
    Alcotest.test_case "load sniffs the triple format" `Quick test_load_sniffs_triples;
    Alcotest.test_case "save/load roundtrip" `Quick test_save_load_roundtrip;
    Alcotest.test_case "cleanup clamps zero latencies" `Quick test_clamps_zero_entries;
  ]
