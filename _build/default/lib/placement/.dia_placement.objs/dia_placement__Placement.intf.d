lib/placement/placement.mli: Dia_latency
