lib/placement/placement.ml: Array Dia_latency Float Fun Kcenter Printf Random
