lib/placement/kcenter.ml: Array Dia_latency Float Printf Random
