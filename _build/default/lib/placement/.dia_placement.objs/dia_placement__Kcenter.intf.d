lib/placement/kcenter.mli: Dia_latency
