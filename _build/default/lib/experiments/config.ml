module Matrix = Dia_latency.Matrix

type dataset = Meridian_like | Mit_like

let dataset_name = function Meridian_like -> "meridian" | Mit_like -> "mit"

let dataset_of_string = function
  | "meridian" -> Some Meridian_like
  | "mit" -> Some Mit_like
  | _ -> None

type profile = {
  label : string;
  nodes : int option;
  runs : int;
  server_counts : int list;
  fixed_servers : int;
  paper_capacities : int list;
}

let paper_capacities = [ 25; 50; 100; 150; 200; 250 ]

let quick =
  {
    label = "quick";
    nodes = Some 250;
    runs = 15;
    server_counts = [ 20; 40; 60; 80 ];
    fixed_servers = 40;
    paper_capacities;
  }

let default =
  {
    label = "default";
    nodes = Some 600;
    runs = 40;
    server_counts = [ 20; 30; 40; 50; 60; 70; 80; 90; 100 ];
    fixed_servers = 80;
    paper_capacities;
  }

let full =
  {
    label = "full";
    nodes = None;
    runs = 1000;
    server_counts = [ 20; 30; 40; 50; 60; 70; 80; 90; 100 ];
    fixed_servers = 80;
    paper_capacities;
  }

let profile_of_string = function
  | "quick" -> Some quick
  | "default" -> Some default
  | "full" -> Some full
  | _ -> None

let load_dataset ?(seed = 0) dataset profile =
  let matrix =
    match dataset with
    | Meridian_like -> Dia_latency.Synthetic.meridian_like ()
    | Mit_like -> Dia_latency.Synthetic.mit_like ()
  in
  match profile.nodes with
  | None -> matrix
  | Some n when n >= Matrix.dim matrix -> matrix
  | Some n ->
      let rng = Random.State.make [| seed; n |] in
      let pool = Array.init (Matrix.dim matrix) Fun.id in
      for i = 0 to n - 1 do
        let j = i + Random.State.int rng (Array.length pool - i) in
        let tmp = pool.(i) in
        pool.(i) <- pool.(j);
        pool.(j) <- tmp
      done;
      let chosen = Array.sub pool 0 n in
      Array.sort compare chosen;
      Matrix.sub matrix chosen

let scaled_capacity ~clients paper_cap =
  (* Preserve the paper's load factor: capacities are quoted for 1796
     clients (Meridian). *)
  max 1 (int_of_float (Float.round (float_of_int paper_cap *. float_of_int clients /. 1796.)))
