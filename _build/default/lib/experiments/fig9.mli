(** Fig. 9 — Distributed-Greedy convergence.

    Tracks the normalized interactivity after each assignment
    modification performed by Distributed-Greedy (starting from
    Nearest-Server Assignment), for a fixed server count under each
    placement strategy. The paper's observation: convergence within a
    few tens of modifications, over 99% of the improvement within 80,
    i.e. under 5% of clients ever move. *)

type trace = {
  strategy : Dia_placement.Placement.strategy;
  normalized : float array;
      (** [normalized.(i)] = D / LB after [i] modifications *)
  modifications : int;
  clients : int;
}

type result = {
  dataset : Config.dataset;
  profile : Config.profile;
  servers : int;
  traces : trace list;
}

val run :
  ?dataset:Config.dataset -> ?profile:Config.profile -> unit -> result

val improvement_fraction : trace -> after:int -> float
(** Fraction of the total interactivity improvement achieved within the
    first [after] modifications ([1.] if the trace converged earlier or
    no improvement was possible). *)

val render : result -> string

val csv : result -> string
(** CSV export: [placement,modification,normalized]. *)

type sweep_point = {
  sweep_servers : int;
  sweep_modifications : int;
  moved_fraction : float;  (** modifications / clients *)
  improvement_at_80 : float;
}

val sweep :
  ?dataset:Config.dataset ->
  ?profile:Config.profile ->
  ?strategy:Dia_placement.Placement.strategy ->
  unit ->
  sweep_point list
(** Convergence statistics across the profile's server counts (random
    placement seed 0 by default) — the paper's "similar observations are
    made in the experiments for other server numbers". *)

val render_sweep : sweep_point list -> string
