lib/experiments/fig7.mli: Config Dia_core Dia_latency Dia_placement
