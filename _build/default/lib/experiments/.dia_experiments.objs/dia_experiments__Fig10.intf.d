lib/experiments/fig10.mli: Config Dia_core Dia_placement
