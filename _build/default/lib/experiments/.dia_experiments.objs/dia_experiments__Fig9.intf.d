lib/experiments/fig9.mli: Config Dia_placement
