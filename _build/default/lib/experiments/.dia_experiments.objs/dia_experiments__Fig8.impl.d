lib/experiments/fig8.ml: Array Config Dia_core Dia_placement Dia_stats Hashtbl List Option Printf Runner
