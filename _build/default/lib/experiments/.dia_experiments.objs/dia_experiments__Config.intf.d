lib/experiments/config.mli: Dia_latency
