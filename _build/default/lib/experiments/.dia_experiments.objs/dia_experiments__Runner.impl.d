lib/experiments/runner.ml: Dia_core Dia_placement Dia_stats Hashtbl List Option
