lib/experiments/fig9.ml: Array Config Dia_core Dia_placement Dia_stats List Printf
