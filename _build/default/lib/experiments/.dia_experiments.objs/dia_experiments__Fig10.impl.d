lib/experiments/fig10.ml: Config Dia_core Dia_latency Dia_placement Dia_stats Hashtbl List Option Printf Runner String
