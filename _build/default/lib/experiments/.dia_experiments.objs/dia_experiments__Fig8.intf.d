lib/experiments/fig8.mli: Config Dia_core Dia_stats
