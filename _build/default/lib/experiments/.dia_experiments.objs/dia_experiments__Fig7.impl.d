lib/experiments/fig7.ml: Config Dia_core Dia_placement Dia_stats List Printf Runner String
