lib/experiments/config.ml: Array Dia_latency Float Fun Random
