lib/experiments/runner.mli: Dia_core Dia_latency Dia_placement Dia_stats
