(** Experiment configuration.

    The paper's evaluation (Section V) places clients at all nodes of the
    Meridian (1796-node) and MIT King (1024-node) matrices and sweeps
    server count, placement strategy, and server capacity. Running the
    verbatim scale (1000 random-placement repetitions on 1796 nodes)
    takes hours on one core, so experiments take a {!profile}: [Full] is
    the paper's exact scale; [Default] and [Quick] shrink the node count
    and repetition count while preserving every qualitative shape (the
    capacity axis is rescaled proportionally to the client count so load
    factors match the paper's). *)

type dataset = Meridian_like | Mit_like

val dataset_name : dataset -> string
val dataset_of_string : string -> dataset option

type profile = {
  label : string;
  nodes : int option;
      (** subsample the dataset to this many nodes ([None] = all) *)
  runs : int;  (** repetitions for random-placement experiments *)
  server_counts : int list;  (** Fig. 7 x-axis *)
  fixed_servers : int;  (** server count for Figs. 8-10 *)
  paper_capacities : int list;  (** Fig. 10 x-axis, in paper units *)
}

val quick : profile
val default : profile
val full : profile
(** The paper's parameters: all nodes, 1000 runs, servers 20-100 step 10,
    80 servers for Figs. 8-10, capacities 25/50/100/150/200/250. *)

val profile_of_string : string -> profile option
(** ["quick" | "default" | "full"]. *)

val load_dataset : ?seed:int -> dataset -> profile -> Dia_latency.Matrix.t
(** Generate the synthetic stand-in matrix and, if the profile subsamples,
    restrict it to a random node subset (deterministic in [seed],
    default 0). *)

val scaled_capacity : clients:int -> int -> int
(** [scaled_capacity ~clients paper_cap] converts a Fig. 10 capacity from
    paper units (1796 Meridian clients) to this run's client count,
    preserving the load factor; at least 1. *)
