module Algorithm = Dia_core.Algorithm
module Placement = Dia_placement.Placement

type point = {
  paper_capacity : int;
  effective_capacity : int;
  algorithm : Algorithm.t;
  normalized : float;
  stddev : float;
}

type panel = { strategy : Placement.strategy; points : point list }

type result = {
  dataset : Config.dataset;
  profile : Config.profile;
  servers : int;
  panels : panel list;
}

let run ?(dataset = Config.Meridian_like) ?(profile = Config.default) () =
  let matrix = Config.load_dataset dataset profile in
  let k = profile.Config.fixed_servers in
  let clients = Dia_latency.Matrix.dim matrix in
  let capacities =
    List.filter_map
      (fun paper_capacity ->
        let effective = Config.scaled_capacity ~clients paper_capacity in
        if effective * k >= clients then Some (paper_capacity, effective) else None)
      profile.Config.paper_capacities
  in
  (* For the random panel, place servers and compute the (capacity-
     independent) lower bound once per seed, then sweep capacities —
     |capacities| times fewer lower-bound computations. *)
  let random_panel () =
    let samples = Hashtbl.create 64 in
    for seed = 0 to profile.Config.runs - 1 do
      let servers = Placement.random ~seed ~k ~n:clients in
      let p0 = Dia_core.Problem.all_nodes_clients matrix ~servers in
      let lb = Dia_core.Lower_bound.compute p0 in
      List.iter
        (fun (paper_capacity, effective_capacity) ->
          let p = Dia_core.Problem.with_capacity p0 (Some effective_capacity) in
          List.iter
            (fun algorithm ->
              let a = Dia_core.Algorithm.run algorithm p in
              let d = Dia_core.Objective.max_interaction_path p a in
              let key = (paper_capacity, effective_capacity, algorithm) in
              let previous = Option.value ~default:[] (Hashtbl.find_opt samples key) in
              Hashtbl.replace samples key ((d /. lb) :: previous))
            Runner.algorithms)
        capacities
    done;
    let points =
      List.concat_map
        (fun (paper_capacity, effective_capacity) ->
          List.map
            (fun algorithm ->
              let values =
                Hashtbl.find samples (paper_capacity, effective_capacity, algorithm)
              in
              let summary = Dia_stats.Summary.of_list values in
              {
                paper_capacity;
                effective_capacity;
                algorithm;
                normalized = summary.Dia_stats.Summary.mean;
                stddev = summary.Dia_stats.Summary.stddev;
              })
            Runner.algorithms)
        capacities
    in
    { strategy = Placement.Random_placement; points }
  in
  let panel strategy =
    match strategy with
    | Placement.Random_placement -> random_panel ()
    | Placement.K_center_a | Placement.K_center_b ->
        let points =
          List.concat_map
            (fun (paper_capacity, effective_capacity) ->
              let evaluation =
                Runner.place_and_evaluate ~capacity:effective_capacity matrix
                  ~strategy ~k
              in
              List.map
                (fun (algorithm, normalized) ->
                  { paper_capacity; effective_capacity; algorithm; normalized;
                    stddev = 0. })
                (Runner.normalized evaluation))
            capacities
        in
        { strategy; points }
  in
  { dataset; profile; servers = k;
    panels = List.map panel Placement.all_strategies }

let panel_table panel =
  let columns =
    "capacity (paper/effective)" :: List.map Algorithm.name Runner.algorithms
  in
  let table = Dia_stats.Table.make ~columns in
  let capacities =
    List.sort_uniq compare
      (List.map (fun point -> (point.paper_capacity, point.effective_capacity)) panel.points)
  in
  List.iter
    (fun (paper_capacity, effective) ->
      let value algorithm =
        List.find
          (fun point ->
            point.paper_capacity = paper_capacity && point.algorithm = algorithm)
          panel.points
      in
      Dia_stats.Table.add_row table
        (Printf.sprintf "%d/%d" paper_capacity effective
        :: List.map
             (fun algorithm -> Printf.sprintf "%.3f" (value algorithm).normalized)
             Runner.algorithms))
    capacities;
  Dia_stats.Table.render table

let panel_plot panel =
  let series =
    List.map
      (fun algorithm ->
        ( Algorithm.name algorithm,
          List.filter_map
            (fun point ->
              if point.algorithm = algorithm then
                Some (float_of_int point.paper_capacity, point.normalized)
              else None)
            panel.points ))
      Runner.algorithms
  in
  Dia_stats.Ascii_plot.render ~x_label:"server capacity (paper units)"
    ~y_label:"normalized interactivity" series

let render result =
  String.concat "\n"
    (List.map
       (fun panel ->
         Printf.sprintf
           "Fig. 10 (%s placement, %d servers, %s dataset, %s profile)\n%s\n%s"
           (Placement.strategy_name panel.strategy)
           result.servers
           (Config.dataset_name result.dataset)
           result.profile.Config.label (panel_table panel) (panel_plot panel))
       result.panels)

let csv result =
  let rows =
    List.concat_map
      (fun panel ->
        List.map
          (fun point ->
            [
              Placement.strategy_name panel.strategy;
              string_of_int point.paper_capacity;
              string_of_int point.effective_capacity;
              Algorithm.key point.algorithm;
              Printf.sprintf "%.6f" point.normalized;
              Printf.sprintf "%.6f" point.stddev;
            ])
          panel.points)
      result.panels
  in
  Dia_stats.Csv.render
    ~header:
      [ "placement"; "paper_capacity"; "effective_capacity"; "algorithm";
        "normalized"; "stddev" ]
    rows
