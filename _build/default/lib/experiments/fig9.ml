module Placement = Dia_placement.Placement
module Problem = Dia_core.Problem
module Distributed_greedy = Dia_core.Distributed_greedy
module Lower_bound = Dia_core.Lower_bound

type trace = {
  strategy : Placement.strategy;
  normalized : float array;
  modifications : int;
  clients : int;
}

type result = {
  dataset : Config.dataset;
  profile : Config.profile;
  servers : int;
  traces : trace list;
}

let run ?(dataset = Config.Meridian_like) ?(profile = Config.default) () =
  let matrix = Config.load_dataset dataset profile in
  let k = profile.Config.fixed_servers in
  let traces =
    List.map
      (fun strategy ->
        let servers = Placement.place strategy ~seed:0 matrix ~k in
        let p = Problem.all_nodes_clients matrix ~servers in
        let lower_bound = Lower_bound.compute p in
        let dg = Distributed_greedy.run p in
        {
          strategy;
          normalized = Array.map (fun d -> d /. lower_bound) dg.Distributed_greedy.trace;
          modifications = dg.Distributed_greedy.stats.Distributed_greedy.modifications;
          clients = Problem.num_clients p;
        })
      Placement.all_strategies
  in
  { dataset; profile; servers = k; traces }

let improvement_fraction trace ~after =
  let first = trace.normalized.(0) in
  let last = trace.normalized.(Array.length trace.normalized - 1) in
  let total = first -. last in
  if total <= 0. then 1.
  else begin
    let index = min after (Array.length trace.normalized - 1) in
    (first -. trace.normalized.(index)) /. total
  end

let render result =
  let table =
    Dia_stats.Table.make
      ~columns:
        [ "placement"; "modifications"; "initial"; "final";
          "improvement@10"; "improvement@80"; "clients moved (%)" ]
  in
  List.iter
    (fun trace ->
      Dia_stats.Table.add_row table
        [
          Placement.strategy_name trace.strategy;
          string_of_int trace.modifications;
          Printf.sprintf "%.3f" trace.normalized.(0);
          Printf.sprintf "%.3f" trace.normalized.(Array.length trace.normalized - 1);
          Printf.sprintf "%.1f%%" (100. *. improvement_fraction trace ~after:10);
          Printf.sprintf "%.1f%%" (100. *. improvement_fraction trace ~after:80);
          Printf.sprintf "%.1f%%"
            (100. *. float_of_int trace.modifications /. float_of_int trace.clients);
        ])
    result.traces;
  let series =
    List.map
      (fun trace ->
        ( Placement.strategy_name trace.strategy,
          Array.to_list (Array.mapi (fun i v -> (float_of_int i, v)) trace.normalized) ))
      result.traces
  in
  Printf.sprintf
    "Fig. 9 (Distributed-Greedy convergence, %d servers, %s dataset, %s profile)\n%s\n%s"
    result.servers
    (Config.dataset_name result.dataset)
    result.profile.Config.label
    (Dia_stats.Table.render table)
    (Dia_stats.Ascii_plot.render ~x_label:"assignment modifications"
       ~y_label:"normalized interactivity" series)

let csv result =
  let rows =
    List.concat_map
      (fun trace ->
        Array.to_list
          (Array.mapi
             (fun i v ->
               [
                 Placement.strategy_name trace.strategy;
                 string_of_int i;
                 Printf.sprintf "%.6f" v;
               ])
             trace.normalized))
      result.traces
  in
  Dia_stats.Csv.render ~header:[ "placement"; "modification"; "normalized" ] rows

type sweep_point = {
  sweep_servers : int;
  sweep_modifications : int;
  moved_fraction : float;
  improvement_at_80 : float;
}

let sweep ?(dataset = Config.Meridian_like) ?(profile = Config.default)
    ?(strategy = Placement.Random_placement) () =
  let matrix = Config.load_dataset dataset profile in
  List.map
    (fun k ->
      let servers = Placement.place strategy ~seed:0 matrix ~k in
      let p = Problem.all_nodes_clients matrix ~servers in
      let lower_bound = Lower_bound.compute p in
      let dg = Distributed_greedy.run p in
      let normalized =
        Array.map (fun d -> d /. lower_bound) dg.Distributed_greedy.trace
      in
      let trace =
        { strategy; normalized;
          modifications = dg.Distributed_greedy.stats.Distributed_greedy.modifications;
          clients = Problem.num_clients p }
      in
      {
        sweep_servers = k;
        sweep_modifications = trace.modifications;
        moved_fraction =
          float_of_int trace.modifications /. float_of_int trace.clients;
        improvement_at_80 = improvement_fraction trace ~after:80;
      })
    profile.Config.server_counts

let render_sweep points =
  let table =
    Dia_stats.Table.make
      ~columns:[ "servers"; "modifications"; "clients moved (%)"; "improvement@80" ]
  in
  List.iter
    (fun point ->
      Dia_stats.Table.add_row table
        [
          string_of_int point.sweep_servers;
          string_of_int point.sweep_modifications;
          Printf.sprintf "%.1f%%" (100. *. point.moved_fraction);
          Printf.sprintf "%.1f%%" (100. *. point.improvement_at_80);
        ])
    points;
  "Fig. 9 sweep (Distributed-Greedy convergence vs server count)\n"
  ^ Dia_stats.Table.render table
