(** Fig. 10 — impact of server capacity.

    Normalized interactivity of the capacitated algorithm variants as the
    per-server capacity shrinks, at a fixed server count under each
    placement strategy. The paper's observations: interactivity degrades
    as capacity falls (sharply when severely limited); Nearest-Server and
    Distributed-Greedy are least affected; Longest-First-Batch and Greedy
    are unbalanced and suffer most, falling to or below Nearest-Server at
    tight capacities; Distributed-Greedy is best overall.

    Capacities are quoted in paper units (for 1796 clients) and scaled to
    the run's client count so the load factor — the thing that drives the
    effect — matches the paper's. The lower bound stays uncapacitated, as
    in the paper. *)

type point = {
  paper_capacity : int;
  effective_capacity : int;
  algorithm : Dia_core.Algorithm.t;
  normalized : float;
  stddev : float;
}

type panel = {
  strategy : Dia_placement.Placement.strategy;
  points : point list;
}

type result = {
  dataset : Config.dataset;
  profile : Config.profile;
  servers : int;
  panels : panel list;
}

val run :
  ?dataset:Config.dataset -> ?profile:Config.profile -> unit -> result

val render : result -> string

val csv : result -> string
(** CSV export:
    [placement,paper_capacity,effective_capacity,algorithm,normalized,stddev]. *)
