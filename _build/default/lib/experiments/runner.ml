module Algorithm = Dia_core.Algorithm
module Problem = Dia_core.Problem
module Objective = Dia_core.Objective
module Lower_bound = Dia_core.Lower_bound
module Placement = Dia_placement.Placement

type evaluation = {
  servers : int array;
  lower_bound : float;
  results : (Algorithm.t * float) list;
}

let algorithms = Algorithm.heuristics

let evaluate ?capacity ?(algorithms = algorithms) matrix ~servers =
  let p = Problem.all_nodes_clients ?capacity matrix ~servers in
  let results =
    List.map
      (fun algorithm ->
        let a = Algorithm.run algorithm p in
        (algorithm, Objective.max_interaction_path p a))
      algorithms
  in
  { servers; lower_bound = Lower_bound.compute p; results }

let normalized evaluation =
  List.map
    (fun (algorithm, d) -> (algorithm, d /. evaluation.lower_bound))
    evaluation.results

let place_and_evaluate ?capacity ?(seed = 0) matrix ~strategy ~k =
  let servers = Placement.place strategy ~seed matrix ~k in
  evaluate ?capacity matrix ~servers

let average_normalized ?capacity matrix ~runs ~k =
  let per_algorithm = Hashtbl.create 8 in
  for seed = 0 to runs - 1 do
    let evaluation =
      place_and_evaluate ?capacity ~seed matrix
        ~strategy:Placement.Random_placement ~k
    in
    List.iter
      (fun (algorithm, value) ->
        let previous = Option.value ~default:[] (Hashtbl.find_opt per_algorithm algorithm) in
        Hashtbl.replace per_algorithm algorithm (value :: previous))
      (normalized evaluation)
  done;
  List.map
    (fun algorithm ->
      let values = Option.value ~default:[] (Hashtbl.find_opt per_algorithm algorithm) in
      (algorithm, Dia_stats.Summary.of_list values))
    algorithms
