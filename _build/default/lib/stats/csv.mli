(** Minimal CSV writing (RFC 4180 quoting) for exporting experiment
    series to external plotting tools. *)

val escape : string -> string
(** Quote a field if it contains commas, quotes, or newlines. *)

val render : header:string list -> string list list -> string
(** Full document, [\n] line endings, header first.

    @raise Invalid_argument if any row's arity differs from the
    header's. *)

val write : path:string -> header:string list -> string list list -> unit
(** {!render} to a file. *)
