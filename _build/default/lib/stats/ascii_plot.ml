let glyphs = [| '*'; '+'; 'o'; 'x'; '#'; '@'; '%'; '&' |]

let finite_points series =
  List.concat_map
    (fun (_, points) ->
      List.filter
        (fun (x, y) -> Float.is_finite x && Float.is_finite y)
        points)
    series

let render ?(width = 64) ?(height = 16) ?(x_label = "") ?(y_label = "") series =
  if width < 8 || height < 4 then invalid_arg "Ascii_plot: size too small";
  let points = finite_points series in
  if points = [] then invalid_arg "Ascii_plot: no finite points";
  let xs = List.map fst points and ys = List.map snd points in
  let x_min = List.fold_left Float.min infinity xs in
  let x_max = List.fold_left Float.max neg_infinity xs in
  let y_min = List.fold_left Float.min infinity ys in
  let y_max = List.fold_left Float.max neg_infinity ys in
  let x_span = if x_max > x_min then x_max -. x_min else 1. in
  let y_span = if y_max > y_min then y_max -. y_min else 1. in
  let grid = Array.make_matrix height width ' ' in
  let plot_series idx (_, points) =
    let glyph = glyphs.(idx mod Array.length glyphs) in
    List.iter
      (fun (x, y) ->
        if Float.is_finite x && Float.is_finite y then begin
          let col =
            int_of_float ((x -. x_min) /. x_span *. float_of_int (width - 1))
          in
          let row =
            height - 1
            - int_of_float ((y -. y_min) /. y_span *. float_of_int (height - 1))
          in
          grid.(row).(col) <- glyph
        end)
      points
  in
  List.iteri plot_series series;
  let buffer = Buffer.create ((width + 12) * (height + 4)) in
  if y_label <> "" then Buffer.add_string buffer (y_label ^ "\n");
  Array.iteri
    (fun row cells ->
      let y_value = y_max -. (float_of_int row /. float_of_int (height - 1) *. y_span) in
      Buffer.add_string buffer (Printf.sprintf "%9.3f |" y_value);
      Buffer.add_string buffer (String.init width (fun col -> cells.(col)));
      Buffer.add_char buffer '\n')
    grid;
  Buffer.add_string buffer (Printf.sprintf "%9s +%s\n" "" (String.make width '-'));
  Buffer.add_string buffer
    (Printf.sprintf "%9s  %-*.6g%*.6g" "" (width / 2) x_min (width - (width / 2)) x_max);
  if x_label <> "" then Buffer.add_string buffer ("  " ^ x_label);
  Buffer.add_char buffer '\n';
  let legend =
    String.concat "   "
      (List.mapi
         (fun idx (name, _) ->
           Printf.sprintf "%c %s" glyphs.(idx mod Array.length glyphs) name)
         series)
  in
  Buffer.add_string buffer ("          " ^ legend ^ "\n");
  Buffer.contents buffer

let print ?width ?height ?x_label ?y_label series =
  print_string (render ?width ?height ?x_label ?y_label series)
