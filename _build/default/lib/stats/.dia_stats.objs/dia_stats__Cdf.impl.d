lib/stats/cdf.ml: Array Float List Percentile Printf
