lib/stats/cdf.mli:
