lib/stats/csv.mli:
