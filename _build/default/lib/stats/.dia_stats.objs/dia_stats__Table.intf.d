lib/stats/table.mli:
