lib/stats/percentile.mli:
