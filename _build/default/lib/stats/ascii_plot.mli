(** Terminal line plots.

    Renders one or more [(x, y)] series as an ASCII grid — enough to
    eyeball the shape of each reproduced figure directly from
    [dune exec]. Each series gets a distinct glyph; overlapping points
    show the later series' glyph. *)

val render :
  ?width:int ->
  ?height:int ->
  ?x_label:string ->
  ?y_label:string ->
  (string * (float * float) list) list ->
  string
(** [render series] plots the named series on a shared axis. Default
    [width] 64, [height] 16 (interior cells). Series must be non-empty
    overall; NaN points are skipped.

    @raise Invalid_argument if no finite points exist or sizes are
    unreasonably small ([< 8] wide / [< 4] tall). *)

val print :
  ?width:int ->
  ?height:int ->
  ?x_label:string ->
  ?y_label:string ->
  (string * (float * float) list) list ->
  unit
