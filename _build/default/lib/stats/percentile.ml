let of_sorted sorted p =
  let n = Array.length sorted in
  if n = 0 then invalid_arg "Percentile: empty sample";
  if p < 0. || p > 100. then
    invalid_arg (Printf.sprintf "Percentile: %g outside [0, 100]" p);
  let rank = p /. 100. *. float_of_int (n - 1) in
  let lo = int_of_float (Float.floor rank) in
  let hi = int_of_float (Float.ceil rank) in
  if lo = hi then sorted.(lo)
  else begin
    let fraction = rank -. float_of_int lo in
    (sorted.(lo) *. (1. -. fraction)) +. (sorted.(hi) *. fraction)
  end

let compute values p =
  let sorted = Array.copy values in
  Array.sort Float.compare sorted;
  of_sorted sorted p

let many values ps =
  let sorted = Array.copy values in
  Array.sort Float.compare sorted;
  List.map (fun p -> (p, of_sorted sorted p)) ps
