type t = float array (* sorted ascending *)

let of_samples values =
  if Array.length values = 0 then invalid_arg "Cdf: empty sample";
  Array.iter (fun v -> if Float.is_nan v then invalid_arg "Cdf: NaN sample") values;
  let sorted = Array.copy values in
  Array.sort Float.compare sorted;
  sorted

let count t = Array.length t

(* Number of entries <= x, by binary search for the upper bound. *)
let count_below t x =
  let lo = ref 0 and hi = ref (Array.length t) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if t.(mid) <= x then lo := mid + 1 else hi := mid
  done;
  !lo

let eval t x = float_of_int (count_below t x) /. float_of_int (Array.length t)

let quantile t q =
  if q < 0. || q > 1. then invalid_arg (Printf.sprintf "Cdf.quantile: %g outside [0, 1]" q);
  Percentile.of_sorted t (q *. 100.)

let min_sample t = t.(0)
let max_sample t = t.(Array.length t - 1)

let curve t ~points =
  if points < 2 then invalid_arg "Cdf.curve: need at least 2 points";
  let lo = min_sample t and hi = max_sample t in
  let step = (hi -. lo) /. float_of_int (points - 1) in
  List.init points (fun i ->
      let x = lo +. (float_of_int i *. step) in
      (x, eval t x))
