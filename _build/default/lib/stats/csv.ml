let escape field =
  let needs_quoting =
    String.exists (fun c -> c = ',' || c = '"' || c = '\n' || c = '\r') field
  in
  if not needs_quoting then field
  else begin
    let buffer = Buffer.create (String.length field + 8) in
    Buffer.add_char buffer '"';
    String.iter
      (fun c ->
        if c = '"' then Buffer.add_string buffer "\"\""
        else Buffer.add_char buffer c)
      field;
    Buffer.add_char buffer '"';
    Buffer.contents buffer
  end

let render ~header rows =
  let width = List.length header in
  List.iteri
    (fun i row ->
      if List.length row <> width then
        invalid_arg
          (Printf.sprintf "Csv.render: row %d has %d fields, expected %d" i
             (List.length row) width))
    rows;
  let line cells = String.concat "," (List.map escape cells) in
  String.concat "\n" (line header :: List.map line rows) ^ "\n"

let write ~path ~header rows =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (render ~header rows))
