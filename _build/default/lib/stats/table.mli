(** Plain-text tables for experiment reports. *)

type t

val make : columns:string list -> t
(** A table with the given column headers.

    @raise Invalid_argument on an empty column list. *)

val add_row : t -> string list -> unit
(** Append a row.

    @raise Invalid_argument if the arity differs from the header. *)

val add_floats : t -> label:string -> float list -> unit
(** Convenience: a label cell followed by [%.3f]-formatted values. *)

val render : t -> string
(** Aligned, boxed with ASCII rules, ready to print. *)

val print : t -> unit
(** [render] to stdout with a trailing newline. *)
