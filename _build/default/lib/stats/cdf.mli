(** Empirical cumulative distribution functions.

    Fig. 8 of the paper plots, for each algorithm, the cumulative number
    of simulation runs whose normalized interactivity falls below each
    value. This module builds that curve from samples. *)

type t
(** An empirical CDF. *)

val of_samples : float array -> t
(** Build from raw samples (copied and sorted).

    @raise Invalid_argument on empty or NaN input. *)

val count : t -> int

val eval : t -> float -> float
(** [eval cdf x] = fraction of samples [<= x], in [[0, 1]]. *)

val count_below : t -> float -> int
(** Number of samples [<= x] — the paper's Fig. 8 y-axis. *)

val quantile : t -> float -> float
(** Inverse CDF by linear interpolation, [0 <= q <= 1].

    @raise Invalid_argument outside [0, 1]. *)

val curve : t -> points:int -> (float * float) list
(** [(x, eval x)] sampled at [points] evenly spaced x-values spanning the
    sample range (endpoints included).

    @raise Invalid_argument if [points < 2]. *)

val min_sample : t -> float
val max_sample : t -> float
