type t = { columns : string list; mutable rows : string list list }

let make ~columns =
  if columns = [] then invalid_arg "Table.make: no columns";
  { columns; rows = [] }

let add_row t row =
  if List.length row <> List.length t.columns then
    invalid_arg
      (Printf.sprintf "Table.add_row: %d cells for %d columns" (List.length row)
         (List.length t.columns));
  t.rows <- row :: t.rows

let add_floats t ~label values =
  add_row t (label :: List.map (Printf.sprintf "%.3f") values)

let render t =
  let rows = List.rev t.rows in
  let widths =
    List.mapi
      (fun i header ->
        List.fold_left
          (fun acc row -> max acc (String.length (List.nth row i)))
          (String.length header) rows)
      t.columns
  in
  let pad width cell = cell ^ String.make (width - String.length cell) ' ' in
  let render_row cells =
    "| " ^ String.concat " | " (List.map2 pad widths cells) ^ " |"
  in
  let rule =
    "+" ^ String.concat "+" (List.map (fun w -> String.make (w + 2) '-') widths) ^ "+"
  in
  String.concat "\n"
    (List.concat
       [ [ rule; render_row t.columns; rule ];
         List.map render_row rows;
         [ rule ] ])

let print t = print_endline (render t)
