(** Summary statistics over float samples. *)

type t = {
  count : int;
  mean : float;
  stddev : float;  (** population standard deviation *)
  min : float;
  max : float;
  median : float;
}

val of_array : float array -> t
(** Summary of a sample. For an empty sample every float field is [nan].
    NaN entries in the input are rejected.

    @raise Invalid_argument on NaN input values. *)

val of_list : float list -> t

val mean : float array -> float
(** [nan] on empty input. *)

val stddev : float array -> float
(** Population standard deviation; [nan] on empty input. *)

val pp : Format.formatter -> t -> unit
(** One-line rendering: [n=… mean=… sd=… min=… med=… max=…]. *)
