(** Percentiles with linear interpolation (the "exclusive" convention is
    avoided; this matches numpy's default "linear" method). *)

val of_sorted : float array -> float -> float
(** [of_sorted sorted p] with [0 <= p <= 100] over an ascending array.

    @raise Invalid_argument on empty input or [p] outside [0, 100]. *)

val compute : float array -> float -> float
(** Like {!of_sorted} but sorts a copy first. O(n log n). *)

val many : float array -> float list -> (float * float) list
(** [(p, value)] pairs sharing one sort. *)
