type t = {
  count : int;
  mean : float;
  stddev : float;
  min : float;
  max : float;
  median : float;
}

let check_input values =
  Array.iter
    (fun v ->
      if Float.is_nan v then invalid_arg "Summary: NaN sample value")
    values

let mean values =
  if Array.length values = 0 then nan
  else Array.fold_left ( +. ) 0. values /. float_of_int (Array.length values)

let stddev values =
  let n = Array.length values in
  if n = 0 then nan
  else begin
    let m = mean values in
    let var =
      Array.fold_left (fun acc v -> acc +. ((v -. m) *. (v -. m))) 0. values
      /. float_of_int n
    in
    sqrt var
  end

let of_array values =
  check_input values;
  let n = Array.length values in
  if n = 0 then { count = 0; mean = nan; stddev = nan; min = nan; max = nan; median = nan }
  else begin
    let sorted = Array.copy values in
    Array.sort Float.compare sorted;
    let median =
      if n mod 2 = 1 then sorted.(n / 2)
      else (sorted.((n / 2) - 1) +. sorted.(n / 2)) /. 2.
    in
    {
      count = n;
      mean = mean values;
      stddev = stddev values;
      min = sorted.(0);
      max = sorted.(n - 1);
      median;
    }
  end

let of_list values = of_array (Array.of_list values)

let pp ppf t =
  Format.fprintf ppf "n=%d mean=%.3f sd=%.3f min=%.3f med=%.3f max=%.3f" t.count
    t.mean t.stddev t.min t.median t.max
