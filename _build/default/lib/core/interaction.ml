type path = {
  from_client : int;
  to_client : int;
  from_server : int;
  to_server : int;
  client_leg : float;
  server_leg : float;
  exit_leg : float;
  length : float;
}

let path p a ci cj =
  let from_server = Assignment.server_of a ci in
  let to_server = Assignment.server_of a cj in
  let client_leg = Problem.d_cs p ci from_server in
  let server_leg = Problem.d_ss p from_server to_server in
  let exit_leg = Problem.d_cs p cj to_server in
  {
    from_client = ci;
    to_client = cj;
    from_server;
    to_server;
    client_leg;
    server_leg;
    exit_leg;
    length = client_leg +. server_leg +. exit_leg;
  }

(* Worst client of each server (by distance), or none if unused. *)
let worst_client_of p a =
  let k = Problem.num_servers p in
  let worst = Array.make k (-1) in
  for c = 0 to Problem.num_clients p - 1 do
    let s = Assignment.server_of a c in
    if worst.(s) < 0 || Problem.d_cs p c s > Problem.d_cs p worst.(s) s then
      worst.(s) <- c
  done;
  worst

let worst_pairs ?(count = 10) p a =
  let k = Problem.num_servers p in
  let worst = worst_client_of p a in
  let candidates = ref [] in
  for s1 = 0 to k - 1 do
    if worst.(s1) >= 0 then
      for s2 = s1 to k - 1 do
        if worst.(s2) >= 0 then
          candidates := path p a worst.(s1) worst.(s2) :: !candidates
      done
  done;
  let ranked =
    List.sort (fun x y -> Float.compare y.length x.length) !candidates
  in
  List.filteri (fun i _ -> i < count) ranked

let client_worst p a c =
  let k = Problem.num_servers p in
  let worst = worst_client_of p a in
  let best = ref (path p a c c) in
  for s = 0 to k - 1 do
    if worst.(s) >= 0 then begin
      let candidate = path p a c worst.(s) in
      if candidate.length > !best.length then best := candidate
    end
  done;
  !best

let server_contribution p a =
  let k = Problem.num_servers p in
  let worst = worst_client_of p a in
  let through = Array.make k neg_infinity in
  for s1 = 0 to k - 1 do
    if worst.(s1) >= 0 then
      for s2 = s1 to k - 1 do
        if worst.(s2) >= 0 then begin
          let len = (path p a worst.(s1) worst.(s2)).length in
          through.(s1) <- Float.max through.(s1) len;
          through.(s2) <- Float.max through.(s2) len
        end
      done
  done;
  Array.to_list (Array.mapi (fun s len -> (s, len)) through)
  |> List.filter (fun (s, _) -> worst.(s) >= 0)
  |> List.sort (fun (_, x) (_, y) -> Float.compare y x)

let breakdown p a =
  match worst_pairs ~count:1 p a with
  | [] -> (nan, nan)
  | worst :: _ -> (worst.client_leg +. worst.exit_leg, worst.server_leg)
