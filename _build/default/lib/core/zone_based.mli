(** Zone-based assignment — the related-work baseline.

    Prior work on interactivity-aware client assignment (the paper's
    [22], [23], [25]) optimises only the {e client-to-server} latency:
    cluster nearby clients into zones, then connect each zone to a
    low-latency server. Section VI argues this is insufficient because it
    ignores inter-server latency and synchronisation delay — the very
    terms the paper's objective charges for.

    This module implements that two-phase strategy faithfully so the
    claim can be measured:

    + {b zoning} — farthest-point clustering of the clients into at most
      [zones] groups by pairwise latency (each client joins its nearest
      zone seed);
    + {b zone assignment} — each zone connects to the server minimising
      the zone's maximum client-to-server latency; different zones may
      share a server, and inter-server distances are deliberately never
      consulted.

    Respects capacities by splitting an overflowing zone across its
    best servers (nearest clients first). *)

val assign : ?zones:int -> Problem.t -> Assignment.t
(** [zones] defaults to the number of servers. O(zones · |C| · |S|).

    @raise Invalid_argument if [zones < 1]. *)
