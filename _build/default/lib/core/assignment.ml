type t = int array

let of_array p a =
  if Array.length a <> Problem.num_clients p then
    invalid_arg
      (Printf.sprintf "Assignment: %d entries for %d clients" (Array.length a)
         (Problem.num_clients p));
  let k = Problem.num_servers p in
  Array.iter
    (fun s ->
      if s < 0 || s >= k then
        invalid_arg (Printf.sprintf "Assignment: server index %d out of bounds [0, %d)" s k))
    a;
  Array.copy a

let unsafe_of_array a = a
let to_array a = Array.copy a
let server_of a c = a.(c)
let num_clients a = Array.length a

let loads p a =
  let counts = Array.make (Problem.num_servers p) 0 in
  Array.iter (fun s -> counts.(s) <- counts.(s) + 1) a;
  counts

let used_servers p a =
  let counts = loads p a in
  let used = ref [] in
  for s = Array.length counts - 1 downto 0 do
    if counts.(s) > 0 then used := s :: !used
  done;
  Array.of_list !used

let respects_capacity p a =
  match Problem.capacity p with
  | None -> true
  | Some cap -> Array.for_all (fun load -> load <= cap) (loads p a)

let equal = ( = )

let constant p s =
  if s < 0 || s >= Problem.num_servers p then
    invalid_arg (Printf.sprintf "Assignment.constant: bad server index %d" s);
  Array.make (Problem.num_clients p) s

let random p ~seed =
  let rng = Random.State.make [| seed |] in
  let k = Problem.num_servers p in
  Array.init (Problem.num_clients p) (fun _ -> Random.State.int rng k)

let pp ppf a =
  Format.fprintf ppf "@[<h>[%a]@]"
    (Format.pp_print_array
       ~pp_sep:(fun ppf () -> Format.pp_print_string ppf "; ")
       Format.pp_print_int)
    a
