(** Longest-First-Batch Assignment (Section IV-B).

    Iteratively picks the unassigned client [c] whose distance to its
    nearest server [s] is longest, assigns [c] to [s], and batches onto
    [s] every unassigned client no farther from [s] than [c]. Because a
    client not assigned to its nearest server can then never be the
    farthest client of its assigned server, the longest interaction path
    connects two nearest-server-assigned clients, so the objective never
    exceeds Nearest-Server Assignment's (and inherits its approximation
    ratio of 3).

    Capacitated variant (Section IV-E): when a batch would overload [s],
    only the clients closest to [s] are kept, filling [s] exactly to
    capacity (keeping the near ones minimises the eccentricity [s]
    contributes); the rest recompute their nearest servers among
    unsaturated servers and re-enter the pool. *)

val assign : Problem.t -> Assignment.t
(** Runs the capacitated variant automatically when the instance has a
    capacity. O(|C| (|C| + |S|)) uncapacitated. *)
