let of_assignment p assignment =
  let ecc = Array.make (Problem.num_servers p) neg_infinity in
  Array.iteri
    (fun c s ->
      let d = Problem.d_cs p c s in
      if d > ecc.(s) then ecc.(s) <- d)
    assignment;
  ecc

let objective p ecc =
  let k = Problem.num_servers p in
  let best = ref neg_infinity in
  for s1 = 0 to k - 1 do
    if ecc.(s1) > neg_infinity then
      for s2 = s1 to k - 1 do
        if ecc.(s2) > neg_infinity then begin
          let len = ecc.(s1) +. Problem.d_ss p s1 s2 +. ecc.(s2) in
          if len > !best then best := len
        end
      done
  done;
  !best

let excluding p assignment ~server ~client =
  let worst = ref neg_infinity in
  Array.iteri
    (fun c s ->
      if s = server && c <> client then begin
        let d = Problem.d_cs p c s in
        if d > !worst then worst := d
      end)
    assignment;
  !worst

let attach p ecc ~client ~server =
  let d = Problem.d_cs p client server in
  let worst = ref (2. *. d) in
  for s'' = 0 to Problem.num_servers p - 1 do
    if ecc.(s'') > neg_infinity then begin
      let len = d +. Problem.d_ss p server s'' +. ecc.(s'') in
      if len > !worst then worst := len
    end
  done;
  !worst
