let assign_uncapacitated p =
  Assignment.unsafe_of_array
    (Array.init (Problem.num_clients p) (fun c -> Problem.nearest_server p c))

let assign_capacitated p cap =
  let load = Array.make (Problem.num_servers p) 0 in
  let pick c =
    let order = Problem.servers_by_distance p c in
    let rec try_servers i =
      if i >= Array.length order then
        (* make/with_capacity guarantee cap * |S| >= |C|, so a free server
           always exists. *)
        assert false
      else begin
        let s = order.(i) in
        if load.(s) < cap then begin
          load.(s) <- load.(s) + 1;
          s
        end
        else try_servers (i + 1)
      end
    in
    try_servers 0
  in
  Assignment.unsafe_of_array (Array.init (Problem.num_clients p) pick)

let assign p =
  match Problem.capacity p with
  | None -> assign_uncapacitated p
  | Some cap -> assign_capacitated p cap
