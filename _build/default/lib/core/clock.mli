(** Simulation-time offsets achieving the minimum interaction time.

    Section II-C proves that with the operation-execution lag
    [delta = D(A)] and suitable constant offsets between the simulation
    times of servers and clients, both feasibility constraints hold:

    - (i) every server receives every operation before executing it, and
    - (ii) every client receives every state update in time.

    The constructive setting synchronises all client clocks
    ([Δ(c, c') = 0]) and gives server [s] the offset
    [Δ(s, c) = D - max over clients c' of d(c', sA(c')) + d(sA(c'), s)]
    relative to any client. This module synthesises those offsets,
    verifies the constraints for arbitrary offset/lag choices, and is what
    {!Dia_sim} uses to schedule executions. *)

type t = {
  delta : float;  (** the execution lag — equals [D(A)] when synthesised *)
  server_offset : float array;
      (** [server_offset.(s)] = [Δ(s, c)] for every client [c] (client
          clocks are synchronised), indexed by server index *)
}

val synthesize : Problem.t -> Assignment.t -> t
(** The paper's construction: [delta = D(A)] and the offsets above.

    @raise Invalid_argument if the instance has no clients. *)

val constraint_i_ok : ?eps:float -> Problem.t -> Assignment.t -> t -> bool
(** Constraint (i): for every client [c] and server [s],
    [d(c, sA(c)) + d(sA(c), s) + Δ(s, c) <= delta]. *)

val constraint_ii_ok : ?eps:float -> Problem.t -> Assignment.t -> t -> bool
(** Constraint (ii): for every client [c],
    [d(sA(c), c) + Δ(c, sA(c)) <= 0]. *)

val feasible : ?eps:float -> Problem.t -> Assignment.t -> t -> bool
(** Both constraints. The synthesised offsets always satisfy this with
    [delta = D(A)]; any [delta < D(A)] is infeasible for every choice of
    offsets (Section II-C). *)

val interaction_time : t -> float
(** The uniform interaction time between every (ordered) client pair
    under synchronised client clocks: exactly [delta]. *)

val slack_i : Problem.t -> Assignment.t -> t -> float
(** Minimum slack of constraint (i) over all (client, server) pairs —
    [>= 0] iff the constraint holds; [0] at the binding pair. *)

val slack_ii : Problem.t -> Assignment.t -> t -> float
(** Minimum slack of constraint (ii) over all clients. *)
