type t = { delta : float; server_offset : float array }

(* max over clients c' of d(c', sA(c')) + d(sA(c'), s): the longest time
   for server s to learn of any client's operation. Computed from
   per-server eccentricities in O(|S|) per server. *)
let longest_reach p a =
  let ecc = Objective.eccentricities p a in
  let k = Problem.num_servers p in
  Array.init k (fun s ->
      let reach = ref neg_infinity in
      for s' = 0 to k - 1 do
        if ecc.(s') > neg_infinity then
          reach := Float.max !reach (ecc.(s') +. Problem.d_ss p s' s)
      done;
      !reach)

let synthesize p a =
  if Problem.num_clients p = 0 then invalid_arg "Clock.synthesize: no clients";
  let d = Objective.max_interaction_path p a in
  let reach = longest_reach p a in
  { delta = d; server_offset = Array.map (fun r -> d -. r) reach }

let slack_i p a t =
  let worst = ref infinity in
  for c = 0 to Problem.num_clients p - 1 do
    let sc = Assignment.server_of a c in
    for s = 0 to Problem.num_servers p - 1 do
      let slack =
        t.delta -. (Problem.d_cs p c sc +. Problem.d_ss p sc s +. t.server_offset.(s))
      in
      if slack < !worst then worst := slack
    done
  done;
  !worst

let slack_ii p a t =
  let worst = ref infinity in
  for c = 0 to Problem.num_clients p - 1 do
    let sc = Assignment.server_of a c in
    (* Δ(c, s) = -Δ(s, c). *)
    let slack = -.(Problem.d_cs p c sc -. t.server_offset.(sc)) in
    if slack < !worst then worst := slack
  done;
  !worst

let constraint_i_ok ?(eps = 1e-9) p a t = slack_i p a t >= -.eps
let constraint_ii_ok ?(eps = 1e-9) p a t = slack_ii p a t >= -.eps

let feasible ?eps p a t = constraint_i_ok ?eps p a t && constraint_ii_ok ?eps p a t

let interaction_time t = t.delta
