(** Exact optimal assignment by branch-and-bound.

    The client assignment problem is NP-complete (Section III), so this
    is exponential in the worst case and intended for small instances:
    validating that the heuristics are near-optimal, and ground truth in
    tests. The search assigns clients one at a time in decreasing order of
    nearest-server distance (hard clients first), tracks per-server
    eccentricities incrementally, prunes any branch whose partial
    objective already reaches the best complete one, and seeds the
    incumbent with the better of Greedy and Longest-First-Batch so pruning
    bites immediately. Respects capacities. *)

val optimal : ?node_limit:int -> Problem.t -> Assignment.t * float
(** [optimal p] is an optimal assignment and its objective value.

    [node_limit] (default [50_000_000]) bounds the number of search nodes
    explored.

    @raise Failure if the limit is exceeded — the instance is too big for
    exact search. *)

val optimal_value : ?node_limit:int -> Problem.t -> float
(** Objective value only. *)
