let assign ?zones p =
  let n = Problem.num_clients p in
  let k = Problem.num_servers p in
  let zones = Option.value ~default:k zones in
  if zones < 1 then invalid_arg "Zone_based.assign: need at least one zone";
  let capacity = match Problem.capacity p with None -> max_int | Some c -> c in
  let result = Array.make n (-1) in
  if n > 0 then begin
    (* Phase 1: farthest-point zone seeds over client-to-client latency,
       then nearest-seed membership. *)
    let zones = min zones n in
    let seeds = Array.make zones 0 in
    let dist_to_seed = Array.init n (fun c -> Problem.d_cc p c seeds.(0)) in
    for z = 1 to zones - 1 do
      let farthest = ref 0 in
      for c = 1 to n - 1 do
        if dist_to_seed.(c) > dist_to_seed.(!farthest) then farthest := c
      done;
      seeds.(z) <- !farthest;
      for c = 0 to n - 1 do
        dist_to_seed.(c) <- Float.min dist_to_seed.(c) (Problem.d_cc p c !farthest)
      done
    done;
    let zone_of =
      Array.init n (fun c ->
          let best = ref 0 in
          for z = 1 to zones - 1 do
            if Problem.d_cc p c seeds.(z) < Problem.d_cc p c seeds.(!best) then
              best := z
          done;
          !best)
    in
    (* Phase 2: per zone, servers ranked by the zone's worst
       client-to-server latency; fill respecting capacity, nearest
       clients first. Inter-server latency is never consulted. *)
    let load = Array.make k 0 in
    for z = 0 to zones - 1 do
      let members =
        List.filter (fun c -> zone_of.(c) = z) (List.init n Fun.id)
      in
      if members <> [] then begin
        let zone_radius s =
          List.fold_left
            (fun acc c -> Float.max acc (Problem.d_cs p c s))
            neg_infinity members
        in
        let ranked =
          List.sort
            (fun s1 s2 -> Float.compare (zone_radius s1) (zone_radius s2))
            (List.init k Fun.id)
        in
        (* Walk servers in preference order, filling each to capacity with
           the zone's nearest remaining clients. *)
        let remaining = ref members in
        List.iter
          (fun s ->
            if !remaining <> [] && load.(s) < capacity then begin
              let sorted =
                List.sort
                  (fun a b ->
                    Float.compare (Problem.d_cs p a s) (Problem.d_cs p b s))
                  !remaining
              in
              let room = capacity - load.(s) in
              List.iteri
                (fun i c ->
                  if i < room then begin
                    result.(c) <- s;
                    load.(s) <- load.(s) + 1
                  end)
                sorted;
              remaining := List.filter (fun c -> result.(c) < 0) !remaining
            end)
          ranked
      end
    done
  end;
  Assignment.unsafe_of_array result
