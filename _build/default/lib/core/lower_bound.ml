(* For a fixed client c, define f_c(s') = min over s of d(c,s) + d(s,s'):
   the cheapest way to reach "exit server" s' from c via any entry server.
   Then LB = max over pairs (c, c') of min over s' of f_c(s') + d(s',c').

   Pruning: with ns(c') the nearest server to c' and nd(c') its distance,
   g(c, c') <= f_c(ns(c')) + nd(c'), so whenever that upper bound does not
   beat the best pair found so far the O(|S|) inner minimisation is
   skipped. *)

let reach_costs p =
  let k = Problem.num_servers p in
  let n = Problem.num_clients p in
  let f = Array.make_matrix n k infinity in
  for c = 0 to n - 1 do
    let row = f.(c) in
    for s = 0 to k - 1 do
      let dcs = Problem.d_cs p c s in
      for s' = 0 to k - 1 do
        let cost = dcs +. Problem.d_ss p s s' in
        if cost < row.(s') then row.(s') <- cost
      done
    done
  done;
  f

let compute p =
  let n = Problem.num_clients p in
  if n = 0 then neg_infinity
  else begin
    let k = Problem.num_servers p in
    let f = reach_costs p in
    let nearest = Array.init n (fun c -> Problem.nearest_server p c) in
    let nearest_dist = Array.init n (fun c -> Problem.d_cs p c nearest.(c)) in
    let best = ref neg_infinity in
    for c = 0 to n - 1 do
      let row = f.(c) in
      for c' = c to n - 1 do
        let upper = row.(nearest.(c')) +. nearest_dist.(c') in
        if upper > !best then begin
          let g = ref upper in
          for s' = 0 to k - 1 do
            let len = row.(s') +. Problem.d_cs p c' s' in
            if len < !g then g := len
          done;
          if !g > !best then best := !g
        end
      done
    done;
    !best
  end

let naive p =
  let n = Problem.num_clients p and k = Problem.num_servers p in
  let best = ref neg_infinity in
  for c = 0 to n - 1 do
    for c' = c to n - 1 do
      let g = ref infinity in
      for s = 0 to k - 1 do
        for s' = 0 to k - 1 do
          let len = Problem.d_cs p c s +. Problem.d_ss p s s' +. Problem.d_cs p c' s' in
          if len < !g then g := len
        done
      done;
      if !g > !best then best := !g
    done
  done;
  !best

let normalized p a =
  let lb = compute p in
  if not (Float.is_finite lb) || lb <= 0. then nan
  else Objective.max_interaction_path p a /. lb
