(** Client assignments.

    An assignment maps every client index of a {!Problem} instance to a
    server index — the paper's [sA : C -> S]. Stored as a plain int array
    indexed by client. *)

type t

val of_array : Problem.t -> int array -> t
(** [of_array p a] validates that [a] has one entry per client and every
    entry is a valid server index. The array is copied.

    @raise Invalid_argument otherwise. *)

val unsafe_of_array : int array -> t
(** Wrap without validation or copy — for algorithm internals that build
    the array themselves. *)

val to_array : t -> int array
(** A fresh copy of the underlying array. *)

val server_of : t -> int -> int
(** [server_of a c] is the server index client [c] is assigned to. *)

val num_clients : t -> int

val loads : Problem.t -> t -> int array
(** [loads p a] counts assigned clients per server index. *)

val used_servers : Problem.t -> t -> int array
(** Server indices with at least one client, ascending. *)

val respects_capacity : Problem.t -> t -> bool
(** Whether no server exceeds the instance capacity (always true for
    uncapacitated instances). *)

val equal : t -> t -> bool

val constant : Problem.t -> int -> t
(** [constant p s] assigns every client to server [s].

    @raise Invalid_argument if [s] is out of range. *)

val random : Problem.t -> seed:int -> t
(** Uniform random server per client. Ignores capacity. *)

val pp : Format.formatter -> t -> unit
