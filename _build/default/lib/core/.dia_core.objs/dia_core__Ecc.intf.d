lib/core/ecc.mli: Problem
