lib/core/dynamic.mli: Assignment Dia_latency Problem
