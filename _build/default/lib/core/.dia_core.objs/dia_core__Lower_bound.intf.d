lib/core/lower_bound.mli: Assignment Problem
