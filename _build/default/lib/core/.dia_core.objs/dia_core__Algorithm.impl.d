lib/core/algorithm.ml: Baselines Distributed_greedy Greedy Longest_first_batch Nearest
