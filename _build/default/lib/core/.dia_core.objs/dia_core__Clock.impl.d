lib/core/clock.ml: Array Assignment Float Objective Problem
