lib/core/greedy.mli: Assignment Problem
