lib/core/distributed_greedy.ml: Array Assignment Ecc Float List Nearest Problem
