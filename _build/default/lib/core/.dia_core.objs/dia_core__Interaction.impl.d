lib/core/interaction.ml: Array Assignment Float List Problem
