lib/core/objective.mli: Assignment Problem
