lib/core/brute_force.ml: Array Assignment Ecc Float Fun Greedy List Longest_first_batch Objective Printf Problem
