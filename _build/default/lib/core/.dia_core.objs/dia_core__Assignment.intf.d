lib/core/assignment.mli: Format Problem
