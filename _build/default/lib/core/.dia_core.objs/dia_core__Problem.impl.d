lib/core/problem.ml: Array Dia_latency Float Fun Hashtbl Printf
