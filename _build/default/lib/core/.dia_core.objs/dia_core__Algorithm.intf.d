lib/core/algorithm.mli: Assignment Problem
