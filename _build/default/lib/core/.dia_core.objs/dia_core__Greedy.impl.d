lib/core/greedy.ml: Array Assignment Float Fun List Problem
