lib/core/local_search.ml: Array Assignment Ecc Float Problem Random
