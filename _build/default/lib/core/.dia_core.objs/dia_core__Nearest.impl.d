lib/core/nearest.ml: Array Assignment Problem
