lib/core/nearest.mli: Assignment Problem
