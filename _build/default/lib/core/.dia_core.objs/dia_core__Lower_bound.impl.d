lib/core/lower_bound.ml: Array Float Objective Problem
