lib/core/distributed_greedy.mli: Assignment Problem
