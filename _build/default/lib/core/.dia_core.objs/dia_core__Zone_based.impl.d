lib/core/zone_based.ml: Array Assignment Float Fun List Option Problem
