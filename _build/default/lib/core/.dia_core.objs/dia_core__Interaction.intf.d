lib/core/interaction.mli: Assignment Problem
