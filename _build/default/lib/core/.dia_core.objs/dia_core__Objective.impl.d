lib/core/objective.ml: Array Assignment Problem
