lib/core/problem.mli: Dia_latency
