lib/core/brute_force.mli: Assignment Problem
