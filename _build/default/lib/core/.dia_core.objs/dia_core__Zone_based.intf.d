lib/core/zone_based.mli: Assignment Problem
