lib/core/clock.mli: Assignment Problem
