lib/core/dynamic.ml: Array Assignment Dia_latency Float Fun Hashtbl List Option Printf Problem
