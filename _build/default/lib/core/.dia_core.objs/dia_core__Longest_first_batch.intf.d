lib/core/longest_first_batch.mli: Assignment Problem
