lib/core/ecc.ml: Array Problem
