lib/core/baselines.mli: Assignment Problem
