lib/core/assignment.ml: Array Format Printf Problem Random
