lib/core/longest_first_batch.ml: Array Assignment Float Fun Problem
