lib/core/baselines.ml: Array Assignment Float Problem Random
