(** Trivial baseline assignments.

    Section III motivates the problem with two extremes: assigning every
    client to its nearest server optimises only client-server latency,
    while assigning all clients to one server eliminates the inter-server
    term at the cost of long client-server paths. {!Nearest} covers the
    first; this module provides the second, plus a random assignment for
    calibration. *)

val best_single_server : Problem.t -> Assignment.t
(** All clients on the single server [s] minimising the resulting
    objective [2 max_c d(c, s)]. Ignores capacity (a single server
    rarely satisfies one — callers should check
    {!Assignment.respects_capacity}). O(|C| |S|). *)

val random : seed:int -> Problem.t -> Assignment.t
(** Uniform random server per client; respects capacity by re-drawing
    among unsaturated servers. *)
