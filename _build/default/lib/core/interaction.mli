(** Interaction-path diagnostics.

    Operators do not just want the objective value — they want to know
    {e which} client pairs are slow, through which servers, and what each
    client individually experiences. These inspectors decompose the
    objective of Section II-A into its parts. All run in
    O(|C| + |S|²)-ish time via eccentricities, except {!worst_pairs}
    which materialises only the requested number of pairs. *)

type path = {
  from_client : int;
  to_client : int;
  from_server : int;  (** assigned server of [from_client] *)
  to_server : int;
  client_leg : float;  (** d(from_client, from_server) *)
  server_leg : float;  (** d(from_server, to_server) *)
  exit_leg : float;  (** d(to_server, to_client) *)
  length : float;
}

val path : Problem.t -> Assignment.t -> int -> int -> path
(** Decomposed interaction path between two client indices. *)

val worst_pairs : ?count:int -> Problem.t -> Assignment.t -> path list
(** The [count] (default 10) longest interaction paths, longest first.
    Computed from per-server worst clients, so only O(|S|²) candidate
    pairs are ranked — for each used server pair, the worst client on
    each side. Includes a client's round trip to itself. *)

val client_worst : Problem.t -> Assignment.t -> int -> path
(** The longest interaction path involving one given client — what that
    player would complain about. O(|C| + |S|²). *)

val server_contribution : Problem.t -> Assignment.t -> (int * float) list
(** Per used server: the length of the longest interaction path through
    it — the server whose contribution equals [D(A)] is the one to fix
    (re-place, or re-assign its far clients). Descending. *)

val breakdown : Problem.t -> Assignment.t -> float * float
(** Of the objective [D(A)]: [(client_legs, server_leg)] — how much of
    the worst path is access latency vs inter-server latency. Their sum
    is [D(A)]. The paper's critique of Nearest-Server is precisely that
    it minimises the first at the expense of the second. *)
