let assign_uncapacitated p =
  let n = Problem.num_clients p in
  let nearest = Array.init n (fun c -> Problem.nearest_server p c) in
  let nearest_dist = Array.init n (fun c -> Problem.d_cs p c nearest.(c)) in
  (* Clients sorted by distance to their nearest server, longest first. *)
  let order = Array.init n Fun.id in
  Array.sort (fun a b -> Float.compare nearest_dist.(b) nearest_dist.(a)) order;
  let result = Array.make n (-1) in
  Array.iter
    (fun c ->
      if result.(c) < 0 then begin
        let s = nearest.(c) in
        let radius = nearest_dist.(c) in
        result.(c) <- s;
        for c' = 0 to n - 1 do
          if result.(c') < 0 && Problem.d_cs p c' s <= radius then result.(c') <- s
        done
      end)
    order;
  Assignment.unsafe_of_array result

let assign_capacitated p cap =
  let n = Problem.num_clients p in
  let k = Problem.num_servers p in
  let load = Array.make k 0 in
  let result = Array.make n (-1) in
  let remaining = ref n in
  (* Each round recomputes nearest unsaturated servers for the pool, picks
     the pool client farthest from its nearest server, and fills that
     server with the pool clients closest to it (at most its remaining
     capacity, always including enough to make progress). *)
  while !remaining > 0 do
    let saturated s = load.(s) >= cap in
    let nearest_unsaturated c =
      let best = ref (-1) in
      for s = 0 to k - 1 do
        if not (saturated s) && (!best < 0 || Problem.d_cs p c s < Problem.d_cs p c !best)
        then best := s
      done;
      assert (!best >= 0);
      !best
    in
    let driver = ref (-1) and driver_server = ref (-1) and driver_dist = ref neg_infinity in
    for c = 0 to n - 1 do
      if result.(c) < 0 then begin
        let s = nearest_unsaturated c in
        let d = Problem.d_cs p c s in
        if d > !driver_dist then begin
          driver := c;
          driver_server := s;
          driver_dist := d
        end
      end
    done;
    let s = !driver_server in
    let batch = ref [] in
    for c = 0 to n - 1 do
      if result.(c) < 0 && Problem.d_cs p c s <= !driver_dist then batch := c :: !batch
    done;
    let batch = Array.of_list !batch in
    Array.sort
      (fun a b -> Float.compare (Problem.d_cs p a s) (Problem.d_cs p b s))
      batch;
    let room = cap - load.(s) in
    let take = min room (Array.length batch) in
    for i = 0 to take - 1 do
      result.(batch.(i)) <- s;
      load.(s) <- load.(s) + 1;
      decr remaining
    done
  done;
  Assignment.unsafe_of_array result

let assign p =
  match Problem.capacity p with
  | None -> assign_uncapacitated p
  | Some cap -> assign_capacitated p cap
