let best_single_server p =
  let k = Problem.num_servers p and n = Problem.num_clients p in
  let best = ref 0 and best_ecc = ref infinity in
  for s = 0 to k - 1 do
    let ecc = ref 0. in
    for c = 0 to n - 1 do
      ecc := Float.max !ecc (Problem.d_cs p c s)
    done;
    if !ecc < !best_ecc then begin
      best_ecc := !ecc;
      best := s
    end
  done;
  Assignment.constant p !best

let random ~seed p =
  let rng = Random.State.make [| seed |] in
  let k = Problem.num_servers p in
  let capacity = match Problem.capacity p with None -> max_int | Some c -> c in
  let load = Array.make k 0 in
  let rec draw () =
    let s = Random.State.int rng k in
    if load.(s) < capacity then begin
      load.(s) <- load.(s) + 1;
      s
    end
    else draw ()
  in
  Assignment.unsafe_of_array (Array.init (Problem.num_clients p) (fun _ -> draw ()))
