(* Direct implementation of the paper's Fig. 6, with one strengthening:
   line 11's max over assigned clients b of d(s, sA(b)) + d(sA(b), b) is
   computed from per-server eccentricities (O(|S|) instead of O(|C|)).

   Tie-breaking on the cost Δl/Δn: costs are compared as cross-products
   (Δl1 * Δn2 vs Δl2 * Δn1) to avoid float division, with ties broken by
   larger Δn (bigger batch for the same amortised cost), then by server
   and client index for determinism. *)

type candidate = { cost_num : float; cost_den : int; len : float; c : int; s : int }

let better a b =
  let cross = Float.compare (a.cost_num *. float_of_int b.cost_den)
      (b.cost_num *. float_of_int a.cost_den) in
  if cross <> 0 then cross < 0
  else if a.cost_den <> b.cost_den then a.cost_den > b.cost_den
  else (a.s, a.c) < (b.s, b.c)

let assign p =
  let n = Problem.num_clients p in
  let k = Problem.num_servers p in
  let capacity = match Problem.capacity p with None -> max_int | Some c -> c in
  let result = Array.make n (-1) in
  if n > 0 then begin
    (* Ls: for each server, clients sorted by distance ascending. *)
    let sorted =
      Array.init k (fun s ->
          let order = Array.init n Fun.id in
          Array.sort
            (fun a b -> Float.compare (Problem.d_cs p a s) (Problem.d_cs p b s))
            order;
          order)
    in
    (* index.(s).(c) = number of unassigned clients c' with position <=
       position of c in Ls — the paper's index[s, c], i.e. Δn. *)
    let index = Array.make_matrix k n 0 in
    let rebuild_indexes () =
      for s = 0 to k - 1 do
        let row = index.(s) and ls = sorted.(s) in
        let unassigned = ref 0 in
        for i = 0 to n - 1 do
          let c = ls.(i) in
          if result.(c) < 0 then incr unassigned;
          row.(c) <- !unassigned
        done
      done
    in
    rebuild_indexes ();
    let ecc = Array.make k neg_infinity in
    let load = Array.make k 0 in
    let max_len = ref 0. in
    let remaining = ref n in
    while !remaining > 0 do
      let best = ref None in
      for s = 0 to k - 1 do
        if load.(s) < capacity then begin
          (* m = max over assigned clients b of d(s, sA(b)) + d(sA(b), b);
             neg_infinity while nothing is assigned, in which case only
             the 2 d(c, s) term matters. *)
          let m = ref neg_infinity in
          for s' = 0 to k - 1 do
            if ecc.(s') > neg_infinity then begin
              let reach = Problem.d_ss p s s' +. ecc.(s') in
              if reach > !m then m := reach
            end
          done;
          let room = capacity - load.(s) in
          for c = 0 to n - 1 do
            if result.(c) < 0 && index.(s).(c) <= room then begin
              let d = Problem.d_cs p c s in
              let len = Float.max (2. *. d) (Float.max (d +. !m) !max_len) in
              let cand =
                { cost_num = len -. !max_len; cost_den = index.(s).(c); len; c; s }
              in
              match !best with
              | Some b when not (better cand b) -> ()
              | _ -> best := Some cand
            end
          done
        end
      done;
      let chosen =
        match !best with
        | Some cand -> cand
        | None ->
            (* Unreachable: an unsaturated server always admits its nearest
               unassigned client (Δn = 1) and total capacity covers |C|. *)
            assert false
      in
      (* Commit exactly Δn clients: the unassigned ones closest to s*, the
         last of which is c* (or ties with it). Walking Ls rather than
         filtering on distance keeps capacitated batches exact even when
         several clients are equidistant. *)
      let ls = sorted.(chosen.s) in
      let taken = ref 0 and i = ref 0 in
      while !taken < chosen.cost_den do
        let c = ls.(!i) in
        if result.(c) < 0 then begin
          result.(c) <- chosen.s;
          load.(chosen.s) <- load.(chosen.s) + 1;
          decr remaining;
          incr taken;
          let d = Problem.d_cs p c chosen.s in
          if d > ecc.(chosen.s) then ecc.(chosen.s) <- d
        end;
        incr i
      done;
      max_len := chosen.len;
      rebuild_indexes ()
    done
  end;
  Assignment.unsafe_of_array result

let assign_reference p =
  let n = Problem.num_clients p in
  let k = Problem.num_servers p in
  let capacity = match Problem.capacity p with None -> max_int | Some c -> c in
  let result = Array.make n (-1) in
  let ecc = Array.make k neg_infinity in
  let load = Array.make k 0 in
  let max_len = ref 0. in
  let remaining = ref n in
  (* Δn by direct scan: unassigned clients no farther from s than c. *)
  let batch_size s c =
    let d = Problem.d_cs p c s in
    let count = ref 0 in
    for c' = 0 to n - 1 do
      if result.(c') < 0 && Problem.d_cs p c' s <= d then incr count
    done;
    !count
  in
  while !remaining > 0 do
    let best = ref None in
    for s = 0 to k - 1 do
      if load.(s) < capacity then begin
        let m = ref neg_infinity in
        for s' = 0 to k - 1 do
          if ecc.(s') > neg_infinity then
            m := Float.max !m (Problem.d_ss p s s' +. ecc.(s'))
        done;
        let room = capacity - load.(s) in
        for c = 0 to n - 1 do
          if result.(c) < 0 then begin
            let delta_n = batch_size s c in
            if delta_n <= room then begin
              let d = Problem.d_cs p c s in
              let len = Float.max (2. *. d) (Float.max (d +. !m) !max_len) in
              let cand =
                { cost_num = len -. !max_len; cost_den = delta_n; len; c; s }
              in
              match !best with
              | Some b when not (better cand b) -> ()
              | _ -> best := Some cand
            end
          end
        done
      end
    done;
    let chosen = match !best with Some cand -> cand | None -> assert false in
    let radius = Problem.d_cs p chosen.c chosen.s in
    (* Commit the batch: the Δn closest unassigned clients (walk by
       distance, ties by client index, mirroring the sorted-list walk). *)
    let members =
      List.init n Fun.id
      |> List.filter (fun c -> result.(c) < 0 && Problem.d_cs p c chosen.s <= radius)
      |> List.sort (fun a b ->
             match
               Float.compare (Problem.d_cs p a chosen.s) (Problem.d_cs p b chosen.s)
             with
             | 0 -> compare a b
             | cmp -> cmp)
      |> List.filteri (fun i _ -> i < chosen.cost_den)
    in
    List.iter
      (fun c ->
        result.(c) <- chosen.s;
        load.(chosen.s) <- load.(chosen.s) + 1;
        decr remaining;
        ecc.(chosen.s) <- Float.max ecc.(chosen.s) (Problem.d_cs p c chosen.s))
      members;
    max_len := chosen.len
  done;
  Assignment.unsafe_of_array result
