type timewarp_outcome = {
  server : int;
  rollbacks : int;
  replayed : int;
  max_depth : int;
  converged : bool;
}

type tss_outcome = {
  server : int;
  divergences : int;
  dropped : int;
  converged : bool;
}

(* report.operations is sorted by issue time (= timestamp order, since
   the execution timestamp adds the same delta to every operation). *)
let canonical_state (report : Protocol.report) =
  State.apply_all (State.initial ~clients:report.Protocol.clients)
    report.Protocol.operations

(* Per-server execution records in their real execution order (the
   report lists executions chronologically). *)
let per_server (report : Protocol.report) =
  let by_server = Hashtbl.create 16 in
  List.iter
    (fun (e : Protocol.execution) ->
      let previous = Option.value ~default:[] (Hashtbl.find_opt by_server e.server) in
      Hashtbl.replace by_server e.server (e :: previous))
    report.Protocol.executions;
  Hashtbl.fold (fun server execs acc -> (server, List.rev execs) :: acc) by_server []
  |> List.sort compare

let op_index (report : Protocol.report) =
  let ops = Hashtbl.create 64 in
  List.iter
    (fun (op : Workload.op) -> Hashtbl.replace ops op.op_id op)
    report.Protocol.operations;
  ops

let timewarp (report : Protocol.report) =
  let canonical = State.digest (canonical_state report) in
  let ops = op_index report in
  List.map
    (fun (server, execs) ->
      let warp = Timewarp.create ~clients:report.Protocol.clients () in
      List.iter
        (fun (e : Protocol.execution) ->
          ignore
            (Timewarp.execute warp ~timestamp:e.target_sim (Hashtbl.find ops e.op_id)))
        execs;
      {
        server;
        rollbacks = Timewarp.rollbacks warp;
        replayed = Timewarp.replayed warp;
        max_depth = Timewarp.max_rollback_depth warp;
        converged = State.digest (Timewarp.state warp) = canonical;
      })
    (per_server report)

let tss ~lag (report : Protocol.report) =
  let canonical = State.digest (canonical_state report) in
  let ops = op_index report in
  List.map
    (fun (server, execs) ->
      let sync = Tss.create ~clients:report.Protocol.clients ~lag in
      List.iter
        (fun (e : Protocol.execution) ->
          (* The record's actual_sim is the server's simulation time at
             arrival-and-execution; the trailing copy advances with it. *)
          Tss.advance sync ~now:e.actual_sim;
          Tss.deliver sync ~timestamp:e.target_sim (Hashtbl.find ops e.op_id))
        execs;
      let final = Tss.finish sync in
      let dropped = Tss.dropped sync in
      {
        server;
        divergences = Tss.divergences sync;
        dropped;
        converged = dropped = 0 && State.digest final = canonical;
      })
    (per_server report)

let total_rollbacks outcomes =
  List.fold_left (fun acc (o : timewarp_outcome) -> acc + o.rollbacks) 0 outcomes

let all_converged_timewarp outcomes =
  List.for_all (fun (o : timewarp_outcome) -> o.converged) outcomes

let all_converged_tss outcomes =
  List.for_all (fun (o : tss_outcome) -> o.converged) outcomes
