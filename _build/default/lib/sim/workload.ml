type op = { op_id : int; issuer : int; issue_time : float }

let of_pairs pairs =
  List.iter
    (fun (_, t) ->
      if t < 0. || not (Float.is_finite t) then
        invalid_arg (Printf.sprintf "Workload: issue time %g invalid" t))
    pairs;
  let indexed = List.mapi (fun i (issuer, t) -> (t, i, issuer)) pairs in
  let sorted = List.sort compare indexed in
  List.mapi (fun op_id (issue_time, _, issuer) -> { op_id; issuer; issue_time }) sorted

let of_list = of_pairs

let rounds ~clients ~rounds ~period =
  if clients < 0 || rounds < 0 then invalid_arg "Workload.rounds: negative counts";
  if period <= 0. then invalid_arg "Workload.rounds: period must be positive";
  let pairs = ref [] in
  for r = rounds - 1 downto 0 do
    for c = clients - 1 downto 0 do
      pairs := (c, float_of_int r *. period) :: !pairs
    done
  done;
  of_pairs !pairs

let poisson ~seed ~clients ~rate ~horizon =
  if rate <= 0. then invalid_arg "Workload.poisson: rate must be positive";
  if horizon < 0. then invalid_arg "Workload.poisson: negative horizon";
  let rng = Random.State.make [| seed |] in
  let pairs = ref [] in
  for c = 0 to clients - 1 do
    let t = ref 0. in
    let continue = ref true in
    while !continue do
      let gap = -.log (1. -. Random.State.float rng 1.) /. rate in
      t := !t +. gap;
      if !t <= horizon then pairs := (c, !t) :: !pairs else continue := false
    done
  done;
  of_pairs !pairs

let burst ~clients ~at =
  if at < 0. then invalid_arg "Workload.burst: negative time";
  of_pairs (List.init clients (fun c -> (c, at)))

let count ops = List.length ops

let issuers ops =
  List.sort_uniq compare (List.map (fun op -> op.issuer) ops)
