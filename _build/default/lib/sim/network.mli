(** Simulated message-passing network.

    Delivers messages between {e actors} over an {!Engine}: a message
    from [src] to [dst] arrives after the latency given by a pairwise
    latency function, optionally perturbed by a jitter sampler. Actors
    are dense integers chosen by the caller — typically matrix node
    indices, or a role-split address space when one network node hosts
    both a server and a client (as in the paper, where a client sits at
    every node). Counts messages for protocol-cost reporting. *)

type 'payload t

val create :
  ?jitter:(src:int -> dst:int -> base:float -> float) ->
  Engine.t ->
  actors:int ->
  latency:(int -> int -> float) ->
  'payload t
(** [create engine ~actors ~latency] is a network over actor ids
    [0 .. actors-1]. [latency src dst] must be non-negative and finite;
    [jitter] maps each transmission's base latency to the realised one
    (default: identity) and must also return a non-negative value. *)

val of_matrix :
  ?jitter:(src:int -> dst:int -> base:float -> float) ->
  Engine.t ->
  Dia_latency.Matrix.t ->
  'payload t
(** Actors are exactly the matrix's nodes. *)

val on_receive : 'payload t -> int -> (src:int -> 'payload -> unit) -> unit
(** [on_receive net actor handler] registers [actor]'s message handler
    (replacing any previous one). *)

val send : 'payload t -> src:int -> dst:int -> 'payload -> unit
(** Send a message; it is delivered to [dst]'s handler after the (possibly
    jittered) latency. Self-sends deliver after the self-latency (usually
    zero), still asynchronously. Messages to actors with no handler are
    counted but dropped.

    @raise Invalid_argument on out-of-bounds actors or invalid latency. *)

val messages_sent : 'payload t -> int

val latency_of_last_message : 'payload t -> float
(** Realised latency of the most recent [send] ([nan] before any). *)
