type t = { positions : (float * float) array; applied : int }

let initial ~clients =
  if clients < 0 then invalid_arg "State.initial: negative client count";
  { positions = Array.make clients (0., 0.); applied = 0 }

(* A cheap deterministic pseudo-random displacement from the op id: the
   exact function does not matter, only that every replica computes the
   same one. *)
let displacement op_id =
  let hash = (op_id * 2654435761) land 0xFFFFFF in
  let angle = float_of_int hash /. float_of_int 0xFFFFFF *. 2. *. Float.pi in
  (cos angle, sin angle)

let apply t (op : Workload.op) =
  if op.issuer < 0 || op.issuer >= Array.length t.positions then
    invalid_arg (Printf.sprintf "State.apply: issuer %d out of range" op.issuer);
  let positions = Array.copy t.positions in
  let x, y = positions.(op.issuer) in
  let dx, dy = displacement op.op_id in
  (* Rotate the avatar's position before translating: rotation and
     translation do not commute, so applying the same operations of one
     issuer in a different order yields a different state — late
     operations genuinely corrupt the state, as in a real game. *)
  let angle = 0.1 +. (dx *. 0.05) in
  let cosine = cos angle and sine = sin angle in
  positions.(op.issuer) <-
    ((cosine *. x) -. (sine *. y) +. dx, (sine *. x) +. (cosine *. y) +. dy);
  { positions; applied = t.applied + 1 }

let apply_all t ops = List.fold_left apply t ops

let position t c = t.positions.(c)

let digest t =
  let buffer = Buffer.create (16 * Array.length t.positions) in
  Buffer.add_string buffer (string_of_int t.applied);
  Array.iter
    (fun (x, y) -> Buffer.add_string buffer (Printf.sprintf "|%.9g,%.9g" x y))
    t.positions;
  Digest.to_hex (Digest.string (Buffer.contents buffer))

let equal a b = a.applied = b.applied && a.positions = b.positions
