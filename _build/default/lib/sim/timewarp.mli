(** TimeWarp: optimistic execution with rollback repair.

    The paper's pessimistic synchronisation (Section II) delays every
    execution by [delta >= D(A)] so that no operation ever arrives after
    its execution time. Its Section II-E notes the alternative for when
    that guarantee is broken (jitter, or an aggressive [delta]):
    optimistic mechanisms such as TimeWarp execute operations on arrival
    and {e repair} the state when a straggler — an operation with an
    earlier execution timestamp — arrives late, by rolling the state back
    and replaying in timestamp order.

    This container applies operations in arrival order, keeps periodic
    state snapshots, and on a straggler rolls back to the newest snapshot
    preceding the insertion point and replays. Repair statistics (number
    of rollbacks, replayed operations, maximum rollback depth) quantify
    the "artifacts" the paper warns about: each rollback is a visible
    state correction to any connected client. *)

type t

val create : ?snapshot_every:int -> clients:int -> unit -> t
(** Fresh instance over an empty {!State}. [snapshot_every] (default 32)
    is the checkpoint interval in applied operations.

    @raise Invalid_argument if [snapshot_every <= 0]. *)

val execute : t -> timestamp:float -> Workload.op -> int
(** Apply an operation with its execution timestamp (ties broken by
    operation id). In-order arrivals execute directly and return 0;
    stragglers trigger a rollback and return its depth (the number of
    already-executed operations that had to be undone). *)

val state : t -> State.t
(** Current (repaired) state: always equals applying all executed
    operations in timestamp order. *)

val log_length : t -> int
(** Operations executed so far. *)

val rollbacks : t -> int
val replayed : t -> int
(** Total operations re-applied during repairs. *)

val max_rollback_depth : t -> int
