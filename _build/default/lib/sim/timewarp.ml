type entry = { key : float * int; op : Workload.op }

type snapshot = { before : State.t; log_length : int }

type t = {
  clients : int;
  mutable log : entry list;  (** applied ops, most recent first, sorted by key *)
  mutable state : State.t;
  mutable snapshots : snapshot list;  (** most recent first *)
  mutable rollbacks : int;
  mutable replayed : int;
  mutable max_depth : int;
  snapshot_every : int;
}

let create ?(snapshot_every = 32) ~clients () =
  if snapshot_every <= 0 then invalid_arg "Timewarp.create: snapshot interval";
  {
    clients;
    log = [];
    state = State.initial ~clients;
    snapshots = [];
    rollbacks = 0;
    replayed = 0;
    max_depth = 0;
    snapshot_every;
  }

let log_length t = List.length t.log

let state t = t.state
let rollbacks t = t.rollbacks
let replayed t = t.replayed
let max_rollback_depth t = t.max_depth

let key_of ~timestamp (op : Workload.op) = (timestamp, op.op_id)

let maybe_snapshot t =
  let len = log_length t in
  if len > 0 && len mod t.snapshot_every = 0 then
    t.snapshots <- { before = t.state; log_length = len } :: t.snapshots

let execute t ~timestamp op =
  let key = key_of ~timestamp op in
  match t.log with
  | recent :: _ when key > recent.key ->
      (* In order: straight-through execution. *)
      t.state <- State.apply t.state op;
      t.log <- { key; op } :: t.log;
      maybe_snapshot t;
      0
  | [] ->
      t.state <- State.apply t.state op;
      t.log <- [ { key; op } ];
      0
  | _ ->
      (* Straggler: roll back past every entry with a later key, insert,
         then replay. The rollback restarts from the newest snapshot that
         precedes the insertion point (or from scratch). *)
      let later, earlier = List.partition (fun e -> e.key > key) t.log in
      let depth = List.length later in
      let insertion_length = List.length earlier in
      let usable_snapshot =
        List.find_opt (fun s -> s.log_length <= insertion_length) t.snapshots
      in
      let base_state, base_length =
        match usable_snapshot with
        | Some s -> (s.before, s.log_length)
        | None -> (State.initial ~clients:t.clients, 0)
      in
      (* Drop snapshots taken after the replay base; they are stale. *)
      t.snapshots <-
        List.filter (fun s -> s.log_length <= base_length) t.snapshots;
      let new_log =
        List.merge
          (fun a b -> compare b.key a.key)
          later
          ({ key; op } :: earlier)
      in
      (* Entries to replay: everything newer than the snapshot base, in
         chronological order. *)
      let to_replay =
        List.filteri (fun i _ -> i < List.length new_log - base_length) new_log
        |> List.rev_map (fun e -> e.op)
      in
      let state =
        List.fold_left State.apply base_state to_replay
      in
      t.state <- state;
      t.log <- new_log;
      t.rollbacks <- t.rollbacks + 1;
      t.replayed <- t.replayed + List.length to_replay;
      if depth > t.max_depth then t.max_depth <- depth;
      depth
