(** Repair analysis: what an optimistic server would have gone through.

    The pessimistic protocol of {!Protocol} buffers every operation until
    the agreed execution time [t + delta]; when [delta >= D(A)] nothing
    ever arrives late. Section II-E of the paper discusses the other
    operating point: run with a smaller [delta] (better interactivity),
    execute optimistically, and {e repair} via TimeWarp or Trailing State
    Synchronization, accepting visible artifacts.

    This module replays a {!Protocol.report}'s per-server arrival
    sequences through each repair mechanism and reports the cost: how
    many rollbacks/divergences the chosen [delta] would have caused, and
    whether all replicas converge to the canonical state regardless
    (they must — that is what the repair mechanisms are for). *)

type timewarp_outcome = {
  server : int;
  rollbacks : int;
  replayed : int;
  max_depth : int;
  converged : bool;  (** final state equals the canonical state *)
}

type tss_outcome = {
  server : int;
  divergences : int;
  dropped : int;
  converged : bool;  (** no drops and final state canonical *)
}

val canonical_state : Protocol.report -> State.t
(** The reference state: every operation in timestamp order. *)

val timewarp : Protocol.report -> timewarp_outcome list
(** Replay each server's executions (in their real arrival order, with
    their [t + delta] timestamps) through a {!Timewarp} instance. *)

val tss : lag:float -> Protocol.report -> tss_outcome list
(** Same through {!Tss}: operations are delivered at their arrival
    simulation times and the trailing point advances along with them. *)

val total_rollbacks : timewarp_outcome list -> int
val all_converged_timewarp : timewarp_outcome list -> bool
val all_converged_tss : tss_outcome list -> bool
