(** Message-level Distributed-Greedy Assignment (Section IV-D).

    [Dia_core.Distributed_greedy] computes the algorithm's result
    centrally; this module actually {e runs the protocol} over the
    simulated {!Network}, with every quantity obtained the way the paper
    says the servers obtain it:

    + {b bootstrap} — each client probes every server (round-trip
      latency measurement), picks the nearest, and joins it, reporting
      its measured distance: the Nearest-Server initial assignment,
      computed by the clients themselves;
    + {b initialisation} — each server probes the other servers,
      computes its longest client distance [l(s)], and broadcasts both,
      exactly the exchange of Section IV-D;
    + {b modification rounds under concurrency control} — a token
      serialises modifications (the paper's requirement that concurrent
      reassignments not interleave). The token holder picks a client of
      its own on a longest interaction path and broadcasts it with its
      eccentricity-without-that-client; every other server probes the
      client and replies with the resulting [L(s')]; the holder commits
      the best move only if it strictly reduces the global objective,
      broadcasting the updated eccentricities (acknowledged before the
      next round). A server with no improving client passes the token;
      [|S|] consecutive tokenless passes terminate the protocol.

    The final assignment is locally optimal in the same sense as the
    centralized algorithm: no single client move can reduce the maximum
    interaction-path length. (The exact assignment may differ — the
    token visits candidates in a different order.) *)

type result = {
  assignment : Dia_core.Assignment.t;
  objective : float;  (** final [D], as measured by the servers *)
  initial_objective : float;  (** [D] of the bootstrap NSA assignment *)
  modifications : int;
  messages : int;  (** total protocol messages, probes included *)
  wall_duration : float;  (** simulated protocol runtime (ms) *)
}

val run :
  ?jitter:(src:int -> dst:int -> base:float -> float) ->
  Dia_core.Problem.t ->
  result
(** Execute the protocol to termination. With [jitter], latency
    measurements are noisy and the servers optimise measured — not true —
    distances, as a real deployment would.

    @raise Invalid_argument if the instance has no clients (there is
    nothing to assign). Capacities are respected: clients only move to
    unsaturated servers, and the bootstrap uses capacitated
    nearest-server joining (a client rejected by a full server tries the
    next nearest). *)
