module Matrix = Dia_latency.Matrix

type 'payload t = {
  engine : Engine.t;
  latency : int -> int -> float;
  jitter : src:int -> dst:int -> base:float -> float;
  handlers : (src:int -> 'payload -> unit) option array;
  mutable sent : int;
  mutable last_latency : float;
}

let create ?(jitter = fun ~src:_ ~dst:_ ~base -> base) engine ~actors ~latency =
  if actors < 0 then invalid_arg "Network.create: negative actor count";
  {
    engine;
    latency;
    jitter;
    handlers = Array.make actors None;
    sent = 0;
    last_latency = nan;
  }

let of_matrix ?jitter engine matrix =
  create ?jitter engine ~actors:(Matrix.dim matrix) ~latency:(Matrix.get matrix)

let check_actor net label actor =
  if actor < 0 || actor >= Array.length net.handlers then
    invalid_arg (Printf.sprintf "Network: %s actor %d out of bounds" label actor)

let on_receive net actor handler =
  check_actor net "receiving" actor;
  net.handlers.(actor) <- Some handler

let send net ~src ~dst payload =
  check_actor net "source" src;
  check_actor net "destination" dst;
  let base = net.latency src dst in
  if base < 0. || not (Float.is_finite base) then
    invalid_arg (Printf.sprintf "Network.send: latency %g invalid" base);
  let latency = net.jitter ~src ~dst ~base in
  if latency < 0. || not (Float.is_finite latency) then
    invalid_arg (Printf.sprintf "Network.send: jittered latency %g invalid" latency);
  net.sent <- net.sent + 1;
  net.last_latency <- latency;
  Engine.schedule_after net.engine latency (fun () ->
      match net.handlers.(dst) with
      | Some handler -> handler ~src payload
      | None -> ())

let messages_sent net = net.sent

let latency_of_last_message net = net.last_latency
