type entry = { key : float * int; op : Workload.op }

type t = {
  clients : int;
  lag : float;
  mutable trailing_state : State.t;
  mutable trailing_point : float;
  mutable pending : entry list;  (** delivered, not yet trailed; arrival order, newest first *)
  mutable leading_state : State.t;
  mutable last_now : float;
  mutable divergences : int;
  mutable dropped : int;
}

let create ~clients ~lag =
  if lag <= 0. then invalid_arg "Tss.create: lag must be positive";
  {
    clients;
    lag;
    trailing_state = State.initial ~clients;
    trailing_point = neg_infinity;
    pending = [];
    leading_state = State.initial ~clients;
    last_now = neg_infinity;
    divergences = 0;
    dropped = 0;
  }

let leading t = t.leading_state
let trailing t = t.trailing_state
let divergences t = t.divergences
let dropped t = t.dropped

let deliver t ~timestamp (op : Workload.op) =
  if timestamp <= t.trailing_point then
    (* Too late even for the trailing copy: unrecoverable at this lag. *)
    t.dropped <- t.dropped + 1
  else begin
    t.leading_state <- State.apply t.leading_state op;
    t.pending <- { key = (timestamp, op.op_id); op } :: t.pending
  end

let advance_to t point =
  if point > t.trailing_point then begin
    let batch, remaining =
      List.partition (fun e -> fst e.key <= point) t.pending
    in
    if batch <> [] then begin
      (* Trailing executes the batch in timestamp order — the canonical
         order, final because later arrivals below the point are
         dropped. *)
      let canonical = List.sort (fun a b -> compare a.key b.key) batch in
      t.trailing_state <-
        List.fold_left (fun s e -> State.apply s e.op) t.trailing_state canonical;
      (* What the leading state should be: trailing plus the remaining
         pending operations in their arrival order. *)
      let arrival_order = List.rev remaining in
      let expected =
        List.fold_left (fun s e -> State.apply s e.op) t.trailing_state arrival_order
      in
      if State.digest expected <> State.digest t.leading_state then begin
        t.divergences <- t.divergences + 1;
        t.leading_state <- expected
      end;
      t.pending <- remaining
    end;
    t.trailing_point <- point
  end

let advance t ~now =
  if now < t.last_now then invalid_arg "Tss.advance: time went backwards";
  t.last_now <- now;
  advance_to t (now -. t.lag)

let finish t =
  let horizon =
    List.fold_left (fun acc e -> Float.max acc (fst e.key)) t.trailing_point t.pending
  in
  advance_to t horizon;
  t.trailing_state
