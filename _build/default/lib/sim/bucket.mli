(** Bucket synchronisation (Gautier, Diot & Kurose — the paper's [12]).

    The other classic pessimistic mechanism: simulation time is divided
    into fixed-length buckets, and an operation issued during bucket [b]
    is executed by every replica at the end of bucket [b + delay]. All
    replicas agree on execution times (consistency), and execution order
    follows issue order (ordering fairness) — but the issue-to-execution
    lag {e varies} within a bucket (an operation issued at a bucket's
    start waits almost one bucket longer than one issued at its end), so
    the paper's constant-lag fairness does {b not} hold: interaction
    times differ across operations. Feed {!execution_time} to
    {!Protocol.run} to simulate it and watch {!Checker} report exactly
    that (consistent, not fair).

    The paper's local-lag rule is the [length -> 0] limit with
    [delay * length = delta]. *)

val execution_time : length:float -> delay:int -> Workload.op -> float
(** Execution simulation time of an operation under bucket
    synchronisation: [(bucket(issue) + 1 + delay) * length], where
    [bucket(t) = floor (t / length)].

    @raise Invalid_argument if [length <= 0.] or [delay < 0]. *)

val min_delay : Dia_core.Problem.t -> Dia_core.Assignment.t -> length:float -> int
(** Smallest [delay] such that every operation reaches every server and
    every client update arrives in time even in the worst case (an
    operation issued at the very end of its bucket still gets
    [delay * length] of slack, which must cover the minimum feasible lag
    [D(A)]): [ceil (D(A) / length)].

    @raise Invalid_argument if [length <= 0.]. *)

val lag_bounds : length:float -> delay:int -> float * float
(** Minimum and maximum issue-to-execution lag over all possible issue
    instants: [(delay * length, (delay + 1) * length)]. The spread —
    one full bucket — is the fairness penalty bucket synchronisation
    pays compared to local-lag. *)
