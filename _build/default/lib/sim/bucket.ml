let check_length length =
  if length <= 0. || not (Float.is_finite length) then
    invalid_arg (Printf.sprintf "Bucket: length %g must be positive" length)

let execution_time ~length ~delay (op : Workload.op) =
  check_length length;
  if delay < 0 then invalid_arg "Bucket: negative delay";
  let bucket = Float.floor (op.issue_time /. length) in
  (bucket +. 1. +. float_of_int delay) *. length

let min_delay p a ~length =
  check_length length;
  let d = Dia_core.Objective.max_interaction_path p a in
  if not (Float.is_finite d) then 0 else int_of_float (Float.ceil (d /. length))

let lag_bounds ~length ~delay =
  check_length length;
  if delay < 0 then invalid_arg "Bucket: negative delay";
  (float_of_int delay *. length, float_of_int (delay + 1) *. length)
