(* Priority queue of events keyed by (time, sequence number); the
   sequence number makes same-time events FIFO and the whole simulation
   deterministic. Implemented as a pairing-heap-free simple binary heap
   over a growable array. *)

type event = { time : float; seq : int; action : unit -> unit }

type t = {
  mutable heap : event array;
  mutable size : int;
  mutable clock : float;
  mutable next_seq : int;
}

let dummy = { time = 0.; seq = 0; action = ignore }

let create () = { heap = Array.make 64 dummy; size = 0; clock = 0.; next_seq = 0 }

let now t = t.clock

let precedes a b = a.time < b.time || (a.time = b.time && a.seq < b.seq)

let swap t i j =
  let tmp = t.heap.(i) in
  t.heap.(i) <- t.heap.(j);
  t.heap.(j) <- tmp

let push t event =
  if t.size = Array.length t.heap then begin
    let bigger = Array.make (2 * t.size) dummy in
    Array.blit t.heap 0 bigger 0 t.size;
    t.heap <- bigger
  end;
  t.heap.(t.size) <- event;
  let i = ref t.size in
  t.size <- t.size + 1;
  while !i > 0 && precedes t.heap.(!i) t.heap.((!i - 1) / 2) do
    swap t !i ((!i - 1) / 2);
    i := (!i - 1) / 2
  done

let pop t =
  if t.size = 0 then None
  else begin
    let top = t.heap.(0) in
    t.size <- t.size - 1;
    t.heap.(0) <- t.heap.(t.size);
    t.heap.(t.size) <- dummy;
    let i = ref 0 in
    let continue = ref true in
    while !continue do
      let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
      let first = ref !i in
      if l < t.size && precedes t.heap.(l) t.heap.(!first) then first := l;
      if r < t.size && precedes t.heap.(r) t.heap.(!first) then first := r;
      if !first = !i then continue := false
      else begin
        swap t !i !first;
        i := !first
      end
    done;
    Some top
  end

let schedule t at action =
  if not (Float.is_finite at) then invalid_arg "Engine.schedule: non-finite time";
  if at < t.clock then
    invalid_arg
      (Printf.sprintf "Engine.schedule: time %g is in the past (now %g)" at t.clock);
  push t { time = at; seq = t.next_seq; action };
  t.next_seq <- t.next_seq + 1

let schedule_after t delay action =
  if delay < 0. then invalid_arg "Engine.schedule_after: negative delay";
  schedule t (t.clock +. delay) action

let rec run ?until t =
  match pop t with
  | None -> ()
  | Some event -> (
      match until with
      | Some limit when event.time > limit ->
          (* Put it back untouched; the heap push preserves its seq. *)
          push t event
      | _ ->
          t.clock <- event.time;
          event.action ();
          run ?until t)

let pending t = t.size
