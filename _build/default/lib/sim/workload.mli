(** Operation workloads for DIA simulations.

    A workload is a finite list of user operations, each issued by a
    client (index into the {!Dia_core.Problem} instance) at a simulation
    time. Generators produce the issue patterns used by the examples and
    experiments: uniform rounds (every client acts every period — think
    game "ticks"), Poisson arrivals (think chat or editing), and bursts
    (think combat hot spots). *)

type op = {
  op_id : int;  (** unique, dense from 0, in issue-time order *)
  issuer : int;  (** client index *)
  issue_time : float;  (** issuing client's simulation time, [>= 0] *)
}

val of_list : (int * float) list -> op list
(** Explicit [(issuer, issue_time)] pairs; ids assigned in sorted
    issue-time order (ties by list position).

    @raise Invalid_argument on negative times. *)

val rounds : clients:int -> rounds:int -> period:float -> op list
(** Every client issues one operation per round; round [r] happens at
    time [r * period]. [clients * rounds] operations. *)

val poisson : seed:int -> clients:int -> rate:float -> horizon:float -> op list
(** Each client issues operations as an independent Poisson process of
    [rate] per unit time over [[0, horizon]].

    @raise Invalid_argument if [rate <= 0.] or [horizon < 0.]. *)

val burst : clients:int -> at:float -> op list
(** Every client issues one operation at exactly the same instant — the
    worst case for fairness (all operations must be ordered
    deterministically). *)

val count : op list -> int
val issuers : op list -> int list
(** Distinct issuers, ascending. *)
