lib/sim/repair.ml: Hashtbl List Option Protocol State Timewarp Tss Workload
