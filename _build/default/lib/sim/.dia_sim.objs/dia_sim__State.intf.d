lib/sim/state.mli: Workload
