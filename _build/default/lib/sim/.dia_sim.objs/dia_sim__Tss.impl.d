lib/sim/tss.ml: Float List State Workload
