lib/sim/checker.mli: Protocol State
