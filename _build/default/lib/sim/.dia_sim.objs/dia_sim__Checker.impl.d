lib/sim/checker.ml: Float Hashtbl List Option Protocol State Workload
