lib/sim/bucket.ml: Dia_core Float Printf Workload
