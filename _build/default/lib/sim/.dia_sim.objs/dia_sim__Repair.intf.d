lib/sim/repair.mli: Protocol State
