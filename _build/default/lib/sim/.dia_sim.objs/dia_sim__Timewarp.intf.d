lib/sim/timewarp.mli: State Workload
