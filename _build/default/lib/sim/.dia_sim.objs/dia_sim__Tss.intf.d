lib/sim/tss.mli: State Workload
