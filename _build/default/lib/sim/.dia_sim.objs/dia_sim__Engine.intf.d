lib/sim/engine.mli:
