lib/sim/workload.mli:
