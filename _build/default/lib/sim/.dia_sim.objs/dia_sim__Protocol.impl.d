lib/sim/protocol.ml: Array Dia_core Dia_latency Engine Float Hashtbl List Network Printf Workload
