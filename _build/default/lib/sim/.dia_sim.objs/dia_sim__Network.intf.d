lib/sim/network.mli: Dia_latency Engine
