lib/sim/network.ml: Array Dia_latency Engine Float Printf
