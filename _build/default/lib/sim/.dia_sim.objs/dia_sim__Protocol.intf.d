lib/sim/protocol.mli: Dia_core Workload
