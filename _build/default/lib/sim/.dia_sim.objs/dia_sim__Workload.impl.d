lib/sim/workload.ml: Float List Printf Random
