lib/sim/timewarp.ml: List State Workload
