lib/sim/bucket.mli: Dia_core Workload
