lib/sim/dgreedy_protocol.ml: Array Dia_core Dia_latency Engine Float Fun Hashtbl List Network
