lib/sim/dgreedy_protocol.mli: Dia_core
