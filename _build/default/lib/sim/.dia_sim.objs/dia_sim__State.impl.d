lib/sim/state.ml: Array Buffer Digest Float List Printf Workload
