(** Discrete-event simulation engine.

    A minimal event loop: schedule closures at absolute wall-clock times,
    then {!run} to execute them in time order. Events scheduled for the
    same instant fire in scheduling order (FIFO), which keeps simulations
    deterministic. Used by {!Network} to deliver messages and by
    {!Protocol} to model operation execution and state updates. *)

type t

val create : unit -> t
(** A fresh engine at time [0.]. *)

val now : t -> float
(** Current simulation wall-clock time. *)

val schedule : t -> float -> (unit -> unit) -> unit
(** [schedule engine at f] runs [f] when the clock reaches [at].

    @raise Invalid_argument if [at] is in the past or not finite. *)

val schedule_after : t -> float -> (unit -> unit) -> unit
(** [schedule_after engine delay f] = [schedule engine (now + delay) f].

    @raise Invalid_argument if [delay < 0.]. *)

val run : ?until:float -> t -> unit
(** Process events in order until the queue is empty (or the clock would
    pass [until]; remaining events stay queued). Events may schedule
    further events. *)

val pending : t -> int
(** Number of queued events. *)
