module Problem = Dia_core.Problem
module Assignment = Dia_core.Assignment

type result = {
  assignment : Assignment.t;
  objective : float;
  initial_objective : float;
  modifications : int;
  messages : int;
  wall_duration : float;
}

type payload =
  | Probe
  | Probe_reply
  | Join of float  (** the client's measured distance to this server *)
  | Join_accept
  | Join_reject
  | Init_info of { inter : float array; longest : float }
  | Ready
  | Candidate of { client : int; l_minus : float }
  | Candidate_reply of { l_value : float; distance : float }
  | Commit of {
      client : int;
      from_server : int;
      to_server : int;
      l_from : float;
      l_to : float;
      distance : float;
    }
  | Commit_ack
  | Reassign
  | Token of int  (** consecutive no-commit possessions *)

(* Per-client protocol state. *)
type client_state = {
  client_index : int;
  mutable measured : (int * float) list;  (** (server, distance) measured *)
  mutable awaiting : int;  (** probe replies still expected *)
  mutable join_order : int array;  (** servers by measured distance *)
  mutable join_attempt : int;
  mutable my_server : int;
}

(* Per-server protocol state. *)
type server_state = {
  server_index : int;
  mutable members : (int * float) list;  (** (client, measured distance) *)
  mutable inter_rows : float array array;  (** inter_rows.(s).(s') as broadcast *)
  mutable longest : float array;  (** l(s) for every server, as broadcast *)
  mutable init_infos : int;
  mutable readys : int;
  mutable inter_awaiting : int;
  (* token-holding state *)
  mutable untried : int list;
  mutable pending_replies : int;
  mutable replies : (int * float * float) list;  (** (server, L, distance) *)
  mutable current_candidate : (int * float) option;  (** (client, l_minus) *)
  mutable pending_acks : int;
  mutable token_count : int;
  mutable committed_this_possession : bool;
}

let eps = 1e-9

let run ?jitter p =
  let k = Problem.num_servers p in
  let n = Problem.num_clients p in
  if n = 0 then invalid_arg "Dgreedy_protocol.run: no clients";
  let capacity = match Problem.capacity p with None -> max_int | Some c -> c in
  let engine = Engine.create () in
  let node actor =
    if actor < k then (Problem.servers p).(actor) else (Problem.clients p).(actor - k)
  in
  let latency a b = Dia_latency.Matrix.get (Problem.latency p) (node a) (node b) in
  let net = Network.create ?jitter engine ~actors:(k + n) ~latency in
  let max_latency = Dia_latency.Matrix.max_entry (Problem.latency p) in
  (* Every join (probe + retries across up to k full servers) completes
     within this horizon; servers broadcast their initial state then. *)
  let settle_time = 2. *. Float.max 1. max_latency *. float_of_int (k + 3) in

  let clients =
    Array.init n (fun c ->
        {
          client_index = c;
          measured = [];
          awaiting = k;
          join_order = [||];
          join_attempt = 0;
          my_server = -1;
        })
  in
  let servers =
    Array.init k (fun s ->
        {
          server_index = s;
          members = [];
          inter_rows = Array.make_matrix k k 0.;
          longest = Array.make k neg_infinity;
          init_infos = 0;
          readys = 0;
          inter_awaiting = k - 1;
          untried = [];
          pending_replies = 0;
          replies = [];
          current_candidate = None;
          pending_acks = 0;
          token_count = 0;
          committed_this_possession = false;
        })
  in
  let initial_objective = ref nan in
  let modifications = ref 0 in

  (* Outstanding probe send-times, keyed by (prober actor, target actor). *)
  let probes : (int * int, float) Hashtbl.t = Hashtbl.create 64 in
  let send_probe ~from ~target =
    Hashtbl.replace probes (from, target) (Engine.now engine);
    Network.send net ~src:from ~dst:target Probe
  in
  let probe_distance ~from ~target =
    let sent = Hashtbl.find probes (from, target) in
    Hashtbl.remove probes (from, target);
    (Engine.now engine -. sent) /. 2.
  in

  let broadcast ~from payload =
    for s = 0 to k - 1 do
      if s <> from then Network.send net ~src:from ~dst:s payload
    done
  in

  (* Distance between two servers as believed by [st] (symmetrised). *)
  let inter st s1 s2 =
    if s1 = s2 then 0.
    else (st.inter_rows.(s1).(s2) +. st.inter_rows.(s2).(s1)) /. 2.
  in
  let objective_of st longest =
    let best = ref neg_infinity in
    for s1 = 0 to k - 1 do
      if longest.(s1) > neg_infinity then
        for s2 = s1 to k - 1 do
          if longest.(s2) > neg_infinity then begin
            let len = longest.(s1) +. inter st s1 s2 +. longest.(s2) in
            if len > !best then best := len
          end
        done
    done;
    !best
  in
  let my_longest st =
    List.fold_left (fun acc (_, d) -> Float.max acc d) neg_infinity st.members
  in
  let longest_without st client =
    List.fold_left
      (fun acc (c, d) -> if c = client then acc else Float.max acc d)
      neg_infinity st.members
  in

  (* Candidates of the token holder: its clients realising l(s), when s
     lies on a longest interaction path. *)
  let compute_candidates st =
    let d = objective_of st st.longest in
    if Float.is_nan !initial_objective then initial_objective := d;
    let s = st.server_index in
    let on_longest = ref false in
    for s2 = 0 to k - 1 do
      if st.longest.(s) > neg_infinity
         && st.longest.(s2) > neg_infinity
         && st.longest.(s) +. inter st s s2 +. st.longest.(s2) >= d -. eps
      then on_longest := true
    done;
    if not !on_longest then []
    else
      List.filter_map
        (fun (c, dist) -> if dist >= st.longest.(s) -. eps then Some c else None)
        (List.sort compare st.members)
  in

  (* Forward declaration: token-possession driver. *)
  let rec work st =
    match st.untried with
    | [] ->
        let next_count = if st.committed_this_possession then 0 else st.token_count + 1 in
        if next_count >= k then () (* every server failed to improve: stop *)
        else begin
          let next = (st.server_index + 1) mod k in
          Network.send net ~src:st.server_index ~dst:next (Token next_count)
        end
    | c :: rest ->
        st.untried <- rest;
        let l_minus = longest_without st c in
        st.current_candidate <- Some (c, l_minus);
        st.pending_replies <- k - 1;
        st.replies <- [];
        if k = 1 then decide st
        else broadcast ~from:st.server_index (Candidate { client = c; l_minus })

  and decide st =
    match st.current_candidate with
    | None -> ()
    | Some (c, l_minus) ->
        let d = objective_of st st.longest in
        let improving =
          (* Best target by L-value; commit only on strict global
             improvement, exactly like the centralized algorithm. *)
          match
            List.sort
              (fun (_, la, _) (_, lb, _) -> Float.compare la lb)
              st.replies
          with
        | [] -> None
        | (target, l_value, distance) :: _ when l_value < d -. eps ->
            let trial = Array.copy st.longest in
            trial.(st.server_index) <- l_minus;
            trial.(target) <- Float.max trial.(target) distance;
            let d' = objective_of st trial in
            if d' < d -. eps then Some (target, distance) else None
        | _ -> None
        in
        (match improving with
        | Some (target, distance) ->
            let l_to =
              (* The target's eccentricity after adopting c, from its
                 reported measured distance. *)
              Float.max
                (if target = st.server_index then l_minus else st.longest.(target))
                distance
            in
            let commit =
              Commit
                {
                  client = c;
                  from_server = st.server_index;
                  to_server = target;
                  l_from = l_minus;
                  l_to;
                  distance;
                }
            in
            st.pending_acks <- k - 1;
            st.committed_this_possession <- true;
            incr modifications;
            (* Apply locally: drop the client, update the table. *)
            st.members <- List.filter (fun (c', _) -> c' <> c) st.members;
            st.longest.(st.server_index) <- l_minus;
            st.longest.(target) <- l_to;
            st.current_candidate <- None;
            if k = 1 then after_commit st else broadcast ~from:st.server_index commit
        | None ->
            st.current_candidate <- None;
            work st)

  and after_commit st =
    (* All servers acknowledged: candidates are stale, recompute. *)
    st.untried <- compute_candidates st;
    work st
  in

  (* Server message handler. *)
  let server_handle st ~src payload =
    match payload with
    | Probe -> Network.send net ~src:st.server_index ~dst:src Probe_reply
    | Probe_reply ->
        (* Inter-server measurement during initialisation; client-probe
           replies (src >= k) are intercepted by the wrapper handler. *)
        if src < k then begin
          let distance = probe_distance ~from:st.server_index ~target:src in
          st.inter_rows.(st.server_index).(src) <- distance;
          st.inter_awaiting <- st.inter_awaiting - 1
        end
    | Join distance ->
        if List.length st.members < capacity then begin
          st.members <- (src - k, distance) :: st.members;
          Network.send net ~src:st.server_index ~dst:src Join_accept
        end
        else Network.send net ~src:st.server_index ~dst:src Join_reject
    | Init_info { inter = row; longest } ->
        st.inter_rows.(src) <- Array.copy row;
        st.longest.(src) <- longest;
        st.init_infos <- st.init_infos + 1;
        if st.init_infos = k - 1 then
          if st.server_index = 0 then begin
            st.readys <- st.readys + 1;
            if st.readys = k then begin
              st.token_count <- 0;
              st.committed_this_possession <- false;
              st.untried <- compute_candidates st;
              work st
            end
          end
          else Network.send net ~src:st.server_index ~dst:0 Ready
    | Ready ->
        st.readys <- st.readys + 1;
        if st.readys = k && st.init_infos = k - 1 then begin
          st.token_count <- 0;
          st.committed_this_possession <- false;
          st.untried <- compute_candidates st;
          work st
        end
    | Candidate _ -> () (* handled in the wrapper below *)
    | Candidate_reply { l_value; distance } ->
        st.replies <- (src, l_value, distance) :: st.replies;
        st.pending_replies <- st.pending_replies - 1;
        if st.pending_replies = 0 then decide st
    | Commit { client; from_server; to_server; l_from; l_to; distance } ->
        st.longest.(from_server) <- l_from;
        st.longest.(to_server) <- l_to;
        if st.server_index = to_server then begin
          st.members <- (client, distance) :: st.members;
          Network.send net ~src:st.server_index ~dst:(k + client) Reassign
        end;
        Network.send net ~src:st.server_index ~dst:src Commit_ack
    | Commit_ack ->
        st.pending_acks <- st.pending_acks - 1;
        if st.pending_acks = 0 then after_commit st
    | Token count ->
        st.token_count <- count;
        st.committed_this_possession <- false;
        st.untried <- compute_candidates st;
        work st
    | Join_accept | Join_reject | Reassign -> ()
  in

  (* Candidate handling needs a small state machine of its own per
     server: probe the client, then reply with L computed from the
     measured distance. *)
  let candidate_context : (int, int * float) Hashtbl.t = Hashtbl.create 16 in
  (* server index -> (holder server, l_minus); the probed client id is in
     the probes table key. *)
  let server_handle st ~src payload =
    match payload with
    | Candidate { client; l_minus } ->
        Hashtbl.replace candidate_context st.server_index (src, l_minus);
        send_probe ~from:st.server_index ~target:(k + client)
    | Probe_reply when src >= k && Hashtbl.mem candidate_context st.server_index ->
        let holder, l_minus = Hashtbl.find candidate_context st.server_index in
        Hashtbl.remove candidate_context st.server_index;
        let distance = probe_distance ~from:st.server_index ~target:src in
        let l_value =
          if List.length st.members >= capacity then infinity
          else begin
            let trial = Array.copy st.longest in
            trial.(holder) <- l_minus;
            let worst = ref (2. *. distance) in
            for s'' = 0 to k - 1 do
              if trial.(s'') > neg_infinity then begin
                let len = distance +. inter st st.server_index s'' +. trial.(s'') in
                if len > !worst then worst := len
              end
            done;
            !worst
          end
        in
        Network.send net ~src:st.server_index ~dst:holder
          (Candidate_reply { l_value; distance })
    | other -> server_handle st ~src other
  in

  (* Client message handler. *)
  let try_join cs =
    if cs.join_attempt < Array.length cs.join_order then begin
      let target = cs.join_order.(cs.join_attempt) in
      let distance = List.assoc target cs.measured in
      Network.send net ~src:(k + cs.client_index) ~dst:target (Join distance)
    end
  in
  let client_handle cs ~src payload =
    match payload with
    | Probe -> Network.send net ~src:(k + cs.client_index) ~dst:src Probe_reply
    | Probe_reply ->
        let distance = probe_distance ~from:(k + cs.client_index) ~target:src in
        cs.measured <- (src, distance) :: cs.measured;
        cs.awaiting <- cs.awaiting - 1;
        if cs.awaiting = 0 then begin
          let order = Array.init k Fun.id in
          Array.sort
            (fun a b ->
              match Float.compare (List.assoc a cs.measured) (List.assoc b cs.measured) with
              | 0 -> compare a b
              | cmp -> cmp)
            order;
          cs.join_order <- order;
          cs.join_attempt <- 0;
          try_join cs
        end
    | Join_accept -> cs.my_server <- cs.join_order.(cs.join_attempt)
    | Join_reject ->
        cs.join_attempt <- cs.join_attempt + 1;
        try_join cs
    | Reassign -> cs.my_server <- src
    | Join _ | Init_info _ | Ready | Candidate _ | Candidate_reply _ | Commit _
    | Commit_ack | Token _ ->
        ()
  in

  for s = 0 to k - 1 do
    Network.on_receive net s (server_handle servers.(s))
  done;
  for c = 0 to n - 1 do
    Network.on_receive net (k + c) (client_handle clients.(c))
  done;

  (* Kick-off: clients probe all servers; servers probe each other; at
     the settle time every server publishes its initial state. *)
  Engine.schedule engine 0. (fun () ->
      for c = 0 to n - 1 do
        for s = 0 to k - 1 do
          send_probe ~from:(k + c) ~target:s
        done
      done;
      for s = 0 to k - 1 do
        for s' = 0 to k - 1 do
          if s' <> s then send_probe ~from:s ~target:s'
        done
      done);
  Engine.schedule engine settle_time (fun () ->
      Array.iter
        (fun st ->
          st.longest.(st.server_index) <- my_longest st;
          if k = 1 then begin
            (* Single server: no exchange; start (and finish) directly. *)
            st.untried <- compute_candidates st;
            work st
          end
          else
            broadcast ~from:st.server_index
              (Init_info
                 { inter = Array.copy st.inter_rows.(st.server_index);
                   longest = st.longest.(st.server_index) }))
        servers);
  Engine.run engine;

  let assignment = Array.make n (-1) in
  Array.iteri
    (fun s st -> List.iter (fun (c, _) -> assignment.(c) <- s) st.members)
    servers;
  Array.iteri
    (fun c s -> if s < 0 then assignment.(c) <- clients.(c).my_server) assignment;
  let assignment = Assignment.of_array p assignment in
  {
    assignment;
    objective = Dia_core.Objective.max_interaction_path p assignment;
    initial_objective = !initial_objective;
    modifications = !modifications;
    messages = Network.messages_sent net;
    wall_duration = Engine.now engine;
  }
