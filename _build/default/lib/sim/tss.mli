(** Trailing State Synchronization (Cronin et al., cited as the paper's
    [8]).

    Two copies of the application state run at different simulation
    times: the {b leading} state executes every operation the moment it
    arrives (zero added latency, possibly out of order), while the
    {b trailing} state lags by a fixed amount and executes strictly in
    timestamp order — by the time it executes, every straggler that
    matters has arrived. Whenever the trailing state catches an ordering
    mistake the leading state made, the leading state is reset from the
    trailing one and the still-pending operations are re-applied: one
    {e divergence repair}, cheaper but coarser than TimeWarp's surgical
    rollback.

    Operations arriving later than the trailing point are counted as
    {!dropped} — the lag was too small to repair them (a real system
    would escalate to a longer trailing copy; the count is the sizing
    signal). *)

type t

val create : clients:int -> lag:float -> t
(** [lag] is the trailing distance in simulation-time units.

    @raise Invalid_argument if [lag <= 0.]. *)

val deliver : t -> timestamp:float -> Workload.op -> unit
(** An operation arrives: the leading state executes it immediately. An
    operation whose timestamp is already behind the trailing point is
    unrecoverable at this lag — it is counted in {!dropped} and not
    applied. *)

val advance : t -> now:float -> unit
(** Move the trailing point to [now - lag]: the trailing state executes
    all operations with timestamps up to there in timestamp order, and
    leading/trailing orderings are reconciled (a divergence repair resets
    the leading state if they disagree). [now] must not go backwards. *)

val leading : t -> State.t
val trailing : t -> State.t

val divergences : t -> int
(** Ordering mistakes repaired so far. *)

val dropped : t -> int
(** Operations that arrived behind the trailing point and were discarded
    (increase the lag to avoid these). *)

val finish : t -> State.t
(** Advance past every delivered operation and return the final (exact)
    state. *)
