(** A deterministic replicated application state.

    Consistency in the paper is defined over the {e application state}:
    all clients must share the same view when their simulation times
    coincide. {!Checker} verifies this at the timing level; this module
    makes it concrete by actually replicating a state machine — a toy
    virtual world where each operation deterministically moves its
    issuer's avatar — and comparing the digests that different servers
    compute.

    Operations must be applied in the canonical execution order: by
    execution simulation time, ties broken by operation id (the
    deterministic tie-break every real DIA uses so that simultaneous
    executions agree everywhere). *)

type t
(** An immutable world state. *)

val initial : clients:int -> t
(** All avatars at the origin.

    @raise Invalid_argument if [clients < 0]. *)

val apply : t -> Workload.op -> t
(** Execute one operation: rotate-then-translate the issuer's avatar by
    amounts derived deterministically from the operation id. The
    rotate-then-translate composition makes same-issuer operations
    {b order-sensitive}, so out-of-order execution is detectable by
    {!digest} comparison (operations of different issuers commute, as
    they touch different avatars).

    @raise Invalid_argument if the issuer is out of range. *)

val apply_all : t -> Workload.op list -> t
(** Fold {!apply} over operations {b in the order given} — callers sort
    into canonical order first. *)

val position : t -> int -> float * float
(** A client's avatar position. *)

val digest : t -> string
(** A compact digest of the whole state; equal digests = equal states. *)

val equal : t -> t -> bool
