(** Shortest-path routing.

    Extends the link-length function of a {!Graph} to a complete distance
    function over all node pairs, as the paper does when defining
    interaction-path lengths: "we extend the distance function [d(u, v)] to
    all pairs of nodes ... by defining [d(u, v)] as the length of the
    routing path between nodes [u] and [v]". *)

val dijkstra : Graph.t -> int -> float array
(** [dijkstra g src] is the array of shortest-path distances from [src] to
    every node. Unreachable nodes get [infinity]. O((V + E) log V).

    @raise Invalid_argument if [src] is out of bounds. *)

val all_pairs : Graph.t -> Matrix.t
(** All-pairs shortest-path distances via repeated Dijkstra, as a complete
    latency matrix.

    @raise Invalid_argument if some node pair is disconnected (latency
    matrices must be finite). *)

val floyd_warshall : Matrix.t -> Matrix.t
(** Metric closure of a complete matrix: shortest-path distances when every
    entry is interpreted as a direct link. The result satisfies the
    triangle inequality. O(n³) — intended for small and medium instances. *)

val path : Graph.t -> int -> int -> int list option
(** [path g u v] is a shortest route from [u] to [v] as a node list
    starting with [u] and ending with [v], or [None] if disconnected. *)
