type violation_stats = {
  triples_checked : int;
  violations : int;
  violation_fraction : float;
  max_stretch : float;
  mean_stretch_violating : float;
}

let examine_triple m i j k stats =
  let checked, violations, max_stretch, sum_stretch = stats in
  let direct = Matrix.get m i j in
  let detour = Matrix.get m i k +. Matrix.get m k j in
  if detour <= 0. then stats
  else begin
    let stretch = direct /. detour in
    let violating = direct > detour +. 1e-9 in
    ( checked + 1,
      (if violating then violations + 1 else violations),
      Float.max max_stretch stretch,
      if violating then sum_stretch +. stretch else sum_stretch )
  end

let finish (checked, violations, max_stretch, sum_stretch) =
  {
    triples_checked = checked;
    violations;
    violation_fraction =
      (if checked = 0 then 0. else float_of_int violations /. float_of_int checked);
    max_stretch;
    mean_stretch_violating =
      (if violations = 0 then nan else sum_stretch /. float_of_int violations);
  }

let triangle_violations ?(samples = 200_000) ?(seed = 0) m =
  let n = Matrix.dim m in
  if n < 3 then finish (0, 0, 0., 0.)
  else if n <= 64 then begin
    let stats = ref (0, 0, 0., 0.) in
    for i = 0 to n - 1 do
      for j = 0 to n - 1 do
        if i <> j then
          for k = 0 to n - 1 do
            if k <> i && k <> j then stats := examine_triple m i j k !stats
          done
      done
    done;
    finish !stats
  end
  else begin
    let rng = Random.State.make [| seed |] in
    let stats = ref (0, 0, 0., 0.) in
    let rec distinct3 () =
      let i = Random.State.int rng n
      and j = Random.State.int rng n
      and k = Random.State.int rng n in
      if i = j || j = k || i = k then distinct3 () else (i, j, k)
    in
    for _ = 1 to samples do
      let i, j, k = distinct3 () in
      stats := examine_triple m i j k !stats
    done;
    finish !stats
  end

let is_metric ?(eps = 1e-9) m =
  let n = Matrix.dim m in
  let ok = ref true in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      for k = 0 to n - 1 do
        if k <> i && k <> j then
          if Matrix.get m i j > Matrix.get m i k +. Matrix.get m k j +. eps then
            ok := false
      done
    done
  done;
  !ok

let spread m =
  if Matrix.dim m <= 1 then nan else Matrix.max_entry m /. Matrix.min_entry m
