type params = {
  transit_domains : int;
  transit_nodes_per_domain : int;
  stubs_per_transit_node : int;
  stub_nodes_per_domain : int;
  transit_transit_latency : float;
  transit_link_latency : float;
  stub_link_latency : float;
  extra_edge_fraction : float;
}

let default_params =
  {
    transit_domains = 4;
    transit_nodes_per_domain = 4;
    stubs_per_transit_node = 3;
    stub_nodes_per_domain = 8;
    transit_transit_latency = 30.;
    transit_link_latency = 8.;
    stub_link_latency = 2.;
    extra_edge_fraction = 0.3;
  }

let validate p =
  if p.transit_domains <= 0 || p.transit_nodes_per_domain <= 0
     || p.stubs_per_transit_node < 0 || p.stub_nodes_per_domain <= 0
  then invalid_arg "Topology: counts must be positive";
  if p.transit_transit_latency <= 0. || p.transit_link_latency <= 0.
     || p.stub_link_latency <= 0.
  then invalid_arg "Topology: latencies must be positive";
  if p.extra_edge_fraction < 0. || p.extra_edge_fraction > 1. then
    invalid_arg "Topology: extra_edge_fraction outside [0, 1]"

let node_count p =
  let transit = p.transit_domains * p.transit_nodes_per_domain in
  transit + (transit * p.stubs_per_transit_node * p.stub_nodes_per_domain)

let generate ?(params = default_params) ~seed () =
  let p = params in
  validate p;
  let rng = Random.State.make [| seed |] in
  let scale mean = mean *. (0.5 +. Random.State.float rng 1.) in
  let graph = Graph.create (node_count p) in
  let transit_count = p.transit_domains * p.transit_nodes_per_domain in
  let transit_node domain i = (domain * p.transit_nodes_per_domain) + i in
  (* Intra-transit-domain: a random spanning tree plus extra edges. *)
  let connect_domain nodes mean =
    Array.iteri
      (fun i node ->
        if i > 0 then begin
          let parent = nodes.(Random.State.int rng i) in
          Graph.add_edge graph node parent (scale mean)
        end)
      nodes;
    let extras =
      int_of_float (p.extra_edge_fraction *. float_of_int (Array.length nodes))
    in
    for _ = 1 to extras do
      let a = nodes.(Random.State.int rng (Array.length nodes)) in
      let b = nodes.(Random.State.int rng (Array.length nodes)) in
      if a <> b then Graph.add_edge graph a b (scale mean)
    done
  in
  for domain = 0 to p.transit_domains - 1 do
    let nodes =
      Array.init p.transit_nodes_per_domain (fun i -> transit_node domain i)
    in
    connect_domain nodes p.transit_link_latency
  done;
  (* Transit core: a ring over the domains plus random chords, connecting
     a random node of each domain. *)
  for domain = 0 to p.transit_domains - 1 do
    let next = (domain + 1) mod p.transit_domains in
    if next <> domain then begin
      let a = transit_node domain (Random.State.int rng p.transit_nodes_per_domain) in
      let b = transit_node next (Random.State.int rng p.transit_nodes_per_domain) in
      Graph.add_edge graph a b (scale p.transit_transit_latency)
    end
  done;
  if p.transit_domains > 3 then
    for _ = 1 to p.transit_domains / 2 do
      let d1 = Random.State.int rng p.transit_domains in
      let d2 = Random.State.int rng p.transit_domains in
      if d1 <> d2 then begin
        let a = transit_node d1 (Random.State.int rng p.transit_nodes_per_domain) in
        let b = transit_node d2 (Random.State.int rng p.transit_nodes_per_domain) in
        Graph.add_edge graph a b (scale p.transit_transit_latency)
      end
    done;
  (* Stub domains: spanning structure plus an uplink to their sponsor. *)
  let stub_base = transit_count in
  let stub_index = ref stub_base in
  for t = 0 to transit_count - 1 do
    for _ = 1 to p.stubs_per_transit_node do
      let nodes = Array.init p.stub_nodes_per_domain (fun i -> !stub_index + i) in
      stub_index := !stub_index + p.stub_nodes_per_domain;
      connect_domain nodes p.stub_link_latency;
      let gateway = nodes.(Random.State.int rng (Array.length nodes)) in
      Graph.add_edge graph gateway t (scale p.stub_link_latency *. 2.)
    done
  done;
  assert (Graph.is_connected graph);
  graph

let latency_matrix ?params ~seed () =
  Shortest_path.all_pairs (generate ?params ~seed ())
