type raw = { nodes : int; entries : float option array array }

let read_lines path =
  let ic = open_in path in
  let rec loop acc =
    match input_line ic with
    | line -> loop (line :: acc)
    | exception End_of_file -> List.rev acc
  in
  let lines = try loop [] with e -> close_in ic; raise e in
  close_in ic;
  lines

let is_comment line =
  let line = String.trim line in
  String.length line = 0 || line.[0] = '#' || line.[0] = '%'

let data_lines path = List.filter (fun l -> not (is_comment l)) (read_lines path)

let fields line =
  String.split_on_char ' ' (String.map (fun c -> if c = '\t' then ' ' else c) line)
  |> List.filter (fun s -> s <> "")

let parse_cell token =
  if token = "-" || token = "?" then None
  else
    match float_of_string_opt token with
    | None -> failwith (Printf.sprintf "Loader: unparsable value %S" token)
    | Some v -> if v < 0. then None else Some v

let parse_matrix path =
  let rows =
    List.map (fun line -> Array.of_list (List.map parse_cell (fields line))) (data_lines path)
  in
  let n = List.length rows in
  List.iteri
    (fun i row ->
      if Array.length row <> n then
        failwith
          (Printf.sprintf "Loader: row %d has %d entries, expected %d" i
             (Array.length row) n))
    rows;
  { nodes = n; entries = Array.of_list rows }

let parse_triples path =
  let triples =
    List.map
      (fun line ->
        match fields line with
        | [ i; j; rtt ] -> (
            match (int_of_string_opt i, int_of_string_opt j, parse_cell rtt) with
            | Some i, Some j, rtt when i >= 0 && j >= 0 -> (i, j, rtt)
            | _ -> failwith (Printf.sprintf "Loader: bad triple line %S" line))
        | _ -> failwith (Printf.sprintf "Loader: expected 'i j rtt', got %S" line))
      (data_lines path)
  in
  let nodes =
    List.fold_left (fun acc (i, j, _) -> max acc (max i j + 1)) 0 triples
  in
  let entries = Array.make_matrix nodes nodes None in
  List.iter
    (fun (i, j, rtt) ->
      match rtt with
      | None -> ()
      | Some v ->
          (* Keep the smaller of duplicate measurements, like King post-
             processing pipelines do. *)
          let keep prev = match prev with None -> Some v | Some p -> Some (Float.min p v) in
          entries.(i).(j) <- keep entries.(i).(j);
          entries.(j).(i) <- keep entries.(j).(i))
    triples;
  for i = 0 to nodes - 1 do
    entries.(i).(i) <- Some 0.
  done;
  { nodes; entries }

let missing_degree raw alive i =
  let count = ref 0 in
  Array.iteri
    (fun j alive_j ->
      if alive_j && j <> i && raw.entries.(i).(j) = None then incr count)
    alive;
  !count

let complete_subset raw =
  let alive = Array.make raw.nodes true in
  let rec prune () =
    let worst = ref (-1) and worst_deg = ref 0 in
    for i = 0 to raw.nodes - 1 do
      if alive.(i) then begin
        let deg = missing_degree raw alive i in
        if deg > !worst_deg then begin
          worst := i;
          worst_deg := deg
        end
      end
    done;
    if !worst >= 0 then begin
      alive.(!worst) <- false;
      prune ()
    end
  in
  prune ();
  let ids =
    Array.of_list
      (List.filter (fun i -> alive.(i)) (List.init raw.nodes Fun.id))
  in
  let floor = 0.01 in
  let matrix =
    Matrix.init (Array.length ids) (fun a b ->
        let i = ids.(a) and j = ids.(b) in
        match (raw.entries.(i).(j), raw.entries.(j).(i)) with
        | Some x, Some y -> Float.max floor ((x +. y) /. 2.)
        | Some x, None | None, Some x -> Float.max floor x
        | None, None -> assert false)
  in
  (ids, matrix)

let looks_like_triples path =
  match data_lines path with
  | [] -> false
  | first :: _ as lines ->
      List.length (fields first) = 3 && List.length lines <> 3

let load path =
  let raw = if looks_like_triples path then parse_triples path else parse_matrix path in
  snd (complete_subset raw)

let save_matrix path m =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      let n = Matrix.dim m in
      for i = 0 to n - 1 do
        for j = 0 to n - 1 do
          if j > 0 then output_char oc ' ';
          output_string oc (Printf.sprintf "%.6g" (Matrix.get m i j))
        done;
        output_char oc '\n'
      done)
