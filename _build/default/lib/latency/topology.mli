(** Hierarchical transit-stub topologies (GT-ITM style).

    The classic Internet topology model used across the DIA/server-
    placement literature the paper builds on (e.g. its citation [14]
    evaluates mirror placement on transit-stub graphs): a small core of
    {e transit} domains, each transit node sponsoring several {e stub}
    domains. Unlike {!Synthetic.internet_like} — which fabricates a
    complete latency matrix directly — this generator produces an actual
    link {!Graph}, so latencies come from genuine shortest-path routing
    (Section II-A's model), and routes can be inspected with
    {!Shortest_path.path}. *)

type params = {
  transit_domains : int;
  transit_nodes_per_domain : int;
  stubs_per_transit_node : int;
  stub_nodes_per_domain : int;
  transit_transit_latency : float;  (** mean inter-domain core link (ms) *)
  transit_link_latency : float;  (** mean intra-transit-domain link *)
  stub_link_latency : float;  (** mean intra-stub and uplink latency *)
  extra_edge_fraction : float;
      (** extra random intra-domain edges relative to the spanning
          structure, in [0, 1] — adds path diversity *)
}

val default_params : params
(** 4 transit domains x 4 nodes, 3 stubs per transit node x 8 nodes:
    400 nodes, continental-scale latencies. *)

val generate : ?params:params -> seed:int -> unit -> Graph.t
(** Build the random topology. Guaranteed connected; link latencies are
    the class means scaled by a uniform factor in [0.5, 1.5]. *)

val node_count : params -> int
(** Number of nodes [generate] will produce for these parameters. *)

val latency_matrix : ?params:params -> seed:int -> unit -> Matrix.t
(** [generate] followed by all-pairs shortest-path routing — a complete
    matrix ready for the assignment algorithms. Satisfies the triangle
    inequality by construction (routing is shortest-path), unlike the
    measured-RTT style matrices of {!Synthetic}. *)
