(** Dense symmetric latency matrices.

    A matrix of pairwise network latencies between [n] nodes. Latencies are
    non-negative floats (milliseconds by convention); the diagonal is zero.
    This is the fundamental data structure consumed by every assignment
    algorithm: the paper's distance function [d(u, v)] extended to all node
    pairs. *)

type t
(** A symmetric [n x n] latency matrix with zero diagonal. *)

val create : int -> t
(** [create n] is an [n x n] matrix with every entry [0.]. *)

val init : int -> (int -> int -> float) -> t
(** [init n f] builds a matrix whose entry [(i, j)] is [f i j]. [f] is only
    consulted on ordered pairs [i < j] and the result is mirrored, so [f]
    need not be symmetric. The diagonal is [0.].

    @raise Invalid_argument if [n < 0] or [f] returns a negative or
    non-finite value. *)

val dim : t -> int
(** Number of nodes. *)

val get : t -> int -> int -> float
(** [get m i j] is the latency between nodes [i] and [j]. O(1).

    @raise Invalid_argument if [i] or [j] is out of bounds. *)

val set : t -> int -> int -> float -> unit
(** [set m i j v] sets both [(i, j)] and [(j, i)] to [v].

    @raise Invalid_argument on out-of-bounds indices, negative or
    non-finite [v], or [i = j] with [v <> 0.]. *)

val copy : t -> t
(** Deep copy. *)

val sub : t -> int array -> t
(** [sub m nodes] is the principal submatrix restricted to [nodes]: entry
    [(i, j)] of the result is [get m nodes.(i) nodes.(j)].

    @raise Invalid_argument if any index is out of bounds. *)

val max_entry : t -> float
(** Largest off-diagonal entry ([0.] for matrices with [dim <= 1]). *)

val min_entry : t -> float
(** Smallest off-diagonal entry ([infinity] for matrices with [dim <= 1]). *)

val mean_entry : t -> float
(** Mean of the off-diagonal entries ([nan] for matrices with [dim <= 1]). *)

val iter_pairs : t -> (int -> int -> float -> unit) -> unit
(** [iter_pairs m f] calls [f i j (get m i j)] for every unordered pair
    [i < j]. *)

val of_rows : float array array -> t
(** [of_rows rows] builds a matrix from a square array of rows. Asymmetric
    inputs are symmetrised by averaging, which mirrors how RTT data sets
    with small asymmetric measurement noise are commonly cleaned.

    @raise Invalid_argument if the array is not square or an entry is
    negative or non-finite. *)

val to_rows : t -> float array array
(** Full square dump (including diagonal). *)

val equal : ?eps:float -> t -> t -> bool
(** Entry-wise equality within [eps] (default [1e-9]). *)

val pp : Format.formatter -> t -> unit
(** Debug printer; prints the full matrix for small [n], a summary
    otherwise. *)
