(** Jitter: per-pair latency distributions and percentile matrices.

    Section II-E of the paper observes that the link length [d(u, v)] fed
    to the client assignment problem "can be set to any percentile of the
    network latency to cater for its variability to a required extent":
    higher percentiles reduce the chance of consistency/fairness breaches
    under jitter at the cost of interactivity. This module models each
    pair's latency as a shifted lognormal distribution around a base
    matrix, samples it, and extracts percentile matrices, enabling the
    interactivity/consistency trade-off study in
    [examples/jitter_tradeoff.ml]. *)

type model
(** A jitter model over a base latency matrix. *)

val make : ?sigma:float -> ?seed:int -> Matrix.t -> model
(** [make base] models the latency of pair [(u, v)] as
    [base(u,v) * exp(sigma * Z)] with [Z] standard normal, i.e. the base
    matrix is the median. [sigma] defaults to [0.2]; [seed] to [0]. *)

val base : model -> Matrix.t
(** The underlying median matrix. *)

val sample : model -> Matrix.t
(** Draw one realised latency matrix (a fresh independent sample per call;
    successive calls advance the model's random state). *)

val percentile_matrix : model -> float -> Matrix.t
(** [percentile_matrix model p] is the closed-form [p]-th percentile
    ([0 < p < 100]) of every pairwise distribution — the matrix a deployer
    would feed to the assignment algorithms to cater for jitter at that
    confidence level.

    @raise Invalid_argument unless [0 < p < 100]. *)

val breach_probability : model -> delta:float -> d:float -> float
(** [breach_probability model ~delta ~d] is the probability that a path
    with median length [d] exceeds the lag budget [delta] on one
    realisation — the per-message chance of a consistency or fairness
    breach. Computed in closed form by approximating the path latency as
    a single lognormal with the model's sigma. *)

val normal_quantile : float -> float
(** Inverse standard normal CDF (Acklam's rational approximation,
    |error| < 1.2e-8). Exposed for tests and for {!Stats}. *)
