type params = {
  continents : int;
  cities_per_continent : int;
  city_sigma : float;
  ms_per_unit : float;
  access_mean : float;
  noise_sigma : float;
  detour_fraction : float;
  detour_max : float;
  min_latency : float;
}

let default_params =
  {
    continents = 5;
    cities_per_continent = 8;
    city_sigma = 2.0;
    ms_per_unit = 1.0;
    access_mean = 8.0;
    noise_sigma = 0.25;
    detour_fraction = 0.08;
    detour_max = 2.5;
    min_latency = 0.5;
  }

let gaussian rng =
  (* Box-Muller; the [1. -. u] keeps the log argument strictly positive. *)
  let u = 1. -. Random.State.float rng 1. in
  let v = Random.State.float rng 1. in
  sqrt (-2. *. log u) *. cos (2. *. Float.pi *. v)

let exponential rng mean = -.mean *. log (1. -. Random.State.float rng 1.)

let internet_like ?(params = default_params) ~seed n =
  if n < 0 then invalid_arg "Synthetic.internet_like: negative size";
  let p = params in
  if p.continents <= 0 || p.cities_per_continent <= 0 then
    invalid_arg "Synthetic.internet_like: cluster counts must be positive";
  let rng = Random.State.make [| seed; n |] in
  (* Continent centres spread over a 100x100 map; city centres scattered
     around their continent; nodes scattered around their city. *)
  let continent_xy =
    Array.init p.continents (fun _ ->
        (Random.State.float rng 100., Random.State.float rng 100.))
  in
  let city_xy =
    Array.init
      (p.continents * p.cities_per_continent)
      (fun c ->
        let cx, cy = continent_xy.(c / p.cities_per_continent) in
        (cx +. (gaussian rng *. 8.), cy +. (gaussian rng *. 8.)))
  in
  let node_xy =
    Array.init n (fun _ ->
        let cx, cy = city_xy.(Random.State.int rng (Array.length city_xy)) in
        (cx +. (gaussian rng *. p.city_sigma), cy +. (gaussian rng *. p.city_sigma)))
  in
  let access = Array.init n (fun _ -> exponential rng p.access_mean) in
  Matrix.init n (fun i j ->
      let xi, yi = node_xy.(i) and xj, yj = node_xy.(j) in
      let dx = xi -. xj and dy = yi -. yj in
      let propagation = p.ms_per_unit *. sqrt ((dx *. dx) +. (dy *. dy)) in
      let base = propagation +. access.(i) +. access.(j) in
      let noise = exp (p.noise_sigma *. gaussian rng) in
      let detour =
        if Random.State.float rng 1. < p.detour_fraction then
          1. +. Random.State.float rng (p.detour_max -. 1.)
        else 1.
      in
      Float.max p.min_latency (base *. noise *. detour))

let meridian_like ?(seed = 42) () = internet_like ~seed 1796

let mit_like ?(seed = 7) () = internet_like ~seed 1024

let euclidean ~seed ~n ~side =
  if side <= 0. then invalid_arg "Synthetic.euclidean: side must be positive";
  let rng = Random.State.make [| seed; n |] in
  let xy =
    Array.init n (fun _ -> (Random.State.float rng side, Random.State.float rng side))
  in
  Matrix.init n (fun i j ->
      let xi, yi = xy.(i) and xj, yj = xy.(j) in
      let dx = xi -. xj and dy = yi -. yj in
      (* A zero distance between coincident points would violate d > 0. *)
      Float.max 1e-6 (sqrt ((dx *. dx) +. (dy *. dy))))

let grid ~rows ~cols ~spacing =
  if rows <= 0 || cols <= 0 then invalid_arg "Synthetic.grid: empty grid";
  if spacing <= 0. then invalid_arg "Synthetic.grid: spacing must be positive";
  let n = rows * cols in
  Matrix.init n (fun i j ->
      let ri = i / cols and ci = i mod cols in
      let rj = j / cols and cj = j mod cols in
      (* Manhattan distance is the grid-graph shortest path. *)
      spacing *. float_of_int (abs (ri - rj) + abs (ci - cj)))

let uniform_random ~seed ~n ~lo ~hi =
  if lo <= 0. || lo > hi then
    invalid_arg "Synthetic.uniform_random: need 0 < lo <= hi";
  let rng = Random.State.make [| seed; n |] in
  Matrix.init n (fun _ _ -> lo +. Random.State.float rng (hi -. lo))
