(** Weighted undirected graphs.

    The paper models the network as a graph [G = (V, E)] with a positive
    length [d(u, v)] on each link, and extends [d] to all node pairs by
    shortest-path routing (see {!Shortest_path}). This module holds the
    sparse link structure; complete latency matrices live in {!Matrix}. *)

type t
(** An undirected graph with positively weighted edges. *)

val create : int -> t
(** [create n] is an edgeless graph on nodes [0 .. n-1].

    @raise Invalid_argument if [n < 0]. *)

val of_edges : int -> (int * int * float) list -> t
(** [of_edges n edges] builds a graph from [(u, v, w)] triples. Duplicate
    edges keep the smallest weight.

    @raise Invalid_argument on out-of-bounds endpoints, self-loops, or
    non-positive/non-finite weights. *)

val n : t -> int
(** Number of nodes. *)

val add_edge : t -> int -> int -> float -> unit
(** [add_edge g u v w] inserts the undirected edge [(u, v)] with weight
    [w], keeping the smaller weight if the edge already exists.

    @raise Invalid_argument as in {!of_edges}. *)

val neighbors : t -> int -> (int * float) list
(** Adjacent [(node, weight)] pairs of a node. *)

val edge_count : t -> int
(** Number of undirected edges. *)

val edges : t -> (int * int * float) list
(** All edges as [(u, v, w)] with [u < v]. *)

val is_connected : t -> bool
(** Whether every node is reachable from node [0] (vacuously true for the
    empty graph). *)
