lib/latency/vivaldi.mli: Loader Matrix
