lib/latency/jitter.ml: Array Float Matrix Random
