lib/latency/shortest_path.ml: Array Float Graph List Matrix Printf
