lib/latency/synthetic.mli: Matrix
