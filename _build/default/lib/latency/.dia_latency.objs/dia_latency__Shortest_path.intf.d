lib/latency/shortest_path.mli: Graph Matrix
