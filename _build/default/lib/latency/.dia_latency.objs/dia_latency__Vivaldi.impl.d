lib/latency/vivaldi.ml: Array Float Loader Matrix Random
