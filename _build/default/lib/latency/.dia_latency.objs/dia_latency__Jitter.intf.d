lib/latency/jitter.mli: Matrix
