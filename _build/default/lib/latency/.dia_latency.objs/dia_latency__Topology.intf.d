lib/latency/topology.mli: Graph Matrix
