lib/latency/loader.ml: Array Float Fun List Matrix Printf String
