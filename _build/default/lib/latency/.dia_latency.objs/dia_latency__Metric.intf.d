lib/latency/metric.mli: Matrix
