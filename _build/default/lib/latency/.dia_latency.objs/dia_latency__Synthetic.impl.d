lib/latency/synthetic.ml: Array Float Matrix Random
