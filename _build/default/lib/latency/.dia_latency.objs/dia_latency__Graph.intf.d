lib/latency/graph.mli:
