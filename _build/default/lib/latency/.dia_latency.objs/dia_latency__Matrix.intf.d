lib/latency/matrix.mli: Format
