lib/latency/graph.ml: Array Float Fun Hashtbl List Printf
