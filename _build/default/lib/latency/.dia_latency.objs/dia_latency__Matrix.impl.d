lib/latency/matrix.ml: Array Float Format Printf
