lib/latency/metric.ml: Float Matrix Random
