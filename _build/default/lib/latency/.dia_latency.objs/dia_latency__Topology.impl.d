lib/latency/topology.ml: Array Graph Random Shortest_path
