lib/latency/loader.mli: Matrix
