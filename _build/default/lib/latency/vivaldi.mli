(** Vivaldi network coordinates.

    The decentralized coordinate system used throughout the King/Meridian
    measurement ecosystem the paper's data sets come from: every node
    gets a 2-D position plus a non-negative "height" (modelling the
    access-link delay that no Euclidean embedding can express), such that
    [||x_i - x_j|| + h_i + h_j] predicts the pairwise latency.

    Two uses here:

    - {!complete} fills the {e missing} measurements of a raw data file
      with coordinate predictions — an alternative to
      {!Loader.complete_subset}'s node discarding that keeps every node
      (the paper discards; this is the "what if we didn't have to"
      tool);
    - {!predict} estimates latencies a client never measured, which is
      how a deployed Nearest-Server/Distributed-Greedy implementation
      would avoid probing all [|S|] servers.

    Deterministic per seed. *)

type t
(** A fitted embedding. *)

val embed_matrix : ?seed:int -> ?rounds:int -> Matrix.t -> t
(** Fit coordinates to a complete matrix by iterating Vivaldi spring
    updates over all pairs for [rounds] (default 30) passes. *)

val embed_raw : ?seed:int -> ?rounds:int -> Loader.raw -> t
(** Fit to a raw data set, skipping missing entries. *)

val nodes : t -> int

val coordinates : t -> int -> float * float * float
(** [(x, y, height)] of a node. *)

val predict : t -> int -> int -> float
(** Predicted latency between two nodes: [||xi - xj|| + hi + hj],
    floored at a small positive value. [0.] on the diagonal. *)

val median_relative_error : t -> Matrix.t -> float
(** Median of [|predicted - actual| / actual] over all pairs — the
    standard Vivaldi accuracy metric. *)

val complete : ?seed:int -> ?rounds:int -> Loader.raw -> Matrix.t
(** Keep every node: measured entries pass through (symmetrised),
    missing ones are filled with predictions. *)
