(** Metric-space diagnostics for latency matrices.

    Real Internet latency data sets such as Meridian and MIT King do {e
    not} satisfy the triangle inequality (the paper relies on this to
    explain why Nearest-Server Assignment exceeds its worst-case
    approximation ratio of 3 in practice, footnote 2 of Section V). These
    diagnostics quantify how far a matrix is from being a metric, so that
    synthetic data sets can be checked for Internet-like behaviour. *)

type violation_stats = {
  triples_checked : int;  (** number of ordered triples [(i, j, k)] examined *)
  violations : int;  (** triples with [d(i,j) > d(i,k) + d(k,j)] *)
  violation_fraction : float;  (** [violations / triples_checked] *)
  max_stretch : float;
      (** largest ratio [d(i,j) / (d(i,k) + d(k,j))] observed; [> 1] means
          the direct path is slower than a detour *)
  mean_stretch_violating : float;
      (** mean stretch over violating triples only ([nan] if none) *)
}

val triangle_violations : ?samples:int -> ?seed:int -> Matrix.t -> violation_stats
(** [triangle_violations m] examines triples of distinct nodes. For
    [dim m <= 64] all triples are checked exhaustively; for larger
    matrices, [samples] random triples (default [200_000]) are drawn with
    the given [seed] (default [0]). *)

val is_metric : ?eps:float -> Matrix.t -> bool
(** Exhaustive triangle-inequality check with slack [eps] (default
    [1e-9]). O(n³) — intended for small matrices and tests. *)

val spread : Matrix.t -> float
(** Ratio [max_entry / min_entry] of off-diagonal entries — a crude
    "geographic spread" measure. [nan] when [dim <= 1]. *)
