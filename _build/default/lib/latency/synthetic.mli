(** Synthetic latency data sets.

    The paper evaluates on the Meridian (1796 usable nodes) and MIT King
    (1024 nodes) pairwise RTT matrices. Those files are not redistributable
    here, so this module generates Internet-like matrices with the two
    properties the paper's results depend on:

    - clustered, heavy-tailed latencies (continent/city hierarchy plus
      last-mile access delays), and
    - triangle-inequality violations, as produced by King measurements
      (paper, Section V footnote 2) — without them Nearest-Server
      Assignment could never exceed its approximation ratio of 3.

    All generators are deterministic functions of their [seed].
    {!Loader} can parse the genuine data files if they are available. *)

type params = {
  continents : int;  (** top-level clusters *)
  cities_per_continent : int;  (** second-level clusters *)
  city_sigma : float;  (** node scatter around a city centre (map units) *)
  ms_per_unit : float;  (** propagation delay per map unit *)
  access_mean : float;
      (** mean of the exponential per-node access (last-mile) delay, added
          to both endpoints of every path *)
  noise_sigma : float;  (** sigma of multiplicative lognormal noise *)
  detour_fraction : float;  (** fraction of pairs routed via a detour *)
  detour_max : float;  (** maximum detour inflation factor, [>= 1] *)
  min_latency : float;  (** floor on any pairwise latency *)
}

val default_params : params
(** Parameters tuned so that the resulting matrices have a median RTT of
    roughly 80–120 ms, a long tail past 400 ms, and a triangle-violation
    fraction in the 5–15% range typical of King data. *)

val internet_like : ?params:params -> seed:int -> int -> Matrix.t
(** [internet_like ~seed n] generates an [n]-node Internet-like matrix. *)

val meridian_like : ?seed:int -> unit -> Matrix.t
(** The stand-in for the Meridian data set: 1796 nodes, default seed 42. *)

val mit_like : ?seed:int -> unit -> Matrix.t
(** The stand-in for the MIT King data set: 1024 nodes, default seed 7. *)

val euclidean : seed:int -> n:int -> side:float -> Matrix.t
(** Uniform random points in a [side x side] square with Euclidean
    distances — a true metric, handy for testing approximation-ratio
    claims that assume the triangle inequality. *)

val grid : rows:int -> cols:int -> spacing:float -> Matrix.t
(** Shortest-path distances on a [rows x cols] grid graph with uniform
    edge length [spacing]. A metric with many ties. *)

val uniform_random : seed:int -> n:int -> lo:float -> hi:float -> Matrix.t
(** Entries drawn i.i.d. uniform in [[lo, hi]] — aggressively non-metric;
    a stress test for the algorithms.

    @raise Invalid_argument unless [0 < lo <= hi]. *)
