(* A small mutable binary min-heap of (priority, node) pairs. Stale entries
   are tolerated and skipped at pop time (lazy deletion), which keeps the
   Dijkstra loop simple. *)
module Heap = struct
  type t = {
    mutable prio : float array;
    mutable node : int array;
    mutable size : int;
  }

  let create () = { prio = Array.make 16 0.; node = Array.make 16 0; size = 0 }

  let grow h =
    let cap = Array.length h.prio in
    let prio = Array.make (2 * cap) 0. and node = Array.make (2 * cap) 0 in
    Array.blit h.prio 0 prio 0 h.size;
    Array.blit h.node 0 node 0 h.size;
    h.prio <- prio;
    h.node <- node

  let swap h i j =
    let p = h.prio.(i) and x = h.node.(i) in
    h.prio.(i) <- h.prio.(j);
    h.node.(i) <- h.node.(j);
    h.prio.(j) <- p;
    h.node.(j) <- x

  let push h p x =
    if h.size = Array.length h.prio then grow h;
    h.prio.(h.size) <- p;
    h.node.(h.size) <- x;
    let i = ref h.size in
    h.size <- h.size + 1;
    while !i > 0 && h.prio.((!i - 1) / 2) > h.prio.(!i) do
      swap h ((!i - 1) / 2) !i;
      i := (!i - 1) / 2
    done

  let pop h =
    if h.size = 0 then None
    else begin
      let p = h.prio.(0) and x = h.node.(0) in
      h.size <- h.size - 1;
      h.prio.(0) <- h.prio.(h.size);
      h.node.(0) <- h.node.(h.size);
      let i = ref 0 in
      let continue = ref true in
      while !continue do
        let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
        let smallest = ref !i in
        if l < h.size && h.prio.(l) < h.prio.(!smallest) then smallest := l;
        if r < h.size && h.prio.(r) < h.prio.(!smallest) then smallest := r;
        if !smallest = !i then continue := false
        else begin
          swap h !i !smallest;
          i := !smallest
        end
      done;
      Some (p, x)
    end
end

let dijkstra_with_parents g src =
  let n = Graph.n g in
  if src < 0 || src >= n then invalid_arg "Shortest_path.dijkstra: bad source";
  let dist = Array.make n infinity in
  let parent = Array.make n (-1) in
  let heap = Heap.create () in
  dist.(src) <- 0.;
  Heap.push heap 0. src;
  let rec loop () =
    match Heap.pop heap with
    | None -> ()
    | Some (d, u) ->
        if d <= dist.(u) then
          List.iter
            (fun (v, w) ->
              let d' = d +. w in
              if d' < dist.(v) then begin
                dist.(v) <- d';
                parent.(v) <- u;
                Heap.push heap d' v
              end)
            (Graph.neighbors g u);
        loop ()
  in
  loop ();
  (dist, parent)

let dijkstra g src = fst (dijkstra_with_parents g src)

(* Computing a Dijkstra row per source keeps all-pairs at
   O(n (V+E) log V) instead of one run per pair. *)
let all_pairs g =
  let n = Graph.n g in
  let rows = Array.init n (fun i -> dijkstra g i) in
  Matrix.init n (fun i j ->
      let d = rows.(i).(j) in
      if not (Float.is_finite d) then
        invalid_arg
          (Printf.sprintf "Shortest_path.all_pairs: nodes %d and %d disconnected" i j);
      d)

let floyd_warshall m =
  let n = Matrix.dim m in
  let closure = Matrix.copy m in
  for k = 0 to n - 1 do
    for i = 0 to n - 1 do
      for j = i + 1 to n - 1 do
        let via = Matrix.get closure i k +. Matrix.get closure k j in
        if via < Matrix.get closure i j then Matrix.set closure i j via
      done
    done
  done;
  closure

let path g u v =
  let _, parent = dijkstra_with_parents g u in
  if u = v then Some [ u ]
  else if parent.(v) = -1 then None
  else begin
    let rec build acc node = if node = u then u :: acc else build (node :: acc) parent.(node) in
    Some (build [ v ] parent.(v))
  end
