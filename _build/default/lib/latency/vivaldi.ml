type t = {
  x : float array;
  y : float array;
  height : float array;
}

let floor_latency = 0.05
let ce = 0.25 (* error smoothing gain *)
let cc = 0.25 (* movement gain *)

let nodes t = Array.length t.x

let coordinates t i = (t.x.(i), t.y.(i), t.height.(i))

let predict t i j =
  if i = j then 0.
  else begin
    let dx = t.x.(i) -. t.x.(j) and dy = t.y.(i) -. t.y.(j) in
    Float.max floor_latency
      (sqrt ((dx *. dx) +. (dy *. dy)) +. t.height.(i) +. t.height.(j))
  end

(* One spring update for the observation rtt(i, j). *)
let update state error i j rtt =
  if rtt > 0. then begin
    let dx = state.x.(i) -. state.x.(j) and dy = state.y.(i) -. state.y.(j) in
    let plane = sqrt ((dx *. dx) +. (dy *. dy)) in
    let dist = plane +. state.height.(i) +. state.height.(j) in
    let w = error.(i) /. (error.(i) +. error.(j)) in
    let sample_error = Float.abs (dist -. rtt) /. rtt in
    error.(i) <- (sample_error *. ce *. w) +. (error.(i) *. (1. -. (ce *. w)));
    let delta = cc *. w in
    let force = delta *. (rtt -. dist) in
    let ux, uy = if plane > 1e-9 then (dx /. plane, dy /. plane) else (1., 0.) in
    state.x.(i) <- state.x.(i) +. (force *. ux);
    state.y.(i) <- state.y.(i) +. (force *. uy);
    state.height.(i) <- Float.max 0. (state.height.(i) +. (force *. 0.1))
  end

let embed ?(seed = 0) ?(rounds = 30) ~n ~sample () =
  let rng = Random.State.make [| seed; n |] in
  let state =
    {
      (* Small random start breaks the symmetry of identical origins. *)
      x = Array.init n (fun _ -> Random.State.float rng 1.);
      y = Array.init n (fun _ -> Random.State.float rng 1.);
      height = Array.make n 0.;
    }
  in
  let error = Array.make n 1. in
  (* For big n, iterate over a bounded random neighbour set per node per
     round (Vivaldi is designed for sparse gossip); exhaustively for
     small n. *)
  let neighbours = 32 in
  for _ = 1 to rounds do
    for i = 0 to n - 1 do
      if n <= neighbours then
        for j = 0 to n - 1 do
          if j <> i then
            match sample i j with
            | Some rtt -> update state error i j rtt
            | None -> ()
        done
      else
        for _ = 1 to neighbours do
          let j = Random.State.int rng n in
          if j <> i then
            match sample i j with
            | Some rtt -> update state error i j rtt
            | None -> ()
        done
    done
  done;
  state

let embed_matrix ?seed ?rounds m =
  embed ?seed ?rounds ~n:(Matrix.dim m)
    ~sample:(fun i j -> Some (Matrix.get m i j))
    ()

let embed_raw ?seed ?rounds (raw : Loader.raw) =
  embed ?seed ?rounds ~n:raw.Loader.nodes
    ~sample:(fun i j ->
      match (raw.Loader.entries.(i).(j), raw.Loader.entries.(j).(i)) with
      | Some a, Some b -> Some ((a +. b) /. 2.)
      | Some a, None | None, Some a -> Some a
      | None, None -> None)
    ()

let median_relative_error t m =
  let errors = ref [] in
  Matrix.iter_pairs m (fun i j actual ->
      if actual > 0. then
        errors := (Float.abs (predict t i j -. actual) /. actual) :: !errors);
  match !errors with
  | [] -> nan
  | list ->
      let sorted = Array.of_list list in
      Array.sort Float.compare sorted;
      sorted.(Array.length sorted / 2)

let complete ?seed ?rounds (raw : Loader.raw) =
  let t = embed_raw ?seed ?rounds raw in
  Matrix.init raw.Loader.nodes (fun i j ->
      match (raw.Loader.entries.(i).(j), raw.Loader.entries.(j).(i)) with
      | Some a, Some b -> Float.max floor_latency ((a +. b) /. 2.)
      | Some a, None | None, Some a -> Float.max floor_latency a
      | None, None -> predict t i j)
