(** Parsers for real latency data files.

    Two on-disk formats are supported, matching the data sets the paper
    uses:

    - {b dense matrix} (MIT King, p2psim [kingdata]): one row per line,
      whitespace-separated numbers; a negative value or the token ["-"]
      marks a missing measurement.
    - {b triple list} (Meridian): lines of [i j rtt] with 0-based or
      1-based node ids; missing pairs are simply absent.

    The paper discards every node involved in a missing measurement until
    the matrix is complete ("On discarding the nodes involved in
    unavailable measurements, our simulated network is represented by a
    complete pair-wise latency matrix for 1796 nodes"). {!complete_subset}
    implements that cleaning step: it greedily removes the node with the
    most missing entries until none remain, which keeps close to the
    maximum number of usable nodes. *)

type raw = {
  nodes : int;
  entries : float option array array;  (** [None] = missing measurement *)
}

val parse_matrix : string -> raw
(** Parse a dense matrix file.

    @raise Failure on malformed input (non-square, unparsable token). *)

val parse_triples : string -> raw
(** Parse an [i j rtt] triple file. Node count is one more than the
    largest id seen; ids may be 0- or 1-based (1-based inputs simply leave
    node 0 isolated and it is dropped by {!complete_subset}).

    @raise Failure on malformed input. *)

val complete_subset : raw -> int array * Matrix.t
(** [complete_subset raw] discards nodes until the remaining pairwise
    matrix is complete, returning the surviving original node ids and the
    cleaned matrix. Asymmetric pairs are averaged; non-positive present
    values are clamped to a small positive floor, since the paper requires
    [d(u, v) > 0]. *)

val load : string -> Matrix.t
(** [load path] sniffs the format (triples if the first data line has
    exactly three fields and the file is not square, dense otherwise),
    parses, and cleans.

    @raise Failure on malformed input; [Sys_error] if unreadable. *)

val save_matrix : string -> Matrix.t -> unit
(** Write a matrix in the dense format accepted by {!parse_matrix}. *)
