type t = { n : int; data : float array }

let check_value v =
  if not (Float.is_finite v) || v < 0. then
    invalid_arg (Printf.sprintf "Matrix: latency %g is not a finite non-negative value" v)

let create n =
  if n < 0 then invalid_arg "Matrix.create: negative dimension";
  { n; data = Array.make (n * n) 0. }

let dim m = m.n

let check_index m i =
  if i < 0 || i >= m.n then
    invalid_arg (Printf.sprintf "Matrix: index %d out of bounds [0, %d)" i m.n)

let get m i j =
  check_index m i;
  check_index m j;
  m.data.((i * m.n) + j)

let set m i j v =
  check_index m i;
  check_index m j;
  check_value v;
  if i = j && v <> 0. then invalid_arg "Matrix.set: non-zero diagonal";
  m.data.((i * m.n) + j) <- v;
  m.data.((j * m.n) + i) <- v

let init n f =
  let m = create n in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      set m i j (f i j)
    done
  done;
  m

let copy m = { n = m.n; data = Array.copy m.data }

let sub m nodes =
  Array.iter (check_index m) nodes;
  let k = Array.length nodes in
  init k (fun i j -> get m nodes.(i) nodes.(j))

let fold_pairs m f acc =
  let acc = ref acc in
  for i = 0 to m.n - 1 do
    for j = i + 1 to m.n - 1 do
      acc := f !acc i j m.data.((i * m.n) + j)
    done
  done;
  !acc

let iter_pairs m f = fold_pairs m (fun () i j v -> f i j v) ()

let max_entry m = fold_pairs m (fun acc _ _ v -> Float.max acc v) 0.

let min_entry m = fold_pairs m (fun acc _ _ v -> Float.min acc v) infinity

let mean_entry m =
  let pairs = m.n * (m.n - 1) / 2 in
  if pairs = 0 then nan
  else fold_pairs m (fun acc _ _ v -> acc +. v) 0. /. float_of_int pairs

let of_rows rows =
  let n = Array.length rows in
  Array.iter
    (fun row ->
      if Array.length row <> n then invalid_arg "Matrix.of_rows: not square")
    rows;
  init n (fun i j ->
      let a = rows.(i).(j) and b = rows.(j).(i) in
      check_value a;
      check_value b;
      (a +. b) /. 2.)

let to_rows m = Array.init m.n (fun i -> Array.init m.n (fun j -> get m i j))

let equal ?(eps = 1e-9) a b =
  a.n = b.n
  && Array.for_all2 (fun x y -> Float.abs (x -. y) <= eps) a.data b.data

let pp ppf m =
  if m.n <= 12 then begin
    Format.fprintf ppf "@[<v>";
    for i = 0 to m.n - 1 do
      Format.fprintf ppf "@[<h>";
      for j = 0 to m.n - 1 do
        Format.fprintf ppf "%8.2f " (get m i j)
      done;
      Format.fprintf ppf "@]@,"
    done;
    Format.fprintf ppf "@]"
  end
  else
    Format.fprintf ppf "<matrix %dx%d min=%.2f mean=%.2f max=%.2f>" m.n m.n
      (min_entry m) (mean_entry m) (max_entry m)
