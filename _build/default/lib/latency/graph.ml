type t = { size : int; adj : (int, float) Hashtbl.t array }

let create n =
  if n < 0 then invalid_arg "Graph.create: negative size";
  { size = n; adj = Array.init n (fun _ -> Hashtbl.create 4) }

let n g = g.size

let check_endpoint g u =
  if u < 0 || u >= g.size then
    invalid_arg (Printf.sprintf "Graph: node %d out of bounds [0, %d)" u g.size)

let add_edge g u v w =
  check_endpoint g u;
  check_endpoint g v;
  if u = v then invalid_arg "Graph.add_edge: self-loop";
  if not (Float.is_finite w) || w <= 0. then
    invalid_arg (Printf.sprintf "Graph.add_edge: weight %g must be positive" w);
  let current = Hashtbl.find_opt g.adj.(u) v in
  let w = match current with None -> w | Some w' -> Float.min w w' in
  Hashtbl.replace g.adj.(u) v w;
  Hashtbl.replace g.adj.(v) u w

let of_edges size edges =
  let g = create size in
  List.iter (fun (u, v, w) -> add_edge g u v w) edges;
  g

let neighbors g u =
  check_endpoint g u;
  Hashtbl.fold (fun v w acc -> (v, w) :: acc) g.adj.(u) []

let edge_count g =
  Array.fold_left (fun acc tbl -> acc + Hashtbl.length tbl) 0 g.adj / 2

let edges g =
  let acc = ref [] in
  Array.iteri
    (fun u tbl ->
      Hashtbl.iter (fun v w -> if u < v then acc := (u, v, w) :: !acc) tbl)
    g.adj;
  !acc

let is_connected g =
  if g.size = 0 then true
  else begin
    let seen = Array.make g.size false in
    let rec visit u =
      if not seen.(u) then begin
        seen.(u) <- true;
        Hashtbl.iter (fun v _ -> visit v) g.adj.(u)
      end
    in
    visit 0;
    Array.for_all Fun.id seen
  end
